#!/bin/sh
# Regenerate every table and figure of the paper plus the ablations.
#
# Usage: ./run_all_benches.sh [build-dir] [--tiny] [--json DIR] [--no-json]
#   --tiny      forwarded to every bench (benches without a tiny mode
#               ignore it and run at full size)
#   --json DIR  collect machine-readable results as DIR/BENCH_<name>.json
#               (via the PARAMRIO_BENCH_JSON environment variable);
#               defaults to bench-artifacts/ next to this script
#   --no-json   console output only, collect nothing
#
# Every bench registered in bench/CMakeLists.txt must exist in the build
# directory — a missing binary is an error, not a silent skip.  Stray
# non-executable files (CMake droppings) are still skipped.  After the
# run, every collected document is schema-checked with
# tools/bench_compare.py --validate; an invalid artifact fails the run.
set -e
BUILD="build"
TINY=""
JSON_DIR=""
NO_JSON=""
while [ $# -gt 0 ]; do
  case "$1" in
    --tiny) TINY="--tiny" ;;
    --json)
      [ $# -ge 2 ] || { echo "error: --json needs a directory" >&2; exit 2; }
      JSON_DIR="$2"; shift ;;
    --no-json) NO_JSON=1 ;;
    -*) echo "error: unknown flag: $1" >&2; exit 2 ;;
    *) BUILD="$1" ;;
  esac
  shift
done

[ -d "$BUILD/bench" ] || {
  echo "error: no bench directory in '$BUILD' (build first)" >&2
  exit 1
}
SRC_DIR="$(dirname "$0")"
if [ -z "$NO_JSON" ]; then
  [ -n "$JSON_DIR" ] || JSON_DIR="$SRC_DIR/bench-artifacts"
  mkdir -p "$JSON_DIR"
  # Stale artifacts from a previous run must not survive into this one's
  # collection — a bench that stopped emitting would otherwise go unnoticed.
  rm -f "$JSON_DIR"/BENCH_*.json
  PARAMRIO_BENCH_JSON="$JSON_DIR"
  export PARAMRIO_BENCH_JSON
fi

# The expected bench set is whatever bench/CMakeLists.txt registers.
# bench_micro (google-benchmark, rejects unknown flags) runs without the
# pass-through flags.
EXPECTED=$(sed -n 's/^paramrio_add_bench(\([a-z0-9_]*\).*/\1/p' \
  "$SRC_DIR/bench/CMakeLists.txt")
NOFLAG=$(sed -n 's/^add_executable(\([a-z0-9_]*\) .*/\1/p' \
  "$SRC_DIR/bench/CMakeLists.txt" | grep -v '^\${' || true)
[ -n "$EXPECTED" ] || {
  echo "error: no benches found in $SRC_DIR/bench/CMakeLists.txt" >&2
  exit 1
}
MISSING=0
for name in $EXPECTED $NOFLAG; do
  if [ ! -f "$BUILD/bench/$name" ]; then
    echo "error: expected bench binary missing: $BUILD/bench/$name" >&2
    MISSING=1
  fi
done
[ "$MISSING" -eq 0 ] || exit 1

for name in $EXPECTED; do
  b="$BUILD/bench/$name"
  [ -x "$b" ] || { echo "skipping non-executable $b" >&2; continue; }
  "$b" $TINY
done
for name in $NOFLAG; do
  b="$BUILD/bench/$name"
  [ -x "$b" ] || { echo "skipping non-executable $b" >&2; continue; }
  "$b"
done

# Schema-check what was collected: a bench that emits malformed JSON (or
# none at all when JSON collection is on) fails the whole run, loudly.
if [ -z "$NO_JSON" ]; then
  COLLECTED=$(ls "$JSON_DIR"/BENCH_*.json 2>/dev/null | wc -l)
  [ "$COLLECTED" -gt 0 ] || {
    echo "error: no BENCH_*.json collected in $JSON_DIR" >&2
    exit 1
  }
  python3 "$SRC_DIR/tools/bench_compare.py" --validate "$JSON_DIR" || {
    echo "error: schema-invalid bench artifacts in $JSON_DIR" >&2
    exit 1
  }
  echo "collected $COLLECTED validated artifacts in $JSON_DIR"
fi
