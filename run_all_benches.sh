#!/bin/sh
# Regenerate every table and figure of the paper plus the ablations.
# Usage: ./run_all_benches.sh [build-dir]
set -e
BUILD="${1:-build}"
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  "$b"
done
