#include "platform/machine.hpp"

namespace paramrio::platform {

Machine origin2000_xfs() {
  Machine m;
  m.name = "Origin2000/XFS";
  // ccNUMA shared memory: low latency, high per-pair bandwidth, no NIC
  // serialisation (the fat-hypercube has ample bisection); many-to-one
  // traffic is bounded by the receiver's memory copies.
  m.net.latency = us(2);
  m.net.bandwidth = mb_per_s(280);
  m.net.intra_node_latency = us(2);
  m.net.intra_node_bandwidth = mb_per_s(280);
  m.net.send_overhead = us(3);
  m.net.recv_byte_cost = 1.0 / mb_per_s(300);
  m.net.procs_per_node = 1;
  m.net.nic_contention = false;
  m.cpu.memcpy_bandwidth = mb_per_s(300);
  m.cpu.sort_element_cost = 150e-9;

  m.fs_kind = FsKind::kLocalXfs;
  m.local_fs.n_disks = 12;
  m.local_fs.stripe_size = MiB;
  m.local_fs.disk = stor::DiskParams{ms(5), mb_per_s(45), ms(0.3)};
  m.local_fs.client_overhead = us(60);
  m.local_fs.metadata = ms(0.5);
  return m;
}

Machine sp2_gpfs() {
  Machine m;
  m.name = "IBM-SP/GPFS";
  // SMP nodes on a switch: each node's adapter serialises its traffic.
  m.net.latency = us(22);
  m.net.bandwidth = mb_per_s(115);
  m.net.intra_node_latency = us(3);
  m.net.intra_node_bandwidth = mb_per_s(350);
  m.net.send_overhead = us(6);
  m.net.recv_byte_cost = 1.0 / mb_per_s(400);
  m.net.procs_per_node = 4;  // 4 MPI tasks share a node in the runs
  m.net.nic_contention = true;
  m.cpu.memcpy_bandwidth = mb_per_s(400);
  m.cpu.sort_element_cost = 120e-9;

  m.fs_kind = FsKind::kStriped;
  m.striped_fs.fs_name = "gpfs";
  m.striped_fs.stripe_size = 256 * KiB;  // large fixed stripes
  m.striped_fs.n_io_nodes = 12;
  m.striped_fs.server_disk = stor::DiskParams{ms(6), mb_per_s(60), ms(3.5)};
  m.striped_fs.client_overhead = us(400);
  m.striped_fs.smp_io_channel = true;  // shared per-node I/O path
  m.striped_fs.smp_channel_bandwidth = mb_per_s(115);
  m.striped_fs.smp_channel_overhead = ms(0.5);
  m.striped_fs.metadata = ms(3);
  m.striped_fs.write_lock_cost = ms(5);  // byte-range token ping-pong
  m.striped_fs.client_cache_bandwidth = mb_per_s(350);
  return m;
}

Machine chiba_pvfs_ethernet() {
  Machine m;
  m.name = "Chiba/PVFS-Ethernet";
  // 100 Mbps fast Ethernet, oversubscribed: per-NIC 12 MB/s and a shared
  // backplane capping the aggregate well below full bisection.
  m.net.latency = us(150);
  m.net.bandwidth = mb_per_s(11.5);
  m.net.intra_node_latency = us(150);
  m.net.intra_node_bandwidth = mb_per_s(11.5);
  m.net.send_overhead = us(60);
  m.net.recv_byte_cost = 1.0 / mb_per_s(90);  // TCP stack copy on a PIII
  m.net.procs_per_node = 1;
  m.net.nic_contention = true;
  m.net.backplane_bandwidth = mb_per_s(12.5);
  m.cpu.memcpy_bandwidth = mb_per_s(160);
  m.cpu.sort_element_cost = 140e-9;

  m.fs_kind = FsKind::kStriped;
  m.striped_fs.fs_name = "pvfs";
  m.striped_fs.stripe_size = 64 * KiB;
  m.striped_fs.n_io_nodes = 8;
  m.striped_fs.server_disk = stor::DiskParams{ms(9), mb_per_s(22), ms(1.2)};
  m.striped_fs.client_overhead = us(300);
  m.striped_fs.smp_io_channel = false;
  m.striped_fs.metadata = ms(2);
  return m;
}

Machine chiba_pvfs_myrinet() {
  Machine m = chiba_pvfs_ethernet();
  m.name = "Chiba/PVFS-Myrinet";
  // Chiba City's other fabric: Myrinet 1280 — OS-bypass messaging with far
  // lower latency and per-link bandwidth near the PCI bus limit, and a
  // full-bisection Clos topology (no shared-backplane cap).  The PVFS
  // servers and their disks are the same machines, so the read path shifts
  // from wire-bound to server-disk-bound.
  m.net.latency = us(18);
  m.net.bandwidth = mb_per_s(66);
  m.net.intra_node_latency = us(18);
  m.net.intra_node_bandwidth = mb_per_s(66);
  m.net.send_overhead = us(10);
  m.net.recv_byte_cost = 1.0 / mb_per_s(160);  // GM DMA lands at memcpy rate
  m.net.backplane_bandwidth = 0.0;             // full bisection
  m.striped_fs.client_overhead = us(120);      // no kernel TCP stack
  return m;
}

Machine chiba_local_disk() {
  Machine m = chiba_pvfs_ethernet();
  m.name = "Chiba/local-disk";
  m.fs_kind = FsKind::kLocalDisk;
  m.local_disk_fs.disk = stor::DiskParams{ms(9), mb_per_s(8), ms(0.5)};
  m.local_disk_fs.client_overhead = us(200);
  m.local_disk_fs.metadata = ms(0.5);
  return m;
}

Testbed::Testbed(const Machine& machine, int nprocs,
                 std::uint64_t perturb_seed, sim::SchedBackend backend)
    : machine_(machine),
      runtime_([&] {
        mpi::RuntimeParams p;
        p.net = machine.net;
        p.cpu = machine.cpu;
        p.nprocs = nprocs;
        p.extra_fabric_nodes = machine.extra_fabric_nodes();
        p.perturb_seed = perturb_seed;
        p.backend = backend;
        return p;
      }()) {
  switch (machine_.fs_kind) {
    case FsKind::kLocalXfs:
      fs_ = std::make_unique<pfs::LocalFs>(machine_.local_fs);
      break;
    case FsKind::kStriped:
      fs_ = std::make_unique<pfs::StripedFs>(machine_.striped_fs,
                                             runtime_.network());
      break;
    case FsKind::kLocalDisk:
      fs_ = std::make_unique<pfs::LocalDiskFs>(machine_.local_disk_fs,
                                               nprocs);
      break;
  }
}

}  // namespace paramrio::platform
