// Calibrated descriptions of the paper's four experimental platforms.
//
// Parameter values are period-plausible (2002 hardware) and were calibrated
// so the *qualitative* results of the paper's Figures 6-10 hold: who wins,
// how gaps move with processor count and problem size.  Absolute seconds are
// not expected to match the original testbeds (see EXPERIMENTS.md).
#pragma once

#include <memory>
#include <string>

#include "mpi/comm.hpp"
#include "pfs/local_disk_fs.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"

namespace paramrio::platform {

enum class FsKind { kLocalXfs, kStriped, kLocalDisk };

struct Machine {
  std::string name;
  net::NetworkParams net;
  mpi::CpuParams cpu;
  FsKind fs_kind = FsKind::kLocalXfs;
  pfs::LocalFsParams local_fs;
  pfs::StripedFsParams striped_fs;
  pfs::LocalDiskFsParams local_disk_fs;

  int extra_fabric_nodes() const {
    return fs_kind == FsKind::kStriped ? striped_fs.n_io_nodes : 0;
  }
};

/// SGI Origin2000 at NCSA: ccNUMA, bristled fat hypercube, XFS scratch.
Machine origin2000_xfs();

/// IBM SP-2 (Power3 SMP nodes) at SDSC: switch fabric, GPFS with large
/// fixed stripes and per-node I/O paths.
Machine sp2_gpfs();

/// Chiba City Linux cluster at ANL: fast Ethernet, PVFS with 8 I/O nodes.
Machine chiba_pvfs_ethernet();

/// Chiba City over its Myrinet fabric: same PVFS servers and disks, but
/// low-latency full-bisection messaging — the read path becomes
/// server-disk-bound instead of wire-bound.
Machine chiba_pvfs_myrinet();

/// Chiba City using each compute node's local disk via the PVFS interface.
Machine chiba_local_disk();

/// A ready-to-run bundle: the mini-MPI runtime (whose fabric the file
/// system may share) plus the machine's file system.
class Testbed {
 public:
  /// `perturb_seed` feeds sim::Engine::Options::perturb_seed (scheduler
  /// tie-shuffle for race detection; 0 = classic lowest-rank order).
  /// `backend` picks the engine's scheduler backend (fibers vs threads);
  /// kAuto follows sim::Engine::Options::effective_backend().
  Testbed(const Machine& machine, int nprocs, std::uint64_t perturb_seed = 0,
          sim::SchedBackend backend = sim::SchedBackend::kAuto);

  mpi::Runtime& runtime() { return runtime_; }
  pfs::FileSystem& fs() { return *fs_; }
  const Machine& machine() const { return machine_; }

 private:
  Machine machine_;
  mpi::Runtime runtime_;
  std::unique_ptr<pfs::FileSystem> fs_;
};

}  // namespace paramrio::platform
