#include "net/network.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "obs/profiler.hpp"

namespace paramrio::net {

Network::Network(NetworkParams params, int nprocs, int extra_nodes)
    : params_(params) {
  PARAMRIO_REQUIRE(params_.procs_per_node >= 1, "procs_per_node must be >= 1");
  PARAMRIO_REQUIRE(nprocs >= 1, "nprocs must be >= 1");
  PARAMRIO_REQUIRE(extra_nodes >= 0, "extra_nodes must be >= 0");
  compute_nodes_ =
      (nprocs + params_.procs_per_node - 1) / params_.procs_per_node;
  nics_.resize(static_cast<std::size_t>(compute_nodes_ + extra_nodes));
}

double Network::send(sim::Proc& src, int dst_rank, std::uint64_t bytes) {
  OBS_SPAN("net.send", sim::TimeCategory::kComm);
  obs::span_counter("bytes", bytes);
  const double msg_start = src.now();
  src.stats().messages_sent += 1;
  src.stats().bytes_sent += bytes;
  counters_.messages += 1;
  counters_.bytes += bytes;

  if (fault_hook_ != nullptr) {
    const double timeout = params_.retransmit_timeout > 0.0
                               ? params_.retransmit_timeout
                               : 4.0 * params_.latency;
    for (;;) {
      const fault::NetFaultAction a =
          fault_hook_->on_message(src.rank(), dst_rank, bytes, src.now());
      if (a.kind == fault::NetFaultAction::Kind::kDrop) {
        // The copy is lost in flight: the sender pays the full wasted
        // transfer, waits out the retransmit timeout, then tries again.
        counters_.msg_drops += 1;
        counters_.retransmit_bytes += bytes;
        (void)transmit(src, dst_rank, bytes);
        src.advance(timeout, sim::TimeCategory::kComm);
        continue;
      }
      if (a.kind == fault::NetFaultAction::Kind::kDuplicate) {
        // A spurious duplicate reaches the receiver and is discarded there;
        // the fabric and the sender still paid for it.
        counters_.msg_dups += 1;
        (void)transmit(src, dst_rank, bytes);
      }
      break;
    }
  }
  const double arrival = transmit(src, dst_rank, bytes);
  // Message latency = sender entry to receiver-visible arrival; covers
  // overhead, contention stalls, the wire and any fault retransmits.
  obs::latency_sample("net.message", arrival - msg_start);
  return arrival;
}

double Network::transmit(sim::Proc& src, int dst_rank, std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (same_node(src.rank(), dst_rank)) {
    // Same SMP node: a memory copy; no NIC or backplane involvement.
    src.advance(params_.send_overhead + b / params_.intra_node_bandwidth,
                sim::TimeCategory::kComm);
    return src.now() + params_.intra_node_latency;
  }

  if (params_.nic_contention || params_.backplane_bandwidth > 0.0) {
    src.advance(params_.send_overhead, sim::TimeCategory::kComm);
    double done = wire_transfer(src.now(), node_of(src.rank()),
                                node_of(dst_rank), bytes);
    src.clock_at_least(done, sim::TimeCategory::kComm);
    return done + params_.latency;
  }

  // Contention-free fabric: sender occupied for the transfer only.
  src.advance(params_.send_overhead + b / params_.bandwidth,
              sim::TimeCategory::kComm);
  return src.now() + params_.latency;
}

void Network::receive(sim::Proc& dst, double arrival, std::uint64_t bytes) {
  OBS_SPAN("net.recv", sim::TimeCategory::kComm);
  obs::span_counter("bytes", bytes);
  dst.stats().bytes_received += bytes;
  const double wait_start = dst.now();
  if (arrival > wait_start) {
    // The receiver idles until the sender's data lands: the canonical
    // wait-for edge behind "comm-bound" phases.
    obs::record_wait(obs::WaitKind::kRecvWait, wait_start, arrival);
  }
  dst.clock_at_least(arrival, sim::TimeCategory::kComm);
  double copy = static_cast<double>(bytes) * params_.recv_byte_cost;
  if (copy > 0.0) dst.advance(copy, sim::TimeCategory::kComm);
}

double Network::wire_transfer(double start, int src_node, int dst_node,
                              std::uint64_t bytes) {
  counters_.wire_transfers += 1;
  counters_.wire_bytes += bytes;
  if (obs::detail()) {
    obs::gauge_int("net/wire_bytes", counters_.wire_bytes);
    if (params_.backplane_bandwidth > 0.0) {
      obs::gauge("net/backplane_backlog",
                 std::max(0.0, backplane_.next_free() - start));
    }
  }
  const double b = static_cast<double>(bytes);
  double link_time = b / params_.bandwidth;
  double span = link_time;

  double s0 = start;
  if (params_.backplane_bandwidth > 0.0) {
    double bp_time = b / params_.backplane_bandwidth;
    span = std::max(span, bp_time);
    s0 = std::max(s0, backplane_.next_free());
  }
  if (params_.nic_contention && src_node != dst_node) {
    auto& sn = nics_[static_cast<std::size_t>(src_node)];
    auto& dn = nics_[static_cast<std::size_t>(dst_node)];
    s0 = std::max({s0, sn.next_free(), dn.next_free()});
    sn.acquire(s0, span);
    dn.acquire(s0, span);
  }
  if (params_.backplane_bandwidth > 0.0) {
    backplane_.acquire(s0, b / params_.backplane_bandwidth);
  }
  return s0 + span;
}

void Network::export_counters(obs::MetricsRegistry& reg) const {
  reg.add("net", "messages", counters_.messages);
  reg.add("net", "bytes", counters_.bytes);
  reg.add("net", "wire_transfers", counters_.wire_transfers);
  reg.add("net", "wire_bytes", counters_.wire_bytes);
  if (counters_.msg_drops > 0) {
    reg.add("net", "msg_drops", counters_.msg_drops);
    reg.add("net", "retransmit_bytes", counters_.retransmit_bytes);
  }
  if (counters_.msg_dups > 0) reg.add("net", "msg_dups", counters_.msg_dups);
}

}  // namespace paramrio::net
