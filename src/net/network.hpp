// Interconnect cost model.
//
// Message timing follows a LogP-flavoured model with optional resource
// contention, parameterised per platform:
//
//   * latency            one-way wire latency per message
//   * bandwidth          point-to-point link bandwidth
//   * per-message sender overhead (software)
//   * receiver copy cost per byte (memory bandwidth at the receiver — this is
//     what serialises a many-to-one gather even on a full-bisection fabric)
//   * optional NIC contention: each SMP node's NIC is a FIFO Timeline, and a
//     transfer occupies both endpoints' NICs for its duration
//   * optional shared backplane: total fabric bandwidth capped by one global
//     Timeline (models the oversubscribed fast-Ethernet of the Linux cluster)
//
// The Network only computes *times*; message payloads live in the mpi layer.
#pragma once

#include <cstdint>
#include <vector>

#include "base/units.hpp"
#include "sim/engine.hpp"

namespace paramrio::obs {
class MetricsRegistry;
}

namespace paramrio::fault {
class NetFaultHook;
}

namespace paramrio::net {

struct NetworkParams {
  double latency = us(10);                     ///< one-way, inter-node
  double bandwidth = mb_per_s(100);            ///< per link, inter-node
  double intra_node_latency = us(1);           ///< same SMP node
  double intra_node_bandwidth = mb_per_s(300); ///< same SMP node (memory)
  double send_overhead = us(1);                ///< sender software cost / msg
  double recv_byte_cost = 1.0 / mb_per_s(400); ///< receiver copy, s per byte
  int procs_per_node = 1;                      ///< SMP width
  bool nic_contention = false;                 ///< serialise per-node NICs
  double backplane_bandwidth = 0.0;            ///< 0 = full bisection
  /// Sender-side timeout before retransmitting a dropped message (fault
  /// injection only); 0 derives 4x the one-way latency.  Drops are modelled
  /// at the transport: the sender pays the wasted transfer plus this
  /// timeout and resends, so payload delivery stays exactly-once and
  /// correctness is unaffected — packet loss costs time, not data.
  double retransmit_timeout = 0.0;
};

/// Aggregate traffic counters over a Network's lifetime (one Engine::run).
struct NetworkCounters {
  std::uint64_t messages = 0;       ///< point-to-point sends
  std::uint64_t bytes = 0;          ///< payload bytes sent
  std::uint64_t wire_transfers = 0; ///< fabric transfers incl. pfs traffic
  std::uint64_t wire_bytes = 0;
  std::uint64_t msg_drops = 0;      ///< injected drops (retransmitted)
  std::uint64_t msg_dups = 0;       ///< injected duplicates (discarded)
  std::uint64_t retransmit_bytes = 0;  ///< payload bytes sent again
};

/// Per-run interconnect state.  Construct one per Engine::run for up to
/// `max_nodes` SMP nodes; all methods must be called from a simulated proc.
class Network {
 public:
  /// `extra_nodes` reserves NIC timelines beyond the compute nodes, for
  /// devices on the same fabric (e.g. PVFS I/O nodes); address them as
  /// node ids >= compute_nodes().
  Network(NetworkParams params, int nprocs, int extra_nodes = 0);

  /// Charge the sender for transmitting `bytes` to `dst_rank` and return the
  /// virtual time at which the message is available at the receiver.
  /// Advances src's clock past its share of the transfer.
  double send(sim::Proc& src, int dst_rank, std::uint64_t bytes);

  /// Charge the receiver for consuming a message of `bytes` that became
  /// available at `arrival` (waits until arrival, then pays the copy cost).
  void receive(sim::Proc& dst, double arrival, std::uint64_t bytes);

  int node_of(int rank) const { return rank / params_.procs_per_node; }
  int compute_nodes() const { return compute_nodes_; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  const NetworkParams& params() const { return params_; }

  /// Raw access for file systems that move data over the same fabric
  /// (e.g. PVFS clients talking to I/O nodes).  `src_node`/`dst_node` are
  /// node ids; returns the completion time of the wire transfer that starts
  /// no earlier than `start`.
  double wire_transfer(double start, int src_node, int dst_node,
                       std::uint64_t bytes);

  const NetworkCounters& counters() const { return counters_; }

  /// Publish aggregate counters into `reg` under scope "net".
  void export_counters(obs::MetricsRegistry& reg) const;

  /// Attach (or detach with nullptr) a fault-injection hook consulted for
  /// every point-to-point send.
  void attach_fault_hook(fault::NetFaultHook* hook) { fault_hook_ = hook; }

 private:
  /// One physical transmission attempt (the original LogP cost model).
  double transmit(sim::Proc& src, int dst_rank, std::uint64_t bytes);

  int compute_nodes_ = 0;
  NetworkParams params_;
  std::vector<sim::Timeline> nics_;  ///< one per SMP node
  sim::Timeline backplane_;
  NetworkCounters counters_;
  fault::NetFaultHook* fault_hook_ = nullptr;
};

}  // namespace paramrio::net
