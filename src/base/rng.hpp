// Deterministic pseudo-random number generation.
//
// The whole reproduction must be bit-reproducible across runs, so all
// stochastic inputs (initial conditions, particle placement, workload
// generators, property-test sweeps) draw from this splittable generator
// instead of std::random_device / std::mt19937 seeded ad hoc.
#pragma once

#include <cstdint>

namespace paramrio {

/// SplitMix64: tiny, fast, high-quality 64-bit generator.  Used both as a
/// generator and to derive independent child seeds (split()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Approximately standard-normal variate (sum of 12 uniforms minus 6 —
  /// cheap, deterministic, and plenty for synthetic initial conditions).
  double next_gaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return s - 6.0;
  }

  /// Derive an independent child generator (e.g. one per rank, per grid).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace paramrio
