// Error types shared across the parAMRIO library.
//
// All recoverable failures are reported via exceptions derived from
// paramrio::Error so that callers can catch one hierarchy.  Precondition
// violations (programming errors) go through PARAMRIO_REQUIRE, which throws
// LogicError with the failing expression and location.
#pragma once

#include <stdexcept>
#include <string>

namespace paramrio {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated precondition / invariant — a bug in the caller or the library.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// File-system level failure (no such file, bad handle, out-of-range access).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Transient file-system failure (the EIO a loaded I/O server returns, a
/// dropped storage RPC): the operation did not happen, but retrying it may
/// succeed.  Retry layers catch exactly this type; everything else in the
/// IoError hierarchy stays fatal.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what) : IoError(what) {}
};

/// Injected whole-process crash (fault injection only).  Never retried:
/// it unwinds the rank, aborts the Engine run, and is rethrown to the
/// caller of Engine::run / Runtime::run.
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& what) : Error(what) {}
};

/// Malformed on-disk structure in one of the scientific file formats.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// The virtual machine simulation cannot make progress (all ranks blocked).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* expr, const char* file,
                                        int line, const std::string& msg);
}  // namespace detail

}  // namespace paramrio

/// Check a precondition; throws paramrio::LogicError on failure.
#define PARAMRIO_REQUIRE(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::paramrio::detail::throw_require_failure(#expr, __FILE__, __LINE__, \
                                                (msg));                     \
    }                                                                       \
  } while (false)
