// Byte-size and rate units used throughout the cost models.
#pragma once

#include <cstddef>
#include <cstdint>

namespace paramrio {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// Megabytes-per-second expressed as bytes-per-second (cost models keep
/// everything in bytes and seconds).
constexpr double mb_per_s(double mb) { return mb * 1.0e6; }

/// Milliseconds / microseconds as seconds.
constexpr double ms(double v) { return v * 1.0e-3; }
constexpr double us(double v) { return v * 1.0e-6; }

}  // namespace paramrio
