// Little-endian encode/decode helpers for the on-disk file formats
// (hdf4::SdFile and hdf5::*).  Formats are defined byte-for-byte so that
// files written by one backend can be re-read and verified in tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace paramrio {

/// Growable byte sink used when serialising format structures.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Length-prefixed string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  void bytes(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::byte> view() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a byte span; throws FormatError on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw FormatError("byte reader overrun: need " + std::to_string(n) +
                        " at offset " + std::to_string(pos_) + " of " +
                        std::to_string(data_.size()));
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace paramrio
