#include "base/error.hpp"

#include <sstream>

namespace paramrio::detail {

void throw_require_failure(const char* expr, const char* file, int line,
                           const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace paramrio::detail
