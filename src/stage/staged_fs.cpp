#include "stage/staged_fs.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/byte_io.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace paramrio::stage {

namespace {

// "1GTS" little-endian — four bytes naming the staged record format.
constexpr std::uint32_t kRecordMagic = 0x31475453;

// magic + kind + path_len + logical offset + payload_len.
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;

std::string segment_name(int rank, int no) {
  return ".stage/r" + std::to_string(rank) + "/seg" + std::to_string(no);
}

/// RAII over Proc's shadow-clock deferral — the sim-level analogue of
/// mpi::io::DeferredScope, kept local so stage/ does not depend on mpi/.
class DeferredRegion {
 public:
  explicit DeferredRegion(sim::Proc& proc) : proc_(proc) {
    proc_.begin_deferred();
  }
  ~DeferredRegion() {
    if (!done_) proc_.end_deferred();
  }
  DeferredRegion(const DeferredRegion&) = delete;
  DeferredRegion& operator=(const DeferredRegion&) = delete;
  /// Leave deferral; returns the shadow-clock completion horizon.
  double finish() {
    done_ = true;
    return proc_.end_deferred();
  }

 private:
  sim::Proc& proc_;
  bool done_ = false;
};

/// RAII over background-I/O marking for the duration of a drain.
class BackgroundRegion {
 public:
  BackgroundRegion(sim::Proc& proc, double scale) : proc_(proc) {
    proc_.set_background_io(scale);
  }
  ~BackgroundRegion() { proc_.clear_background_io(); }
  BackgroundRegion(const BackgroundRegion&) = delete;
  BackgroundRegion& operator=(const BackgroundRegion&) = delete;

 private:
  sim::Proc& proc_;
};

}  // namespace

const char* to_string(DrainPolicy policy) {
  switch (policy) {
    case DrainPolicy::kSync:
      return "sync";
    case DrainPolicy::kAsync:
      return "async";
    case DrainPolicy::kLazy:
      return "lazy";
  }
  return "?";
}

StagedFs::StagedFs(StagedFsParams params, pfs::FileSystem& staging,
                   pfs::FileSystem& destination)
    : params_(params), staging_(staging), dest_(destination) {
  PARAMRIO_REQUIRE(&staging_ != &dest_,
                   "StagedFs: staging and destination must be distinct");
  PARAMRIO_REQUIRE(params_.segment_bytes > 0,
                   "StagedFs: segment_bytes must be positive");
  PARAMRIO_REQUIRE(
      params_.drain_weight_scale > 0.0 && params_.drain_weight_scale <= 1.0,
      "StagedFs: drain_weight_scale must be in (0, 1]");
}

// ---- append path ---------------------------------------------------------

int StagedFs::segment_for_append(int rank, std::uint64_t record_bytes) {
  RankLog& log = rank_logs_[rank];
  if (log.cur_seg >= 0) {
    Segment& cur = segments_[static_cast<std::size_t>(log.cur_seg)];
    if (cur.tail + record_bytes <= params_.segment_bytes || cur.tail == 0) {
      return log.cur_seg;
    }
    // Sealed: full records only from here on; the descriptor stays open for
    // reads and the drain.
    log.cur_seg = -1;
  }
  Segment seg;
  seg.rank = rank;
  seg.no = log.next_no++;
  seg.path = segment_name(rank, seg.no);
  segments_.push_back(std::move(seg));
  const int index = static_cast<int>(segments_.size()) - 1;
  Segment& s = segments_.back();
  s.fd = staging_.open(s.path, pfs::OpenMode::kCreate);
  log.cur_seg = index;
  ++segments_created_;
  return index;
}

std::pair<int, std::uint64_t> StagedFs::append_record(
    RecordKind kind, const std::string& path, std::uint64_t offset,
    std::span<const std::byte> payload) {
  const bool timed = sim::in_simulation();
  const int rank = timed ? sim::current_proc().global_rank() : 0;
  ByteWriter w;
  w.u32(kRecordMagic);
  w.u32(static_cast<std::uint32_t>(kind));
  w.u32(static_cast<std::uint32_t>(path.size()));
  w.u64(offset);
  w.u64(payload.size());
  w.bytes(std::as_bytes(std::span(path.data(), path.size())));
  w.bytes(payload);
  const std::vector<std::byte> rec = w.take();

  const int index = segment_for_append(rank, rec.size());
  Segment& seg = segments_[static_cast<std::size_t>(index)];
  const std::uint64_t rec_off = seg.tail;
  const std::uint64_t payload_off = rec_off + kHeaderBytes + path.size();
  // The record only becomes visible (tail advance, extent insert) once it is
  // fully staged; a crash mid-append leaves a torn tail that recover()
  // discards.  A transient staging fault restarts from the record head, so
  // the log never interleaves partial records.
  std::uint64_t done = 0;
  int attempt = 0;
  while (done < rec.size()) {
    try {
      done += staging_.write_at(
          seg.fd, rec_off + done,
          std::span<const std::byte>(rec).subspan(done));
    } catch (const TransientIoError&) {
      if (!timed || attempt >= params_.stage_retry.max_retries) throw;
      fault::charge_backoff(params_.stage_retry, attempt,
                            sim::current_proc());
      ++attempt;
      ++stage_retries_;
    }
  }
  seg.tail += rec.size();
  if (kind != RecordKind::kData) ++seg.tombstones;
  return {index, payload_off};
}

// ---- extent map ----------------------------------------------------------

template <typename Match>
void StagedFs::remove_range(const std::string& path, std::uint64_t lo,
                            std::uint64_t len, Match match) {
  auto mit = extents_.find(path);
  if (mit == extents_.end() || len == 0) return;
  ExtentMap& m = mit->second;
  const std::uint64_t hi = lo + len;
  // A predecessor strictly overlapping from the left keeps its head.
  auto it = m.lower_bound(lo);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > lo && match(prev->first, prev->second)) {
      const Extent e = prev->second;
      const std::uint64_t e_lo = prev->first;
      const std::uint64_t cut_end = std::min(e.end, hi);
      prev->second.end = lo;
      release_live(e.seg, cut_end - lo);
      if (e.end > hi) {
        m[hi] = Extent{e.end, e.writer, e.seg, e.seg_off + (hi - e_lo)};
      }
    }
  }
  it = m.lower_bound(lo);
  while (it != m.end() && it->first < hi) {
    if (!match(it->first, it->second)) {
      ++it;
      continue;
    }
    const Extent e = it->second;
    const std::uint64_t e_lo = it->first;
    const std::uint64_t cut_end = std::min(e.end, hi);
    release_live(e.seg, cut_end - e_lo);
    it = m.erase(it);
    if (e.end > hi) {
      m[hi] = Extent{e.end, e.writer, e.seg, e.seg_off + (hi - e_lo)};
      break;
    }
  }
  if (m.empty()) extents_.erase(mit);
}

void StagedFs::punch_hole(const std::string& path, std::uint64_t lo,
                          std::uint64_t len) {
  remove_range(path, lo, len,
               [](std::uint64_t, const Extent&) { return true; });
}

void StagedFs::forget_extents(const std::string& path) {
  auto mit = extents_.find(path);
  if (mit == extents_.end()) return;
  for (const auto& [lo, e] : mit->second) release_live(e.seg, e.end - lo);
  extents_.erase(mit);
}

void StagedFs::insert_extent(const std::string& path, std::uint64_t lo,
                             std::uint64_t len, int writer, int seg,
                             std::uint64_t seg_off) {
  if (len == 0) return;
  punch_hole(path, lo, len);
  extents_[path][lo] = Extent{lo + len, writer, seg, seg_off};
  segments_[static_cast<std::size_t>(seg)].live += len;
  staged_live_bytes_ += len;
}

void StagedFs::release_live(int seg, std::uint64_t bytes) {
  if (seg < 0 || bytes == 0) return;
  Segment& s = segments_[static_cast<std::size_t>(seg)];
  s.live -= bytes;
  staged_live_bytes_ -= bytes;
  if (s.live == 0) maybe_gc(seg);
}

void StagedFs::maybe_gc(int seg) {
  Segment& s = segments_[static_cast<std::size_t>(seg)];
  if (s.removed || s.live > 0) return;
  // Tombstones must survive until flush: a later recover() still needs them
  // to suppress resurrection of removed files.
  if (s.tombstones > 0) return;
  // Never collect the segment its rank is still appending to.
  auto it = rank_logs_.find(s.rank);
  if (it != rank_logs_.end() && it->second.cur_seg == seg) return;
  gc_segment(s);
}

void StagedFs::gc_segment(Segment& seg) {
  if (seg.removed) return;
  if (seg.fd >= 0) {
    staging_.close(seg.fd);
    seg.fd = -1;
  }
  staging_.remove(seg.path);
  seg.removed = true;
  ++segments_removed_;
}

int StagedFs::ensure_read_fd(Segment& seg) {
  PARAMRIO_REQUIRE(!seg.removed, "StagedFs: read from collected segment");
  if (seg.fd < 0) seg.fd = staging_.open(seg.path, pfs::OpenMode::kRead);
  return seg.fd;
}

// ---- destination descriptors --------------------------------------------

int StagedFs::dest_write_fd(const std::string& path) {
  auto it = dest_write_fds_.find(path);
  if (it != dest_write_fds_.end()) return it->second;
  const pfs::OpenMode mode = dest_.exists(path) ? pfs::OpenMode::kReadWrite
                                                : pfs::OpenMode::kCreate;
  const int fd = dest_.open(path, mode);
  dest_write_fds_[path] = fd;
  return fd;
}

void StagedFs::drop_dest_fds(const std::string& path) {
  auto rit = dest_read_fds_.find(path);
  if (rit != dest_read_fds_.end()) {
    dest_.close(rit->second);
    dest_read_fds_.erase(rit);
  }
  auto wit = dest_write_fds_.find(path);
  if (wit != dest_write_fds_.end()) {
    dest_.close(wit->second);
    dest_write_fds_.erase(wit);
  }
}

// ---- timed data path -----------------------------------------------------

void StagedFs::tier_read(pfs::FileSystem& fs, int fd, std::uint64_t offset,
                         std::span<std::byte> out) {
  std::uint64_t done = 0;
  int attempt = 0;
  while (done < out.size()) {
    try {
      done += fs.read_at(fd, offset + done, out.subspan(done));
    } catch (const TransientIoError&) {
      if (!sim::in_simulation() ||
          attempt >= params_.stage_retry.max_retries) {
        throw;
      }
      fault::charge_backoff(params_.stage_retry, attempt,
                            sim::current_proc());
      ++attempt;
      ++stage_retries_;
    }
  }
}

void StagedFs::backlog_gauge() const {
  obs::gauge_int("stage/backlog_bytes", staged_live_bytes_);
}

void StagedFs::charge(sim::Proc& proc, const std::string& path,
                      std::uint64_t offset, std::uint64_t bytes,
                      bool is_write) {
  if (bytes == 0) return;
  if (is_write) {
    // The base write path just committed these bytes to the logical image;
    // stage exactly that range as one log record on the caller's spindle.
    std::vector<std::byte> payload(bytes);
    store().read_at(path, offset, payload);
    const auto [seg, seg_off] = append_record(RecordKind::kData, path, offset,
                                              payload);
    insert_extent(path, offset, bytes, proc.global_rank(), seg, seg_off);
    staged_bytes_ += bytes;
    if (obs::detail()) backlog_gauge();
    return;
  }

  // Read: split the range against the extent map — staged runs come from
  // the staging segments, the rest from the destination — and verify every
  // tier byte against the logical image (the two-tier self-check).
  std::vector<std::byte> expect(bytes);
  store().read_at(path, offset, expect);
  struct Run {
    std::uint64_t lo = 0;
    std::uint64_t len = 0;
    int seg = -1;  ///< -1 = destination fallback
    std::uint64_t seg_off = 0;
  };
  // Snapshot the split before any timed call: tier reads advance virtual
  // time, and the map may shift under concurrent writers.
  std::vector<Run> runs;
  const std::uint64_t end = offset + bytes;
  std::uint64_t pos = offset;
  const auto mit = extents_.find(path);
  while (pos < end) {
    const Extent* cover = nullptr;
    std::uint64_t cover_lo = 0;
    std::uint64_t next_staged = end;
    if (mit != extents_.end()) {
      const ExtentMap& m = mit->second;
      auto it = m.upper_bound(pos);
      if (it != m.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > pos) {
          cover = &prev->second;
          cover_lo = prev->first;
        }
      }
      if (cover == nullptr && it != m.end()) {
        next_staged = std::min(next_staged, it->first);
      }
    }
    if (cover != nullptr) {
      const std::uint64_t run_end = std::min(end, cover->end);
      runs.push_back(Run{pos, run_end - pos, cover->seg,
                         cover->seg_off + (pos - cover_lo)});
      pos = run_end;
    } else {
      runs.push_back(Run{pos, next_staged - pos, -1, 0});
      pos = next_staged;
    }
  }

  std::vector<std::byte> got;
  for (const Run& run : runs) {
    got.assign(run.len, std::byte{0});
    bool verified = false;
    if (run.seg >= 0 &&
        !segments_[static_cast<std::size_t>(run.seg)].removed) {
      Segment& seg = segments_[static_cast<std::size_t>(run.seg)];
      tier_read(staging_, ensure_read_fd(seg), run.seg_off, got);
      verified = true;
    } else {
      // Destination fallback: drained bytes, untimed-mirrored setup bytes,
      // or (if the run raced a concurrent drain) freshly migrated ones.
      const std::uint64_t dsize =
          dest_.store().exists(path) ? dest_.store().size(path) : 0;
      const std::uint64_t have =
          dsize > run.lo ? std::min<std::uint64_t>(run.len, dsize - run.lo)
                         : 0;
      if (have > 0) {
        int& fd = dest_read_fds_[path];
        if (fd == 0) fd = dest_.open(path, pfs::OpenMode::kRead);
        tier_read(dest_, fd, run.lo, std::span<std::byte>(got).first(have));
        verified = true;
      }
      if (have < run.len) {
        // Bytes that exist logically but on neither tier: a seeding bug the
        // tests pin to zero.  Served from the logical image, uncharged.
        unmapped_read_bytes_ += run.len - have;
        std::copy(expect.begin() +
                      static_cast<std::ptrdiff_t>(run.lo - offset + have),
                  expect.begin() +
                      static_cast<std::ptrdiff_t>(run.lo - offset + run.len),
                  got.begin() + static_cast<std::ptrdiff_t>(have));
      }
    }
    if (verified &&
        !std::equal(got.begin(), got.end(),
                    expect.begin() +
                        static_cast<std::ptrdiff_t>(run.lo - offset))) {
      throw LogicError("StagedFs: tier bytes diverge from the logical image: "
                       + path + " [" + std::to_string(run.lo) + ", " +
                       std::to_string(run.lo + run.len) + ") served from " +
                       (run.seg >= 0 ? "staging" : "destination"));
    }
  }
}

// ---- namespace hooks -----------------------------------------------------

void StagedFs::on_remove(const std::string& path) {
  forget_extents(path);
  drop_dest_fds(path);
  if (dest_.exists(path)) dest_.remove(path);
  append_record(RecordKind::kRemove, path, 0, {});
}

void StagedFs::on_truncate(const std::string& path) {
  forget_extents(path);
  drop_dest_fds(path);
  if (dest_.exists(path)) dest_.remove(path);
  append_record(RecordKind::kTruncate, path, 0, {});
}

void StagedFs::on_untimed_write(const std::string& path, std::uint64_t offset,
                                std::span<const std::byte> data) {
  // Setup bytes go where a direct run would have put them — the destination
  // — and punch through any staged extents they supersede.
  if (!dest_.store().exists(path)) dest_.store().create(path);
  dest_.store().write_at(path, offset, data);
  punch_hole(path, offset, data.size());
}

// ---- drain ---------------------------------------------------------------

void StagedFs::drain_mine(DrainPolicy policy) {
  if (policy == DrainPolicy::kLazy) return;
  PARAMRIO_REQUIRE(sim::in_simulation(),
                   "StagedFs::drain_mine needs a simulated proc "
                   "(use flush_untimed outside the simulation)");
  sim::Proc& proc = sim::current_proc();
  const int rank = proc.global_rank();

  // Deterministic (path, offset)-ordered snapshot of this rank's extents,
  // coalescing runs that are contiguous both logically and in the segment.
  struct Item {
    std::string path;
    std::uint64_t lo = 0;
    std::uint64_t len = 0;
    int seg = -1;
    std::uint64_t seg_off = 0;
  };
  std::vector<Item> items;
  for (const auto& [path, m] : extents_) {
    for (const auto& [lo, e] : m) {
      if (e.writer != rank) continue;
      if (!items.empty() && items.back().path == path &&
          items.back().seg == e.seg &&
          items.back().lo + items.back().len == lo &&
          items.back().seg_off + items.back().len == e.seg_off) {
        items.back().len += e.end - lo;
      } else {
        items.push_back(Item{path, lo, e.end - lo, e.seg, e.seg_off});
      }
    }
  }
  if (items.empty()) return;

  OBS_SPAN("stage.drain", sim::TimeCategory::kIo);
  const auto migrate = [&] {
    BackgroundRegion bg(proc, params_.drain_weight_scale);
    std::vector<std::byte> buf;
    for (const Item& item : items) {
      Segment& seg = segments_[static_cast<std::size_t>(item.seg)];
      if (seg.removed) continue;  // superseded while this drain progressed
      buf.assign(item.len, std::byte{0});
      tier_read(staging_, ensure_read_fd(seg), item.seg_off, buf);
      const int dfd = dest_write_fd(item.path);
      std::uint64_t done = 0;
      int attempt = 0;
      while (done < buf.size()) {
        try {
          done += dest_.write_at(
              dfd, item.lo + done,
              std::span<const std::byte>(buf).subspan(done));
        } catch (const TransientIoError& e) {
          if (attempt >= params_.drain_retry.max_retries) {
            // Diagnosed failure, never silent loss: the staged extent stays
            // indexed and a later drain (or recover) can still migrate it.
            throw IoError(
                "stage.drain: destination write of " + item.path + " [" +
                std::to_string(item.lo) + ", " +
                std::to_string(item.lo + item.len) + ") from " + seg.path +
                " failed after " +
                std::to_string(params_.drain_retry.max_retries) +
                " retries (" + e.what() + "); staged bytes retained");
          }
          fault::charge_backoff(params_.drain_retry, attempt, proc);
          ++attempt;
          ++drain_retries_;
        }
      }
      // Erase exactly what was migrated: only intervals still pointing at
      // this segment location (a concurrent overwrite re-staged newer bytes
      // that must keep precedence over the just-drained copy).
      remove_range(item.path, item.lo, item.len,
                   [&](std::uint64_t e_lo, const Extent& e) {
                     return e.writer == rank && e.seg == item.seg &&
                            e.seg_off ==
                                item.seg_off + (std::max(e_lo, item.lo) -
                                                item.lo) -
                                    (std::max(e_lo, item.lo) - e_lo);
                   });
      drained_bytes_ += item.len;
      if (obs::detail()) backlog_gauge();
    }
  };

  if (policy == DrainPolicy::kSync) {
    migrate();
    return;
  }
  // Async: the bytes move now (content determinism is preserved — the
  // engine still serialises execution) but the time accrues on the shadow
  // clock; drain_settle charges whatever was not hidden behind later work.
  DeferredRegion defer(proc);
  migrate();
  const double horizon = defer.finish();
  double& h = drain_horizon_[rank];
  h = std::max(h, horizon);
}

void StagedFs::drain_settle() {
  if (!sim::in_simulation()) return;
  sim::Proc& proc = sim::current_proc();
  const auto it = drain_horizon_.find(proc.global_rank());
  if (it == drain_horizon_.end()) return;
  const double horizon = it->second;
  drain_horizon_.erase(it);
  if (horizon > proc.now()) {
    obs::record_wait(obs::WaitKind::kDrainWait, proc.now(), horizon);
    proc.clock_at_least(horizon, sim::TimeCategory::kIo);
  }
}

void StagedFs::flush_untimed() {
  PARAMRIO_REQUIRE(!sim::in_simulation(),
                   "StagedFs::flush_untimed is an outside-simulation step "
                   "(use drain_mine from a proc)");
  for (const auto& [path, m] : extents_) {
    for (const auto& [lo, e] : m) {
      const Segment& seg = segments_[static_cast<std::size_t>(e.seg)];
      std::vector<std::byte> buf(e.end - lo);
      staging_.store().read_at(seg.path, e.seg_off, buf);
      if (!dest_.store().exists(path)) dest_.store().create(path);
      dest_.store().write_at(path, lo, buf);
      drained_bytes_ += buf.size();
    }
  }
  extents_.clear();
  staged_live_bytes_ = 0;
  for (Segment& s : segments_) {
    s.live = 0;
    if (!s.removed) gc_segment(s);
  }
  for (auto& [rank, log] : rank_logs_) log.cur_seg = -1;
  drain_horizon_.clear();
}

// ---- crash recovery ------------------------------------------------------

void StagedFs::recover() {
  PARAMRIO_REQUIRE(!sim::in_simulation(),
                   "StagedFs::recover is an untimed rebuild");
  PARAMRIO_REQUIRE(segments_.empty() && extents_.empty(),
                   "StagedFs::recover needs a freshly constructed facade");
  // 1. Drained truth first: the destination's files seed the logical image.
  for (const std::string& f : dest_.store().list()) {
    std::vector<std::byte> bytes(dest_.store().size(f));
    dest_.store().read_at(f, 0, bytes);
    store().create(f);
    store().write_at(f, 0, bytes);
  }
  // 2. Discover the per-rank segment chains left on the staging tier.
  struct Found {
    int rank = 0;
    int no = 0;
    std::string path;
  };
  std::vector<Found> found;
  for (const std::string& f : staging_.store().list()) {
    int rank = 0;
    int no = 0;
    if (std::sscanf(f.c_str(), ".stage/r%d/seg%d", &rank, &no) == 2) {
      found.push_back(Found{rank, no, f});
    }
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.no < b.no;
  });
  // 3. Replay each chain in order, overlaying staged payloads (re-applying
  // already-drained records is idempotent) and stopping a chain at its first
  // torn or malformed record — the signature of a crash mid-append.
  for (const Found& f : found) {
    segments_.push_back(Segment{f.path, f.rank, f.no});
    const int seg_index = static_cast<int>(segments_.size()) - 1;
    RankLog& log = rank_logs_[f.rank];
    log.next_no = std::max(log.next_no, f.no + 1);
    std::vector<std::byte> raw(staging_.store().size(f.path));
    staging_.store().read_at(f.path, 0, raw);
    std::uint64_t pos = 0;
    while (raw.size() - pos >= kHeaderBytes) {
      ByteReader r(std::span<const std::byte>(raw).subspan(pos));
      if (r.u32() != kRecordMagic) break;
      const std::uint32_t kind = r.u32();
      const std::uint32_t path_len = r.u32();
      const std::uint64_t offset = r.u64();
      const std::uint64_t payload_len = r.u64();
      if (kind > static_cast<std::uint32_t>(RecordKind::kTruncate)) break;
      if (kHeaderBytes + path_len + payload_len > raw.size() - pos) break;
      const std::string path(
          reinterpret_cast<const char*>(raw.data() + pos + kHeaderBytes),
          path_len);
      const auto payload = std::span<const std::byte>(raw).subspan(
          pos + kHeaderBytes + path_len, payload_len);
      switch (static_cast<RecordKind>(kind)) {
        case RecordKind::kData:
          if (!store().exists(path)) store().create(path);
          store().write_at(path, offset, payload);
          insert_extent(path, offset, payload_len, f.rank, seg_index,
                        pos + kHeaderBytes + path_len);
          break;
        case RecordKind::kRemove:
          segments_[static_cast<std::size_t>(seg_index)].tombstones += 1;
          forget_extents(path);
          if (store().exists(path)) store().remove(path);
          break;
        case RecordKind::kTruncate:
          segments_[static_cast<std::size_t>(seg_index)].tombstones += 1;
          forget_extents(path);
          store().create(path);
          break;
      }
      pos += kHeaderBytes + path_len + payload_len;
    }
    segments_[static_cast<std::size_t>(seg_index)].tail = pos;
  }
}

// ---- counters ------------------------------------------------------------

void StagedFs::export_counters(obs::MetricsRegistry& reg) const {
  FileSystem::export_counters(reg);
  const std::string scope = "fs:" + name();
  reg.add(scope, "staged_bytes", staged_bytes_);
  reg.add(scope, "drained_bytes", drained_bytes_);
  reg.add(scope, "staged_live_bytes", staged_live_bytes_);
  reg.add(scope, "segments_created", segments_created_);
  if (segments_removed_ > 0) {
    reg.add(scope, "segments_removed", segments_removed_);
  }
  if (stage_retries_ > 0) reg.add(scope, "stage_retries", stage_retries_);
  if (drain_retries_ > 0) reg.add(scope, "drain_retries", drain_retries_);
  if (unmapped_read_bytes_ > 0) {
    reg.add(scope, "unmapped_read_bytes", unmapped_read_bytes_);
  }
}

}  // namespace paramrio::stage
