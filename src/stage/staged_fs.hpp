// stage::StagedFs — burst-buffer staging tier in front of a shared file
// system (ROADMAP item 2; the generalization of the paper's Fig 9 node-local
// configuration).
//
// Dump writes land *log-structured* on a node-local staging file system
// (typically pfs::LocalDiskFs): each writing rank appends complete records
// — header, path, logical offset, payload — to its own segment files under
// ".stage/r<rank>/", and an in-memory extent map remembers which staged
// range of which logical file lives where.  Because the write path touches
// only the writer's own spindle, dump latency is independent of the
// destination's stripe geometry and of other tenants hammering the shared
// servers — the burst absorber the multi-job work needed.
//
// A *drain* later migrates staged extents to the destination file system
// (typically pfs::StripedFs), reusing the PR 4 RetryPolicy for destination
// faults and the PR 5 shadow-clock deferral machinery for asynchronous
// drains (work runs immediately, time accrues on the shadow clock, the
// issuer settles later and the stall is blamed as "stage.drain").  Drain
// traffic is marked background at the I/O servers and de-weighted under
// multi-job fair share; a lone tenant is still served stretch-free, so
// single-job timing is bit-identical with or without the flag.
//
// Reads are tier-aware: each requested range is split against the extent
// map — staged sub-ranges are served (timed) from the staging segments,
// everything else falls back to the destination.  Every tier read is
// byte-compared against the logical image; a mismatch is a LogicError, so
// the two-tier consistency frontier is self-checking.
//
// Crash consistency: a record is only indexed after it is fully staged, so
// a crash mid-append leaves a torn *tail* that recover() detects and
// discards.  recover() on a fresh facade rebuilds the logical image by
// copying the destination files and replaying each rank's segment chain in
// order (re-applying already-drained records is idempotent).  Because every
// rank's chain is private and append-only, all persisted bytes are
// schedule-seed- and engine-backend-invariant.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "base/units.hpp"
#include "fault/retry.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::stage {

/// When a checkpoint generation's staged bytes move to the destination.
/// Sync: inside dump(), before the commit marker — the marker additionally
/// certifies destination durability of the data files.  Async: kicked off
/// after the marker on the shadow clock; the next dump settles it.  Lazy:
/// never automatically — the owner drains explicitly (or recovers from the
/// staging tier alone).
enum class DrainPolicy { kSync, kAsync, kLazy };

const char* to_string(DrainPolicy policy);

struct StagedFsParams {
  /// Seal a rank's current segment once its size reaches this; a single
  /// oversized record still lands whole (records never split).
  std::uint64_t segment_bytes = 8 * MiB;
  /// Retry budget for *staging-tier* appends and reads (transient faults
  /// injected on the node-local disks).  Default-off: faults propagate.
  fault::RetryPolicy stage_retry;
  /// Retry budget for *destination* writes during a drain.  A drain that
  /// exhausts this budget throws a diagnosed IoError naming the extent; the
  /// staged bytes are retained, never silently dropped.
  fault::RetryPolicy drain_retry;
  /// Fair-share weight scale for drain traffic at shared I/O servers
  /// (0 < scale <= 1; smaller = politer to foreground tenants).
  double drain_weight_scale = 0.25;
};

class StagedFs final : public pfs::FileSystem {
 public:
  /// Neither tier is owned; both must outlive the facade.  The facade keeps
  /// the coherent logical byte image in its own store (like every
  /// FileSystem), the staging tier's store holds the segment files, and the
  /// destination's store holds whatever has been drained — so tests can
  /// byte-compare any tier against a direct (unstaged) run.
  StagedFs(StagedFsParams params, pfs::FileSystem& staging,
           pfs::FileSystem& destination);

  std::string name() const override { return "staged"; }

  /// Opens/creates cost whatever the staging tier charges: the dump path
  /// never touches destination metadata.
  double metadata_cost() const override { return staging_.metadata_cost(); }

  /// The *staging* tier's layout: collective buffering must align (or not)
  /// to where the bytes land first, not to the destination's stripes —
  /// this is what decouples dump latency from destination geometry.
  pfs::Layout layout(const std::string& path) const override {
    return staging_.layout(path);
  }

  pfs::FileSystem& staging() { return staging_; }
  pfs::FileSystem& destination() { return dest_; }
  const StagedFsParams& params() const { return params_; }

  // ---- drain -----------------------------------------------------------

  /// Migrate every extent staged by the *calling* proc's global rank to the
  /// destination, in deterministic (path, offset) order.  kSync charges the
  /// real clock; kAsync runs on the shadow clock (settle later with
  /// drain_settle); kLazy is a no-op.  Collective in spirit: every writing
  /// rank must call it for the staging tier to fully empty.
  void drain_mine(DrainPolicy policy);

  /// Block the calling proc until its last async drain completes; the stall
  /// is recorded as a drain wait ("stage.drain" blame).  No-op when nothing
  /// is in flight.
  void drain_settle();

  /// Migrate *all* remaining extents store-to-store outside the simulation
  /// and delete the segment files (test teardown / final integration step;
  /// the paper's "extra work to integrate the distributed pieces").
  void flush_untimed();

  /// Rebuild the two-tier state after a crash, untimed: copy the
  /// destination's files into the logical image, then replay every rank's
  /// segment chain in (rank, segment, record) order, stopping each chain at
  /// the first torn record.  Call on a *fresh* facade constructed over the
  /// surviving tier file systems.
  void recover();

  // ---- introspection ---------------------------------------------------

  std::uint64_t staged_bytes() const { return staged_bytes_; }
  std::uint64_t drained_bytes() const { return drained_bytes_; }
  /// Payload bytes currently staged but not yet drained (drain backlog).
  std::uint64_t staged_live_bytes() const { return staged_live_bytes_; }
  std::uint64_t stage_retries() const { return stage_retries_; }
  std::uint64_t drain_retries() const { return drain_retries_; }
  /// Bytes served from neither tier (logical image only) — zero on any
  /// correctly seeded run; tests assert on it.
  std::uint64_t unmapped_read_bytes() const { return unmapped_read_bytes_; }
  std::uint64_t segments_created() const { return segments_created_; }
  std::uint64_t segments_removed() const { return segments_removed_; }

  void export_counters(obs::MetricsRegistry& reg) const override;

 protected:
  /// Writes append a record to the caller's segment on the staging tier and
  /// index it; reads are split staged-first/destination-fallback.  All tier
  /// traffic goes through the tiers' public timed APIs, so their own
  /// charge models, fault hooks, retries and counters compose unchanged.
  void charge(sim::Proc& proc, const std::string& path, std::uint64_t offset,
              std::uint64_t bytes, bool is_write) override;

  /// Namespace events must reach both tiers and the index: drop the path's
  /// extents, forget destination descriptors, remove any drained copy, and
  /// journal a tombstone so recover() does not resurrect the old bytes.
  void on_remove(const std::string& path) override;
  void on_truncate(const std::string& path) override;

  /// Untimed setup writes mirror to the destination store (where a direct
  /// run would have put them) and punch through any staged extents they
  /// overlap, so later tier reads see the new bytes.
  void on_untimed_write(const std::string& path, std::uint64_t offset,
                        std::span<const std::byte> data) override;

 private:
  struct Segment {
    std::string path;             ///< staging-tier file name
    int rank = -1;                ///< writing global rank
    int no = 0;                   ///< per-rank sequence number
    int fd = -1;                  ///< staging-tier descriptor (lazy on read)
    std::uint64_t tail = 0;       ///< append position
    std::uint64_t live = 0;       ///< undrained payload bytes referenced
    std::uint64_t tombstones = 0; ///< remove/truncate records journaled
    bool removed = false;         ///< GC'd from the staging tier
  };

  /// Per-writing-rank append state.
  struct RankLog {
    int cur_seg = -1;  ///< index into segments_, -1 = none open
    int next_no = 0;
  };

  /// One staged run of a logical file: maps [start, end) of the file to
  /// payload bytes at `seg_off` of segment `seg`.
  struct Extent {
    std::uint64_t end = 0;
    int writer = -1;
    int seg = -1;
    std::uint64_t seg_off = 0;
  };
  using ExtentMap = std::map<std::uint64_t, Extent>;  // start -> extent

  enum class RecordKind : std::uint32_t {
    kData = 0,
    kRemove = 1,
    kTruncate = 2,
  };

  /// Index into segments_ of the caller's current segment, sealing and
  /// opening as needed so `record_bytes` lands whole.
  int segment_for_append(int rank, std::uint64_t record_bytes);
  int ensure_read_fd(Segment& seg);
  /// Append one complete record (timed inside the simulation, untimed
  /// outside); returns {segment index, payload offset in the segment}.
  std::pair<int, std::uint64_t> append_record(
      RecordKind kind, const std::string& path, std::uint64_t offset,
      std::span<const std::byte> payload);
  void insert_extent(const std::string& path, std::uint64_t lo,
                     std::uint64_t len, int writer, int seg,
                     std::uint64_t seg_off);
  /// Remove staged coverage of [lo, lo+len) (splitting boundary extents)
  /// where `match` accepts the extent; the workhorse behind overwrites,
  /// untimed-write punches, and post-drain erasure.
  template <typename Match>
  void remove_range(const std::string& path, std::uint64_t lo,
                    std::uint64_t len, Match match);
  void punch_hole(const std::string& path, std::uint64_t lo,
                  std::uint64_t len);
  void forget_extents(const std::string& path);
  void release_live(int seg, std::uint64_t bytes);
  void maybe_gc(int seg);
  void gc_segment(Segment& seg);
  void drop_dest_fds(const std::string& path);
  int dest_write_fd(const std::string& path);
  void backlog_gauge() const;

  /// Timed tier read of exactly out.size() bytes through fd, absorbing
  /// injected short reads and (within stage_retry) transient errors.
  void tier_read(pfs::FileSystem& fs, int fd, std::uint64_t offset,
                 std::span<std::byte> out);

  StagedFsParams params_;
  pfs::FileSystem& staging_;
  pfs::FileSystem& dest_;

  /// Deque, not vector: every timed tier call can yield to another proc
  /// that appends a segment, and held Segment references must survive the
  /// growth (deque::push_back never invalidates references).
  std::deque<Segment> segments_;
  std::map<int, RankLog> rank_logs_;
  std::map<std::string, ExtentMap> extents_;
  std::map<std::string, int> dest_read_fds_;
  std::map<std::string, int> dest_write_fds_;
  std::map<int, double> drain_horizon_;  ///< per-rank async completion time

  std::uint64_t staged_bytes_ = 0;
  std::uint64_t drained_bytes_ = 0;
  std::uint64_t staged_live_bytes_ = 0;
  std::uint64_t stage_retries_ = 0;
  std::uint64_t drain_retries_ = 0;
  std::uint64_t unmapped_read_bytes_ = 0;
  std::uint64_t segments_created_ = 0;
  std::uint64_t segments_removed_ = 0;
};

}  // namespace paramrio::stage
