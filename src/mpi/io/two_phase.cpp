// Two-phase collective I/O (ROMIO's strategy) for File::read_at_all and
// File::write_at_all.
#include <algorithm>
#include <cstring>

#include "mpi/io/file.hpp"

namespace paramrio::mpi::io {

namespace {

/// A fragment of one rank's request: where it sits in the file and where it
/// sits in that rank's user buffer.
struct Piece {
  std::uint64_t file_off = 0;
  std::uint64_t len = 0;
  std::uint64_t buf_off = 0;
};

std::vector<Piece> to_pieces(const std::vector<Segment>& segs) {
  std::vector<Piece> pieces;
  pieces.reserve(segs.size());
  std::uint64_t pos = 0;
  for (const Segment& s : segs) {
    pieces.push_back(Piece{s.offset, s.length, pos});
    pos += s.length;
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) {
              return a.file_off < b.file_off;
            });
  return pieces;
}

/// Clip sorted pieces to the file window [lo, hi), in file order.
std::vector<Piece> clip(const std::vector<Piece>& pieces, std::uint64_t lo,
                        std::uint64_t hi) {
  std::vector<Piece> out;
  // First piece that could overlap: last with file_off < hi, scan from the
  // first with end > lo.
  auto it = std::lower_bound(pieces.begin(), pieces.end(), lo,
                             [](const Piece& p, std::uint64_t v) {
                               return p.file_off + p.len <= v;
                             });
  for (; it != pieces.end() && it->file_off < hi; ++it) {
    std::uint64_t s = std::max(it->file_off, lo);
    std::uint64_t e = std::min(it->file_off + it->len, hi);
    if (s >= e) continue;
    out.push_back(Piece{s, e - s, it->buf_off + (s - it->file_off)});
  }
  return out;
}

std::uint64_t total_len(const std::vector<Piece>& pieces) {
  std::uint64_t n = 0;
  for (const Piece& p : pieces) n += p.len;
  return n;
}

Bytes serialize_segments(const std::vector<Segment>& segs) {
  Bytes b(segs.size() * sizeof(Segment));
  if (!segs.empty()) std::memcpy(b.data(), segs.data(), b.size());
  return b;
}

std::vector<Segment> parse_segments(const Bytes& b) {
  PARAMRIO_REQUIRE(b.size() % sizeof(Segment) == 0,
                   "corrupt access-pattern exchange");
  std::vector<Segment> segs(b.size() / sizeof(Segment));
  if (!segs.empty()) std::memcpy(segs.data(), b.data(), b.size());
  return segs;
}

/// Merge overlapping/adjacent [off, off+len) intervals of sorted pieces.
std::vector<Segment> union_runs(const std::vector<Piece>& pieces) {
  std::vector<Segment> runs;
  for (const Piece& p : pieces) {
    if (!runs.empty() &&
        p.file_off <= runs.back().offset + runs.back().length) {
      std::uint64_t end = std::max(runs.back().offset + runs.back().length,
                                   p.file_off + p.len);
      runs.back().length = end - runs.back().offset;
    } else {
      runs.push_back(Segment{p.file_off, p.len});
    }
  }
  return runs;
}

}  // namespace

void File::two_phase(bool is_write, const std::vector<Segment>& segs,
                     std::span<std::byte> rbuf,
                     std::span<const std::byte> wbuf) {
  const int p = comm_.size();

  // ---- phase 0: exchange flattened access patterns --------------------
  std::vector<Bytes> raw = comm_.allgatherv(serialize_segments(segs));
  std::vector<std::vector<Piece>> pieces(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    pieces[static_cast<std::size_t>(r)] =
        to_pieces(parse_segments(raw[static_cast<std::size_t>(r)]));
  }

  // Global hull of the aggregate request.
  std::uint64_t st = UINT64_MAX, end = 0;
  for (const auto& pl : pieces) {
    if (pl.empty()) continue;
    st = std::min(st, pl.front().file_off);
    end = std::max(end, pl.back().file_off + pl.back().len);
  }
  if (end <= st) return;  // nothing to do anywhere (synchronised already)

  // ---- fast path: non-interleaved requests ----------------------------
  // If per-rank hulls don't interleave, collective buffering buys nothing;
  // ROMIO falls back to independent access.
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hulls;
    for (const auto& pl : pieces) {
      if (pl.empty()) continue;
      hulls.emplace_back(pl.front().file_off,
                         pl.back().file_off + pl.back().len);
    }
    std::sort(hulls.begin(), hulls.end());
    bool interleaved = false;
    for (std::size_t i = 0; i + 1 < hulls.size(); ++i) {
      if (hulls[i].second > hulls[i + 1].first) {
        interleaved = true;
        break;
      }
    }
    if (!interleaved) {
      if (!segs.empty()) {
        if (is_write) {
          independent_write(segs, wbuf);
        } else {
          independent_read(segs, rbuf);
        }
      }
      comm_.barrier();
      return;
    }
  }

  // ---- domain assignment ----------------------------------------------
  int naggr = hints_.cb_nodes == 0 ? p : std::min(hints_.cb_nodes, p);
  std::uint64_t span = end - st;
  std::uint64_t share = (span + static_cast<std::uint64_t>(naggr) - 1) /
                        static_cast<std::uint64_t>(naggr);
  std::uint64_t ntimes = (share + hints_.cb_buffer_size - 1) /
                         hints_.cb_buffer_size;
  const int tag = comm_.fresh_collective_tag();

  const bool i_aggregate = comm_.rank() < naggr;
  std::uint64_t my_dom_lo = 0, my_dom_hi = 0;
  if (i_aggregate) {
    my_dom_lo = st + static_cast<std::uint64_t>(comm_.rank()) * share;
    my_dom_hi = std::min(end, my_dom_lo + share);
  }

  const auto& mine = pieces[static_cast<std::size_t>(comm_.rank())];
  std::vector<std::byte> window(hints_.cb_buffer_size);

  for (std::uint64_t t = 0; t < ntimes; ++t) {
    // -- aggregator-side window bounds for this iteration
    std::uint64_t w_lo = 0, w_hi = 0;
    if (i_aggregate && my_dom_lo < my_dom_hi) {
      w_lo = my_dom_lo + t * hints_.cb_buffer_size;
      w_hi = std::min(my_dom_hi, w_lo + hints_.cb_buffer_size);
    }
    const bool window_live = w_lo < w_hi;

    if (!is_write) {
      // ---- READ: aggregator reads its window, distributes pieces -------
      if (window_live) {
        std::vector<Piece> wanted;
        for (int r = 0; r < p; ++r) {
          auto cl = clip(pieces[static_cast<std::size_t>(r)], w_lo, w_hi);
          wanted.insert(wanted.end(), cl.begin(), cl.end());
        }
        std::sort(wanted.begin(), wanted.end(),
                  [](const Piece& a, const Piece& b) {
                    return a.file_off < b.file_off;
                  });
        if (!wanted.empty()) {
          stats_.two_phase_windows += 1;
          std::uint64_t u_lo = wanted.front().file_off;
          std::uint64_t u_hi = 0;
          for (const Piece& q : wanted) {
            u_hi = std::max(u_hi, q.file_off + q.len);
          }
          // One contiguous read spanning all wanted bytes (holes included).
          fs_.read_at(fd_, u_lo,
                      std::span<std::byte>(window.data(), u_hi - u_lo));
          // Pack and ship each rank's share.
          for (int r = 0; r < p; ++r) {
            auto cl = clip(pieces[static_cast<std::size_t>(r)], w_lo, w_hi);
            if (cl.empty()) continue;
            Bytes out(total_len(cl));
            std::uint64_t pos = 0;
            for (const Piece& q : cl) {
              std::memcpy(out.data() + pos, window.data() + (q.file_off - u_lo),
                          q.len);
              pos += q.len;
            }
            comm_.charge_memcpy(out.size());
            comm_.send(r, tag, out);
          }
        }
      }
      // -- requester side: receive from every aggregator that holds a piece
      for (int a = 0; a < naggr; ++a) {
        std::uint64_t d_lo = st + static_cast<std::uint64_t>(a) * share;
        std::uint64_t d_hi = std::min(end, d_lo + share);
        if (d_lo >= d_hi) continue;
        std::uint64_t aw_lo = d_lo + t * hints_.cb_buffer_size;
        std::uint64_t aw_hi = std::min(d_hi, aw_lo + hints_.cb_buffer_size);
        if (aw_lo >= aw_hi) continue;
        auto cl = clip(mine, aw_lo, aw_hi);
        if (cl.empty()) continue;
        Bytes in = comm_.recv(a, tag);
        PARAMRIO_REQUIRE(in.size() == total_len(cl),
                         "two-phase read: piece size mismatch");
        std::uint64_t pos = 0;
        for (const Piece& q : cl) {
          std::memcpy(rbuf.data() + q.buf_off, in.data() + pos, q.len);
          pos += q.len;
        }
        comm_.charge_memcpy(in.size());
      }
    } else {
      // ---- WRITE: requesters ship pieces, aggregator assembles + writes
      for (int a = 0; a < naggr; ++a) {
        std::uint64_t d_lo = st + static_cast<std::uint64_t>(a) * share;
        std::uint64_t d_hi = std::min(end, d_lo + share);
        if (d_lo >= d_hi) continue;
        std::uint64_t aw_lo = d_lo + t * hints_.cb_buffer_size;
        std::uint64_t aw_hi = std::min(d_hi, aw_lo + hints_.cb_buffer_size);
        if (aw_lo >= aw_hi) continue;
        auto cl = clip(mine, aw_lo, aw_hi);
        if (cl.empty()) continue;
        Bytes out(total_len(cl));
        std::uint64_t pos = 0;
        for (const Piece& q : cl) {
          std::memcpy(out.data() + pos, wbuf.data() + q.buf_off, q.len);
          pos += q.len;
        }
        comm_.charge_memcpy(out.size());
        comm_.send(a, tag, out);
      }
      if (window_live) {
        std::vector<Piece> incoming;
        for (int r = 0; r < p; ++r) {
          auto cl = clip(pieces[static_cast<std::size_t>(r)], w_lo, w_hi);
          if (cl.empty()) continue;
          Bytes in = comm_.recv(r, tag);
          PARAMRIO_REQUIRE(in.size() == total_len(cl),
                           "two-phase write: piece size mismatch");
          std::uint64_t u_base = w_lo;
          std::uint64_t pos = 0;
          for (const Piece& q : cl) {
            std::memcpy(window.data() + (q.file_off - u_base), in.data() + pos,
                        q.len);
            pos += q.len;
          }
          comm_.charge_memcpy(in.size());
          incoming.insert(incoming.end(), cl.begin(), cl.end());
        }
        if (!incoming.empty()) {
          stats_.two_phase_windows += 1;
          std::sort(incoming.begin(), incoming.end(),
                    [](const Piece& a2, const Piece& b2) {
                      return a2.file_off < b2.file_off;
                    });
          // Write each covered run contiguously; holes are skipped so no
          // read-modify-write is needed.
          for (const Segment& run : union_runs(incoming)) {
            fs_.write_at(fd_, run.offset,
                         std::span<const std::byte>(
                             window.data() + (run.offset - w_lo), run.length));
          }
        }
      }
    }
  }
}

}  // namespace paramrio::mpi::io
