// Two-phase collective I/O (ROMIO's strategy) for File::read_at_all and
// File::write_at_all, with optional layout-aware file domains.
//
// Domain assignment runs in one of two modes:
//
//  * block mode — the aggregate hull [st, end) is cut into equal per-
//    aggregator byte shares; with Hints::cb_align == 1 (the default) this is
//    the classic 2002 ROMIO partitioning, oblivious to striping.  A larger
//    cb_align rounds the domain boundaries and the per-iteration window
//    stride to that many bytes, so windows stop straddling stripes.
//  * cyclic mode — when cb_align is auto, the fs reports a stripe layout and
//    cb_nodes == 0, each I/O server gets at most one aggregator: aggregator
//    `a` owns exactly the stripes living on the servers with
//    `server % naggr == a`.  Every window then moves whole stripes bound for
//    a single aggregator's servers, so a shared-file write acquires each
//    stripe's write token once, on one client, per open — the repair for the
//    paper's Figure-7 GPFS pathology.
//
// Both sides of every exchange (aggregators packing, requesters matching)
// derive identical window ranges from the shared DomainGeometry.
#include <algorithm>
#include <cstring>

#include "fault/fault.hpp"
#include "mpi/io/deferred_scope.hpp"
#include "mpi/io/file.hpp"
#include "obs/profiler.hpp"
#include "verify/verify.hpp"

namespace paramrio::mpi::io {

namespace {

/// A fragment of one rank's request: where it sits in the file and where it
/// sits in that rank's user buffer.
struct Piece {
  std::uint64_t file_off = 0;
  std::uint64_t len = 0;
  std::uint64_t buf_off = 0;
};

std::vector<Piece> to_pieces(const std::vector<Segment>& segs) {
  std::vector<Piece> pieces;
  pieces.reserve(segs.size());
  std::uint64_t pos = 0;
  for (const Segment& s : segs) {
    pieces.push_back(Piece{s.offset, s.length, pos});
    pos += s.length;
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) {
              return a.file_off < b.file_off;
            });
  return pieces;
}

/// Clip sorted pieces to the file window [lo, hi), in file order.
std::vector<Piece> clip(const std::vector<Piece>& pieces, std::uint64_t lo,
                        std::uint64_t hi) {
  std::vector<Piece> out;
  // First piece that could overlap: last with file_off < hi, scan from the
  // first with end > lo.
  auto it = std::lower_bound(pieces.begin(), pieces.end(), lo,
                             [](const Piece& p, std::uint64_t v) {
                               return p.file_off + p.len <= v;
                             });
  for (; it != pieces.end() && it->file_off < hi; ++it) {
    std::uint64_t s = std::max(it->file_off, lo);
    std::uint64_t e = std::min(it->file_off + it->len, hi);
    if (s >= e) continue;
    out.push_back(Piece{s, e - s, it->buf_off + (s - it->file_off)});
  }
  return out;
}

std::uint64_t total_len(const std::vector<Piece>& pieces) {
  std::uint64_t n = 0;
  for (const Piece& p : pieces) n += p.len;
  return n;
}

Bytes serialize_segments(const std::vector<Segment>& segs) {
  Bytes b(segs.size() * sizeof(Segment));
  if (!segs.empty()) std::memcpy(b.data(), segs.data(), b.size());
  return b;
}

std::vector<Segment> parse_segments(const Bytes& b) {
  PARAMRIO_REQUIRE(b.size() % sizeof(Segment) == 0,
                   "corrupt access-pattern exchange");
  std::vector<Segment> segs(b.size() / sizeof(Segment));
  if (!segs.empty()) std::memcpy(segs.data(), b.data(), b.size());
  return segs;
}

/// Merge overlapping/adjacent [off, off+len) intervals of sorted pieces.
std::vector<Segment> union_runs(const std::vector<Piece>& pieces) {
  std::vector<Segment> runs;
  for (const Piece& p : pieces) {
    if (!runs.empty() &&
        p.file_off <= runs.back().offset + runs.back().length) {
      std::uint64_t end = std::max(runs.back().offset + runs.back().length,
                                   p.file_off + p.len);
      runs.back().length = end - runs.back().offset;
    } else {
      runs.push_back(Segment{p.file_off, p.len});
    }
  }
  return runs;
}

/// One contiguous file range of an aggregator's window, plus where its first
/// byte sits in the aggregator's collective buffer.
struct WindowRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t buf_base = 0;
};

struct DomainGeometry {
  bool cyclic = false;
  std::uint64_t st = 0;
  std::uint64_t end = 0;
  int naggr = 1;
  std::uint64_t ntimes = 0;
  std::uint64_t align = 1;  ///< resolved alignment (block mode)
  // block mode
  std::uint64_t base = 0;   ///< st rounded down to `align`
  std::uint64_t share = 0;  ///< per-aggregator domain size, multiple of align
  std::uint64_t step = 0;   ///< window stride, multiple of align
  // cyclic mode
  std::uint64_t ss = 0;     ///< stripe size
  std::uint64_t spw = 0;    ///< stripes per window
  std::vector<std::vector<std::uint64_t>> stripes;  ///< ascending, per aggr

  /// The disjoint ascending file ranges aggregator `a` touches in iteration
  /// `t` (empty when it sits this one out), with packed buffer bases.
  void window_ranges(int a, std::uint64_t t,
                     std::vector<WindowRange>& out) const {
    out.clear();
    if (cyclic) {
      const auto& list = stripes[static_cast<std::size_t>(a)];
      const std::uint64_t b = t * spw;
      const std::uint64_t e =
          std::min<std::uint64_t>(list.size(), b + spw);
      std::uint64_t wbase = 0;
      for (std::uint64_t k = b; k < e; ++k) {
        const std::uint64_t lo = std::max(st, list[k] * ss);
        const std::uint64_t hi = std::min(end, (list[k] + 1) * ss);
        if (lo >= hi) continue;
        out.push_back(WindowRange{lo, hi, wbase});
        wbase += hi - lo;
      }
    } else {
      const std::uint64_t d0 = base + static_cast<std::uint64_t>(a) * share;
      const std::uint64_t d_lo = std::max(st, d0);
      const std::uint64_t d_hi = std::min(end, d0 + share);
      if (d_lo >= d_hi) return;
      const std::uint64_t w_lo = std::max(d_lo, d0 + t * step);
      const std::uint64_t w_hi = std::min(d_hi, d0 + (t + 1) * step);
      if (w_lo < w_hi) out.push_back(WindowRange{w_lo, w_hi, 0});
    }
  }

  std::uint64_t extent(const std::vector<WindowRange>& ranges) const {
    std::uint64_t n = 0;
    for (const WindowRange& r : ranges) n += r.hi - r.lo;
    return n;
  }
};

DomainGeometry make_geometry(std::uint64_t st, std::uint64_t end,
                             const Hints& hints, const pfs::Layout& layout,
                             int p) {
  DomainGeometry g;
  g.st = st;
  g.end = end;
  const bool auto_align = hints.cb_align == Hints::kCbAlignAuto;
  g.align = auto_align ? (layout.striped() ? layout.stripe_size : 1)
                       : hints.cb_align;
  if (g.align == 0) g.align = 1;
  g.cyclic = auto_align && layout.striped() && hints.cb_nodes == 0;
  if (g.cyclic) {
    g.ss = layout.stripe_size;
    g.naggr = std::min(p, layout.n_servers);
    g.spw = std::max<std::uint64_t>(1, hints.cb_buffer_size / g.ss);
    g.stripes.resize(static_cast<std::size_t>(g.naggr));
    const std::uint64_t s_lo = st / g.ss;
    const std::uint64_t s_hi = (end + g.ss - 1) / g.ss;
    const auto ns = static_cast<std::uint64_t>(layout.n_servers);
    const auto fs0 = static_cast<std::uint64_t>(layout.first_server);
    for (std::uint64_t s = s_lo; s < s_hi; ++s) {
      const std::uint64_t server = (s + fs0) % ns;
      g.stripes[static_cast<std::size_t>(
                    server % static_cast<std::uint64_t>(g.naggr))]
          .push_back(s);
    }
    std::uint64_t longest = 0;
    for (const auto& list : g.stripes) {
      longest = std::max<std::uint64_t>(longest, list.size());
    }
    g.ntimes = (longest + g.spw - 1) / g.spw;
  } else {
    g.naggr = hints.cb_nodes == 0 ? p : std::min(hints.cb_nodes, p);
    g.base = (st / g.align) * g.align;
    const std::uint64_t span = end - g.base;
    std::uint64_t share = (span + static_cast<std::uint64_t>(g.naggr) - 1) /
                          static_cast<std::uint64_t>(g.naggr);
    share = ((share + g.align - 1) / g.align) * g.align;
    g.share = share;
    g.step = std::max(g.align,
                      (hints.cb_buffer_size / g.align) * g.align);
    g.ntimes = (share + g.step - 1) / g.step;
  }
  return g;
}

}  // namespace

void File::two_phase(bool is_write, const std::vector<Segment>& segs,
                     std::span<std::byte> rbuf,
                     std::span<const std::byte> wbuf) {
  const int p = comm_.size();

  // ---- phase 0: exchange flattened access patterns --------------------
  std::vector<Bytes> raw;
  {
    OBS_SPAN("two_phase.pattern_exchange", sim::TimeCategory::kComm);
    raw = comm_.allgatherv(serialize_segments(segs));
  }
  std::vector<std::vector<Piece>> pieces(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    pieces[static_cast<std::size_t>(r)] =
        to_pieces(parse_segments(raw[static_cast<std::size_t>(r)]));
  }

  // Global hull of the aggregate request.
  std::uint64_t st = UINT64_MAX, end = 0;
  for (const auto& pl : pieces) {
    if (pl.empty()) continue;
    st = std::min(st, pl.front().file_off);
    end = std::max(end, pl.back().file_off + pl.back().len);
  }
  if (end <= st) {
    // Nothing to do anywhere (synchronised already) — but the collective
    // call still happened; keep the books consistent.
    stats_.collective_fastpath += 1;
    return;
  }

  // ---- graceful degradation: I/O-server outage -------------------------
  // With retrying enabled and a fault layer attached, ask it whether an I/O
  // server is down right now.  Funnelling the whole window through one
  // aggregator would hammer the dead server with every rank's data and burn
  // the aggregator's retry budget for all of them; independent access lets
  // each rank retry only what it owns.  Per-rank virtual clocks disagree, so
  // the decision is made collective with an allreduce — every rank takes
  // the same branch.
  if (hints_.retry.enabled() && fs_.fault_hook() != nullptr) {
    std::uint64_t down =
        fs_.fault_hook()->degraded(sim::current_proc().now()) ? 1 : 0;
    down = comm_.allreduce_max(down);
    if (down != 0) {
      stats_.collective_fallbacks += 1;
      if (!segs.empty()) {
        if (is_write) {
          independent_write(segs, wbuf);
        } else {
          independent_read(segs, rbuf);
        }
      }
      comm_.barrier();
      return;
    }
  }

  // ---- fast path: non-interleaved requests ----------------------------
  // If per-rank hulls don't interleave, collective buffering buys nothing;
  // ROMIO falls back to independent access.
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hulls;
    for (const auto& pl : pieces) {
      if (pl.empty()) continue;
      hulls.emplace_back(pl.front().file_off,
                         pl.back().file_off + pl.back().len);
    }
    std::sort(hulls.begin(), hulls.end());
    bool interleaved = false;
    for (std::size_t i = 0; i + 1 < hulls.size(); ++i) {
      if (hulls[i].second > hulls[i + 1].first) {
        interleaved = true;
        break;
      }
    }
    if (!interleaved) {
      stats_.collective_fastpath += 1;
      if (!segs.empty()) {
        if (is_write) {
          independent_write(segs, wbuf);
        } else {
          independent_read(segs, rbuf);
        }
      }
      comm_.barrier();
      return;
    }
  }

  // ---- domain assignment ----------------------------------------------
  const pfs::Layout layout = fs_.layout(path_);
  const DomainGeometry geom = make_geometry(st, end, hints_, layout, p);
  const int tag = comm_.fresh_collective_tag();
  const bool i_aggregate = comm_.rank() < geom.naggr;
  const auto& mine = pieces[static_cast<std::size_t>(comm_.rank())];

  // Alignment bookkeeping: classify windows against the fs stripe grid
  // whenever one is known (even with cb_align off — the unaligned baseline
  // should show its straddling windows); token-save estimates only count
  // while the alignment is actually active.
  const std::uint64_t grid = layout.stripe_size;
  const bool align_active = geom.cyclic || geom.align > 1;
  auto classify_window = [&](const std::vector<WindowRange>& ranges) {
    if (grid == 0) return false;
    bool aligned = true;
    for (const WindowRange& r : ranges) {
      if (r.lo % grid != 0 && r.lo != st) aligned = false;
      if (r.hi % grid != 0 && r.hi != end) aligned = false;
    }
    if (aligned) {
      stats_.cb_aligned_windows += 1;
    } else {
      stats_.cb_straddle_windows += 1;
    }
    return aligned;
  };

  // Clip `pl` to every range of a window, concatenated in file order —
  // the canonical packing order both exchange sides agree on.
  auto clip_ranges = [](const std::vector<Piece>& pl,
                        const std::vector<WindowRange>& ranges) {
    std::vector<Piece> out;
    for (const WindowRange& r : ranges) {
      auto cl = clip(pl, r.lo, r.hi);
      out.insert(out.end(), cl.begin(), cl.end());
    }
    return out;
  };
  // Collective-buffer index of absolute file offset `off` (which must lie
  // inside one of the window's ranges).
  auto win_index = [](const std::vector<WindowRange>& ranges,
                      std::uint64_t off) {
    for (const WindowRange& r : ranges) {
      if (off >= r.lo && off < r.hi) return r.buf_base + (off - r.lo);
    }
    PARAMRIO_REQUIRE(false, "two-phase: offset outside window");
    return std::uint64_t{0};
  };

  // The collective buffer: aggregators only, sized per iteration to the
  // window's actual data hull (never the full cb_buffer_size for small
  // requests).  Pipelined collectives double-buffer it by window parity.
  std::vector<std::byte> window;
  std::vector<std::byte> window2;   ///< parity partner (pipelined only)
  std::vector<WindowRange> ranges;  ///< this rank's windows (aggregator)
  std::vector<WindowRange> peer;    ///< scratch: each aggregator's windows

  const bool pipelined = overlap_enabled();
  auto winbuf = [&](std::uint64_t t) -> std::vector<std::byte>& {
    return (pipelined && (t & 1) != 0) ? window2 : window;
  };
  // In-flight aggregator window write (pipelined writes; at most one).
  double pend_issue = 0.0;
  double pend_completion = -1.0;

  if (!is_write && pipelined) {
    // ---- pipelined READ ------------------------------------------------
    // Double-buffered windows: the deferred read of window t+1 is issued
    // before window t's pieces are distributed, so the distribution comm
    // overlaps the next window's file I/O.  Requester side is identical to
    // the synchronous path.
    std::vector<WindowRange> cur, nxt;
    std::vector<std::vector<Piece>> cur_want, nxt_want;
    std::uint64_t cur_total = 0, nxt_total = 0;
    double rp_issue = 0.0, rp_completion = -1.0;

    auto compute = [&](std::uint64_t t, std::vector<WindowRange>& rg,
                       std::vector<std::vector<Piece>>& want,
                       std::uint64_t* total) {
      geom.window_ranges(comm_.rank(), t, rg);
      want.assign(static_cast<std::size_t>(p), {});
      *total = 0;
      for (int r = 0; r < p; ++r) {
        want[static_cast<std::size_t>(r)] =
            clip_ranges(pieces[static_cast<std::size_t>(r)], rg);
        *total += total_len(want[static_cast<std::size_t>(r)]);
      }
    };

    auto issue_read = [&](std::uint64_t t,
                          const std::vector<WindowRange>& rg,
                          const std::vector<std::vector<Piece>>& want) {
      std::vector<std::byte>& win = winbuf(t);
      stats_.two_phase_windows += 1;
      stats_.overlap_windows += 1;
      classify_window(rg);
      const std::uint64_t wbytes = geom.extent(rg);
      win.resize(wbytes);
      stats_.cb_peak_window_bytes =
          std::max(stats_.cb_peak_window_bytes, wbytes);
      obs::counter_sample("cb_window_bytes", static_cast<double>(wbytes));
      std::vector<Piece> all;
      for (const auto& w : want) all.insert(all.end(), w.begin(), w.end());
      std::sort(all.begin(), all.end(), [](const Piece& a, const Piece& b) {
        return a.file_off < b.file_off;
      });
      const std::uint64_t fsize = fs_.size(fd_);
      sim::Proc& proc = sim::current_proc();
      rp_issue = proc.now();
      DeferredScope defer(proc);
      OBS_SPAN("two_phase.io", sim::TimeCategory::kIo);
      obs::span_counter("window_bytes", wbytes);
      for (const Segment& run : union_runs(all)) {
        const std::uint64_t idx = win_index(rg, run.offset);
        const std::uint64_t run_end = run.offset + run.length;
        const std::uint64_t readable_end =
            std::min(run_end, std::max(fsize, run.offset));
        if (readable_end > run.offset) {
          fs_read(run.offset,
                  std::span<std::byte>(win.data() + idx,
                                       readable_end - run.offset));
        }
        if (readable_end < run_end) {
          std::fill_n(win.begin() + static_cast<std::ptrdiff_t>(
                                        idx + (readable_end - run.offset)),
                      run_end - readable_end, std::byte{0});
        }
      }
      rp_completion = defer.end();
      if (verify::Verifier* v = verify::verifier()) {
        v->on_file_deferred_issue(path_, comm_.rank(), rp_issue,
                                  rp_completion);
      }
    };

    if (i_aggregate && geom.ntimes > 0) {
      compute(0, cur, cur_want, &cur_total);
      if (cur_total > 0) issue_read(0, cur, cur_want);
    }
    for (std::uint64_t t = 0; t < geom.ntimes; ++t) {
      const double window_start =
          obs::detail() ? sim::current_proc().now() : 0.0;
      if (i_aggregate) {
        if (cur_total > 0) {
          // Window t's bytes must be on the client before they ship.
          settle_deferred(rp_issue, rp_completion);
          rp_completion = -1.0;
        }
        if (t + 1 < geom.ntimes) {
          compute(t + 1, nxt, nxt_want, &nxt_total);
          if (nxt_total > 0) issue_read(t + 1, nxt, nxt_want);
        }
        if (cur_total > 0) {
          const std::vector<std::byte>& win = winbuf(t);
          OBS_SPAN("two_phase.comm", sim::TimeCategory::kComm);
          for (int r = 0; r < p; ++r) {
            const auto& cl = cur_want[static_cast<std::size_t>(r)];
            if (cl.empty()) continue;
            Bytes out(total_len(cl));
            std::uint64_t pos = 0;
            for (const Piece& q : cl) {
              std::memcpy(out.data() + pos,
                          win.data() + win_index(cur, q.file_off), q.len);
              pos += q.len;
            }
            comm_.charge_memcpy(out.size());
            obs::span_counter("bytes", out.size());
            comm_.send(r, tag, out);
          }
        }
        cur.swap(nxt);
        cur_want.swap(nxt_want);
        cur_total = (t + 1 < geom.ntimes) ? nxt_total : 0;
      }
      // -- requester side: receive from every aggregator that holds a piece
      OBS_SPAN("two_phase.comm", sim::TimeCategory::kComm);
      for (int a = 0; a < geom.naggr; ++a) {
        geom.window_ranges(a, t, peer);
        if (peer.empty()) continue;
        auto cl = clip_ranges(mine, peer);
        if (cl.empty()) continue;
        Bytes in = comm_.recv(a, tag);
        obs::span_counter("bytes", in.size());
        PARAMRIO_REQUIRE(in.size() == total_len(cl),
                         "two-phase read: piece size mismatch");
        std::uint64_t pos = 0;
        for (const Piece& q : cl) {
          std::memcpy(rbuf.data() + q.buf_off, in.data() + pos, q.len);
          pos += q.len;
        }
        comm_.charge_memcpy(in.size());
      }
      if (obs::detail()) {
        obs::latency_sample("two_phase.window",
                            sim::current_proc().now() - window_start);
      }
    }
    return;
  }

  for (std::uint64_t t = 0; t < geom.ntimes; ++t) {
    const double window_start =
        obs::detail() ? sim::current_proc().now() : 0.0;
    if (!is_write) {
      // ---- READ: aggregator reads its window, distributes pieces -------
      if (i_aggregate) {
        geom.window_ranges(comm_.rank(), t, ranges);
        std::vector<std::vector<Piece>> want(static_cast<std::size_t>(p));
        std::uint64_t want_total = 0;
        for (int r = 0; r < p; ++r) {
          want[static_cast<std::size_t>(r)] =
              clip_ranges(pieces[static_cast<std::size_t>(r)], ranges);
          want_total += total_len(want[static_cast<std::size_t>(r)]);
        }
        if (want_total > 0) {
          stats_.two_phase_windows += 1;
          classify_window(ranges);
          const std::uint64_t wbytes = geom.extent(ranges);
          window.resize(wbytes);
          stats_.cb_peak_window_bytes =
              std::max(stats_.cb_peak_window_bytes, wbytes);
          obs::counter_sample("cb_window_bytes",
                              static_cast<double>(wbytes));
          {
            OBS_SPAN("two_phase.io", sim::TimeCategory::kIo);
            obs::span_counter("window_bytes", wbytes);
            // Read each union run of wanted bytes — not the whole hull, so
            // interior holes are never touched — clamped at EOF with a
            // zero-fill tail (a restart may legitimately ask past the end
            // of a short dump; MPI-IO returns zeros there, it must not
            // fault).
            std::vector<Piece> all;
            for (const auto& w : want) {
              all.insert(all.end(), w.begin(), w.end());
            }
            std::sort(all.begin(), all.end(),
                      [](const Piece& a, const Piece& b) {
                        return a.file_off < b.file_off;
                      });
            const std::uint64_t fsize = fs_.size(fd_);
            for (const Segment& run : union_runs(all)) {
              const std::uint64_t idx = win_index(ranges, run.offset);
              const std::uint64_t run_end = run.offset + run.length;
              const std::uint64_t readable_end =
                  std::min(run_end, std::max(fsize, run.offset));
              if (readable_end > run.offset) {
                fs_read(run.offset,
                        std::span<std::byte>(window.data() + idx,
                                             readable_end - run.offset));
              }
              if (readable_end < run_end) {
                std::fill_n(window.begin() +
                                static_cast<std::ptrdiff_t>(
                                    idx + (readable_end - run.offset)),
                            run_end - readable_end, std::byte{0});
              }
            }
          }
          // Pack and ship each rank's share.
          OBS_SPAN("two_phase.comm", sim::TimeCategory::kComm);
          for (int r = 0; r < p; ++r) {
            const auto& cl = want[static_cast<std::size_t>(r)];
            if (cl.empty()) continue;
            Bytes out(total_len(cl));
            std::uint64_t pos = 0;
            for (const Piece& q : cl) {
              std::memcpy(out.data() + pos,
                          window.data() + win_index(ranges, q.file_off),
                          q.len);
              pos += q.len;
            }
            comm_.charge_memcpy(out.size());
            obs::span_counter("bytes", out.size());
            comm_.send(r, tag, out);
          }
        }
      }
      // -- requester side: receive from every aggregator that holds a piece
      OBS_SPAN("two_phase.comm", sim::TimeCategory::kComm);
      for (int a = 0; a < geom.naggr; ++a) {
        geom.window_ranges(a, t, peer);
        if (peer.empty()) continue;
        auto cl = clip_ranges(mine, peer);
        if (cl.empty()) continue;
        Bytes in = comm_.recv(a, tag);
        obs::span_counter("bytes", in.size());
        PARAMRIO_REQUIRE(in.size() == total_len(cl),
                         "two-phase read: piece size mismatch");
        std::uint64_t pos = 0;
        for (const Piece& q : cl) {
          std::memcpy(rbuf.data() + q.buf_off, in.data() + pos, q.len);
          pos += q.len;
        }
        comm_.charge_memcpy(in.size());
      }
    } else {
      // ---- WRITE: requesters ship pieces, aggregator assembles + writes
      {
        OBS_SPAN("two_phase.comm", sim::TimeCategory::kComm);
        for (int a = 0; a < geom.naggr; ++a) {
          geom.window_ranges(a, t, peer);
          if (peer.empty()) continue;
          auto cl = clip_ranges(mine, peer);
          if (cl.empty()) continue;
          Bytes out(total_len(cl));
          std::uint64_t pos = 0;
          for (const Piece& q : cl) {
            std::memcpy(out.data() + pos, wbuf.data() + q.buf_off, q.len);
            pos += q.len;
          }
          comm_.charge_memcpy(out.size());
          obs::span_counter("bytes", out.size());
          comm_.send(a, tag, out);
        }
      }
      if (i_aggregate) {
        geom.window_ranges(comm_.rank(), t, ranges);
        if (!ranges.empty()) {
          std::vector<std::byte>& win = winbuf(t);
          std::vector<Piece> incoming;
          bool sized = false;
          {
            OBS_SPAN("two_phase.comm", sim::TimeCategory::kComm);
            for (int r = 0; r < p; ++r) {
              auto cl =
                  clip_ranges(pieces[static_cast<std::size_t>(r)], ranges);
              if (cl.empty()) continue;
              if (!sized) {
                const std::uint64_t wbytes = geom.extent(ranges);
                win.resize(wbytes);
                stats_.cb_peak_window_bytes =
                    std::max(stats_.cb_peak_window_bytes, wbytes);
                obs::counter_sample("cb_window_bytes",
                                    static_cast<double>(wbytes));
                sized = true;
              }
              Bytes in = comm_.recv(r, tag);
              PARAMRIO_REQUIRE(in.size() == total_len(cl),
                               "two-phase write: piece size mismatch");
              std::uint64_t pos = 0;
              for (const Piece& q : cl) {
                std::memcpy(win.data() + win_index(ranges, q.file_off),
                            in.data() + pos, q.len);
                pos += q.len;
              }
              comm_.charge_memcpy(in.size());
              obs::span_counter("bytes", in.size());
              incoming.insert(incoming.end(), cl.begin(), cl.end());
            }
          }
          if (!incoming.empty()) {
            stats_.two_phase_windows += 1;
            const bool aligned = classify_window(ranges);
            if (aligned && align_active) stats_.cb_token_saves += 1;
            std::sort(incoming.begin(), incoming.end(),
                      [](const Piece& a2, const Piece& b2) {
                        return a2.file_off < b2.file_off;
                      });
            if (pipelined) {
              // ---- pipelined WRITE: the previous window's write ran while
              // this window's exchange was received; charge only whatever
              // stall the exchange did not cover, then leave this window's
              // write in flight in turn.  settle_deferred's clock_at_least
              // also serialises consecutive window writes on the device.
              if (pend_completion >= 0.0) {
                settle_deferred(pend_issue, pend_completion);
                pend_completion = -1.0;
              }
              stats_.overlap_windows += 1;
              sim::Proc& proc = sim::current_proc();
              pend_issue = proc.now();
              DeferredScope defer(proc);
              OBS_SPAN("two_phase.io", sim::TimeCategory::kIo);
              obs::span_counter("window_bytes", win.size());
              for (const Segment& run : union_runs(incoming)) {
                fs_write(run.offset,
                         std::span<const std::byte>(
                             win.data() + win_index(ranges, run.offset),
                             run.length));
              }
              pend_completion = defer.end();
              if (verify::Verifier* v = verify::verifier()) {
                v->on_file_deferred_issue(path_, comm_.rank(), pend_issue,
                                          pend_completion);
              }
            } else {
              OBS_SPAN("two_phase.io", sim::TimeCategory::kIo);
              obs::span_counter("window_bytes", win.size());
              // Write each covered run contiguously; holes are skipped so
              // no read-modify-write is needed.
              for (const Segment& run : union_runs(incoming)) {
                fs_write(run.offset,
                         std::span<const std::byte>(
                             win.data() + win_index(ranges, run.offset),
                             run.length));
              }
            }
          }
        }
      }
    }
    if (obs::detail()) {
      obs::latency_sample("two_phase.window",
                          sim::current_proc().now() - window_start);
    }
  }

  if (pend_completion >= 0.0) {
    // The final window's write stays in flight: blocking collectives drain
    // it on return, split collectives at their end call — by which point
    // the caller's post-begin work may have hidden it entirely.
    collective_pending_issue_ = pend_issue;
    collective_pending_completion_ = pend_completion;
  }
}

}  // namespace paramrio::mpi::io
