#include "mpi/io/file.hpp"

#include <algorithm>

#include "mpi/io/deferred_scope.hpp"
#include "obs/profiler.hpp"
#include "verify/verify.hpp"

namespace paramrio::mpi::io {

std::string hints_key(const Hints& h) {
  std::string key = "cb=" + std::to_string(h.cb_buffer_size) +
                    ",cbn=" + std::to_string(h.cb_nodes) +
                    ",al=" + std::to_string(h.cb_align) +
                    ",ds=" + std::to_string(h.ds_buffer_size) +
                    ",dsr=" + std::to_string(h.data_sieving_reads ? 1 : 0) +
                    ",dsw=" + std::to_string(h.data_sieving_writes ? 1 : 0) +
                    ",wb=" + std::to_string(h.wb_buffer_size) + "," +
                    fault::retry_key(h.retry);
  // Appended only when set, so overlap-off scope names (and therefore
  // registry/trace exports) are byte-identical to earlier releases.
  if (h.overlap) key += ",ov=1";
  return key;
}

File::File(Comm& comm, pfs::FileSystem& fs, std::string path,
           pfs::OpenMode mode, Hints hints)
    : comm_(comm), fs_(fs), path_(std::move(path)), hints_(hints) {
  if (verify::Verifier* v = verify::verifier()) {
    // The open signature every rank must agree on: mode plus the full
    // deterministic hints key.
    v->on_file_open(path_, comm_.rank(), comm_.size(),
                    "mode=" + std::to_string(static_cast<int>(mode)) + "|" +
                        hints_key(hints_));
  }
  if (mode == pfs::OpenMode::kCreate) {
    // Rank 0 creates/truncates; everyone else attaches read-write after the
    // creation is globally visible.
    if (comm_.rank() == 0) fd_ = fs_.open(path_, pfs::OpenMode::kCreate);
    comm_.barrier();
    if (comm_.rank() != 0) fd_ = fs_.open(path_, pfs::OpenMode::kReadWrite);
  } else {
    fd_ = fs_.open(path_, mode);
  }
  open_ = true;
}

File::~File() {
  // Collective close must be explicit; a destructor cannot synchronise.
  // Release the descriptor quietly if the user forgot.
  if (open_) {
    drop_prefetch();
    persist_stats();
    fs_.close(fd_);
  }
}

void File::close() {
  PARAMRIO_REQUIRE(open_, "File::close: already closed");
  OBS_SPAN("mpiio.close", sim::TimeCategory::kIo);
  note_collective("close", 0);
  flush();
  // Drain-and-diagnose: everything still in flight is settled here so no
  // accounting is lost, but leaks are counted and reported — an unwaited
  // request, an unpaired split begin, or an unconsumed prefetch at close is
  // a caller bug the verifier should see, not something to drop silently.
  const bool split_leaked = split_active_;
  drain_collective();  // settles an unpaired begin's in-flight window too
  split_active_ = false;
  const std::uint64_t leaked_requests = pending_requests_;
  pending_requests_ = 0;
  stats_.requests_leaked_at_close += leaked_requests;
  const std::uint64_t leaked_prefetches = prefetched_.size();
  drop_prefetch();
  // In-flight independent ops the caller never waited on finish here; no
  // saved-time credit (wait() is where hiding is accounted), just the stall.
  if (sim::in_simulation() && inflight_horizon_ > 0.0) {
    obs::record_wait(obs::WaitKind::kSettleWait,
                     sim::current_proc().now(), inflight_horizon_);
    sim::current_proc().clock_at_least(inflight_horizon_,
                                       sim::TimeCategory::kIo);
  }
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_close(path_, comm_.rank(), leaked_requests, leaked_prefetches,
                     split_leaked, stats_.overlap_saved_time);
  }
  comm_.barrier();
  persist_stats();
  fs_.close(fd_);
  open_ = false;
}

void File::persist_stats() {
  obs::Collector* c = obs::collector();
  if (c == nullptr) return;
  const std::string scope = "file:" + path_ + "|" + hints_key(hints_);
  obs::MetricsRegistry& reg = c->registry();
  reg.add(scope, "independent_ops", stats_.independent_ops);
  reg.add(scope, "collective_ops", stats_.collective_ops);
  reg.add(scope, "sieve_windows", stats_.sieve_windows);
  reg.add(scope, "two_phase_windows", stats_.two_phase_windows);
  reg.add(scope, "wb_flushes", stats_.wb_flushes);
  reg.add(scope, "wb_absorbed", stats_.wb_absorbed);
  reg.add(scope, "collective_fastpath", stats_.collective_fastpath);
  reg.add(scope, "cb_aligned_windows", stats_.cb_aligned_windows);
  reg.add(scope, "cb_straddle_windows", stats_.cb_straddle_windows);
  reg.add(scope, "cb_token_saves", stats_.cb_token_saves);
  reg.observe_max(scope, "cb_peak_window_bytes", stats_.cb_peak_window_bytes);
  // Fault-survival counters, persisted only when something actually fired so
  // clean runs keep their registry (and trace export) byte-identical.
  const fault::RetryStats& rs = stats_.retry;
  if (rs.retries > 0) reg.add(scope, "io_retries", rs.retries);
  if (rs.transient_errors > 0) {
    reg.add(scope, "transient_io_errors", rs.transient_errors);
  }
  if (rs.short_writes > 0) reg.add(scope, "short_writes", rs.short_writes);
  if (rs.short_reads > 0) reg.add(scope, "short_reads", rs.short_reads);
  if (rs.write_verifications > 0) {
    reg.add(scope, "write_verifications", rs.write_verifications);
  }
  if (rs.backoff_seconds > 0.0) {
    reg.add_value(scope, "backoff_seconds", rs.backoff_seconds);
  }
  if (stats_.collective_fallbacks > 0) {
    reg.add(scope, "collective_fallbacks", stats_.collective_fallbacks);
  }
  // Overlap counters, likewise persisted only when nonzero: overlap-off runs
  // keep their registry byte-identical to pre-overlap releases.
  if (stats_.split_collectives > 0) {
    reg.add(scope, "split_collectives", stats_.split_collectives);
  }
  if (stats_.overlap_windows > 0) {
    reg.add(scope, "overlap_windows", stats_.overlap_windows);
  }
  if (stats_.prefetch_hits > 0) {
    reg.add(scope, "prefetch_hits", stats_.prefetch_hits);
  }
  if (stats_.prefetch_misses > 0) {
    reg.add(scope, "prefetch_misses", stats_.prefetch_misses);
  }
  if (stats_.view_flatten_cache_hits > 0) {
    reg.add(scope, "view_flatten_cache_hits", stats_.view_flatten_cache_hits);
  }
  if (stats_.overlap_saved_time > 0.0) {
    reg.add_value(scope, "overlap_saved_time", stats_.overlap_saved_time);
  }
  if (stats_.requests_leaked_at_close > 0) {
    reg.add(scope, "requests_leaked_at_close",
            stats_.requests_leaked_at_close);
  }
}

void File::check_open(const char* op) const {
  if (open_) return;
  if (verify::Verifier* v = verify::verifier()) {
    v->on_post_close_io(path_, comm_.rank(), op);
  }
  throw IoError("File::" + std::string(op) + "(" + path_ +
                "): file is closed");
}

void File::note_collective(const char* op, std::uint64_t data_bytes) const {
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_collective(path_, comm_.rank(), op, data_bytes, view_sig_);
  }
}

// ---- fault-surviving fs access --------------------------------------------
//
// Every byte a File moves goes through fs_read/fs_write.  They implement the
// POSIX-style resume loop (a short transfer is continued from where it
// stopped — always on, since silently accepting a short write would corrupt
// the file) and, when hints.retry is enabled, absorb TransientIoError with
// exponential backoff on the virtual clock and verify the landed prefix of
// short writes by reading it back.

bool File::try_backoff(int* attempt, std::uint64_t op_serial) {
  stats_.retry.transient_errors += 1;
  if (*attempt >= hints_.retry.max_retries) return false;
  const double delay = fault::backoff_delay(hints_.retry, *attempt);
  *attempt += 1;
  stats_.retry.retries += 1;
  stats_.retry.backoff_seconds += delay;
  if (hints_.retry.log_delays) {
    stats_.retry.delay_log.push_back({op_serial, delay});
  }
  if (sim::in_simulation()) {
    sim::Proc& proc = sim::current_proc();
    obs::record_wait(obs::WaitKind::kRetryBackoff, proc.now(),
                     proc.now() + delay);
    proc.advance(delay, sim::TimeCategory::kIo);
  }
  return true;
}

void File::fs_read(std::uint64_t offset, std::span<std::byte> out) {
  if (out.empty()) {
    fs_.read_at(fd_, offset, out);
    return;
  }
  const std::uint64_t op = retry_op_serial_++;
  std::uint64_t done = 0;
  int attempt = 0;
  while (done < out.size()) {
    std::uint64_t got = 0;
    try {
      got = fs_.read_at(fd_, offset + done, out.subspan(done));
    } catch (const TransientIoError&) {
      if (!try_backoff(&attempt, op)) throw;
      continue;
    }
    if (got < out.size() - done) stats_.retry.short_reads += 1;
    done += got;
    if (done < out.size() && got == 0) {
      // Zero progress is indistinguishable from a failure; it consumes
      // retry budget so a dead-in-the-water file system cannot loop us.
      if (!try_backoff(&attempt, op)) {
        throw TransientIoError("read_at(" + path_ +
                               "): no progress after retries");
      }
    }
  }
}

void File::fs_write(std::uint64_t offset, std::span<const std::byte> data) {
  if (data.empty()) {
    fs_.write_at(fd_, offset, data);
    return;
  }
  const std::uint64_t op = retry_op_serial_++;
  std::uint64_t done = 0;
  int attempt = 0;
  std::vector<std::byte> verify;
  while (done < data.size()) {
    std::uint64_t wrote = 0;
    try {
      wrote = fs_.write_at(fd_, offset + done, data.subspan(done));
    } catch (const TransientIoError&) {
      if (!try_backoff(&attempt, op)) throw;
      continue;
    }
    if (wrote < data.size() - done) {
      stats_.retry.short_writes += 1;
      if (hints_.retry.enabled() && hints_.retry.verify_short_writes &&
          wrote > 0) {
        // Read the landed prefix back before resuming behind it: a short
        // write that also corrupted its prefix must be redone, not resumed.
        verify.resize(wrote);
        bool rewrite = false;
        try {
          const std::uint64_t vgot =
              fs_.read_at(fd_, offset + done, std::span<std::byte>(verify));
          stats_.retry.write_verifications += 1;
          rewrite = !std::equal(
              verify.begin(),
              verify.begin() + static_cast<std::ptrdiff_t>(vgot),
              data.begin() + static_cast<std::ptrdiff_t>(done));
        } catch (const TransientIoError&) {
          // The verification read itself failed transiently; the landed
          // prefix is still the store's truth, so resume optimistically.
        }
        if (rewrite) {
          if (!try_backoff(&attempt, op)) {
            throw TransientIoError("write_at(" + path_ +
                                   "): verification mismatch");
          }
          continue;  // rewrite the remainder including the bad prefix
        }
      }
    }
    done += wrote;
    if (done < data.size() && wrote == 0) {
      if (!try_backoff(&attempt, op)) {
        throw TransientIoError("write_at(" + path_ +
                               "): no progress after retries");
      }
    }
  }
}

void File::set_view(std::uint64_t disp, Datatype filetype) {
  view_disp_ = disp;
  view_sig_ = filetype.signature();
  view_type_ = std::move(filetype);
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_view(path_, comm_.rank(), disp, view_sig_);
  }
}

void File::set_view(std::uint64_t disp) {
  view_disp_ = disp;
  view_sig_ = 0;
  view_type_.reset();
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_view(path_, comm_.rank(), disp, 0);
  }
}

std::uint64_t File::size() {
  flush();
  return fs_.size(fd_);
}

void File::flush() {
  if (wb_runs_.empty()) return;
  OBS_SPAN("mpiio.wb_flush", sim::TimeCategory::kIo);
  stats_.wb_flushes += 1;
  for (const auto& [offset, data] : wb_runs_) {
    fs_write(offset, data);
  }
  wb_runs_.clear();
  wb_bytes_ = 0;
}

bool File::wb_absorb(std::uint64_t offset, std::span<const std::byte> data) {
  if (hints_.wb_buffer_size == 0 || data.empty()) return false;
  if (data.size() > hints_.wb_buffer_size) return false;
  if (wb_bytes_ + data.size() > hints_.wb_buffer_size) flush();

  // Overlap with a pending run would need merge logic; flush instead (rare
  // for the append-style patterns write-behind targets).
  auto next = wb_runs_.lower_bound(offset);
  bool overlap = false;
  if (next != wb_runs_.end() && next->first < offset + data.size()) {
    overlap = true;
  }
  if (next != wb_runs_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.size() > offset) overlap = true;
  }
  if (overlap) flush();

  // Coalesce with the run that ends exactly at `offset`.
  auto it = wb_runs_.lower_bound(offset);
  if (it != wb_runs_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() == offset) {
      prev->second.insert(prev->second.end(), data.begin(), data.end());
      comm_.charge_memcpy(data.size());
      wb_bytes_ += data.size();
      return true;
    }
  }
  auto& run = wb_runs_[offset];
  run.assign(data.begin(), data.end());
  comm_.charge_memcpy(data.size());
  wb_bytes_ += data.size();
  return true;
}

std::vector<Segment> File::map_view(std::uint64_t offset, std::uint64_t len) {
  std::vector<Segment> segs;
  if (len == 0) return segs;
  if (!view_type_) {
    segs.push_back(Segment{view_disp_ + offset, len});
    return segs;
  }
  // Flatten memo: results are stored disp-relative and keyed by the
  // filetype's layout signature, so re-installing an identical filetype at a
  // different displacement (ENZO sets one subarray view per baryon field)
  // still hits; the LRU keeps alternating views from evicting each other.
  auto hit = std::find_if(flatten_cache_.begin(), flatten_cache_.end(),
                          [&](const FlattenEntry& e) {
                            return e.sig == view_sig_ && e.offset == offset &&
                                   e.len == len;
                          });
  if (hit != flatten_cache_.end()) {
    stats_.view_flatten_cache_hits += 1;
    if (hit != flatten_cache_.begin()) {
      std::rotate(flatten_cache_.begin(), hit, std::next(hit));
    }
    segs = flatten_cache_.front().segs;
  } else {
    view_type_->map_stream(offset, len, segs);
    if (flatten_cache_.size() >= kFlattenCacheCapacity) {
      flatten_cache_.pop_back();
    }
    flatten_cache_.insert(flatten_cache_.begin(),
                          FlattenEntry{view_sig_, offset, len, segs});
  }
  for (Segment& s : segs) s.offset += view_disp_;
  return segs;
}

void File::read_at(std::uint64_t offset, std::span<std::byte> buf) {
  check_open("read_at");
  if (buf.empty()) return;
  OBS_SPAN("mpiio.read", sim::TimeCategory::kIo);
  obs::span_counter("bytes", buf.size());
  flush();  // reads must observe this rank's buffered writes
  stats_.independent_ops += 1;
  auto segs = map_view(offset, buf.size());
  if (!prefetched_.empty()) {
    // An exact segment match is a hit: settle the in-flight read and copy.
    for (auto it = prefetched_.begin(); it != prefetched_.end(); ++it) {
      if (it->segs == segs) {
        stats_.prefetch_hits += 1;
        settle_deferred(it->issued, it->completion);
        std::copy(it->data.begin(), it->data.end(), buf.begin());
        comm_.charge_memcpy(buf.size());
        prefetched_.erase(it);
        return;
      }
    }
    // A partially-overlapping read cannot be stitched from the buffer;
    // discard the stale entries and read from the file.
    invalidate_prefetch(segs);
  }
  independent_read(segs, buf);
}

void File::write_at(std::uint64_t offset, std::span<const std::byte> buf) {
  check_open("write_at");
  if (buf.empty()) return;
  OBS_SPAN("mpiio.write", sim::TimeCategory::kIo);
  obs::span_counter("bytes", buf.size());
  stats_.independent_ops += 1;
  auto segs = map_view(offset, buf.size());
  invalidate_prefetch(segs);
  if (segs.size() == 1 && wb_absorb(segs[0].offset, buf)) {
    stats_.wb_absorbed += 1;
    return;
  }
  independent_write(segs, buf);
}

void File::independent_read(const std::vector<Segment>& segs,
                            std::span<std::byte> buf) {
  if (segs.size() == 1) {
    fs_read(segs[0].offset, buf);
    return;
  }
  if (!hints_.data_sieving_reads) {
    std::uint64_t pos = 0;
    for (const Segment& s : segs) {
      fs_read(s.offset, buf.subspan(pos, s.length));
      pos += s.length;
    }
    return;
  }
  // Data sieving: walk the hull [first, last) in sieve-buffer windows; one
  // contiguous read per window, then extract the wanted pieces.  The buffer
  // is sized to the actual hull, not the full ds_buffer_size hint.
  std::uint64_t hull_lo = segs.front().offset;
  std::uint64_t hull_hi = segs.back().offset + segs.back().length;
  std::vector<std::byte> sieve(
      std::min<std::uint64_t>(hints_.ds_buffer_size, hull_hi - hull_lo));
  std::size_t si = 0;           // current segment
  std::uint64_t seg_done = 0;   // bytes of segs[si] already delivered
  std::uint64_t buf_pos = 0;
  for (std::uint64_t w = hull_lo; w < hull_hi;
       w += hints_.ds_buffer_size) {
    std::uint64_t we = std::min(w + hints_.ds_buffer_size, hull_hi);
    stats_.sieve_windows += 1;
    std::span<std::byte> win(sieve.data(), we - w);
    fs_read(w, win);
    while (si < segs.size()) {
      std::uint64_t so = segs[si].offset + seg_done;
      if (so >= we) break;
      std::uint64_t take = std::min(segs[si].length - seg_done, we - so);
      std::copy_n(win.begin() + static_cast<std::ptrdiff_t>(so - w), take,
                  buf.begin() + static_cast<std::ptrdiff_t>(buf_pos));
      comm_.charge_memcpy(take);
      buf_pos += take;
      seg_done += take;
      if (seg_done == segs[si].length) {
        ++si;
        seg_done = 0;
      }
    }
  }
  PARAMRIO_REQUIRE(buf_pos == buf.size(), "sieve read did not fill buffer");
}

void File::independent_write(const std::vector<Segment>& segs,
                             std::span<const std::byte> buf) {
  if (segs.size() == 1) {
    fs_write(segs[0].offset, buf);
    return;
  }
  if (!hints_.data_sieving_writes) {
    std::uint64_t pos = 0;
    for (const Segment& s : segs) {
      fs_write(s.offset, buf.subspan(pos, s.length));
      pos += s.length;
    }
    return;
  }
  // Write "sieving": assemble runs of segments that fit one sieve buffer and
  // whose hull is densely used (>= 50%), and write each assembled hull with
  // a read-modify-write; sparse runs are written per segment.  This mirrors
  // ROMIO's ind-write data sieving without file locking (the engine already
  // serialises ranks).
  std::uint64_t buf_pos = 0;
  std::size_t i = 0;
  std::vector<std::byte> sieve;
  while (i < segs.size()) {
    // Grow a run [i, j) limited by the sieve buffer.
    std::size_t j = i + 1;
    std::uint64_t used = segs[i].length;
    while (j < segs.size() &&
           segs[j].offset + segs[j].length - segs[i].offset <=
               hints_.ds_buffer_size) {
      used += segs[j].length;
      ++j;
    }
    std::uint64_t hull_lo = segs[i].offset;
    std::uint64_t hull_hi = segs[j - 1].offset + segs[j - 1].length;
    std::uint64_t hull = hull_hi - hull_lo;
    if (j - i > 1 && used * 2 >= hull) {
      stats_.sieve_windows += 1;
      sieve.resize(hull);
      // Read-modify-write: preserve existing bytes in the holes.  Only the
      // part of the hull that exists on disk is read, and only (read-back
      // bytes ∪ covered segments) are written back — gaps past EOF stay
      // unmaterialised, so a genuine hole is still a hole to the checker
      // and to Table-1 write accounting.
      std::uint64_t fsize = fs_.size(fd_);
      std::uint64_t readable =
          hull_lo < fsize ? std::min(hull, fsize - hull_lo) : 0;
      if (readable > 0) {
        fs_read(hull_lo, std::span<std::byte>(sieve.data(), readable));
      }
      for (std::size_t k = i; k < j; ++k) {
        std::copy_n(
            buf.begin() + static_cast<std::ptrdiff_t>(buf_pos),
            segs[k].length,
            sieve.begin() +
                static_cast<std::ptrdiff_t>(segs[k].offset - hull_lo));
        comm_.charge_memcpy(segs[k].length);
        buf_pos += segs[k].length;
      }
      // Merge the readable prefix with the segment intervals and write each
      // resulting run; the dense pre-EOF case stays one hull-sized write.
      std::uint64_t run_lo = hull_lo;
      std::uint64_t run_hi = hull_lo + readable;
      auto write_run = [&]() {
        if (run_hi > run_lo) {
          fs_write(run_lo, std::span<const std::byte>(
                               sieve.data() + (run_lo - hull_lo),
                               run_hi - run_lo));
        }
      };
      for (std::size_t k = i; k < j; ++k) {
        if (segs[k].offset <= run_hi) {
          run_hi = std::max(run_hi, segs[k].offset + segs[k].length);
        } else {
          write_run();
          run_lo = segs[k].offset;
          run_hi = segs[k].offset + segs[k].length;
        }
      }
      write_run();
    } else {
      for (std::size_t k = i; k < j; ++k) {
        fs_write(segs[k].offset, buf.subspan(buf_pos, segs[k].length));
        buf_pos += segs[k].length;
      }
    }
    i = j;
  }
  PARAMRIO_REQUIRE(buf_pos == buf.size(), "sieve write did not drain buffer");
}

void File::read_at_all(std::uint64_t offset, std::span<std::byte> buf) {
  check_open("read_at_all");
  PARAMRIO_REQUIRE(!split_active_,
                   "read_at_all: split collective still active");
  note_collective("read_at_all", buf.size());
  OBS_SPAN("mpiio.read_all", sim::TimeCategory::kIo);
  obs::span_counter("bytes", buf.size());
  flush();
  stats_.collective_ops += 1;
  two_phase(/*is_write=*/false, map_view(offset, buf.size()), buf, {});
  drain_collective();
}

void File::write_at_all(std::uint64_t offset,
                        std::span<const std::byte> buf) {
  check_open("write_at_all");
  PARAMRIO_REQUIRE(!split_active_,
                   "write_at_all: split collective still active");
  note_collective("write_at_all", buf.size());
  OBS_SPAN("mpiio.write_all", sim::TimeCategory::kIo);
  obs::span_counter("bytes", buf.size());
  flush();
  // Aggregators rewrite arbitrary ranks' ranges; a rank cannot tell which of
  // its prefetched ranges another rank's write covers, so drop them all.
  drop_prefetch();
  stats_.collective_ops += 1;
  two_phase(/*is_write=*/true, map_view(offset, buf.size()), {}, buf);
  drain_collective();
}

// ---- overlapped I/O (Hints::overlap) --------------------------------------

bool File::overlap_enabled() const {
  return hints_.overlap && sim::in_simulation() &&
         !sim::current_proc().deferred();
}

void File::settle_deferred(double issued, double completion) {
  if (!sim::in_simulation()) return;
  sim::Proc& proc = sim::current_proc();
  const double now_before = proc.now();
  const double hidden = std::min(completion, now_before) - issued;
  if (hidden > 0.0) stats_.overlap_saved_time += hidden;
  // Whatever the overlap did not hide is a stall waiting for the in-flight
  // window/request to land — the deferred-settle wait-for edge.
  obs::record_wait(obs::WaitKind::kSettleWait, now_before, completion);
  proc.clock_at_least(completion, sim::TimeCategory::kIo);
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_settle(path_, comm_.rank(), issued, completion,
                      hidden > 0.0 ? hidden : 0.0, now_before, proc.now());
  }
}

void File::drain_collective() {
  if (collective_pending_completion_ < 0.0) return;
  settle_deferred(collective_pending_issue_, collective_pending_completion_);
  collective_pending_completion_ = -1.0;
}

void File::invalidate_prefetch(const std::vector<Segment>& segs) {
  if (prefetched_.empty() || segs.empty()) return;
  auto intersects = [&segs](const std::vector<Segment>& entry) {
    for (const Segment& a : entry) {
      for (const Segment& b : segs) {
        if (a.offset < b.offset + b.length && b.offset < a.offset + a.length) {
          return true;
        }
      }
    }
    return false;
  };
  for (auto it = prefetched_.begin(); it != prefetched_.end();) {
    if (intersects(it->segs)) {
      stats_.prefetch_misses += 1;
      it = prefetched_.erase(it);
    } else {
      ++it;
    }
  }
}

void File::drop_prefetch() {
  if (prefetched_.empty()) return;
  stats_.prefetch_misses += prefetched_.size();
  prefetched_.clear();
}

Request File::iread_at(std::uint64_t offset, std::span<std::byte> buf) {
  check_open("iread_at");
  Request req;
  if (buf.empty()) return req;
  if (!overlap_enabled()) {
    read_at(offset, buf);
    return req;  // completed synchronously; inactive
  }
  flush();  // reads must observe this rank's buffered writes
  stats_.independent_ops += 1;
  auto segs = map_view(offset, buf.size());
  invalidate_prefetch(segs);
  sim::Proc& proc = sim::current_proc();
  req.issued_ = proc.now();
  {
    DeferredScope defer(proc);
    OBS_SPAN("mpiio.iread", sim::TimeCategory::kIo);
    obs::span_counter("bytes", buf.size());
    independent_read(segs, buf);
    req.completion_ = defer.end();
  }
  req.active_ = true;
  pending_requests_ += 1;
  obs::gauge_int("rank" + std::to_string(proc.global_rank()) +
                     "/mpiio_outstanding",
                 pending_requests_);
  inflight_horizon_ = std::max(inflight_horizon_, req.completion_);
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_deferred_issue(path_, comm_.rank(), req.issued_,
                              req.completion_);
  }
  return req;
}

Request File::iwrite_at(std::uint64_t offset, std::span<const std::byte> buf) {
  check_open("iwrite_at");
  Request req;
  if (buf.empty()) return req;
  if (!overlap_enabled()) {
    write_at(offset, buf);
    return req;  // completed synchronously; inactive
  }
  flush();  // keep file-order with earlier buffered writes
  stats_.independent_ops += 1;
  auto segs = map_view(offset, buf.size());
  invalidate_prefetch(segs);
  sim::Proc& proc = sim::current_proc();
  req.issued_ = proc.now();
  {
    DeferredScope defer(proc);
    OBS_SPAN("mpiio.iwrite", sim::TimeCategory::kIo);
    obs::span_counter("bytes", buf.size());
    independent_write(segs, buf);
    req.completion_ = defer.end();
  }
  req.active_ = true;
  pending_requests_ += 1;
  obs::gauge_int("rank" + std::to_string(proc.global_rank()) +
                     "/mpiio_outstanding",
                 pending_requests_);
  inflight_horizon_ = std::max(inflight_horizon_, req.completion_);
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_deferred_issue(path_, comm_.rank(), req.issued_,
                              req.completion_);
  }
  return req;
}

void File::wait(Request& req) {
  if (!req.active_) return;
  req.active_ = false;
  if (pending_requests_ > 0) pending_requests_ -= 1;
  if (sim::in_simulation()) {
    obs::gauge_int(
        "rank" + std::to_string(sim::current_proc().global_rank()) +
            "/mpiio_outstanding",
        pending_requests_);
  }
  settle_deferred(req.issued_, req.completion_);
}

void File::wait_all(std::span<Request> reqs) {
  for (Request& r : reqs) wait(r);
}

void File::read_at_all_begin(std::uint64_t offset, std::span<std::byte> buf) {
  check_open("read_at_all_begin");
  PARAMRIO_REQUIRE(!split_active_,
                   "read_at_all_begin: split collective already active");
  note_collective("read_at_all_begin", buf.size());
  OBS_SPAN("mpiio.read_all_begin", sim::TimeCategory::kIo);
  obs::span_counter("bytes", buf.size());
  flush();
  stats_.collective_ops += 1;
  two_phase(/*is_write=*/false, map_view(offset, buf.size()), buf, {});
  split_active_ = true;
}

void File::read_at_all_end() {
  check_open("read_at_all_end");
  PARAMRIO_REQUIRE(split_active_,
                   "read_at_all_end: no split collective active");
  note_collective("read_at_all_end", 0);
  OBS_SPAN("mpiio.read_all_end", sim::TimeCategory::kIo);
  drain_collective();
  split_active_ = false;
  stats_.split_collectives += 1;
}

void File::write_at_all_begin(std::uint64_t offset,
                              std::span<const std::byte> buf) {
  check_open("write_at_all_begin");
  PARAMRIO_REQUIRE(!split_active_,
                   "write_at_all_begin: split collective already active");
  note_collective("write_at_all_begin", buf.size());
  OBS_SPAN("mpiio.write_all_begin", sim::TimeCategory::kIo);
  obs::span_counter("bytes", buf.size());
  flush();
  drop_prefetch();
  stats_.collective_ops += 1;
  two_phase(/*is_write=*/true, map_view(offset, buf.size()), {}, buf);
  split_active_ = true;
}

void File::write_at_all_end() {
  check_open("write_at_all_end");
  PARAMRIO_REQUIRE(split_active_,
                   "write_at_all_end: no split collective active");
  note_collective("write_at_all_end", 0);
  OBS_SPAN("mpiio.write_all_end", sim::TimeCategory::kIo);
  drain_collective();
  split_active_ = false;
  stats_.split_collectives += 1;
}

void File::prefetch(std::uint64_t offset, std::uint64_t len) {
  check_open("prefetch");
  if (len == 0 || !overlap_enabled()) return;
  flush();  // the prefetched bytes must observe this rank's buffered writes
  auto segs = map_view(offset, len);
  // Never read ahead past EOF (an untimed metadata peek, like ROMIO's
  // size check before sieving); the later read_at will fault normally.
  if (segs.back().offset + segs.back().length > fs_.size(fd_)) return;
  for (const PrefetchEntry& e : prefetched_) {
    if (e.segs == segs) return;  // identical range already in flight
  }
  PrefetchEntry entry;
  entry.segs = segs;
  entry.data.resize(len);
  sim::Proc& proc = sim::current_proc();
  entry.issued = proc.now();
  {
    DeferredScope defer(proc);
    OBS_SPAN("mpiio.prefetch", sim::TimeCategory::kIo);
    obs::span_counter("bytes", len);
    independent_read(segs, std::span<std::byte>(entry.data));
    entry.completion = defer.end();
  }
  inflight_horizon_ = std::max(inflight_horizon_, entry.completion);
  if (verify::Verifier* v = verify::verifier()) {
    v->on_file_deferred_issue(path_, comm_.rank(), entry.issued,
                              entry.completion);
  }
  prefetched_.push_back(std::move(entry));
}

}  // namespace paramrio::mpi::io
