// RAII wrapper for sim::Proc's deferred (shadow-clock) execution mode, used
// by the overlapped-I/O paths in File and its two-phase engine.
//
// Exception-safe: if the deferred region unwinds (a retry budget exhausts
// mid-flight), the destructor ends deferred mode so the proc is not left
// stuck on the shadow clock.
#pragma once

#include "sim/engine.hpp"

namespace paramrio::mpi::io {

class DeferredScope {
 public:
  explicit DeferredScope(sim::Proc& proc) : proc_(proc) {
    proc_.begin_deferred();
  }
  ~DeferredScope() {
    if (!ended_) proc_.end_deferred();
  }
  DeferredScope(const DeferredScope&) = delete;
  DeferredScope& operator=(const DeferredScope&) = delete;

  /// Finish cleanly; returns the completion time.
  double end() {
    ended_ = true;
    return proc_.end_deferred();
  }

 private:
  sim::Proc& proc_;
  bool ended_ = false;
};

}  // namespace paramrio::mpi::io
