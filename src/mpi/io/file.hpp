// ROMIO-style MPI-IO on top of the mini-MPI and the simulated file systems.
//
// A File is opened collectively over a communicator.  Each rank owns a file
// view — a displacement plus a Datatype tiled along the file — and addresses
// data by offsets in its *view stream* (etype = byte), exactly like MPI-IO.
//
// Independent accesses use ROMIO's data-sieving optimisation: a
// noncontiguous request is served by a small number of large contiguous
// file accesses into a sieve buffer (read-modify-write for writes is not
// needed because write runs are coalesced and written individually).
//
// Collective accesses (read_at_all / write_at_all) implement the two-phase
// strategy: ranks exchange their flattened access patterns, the aggregate
// byte range is partitioned into per-aggregator file domains, and each
// iteration moves one collective-buffer-sized window per aggregator —
// contiguous I/O in the I/O phase, alltoall-style redistribution in the
// communication phase.  This is the optimisation the paper credits for the
// MPI-IO wins (and whose per-request costs explain the losses on GPFS).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::mpi::io {

struct Hints {
  /// cb_align == kCbAlignAuto: query the file system's Layout and align
  /// collective-buffering file domains to its stripe size (and, when
  /// cb_nodes == 0 on a striped fs, assign at most one aggregator domain per
  /// I/O server, cyclically by stripe).
  static constexpr std::uint64_t kCbAlignAuto = 0;

  std::uint64_t cb_buffer_size = 4 * MiB;  ///< two-phase window per aggregator
  int cb_nodes = 0;                        ///< aggregator count; 0 = all ranks
  /// File-domain / window alignment for two-phase collective I/O, in bytes.
  /// 1 (default) reproduces classic ROMIO: domains are equal byte shares of
  /// the aggregate hull, oblivious to striping — the Figure-7 pathology.
  /// kCbAlignAuto (0) asks the fs; any other value aligns domain boundaries
  /// and per-iteration windows to that many bytes.
  std::uint64_t cb_align = 1;
  std::uint64_t ds_buffer_size = 4 * MiB;  ///< data-sieving buffer
  bool data_sieving_reads = true;
  bool data_sieving_writes = true;

  /// Write-behind buffering for *independent* writes (the authors' two-stage
  /// write-behind method, Liao et al.): contiguous writes accumulate in a
  /// local buffer and are flushed as few large requests when the buffer
  /// fills, on any read, or at close.  0 disables (MPI-visible semantics are
  /// unchanged either way within one rank; cross-rank readers must
  /// synchronise through the collective calls as usual).
  std::uint64_t wb_buffer_size = 0;

  /// Retry/backoff for transient file-system faults (injected EIO, short
  /// transfers, server outages).  Default-off: transient errors propagate.
  /// When enabled, every fs access a File performs — independent, sieved,
  /// write-behind flush and two-phase aggregator I/O — retries with
  /// exponential virtual-clock backoff, short transfers are resumed (with a
  /// read-back verification of the landed prefix when verify_short_writes
  /// is set), and collective calls degrade to independent access while the
  /// fault layer reports an I/O-server outage.
  fault::RetryPolicy retry;

  /// Overlap communication and file I/O.  When set, two-phase collective
  /// windows are double-buffered and pipelined (the alltoall exchange for
  /// window i+1 runs while the aggregator's write of window i is in
  /// flight), the nonblocking iread_at/iwrite_at and the split-collective
  /// begin/end calls genuinely defer their I/O, and prefetch() issues
  /// read-ahead.  Default-off: every one of those paths is byte- and
  /// virtual-time-identical to the synchronous implementation.
  bool overlap = false;
};

/// Statistics a File accumulates per rank-agnostic call site (useful for the
/// ablation benches).
struct FileStats {
  std::uint64_t independent_ops = 0;
  std::uint64_t collective_ops = 0;
  std::uint64_t sieve_windows = 0;
  std::uint64_t two_phase_windows = 0;
  std::uint64_t wb_flushes = 0;   ///< write-behind buffer flushes
  std::uint64_t wb_absorbed = 0;  ///< writes absorbed into the buffer

  /// Collective calls resolved without any two-phase window: the aggregate
  /// request was empty, or per-rank hulls did not interleave and the call
  /// fell back to independent access.
  std::uint64_t collective_fastpath = 0;
  /// Two-phase windows whose boundaries all fell on the underlying stripe
  /// grid (or on the aggregate hull edge).  Counted only when the fs reports
  /// a stripe layout, regardless of cb_align, so an unaligned baseline shows
  /// its straddling windows.
  std::uint64_t cb_aligned_windows = 0;
  /// Two-phase windows with at least one boundary strictly inside a stripe:
  /// each such boundary splits the stripe between two aggregators (two
  /// server requests, and write-token false sharing on GPFS).
  std::uint64_t cb_straddle_windows = 0;
  /// Write windows that stripe alignment kept from sharing a boundary
  /// stripe with a neighbouring aggregator — an estimate of the write-token
  /// acquisitions the alignment avoided.  Only counted while cb_align is
  /// active (resolved alignment > 1).
  std::uint64_t cb_token_saves = 0;
  /// High-water mark of this rank's collective-buffer allocation; with the
  /// window sized to the actual data hull this stays well under
  /// cb_buffer_size for small requests.
  std::uint64_t cb_peak_window_bytes = 0;

  /// Collective calls that degraded to independent access because the fault
  /// layer reported an I/O-server outage (decided collectively, so every
  /// rank takes the same path).
  std::uint64_t collective_fallbacks = 0;
  /// Retry-loop counters (re-attempts, transient errors, short transfers,
  /// write verifications, virtual backoff slept).
  fault::RetryStats retry;

  // ---- overlap (Hints::overlap) counters --------------------------------

  /// Split-collective pairs completed (one per begin/end).
  std::uint64_t split_collectives = 0;
  /// Two-phase windows whose aggregator I/O was deferred so the next
  /// window's exchange could run concurrently.
  std::uint64_t overlap_windows = 0;
  /// read_at calls served from a prefetch() buffer.
  std::uint64_t prefetch_hits = 0;
  /// Prefetched ranges discarded unused (partial-overlap reads, intervening
  /// writes, or still pending at close).
  std::uint64_t prefetch_misses = 0;
  /// map_view flattenings skipped because the (filetype signature, range)
  /// matched the memoized result of the previous call.
  std::uint64_t view_flatten_cache_hits = 0;
  /// Virtual seconds of in-flight I/O hidden behind other work: for every
  /// deferred operation, min(completion, wait time) - issue time.
  double overlap_saved_time = 0.0;
  /// Nonblocking requests still active when close() ran.  close() settles
  /// their in-flight time (no data is lost), but an unwaited request is an
  /// MPI semantics violation — counted here and reported through the
  /// verifier instead of silently dropped.
  std::uint64_t requests_leaked_at_close = 0;
};

/// Compact deterministic key for a hint set, used to name the registry scope
/// a File's stats persist into ("file:<path>|<hints_key>").
std::string hints_key(const Hints& hints);

/// Handle to one nonblocking independent operation (iread_at/iwrite_at).
/// Data moves at issue time — the simulation stays content-deterministic —
/// and the handle carries the operation's virtual completion time; wait()
/// charges the issuer exactly the stall that other work did not hide.
class Request {
 public:
  Request() = default;
  /// True until the request has been waited on (a default-constructed or
  /// already-completed request is inactive; waiting on it is a no-op).
  bool active() const { return active_; }

 private:
  friend class File;
  double issued_ = 0.0;
  double completion_ = 0.0;
  bool active_ = false;
};

class File {
 public:
  /// Collective open: every rank must call with identical arguments.
  File(Comm& comm, pfs::FileSystem& fs, std::string path, pfs::OpenMode mode,
       Hints hints = {});

  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// Collective close (synchronises, releases the descriptor).
  void close();

  /// Install this rank's file view: visible bytes are `filetype` tiled from
  /// absolute file offset `disp`.
  void set_view(std::uint64_t disp, Datatype filetype);

  /// Drop back to the identity view at displacement `disp`.
  void set_view(std::uint64_t disp);

  // ---- independent I/O (offsets are view-stream bytes) ----------------

  void read_at(std::uint64_t offset, std::span<std::byte> buf);
  void write_at(std::uint64_t offset, std::span<const std::byte> buf);

  // ---- nonblocking independent I/O -------------------------------------
  //
  // With Hints::overlap set the operation's file-system time runs in
  // flight (deferred on the engine's shadow clock) and the returned Request
  // completes at its virtual finish time; without it the call completes
  // synchronously and wait() is a no-op.  As in MPI, the buffer must not be
  // reused (writes) or read (reads) until the request is waited on.

  Request iread_at(std::uint64_t offset, std::span<std::byte> buf);
  Request iwrite_at(std::uint64_t offset, std::span<const std::byte> buf);

  /// Complete a request: charges this rank the remaining in-flight time (if
  /// any) as kIo and credits the hidden part to overlap_saved_time.
  void wait(Request& req);
  void wait_all(std::span<Request> reqs);

  // ---- collective I/O (all ranks must participate) ---------------------

  void read_at_all(std::uint64_t offset, std::span<std::byte> buf);
  void write_at_all(std::uint64_t offset, std::span<const std::byte> buf);

  // ---- split collective I/O (Thakur/Gropp/Lusk begin/end interface) -----
  //
  // A begin call starts the collective (all ranks participate; with
  // Hints::overlap the tail of the aggregator's window I/O stays in
  // flight), the matching end completes it.  At most one split collective
  // may be active per File, and blocking collectives must not be issued
  // while one is.  Zero-length participation (an empty buffer) joins and
  // completes like any other rank.

  void read_at_all_begin(std::uint64_t offset, std::span<std::byte> buf);
  void read_at_all_end();
  void write_at_all_begin(std::uint64_t offset,
                          std::span<const std::byte> buf);
  void write_at_all_end();

  /// Read-ahead hint: asynchronously fetch [offset, offset+len) of the view
  /// stream into an internal buffer.  A later read_at of exactly that range
  /// is served from the buffer (prefetch_hits), charging only the stall
  /// left after overlapped work; partially overlapping reads and
  /// intervening writes discard the buffer (prefetch_misses).  No-op when
  /// Hints::overlap is off or len == 0.
  void prefetch(std::uint64_t offset, std::uint64_t len);

  /// Flush this rank's write-behind buffer (no-op when disabled or empty).
  void flush();

  /// Current physical file size in bytes (flushes write-behind first so the
  /// answer reflects this rank's writes).
  std::uint64_t size();

  const Hints& hints() const { return hints_; }
  const FileStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  /// Persist this rank's FileStats into the attached obs collector's
  /// registry (scope "file:<path>|<hints_key>"), so the numbers outlive the
  /// File.  Ranks add into the same scope; called once per rank, from
  /// close() or the destructor fallback.
  void persist_stats();
  /// Map [offset, offset+len) of this rank's view stream to absolute file
  /// segments, in stream order, coalesced.  Memoizes the flattening of the
  /// previous call (view_flatten_cache_hits).
  std::vector<Segment> map_view(std::uint64_t offset, std::uint64_t len);

  void independent_read(const std::vector<Segment>& segs,
                        std::span<std::byte> buf);
  void independent_write(const std::vector<Segment>& segs,
                         std::span<const std::byte> buf);

  /// The two-phase engine; handles both directions.
  void two_phase(bool is_write, const std::vector<Segment>& segs,
                 std::span<std::byte> rbuf, std::span<const std::byte> wbuf);

  /// All fs data access goes through these: they resume short transfers
  /// (ROMIO's POSIX-style write loop, always on), verify the landed prefix
  /// of retryable short writes, and — when hints.retry is enabled — absorb
  /// TransientIoError with exponential virtual-clock backoff.
  void fs_read(std::uint64_t offset, std::span<std::byte> out);
  void fs_write(std::uint64_t offset, std::span<const std::byte> data);

  /// Shared retry-loop bookkeeping: counts the transient failure and, when
  /// budget remains, sleeps the backoff on the virtual clock and returns
  /// true; false means the caller must (re)throw.
  bool try_backoff(int* attempt, std::uint64_t op_serial);

  /// Try to absorb an absolute-offset write run into the write-behind
  /// buffer; returns false when buffering is off or the run cannot fit.
  bool wb_absorb(std::uint64_t offset, std::span<const std::byte> data);

  /// True when deferred (in-flight) execution is available and requested.
  bool overlap_enabled() const;

  /// Reject I/O on a closed File: reports kPostCloseIo through the verifier
  /// (when attached) and throws IoError naming the call.
  void check_open(const char* op) const;

  /// Tell the attached verifier (if any) that this rank entered the file
  /// collective `op` carrying `data_bytes` of payload.
  void note_collective(const char* op, std::uint64_t data_bytes) const;

  /// Settle a deferred operation issued at `issued` completing at
  /// `completion`: credit the hidden portion to overlap_saved_time and
  /// charge the rest as kIo stall.
  void settle_deferred(double issued, double completion);

  /// Wait any collective window I/O left in flight by a pipelined
  /// two_phase (no-op otherwise).
  void drain_collective();

  /// Discard prefetched ranges intersecting the absolute-file segments
  /// `segs` (counted as misses); called from every write path.
  void invalidate_prefetch(const std::vector<Segment>& segs);

  /// Drop every pending prefetch entry, counting misses.
  void drop_prefetch();

  Comm& comm_;
  pfs::FileSystem& fs_;
  std::string path_;
  int fd_ = -1;
  Hints hints_;
  std::uint64_t view_disp_ = 0;
  std::optional<Datatype> view_type_;
  FileStats stats_;
  bool open_ = false;

  /// Write-behind state: pending coalesced runs, sorted by offset.
  std::map<std::uint64_t, std::vector<std::byte>> wb_runs_;
  std::uint64_t wb_bytes_ = 0;

  /// Serial of the current fs_read/fs_write call, for grouping logged
  /// backoff delays per retried operation.
  std::uint64_t retry_op_serial_ = 0;

  /// View-flatten memo: a small LRU of recent flattenings (disp-relative)
  /// keyed by filetype signature and requested stream range.  The previous
  /// single-entry memo thrashed to zero hits the moment a rank alternated
  /// between two installed views (ENZO interleaves each baryon field's
  /// subarray view with the boundary's) — every call evicted the other's
  /// entry and re-flattened.  Eight entries cover the alternation depths the
  /// I/O layers produce while keeping lookup a trivial scan.
  struct FlattenEntry {
    std::uint64_t sig = 0;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::vector<Segment> segs;  ///< relative to disp 0
  };
  static constexpr std::size_t kFlattenCacheCapacity = 8;
  std::uint64_t view_sig_ = 0;  ///< signature of the installed filetype
  std::vector<FlattenEntry> flatten_cache_;  ///< most-recently-used first

  /// One in-flight prefetched range (absolute-file segments + its bytes).
  struct PrefetchEntry {
    std::vector<Segment> segs;
    std::vector<std::byte> data;
    double issued = 0.0;
    double completion = 0.0;
  };
  std::vector<PrefetchEntry> prefetched_;

  /// Completion horizon of the pipelined two-phase window(s) still in
  /// flight (< 0: none); split-collective state.
  double collective_pending_issue_ = 0.0;
  double collective_pending_completion_ = -1.0;
  bool split_active_ = false;

  /// Latest completion of any deferred op (close() drains to here so the
  /// file is only "closed" once all in-flight I/O has virtually finished).
  double inflight_horizon_ = 0.0;

  /// Requests issued but not yet waited (wait() decrements); close() counts
  /// what is left as requests_leaked_at_close.
  std::uint64_t pending_requests_ = 0;
};

}  // namespace paramrio::mpi::io
