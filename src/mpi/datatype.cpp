#include "mpi/datatype.hpp"

#include <algorithm>

namespace paramrio::mpi {

Datatype::Datatype(std::vector<Segment> segments, std::uint64_t extent)
    : segments_(std::move(segments)), extent_(extent) {
  // Sort, validate non-overlap, coalesce adjacent segments.
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.offset < b.offset;
            });
  std::vector<Segment> merged;
  for (const Segment& s : segments_) {
    if (s.length == 0) continue;
    if (!merged.empty()) {
      Segment& last = merged.back();
      PARAMRIO_REQUIRE(last.offset + last.length <= s.offset,
                       "datatype segments overlap");
      if (last.offset + last.length == s.offset) {
        last.length += s.length;
        continue;
      }
    }
    merged.push_back(s);
  }
  segments_ = std::move(merged);
  cum_.reserve(segments_.size());
  size_ = 0;
  for (const Segment& s : segments_) {
    cum_.push_back(size_);
    size_ += s.length;
  }
  if (!segments_.empty()) {
    std::uint64_t last_end = segments_.back().offset + segments_.back().length;
    PARAMRIO_REQUIRE(extent_ >= last_end, "datatype extent too small");
  }
  PARAMRIO_REQUIRE(size_ > 0, "datatype has no visible bytes");
}

Datatype Datatype::contiguous(std::uint64_t count) {
  return Datatype({Segment{0, count}}, count);
}

Datatype Datatype::vector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride) {
  PARAMRIO_REQUIRE(count > 0 && blocklen > 0, "vector: empty type");
  PARAMRIO_REQUIRE(stride >= blocklen, "vector: stride < blocklen");
  std::vector<Segment> segs;
  segs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    segs.push_back(Segment{i * stride, blocklen});
  }
  return Datatype(std::move(segs), (count - 1) * stride + blocklen);
}

Datatype Datatype::indexed(std::vector<Segment> segments,
                           std::uint64_t extent_override) {
  std::uint64_t extent = extent_override;
  if (extent == 0) {
    for (const Segment& s : segments) {
      extent = std::max(extent, s.offset + s.length);
    }
  }
  return Datatype(std::move(segments), extent);
}

Datatype Datatype::subarray(const std::vector<std::uint64_t>& sizes,
                            const std::vector<std::uint64_t>& subsizes,
                            const std::vector<std::uint64_t>& starts,
                            std::uint64_t elem_size) {
  const std::size_t ndims = sizes.size();
  PARAMRIO_REQUIRE(ndims >= 1, "subarray: need at least one dimension");
  PARAMRIO_REQUIRE(subsizes.size() == ndims && starts.size() == ndims,
                   "subarray: dimension count mismatch");
  PARAMRIO_REQUIRE(elem_size > 0, "subarray: zero element size");
  std::uint64_t full = elem_size;
  for (std::size_t d = 0; d < ndims; ++d) {
    PARAMRIO_REQUIRE(subsizes[d] > 0, "subarray: empty subsize");
    PARAMRIO_REQUIRE(starts[d] + subsizes[d] <= sizes[d],
                     "subarray: out of bounds");
    full *= sizes[d];
  }

  // Rows along the last (fastest) dimension are contiguous; enumerate all
  // combinations of the leading dims.
  std::uint64_t row_len = subsizes[ndims - 1] * elem_size;
  std::uint64_t nrows = 1;
  for (std::size_t d = 0; d + 1 < ndims; ++d) nrows *= subsizes[d];

  // Strides (in bytes) of each dimension in the full array.
  std::vector<std::uint64_t> stride(ndims);
  stride[ndims - 1] = elem_size;
  for (std::size_t d = ndims - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * sizes[d];
  }

  std::vector<Segment> segs;
  segs.reserve(nrows);
  std::vector<std::uint64_t> idx(ndims, 0);
  for (std::uint64_t r = 0; r < nrows; ++r) {
    std::uint64_t off = starts[ndims - 1] * elem_size;
    for (std::size_t d = 0; d + 1 < ndims; ++d) {
      off += (starts[d] + idx[d]) * stride[d];
    }
    segs.push_back(Segment{off, row_len});
    // Increment the multi-index over the leading dims (last leading dim
    // fastest).
    for (std::size_t d = ndims - 1; d-- > 0;) {
      if (++idx[d] < subsizes[d]) break;
      idx[d] = 0;
    }
  }
  return Datatype(std::move(segs), full);
}

void Datatype::map_stream(std::uint64_t pos, std::uint64_t len,
                          std::vector<Segment>& out) const {
  while (len > 0) {
    std::uint64_t tile = pos / size_;
    std::uint64_t within = pos % size_;
    // Find the segment containing stream offset `within`: the last segment
    // whose cumulative start <= within.
    auto it = std::upper_bound(cum_.begin(), cum_.end(), within);
    std::size_t si = static_cast<std::size_t>(it - cum_.begin()) - 1;
    const Segment& s = segments_[si];
    std::uint64_t seg_pos = within - cum_[si];
    std::uint64_t take = std::min(len, s.length - seg_pos);
    std::uint64_t file_off = tile * extent_ + s.offset + seg_pos;
    if (!out.empty() &&
        out.back().offset + out.back().length == file_off) {
      out.back().length += take;
    } else {
      out.push_back(Segment{file_off, take});
    }
    pos += take;
    len -= take;
  }
}

std::uint64_t Datatype::signature() const {
  // FNV-1a over the flattened segment list and the extent; deterministic
  // across runs, cheap relative to one map_stream walk.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  mix(extent_);
  for (const Segment& s : segments_) {
    mix(s.offset);
    mix(s.length);
  }
  return h;
}

}  // namespace paramrio::mpi
