// MPI-style derived datatypes (file-side layout descriptions).
//
// A Datatype describes which bytes of a tile of `extent()` file bytes are
// visible, as a sorted, coalesced list of (offset, length) segments totalling
// `size()` bytes.  File views (mpi::io::File::set_view) tile the datatype
// along the file, exactly like MPI filetypes with an etype of MPI_BYTE.
//
// Constructors mirror the MPI type constructors the ENZO I/O port needs:
// contiguous, vector, indexed, and — the workhorse for (Block,Block,Block)
// partitioned baryon fields — subarray in C order with the *first* dimension
// varying slowest (the paper stores 3-D arrays with x fastest, z slowest, so
// pass sizes = {nz, ny, nx}).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "base/error.hpp"

namespace paramrio::mpi {

/// One visible byte range within a datatype tile.
struct Segment {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  friend bool operator==(const Segment&, const Segment&) = default;
};

class Datatype {
 public:
  /// `count` visible bytes at offset 0; extent == size.
  static Datatype contiguous(std::uint64_t count);

  /// `count` blocks of `blocklen` bytes, consecutive blocks `stride` bytes
  /// apart (stride >= blocklen); extent = (count-1)*stride + blocklen.
  static Datatype vector(std::uint64_t count, std::uint64_t blocklen,
                         std::uint64_t stride);

  /// Explicit byte ranges; they must not overlap.  Extent = max(off+len),
  /// unless `extent_override` > 0.
  static Datatype indexed(std::vector<Segment> segments,
                          std::uint64_t extent_override = 0);

  /// An n-dimensional subarray of an n-dimensional array of elements of
  /// `elem_size` bytes.  Dimension 0 varies slowest (C order).  The extent is
  /// the full array, so tiling a view with a subarray type addresses exactly
  /// one array in the file.
  static Datatype subarray(const std::vector<std::uint64_t>& sizes,
                           const std::vector<std::uint64_t>& subsizes,
                           const std::vector<std::uint64_t>& starts,
                           std::uint64_t elem_size);

  /// Visible bytes per tile.
  std::uint64_t size() const { return size_; }

  /// Tile footprint in the file.
  std::uint64_t extent() const { return extent_; }

  bool is_contiguous() const {
    return segments_.size() == 1 && segments_[0].offset == 0 &&
           extent_ == size_;
  }

  const std::vector<Segment>& segments() const { return segments_; }

  /// Deterministic fingerprint of the flattened layout (segments + extent).
  /// Two datatypes with equal signatures describe the same byte pattern, so
  /// consumers (File's view-flatten cache) can reuse derived flattenings.
  std::uint64_t signature() const;

  /// Map a range [pos, pos+len) of the datatype's visible byte stream
  /// (tiled indefinitely) to file byte ranges relative to the tile origin of
  /// tile 0; appends (file_offset, length) pairs in stream order.
  void map_stream(std::uint64_t pos, std::uint64_t len,
                  std::vector<Segment>& out) const;

 private:
  Datatype(std::vector<Segment> segments, std::uint64_t extent);

  std::vector<Segment> segments_;   // sorted by offset, coalesced
  std::vector<std::uint64_t> cum_;  // cumulative visible bytes before seg i
  std::uint64_t size_ = 0;
  std::uint64_t extent_ = 0;
};

}  // namespace paramrio::mpi
