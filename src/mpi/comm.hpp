// Mini-MPI: communicator, point-to-point messaging, and collectives, all
// executed on the virtual-time engine with real byte payloads.
//
// The subset mirrors what the ENZO I/O paths and the ROMIO-style I/O layer
// need: blocking send/recv with tags, sendrecv, barrier, bcast, gather(v),
// scatter(v), allgather(v), alltoallv, and reductions.  Collectives are
// implemented over point-to-point with the classic deterministic algorithms
// (dissemination barrier, binomial bcast/reduce, ring allgather, pairwise
// alltoallv), so their cost structure responds to the platform's network
// parameters the same way a 2002 MPICH would.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace paramrio::mpi {

using Bytes = std::vector<std::byte>;

/// CPU-side cost knobs (memory copies, sorting) for the simulated hosts.
struct CpuParams {
  double memcpy_bandwidth = mb_per_s(300);   ///< packing/unpacking rate
  double sort_element_cost = 150e-9;         ///< per element·log2(n) seconds
};

struct RuntimeParams {
  net::NetworkParams net;
  CpuParams cpu;
  int nprocs = 1;
  int extra_fabric_nodes = 0;  ///< NICs for I/O servers on the same fabric
  std::uint64_t seed = 0x5eed5eed5eedULL;
  /// Scheduler tie-shuffle seed (sim::Engine::Options::perturb_seed);
  /// 0 keeps lowest-rank tie-breaks (PARAMRIO_SCHED_SEED may still apply).
  std::uint64_t perturb_seed = 0;
  /// Scheduler backend (sim::Engine::Options::backend); kAuto resolves to
  /// fibers except under ThreadSanitizer or PARAMRIO_SIM_ENGINE=threads.
  sim::SchedBackend backend = sim::SchedBackend::kAuto;
};

class Comm;

/// Shared state of one SPMD run: the fabric and the per-destination
/// mailboxes.  Construct once, then call run() with the rank body.
class Runtime {
 public:
  explicit Runtime(RuntimeParams params);

  /// Execute `body(comm)` on params.nprocs ranks; returns engine results.
  sim::Engine::Result run(const std::function<void(Comm&)>& body);

  net::Network& network() { return network_; }
  const RuntimeParams& params() const { return params_; }

 private:
  friend class Comm;
  friend class MultiRuntime;
  struct Envelope {
    int src = 0;
    int tag = 0;
    double arrival = 0.0;
    Bytes payload;
  };

  RuntimeParams params_;
  net::Network network_;
  std::vector<std::deque<Envelope>> mailboxes_;  // one per destination rank
};

/// Multi-tenant driver: several independent SPMD jobs — each with its own
/// Runtime (compute fabric + mailboxes) — executing concurrently on one
/// shared virtual timeline (sim::Engine::run_jobs).  The mpi layer is fully
/// job-local: ranks, tags and collectives never cross jobs.  Contention
/// happens in whatever *shared* resources the bodies capture — typically one
/// pfs::FileSystem on its own storage fabric, which identifies clients by
/// Proc::global_rank() and arbitrates its I/O servers by per-job fair share.
class MultiRuntime {
 public:
  struct Job {
    std::string name;  ///< metrics-scope label; "" = anonymous
    RuntimeParams params;
    std::function<void(Comm&)> body;
    double start_time = 0.0;  ///< virtual time the job's ranks start at
    double weight = 1.0;      ///< fair-share weight at shared I/O servers
  };

  /// Run all jobs to completion; returns one JobResult per job, in order
  /// (clocks are absolute — subtract start_time for job-local elapsed).
  /// Engine-level seeds come from the *first* job's params (seed,
  /// perturb_seed), matching Runtime::run for the single-job case.  Any
  /// rank's exception aborts the whole run and is rethrown.
  static std::vector<sim::Engine::JobResult> run(std::vector<Job> jobs);
};

/// Per-rank communicator handle (value semantics over the shared Runtime).
class Comm {
 public:
  Comm(Runtime& rt, sim::Proc& proc) : rt_(&rt), proc_(&proc) {}

  int rank() const { return proc_->rank(); }
  int size() const { return proc_->nprocs(); }
  sim::Proc& proc() { return *proc_; }
  net::Network& network() { return rt_->network_; }
  const CpuParams& cpu() const { return rt_->params_.cpu; }

  // ---- point to point -----------------------------------------------------

  void send(int dst, int tag, std::span<const std::byte> data);

  /// Blocking receive of the next message from `src` with `tag`.
  Bytes recv(int src, int tag);

  /// Combined exchange (deadlock-free; sends are buffered anyway).
  Bytes sendrecv(int dst, int send_tag, std::span<const std::byte> data,
                 int src, int recv_tag);

  // ---- nonblocking point to point ----------------------------------------
  // Sends are eager-buffered (as 2002 MPICH for moderate messages): isend
  // pays the wire cost up front and completes immediately; irecv posts the
  // receive, and wait()/wait_all() block until the message is consumed.

  class Request {
   public:
    Request() = default;
    bool active() const { return kind_ != Kind::kNone; }

   private:
    friend class Comm;
    enum class Kind : std::uint8_t { kNone, kSend, kRecv };
    Kind kind_ = Kind::kNone;
    int peer_ = -1;
    int tag_ = 0;
    Bytes* out_ = nullptr;
  };

  Request isend(int dst, int tag, std::span<const std::byte> data);
  Request irecv(int src, int tag, Bytes& out);
  void wait(Request& request);
  void wait_all(std::span<Request> requests);

  /// Typed convenience wrappers for trivially copyable element types.
  template <typename T>
  void send_values(int dst, int tag, std::span<const T> values) {
    send(dst, tag, std::as_bytes(values));
  }
  template <typename T>
  std::vector<T> recv_values(int src, int tag) {
    Bytes raw = recv(src, tag);
    PARAMRIO_REQUIRE(raw.size() % sizeof(T) == 0, "recv_values: size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  // ---- collectives ----------------------------------------------------

  void barrier();

  /// Root's `data` is replicated into every rank's `data`.
  void bcast(Bytes& data, int root);

  /// Gather variable-size contributions; only root's return value is
  /// populated (size() entries, in rank order).
  std::vector<Bytes> gatherv(std::span<const std::byte> mine, int root);

  /// Scatter per-rank chunks from root; returns this rank's chunk.
  Bytes scatterv(const std::vector<Bytes>& chunks, int root);

  /// Every rank receives every rank's contribution, in rank order.
  std::vector<Bytes> allgatherv(std::span<const std::byte> mine);

  /// Personalized all-to-all exchange of variable-size chunks
  /// (out[i] goes to rank i; returns in[i] from rank i).
  std::vector<Bytes> alltoallv(const std::vector<Bytes>& out);

  /// Element-wise reductions over small vectors (metadata-scale payloads).
  std::uint64_t allreduce_sum(std::uint64_t v);
  std::uint64_t allreduce_max(std::uint64_t v);
  std::uint64_t allreduce_min(std::uint64_t v);
  double allreduce_max(double v);
  std::vector<std::uint64_t> allreduce_sum(std::vector<std::uint64_t> v);

  /// Reserve a tag for a caller-implemented collective exchange.  Every rank
  /// must call at the same point in the SPMD program (same sequence number).
  int fresh_collective_tag();

  // ---- CPU cost charging ---------------------------------------------

  /// Charge the local host for moving `bytes` through memory (pack/unpack).
  void charge_memcpy(std::uint64_t bytes);

  /// Charge for comparison-sorting n elements.
  void charge_sort(std::uint64_t n);

 private:
  Bytes reduce_exchange(
      const Bytes& mine,
      const std::function<Bytes(const Bytes&, const Bytes&)>& combine);

  /// Render a collective op name for the verifier, stitching in the active
  /// reduction signature ("gatherv[allreduce:u64:sum]") so reductions that
  /// lower to the same collective skeleton stay distinguishable.
  std::string coll_op(const char* name) const;

  Runtime* rt_;
  sim::Proc* proc_;
  int coll_seq_ = 0;  ///< collective sequence number (same on all ranks)
  /// Signature of the reduction currently lowering through reduce_exchange
  /// (nullptr outside one); only read when a verifier is attached.
  const char* coll_ctx_ = nullptr;
};

}  // namespace paramrio::mpi
