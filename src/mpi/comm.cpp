#include "mpi/comm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "verify/verify.hpp"

namespace paramrio::mpi {

namespace {
// Collective-internal tags live far above any user tag.
constexpr int kCollTagBase = 1 << 24;

/// Verifier window around one collective call: reports entry (sequence
/// matching, deadlock-diagnosis stack push) and exit.  No-op when no
/// verifier is attached.
class CollectiveScope {
 public:
  CollectiveScope(const void* comm, int rank, int nranks, int seq,
                  const std::string& op, int root)
      : comm_(comm), rank_(rank) {
    if (verify::Verifier* v = verify::verifier()) {
      v->on_collective_begin(comm, rank, nranks, seq, op, root);
    }
  }
  ~CollectiveScope() {
    if (verify::Verifier* v = verify::verifier()) {
      v->on_collective_end(comm_, rank_);
    }
  }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  const void* comm_;
  int rank_;
};

/// Scoped override of Comm::coll_ctx_ while a reduction lowers through
/// reduce_exchange.
class CollCtxGuard {
 public:
  CollCtxGuard(const char*& slot, const char* value)
      : slot_(slot), prev_(slot) {
    slot_ = value;
  }
  ~CollCtxGuard() { slot_ = prev_; }
  CollCtxGuard(const CollCtxGuard&) = delete;
  CollCtxGuard& operator=(const CollCtxGuard&) = delete;

 private:
  const char*& slot_;
  const char* prev_;
};
}  // namespace

std::string Comm::coll_op(const char* name) const {
  if (coll_ctx_ == nullptr) return name;
  std::string out = name;
  out += "[";
  out += coll_ctx_;
  out += "]";
  return out;
}

Runtime::Runtime(RuntimeParams params)
    : params_(params),
      network_(params.net, params.nprocs, params.extra_fabric_nodes) {
  PARAMRIO_REQUIRE(params_.nprocs >= 1, "Runtime needs >= 1 proc");
}

sim::Engine::Result Runtime::run(const std::function<void(Comm&)>& body) {
  mailboxes_.assign(static_cast<std::size_t>(params_.nprocs), {});
  sim::Engine::Options o;
  o.nprocs = params_.nprocs;
  o.seed = params_.seed;
  o.perturb_seed = params_.perturb_seed;
  o.backend = params_.backend;
  return sim::Engine::run(o, [this, &body](sim::Proc& proc) {
    Comm comm(*this, proc);
    body(comm);
  });
}

std::vector<sim::Engine::JobResult> MultiRuntime::run(std::vector<Job> jobs) {
  PARAMRIO_REQUIRE(!jobs.empty(), "MultiRuntime: need >= 1 job");
  // One Runtime per job: private fabric and mailboxes, job-local ranks.
  std::vector<std::unique_ptr<Runtime>> runtimes;
  runtimes.reserve(jobs.size());
  std::vector<sim::Engine::JobSpec> specs;
  specs.reserve(jobs.size());
  for (Job& j : jobs) {
    runtimes.push_back(std::make_unique<Runtime>(j.params));
    Runtime* rt = runtimes.back().get();
    rt->mailboxes_.assign(static_cast<std::size_t>(j.params.nprocs), {});
    sim::Engine::JobSpec spec;
    spec.name = j.name;
    spec.nprocs = j.params.nprocs;
    spec.start_time = j.start_time;
    spec.weight = j.weight;
    // `jobs` (and thus each body) outlives the engine run below.
    const std::function<void(Comm&)>& body = j.body;
    spec.body = [rt, &body](sim::Proc& proc) {
      Comm comm(*rt, proc);
      body(comm);
    };
    specs.push_back(std::move(spec));
  }
  sim::Engine::Options o;
  o.seed = jobs.front().params.seed;
  o.perturb_seed = jobs.front().params.perturb_seed;
  o.backend = jobs.front().params.backend;
  return sim::Engine::run_jobs(o, std::move(specs));
}

void Comm::send(int dst, int tag, std::span<const std::byte> data) {
  PARAMRIO_REQUIRE(dst >= 0 && dst < size(), "send: bad destination rank");
  double arrival = rt_->network_.send(*proc_, dst, data.size());
  Runtime::Envelope env;
  env.src = rank();
  env.tag = tag;
  env.arrival = arrival;
  env.payload.assign(data.begin(), data.end());
  rt_->mailboxes_[static_cast<std::size_t>(dst)].push_back(std::move(env));
  if (dst != rank()) proc_->engine().signal(proc_->job(), dst);
}

Bytes Comm::recv(int src, int tag) {
  PARAMRIO_REQUIRE(src >= 0 && src < size(), "recv: bad source rank");
  auto& box = rt_->mailboxes_[static_cast<std::size_t>(rank())];
  for (;;) {
    auto it = std::find_if(box.begin(), box.end(),
                           [&](const Runtime::Envelope& e) {
                             return e.src == src && e.tag == tag;
                           });
    if (it != box.end()) {
      Runtime::Envelope env = std::move(*it);
      box.erase(it);
      if (verify::Verifier* v = verify::verifier()) v->on_recv_done(rank());
      rt_->network_.receive(*proc_, env.arrival, env.payload.size());
      return std::move(env.payload);
    }
    if (verify::Verifier* v = verify::verifier()) {
      v->on_recv_blocked(rank(), src, tag);
    }
    proc_->block();
  }
}

Bytes Comm::sendrecv(int dst, int send_tag, std::span<const std::byte> data,
                     int src, int recv_tag) {
  send(dst, send_tag, data);
  return recv(src, recv_tag);
}

Comm::Request Comm::isend(int dst, int tag, std::span<const std::byte> data) {
  send(dst, tag, data);  // eager: transmitted and buffered at the receiver
  Request r;
  r.kind_ = Request::Kind::kSend;
  r.peer_ = dst;
  r.tag_ = tag;
  return r;
}

Comm::Request Comm::irecv(int src, int tag, Bytes& out) {
  Request r;
  r.kind_ = Request::Kind::kRecv;
  r.peer_ = src;
  r.tag_ = tag;
  r.out_ = &out;
  return r;
}

void Comm::wait(Request& request) {
  switch (request.kind_) {
    case Request::Kind::kNone:
      return;  // MPI_REQUEST_NULL semantics
    case Request::Kind::kSend:
      break;  // eager sends are already complete
    case Request::Kind::kRecv:
      *request.out_ = recv(request.peer_, request.tag_);
      break;
  }
  request.kind_ = Request::Kind::kNone;
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& r : requests) wait(r);
}

int Comm::fresh_collective_tag() {
  const int seq = coll_seq_++;
  // A caller-implemented collective: it must sit at the same SPMD position
  // on every rank, so it participates in sequence matching like any other.
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("user-collective"),
                         -1);
  return kCollTagBase + seq;
}

void Comm::barrier() {
  const int seq = coll_seq_++;
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("barrier"), -1);
  int tag = kCollTagBase + seq;
  int p = size();
  for (int k = 1; k < p; k <<= 1) {
    int dst = (rank() + k) % p;
    int src = (rank() - k + p) % p;
    send(dst, tag, {});
    recv(src, tag);
  }
}

void Comm::bcast(Bytes& data, int root) {
  const int seq = coll_seq_++;
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("bcast"), root);
  int tag = kCollTagBase + seq;
  int p = size();
  if (p == 1) return;
  int vr = (rank() - root + p) % p;  // relative rank
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      int src = (vr - mask + root) % p;
      data = recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      int dst = (vr + mask + root) % p;
      send(dst, tag, data);
    }
    mask >>= 1;
  }
}

std::vector<Bytes> Comm::gatherv(std::span<const std::byte> mine, int root) {
  const int seq = coll_seq_++;
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("gatherv"), root);
  int tag = kCollTagBase + seq;
  std::vector<Bytes> result;
  if (rank() == root) {
    result.resize(static_cast<std::size_t>(size()));
    result[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    charge_memcpy(mine.size());
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      result[static_cast<std::size_t>(i)] = recv(i, tag);
    }
  } else {
    send(root, tag, mine);
  }
  return result;
}

Bytes Comm::scatterv(const std::vector<Bytes>& chunks, int root) {
  const int seq = coll_seq_++;
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("scatterv"), root);
  int tag = kCollTagBase + seq;
  if (rank() == root) {
    PARAMRIO_REQUIRE(chunks.size() == static_cast<std::size_t>(size()),
                     "scatterv: need one chunk per rank");
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      send(i, tag, chunks[static_cast<std::size_t>(i)]);
    }
    charge_memcpy(chunks[static_cast<std::size_t>(root)].size());
    return chunks[static_cast<std::size_t>(root)];
  }
  return recv(root, tag);
}

std::vector<Bytes> Comm::allgatherv(std::span<const std::byte> mine) {
  const int seq = coll_seq_++;
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("allgatherv"), -1);
  int tag = kCollTagBase + seq;
  int p = size();
  std::vector<Bytes> all(static_cast<std::size_t>(p));
  all[static_cast<std::size_t>(rank())].assign(mine.begin(), mine.end());
  // Ring: in step s we forward the block that originated at rank - s.
  int right = (rank() + 1) % p;
  int left = (rank() - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    int send_block = (rank() - s + p) % p;
    int recv_block = (rank() - s - 1 + p) % p;
    send(right, tag, all[static_cast<std::size_t>(send_block)]);
    all[static_cast<std::size_t>(recv_block)] = recv(left, tag);
  }
  return all;
}

std::vector<Bytes> Comm::alltoallv(const std::vector<Bytes>& out) {
  PARAMRIO_REQUIRE(out.size() == static_cast<std::size_t>(size()),
                   "alltoallv: need one chunk per rank");
  const int seq = coll_seq_++;
  CollectiveScope vscope(rt_, rank(), size(), seq, coll_op("alltoallv"), -1);
  int tag = kCollTagBase + seq;
  int p = size();
  std::vector<Bytes> in(static_cast<std::size_t>(p));
  in[static_cast<std::size_t>(rank())] = out[static_cast<std::size_t>(rank())];
  charge_memcpy(in[static_cast<std::size_t>(rank())].size());
  for (int s = 1; s < p; ++s) {
    int dst = (rank() + s) % p;
    int src = (rank() - s + p) % p;
    send(dst, tag, out[static_cast<std::size_t>(dst)]);
    in[static_cast<std::size_t>(src)] = recv(src, tag);
  }
  return in;
}

Bytes Comm::reduce_exchange(
    const Bytes& mine,
    const std::function<Bytes(const Bytes&, const Bytes&)>& combine) {
  std::vector<Bytes> all = gatherv(mine, 0);
  Bytes result;
  if (rank() == 0) {
    result = all[0];
    for (int i = 1; i < size(); ++i) {
      result = combine(result, all[static_cast<std::size_t>(i)]);
    }
  }
  bcast(result, 0);
  return result;
}

namespace {
template <typename T>
Bytes to_bytes(const T& v) {
  Bytes b(sizeof(T));
  std::memcpy(b.data(), &v, sizeof(T));
  return b;
}
template <typename T>
T from_bytes(const Bytes& b) {
  T v;
  PARAMRIO_REQUIRE(b.size() == sizeof(T), "reduction payload size mismatch");
  std::memcpy(&v, b.data(), sizeof(T));
  return v;
}
}  // namespace

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  CollCtxGuard ctx(coll_ctx_, "allreduce:u64:sum");
  Bytes r = reduce_exchange(to_bytes(v), [](const Bytes& a, const Bytes& b) {
    return to_bytes(from_bytes<std::uint64_t>(a) +
                    from_bytes<std::uint64_t>(b));
  });
  return from_bytes<std::uint64_t>(r);
}

std::uint64_t Comm::allreduce_max(std::uint64_t v) {
  CollCtxGuard ctx(coll_ctx_, "allreduce:u64:max");
  Bytes r = reduce_exchange(to_bytes(v), [](const Bytes& a, const Bytes& b) {
    return to_bytes(std::max(from_bytes<std::uint64_t>(a),
                             from_bytes<std::uint64_t>(b)));
  });
  return from_bytes<std::uint64_t>(r);
}

std::uint64_t Comm::allreduce_min(std::uint64_t v) {
  CollCtxGuard ctx(coll_ctx_, "allreduce:u64:min");
  Bytes r = reduce_exchange(to_bytes(v), [](const Bytes& a, const Bytes& b) {
    return to_bytes(std::min(from_bytes<std::uint64_t>(a),
                             from_bytes<std::uint64_t>(b)));
  });
  return from_bytes<std::uint64_t>(r);
}

double Comm::allreduce_max(double v) {
  CollCtxGuard ctx(coll_ctx_, "allreduce:f64:max");
  Bytes r = reduce_exchange(to_bytes(v), [](const Bytes& a, const Bytes& b) {
    return to_bytes(std::max(from_bytes<double>(a), from_bytes<double>(b)));
  });
  return from_bytes<double>(r);
}

std::vector<std::uint64_t> Comm::allreduce_sum(std::vector<std::uint64_t> v) {
  CollCtxGuard ctx(coll_ctx_, "allreduce:u64vec:sum");
  Bytes mine(v.size() * sizeof(std::uint64_t));
  std::memcpy(mine.data(), v.data(), mine.size());
  Bytes r = reduce_exchange(mine, [](const Bytes& a, const Bytes& b) {
    PARAMRIO_REQUIRE(a.size() == b.size(), "vector reduction size mismatch");
    Bytes c(a.size());
    const auto* pa = reinterpret_cast<const std::uint64_t*>(a.data());
    const auto* pb = reinterpret_cast<const std::uint64_t*>(b.data());
    auto* pc = reinterpret_cast<std::uint64_t*>(c.data());
    for (std::size_t i = 0; i < a.size() / sizeof(std::uint64_t); ++i) {
      pc[i] = pa[i] + pb[i];
    }
    return c;
  });
  std::vector<std::uint64_t> out(r.size() / sizeof(std::uint64_t));
  std::memcpy(out.data(), r.data(), r.size());
  return out;
}

void Comm::charge_memcpy(std::uint64_t bytes) {
  if (bytes == 0) return;
  proc_->advance(static_cast<double>(bytes) / cpu().memcpy_bandwidth,
                 sim::TimeCategory::kCpu);
}

void Comm::charge_sort(std::uint64_t n) {
  if (n < 2) return;
  double logn = std::log2(static_cast<double>(n));
  proc_->advance(static_cast<double>(n) * logn * cpu().sort_element_cost,
                 sim::TimeCategory::kCpu);
}

}  // namespace paramrio::mpi
