// I/O tracing and access-pattern analysis.
//
// The paper's method (Section 3, building on the Pablo group's "Analysis of
// I/O Activity of the ENZO Code") is to instrument the application, collect
// per-request traces, and mine them for optimisation metadata: request
// sizes, regular vs irregular patterns, sequentiality, access order.  This
// module reproduces that methodology: an IoTracer attaches to any simulated
// FileSystem, records every data request with its virtual timestamp, and
// produces the summary statistics the paper's analysis rests on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <array>

#include "base/error.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::obs {
class MetricsRegistry;
}  // namespace paramrio::obs

namespace paramrio::trace {

/// What a trace record describes: a data request or a descriptor-lifecycle
/// event (the latter drive check::IoChecker's fd-lifecycle analysis).
enum class IoOp : std::uint8_t { kRead, kWrite, kOpen, kClose };

struct IoEvent {
  double time = 0.0;  ///< virtual time at issue
  int rank = -1;
  bool is_write = false;  ///< data direction (meaningful when is_data())
  IoOp op = IoOp::kRead;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  int fd = -1;                                ///< descriptor used, -1 unknown
  pfs::OpenMode mode = pfs::OpenMode::kRead;  ///< for kOpen events

  bool is_data() const { return op == IoOp::kRead || op == IoOp::kWrite; }
};

/// Per-direction request statistics.
struct DirectionStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t min_request = 0;
  std::uint64_t max_request = 0;
  double sequential_fraction = 0.0;  ///< adjacent to the same rank's
                                     ///< previous request on the same file
  /// Power-of-two request-size histogram: bucket i counts requests with
  /// 2^i <= size < 2^(i+1) (bucket 0 also holds size 0..1).
  std::array<std::uint64_t, 33> size_histogram{};

  double mean_request() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(bytes) /
                               static_cast<double>(requests);
  }
};

struct TraceReport {
  DirectionStats reads;
  DirectionStats writes;
  std::uint64_t opens = 0;   ///< descriptor-lifecycle events in the trace
  std::uint64_t closes = 0;
  std::uint64_t files_touched = 0;
  std::uint64_t ranks_active = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  /// Per-file byte totals (reads + writes), name -> bytes.
  std::map<std::string, std::uint64_t> per_file_bytes;
};

class IoTracer final : public pfs::IoObserver {
 public:
  /// Record one data request (fd optional for hand-built traces).
  void record(double time, int rank, bool is_write, const std::string& path,
              std::uint64_t offset, std::uint64_t bytes, int fd = -1);

  /// Record descriptor-lifecycle events.
  void record_open(double time, int rank, const std::string& path,
                   pfs::OpenMode mode, int fd);
  void record_close(double time, int rank, const std::string& path, int fd);

  void on_io(double time, int rank, bool is_write, const std::string& path,
             std::uint64_t offset, std::uint64_t bytes, int fd) override {
    record(time, rank, is_write, path, offset, bytes, fd);
  }
  void on_open(double time, int rank, const std::string& path,
               pfs::OpenMode mode, int fd) override {
    record_open(time, rank, path, mode, fd);
  }
  void on_close(double time, int rank, const std::string& path,
                int fd) override {
    record_close(time, rank, path, fd);
  }

  void clear();
  const std::vector<IoEvent>& events() const { return events_; }

  TraceReport analyze() const;

  /// Human-readable report (the paper's Section-3-style summary).
  std::string format_report(const std::string& title) const;

  /// Fold the analyzed trace into a metrics registry under the
  /// "trace:read" / "trace:write" scopes.
  void export_counters(obs::MetricsRegistry& reg) const;

 private:
  std::vector<IoEvent> events_;
};

}  // namespace paramrio::trace
