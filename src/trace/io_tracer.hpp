// I/O tracing and access-pattern analysis.
//
// The paper's method (Section 3, building on the Pablo group's "Analysis of
// I/O Activity of the ENZO Code") is to instrument the application, collect
// per-request traces, and mine them for optimisation metadata: request
// sizes, regular vs irregular patterns, sequentiality, access order.  This
// module reproduces that methodology: an IoTracer attaches to any simulated
// FileSystem, records every data request with its virtual timestamp, and
// produces the summary statistics the paper's analysis rests on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <array>

#include "base/error.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::trace {

struct IoEvent {
  double time = 0.0;  ///< virtual time at issue
  int rank = -1;
  bool is_write = false;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

/// Per-direction request statistics.
struct DirectionStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t min_request = 0;
  std::uint64_t max_request = 0;
  double sequential_fraction = 0.0;  ///< adjacent to the same rank's
                                     ///< previous request on the same file
  /// Power-of-two request-size histogram: bucket i counts requests with
  /// 2^i <= size < 2^(i+1) (bucket 0 also holds size 0..1).
  std::array<std::uint64_t, 33> size_histogram{};

  double mean_request() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(bytes) /
                               static_cast<double>(requests);
  }
};

struct TraceReport {
  DirectionStats reads;
  DirectionStats writes;
  std::uint64_t files_touched = 0;
  std::uint64_t ranks_active = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  /// Per-file byte totals (reads + writes), name -> bytes.
  std::map<std::string, std::uint64_t> per_file_bytes;
};

class IoTracer final : public pfs::IoObserver {
 public:
  /// Called by an attached FileSystem for every data request.
  void record(double time, int rank, bool is_write, const std::string& path,
              std::uint64_t offset, std::uint64_t bytes);

  void on_io(double time, int rank, bool is_write, const std::string& path,
             std::uint64_t offset, std::uint64_t bytes) override {
    record(time, rank, is_write, path, offset, bytes);
  }

  void clear();
  const std::vector<IoEvent>& events() const { return events_; }

  TraceReport analyze() const;

  /// Human-readable report (the paper's Section-3-style summary).
  std::string format_report(const std::string& title) const;

 private:
  std::vector<IoEvent> events_;
};

}  // namespace paramrio::trace
