#include "trace/io_tracer.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/registry.hpp"

namespace paramrio::trace {

void IoTracer::record(double time, int rank, bool is_write,
                      const std::string& path, std::uint64_t offset,
                      std::uint64_t bytes, int fd) {
  IoEvent e;
  e.time = time;
  e.rank = rank;
  e.is_write = is_write;
  e.op = is_write ? IoOp::kWrite : IoOp::kRead;
  e.path = path;
  e.offset = offset;
  e.bytes = bytes;
  e.fd = fd;
  events_.push_back(std::move(e));
}

void IoTracer::record_open(double time, int rank, const std::string& path,
                           pfs::OpenMode mode, int fd) {
  IoEvent e;
  e.time = time;
  e.rank = rank;
  e.op = IoOp::kOpen;
  e.path = path;
  e.fd = fd;
  e.mode = mode;
  events_.push_back(std::move(e));
}

void IoTracer::record_close(double time, int rank, const std::string& path,
                            int fd) {
  IoEvent e;
  e.time = time;
  e.rank = rank;
  e.op = IoOp::kClose;
  e.path = path;
  e.fd = fd;
  events_.push_back(std::move(e));
}

void IoTracer::clear() { events_.clear(); }

namespace {
std::size_t size_bucket(std::uint64_t bytes) {
  std::size_t b = 0;
  while (bytes > 1 && b < 32) {
    bytes >>= 1;
    ++b;
  }
  return b;
}
}  // namespace

TraceReport IoTracer::analyze() const {
  TraceReport r;
  std::set<std::string> files;
  std::set<int> ranks;
  // Previous request end per (rank, path, direction) for sequentiality.
  std::map<std::tuple<int, std::string, bool>, std::uint64_t> prev_end;
  std::uint64_t seq_reads = 0, seq_writes = 0;

  bool first = true;
  for (const IoEvent& e : events_) {
    files.insert(e.path);
    ranks.insert(e.rank);
    if (first) {
      r.first_time = e.time;
      first = false;
    }
    r.last_time = std::max(r.last_time, e.time);
    if (e.op == IoOp::kOpen) {
      r.opens += 1;
      continue;
    }
    if (e.op == IoOp::kClose) {
      r.closes += 1;
      continue;
    }
    DirectionStats& d = e.is_write ? r.writes : r.reads;
    d.requests += 1;
    d.bytes += e.bytes;
    d.min_request = d.requests == 1 ? e.bytes : std::min(d.min_request, e.bytes);
    d.max_request = std::max(d.max_request, e.bytes);
    d.size_histogram[size_bucket(e.bytes)] += 1;
    r.per_file_bytes[e.path] += e.bytes;

    auto key = std::make_tuple(e.rank, e.path, e.is_write);
    auto it = prev_end.find(key);
    if (it != prev_end.end() && it->second == e.offset) {
      (e.is_write ? seq_writes : seq_reads) += 1;
    }
    prev_end[key] = e.offset + e.bytes;
  }
  if (r.reads.requests > 0) {
    r.reads.sequential_fraction =
        static_cast<double>(seq_reads) / static_cast<double>(r.reads.requests);
  }
  if (r.writes.requests > 0) {
    r.writes.sequential_fraction = static_cast<double>(seq_writes) /
                                   static_cast<double>(r.writes.requests);
  }
  r.files_touched = files.size();
  r.ranks_active = ranks.size();
  return r;
}

namespace {
void format_direction(std::ostringstream& os, const char* name,
                      const DirectionStats& d) {
  os << "  " << name << ": " << d.requests << " requests, "
     << static_cast<double>(d.bytes) / 1.0e6 << " MB";
  if (d.requests > 0) {
    os << " (mean " << d.mean_request() / 1024.0 << " KiB, min "
       << d.min_request << " B, max " << d.max_request / 1024 << " KiB, "
       << d.sequential_fraction * 100.0 << "% sequential)";
  }
  os << "\n";
  if (d.requests > 0) {
    os << "    size histogram:";
    for (std::size_t b = 0; b < d.size_histogram.size(); ++b) {
      if (d.size_histogram[b] == 0) continue;
      os << " [" << (1ull << b) << "B:" << d.size_histogram[b] << "]";
    }
    os << "\n";
  }
}
}  // namespace

std::string IoTracer::format_report(const std::string& title) const {
  TraceReport r = analyze();
  std::ostringstream os;
  os << "I/O trace — " << title << "\n";
  os << "  span: " << r.first_time << " .. " << r.last_time
     << " virtual s, " << r.ranks_active << " ranks, " << r.files_touched
     << " files\n";
  if (r.opens > 0 || r.closes > 0) {
    os << "  metadata: " << r.opens << " opens, " << r.closes << " closes\n";
  }
  format_direction(os, "reads ", r.reads);
  format_direction(os, "writes", r.writes);
  return os.str();
}

namespace {
void export_direction(obs::MetricsRegistry& reg, const std::string& scope,
                      const DirectionStats& d) {
  reg.add(scope, "requests", d.requests);
  reg.add(scope, "bytes", d.bytes);
  reg.observe_max(scope, "max_request", d.max_request);
  reg.set_value(scope, "mean_request", d.mean_request());
  reg.set_value(scope, "sequential_fraction", d.sequential_fraction);
}
}  // namespace

void IoTracer::export_counters(obs::MetricsRegistry& reg) const {
  TraceReport r = analyze();
  export_direction(reg, "trace:read", r.reads);
  export_direction(reg, "trace:write", r.writes);
  reg.add("trace", "opens", r.opens);
  reg.add("trace", "closes", r.closes);
  reg.set("trace", "files_touched", r.files_touched);
  reg.set("trace", "ranks_active", r.ranks_active);
}

}  // namespace paramrio::trace
