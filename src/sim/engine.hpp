// Conservative virtual-time discrete-event engine.
//
// The reproduction executes the real parallel code paths (message passing,
// two-phase I/O, file-format encoding) on a simulated parallel machine.  The
// engine enforces that at any instant exactly one simulated processor
// ("proc") executes user code — always the runnable proc with the smallest
// (clock, index) pair.  This gives:
//
//   * determinism: runs are bit-reproducible regardless of OS scheduling,
//   * causal ordering: shared virtual-time resources (disks, NICs) observe
//     requests in global virtual-time order, so contention modelling with
//     simple next-free timelines is exact,
//   * zero data races: all user code is serialised by the scheduler, so the
//     layered libraries need no locking of their own.
//
// Two scheduler backends implement that contract:
//
//   * kFibers (default): every proc is a lightweight run-to-yield
//     continuation (ucontext fiber) on one OS thread.  A yield is a
//     user-space context switch, current_proc() is a scheduler-maintained
//     pointer rather than OS-thread identity, and abort unwinds procs one by
//     one on the single scheduler thread — no joins, no unwind token.  One
//     process comfortably simulates tens of thousands of ranks in bounded
//     memory (stacks are lazily-committed mmaps).
//   * kThreads: the original one-OS-thread-per-rank implementation with a
//     baton of condition variables.  Kept for differential testing of the
//     scheduler itself and for ThreadSanitizer, which wants real cross-
//     thread hand-offs to verify (see docs/SCALING.md).
//
// Both backends produce byte-identical runs (same serialisation order, same
// perturbation RNG draws).  Procs advance their clocks with Proc::advance();
// blocking primitives (Proc::block / Engine::signal) underpin message
// receive.  If every unfinished proc is blocked the engine throws
// DeadlockError.
//
// Multi-job tenancy: run_jobs() schedules several independent jobs — each
// with its own rank set, clock offset and fair-share weight — inside one
// engine, so N simulated applications can contend for one pfs::FileSystem.
// Proc::rank() stays job-local (the mpi layer is unchanged); shared
// resources identify clients by Proc::global_rank().
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace paramrio::sim {

/// Where a proc's virtual time went; reported per proc after a run.
enum class TimeCategory { kCpu, kComm, kIo };

/// Per-proc accounting, readable by benches and tests after Engine::run.
struct ProcStats {
  double cpu_time = 0.0;   ///< seconds spent in compute / memory traffic
  double comm_time = 0.0;  ///< seconds spent in message passing
  double io_time = 0.0;    ///< seconds spent in file-system requests

  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t io_bytes_read = 0;
  std::uint64_t io_bytes_written = 0;
  std::uint64_t io_requests = 0;

  /// All accounted virtual time (cpu + comm + io).
  double total() const { return cpu_time + comm_time + io_time; }
};

/// A virtual-time FIFO-served resource: a disk, an I/O server, a NIC, a
/// shared network backplane, an SMP node's I/O channel.  A request issued at
/// virtual time `now` with service duration `service` completes at
/// max(now, next_free) + service, and pushes next_free to that completion.
///
/// Because the engine serialises execution in virtual-time order, requests
/// arrive at the timeline already sorted by issue time, so this single
/// scalar reproduces FIFO queueing delay exactly.
class Timeline {
 public:
  double acquire(double now, double service) {
    double start = now > next_free_ ? now : next_free_;
    next_free_ = start + service;
    return next_free_;
  }

  /// Raise next_free to at least `t` (fair-share arbiters track per-job
  /// horizons themselves but keep the aggregate timeline truthful).
  void raise(double t) {
    if (t > next_free_) next_free_ = t;
  }

  double next_free() const { return next_free_; }
  void reset() { next_free_ = 0.0; }

 private:
  double next_free_ = 0.0;
};

class Engine;

/// Handle a simulated processor's code uses to interact with virtual time.
/// One per rank; obtain the calling proc's via sim::current_proc().
class Proc {
 public:
  /// Rank within this proc's job (what the mpi layer sees).
  int rank() const { return rank_; }
  /// Ranks in this proc's job.
  int nprocs() const;
  /// Dense index across every job of the run; equals rank() in a single-job
  /// run.  Shared resources (file systems, storage fabrics) identify their
  /// clients by this.
  int global_rank() const { return global_; }
  /// Job index within the run (0 in a single-job run).
  int job() const { return job_; }
  /// Jobs co-scheduled in this run (1 in a single-job run) — a static
  /// property of the run, unlike a shared resource's seen-tenant count,
  /// so gating on it is invariant under schedule perturbation.
  int njobs() const;
  /// This job's fair-share weight at shared I/O servers.
  double job_weight() const { return job_weight_; }
  /// This job's virtual start time (clock domain offset; now() is absolute).
  double job_start() const { return job_start_; }
  /// This job's label for metrics scopes ("" in a single-job run).
  const std::string& job_name() const;

  double now() const { return deferred_ ? shadow_clock_ : clock_; }

  /// Spend `dt` seconds of virtual time, attributed to `cat`.
  void advance(double dt, TimeCategory cat = TimeCategory::kCpu);

  /// Jump the clock forward to at least `t` (message arrival, resource
  /// completion).  Waiting time is attributed to `cat`.
  void clock_at_least(double t, TimeCategory cat);

  /// Acquire a FIFO resource for `service` seconds starting now; the clock
  /// advances to the request's completion time.
  void use_resource(Timeline& tl, double service, TimeCategory cat);

  /// Mark this proc blocked and yield; returns after some other proc calls
  /// Engine::signal on it.  The caller must re-check its wake condition.
  /// Not allowed while deferred (an in-flight op cannot message).
  void block();

  // ---- deferred ("in-flight") execution --------------------------------
  //
  // Between begin_deferred() and end_deferred() the proc models work handed
  // to an asynchronous agent (a DMA engine, an I/O servicing thread): code
  // runs and moves bytes immediately — content stays deterministic because
  // the scheduler still serialises execution — but time costs accrue on a
  // *shadow* clock instead of the real one.  Timelines are still acquired
  // (at shadow times >= the real clock, preserving their FIFO invariant,
  // since this proc held the minimum clock when it was scheduled), no
  // ProcStats time is accounted, and execution is never yielded.
  // end_deferred() returns the operation's virtual completion time; the
  // issuer later settles it with clock_at_least(completion, cat), which
  // charges exactly the stall that was not hidden behind other work.

  /// Enter deferred mode (must not already be deferred).  The shadow clock
  /// starts at the real clock.
  void begin_deferred();

  /// Leave deferred mode; returns the shadow clock — the virtual time at
  /// which the deferred work completes.
  double end_deferred();

  /// True while inside a begin_deferred()/end_deferred() region.
  bool deferred() const { return deferred_; }

  // ---- background I/O --------------------------------------------------
  //
  // A proc doing housekeeping traffic (the staging tier's drain) marks
  // itself background so shared I/O servers can de-prioritise it: its
  // effective fair-share weight is job_weight() scaled down by `scale`, and
  // servers count its bytes separately.  A lone tenant at a server is still
  // served stretch-free, so single-job runs without a drain stay
  // byte-identical.

  /// Enter background-I/O mode with fair-share weight scaled by `scale`
  /// (0 < scale <= 1; smaller = politer).  Not nestable.
  void set_background_io(double scale) {
    io_weight_scale_ = scale;
    background_io_ = true;
  }
  void clear_background_io() {
    io_weight_scale_ = 1.0;
    background_io_ = false;
  }
  bool background_io() const { return background_io_; }
  /// Effective fair-share weight at shared I/O servers.
  double io_weight() const { return job_weight_ * io_weight_scale_; }

  ProcStats& stats() { return stats_; }
  const ProcStats& stats() const { return stats_; }

  /// Deterministic per-rank random stream.
  Rng& rng() { return rng_; }

  Engine& engine() { return *engine_; }

 private:
  friend class Engine;
  Proc(Engine* e, int rank, std::uint64_t seed)
      : engine_(e), rank_(rank), global_(rank), rng_(seed) {}

  Engine* engine_;
  int rank_;
  int global_;
  int job_ = 0;
  double job_weight_ = 1.0;
  double job_start_ = 0.0;
  double clock_ = 0.0;
  double shadow_clock_ = 0.0;  ///< in-flight time while deferred_
  bool deferred_ = false;
  double io_weight_scale_ = 1.0;  ///< fair-share scale while background
  bool background_io_ = false;
  ProcStats stats_;
  Rng rng_;
};

/// Passive observer of engine-level events, for the verify layer (the
/// engine itself stays dependency-free).  Install with set_run_observer()
/// outside a run; all callbacks arrive serialised (either from the proc
/// holding the schedule or under the engine lock at abort time).
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// A proc's body returned cleanly.  `rank` is the proc's global rank
  /// (equal to its job rank in a single-job run).  `deferred` is true when
  /// the proc finished inside an unsettled begin_deferred() region — its
  /// clock no longer reflects the in-flight work it issued.
  virtual void on_proc_finished(int rank, bool deferred, double clock) = 0;

  /// The engine found no runnable proc with unfinished procs remaining.
  /// The returned text (e.g. blocked ops and the wait-for cycle) is
  /// appended to the DeadlockError the run rethrows.
  virtual std::string diagnose_deadlock() = 0;
};

/// Install `obs` as the process-wide run observer (nullptr detaches).  Call
/// outside Engine::run.
void set_run_observer(RunObserver* obs);
RunObserver* run_observer();

/// Scheduler implementation behind Engine::run (see the header comment).
enum class SchedBackend : std::uint8_t {
  kAuto,     ///< fibers, unless built under TSan or PARAMRIO_SIM_ENGINE says
             ///< otherwise
  kFibers,   ///< run-to-yield continuations on one OS thread (default)
  kThreads,  ///< one OS thread per rank (differential testing, TSan)
};

/// The engine itself.  Construct, then call run() with the per-rank body.
class Engine {
 public:
  struct Options {
    int nprocs = 1;
    std::uint64_t seed = 0x5eed5eed5eedULL;  ///< root of all per-rank RNGs

    /// Schedule perturbation: when nonzero, scheduling ties — runnable procs
    /// whose virtual clocks are exactly equal at a dispatch — are broken
    /// by a deterministic seeded shuffle instead of by lowest rank.  Every
    /// perturbed schedule is a legal serialisation of the same virtual-time
    /// order, so a correct program produces byte-identical results under
    /// every seed; a program whose output depends on tie order is a
    /// concurrency bug this flushes out (see docs/VERIFY.md).  0 (default)
    /// keeps the classic lowest-rank tie-break; when 0, the
    /// PARAMRIO_SCHED_SEED environment variable, if set and nonzero,
    /// supplies the seed (so whole test suites can run perturbed).
    std::uint64_t perturb_seed = 0;

    /// When false, PARAMRIO_SCHED_SEED is ignored; tests that assert the
    /// classic lowest-rank tie order pin it with this.
    bool env_perturb = true;

    /// Scheduler backend.  kAuto resolves to kFibers, overridable with the
    /// PARAMRIO_SIM_ENGINE environment variable ("fibers" | "threads").
    /// Builds under ThreadSanitizer always resolve to kThreads — TSan does
    /// not understand swapcontext stack switches, has nothing to verify on
    /// a single-threaded scheduler, and the thread backend is the one with
    /// real cross-thread hand-offs for it to check (docs/SCALING.md).
    SchedBackend backend = SchedBackend::kAuto;

    /// Per-fiber stack size in bytes (fiber backend only).  0 picks the
    /// default — 512 KiB, or 2 MiB under Address/MemorySanitizer (redzones
    /// inflate frames) — overridable with PARAMRIO_FIBER_STACK_KB.  Stacks
    /// are lazily-committed guard-paged mmaps, so virtual size is cheap and
    /// resident memory tracks actual use.
    std::size_t fiber_stack_bytes = 0;

    /// The seed the engine will actually use: `perturb_seed` when nonzero,
    /// else the PARAMRIO_SCHED_SEED environment variable (0 on absence, a
    /// malformed value, or `env_perturb` false).
    std::uint64_t effective_perturb_seed() const;

    /// The backend the engine will actually use (resolves kAuto).
    SchedBackend effective_backend() const;

    /// The fiber stack size the engine will actually use.
    std::size_t effective_fiber_stack_bytes() const;
  };

  /// One application of a multi-tenant run: `nprocs` ranks executing `body`,
  /// entering the shared virtual timeline at `start_time` with fair-share
  /// `weight` at shared I/O servers.
  struct JobSpec {
    std::string name;  ///< label for metrics scopes; "" = anonymous
    int nprocs = 1;
    std::function<void(Proc&)> body;
    double start_time = 0.0;
    double weight = 1.0;
  };

  struct Result {
    std::vector<double> finish_times;  ///< per-rank final virtual clock
    std::vector<ProcStats> stats;      ///< per-rank accounting
    double makespan = 0.0;             ///< max finish time
  };

  /// Per-job slice of a multi-tenant run's results.  Clocks are absolute
  /// (shared timeline); subtract `start_time` for job-local elapsed time.
  struct JobResult {
    std::string name;
    double start_time = 0.0;
    Result result;
  };

  /// Run `body(proc)` on options.nprocs virtual processors and return the
  /// per-rank clocks and stats.  Rethrows the first exception a rank threw.
  static Result run(const Options& options,
                    const std::function<void(Proc&)>& body);

  /// Run several jobs concurrently on one shared virtual timeline (see the
  /// header comment).  options.nprocs is ignored; each job supplies its own.
  /// Any rank's exception aborts the whole run and is rethrown.
  static std::vector<JobResult> run_jobs(const Options& options,
                                         std::vector<JobSpec> jobs);

  /// Make a blocked proc runnable again (idempotent if already runnable).
  /// `global_rank` addresses across jobs; must be called from a proc of the
  /// same run.
  void signal(int global_rank);
  /// Job-addressed form: wake `rank` of `job`.
  void signal(int job, int rank);

  /// Total procs across all jobs.
  int total_procs() const { return static_cast<int>(procs_.size()); }
  /// Ranks in job `job`.
  int job_nprocs(int job) const;
  /// Number of jobs in this run (1 for Engine::run).
  int njobs() const { return static_cast<int>(jobs_.size()); }
  /// Label of job `job` ("" when anonymous).
  const std::string& job_name(int job) const;

 private:
  Engine() = default;

  enum class State : std::uint8_t { kRunnable, kBlocked, kFinished };

  // Thrown internally to unwind proc bodies when the run is aborted.
  struct Aborted {};

  struct Fiber;  // ucontext continuation state (engine.cpp)

  struct JobInfo {
    std::string name;
    int first = 0;  ///< global index of rank 0
    int nprocs = 0;
  };

  std::vector<JobResult> execute(const Options& options,
                                 std::vector<JobSpec> jobs);
  const std::function<void(Proc&)>& body_of(int global) const;

  // ---- thread backend ---------------------------------------------------
  void run_threads();
  void thread_main(int global);
  void yield_threads(int global, bool unwinding);
  void pass_baton_locked();
  /// Post-abort unwind serialisation: at most one proc thread at a time may
  /// run destructors after the run is aborted (they touch shared layers —
  /// file systems, the obs collector — that rely on the serial schedule for
  /// mutual exclusion, and that schedule is gone once the run aborts).
  void acquire_unwind_locked(std::unique_lock<std::mutex>& l, int global);
  void release_unwind(int global);

  // ---- fiber backend ----------------------------------------------------
  void run_fibers();
  void fiber_main(int global);
  void yield_fibers(int global, bool unwinding);
  /// Dispatch fiber `next` from the context of `from` (-1: the scheduler).
  /// `from_dying` marks `from` as permanently done (its stack may be freed
  /// once control leaves it).
  void switch_to(int from, int next, bool from_dying);
  /// makecontext entry point; the Engine* travels as two ints.
  static void fiber_trampoline(unsigned hi, unsigned lo, int global);

  // ---- shared scheduler core -------------------------------------------
  void yield_from(int global);
  int pick_next_locked();
  /// pick_next_locked, plus deadlock handling: when nothing is runnable but
  /// unfinished procs remain, aborts the run with a diagnosed DeadlockError
  /// and returns -1; returns -1 with no error when everything finished.
  int pick_or_deadlock_locked();
  /// pick_or_deadlock_locked, plus claiming: the picked proc is removed from
  /// the ready queue (it is about to run, and a running proc's clock moves).
  int pick_claim_locked();
  void ready_insert_locked(int global);
  void abort_locked(std::exception_ptr e);
  void observe_finish(int global);

  std::mutex mu_;
  std::vector<std::unique_ptr<std::condition_variable>> cvs_;  // per proc
  std::vector<Proc> procs_;
  std::vector<State> states_;
  /// Suspended runnable procs ordered by (clock, global index) — the pick
  /// order.  Sound because a suspended proc's clock is frozen: clocks only
  /// advance from the proc's own execution, so entries never go stale.  The
  /// running proc is *not* in the queue (its clock moves); it re-inserts
  /// itself when it yields.  Replaces an O(nprocs) scan per context switch
  /// that dominated host time beyond ~1k ranks (see docs/SCALING.md).
  std::set<std::pair<double, int>> ready_;
  std::vector<JobInfo> jobs_;
  std::vector<const std::function<void(Proc&)>*> bodies_;  ///< per job
  SchedBackend backend_ = SchedBackend::kFibers;
  std::size_t fiber_stack_bytes_ = 0;
  int current_ = 0;
  bool aborted_ = false;
  std::exception_ptr first_error_;
  int unwinder_ = -1;  ///< rank holding the post-abort unwind token (threads)
  std::condition_variable unwind_cv_;
  bool perturb_ = false;
  Rng perturb_rng_{0};  ///< tie-shuffle stream (perturb_ only)

  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::unique_ptr<Fiber> sched_fiber_;  ///< the scheduler's own context

  friend class Proc;
};

/// The Proc currently executing simulated code.  With the fiber backend this
/// is a scheduler-maintained pointer (no OS-thread identity involved); with
/// the thread backend it is the calling thread's proc.  Throws LogicError if
/// no simulated proc is executing.
Proc& current_proc();

/// True when called from simulated-processor code.
bool in_simulation();

}  // namespace paramrio::sim
