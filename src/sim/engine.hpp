// Conservative virtual-time discrete-event engine.
//
// The reproduction executes the real parallel code paths (message passing,
// two-phase I/O, file-format encoding) on a simulated parallel machine.  Each
// simulated processor ("proc") is an OS thread with a *virtual* clock; the
// engine enforces that at any instant exactly one proc executes user code —
// always the runnable proc with the smallest (clock, rank) pair.  This gives:
//
//   * determinism: runs are bit-reproducible regardless of OS scheduling,
//   * causal ordering: shared virtual-time resources (disks, NICs) observe
//     requests in global virtual-time order, so contention modelling with
//     simple next-free timelines is exact,
//   * zero data races: all user code is serialised by the baton, so the
//     layered libraries need no locking of their own.
//
// Procs advance their clocks with Proc::advance(); blocking primitives
// (Proc::block / Engine::signal) underpin message receive.  If every
// unfinished proc is blocked the engine throws DeadlockError.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace paramrio::sim {

/// Where a proc's virtual time went; reported per proc after a run.
enum class TimeCategory { kCpu, kComm, kIo };

/// Per-proc accounting, readable by benches and tests after Engine::run.
struct ProcStats {
  double cpu_time = 0.0;   ///< seconds spent in compute / memory traffic
  double comm_time = 0.0;  ///< seconds spent in message passing
  double io_time = 0.0;    ///< seconds spent in file-system requests

  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t io_bytes_read = 0;
  std::uint64_t io_bytes_written = 0;
  std::uint64_t io_requests = 0;

  /// All accounted virtual time (cpu + comm + io).
  double total() const { return cpu_time + comm_time + io_time; }
};

/// A virtual-time FIFO-served resource: a disk, an I/O server, a NIC, a
/// shared network backplane, an SMP node's I/O channel.  A request issued at
/// virtual time `now` with service duration `service` completes at
/// max(now, next_free) + service, and pushes next_free to that completion.
///
/// Because the engine serialises execution in virtual-time order, requests
/// arrive at the timeline already sorted by issue time, so this single
/// scalar reproduces FIFO queueing delay exactly.
class Timeline {
 public:
  double acquire(double now, double service) {
    double start = now > next_free_ ? now : next_free_;
    next_free_ = start + service;
    return next_free_;
  }

  double next_free() const { return next_free_; }
  void reset() { next_free_ = 0.0; }

 private:
  double next_free_ = 0.0;
};

class Engine;

/// Handle a simulated processor's code uses to interact with virtual time.
/// One per rank; obtain the calling thread's via sim::current_proc().
class Proc {
 public:
  int rank() const { return rank_; }
  int nprocs() const;
  double now() const { return deferred_ ? shadow_clock_ : clock_; }

  /// Spend `dt` seconds of virtual time, attributed to `cat`.
  void advance(double dt, TimeCategory cat = TimeCategory::kCpu);

  /// Jump the clock forward to at least `t` (message arrival, resource
  /// completion).  Waiting time is attributed to `cat`.
  void clock_at_least(double t, TimeCategory cat);

  /// Acquire a FIFO resource for `service` seconds starting now; the clock
  /// advances to the request's completion time.
  void use_resource(Timeline& tl, double service, TimeCategory cat);

  /// Mark this proc blocked and yield; returns after some other proc calls
  /// Engine::signal(rank()).  The caller must re-check its wake condition.
  /// Not allowed while deferred (an in-flight op cannot message).
  void block();

  // ---- deferred ("in-flight") execution --------------------------------
  //
  // Between begin_deferred() and end_deferred() the proc models work handed
  // to an asynchronous agent (a DMA engine, an I/O servicing thread): code
  // runs and moves bytes immediately — content stays deterministic because
  // the baton still serialises execution — but time costs accrue on a
  // *shadow* clock instead of the real one.  Timelines are still acquired
  // (at shadow times >= the real clock, preserving their FIFO invariant,
  // since this proc held the minimum clock when it was scheduled), no
  // ProcStats time is accounted, and the baton is never yielded.
  // end_deferred() returns the operation's virtual completion time; the
  // issuer later settles it with clock_at_least(completion, cat), which
  // charges exactly the stall that was not hidden behind other work.

  /// Enter deferred mode (must not already be deferred).  The shadow clock
  /// starts at the real clock.
  void begin_deferred();

  /// Leave deferred mode; returns the shadow clock — the virtual time at
  /// which the deferred work completes.
  double end_deferred();

  /// True while inside a begin_deferred()/end_deferred() region.
  bool deferred() const { return deferred_; }

  ProcStats& stats() { return stats_; }
  const ProcStats& stats() const { return stats_; }

  /// Deterministic per-rank random stream.
  Rng& rng() { return rng_; }

  Engine& engine() { return *engine_; }

 private:
  friend class Engine;
  Proc(Engine* e, int rank, std::uint64_t seed)
      : engine_(e), rank_(rank), rng_(seed) {}

  Engine* engine_;
  int rank_;
  double clock_ = 0.0;
  double shadow_clock_ = 0.0;  ///< in-flight time while deferred_
  bool deferred_ = false;
  ProcStats stats_;
  Rng rng_;
};

/// Passive observer of engine-level events, for the verify layer (the
/// engine itself stays dependency-free).  Install with set_run_observer()
/// outside a run; all callbacks arrive serialised (either from the proc
/// holding the baton or under the engine lock at abort time).
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// A proc's body returned cleanly.  `deferred` is true when the proc
  /// finished inside an unsettled begin_deferred() region — its clock no
  /// longer reflects the in-flight work it issued.
  virtual void on_proc_finished(int rank, bool deferred, double clock) = 0;

  /// The engine found no runnable proc with unfinished procs remaining.
  /// The returned text (e.g. blocked ops and the wait-for cycle) is
  /// appended to the DeadlockError the run rethrows.
  virtual std::string diagnose_deadlock() = 0;
};

/// Install `obs` as the process-wide run observer (nullptr detaches).  Call
/// outside Engine::run.
void set_run_observer(RunObserver* obs);
RunObserver* run_observer();

/// The engine itself.  Construct, then call run() with the per-rank body.
class Engine {
 public:
  struct Options {
    int nprocs = 1;
    std::uint64_t seed = 0x5eed5eed5eedULL;  ///< root of all per-rank RNGs

    /// Schedule perturbation: when nonzero, scheduling ties — runnable procs
    /// whose virtual clocks are exactly equal at a baton pass — are broken
    /// by a deterministic seeded shuffle instead of by lowest rank.  Every
    /// perturbed schedule is a legal serialisation of the same virtual-time
    /// order, so a correct program produces byte-identical results under
    /// every seed; a program whose output depends on tie order is a
    /// concurrency bug this flushes out (see docs/VERIFY.md).  0 (default)
    /// keeps the classic lowest-rank tie-break; when 0, the
    /// PARAMRIO_SCHED_SEED environment variable, if set and nonzero,
    /// supplies the seed (so whole test suites can run perturbed).
    std::uint64_t perturb_seed = 0;

    /// When false, PARAMRIO_SCHED_SEED is ignored; tests that assert the
    /// classic lowest-rank tie order pin it with this.
    bool env_perturb = true;

    /// The seed the engine will actually use: `perturb_seed` when nonzero,
    /// else the PARAMRIO_SCHED_SEED environment variable (0 on absence, a
    /// malformed value, or `env_perturb` false).
    std::uint64_t effective_perturb_seed() const;
  };

  struct Result {
    std::vector<double> finish_times;  ///< per-rank final virtual clock
    std::vector<ProcStats> stats;      ///< per-rank accounting
    double makespan = 0.0;             ///< max finish time
  };

  /// Run `body(proc)` on options.nprocs virtual processors and return the
  /// per-rank clocks and stats.  Rethrows the first exception a rank threw.
  static Result run(const Options& options,
                    const std::function<void(Proc&)>& body);

  /// Make a blocked proc runnable again (idempotent if already runnable).
  /// Must be called from a proc thread inside the same run.
  void signal(int rank);

  int nprocs() const { return static_cast<int>(procs_.size()); }

 private:
  Engine() = default;

  enum class State : std::uint8_t { kRunnable, kBlocked, kFinished };

  // Thrown internally to unwind proc threads when the run is aborted.
  struct Aborted {};

  void thread_main(int rank, const std::function<void(Proc&)>& body);
  void yield_from(int rank);
  void pass_baton_locked();
  int pick_next_locked();
  void abort_locked(std::exception_ptr e);
  /// Post-abort unwind serialisation: at most one proc thread at a time may
  /// run destructors after the run is aborted (they touch shared layers —
  /// file systems, the obs collector — that rely on the baton for mutual
  /// exclusion, and the baton is gone once the run aborts).
  void acquire_unwind_locked(std::unique_lock<std::mutex>& l, int rank);
  void release_unwind(int rank);

  std::mutex mu_;
  std::vector<std::unique_ptr<std::condition_variable>> cvs_;  // per proc
  std::vector<Proc> procs_;
  std::vector<State> states_;
  int current_ = 0;
  bool aborted_ = false;
  std::exception_ptr first_error_;
  int unwinder_ = -1;  ///< rank holding the post-abort unwind token
  std::condition_variable unwind_cv_;
  bool perturb_ = false;
  Rng perturb_rng_{0};  ///< tie-shuffle stream (perturb_ only)

  friend class Proc;
};

/// The Proc of the calling simulated-processor thread.  Throws LogicError if
/// the caller is not inside Engine::run.
Proc& current_proc();

/// True when the calling thread is a simulated processor.
bool in_simulation();

}  // namespace paramrio::sim
