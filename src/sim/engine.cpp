#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include <pthread.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

// Sanitizer feature detection (gcc defines __SANITIZE_*; clang has
// __has_feature).
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PARAMRIO_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define PARAMRIO_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define PARAMRIO_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define PARAMRIO_TSAN 1
#endif

#if defined(PARAMRIO_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

// The C++ runtime keeps per-thread exception state (the in-flight exception
// stack and the uncaught count behind std::uncaught_exceptions) in TLS.
// Fibers share one OS thread, but a proc may legitimately suspend while
// unwinding (a destructor advancing the clock during CrashError propagation)
// or inside a catch block (retry backoff after a TransientError), so that
// state must travel with the fiber.  We swap it at every context switch.
// The struct layout below matches both libstdc++ and libc++abi; the symbol
// itself is not exposed by <cxxabi.h>, hence the local declaration.
namespace __cxxabiv1 {
extern "C" void* __cxa_get_globals() noexcept;
}

namespace paramrio::sim {

namespace {
thread_local Proc* t_current_proc = nullptr;

RunObserver* g_run_observer = nullptr;

struct EhGlobals {
  void* caught_exceptions = nullptr;
  unsigned int uncaught_exceptions = 0;
};

void account(ProcStats& s, TimeCategory cat, double dt) {
  switch (cat) {
    case TimeCategory::kCpu:
      s.cpu_time += dt;
      break;
    case TimeCategory::kComm:
      s.comm_time += dt;
      break;
    case TimeCategory::kIo:
      s.io_time += dt;
      break;
  }
}

std::uint64_t env_u64(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::uint64_t>(v);
}
}  // namespace

// ---------------------------------------------------------------------------
// Options resolution
// ---------------------------------------------------------------------------

std::uint64_t Engine::Options::effective_perturb_seed() const {
  if (perturb_seed != 0) return perturb_seed;
  if (!env_perturb) return 0;
  return env_u64("PARAMRIO_SCHED_SEED");
}

SchedBackend Engine::Options::effective_backend() const {
#if defined(PARAMRIO_TSAN)
  // TSan instruments OS-thread synchronisation; it neither understands
  // swapcontext stack switches nor has anything to verify on a
  // single-threaded scheduler.  The thread backend is the one with real
  // cross-thread hand-offs, so it is what TSan runs — unconditionally
  // (docs/SCALING.md).
  return SchedBackend::kThreads;
#else
  if (backend != SchedBackend::kAuto) return backend;
  const char* env = std::getenv("PARAMRIO_SIM_ENGINE");
  if (env != nullptr && std::strcmp(env, "threads") == 0) {
    return SchedBackend::kThreads;
  }
  return SchedBackend::kFibers;
#endif
}

std::size_t Engine::Options::effective_fiber_stack_bytes() const {
  constexpr std::size_t kMin = 64 * 1024;
  std::size_t bytes = fiber_stack_bytes;
  if (bytes == 0) {
    bytes = static_cast<std::size_t>(env_u64("PARAMRIO_FIBER_STACK_KB")) * 1024;
  }
  if (bytes == 0) {
#if defined(PARAMRIO_ASAN)
    bytes = 4 * 1024 * 1024;  // ASan redzones inflate frames considerably
#else
    bytes = 1024 * 1024;
#endif
  }
  return bytes < kMin ? kMin : bytes;
}

// ---------------------------------------------------------------------------
// Observer / current-proc accessors
// ---------------------------------------------------------------------------

void set_run_observer(RunObserver* obs) { g_run_observer = obs; }

RunObserver* run_observer() { return g_run_observer; }

Proc& current_proc() {
  PARAMRIO_REQUIRE(t_current_proc != nullptr,
                   "not inside a simulated processor");
  return *t_current_proc;
}

bool in_simulation() { return t_current_proc != nullptr; }

// ---------------------------------------------------------------------------
// Proc
// ---------------------------------------------------------------------------

int Proc::nprocs() const { return engine_->job_nprocs(job_); }

const std::string& Proc::job_name() const { return engine_->job_name(job_); }

int Proc::njobs() const { return engine_->njobs(); }

void Proc::advance(double dt, TimeCategory cat) {
  PARAMRIO_REQUIRE(dt >= 0.0, "negative time advance");
  if (deferred_) {
    shadow_clock_ += dt;
    return;
  }
  clock_ += dt;
  account(stats_, cat, dt);
  engine_->yield_from(global_);
}

void Proc::clock_at_least(double t, TimeCategory cat) {
  if (deferred_) {
    if (t > shadow_clock_) shadow_clock_ = t;
    return;
  }
  if (t <= clock_) return;
  account(stats_, cat, t - clock_);
  clock_ = t;
  engine_->yield_from(global_);
}

void Proc::use_resource(Timeline& tl, double service, TimeCategory cat) {
  PARAMRIO_REQUIRE(service >= 0.0, "negative service time");
  if (deferred_) {
    shadow_clock_ = tl.acquire(shadow_clock_, service);
    return;
  }
  double done = tl.acquire(clock_, service);
  account(stats_, cat, done - clock_);
  clock_ = done;
  engine_->yield_from(global_);
}

void Proc::begin_deferred() {
  PARAMRIO_REQUIRE(!deferred_, "begin_deferred: already deferred");
  deferred_ = true;
  shadow_clock_ = clock_;
}

double Proc::end_deferred() {
  PARAMRIO_REQUIRE(deferred_, "end_deferred: not deferred");
  deferred_ = false;
  return shadow_clock_;
}

void Proc::block() {
  PARAMRIO_REQUIRE(!deferred_, "block: cannot block while deferred");
  {
    std::lock_guard<std::mutex> l(engine_->mu_);
    engine_->states_[static_cast<std::size_t>(global_)] =
        Engine::State::kBlocked;
  }
  engine_->yield_from(global_);
}

// ---------------------------------------------------------------------------
// Fiber state
// ---------------------------------------------------------------------------

struct Engine::Fiber {
  ucontext_t ctx{};
  void* map_base = nullptr;   ///< mmap base (guard page), nullptr: OS stack
  std::size_t map_len = 0;
  void* stack_lo = nullptr;   ///< usable stack (above the guard page)
  std::size_t stack_len = 0;
  bool done = false;          ///< will never run again; stack reclaimable
  EhGlobals eh{};             ///< C++ runtime exception state while suspended
  void* asan_fake_stack = nullptr;
};

// ---------------------------------------------------------------------------
// Run setup / teardown
// ---------------------------------------------------------------------------

Engine::Result Engine::run(const Options& options,
                           const std::function<void(Proc&)>& body) {
  PARAMRIO_REQUIRE(options.nprocs >= 1, "need at least one proc");
  JobSpec spec;
  spec.nprocs = options.nprocs;
  spec.body = body;
  std::vector<JobSpec> jobs;
  jobs.push_back(std::move(spec));
  Engine engine;
  return std::move(engine.execute(options, std::move(jobs))[0].result);
}

std::vector<Engine::JobResult> Engine::run_jobs(const Options& options,
                                                std::vector<JobSpec> jobs) {
  PARAMRIO_REQUIRE(!jobs.empty(), "run_jobs: need at least one job");
  Engine engine;
  return engine.execute(options, std::move(jobs));
}

int Engine::job_nprocs(int job) const {
  return jobs_[static_cast<std::size_t>(job)].nprocs;
}

const std::string& Engine::job_name(int job) const {
  return jobs_[static_cast<std::size_t>(job)].name;
}

const std::function<void(Proc&)>& Engine::body_of(int global) const {
  const int job = procs_[static_cast<std::size_t>(global)].job_;
  return *bodies_[static_cast<std::size_t>(job)];
}

std::vector<Engine::JobResult> Engine::execute(const Options& options,
                                               std::vector<JobSpec> jobs) {
  int total = 0;
  for (const JobSpec& j : jobs) {
    PARAMRIO_REQUIRE(j.nprocs >= 1, "need at least one proc");
    PARAMRIO_REQUIRE(j.body != nullptr, "job has no body");
    PARAMRIO_REQUIRE(j.start_time >= 0.0, "negative job start time");
    PARAMRIO_REQUIRE(j.weight > 0.0, "job weight must be positive");
    total += j.nprocs;
  }

  const std::uint64_t perturb = options.effective_perturb_seed();
  if (perturb != 0) {
    perturb_ = true;
    perturb_rng_ = Rng(perturb);
  }
  backend_ = options.effective_backend();
  fiber_stack_bytes_ = options.effective_fiber_stack_bytes();

  // Per-rank RNG streams are drawn from the root seed in global rank order,
  // so a single-job run is seeded exactly as it always was.
  Rng root(options.seed);
  procs_.reserve(static_cast<std::size_t>(total));
  jobs_.reserve(jobs.size());
  bodies_.reserve(jobs.size());
  int first = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobSpec& spec = jobs[j];
    jobs_.push_back(JobInfo{spec.name, first, spec.nprocs});
    bodies_.push_back(&spec.body);
    for (int r = 0; r < spec.nprocs; ++r) {
      Proc p(this, r, root.next_u64());
      p.global_ = first + r;
      p.job_ = static_cast<int>(j);
      p.job_weight_ = spec.weight;
      p.job_start_ = spec.start_time;
      p.clock_ = spec.start_time;
      procs_.push_back(std::move(p));
    }
    first += spec.nprocs;
  }
  states_.assign(static_cast<std::size_t>(total), State::kRunnable);
  // Seed the ready queue with every suspended runnable proc.  Global proc 0
  // is dispatched first without a scheduling pick (both backends hand it the
  // first baton unconditionally), so it starts out claimed.
  for (int g = 1; g < total; ++g) ready_insert_locked(g);
  current_ = 0;

  // Support nesting (an Engine::run inside a proc body): the inner run owns
  // t_current_proc while it executes and must hand it back.
  Proc* outer = t_current_proc;
  t_current_proc = nullptr;
  try {
    if (backend_ == SchedBackend::kThreads) {
      run_threads();
    } else {
      run_fibers();
    }
  } catch (...) {
    t_current_proc = outer;
    throw;
  }
  t_current_proc = outer;

  if (first_error_) std::rethrow_exception(first_error_);

  std::vector<JobResult> results;
  results.reserve(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobInfo& job = jobs_[j];
    JobResult jr;
    jr.name = job.name;
    jr.start_time = jobs[j].start_time;
    jr.result.finish_times.reserve(static_cast<std::size_t>(job.nprocs));
    jr.result.stats.reserve(static_cast<std::size_t>(job.nprocs));
    for (int r = 0; r < job.nprocs; ++r) {
      const Proc& p = procs_[static_cast<std::size_t>(job.first + r)];
      jr.result.finish_times.push_back(p.now());
      jr.result.stats.push_back(p.stats());
      jr.result.makespan = std::max(jr.result.makespan, p.now());
    }
    results.push_back(std::move(jr));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Thread backend (one OS thread per rank; kept for TSan and for differential
// testing of the fiber scheduler — both must serialise identically)
// ---------------------------------------------------------------------------

void Engine::run_threads() {
  cvs_.reserve(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    cvs_.push_back(std::make_unique<std::condition_variable>());
  }
  std::vector<std::thread> threads;
  threads.reserve(procs_.size());
  for (int g = 0; g < total_procs(); ++g) {
    threads.emplace_back([this, g] { thread_main(g); });
  }
  for (auto& t : threads) t.join();
}

void Engine::thread_main(int global) {
  Proc& proc = procs_[static_cast<std::size_t>(global)];
  t_current_proc = &proc;
  // Wait for the baton before touching any shared state.
  {
    std::unique_lock<std::mutex> l(mu_);
    cvs_[static_cast<std::size_t>(global)]->wait(
        l, [&] { return current_ == global || aborted_; });
  }
  bool clean = false;
  try {
    if (!aborted_) {
      body_of(global)(proc);
      clean = true;
    }
  } catch (const Aborted&) {
    // Another rank failed; just unwind quietly.
  } catch (...) {
    {
      std::lock_guard<std::mutex> l(mu_);
      states_[static_cast<std::size_t>(global)] = State::kFinished;
      abort_locked(std::current_exception());
    }
    release_unwind(global);
    t_current_proc = nullptr;
    return;
  }
  if (clean && !aborted_) {
    // The baton is still ours here: the observer sees serialised state.
    observe_finish(global);
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    states_[static_cast<std::size_t>(global)] = State::kFinished;
    if (clean && !aborted_) {
      pass_baton_locked();
    }
  }
  release_unwind(global);
  t_current_proc = nullptr;
}

void Engine::acquire_unwind_locked(std::unique_lock<std::mutex>& l,
                                   int global) {
  if (unwinder_ == global) return;
  unwind_cv_.wait(l, [&] { return unwinder_ == -1; });
  unwinder_ = global;
}

void Engine::release_unwind(int global) {
  std::lock_guard<std::mutex> l(mu_);
  if (unwinder_ == global) {
    unwinder_ = -1;
    unwind_cv_.notify_all();
  }
}

void Engine::yield_threads(int global, bool unwinding) {
  std::unique_lock<std::mutex> l(mu_);
  if (aborted_) {
    // The baton stops circulating at abort, but the destructors that land
    // here still touch shared state; the unwind token keeps post-abort
    // unwinding mutually exclusive (one rank at a time).
    acquire_unwind_locked(l, global);
    if (unwinding) return;
    throw Aborted{};
  }
  // Still runnable (a blocking proc flipped its state before yielding):
  // rejoin the ready queue at the current clock before picking, so the pick
  // sees the same candidate set the old full scan did.
  if (states_[static_cast<std::size_t>(global)] == State::kRunnable) {
    ready_insert_locked(global);
  }
  pass_baton_locked();
  if (current_ != global) {
    cvs_[static_cast<std::size_t>(global)]->wait(
        l, [&] { return current_ == global || aborted_; });
  }
  if (aborted_) {
    acquire_unwind_locked(l, global);
    if (unwinding) return;
    throw Aborted{};
  }
}

void Engine::pass_baton_locked() {
  int next = pick_claim_locked();
  if (next >= 0) {
    current_ = next;
    cvs_[static_cast<std::size_t>(next)]->notify_one();
    return;
  }
  current_ = -1;
}

// ---------------------------------------------------------------------------
// Fiber backend (run-to-yield continuations on one OS thread)
// ---------------------------------------------------------------------------

namespace {
/// Swap the C++ runtime's per-thread exception state between fibers (see the
/// __cxa_get_globals note at the top of this file).
void swap_eh_globals(EhGlobals& save_into, const EhGlobals& load_from) {
  void* globals = __cxxabiv1::__cxa_get_globals();
  std::memcpy(&save_into, globals, sizeof(EhGlobals));
  std::memcpy(globals, &load_from, sizeof(EhGlobals));
}
}  // namespace

void Engine::run_fibers() {
  const long page = ::sysconf(_SC_PAGESIZE);
  PARAMRIO_REQUIRE(page > 0, "sysconf(_SC_PAGESIZE) failed");
  const std::size_t pagesz = static_cast<std::size_t>(page);
  std::size_t stack_len = (fiber_stack_bytes_ + pagesz - 1) & ~(pagesz - 1);

  sched_fiber_ = std::make_unique<Fiber>();
#if defined(PARAMRIO_ASAN)
  {
    // ASan needs the target stack's bounds at every switch, including
    // switches back to the scheduler, which runs on the OS thread stack.
    pthread_attr_t attr;
    PARAMRIO_REQUIRE(pthread_getattr_np(pthread_self(), &attr) == 0,
                     "pthread_getattr_np failed");
    void* lo = nullptr;
    std::size_t len = 0;
    PARAMRIO_REQUIRE(pthread_attr_getstack(&attr, &lo, &len) == 0,
                     "pthread_attr_getstack failed");
    pthread_attr_destroy(&attr);
    sched_fiber_->stack_lo = lo;
    sched_fiber_->stack_len = len;
  }
#endif

  fibers_.reserve(procs_.size());
  const std::uintptr_t self = reinterpret_cast<std::uintptr_t>(this);
  for (int g = 0; g < total_procs(); ++g) {
    auto f = std::make_unique<Fiber>();
    // Lazily-committed stack with a PROT_NONE guard page at the low end, so
    // overflow faults instead of silently corrupting a neighbour.  Resident
    // memory tracks the pages each rank actually touches.
    const std::size_t map_len = stack_len + pagesz;
    void* base = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    PARAMRIO_REQUIRE(base != MAP_FAILED, "fiber stack mmap failed");
    PARAMRIO_REQUIRE(::mprotect(base, pagesz, PROT_NONE) == 0,
                     "fiber guard page mprotect failed");
    f->map_base = base;
    f->map_len = map_len;
    f->stack_lo = static_cast<char*>(base) + pagesz;
    f->stack_len = stack_len;
    PARAMRIO_REQUIRE(::getcontext(&f->ctx) == 0, "getcontext failed");
    f->ctx.uc_stack.ss_sp = f->stack_lo;
    f->ctx.uc_stack.ss_size = f->stack_len;
    f->ctx.uc_link = nullptr;  // fibers exit via finish_fiber, never return
    // Two-step cast: makecontext takes void(*)() while the trampoline has
    // real parameters; going via void* sidesteps -Wcast-function-type.
    void (*entry)() = reinterpret_cast<void (*)()>(
        reinterpret_cast<void*>(&Engine::fiber_trampoline));
    ::makecontext(&f->ctx, entry, 3, static_cast<unsigned>(self >> 32),
                  static_cast<unsigned>(self & 0xffffffffu), g);
    fibers_.push_back(std::move(f));
  }

  // Initial dispatch: global proc 0, with no scheduling pick — exactly as
  // the thread backend hands the first baton to rank 0 (RNG-draw parity).
  switch_to(-1, 0, false);

  // Control returns here once the run is over: after a clean run the last
  // finisher found nothing left to schedule; after an abort every dying
  // fiber returns here.  The drain loop resumes each remaining fiber so it
  // can unwind on this thread — never-started fibers skip their body,
  // suspended ones get Aborted thrown from their yield point — which is
  // what makes abort clean even when procs sit blocked inside collectives.
  for (;;) {
    int pending = -1;
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      if (!fibers_[i]->done) {
        pending = static_cast<int>(i);
        break;
      }
    }
    if (pending < 0) break;
    switch_to(-1, pending, false);
  }

  for (auto& f : fibers_) {
    if (f->map_base != nullptr) ::munmap(f->map_base, f->map_len);
  }
  fibers_.clear();
  sched_fiber_.reset();
}

void Engine::fiber_trampoline(unsigned hi, unsigned lo, int global) {
#if defined(PARAMRIO_ASAN)
  // First entry onto this fiber's stack: complete the switch ASan saw start.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  const std::uintptr_t ptr =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Engine*>(ptr)->fiber_main(global);
}

void Engine::fiber_main(int global) {
  Proc& proc = procs_[static_cast<std::size_t>(global)];
  bool clean = false;
  try {
    if (!aborted_) {
      body_of(global)(proc);
      clean = true;
    }
  } catch (const Aborted&) {
    // Another rank failed; we just unwound quietly.
  } catch (...) {
    std::lock_guard<std::mutex> l(mu_);
    states_[static_cast<std::size_t>(global)] = State::kFinished;
    abort_locked(std::current_exception());
  }
  if (clean && !aborted_) observe_finish(global);
  int next = -1;
  {
    std::lock_guard<std::mutex> l(mu_);
    states_[static_cast<std::size_t>(global)] = State::kFinished;
    // Exactly one scheduling pick per clean finish — the same RNG-draw
    // cadence as the thread backend's pass_baton_locked.
    if (clean && !aborted_) next = pick_claim_locked();
  }
  switch_to(global, aborted_ ? -1 : next, /*from_dying=*/true);
  // A dead fiber can never be rescheduled; reaching here is a scheduler bug.
  std::abort();
}

void Engine::yield_fibers(int global, bool unwinding) {
  int next;
  {
    std::unique_lock<std::mutex> l(mu_);
    if (aborted_) {
      // No unwind token needed: the drain loop resumes one fiber at a time
      // on this single thread, so post-abort unwinding is serial by
      // construction.
      if (unwinding) return;
      throw Aborted{};
    }
    if (states_[static_cast<std::size_t>(global)] == State::kRunnable) {
      ready_insert_locked(global);
    }
    next = pick_claim_locked();
  }
  if (aborted_) {
    // We just detected the deadlock ourselves; unwind this proc too.
    if (unwinding) return;
    throw Aborted{};
  }
  if (next == global) return;  // still the minimum: keep running
  switch_to(global, next, false);
  // Somebody resumed us: either the schedule reached our clock again, or
  // the drain loop wants us to unwind.
  if (aborted_) {
    if (unwinding) return;
    throw Aborted{};
  }
}

void Engine::switch_to(int from, int next, bool from_dying) {
  Fiber& from_f = from < 0 ? *sched_fiber_
                           : *fibers_[static_cast<std::size_t>(from)];
  Fiber& to_f = next < 0 ? *sched_fiber_
                         : *fibers_[static_cast<std::size_t>(next)];
  if (from_dying && from >= 0) from_f.done = true;
  current_ = next;
  t_current_proc =
      next < 0 ? nullptr : &procs_[static_cast<std::size_t>(next)];
  swap_eh_globals(from_f.eh, to_f.eh);
#if defined(PARAMRIO_ASAN)
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &from_f.asan_fake_stack,
                                 to_f.stack_lo, to_f.stack_len);
#endif
  PARAMRIO_REQUIRE(::swapcontext(&from_f.ctx, &to_f.ctx) == 0,
                   "swapcontext failed");
#if defined(PARAMRIO_ASAN)
  __sanitizer_finish_switch_fiber(from_f.asan_fake_stack, nullptr, nullptr);
#endif
}

// ---------------------------------------------------------------------------
// Shared scheduler core
// ---------------------------------------------------------------------------

void Engine::yield_from(int global) {
  // A rank unwinding an exception (e.g. an injected CrashError, or Aborted
  // after another rank crashed) still runs destructors that advance the
  // clock — File close, RAII spans.  Those land here from noexcept contexts,
  // so once the run is aborted we must return instead of throwing: the
  // virtual time of a dying run is meaningless, but terminate() is not.
  const bool unwinding = std::uncaught_exceptions() > 0;
  if (backend_ == SchedBackend::kThreads) {
    yield_threads(global, unwinding);
  } else {
    yield_fibers(global, unwinding);
  }
}

void Engine::ready_insert_locked(int global) {
  ready_.emplace(procs_[static_cast<std::size_t>(global)].now(), global);
}

int Engine::pick_next_locked() {
  // The queue holds every runnable proc (the yielding proc re-inserted
  // itself before this call), ordered by (clock, global index) — so begin()
  // is exactly the proc the old linear scan found: lowest clock, ties to the
  // lowest index.
  if (ready_.empty()) return -1;
  const auto best = ready_.begin();
  if (!perturb_) return best->second;
  // Schedule perturbation: break the tie by a seeded draw instead of lowest
  // index.  Any tie order is a legal serialisation of the same virtual-time
  // schedule, so correct programs are insensitive to the choice.  The tie
  // group is the equal-clock prefix of the queue, enumerated in index order
  // — the same candidates, in the same order, as the scan this replaced, so
  // the RNG stream consumes identically and perturbed runs stay
  // byte-for-byte reproducible across engine versions.
  const double best_clock = best->first;
  int ties = 0;
  auto end = best;
  while (end != ready_.end() && end->first == best_clock) {
    ++ties;
    ++end;
  }
  if (ties <= 1) return best->second;
  std::uint64_t pick = perturb_rng_.next_u64() % static_cast<std::uint64_t>(ties);
  auto it = best;
  std::advance(it, static_cast<std::ptrdiff_t>(pick));
  return it->second;
}

int Engine::pick_claim_locked() {
  int next = pick_or_deadlock_locked();
  if (next >= 0) {
    // Claimed: the proc is about to run and its clock will move, so it must
    // leave the queue (suspended entries rely on frozen clocks).
    ready_.erase({procs_[static_cast<std::size_t>(next)].now(), next});
  }
  return next;
}

int Engine::pick_or_deadlock_locked() {
  int next = pick_next_locked();
  if (next >= 0) return next;
  // Nobody runnable: either everyone finished (fine) or deadlock.
  bool all_finished =
      std::all_of(states_.begin(), states_.end(),
                  [](State s) { return s == State::kFinished; });
  if (!all_finished) {
    int blocked = 0;
    for (State s : states_) blocked += (s == State::kBlocked) ? 1 : 0;
    std::string message = "simulation deadlock: " + std::to_string(blocked) +
                          " proc(s) blocked with no runnable proc";
    if (g_run_observer != nullptr) {
      // The verify layer (when attached) knows what each blocked rank was
      // doing — the collective it entered, the peer its receive awaits —
      // and renders the wait-for cycle.  Serialised: we hold the engine
      // lock and no proc is runnable.
      const std::string diagnosis = g_run_observer->diagnose_deadlock();
      if (!diagnosis.empty()) message += "\n" + diagnosis;
    }
    abort_locked(std::make_exception_ptr(DeadlockError(message)));
  }
  return -1;
}

void Engine::abort_locked(std::exception_ptr e) {
  if (!first_error_) first_error_ = e;
  aborted_ = true;
  for (auto& cv : cvs_) cv->notify_all();
}

void Engine::observe_finish(int global) {
  if (g_run_observer == nullptr) return;
  const Proc& proc = procs_[static_cast<std::size_t>(global)];
  g_run_observer->on_proc_finished(global, proc.deferred(), proc.now());
}

void Engine::signal(int global_rank) {
  PARAMRIO_REQUIRE(global_rank >= 0 && global_rank < total_procs(),
                   "signal: bad rank");
  std::lock_guard<std::mutex> l(mu_);
  if (states_[static_cast<std::size_t>(global_rank)] == State::kBlocked) {
    states_[static_cast<std::size_t>(global_rank)] = State::kRunnable;
    ready_insert_locked(global_rank);
  }
}

void Engine::signal(int job, int rank) {
  PARAMRIO_REQUIRE(job >= 0 && job < njobs(), "signal: bad job");
  PARAMRIO_REQUIRE(rank >= 0 && rank < job_nprocs(job), "signal: bad rank");
  signal(jobs_[static_cast<std::size_t>(job)].first + rank);
}

}  // namespace paramrio::sim
