#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

namespace paramrio::sim {

namespace {
thread_local Proc* t_current_proc = nullptr;

RunObserver* g_run_observer = nullptr;

void account(ProcStats& s, TimeCategory cat, double dt) {
  switch (cat) {
    case TimeCategory::kCpu:
      s.cpu_time += dt;
      break;
    case TimeCategory::kComm:
      s.comm_time += dt;
      break;
    case TimeCategory::kIo:
      s.io_time += dt;
      break;
  }
}
}  // namespace

std::uint64_t Engine::Options::effective_perturb_seed() const {
  if (perturb_seed != 0) return perturb_seed;
  if (!env_perturb) return 0;
  const char* env = std::getenv("PARAMRIO_SCHED_SEED");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::uint64_t>(v);
}

void set_run_observer(RunObserver* obs) { g_run_observer = obs; }

RunObserver* run_observer() { return g_run_observer; }

Proc& current_proc() {
  PARAMRIO_REQUIRE(t_current_proc != nullptr,
                   "not inside a simulated processor");
  return *t_current_proc;
}

bool in_simulation() { return t_current_proc != nullptr; }

int Proc::nprocs() const { return engine_->nprocs(); }

void Proc::advance(double dt, TimeCategory cat) {
  PARAMRIO_REQUIRE(dt >= 0.0, "negative time advance");
  if (deferred_) {
    shadow_clock_ += dt;
    return;
  }
  clock_ += dt;
  account(stats_, cat, dt);
  engine_->yield_from(rank_);
}

void Proc::clock_at_least(double t, TimeCategory cat) {
  if (deferred_) {
    if (t > shadow_clock_) shadow_clock_ = t;
    return;
  }
  if (t <= clock_) return;
  account(stats_, cat, t - clock_);
  clock_ = t;
  engine_->yield_from(rank_);
}

void Proc::use_resource(Timeline& tl, double service, TimeCategory cat) {
  PARAMRIO_REQUIRE(service >= 0.0, "negative service time");
  if (deferred_) {
    shadow_clock_ = tl.acquire(shadow_clock_, service);
    return;
  }
  double done = tl.acquire(clock_, service);
  account(stats_, cat, done - clock_);
  clock_ = done;
  engine_->yield_from(rank_);
}

void Proc::begin_deferred() {
  PARAMRIO_REQUIRE(!deferred_, "begin_deferred: already deferred");
  deferred_ = true;
  shadow_clock_ = clock_;
}

double Proc::end_deferred() {
  PARAMRIO_REQUIRE(deferred_, "end_deferred: not deferred");
  deferred_ = false;
  return shadow_clock_;
}

void Proc::block() {
  PARAMRIO_REQUIRE(!deferred_, "block: cannot block while deferred");
  {
    std::lock_guard<std::mutex> l(engine_->mu_);
    engine_->states_[static_cast<std::size_t>(rank_)] =
        Engine::State::kBlocked;
  }
  engine_->yield_from(rank_);
}

Engine::Result Engine::run(const Options& options,
                           const std::function<void(Proc&)>& body) {
  PARAMRIO_REQUIRE(options.nprocs >= 1, "need at least one proc");
  Engine engine;
  const std::uint64_t perturb = options.effective_perturb_seed();
  if (perturb != 0) {
    engine.perturb_ = true;
    engine.perturb_rng_ = Rng(perturb);
  }
  Rng root(options.seed);
  engine.procs_.reserve(static_cast<std::size_t>(options.nprocs));
  for (int r = 0; r < options.nprocs; ++r) {
    engine.procs_.push_back(Proc(&engine, r, root.next_u64()));
  }
  engine.states_.assign(static_cast<std::size_t>(options.nprocs),
                        State::kRunnable);
  engine.cvs_.reserve(static_cast<std::size_t>(options.nprocs));
  for (int r = 0; r < options.nprocs; ++r) {
    engine.cvs_.push_back(std::make_unique<std::condition_variable>());
  }
  engine.current_ = 0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.nprocs));
  for (int r = 0; r < options.nprocs; ++r) {
    threads.emplace_back([&engine, r, &body] { engine.thread_main(r, body); });
  }
  for (auto& t : threads) t.join();

  if (engine.first_error_) std::rethrow_exception(engine.first_error_);

  Result result;
  result.finish_times.reserve(engine.procs_.size());
  result.stats.reserve(engine.procs_.size());
  for (const Proc& p : engine.procs_) {
    result.finish_times.push_back(p.now());
    result.stats.push_back(p.stats());
    result.makespan = std::max(result.makespan, p.now());
  }
  return result;
}

void Engine::thread_main(int rank, const std::function<void(Proc&)>& body) {
  Proc& proc = procs_[static_cast<std::size_t>(rank)];
  t_current_proc = &proc;
  // Wait for the baton before touching any shared state.
  {
    std::unique_lock<std::mutex> l(mu_);
    cvs_[static_cast<std::size_t>(rank)]->wait(
        l, [&] { return current_ == rank || aborted_; });
  }
  bool clean = false;
  try {
    if (!aborted_) {
      body(proc);
      clean = true;
    }
  } catch (const Aborted&) {
    // Another rank failed; just unwind quietly.
  } catch (...) {
    {
      std::lock_guard<std::mutex> l(mu_);
      states_[static_cast<std::size_t>(rank)] = State::kFinished;
      abort_locked(std::current_exception());
    }
    release_unwind(rank);
    t_current_proc = nullptr;
    return;
  }
  if (clean && !aborted_ && g_run_observer != nullptr) {
    // The baton is still ours here: the observer sees serialised state.
    g_run_observer->on_proc_finished(rank, proc.deferred(), proc.now());
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    states_[static_cast<std::size_t>(rank)] = State::kFinished;
    if (clean && !aborted_) {
      pass_baton_locked();
    }
  }
  release_unwind(rank);
  t_current_proc = nullptr;
}

void Engine::acquire_unwind_locked(std::unique_lock<std::mutex>& l, int rank) {
  if (unwinder_ == rank) return;
  unwind_cv_.wait(l, [&] { return unwinder_ == -1; });
  unwinder_ = rank;
}

void Engine::release_unwind(int rank) {
  std::lock_guard<std::mutex> l(mu_);
  if (unwinder_ == rank) {
    unwinder_ = -1;
    unwind_cv_.notify_all();
  }
}

void Engine::yield_from(int rank) {
  // A rank unwinding an exception (e.g. an injected CrashError, or Aborted
  // after another rank crashed) still runs destructors that advance the
  // clock — File close, RAII spans.  Those land here from noexcept contexts,
  // so once the run is aborted we must return instead of throwing: the
  // virtual time of a dying run is meaningless, but terminate() is not.
  const bool unwinding = std::uncaught_exceptions() > 0;
  std::unique_lock<std::mutex> l(mu_);
  if (aborted_) {
    // The baton stops circulating at abort, but the destructors that land
    // here still touch shared state; the unwind token keeps post-abort
    // unwinding mutually exclusive (one rank at a time).
    acquire_unwind_locked(l, rank);
    if (unwinding) return;
    throw Aborted{};
  }
  pass_baton_locked();
  if (current_ != rank) {
    cvs_[static_cast<std::size_t>(rank)]->wait(
        l, [&] { return current_ == rank || aborted_; });
  }
  if (aborted_) {
    acquire_unwind_locked(l, rank);
    if (unwinding) return;
    throw Aborted{};
  }
}

int Engine::pick_next_locked() {
  int best = -1;
  double best_clock = 0.0;
  int ties = 0;  // runnable procs whose clock equals best_clock exactly
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (states_[i] != State::kRunnable) continue;
    double c = procs_[i].now();
    if (best < 0 || c < best_clock) {
      best = static_cast<int>(i);
      best_clock = c;
      ties = 1;
    } else if (c == best_clock) {
      ++ties;
    }
  }
  if (!perturb_ || ties <= 1) return best;
  // Schedule perturbation: break the tie by a seeded draw instead of lowest
  // rank.  Any tie order is a legal serialisation of the same virtual-time
  // schedule, so correct programs are insensitive to the choice.
  std::uint64_t pick = perturb_rng_.next_u64() % static_cast<std::uint64_t>(ties);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (states_[i] != State::kRunnable) continue;
    if (procs_[i].now() != best_clock) continue;
    if (pick == 0) return static_cast<int>(i);
    --pick;
  }
  return best;  // unreachable
}

void Engine::pass_baton_locked() {
  int next = pick_next_locked();
  if (next >= 0) {
    current_ = next;
    cvs_[static_cast<std::size_t>(next)]->notify_one();
    return;
  }
  // Nobody runnable: either everyone finished (fine) or deadlock.
  bool all_finished =
      std::all_of(states_.begin(), states_.end(),
                  [](State s) { return s == State::kFinished; });
  if (!all_finished) {
    int blocked = 0;
    for (State s : states_) blocked += (s == State::kBlocked) ? 1 : 0;
    std::string message = "simulation deadlock: " + std::to_string(blocked) +
                          " proc(s) blocked with no runnable proc";
    if (g_run_observer != nullptr) {
      // The verify layer (when attached) knows what each blocked rank was
      // doing — the collective it entered, the peer its receive awaits —
      // and renders the wait-for cycle.  Serialised: we hold the engine
      // lock and no proc is runnable.
      const std::string diagnosis = g_run_observer->diagnose_deadlock();
      if (!diagnosis.empty()) message += "\n" + diagnosis;
    }
    abort_locked(std::make_exception_ptr(DeadlockError(message)));
  }
  current_ = -1;
}

void Engine::abort_locked(std::exception_ptr e) {
  if (!first_error_) first_error_ = e;
  aborted_ = true;
  for (auto& cv : cvs_) cv->notify_all();
}

void Engine::signal(int rank) {
  PARAMRIO_REQUIRE(rank >= 0 && rank < nprocs(), "signal: bad rank");
  std::lock_guard<std::mutex> l(mu_);
  if (states_[static_cast<std::size_t>(rank)] == State::kBlocked) {
    states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  }
}

}  // namespace paramrio::sim
