#include "sim/engine.hpp"

#include <algorithm>
#include <exception>

namespace paramrio::sim {

namespace {
thread_local Proc* t_current_proc = nullptr;

void account(ProcStats& s, TimeCategory cat, double dt) {
  switch (cat) {
    case TimeCategory::kCpu:
      s.cpu_time += dt;
      break;
    case TimeCategory::kComm:
      s.comm_time += dt;
      break;
    case TimeCategory::kIo:
      s.io_time += dt;
      break;
  }
}
}  // namespace

Proc& current_proc() {
  PARAMRIO_REQUIRE(t_current_proc != nullptr,
                   "not inside a simulated processor");
  return *t_current_proc;
}

bool in_simulation() { return t_current_proc != nullptr; }

int Proc::nprocs() const { return engine_->nprocs(); }

void Proc::advance(double dt, TimeCategory cat) {
  PARAMRIO_REQUIRE(dt >= 0.0, "negative time advance");
  if (deferred_) {
    shadow_clock_ += dt;
    return;
  }
  clock_ += dt;
  account(stats_, cat, dt);
  engine_->yield_from(rank_);
}

void Proc::clock_at_least(double t, TimeCategory cat) {
  if (deferred_) {
    if (t > shadow_clock_) shadow_clock_ = t;
    return;
  }
  if (t <= clock_) return;
  account(stats_, cat, t - clock_);
  clock_ = t;
  engine_->yield_from(rank_);
}

void Proc::use_resource(Timeline& tl, double service, TimeCategory cat) {
  PARAMRIO_REQUIRE(service >= 0.0, "negative service time");
  if (deferred_) {
    shadow_clock_ = tl.acquire(shadow_clock_, service);
    return;
  }
  double done = tl.acquire(clock_, service);
  account(stats_, cat, done - clock_);
  clock_ = done;
  engine_->yield_from(rank_);
}

void Proc::begin_deferred() {
  PARAMRIO_REQUIRE(!deferred_, "begin_deferred: already deferred");
  deferred_ = true;
  shadow_clock_ = clock_;
}

double Proc::end_deferred() {
  PARAMRIO_REQUIRE(deferred_, "end_deferred: not deferred");
  deferred_ = false;
  return shadow_clock_;
}

void Proc::block() {
  PARAMRIO_REQUIRE(!deferred_, "block: cannot block while deferred");
  {
    std::lock_guard<std::mutex> l(engine_->mu_);
    engine_->states_[static_cast<std::size_t>(rank_)] =
        Engine::State::kBlocked;
  }
  engine_->yield_from(rank_);
}

Engine::Result Engine::run(const Options& options,
                           const std::function<void(Proc&)>& body) {
  PARAMRIO_REQUIRE(options.nprocs >= 1, "need at least one proc");
  Engine engine;
  Rng root(options.seed);
  engine.procs_.reserve(static_cast<std::size_t>(options.nprocs));
  for (int r = 0; r < options.nprocs; ++r) {
    engine.procs_.push_back(Proc(&engine, r, root.next_u64()));
  }
  engine.states_.assign(static_cast<std::size_t>(options.nprocs),
                        State::kRunnable);
  engine.cvs_.reserve(static_cast<std::size_t>(options.nprocs));
  for (int r = 0; r < options.nprocs; ++r) {
    engine.cvs_.push_back(std::make_unique<std::condition_variable>());
  }
  engine.current_ = 0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.nprocs));
  for (int r = 0; r < options.nprocs; ++r) {
    threads.emplace_back([&engine, r, &body] { engine.thread_main(r, body); });
  }
  for (auto& t : threads) t.join();

  if (engine.first_error_) std::rethrow_exception(engine.first_error_);

  Result result;
  result.finish_times.reserve(engine.procs_.size());
  result.stats.reserve(engine.procs_.size());
  for (const Proc& p : engine.procs_) {
    result.finish_times.push_back(p.now());
    result.stats.push_back(p.stats());
    result.makespan = std::max(result.makespan, p.now());
  }
  return result;
}

void Engine::thread_main(int rank, const std::function<void(Proc&)>& body) {
  Proc& proc = procs_[static_cast<std::size_t>(rank)];
  t_current_proc = &proc;
  // Wait for the baton before touching any shared state.
  {
    std::unique_lock<std::mutex> l(mu_);
    cvs_[static_cast<std::size_t>(rank)]->wait(
        l, [&] { return current_ == rank || aborted_; });
  }
  bool clean = false;
  try {
    if (!aborted_) {
      body(proc);
      clean = true;
    }
  } catch (const Aborted&) {
    // Another rank failed; just unwind quietly.
  } catch (...) {
    std::lock_guard<std::mutex> l(mu_);
    states_[static_cast<std::size_t>(rank)] = State::kFinished;
    abort_locked(std::current_exception());
    t_current_proc = nullptr;
    return;
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    states_[static_cast<std::size_t>(rank)] = State::kFinished;
    if (clean && !aborted_) {
      pass_baton_locked();
    }
  }
  t_current_proc = nullptr;
}

void Engine::yield_from(int rank) {
  // A rank unwinding an exception (e.g. an injected CrashError, or Aborted
  // after another rank crashed) still runs destructors that advance the
  // clock — File close, RAII spans.  Those land here from noexcept contexts,
  // so once the run is aborted we must return instead of throwing: the
  // virtual time of a dying run is meaningless, but terminate() is not.
  const bool unwinding = std::uncaught_exceptions() > 0;
  std::unique_lock<std::mutex> l(mu_);
  if (aborted_) {
    if (unwinding) return;
    throw Aborted{};
  }
  pass_baton_locked();
  if (current_ != rank) {
    cvs_[static_cast<std::size_t>(rank)]->wait(
        l, [&] { return current_ == rank || aborted_; });
  }
  if (aborted_) {
    if (unwinding) return;
    throw Aborted{};
  }
}

int Engine::pick_next_locked() const {
  int best = -1;
  double best_clock = 0.0;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (states_[i] != State::kRunnable) continue;
    double c = procs_[i].now();
    if (best < 0 || c < best_clock) {
      best = static_cast<int>(i);
      best_clock = c;
    }
  }
  return best;
}

void Engine::pass_baton_locked() {
  int next = pick_next_locked();
  if (next >= 0) {
    current_ = next;
    cvs_[static_cast<std::size_t>(next)]->notify_one();
    return;
  }
  // Nobody runnable: either everyone finished (fine) or deadlock.
  bool all_finished =
      std::all_of(states_.begin(), states_.end(),
                  [](State s) { return s == State::kFinished; });
  if (!all_finished) {
    int blocked = 0;
    for (State s : states_) blocked += (s == State::kBlocked) ? 1 : 0;
    abort_locked(std::make_exception_ptr(DeadlockError(
        "simulation deadlock: " + std::to_string(blocked) +
        " proc(s) blocked with no runnable proc")));
  }
  current_ = -1;
}

void Engine::abort_locked(std::exception_ptr e) {
  if (!first_error_) first_error_ = e;
  aborted_ = true;
  for (auto& cv : cvs_) cv->notify_all();
}

void Engine::signal(int rank) {
  PARAMRIO_REQUIRE(rank >= 0 && rank < nprocs(), "signal: bad rank");
  std::lock_guard<std::mutex> l(mu_);
  if (states_[static_cast<std::size_t>(rank)] == State::kBlocked) {
    states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  }
}

}  // namespace paramrio::sim
