// I/O correctness analyzer.
//
// The paper's method (Section 3) is instrument-then-analyze: collect
// per-request traces and mine them for the pathologies behind Figures 6-9.
// trace::IoTracer answers the *performance* questions (request sizes,
// sequentiality); this module answers the *correctness* ones: did the dump
// the backend just wrote actually land intact?  It consumes a trace::IoEvent
// stream (data requests plus the descriptor-lifecycle events a widened
// pfs::IoObserver now reports) and, optionally, the final stor::ObjectStore
// contents, and emits typed diagnostics:
//
//   * write-write conflicts — byte ranges written by two different ranks in
//     the same dump phase (MPI-IO consistency semantics make this an error
//     regardless of the data written),
//   * holes — gaps inside a file's final extent that no traced write
//     covered: an incomplete / truncated checkpoint,
//   * read-before-write — restart reads touching bytes never written since
//     the file was created: the restart consumed garbage (zero-fill),
//   * alignment lints — requests smaller than the stripe unit or straddling
//     stripe boundaries (the Figure-7 small-strided-chunk pathology),
//   * descriptor lifecycle — fd leaks, double closes, writes through
//     read-only descriptors, requests on unknown descriptors.
//
// Each diagnostic carries severity, kind, rank(s), file, byte range and a
// one-line explanation; CheckReport::format() renders the audit like the
// paper's Section-3 tables.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "pfs/filesystem.hpp"
#include "stor/object_store.hpp"
#include "trace/io_tracer.hpp"

namespace paramrio::check {

enum class Severity : std::uint8_t { kError, kWarning, kLint };

enum class Kind : std::uint8_t {
  kWriteConflict,     ///< same-phase overlapping writes from two ranks
  kHole,              ///< unwritten gap inside a file's final extent
  kPaddingGap,        ///< small aligned interior gap (format padding)
  kReadBeforeWrite,   ///< read of bytes never written since creation
  kSmallRequest,      ///< data request smaller than the stripe unit
  kUnalignedRequest,  ///< unaligned request straddling a stripe boundary
  kFdLeak,            ///< descriptor never closed by end of trace
  kDoubleClose,       ///< close of an already-closed descriptor
  kWriteReadOnly,     ///< write through a read-only descriptor
  kUnknownFd,         ///< data request on a closed descriptor
};

const char* to_string(Severity severity);
const char* to_string(Kind kind);

/// The built-in severity of each diagnostic kind (alignment kinds are lints,
/// fd leaks warnings, everything else errors).
Severity severity_of(Kind kind);

struct Diagnostic {
  Severity severity = Severity::kError;
  Kind kind = Kind::kWriteConflict;
  std::string path;
  std::string phase;        ///< phase name ("" when unphased)
  std::vector<int> ranks;   ///< rank(s) involved, ascending
  std::uint64_t offset = 0; ///< start of the offending byte range
  std::uint64_t length = 0; ///< length of the offending byte range (0: n/a)
  std::string message;      ///< one-line explanation

  std::string format() const;
};

struct CheckOptions {
  /// Report label, e.g. the backend under audit ("mpiio on gpfs").
  std::string label = "trace";
  /// Stripe unit of the underlying file system; > 0 enables the alignment
  /// lints (use pfs::StripedFsParams::stripe_size).
  std::uint64_t stripe_size = 0;
  /// When > 0, interior gaps shorter than this whose end sits on an 8-byte
  /// boundary are classified as kPaddingGap lints instead of kHole errors:
  /// self-describing formats (netCDF data_alignment, HDF alignment hints)
  /// leave deliberate unwritten padding between header and data regions.
  /// Tail gaps (file longer than the furthest write) are always holes.
  /// Default 0: strict mode, every gap is a hole.
  std::uint64_t padding_alignment = 0;
  /// At most this many diagnostics of each kind are materialised (counts in
  /// CheckReport::counts stay exact); keeps pathological traces readable.
  std::uint64_t max_diagnostics_per_kind = 16;
};

struct CheckReport {
  std::string label;
  std::vector<Diagnostic> diagnostics;      ///< capped per kind, in order
  std::map<Kind, std::uint64_t> counts;     ///< exact count per kind
  std::uint64_t events_analyzed = 0;
  std::uint64_t data_requests = 0;

  std::uint64_t count(Kind kind) const;
  std::uint64_t errors() const;
  std::uint64_t warnings() const;
  std::uint64_t lints() const;
  /// No errors and no warnings (lints are advisory).
  bool clean() const { return errors() == 0 && warnings() == 0; }

  /// Section-3-style audit table.
  std::string format() const;
};

/// A named phase boundary: events at index >= first_event belong to `name`
/// until the next mark.  Write-conflict detection is scoped per phase (two
/// dumps to the same path must not accuse each other).
struct PhaseMark {
  std::size_t first_event = 0;
  std::string name;
};

/// Analyze a raw event stream.  `store`, when given, supplies final file
/// extents so hole detection covers short (truncated) files; without it the
/// extent is the furthest traced write.  Only files the trace saw created
/// (open with OpenMode::kCreate) are checked for holes and read-before-write
/// — pre-existing files have unknown prior contents.
CheckReport analyze_trace(std::span<const trace::IoEvent> events,
                          const CheckOptions& options,
                          const stor::ObjectStore* store = nullptr,
                          std::span<const PhaseMark> phases = {});

/// Observer that accumulates a trace (data + lifecycle events) with phase
/// marks and runs the analyzer over it.  Attach with
/// fs.attach_observer(&checker); call begin_phase() around dump / restart
/// sections; then analyze(&fs.store()).
class IoChecker final : public pfs::IoObserver {
 public:
  explicit IoChecker(CheckOptions options = {});

  /// Start a named phase; subsequent events belong to it.
  void begin_phase(const std::string& name);

  void on_io(double time, int rank, bool is_write, const std::string& path,
             std::uint64_t offset, std::uint64_t bytes, int fd) override;
  void on_open(double time, int rank, const std::string& path,
               pfs::OpenMode mode, int fd) override;
  void on_close(double time, int rank, const std::string& path,
                int fd) override;

  const std::vector<trace::IoEvent>& events() const { return events_; }
  const std::vector<PhaseMark>& phases() const { return phases_; }
  CheckOptions& options() { return options_; }

  CheckReport analyze(const stor::ObjectStore* store = nullptr) const;

  void clear();

 private:
  CheckOptions options_;
  std::vector<trace::IoEvent> events_;
  std::vector<PhaseMark> phases_;
};

}  // namespace paramrio::check
