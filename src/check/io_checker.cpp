#include "check/io_checker.hpp"

#include <algorithm>
#include <sstream>

namespace paramrio::check {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kLint: return "lint";
  }
  return "?";
}

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kWriteConflict: return "write-conflict";
    case Kind::kHole: return "hole";
    case Kind::kPaddingGap: return "padding-gap";
    case Kind::kReadBeforeWrite: return "read-before-write";
    case Kind::kSmallRequest: return "small-request";
    case Kind::kUnalignedRequest: return "unaligned-request";
    case Kind::kFdLeak: return "fd-leak";
    case Kind::kDoubleClose: return "double-close";
    case Kind::kWriteReadOnly: return "write-read-only";
    case Kind::kUnknownFd: return "unknown-fd";
  }
  return "?";
}

Severity severity_of(Kind kind) {
  switch (kind) {
    case Kind::kSmallRequest:
    case Kind::kUnalignedRequest:
    case Kind::kPaddingGap:
      return Severity::kLint;
    case Kind::kFdLeak:
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << "[" << to_string(severity) << "] " << to_string(kind) << " " << path;
  if (length > 0) {
    os << " [" << offset << ", " << offset + length << ")";
  }
  if (!ranks.empty()) {
    os << " rank";
    if (ranks.size() > 1) os << "s";
    os << " ";
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (i > 0) os << ",";
      os << ranks[i];
    }
  }
  if (!phase.empty()) os << " phase '" << phase << "'";
  os << ": " << message;
  return os.str();
}

std::uint64_t CheckReport::count(Kind kind) const {
  auto it = counts.find(kind);
  return it == counts.end() ? 0 : it->second;
}

namespace {
constexpr Kind kAllKinds[] = {
    Kind::kWriteConflict,  Kind::kHole,        Kind::kPaddingGap,
    Kind::kReadBeforeWrite,
    Kind::kSmallRequest,   Kind::kUnalignedRequest,
    Kind::kFdLeak,         Kind::kDoubleClose, Kind::kWriteReadOnly,
    Kind::kUnknownFd,
};

std::uint64_t count_severity(const CheckReport& r, Severity severity) {
  std::uint64_t n = 0;
  for (Kind k : kAllKinds) {
    if (severity_of(k) == severity) n += r.count(k);
  }
  return n;
}
}  // namespace

std::uint64_t CheckReport::errors() const {
  return count_severity(*this, Severity::kError);
}
std::uint64_t CheckReport::warnings() const {
  return count_severity(*this, Severity::kWarning);
}
std::uint64_t CheckReport::lints() const {
  return count_severity(*this, Severity::kLint);
}

std::string CheckReport::format() const {
  std::ostringstream os;
  os << "I/O correctness audit — " << label << "\n";
  os << "  events analyzed: " << events_analyzed << " (" << data_requests
     << " data requests)\n";
  for (Kind k : kAllKinds) {
    std::uint64_t n = count(k);
    os << "  " << to_string(k);
    for (std::size_t pad = std::string(to_string(k)).size(); pad < 18; ++pad) {
      os << ' ';
    }
    os << n;
    if (n > 0) os << "  (" << to_string(severity_of(k)) << ")";
    os << "\n";
  }
  os << "  verdict: " << (clean() ? "CLEAN" : "NOT CLEAN") << " ("
     << errors() << " errors, " << warnings() << " warnings, " << lints()
     << " lints)\n";
  if (!diagnostics.empty()) {
    os << "  diagnostics";
    std::uint64_t total = 0;
    for (const auto& [k, n] : counts) total += n;
    if (total > diagnostics.size()) {
      os << " (first " << diagnostics.size() << " of " << total << ")";
    }
    os << ":\n";
    for (const Diagnostic& d : diagnostics) {
      os << "    " << d.format() << "\n";
    }
  }
  return os.str();
}

namespace {

/// Merged half-open intervals, offset -> end.
using Intervals = std::map<std::uint64_t, std::uint64_t>;

void interval_insert(Intervals& iv, std::uint64_t lo, std::uint64_t hi) {
  auto it = iv.upper_bound(lo);
  if (it != iv.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = iv.erase(prev);
    }
  }
  while (it != iv.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = iv.erase(it);
  }
  iv[lo] = hi;
}

/// First sub-range of [lo, hi) not covered by iv; false if fully covered.
bool first_uncovered(const Intervals& iv, std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t* gap_lo, std::uint64_t* gap_hi) {
  std::uint64_t pos = lo;
  auto it = iv.upper_bound(pos);
  if (it != iv.begin()) {
    auto prev = std::prev(it);
    if (prev->second > pos) pos = prev->second;
  }
  if (pos >= hi) return false;
  *gap_lo = pos;
  *gap_hi = hi;
  if (it != iv.end() && it->first < hi) *gap_hi = it->first;
  return true;
}

/// Last-writer-wins ownership map for conflict detection: offset -> (end,
/// rank).  Entries never overlap.
using Ownership = std::map<std::uint64_t, std::pair<std::uint64_t, int>>;

struct FileState {
  bool created = false;  ///< trace saw an OpenMode::kCreate for this path
  Intervals written;     ///< union of writes since creation
  Ownership owners;      ///< current-phase per-rank write ownership
};

struct FdState {
  std::string path;
  bool writable = false;
  int open_rank = -1;
  bool closed = false;
  /// First seen mid-trace (no open event) — opened before tracing started,
  /// so writability is unknown and leak reporting would be guesswork.
  bool implicit = false;
};

class Analyzer {
 public:
  Analyzer(const CheckOptions& options, const stor::ObjectStore* store)
      : options_(options), store_(store) {
    report_.label = options.label;
  }

  CheckReport run(std::span<const trace::IoEvent> events,
                  std::span<const PhaseMark> phases) {
    std::size_t next_phase = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      while (next_phase < phases.size() &&
             phases[next_phase].first_event <= i) {
        start_phase(phases[next_phase].name);
        ++next_phase;
      }
      step(events[i]);
    }
    finish();
    report_.events_analyzed = events.size();
    return std::move(report_);
  }

 private:
  void start_phase(const std::string& name) {
    phase_ = name;
    // Conflicts are scoped per phase: a restart overwriting the previous
    // dump's bytes is a new generation, not a race.
    for (auto& [path, fs] : files_) fs.owners.clear();
  }

  void emit(Kind kind, const std::string& path, std::vector<int> ranks,
            std::uint64_t offset, std::uint64_t length,
            const std::string& message) {
    std::uint64_t& n = report_.counts[kind];
    n += 1;
    if (n > options_.max_diagnostics_per_kind) return;
    Diagnostic d;
    d.severity = severity_of(kind);
    d.kind = kind;
    d.path = path;
    d.phase = phase_;
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    d.ranks = std::move(ranks);
    d.offset = offset;
    d.length = length;
    d.message = message;
    report_.diagnostics.push_back(std::move(d));
  }

  void step(const trace::IoEvent& e) {
    switch (e.op) {
      case trace::IoOp::kOpen: return step_open(e);
      case trace::IoOp::kClose: return step_close(e);
      case trace::IoOp::kRead:
      case trace::IoOp::kWrite: return step_data(e);
    }
  }

  void step_open(const trace::IoEvent& e) {
    if (e.fd >= 0) {
      FdState st;
      st.path = e.path;
      st.writable = e.mode != pfs::OpenMode::kRead;
      st.open_rank = e.rank;
      fds_[e.fd] = st;
    }
    if (e.mode == pfs::OpenMode::kCreate) {
      FileState& f = files_[e.path];
      f.created = true;
      // Truncation starts a new file generation.
      f.written.clear();
      f.owners.clear();
    }
  }

  void step_close(const trace::IoEvent& e) {
    if (e.fd < 0) return;
    auto it = fds_.find(e.fd);
    if (it == fds_.end()) {
      // Descriptor opened before tracing started: record it closed so a
      // later use is still flagged, but the close itself is legitimate.
      FdState& st = fds_[e.fd];
      st.path = e.path;
      st.open_rank = e.rank;
      st.implicit = true;
      st.closed = true;
      return;
    }
    if (it->second.closed) {
      emit(Kind::kDoubleClose, e.path, {e.rank}, 0, 0,
           "close of fd " + std::to_string(e.fd) +
               " that was already closed");
      return;
    }
    it->second.closed = true;
  }

  void step_data(const trace::IoEvent& e) {
    report_.data_requests += 1;
    check_fd(e);
    check_alignment(e);
    if (e.bytes == 0) return;
    FileState& f = files_[e.path];
    if (e.is_write) {
      check_conflict(f, e);
      interval_insert(f.written, e.offset, e.offset + e.bytes);
    } else if (f.created) {
      std::uint64_t glo = 0, ghi = 0;
      if (first_uncovered(f.written, e.offset, e.offset + e.bytes, &glo,
                          &ghi)) {
        emit(Kind::kReadBeforeWrite, e.path, {e.rank}, glo, ghi - glo,
             "read touches bytes never written since the file was created "
             "(restart would consume zero-fill)");
      }
    }
  }

  void check_fd(const trace::IoEvent& e) {
    if (e.fd < 0) return;  // hand-built trace without descriptors
    auto it = fds_.find(e.fd);
    if (it == fds_.end()) {
      // First use of a descriptor opened before tracing started: adopt it
      // with unknown (assumed-writable) mode rather than crying wolf.
      FdState& st = fds_[e.fd];
      st.path = e.path;
      st.writable = true;
      st.open_rank = e.rank;
      st.implicit = true;
      return;
    }
    if (it->second.closed) {
      emit(Kind::kUnknownFd, e.path, {e.rank}, e.offset, e.bytes,
           "data request on fd " + std::to_string(e.fd) + " after close");
      return;
    }
    if (e.is_write && !it->second.writable) {
      emit(Kind::kWriteReadOnly, e.path, {e.rank}, e.offset, e.bytes,
           "write through read-only fd " + std::to_string(e.fd));
    }
  }

  void check_alignment(const trace::IoEvent& e) {
    std::uint64_t stripe = options_.stripe_size;
    if (stripe == 0 || e.bytes == 0) return;
    if (e.bytes < stripe) {
      emit(Kind::kSmallRequest, e.path, {e.rank}, e.offset, e.bytes,
           "request smaller than the " + std::to_string(stripe) +
               "-byte stripe unit pays full per-request server cost");
    }
    std::uint64_t first_stripe = e.offset / stripe;
    std::uint64_t last_stripe = (e.offset + e.bytes - 1) / stripe;
    if (e.offset % stripe != 0 && last_stripe > first_stripe) {
      emit(Kind::kUnalignedRequest, e.path, {e.rank}, e.offset, e.bytes,
           "unaligned request straddles a stripe boundary (touches " +
               std::to_string(last_stripe - first_stripe + 1) +
               " stripes, read-modify-write on the edges)");
    }
  }

  void check_conflict(FileState& f, const trace::IoEvent& e) {
    std::uint64_t lo = e.offset, hi = e.offset + e.bytes;
    Ownership& own = f.owners;
    // Report overlaps with ranges another rank wrote this phase, then make
    // this rank the owner of [lo, hi) (last writer wins), preserving the
    // non-overlapped remainders of older entries.
    std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t, int>>>
        remainders;
    auto it = own.upper_bound(lo);
    if (it != own.begin()) --it;
    while (it != own.end() && it->first < hi) {
      std::uint64_t olo = it->first, ohi = it->second.first;
      int orank = it->second.second;
      if (ohi <= lo) {
        ++it;
        continue;
      }
      if (orank != e.rank) {
        std::uint64_t clo = std::max(lo, olo), chi = std::min(hi, ohi);
        emit(Kind::kWriteConflict, e.path, {orank, e.rank}, clo, chi - clo,
             "ranks " + std::to_string(orank) + " and " +
                 std::to_string(e.rank) +
                 " both wrote this range in the same phase (unordered "
                 "overlapping writes: final bytes depend on timing)");
      }
      if (olo < lo) remainders.push_back({olo, {lo, orank}});
      if (ohi > hi) remainders.push_back({hi, {ohi, orank}});
      it = own.erase(it);
    }
    for (const auto& r : remainders) own[r.first] = r.second;
    // Merge with an adjacent/overlapping same-rank neighbour on the left so
    // sequential writers keep a single entry.
    auto left = own.lower_bound(lo);
    if (left != own.begin()) {
      auto prev = std::prev(left);
      if (prev->second.second == e.rank && prev->second.first >= lo) {
        lo = prev->first;
        hi = std::max(hi, prev->second.first);
        own.erase(prev);
      }
    }
    own[lo] = {hi, e.rank};
  }

  void finish() {
    // Descriptor leaks (implicit fds predate the trace; their lifetime is
    // not ours to judge).
    for (const auto& [fd, st] : fds_) {
      if (st.closed || st.implicit) continue;
      emit(Kind::kFdLeak, st.path, {st.open_rank}, 0, 0,
           "fd " + std::to_string(fd) + " still open at end of trace");
    }
    // Holes: compare each created file's written union against its final
    // extent.  The store (when given) supplies the authoritative extent so a
    // file longer than its furthest traced write — e.g. truncated metadata —
    // is caught too.
    for (const auto& [path, f] : files_) {
      if (!f.created) continue;  // pre-existing contents unknown
      if (store_ != nullptr && !store_->exists(path)) continue;  // removed
      std::uint64_t extent = 0;
      if (!f.written.empty()) extent = std::prev(f.written.end())->second;
      if (store_ != nullptr) extent = store_->size(path);
      std::uint64_t pos = 0;
      for (const auto& [lo, hi] : f.written) {
        if (lo > pos && pos < extent) {
          std::uint64_t ghi = std::min(lo, extent);
          // Self-describing formats leave deliberate unwritten padding
          // between header and aligned data regions (netCDF
          // data_alignment); a short gap ending on an 8-byte boundary is a
          // padding lint, not a torn checkpoint.
          bool padding = options_.padding_alignment > 0 &&
                         ghi - pos < options_.padding_alignment &&
                         ghi % 8 == 0;
          if (padding) {
            emit(Kind::kPaddingGap, path, {}, pos, ghi - pos,
                 "unwritten aligned gap (format padding between header and "
                 "data regions)");
          } else {
            emit(Kind::kHole, path, {}, pos, ghi - pos,
                 "no write ever covered this range inside the file's extent "
                 "(incomplete checkpoint)");
          }
        }
        pos = std::max(pos, hi);
      }
      if (pos < extent) {
        emit(Kind::kHole, path, {}, pos, extent - pos,
             "file extends past the furthest traced write "
             "(truncated/short dump)");
      }
    }
  }

  CheckOptions options_;
  const stor::ObjectStore* store_;
  CheckReport report_;
  std::string phase_;
  std::map<std::string, FileState> files_;
  std::map<int, FdState> fds_;
};

}  // namespace

CheckReport analyze_trace(std::span<const trace::IoEvent> events,
                          const CheckOptions& options,
                          const stor::ObjectStore* store,
                          std::span<const PhaseMark> phases) {
  return Analyzer(options, store).run(events, phases);
}

IoChecker::IoChecker(CheckOptions options) : options_(std::move(options)) {}

void IoChecker::begin_phase(const std::string& name) {
  phases_.push_back(PhaseMark{events_.size(), name});
}

void IoChecker::on_io(double time, int rank, bool is_write,
                      const std::string& path, std::uint64_t offset,
                      std::uint64_t bytes, int fd) {
  trace::IoEvent e;
  e.time = time;
  e.rank = rank;
  e.is_write = is_write;
  e.op = is_write ? trace::IoOp::kWrite : trace::IoOp::kRead;
  e.path = path;
  e.offset = offset;
  e.bytes = bytes;
  e.fd = fd;
  events_.push_back(std::move(e));
}

void IoChecker::on_open(double time, int rank, const std::string& path,
                        pfs::OpenMode mode, int fd) {
  trace::IoEvent e;
  e.time = time;
  e.rank = rank;
  e.op = trace::IoOp::kOpen;
  e.path = path;
  e.fd = fd;
  e.mode = mode;
  events_.push_back(std::move(e));
}

void IoChecker::on_close(double time, int rank, const std::string& path,
                         int fd) {
  trace::IoEvent e;
  e.time = time;
  e.rank = rank;
  e.op = trace::IoOp::kClose;
  e.path = path;
  e.fd = fd;
  events_.push_back(std::move(e));
}

CheckReport IoChecker::analyze(const stor::ObjectStore* store) const {
  return analyze_trace(events_, options_, store, phases_);
}

void IoChecker::clear() {
  events_.clear();
  phases_.clear();
}

}  // namespace paramrio::check
