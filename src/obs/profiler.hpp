// Cross-layer virtual-time span profiler.
//
// The paper's method (Section 3) is instrumentation: trace every request and
// decompose checkpoint time into gather/scatter vs. file access vs. metadata
// overhead.  This module provides the span layer that decomposition rests
// on: every simulated processor carries a stack of RAII spans —
//
//     OBS_SPAN("two_phase.exchange", sim::TimeCategory::kComm);
//
// — whose start/end timestamps come from the proc's *virtual* clock, so the
// recorded profile is bit-reproducible across runs.  A span additionally
// snapshots the proc's ProcStats at entry and exit, which yields an exact
// cpu/comm/io decomposition of the time spent inside it (the declared
// category is the span's *intent*; the deltas are the measured truth).
// Spans nest across layers: enzo backend phase -> mpi::io collective ->
// two-phase window / sieve / write-behind flush -> pfs request -> net
// transfer.
//
// Recording is opt-in: a Collector is attach()ed around an Engine::run, and
// when none is attached (or the caller is not a simulated proc) a Span is a
// no-op costing one pointer load.  The engine serialises proc execution, so
// the Collector needs no locking.
//
// Exporters live next door: trace_export.hpp renders Chrome trace-event /
// Perfetto JSON, report.hpp the paper-style phase-breakdown tables, and the
// embedded MetricsRegistry (registry.hpp) outlives per-layer counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "sim/engine.hpp"

namespace paramrio::obs {

/// Spans reuse the engine's time taxonomy so category rollups are directly
/// comparable with sim::ProcStats.
using sim::TimeCategory;

const char* to_string(TimeCategory cat);

/// One finished span.  `depth` is the nesting level on its rank's stack
/// (0 = top level).  The cpu/comm/io deltas are inclusive — they cover the
/// span's children too; subtract child deltas for exclusive attribution.
struct SpanRecord {
  int rank = -1;
  int depth = 0;
  std::string name;
  TimeCategory category = TimeCategory::kCpu;
  /// Recorded while the proc was in deferred (in-flight) mode: timestamps
  /// come from the shadow clock, so the span can overlap the rank's
  /// synchronous spans.  Exporters draw these on a separate per-rank track.
  bool async = false;
  double t_start = 0.0;
  double t_end = 0.0;
  double cpu_dt = 0.0;
  double comm_dt = 0.0;
  double io_dt = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  double duration() const { return t_end - t_start; }
};

/// A timestamped counter observation (buffer fill levels, window sizes);
/// exported as a Perfetto counter track.
struct CounterSample {
  int rank = -1;
  double time = 0.0;
  std::string name;
  double value = 0.0;
};

/// What a rank was waiting *on* during a blame-relevant interval.  These are
/// the wait-for edges the critical-path engine subtracts from the span
/// layer's coarse cpu/comm/io categories.
enum class WaitKind : int {
  kRecvWait = 0,     ///< receiver idle until a message's arrival time
  kServerQueue = 1,  ///< request queued behind other work at an I/O server
  kTokenWait = 2,    ///< GPFS-style write-token acquisition
  kRetryBackoff = 3, ///< fault-retry exponential backoff on the virtual clock
  kSettleWait = 4,   ///< deferred (in-flight) I/O settling at a sync point
  kDrainWait = 5,    ///< staging-tier drain completion blocking the caller
};

const char* to_string(WaitKind kind);

/// One wait-for interval on a rank's *real* clock.  [t_start, t_end) lies
/// inside time the span layer accounted as comm (kRecvWait) or io (all
/// others); CriticalPath re-attributes the overlap.
struct WaitRecord {
  int rank = -1;
  WaitKind kind = WaitKind::kRecvWait;
  double t_start = 0.0;
  double t_end = 0.0;

  double duration() const { return t_end - t_start; }
};

/// Collects spans and counter samples for one (or more) Engine::runs, and
/// owns the run-level MetricsRegistry.  Attach with obs::attach() before
/// the run; the collector must outlive everything that records into it.
class Collector {
 public:
  Collector() = default;
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // ---- recording (called by Span / instrumented layers) -----------------

  void begin_span(sim::Proc& proc, const char* name, TimeCategory cat);
  /// Close the innermost open span of `proc`'s rank.  Throws LogicError if
  /// its stack is empty (unbalanced instrumentation).
  void end_span(sim::Proc& proc);
  /// Attach a counter to the innermost open span of `proc`'s rank; no-op
  /// when no span is open (so helpers can be called from uninstrumented
  /// paths).
  void span_counter(sim::Proc& proc, const char* name, std::uint64_t value);
  void sample(sim::Proc& proc, const char* name, double value);

  // ---- detail telemetry (gauges / histograms / wait edges) --------------

  /// Detail mode gates everything below: gauges, latency histograms and
  /// wait records are captured only when enabled.  Off by default so a
  /// plain Collector's registry and trace stay byte-identical to the
  /// pre-detail era (nonzero-only discipline, test-enforced).
  void set_detail(bool on) { detail_ = on; }
  bool detail() const { return detail_; }

  /// Append a gauge point on the entity timeline (no-op unless detail).
  void gauge(const std::string& track, double time, double value,
             bool integer);

  /// Record a latency sample into the named histogram (no-op unless detail).
  void latency(const std::string& name, double seconds);

  /// Record a wait-for interval for `proc` (no-op unless detail; intervals
  /// recorded while the proc is deferred are dropped — the shadow clock
  /// charges no ProcStats, so there is nothing to re-attribute).
  void record_wait(sim::Proc& proc, WaitKind kind, double t_start,
                   double t_end);

  // ---- inspection -------------------------------------------------------

  /// Finished spans in completion order (deterministic under the engine).
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<CounterSample>& samples() const { return samples_; }

  /// True when every begun span has ended on every rank.
  bool balanced() const;
  /// Names of still-open spans of `rank`, outermost first (unbalanced-span
  /// diagnosis).
  std::vector<std::string> open_spans(int rank) const;
  /// Highest rank seen recording, plus one (0 when nothing recorded).
  int ranks() const { return static_cast<int>(stacks_.size()); }

  const std::vector<WaitRecord>& waits() const { return waits_; }
  const Timeline& timeline() const { return timeline_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Fold detail telemetry into the registry: each histogram becomes a
  /// "hist:<name>" scope (nonzero buckets + exact percentiles), each
  /// timeline track a "timeline:<track>" summary scope (samples + peak).
  /// Empty histograms/tracks export nothing, so a clean run adds no scopes.
  void export_detail();

  /// Drop spans and samples (the registry survives; use registry().clear()).
  void clear_events();

 private:
  std::vector<std::vector<SpanRecord>> stacks_;  ///< open spans, per rank
  std::vector<SpanRecord> spans_;
  std::vector<CounterSample> samples_;
  std::vector<WaitRecord> waits_;
  Timeline timeline_;
  std::map<std::string, Histogram> histograms_;
  MetricsRegistry registry_;
  bool detail_ = false;
};

/// Attach `c` as the process-wide collector (nullptr detaches).  Call
/// outside Engine::run — proc threads read the pointer without locking.
void attach(Collector* c);
void detach();
Collector* collector();

/// RAII span: records into the attached collector while the calling thread
/// is a simulated proc; otherwise free of side effects.
class Span {
 public:
  Span(const char* name, TimeCategory cat) {
    Collector* c = collector();
    if (c != nullptr && sim::in_simulation()) {
      proc_ = &sim::current_proc();
      collector_ = c;
      collector_->begin_span(*proc_, name, cat);
    }
  }
  ~Span() {
    if (collector_ != nullptr) collector_->end_span(*proc_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Tag the span with a named value (bytes moved, windows, transfers).
  void counter(const char* name, std::uint64_t value) {
    if (collector_ != nullptr) collector_->span_counter(*proc_, name, value);
  }
  bool active() const { return collector_ != nullptr; }

 private:
  Collector* collector_ = nullptr;
  sim::Proc* proc_ = nullptr;
};

/// Tag the innermost open span of the calling proc (no-op when inactive).
void span_counter(const char* name, std::uint64_t value);

/// Record a counter sample (no-op when inactive).
void counter_sample(const char* name, double value);

/// True when a collector is attached with detail mode on — the cheap guard
/// instrumented hot paths test before computing gauge values.
bool detail();

/// Append a double-valued gauge point at the calling proc's current virtual
/// time (no-op unless detail and on a simulated proc).
void gauge(const std::string& track, double value);

/// Append an integer-valued gauge point (queue depths, request counts).
void gauge_int(const std::string& track, std::uint64_t value);

/// Record a latency sample in virtual seconds (no-op unless detail).
void latency_sample(const std::string& name, double seconds);

/// Record a wait-for interval [t_start, t_end) on the calling proc's real
/// clock (no-op unless detail; dropped when t_end <= t_start or the proc is
/// in deferred mode).
void record_wait(WaitKind kind, double t_start, double t_end);

#define PARAMRIO_OBS_CONCAT2(a, b) a##b
#define PARAMRIO_OBS_CONCAT(a, b) PARAMRIO_OBS_CONCAT2(a, b)

/// Anonymous scope span: OBS_SPAN("phase.name", sim::TimeCategory::kIo);
#define OBS_SPAN(name, cat) \
  ::paramrio::obs::Span PARAMRIO_OBS_CONCAT(obs_span_, __LINE__)(name, cat)

}  // namespace paramrio::obs
