#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>

namespace paramrio::obs {

namespace {
// Proc threads are created after attach() and joined before detach(), so a
// plain atomic pointer is enough — the engine's baton serialises all
// recording calls.
std::atomic<Collector*> g_collector{nullptr};
}  // namespace

const char* to_string(TimeCategory cat) {
  switch (cat) {
    case TimeCategory::kCpu:
      return "cpu";
    case TimeCategory::kComm:
      return "comm";
    case TimeCategory::kIo:
      return "io";
  }
  return "?";
}

const char* to_string(WaitKind kind) {
  switch (kind) {
    case WaitKind::kRecvWait:
      return "recv_wait";
    case WaitKind::kServerQueue:
      return "server_queue";
    case WaitKind::kTokenWait:
      return "token_wait";
    case WaitKind::kRetryBackoff:
      return "retry_backoff";
    case WaitKind::kSettleWait:
      return "settle_wait";
    case WaitKind::kDrainWait:
      return "drain_wait";
  }
  return "?";
}

void attach(Collector* c) { g_collector.store(c, std::memory_order_release); }

void detach() { attach(nullptr); }

Collector* collector() { return g_collector.load(std::memory_order_acquire); }

void Collector::begin_span(sim::Proc& proc, const char* name,
                           TimeCategory cat) {
  // Spans are keyed by *global* rank so multi-job runs don't interleave the
  // jobs' rank-0 stacks (identical to rank() in single-job runs).
  auto rank = static_cast<std::size_t>(proc.global_rank());
  if (stacks_.size() <= rank) stacks_.resize(rank + 1);
  SpanRecord rec;
  rec.rank = proc.global_rank();
  rec.depth = static_cast<int>(stacks_[rank].size());
  rec.name = name;
  rec.category = cat;
  rec.async = proc.deferred();
  rec.t_start = proc.now();
  const sim::ProcStats& s = proc.stats();
  rec.cpu_dt = s.cpu_time;    // entry snapshot; converted to delta at end
  rec.comm_dt = s.comm_time;
  rec.io_dt = s.io_time;
  stacks_[rank].push_back(std::move(rec));
}

void Collector::end_span(sim::Proc& proc) {
  auto rank = static_cast<std::size_t>(proc.global_rank());
  PARAMRIO_REQUIRE(rank < stacks_.size() && !stacks_[rank].empty(),
                   "obs: end_span with no open span on rank " +
                       std::to_string(proc.global_rank()));
  SpanRecord rec = std::move(stacks_[rank].back());
  stacks_[rank].pop_back();
  rec.t_end = proc.now();
  const sim::ProcStats& s = proc.stats();
  rec.cpu_dt = s.cpu_time - rec.cpu_dt;
  rec.comm_dt = s.comm_time - rec.comm_dt;
  rec.io_dt = s.io_time - rec.io_dt;
  spans_.push_back(std::move(rec));
}

void Collector::span_counter(sim::Proc& proc, const char* name,
                             std::uint64_t value) {
  auto rank = static_cast<std::size_t>(proc.global_rank());
  if (rank >= stacks_.size() || stacks_[rank].empty()) return;
  auto& counters = stacks_[rank].back().counters;
  for (auto& [n, v] : counters) {
    if (n == name) {
      v += value;
      return;
    }
  }
  counters.emplace_back(name, value);
}

void Collector::sample(sim::Proc& proc, const char* name, double value) {
  samples_.push_back(
      CounterSample{proc.global_rank(), proc.now(), name, value});
}

void Collector::gauge(const std::string& track, double time, double value,
                      bool integer) {
  if (!detail_) return;
  timeline_.record(track, time, value, integer);
}

void Collector::latency(const std::string& name, double seconds) {
  if (!detail_) return;
  histograms_[name].record(seconds);
}

void Collector::record_wait(sim::Proc& proc, WaitKind kind, double t_start,
                            double t_end) {
  // Deferred (shadow-clock) intervals never charged the real clock, so
  // there is no span time to re-attribute; recording them would make the
  // blame engine subtract from io_dt that never accrued.
  if (!detail_ || proc.deferred() || !(t_end > t_start)) return;
  waits_.push_back(WaitRecord{proc.global_rank(), kind, t_start, t_end});
}

void Collector::export_detail() {
  for (const auto& [name, hist] : histograms_) {
    hist.export_to(registry_, "hist:" + name);
  }
  for (const auto& [name, track] : timeline_.tracks()) {
    if (track.points.empty()) continue;
    const std::string scope = "timeline:" + name;
    registry_.set(scope, "samples",
                  static_cast<std::uint64_t>(track.points.size()));
    double peak = track.points.front().value;
    for (const Timeline::Point& p : track.points) {
      peak = std::max(peak, p.value);
    }
    if (track.integer) {
      registry_.set(scope, "peak", static_cast<std::uint64_t>(peak));
    } else {
      registry_.set_value(scope, "peak", peak);
    }
  }
}

bool Collector::balanced() const {
  for (const auto& st : stacks_) {
    if (!st.empty()) return false;
  }
  return true;
}

std::vector<std::string> Collector::open_spans(int rank) const {
  std::vector<std::string> names;
  auto r = static_cast<std::size_t>(rank);
  if (r >= stacks_.size()) return names;
  names.reserve(stacks_[r].size());
  for (const SpanRecord& rec : stacks_[r]) names.push_back(rec.name);
  return names;
}

void Collector::clear_events() {
  stacks_.clear();
  spans_.clear();
  samples_.clear();
}

void span_counter(const char* name, std::uint64_t value) {
  Collector* c = collector();
  if (c != nullptr && sim::in_simulation()) {
    c->span_counter(sim::current_proc(), name, value);
  }
}

void counter_sample(const char* name, double value) {
  Collector* c = collector();
  if (c != nullptr && sim::in_simulation()) {
    c->sample(sim::current_proc(), name, value);
  }
}

bool detail() {
  Collector* c = collector();
  return c != nullptr && c->detail() && sim::in_simulation();
}

void gauge(const std::string& track, double value) {
  Collector* c = collector();
  if (c != nullptr && c->detail() && sim::in_simulation()) {
    c->gauge(track, sim::current_proc().now(), value, /*integer=*/false);
  }
}

void gauge_int(const std::string& track, std::uint64_t value) {
  Collector* c = collector();
  if (c != nullptr && c->detail() && sim::in_simulation()) {
    c->gauge(track, sim::current_proc().now(), static_cast<double>(value),
             /*integer=*/true);
  }
}

void latency_sample(const std::string& name, double seconds) {
  Collector* c = collector();
  if (c != nullptr && c->detail() && sim::in_simulation()) {
    c->latency(name, seconds);
  }
}

void record_wait(WaitKind kind, double t_start, double t_end) {
  Collector* c = collector();
  if (c != nullptr && c->detail() && sim::in_simulation()) {
    c->record_wait(sim::current_proc(), kind, t_start, t_end);
  }
}

}  // namespace paramrio::obs
