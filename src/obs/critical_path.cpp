#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace paramrio::obs {

namespace {

BlameCategory base_of(WaitKind kind) {
  return kind == WaitKind::kRecvWait ? BlameCategory::kComm
                                     : BlameCategory::kIo;
}

BlameCategory blame_of(WaitKind kind) {
  switch (kind) {
    case WaitKind::kRecvWait:
      return BlameCategory::kRecvWait;
    case WaitKind::kServerQueue:
      return BlameCategory::kServerQueue;
    case WaitKind::kTokenWait:
      return BlameCategory::kTokenWait;
    case WaitKind::kRetryBackoff:
      return BlameCategory::kRetryBackoff;
    case WaitKind::kSettleWait:
      return BlameCategory::kSettleWait;
    case WaitKind::kDrainWait:
      return BlameCategory::kStageDrain;
  }
  return BlameCategory::kUnattributed;
}

std::size_t idx(BlameCategory cat) { return static_cast<std::size_t>(cat); }

/// Blame vector of one phase span: start from the exact ProcStats deltas,
/// then move wait overlaps out of their base category.  Wait edges can
/// explain at most the base time the span actually charged — a clipped
/// overlap never drives comm/io negative.
BlameVector blame_span(const SpanRecord& s,
                       const std::vector<const WaitRecord*>& rank_waits) {
  BlameVector b{};
  b[idx(BlameCategory::kCpu)] = s.cpu_dt;
  b[idx(BlameCategory::kComm)] = s.comm_dt;
  b[idx(BlameCategory::kIo)] = s.io_dt;
  const double explained = s.cpu_dt + s.comm_dt + s.io_dt;
  b[idx(BlameCategory::kUnattributed)] =
      std::max(0.0, s.duration() - explained);
  for (const WaitRecord* w : rank_waits) {
    const double overlap =
        std::min(w->t_end, s.t_end) - std::max(w->t_start, s.t_start);
    if (!(overlap > 0.0)) continue;
    double& base = b[idx(base_of(w->kind))];
    const double shift = std::min(overlap, base);
    if (!(shift > 0.0)) continue;
    base -= shift;
    b[idx(blame_of(w->kind))] += shift;
  }
  return b;
}

void add(BlameVector& into, const BlameVector& from) {
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

double total(const BlameVector& b) {
  double t = 0.0;
  for (double v : b) t += v;
  return t;
}

}  // namespace

const char* to_string(BlameCategory cat) {
  switch (cat) {
    case BlameCategory::kCpu:
      return "cpu";
    case BlameCategory::kComm:
      return "comm";
    case BlameCategory::kRecvWait:
      return "recv_wait";
    case BlameCategory::kIo:
      return "io";
    case BlameCategory::kServerQueue:
      return "server_queue";
    case BlameCategory::kTokenWait:
      return "token_wait";
    case BlameCategory::kRetryBackoff:
      return "retry_backoff";
    case BlameCategory::kSettleWait:
      return "settle_wait";
    case BlameCategory::kStageDrain:
      return "stage.drain";
    case BlameCategory::kUnattributed:
      return "unattributed";
  }
  return "?";
}

BlameReport build_blame(const Collector& c, const std::string& root) {
  BlameReport r;
  r.root = root;

  // Root span per rank: the first depth-0 synchronous span with the name.
  std::map<int, const SpanRecord*> roots;
  for (const SpanRecord& s : c.spans()) {
    if (s.depth != 0 || s.async || s.name != root) continue;
    roots.emplace(s.rank, &s);  // keeps the first
  }
  if (roots.empty()) return r;
  r.nranks = static_cast<int>(roots.size());

  std::map<int, std::vector<const WaitRecord*>> waits_by_rank;
  for (const WaitRecord& w : c.waits()) {
    waits_by_rank[w.rank].push_back(&w);
  }

  std::map<std::string, PhaseBlame> phases;
  std::map<std::string, std::map<int, double>> phase_rank_time;
  double total_wall = 0.0;
  double total_attributed = 0.0;
  double critical_end = 0.0;

  static const std::vector<const WaitRecord*> kNoWaits;
  for (const auto& [rank, root_span] : roots) {
    auto wit = waits_by_rank.find(rank);
    const auto& rank_waits = wit != waits_by_rank.end() ? wit->second
                                                        : kNoWaits;
    RankBlame rb;
    rb.rank = rank;
    rb.wall = root_span->duration();
    for (const SpanRecord& s : c.spans()) {
      if (s.rank != rank || s.depth != 1 || s.async) continue;
      if (s.t_start < root_span->t_start || s.t_end > root_span->t_end) {
        continue;
      }
      const BlameVector b = blame_span(s, rank_waits);
      rb.attributed += s.duration();
      add(rb.blame, b);
      PhaseBlame& ph = phases[s.name];
      ph.name = s.name;
      ph.time += s.duration();
      add(ph.blame, b);
      phase_rank_time[s.name][rank] += s.duration();
    }
    rb.blame[idx(BlameCategory::kUnattributed)] +=
        std::max(0.0, rb.wall - total(rb.blame));
    add(r.blame, rb.blame);
    total_wall += rb.wall;
    total_attributed += rb.attributed;
    r.wall_time = std::max(r.wall_time, rb.wall);
    if (r.critical_rank < 0 || root_span->t_end > critical_end) {
      critical_end = root_span->t_end;
      r.critical_rank = rank;
    }
    r.ranks.push_back(rb);
  }
  r.attributed_fraction =
      total_wall > 0.0 ? total_attributed / total_wall : 0.0;

  for (auto& [name, ph] : phases) {
    ph.mean_rank_time = ph.time / r.nranks;
    for (const auto& [rank, t] : phase_rank_time[name]) {
      if (t > ph.max_rank_time) {
        ph.max_rank_time = t;
        ph.max_rank = rank;
      }
    }
    r.phases.push_back(ph);
  }
  return r;
}

void write_blame(const BlameReport& r, std::ostream& os) {
  char buf[256];
  os << "== critical-path blame: " << r.root << " ==\n";
  if (r.nranks == 0) {
    os << "  (no '" << r.root << "' span recorded)\n";
    return;
  }
  std::snprintf(buf, sizeof buf,
                "  wall %.6fs over %d ranks, critical rank %d, "
                "%.1f%% attributed to phases\n",
                r.wall_time, r.nranks, r.critical_rank,
                100.0 * r.attributed_fraction);
  os << buf;

  const double grand = total(r.blame);
  os << "\n  blame category       time (s)    share\n";
  for (int i = 0; i < kBlameCategories; ++i) {
    const double t = r.blame[static_cast<std::size_t>(i)];
    if (t <= 0.0) continue;
    std::snprintf(buf, sizeof buf, "  %-18s %10.6f   %5.1f%%\n",
                  to_string(static_cast<BlameCategory>(i)), t,
                  grand > 0.0 ? 100.0 * t / grand : 0.0);
    os << buf;
  }

  os << "\n  phase                         time (s)   imbalance  straggler"
        "   top blame\n";
  for (const PhaseBlame& ph : r.phases) {
    int top = 0;
    for (int i = 1; i < kBlameCategories; ++i) {
      if (ph.blame[static_cast<std::size_t>(i)] >
          ph.blame[static_cast<std::size_t>(top)]) {
        top = i;
      }
    }
    std::snprintf(buf, sizeof buf,
                  "  %-28s %10.6f     %6.2fx    rank %-4d  %s\n",
                  ph.name.c_str(), ph.time, ph.imbalance(), ph.max_rank,
                  to_string(static_cast<BlameCategory>(top)));
    os << buf;
  }

  os << "\n  rank      wall (s)  attributed   top blame\n";
  for (const RankBlame& rb : r.ranks) {
    int top = 0;
    for (int i = 1; i < kBlameCategories; ++i) {
      if (rb.blame[static_cast<std::size_t>(i)] >
          rb.blame[static_cast<std::size_t>(top)]) {
        top = i;
      }
    }
    std::snprintf(buf, sizeof buf, "  %4d  %12.6f      %5.1f%%   %s\n",
                  rb.rank, rb.wall,
                  rb.wall > 0.0 ? 100.0 * rb.attributed / rb.wall : 0.0,
                  to_string(static_cast<BlameCategory>(top)));
    os << buf;
  }
}

std::string blame_text(const BlameReport& r) {
  std::ostringstream os;
  write_blame(r, os);
  return os.str();
}

namespace {

void write_blame_vector(const BlameVector& b, std::ostream& os) {
  os << '{';
  bool first = true;
  for (int i = 0; i < kBlameCategories; ++i) {
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<BlameCategory>(i))
       << "\":" << format_double(b[static_cast<std::size_t>(i)]);
  }
  os << '}';
}

}  // namespace

void write_blame_json(const BlameReport& r, std::ostream& os) {
  os << "{\n"
     << R"(  "root": ")" << json_escape(r.root) << "\",\n"
     << R"(  "nranks": )" << r.nranks << ",\n"
     << R"(  "wall_time": )" << format_double(r.wall_time) << ",\n"
     << R"(  "critical_rank": )" << r.critical_rank << ",\n"
     << R"(  "attributed_fraction": )" << format_double(r.attributed_fraction)
     << ",\n"
     << R"(  "blame": )";
  write_blame_vector(r.blame, os);
  os << ",\n  \"phases\": [";
  bool first = true;
  for (const PhaseBlame& ph : r.phases) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"(    {"name": ")" << json_escape(ph.name) << R"(", "time": )"
       << format_double(ph.time) << R"(, "max_rank": )" << ph.max_rank
       << R"(, "max_rank_time": )" << format_double(ph.max_rank_time)
       << R"(, "mean_rank_time": )" << format_double(ph.mean_rank_time)
       << R"(, "imbalance": )" << format_double(ph.imbalance())
       << R"(, "blame": )";
    write_blame_vector(ph.blame, os);
    os << '}';
  }
  os << "\n  ],\n  \"ranks\": [";
  first = true;
  for (const RankBlame& rb : r.ranks) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"(    {"rank": )" << rb.rank << R"(, "wall": )"
       << format_double(rb.wall) << R"(, "attributed": )"
       << format_double(rb.attributed) << R"(, "blame": )";
    write_blame_vector(rb.blame, os);
    os << '}';
  }
  os << "\n  ]\n}\n";
}

std::string blame_json(const BlameReport& r) {
  std::ostringstream os;
  write_blame_json(r, os);
  return os.str();
}

}  // namespace paramrio::obs
