// Deterministic virtual-clock time-series gauges.
//
// A Timeline holds named tracks of (virtual time, value) points — I/O-server
// queue depth, per-job backlog, link bytes in flight, buffer-cache hit rate,
// outstanding requests per rank.  Producers call obs::gauge()/gauge_int()
// (profiler.hpp) from instrumented layers; the points land here in engine
// order, which is deterministic, so two runs of the same spec record
// byte-identical timelines.
//
// Tracks distinguish integer-valued gauges (counts: queue depths, request
// totals) from double-valued ones (rates, virtual seconds).  The integer
// tracks have a stronger invariance property: their *value sequences* are
// identical even across schedule-perturbation seeds, because tie-break
// shuffles reorder equal-time events but never change what each entity
// observes in program order.  integer_fingerprint() exposes exactly that
// comparison unit (values only, timestamps stripped) — bench_scale --trace
// asserts it across seeds {0,1,2}.
//
// Export: Perfetto counter tracks (trace_export.cpp draws them in a
// dedicated "entities" process row) and a deterministic JSON object.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace paramrio::obs {

class Timeline {
 public:
  struct Point {
    double time = 0.0;
    double value = 0.0;
  };

  struct Track {
    bool integer = false;  ///< values are exact counts, not virtual seconds
    std::vector<Point> points;
  };

  /// Append a point to `track` (created on first use).  Consecutive points
  /// with the same value are deduplicated — a gauge that never moves costs
  /// one point, and clean-run timelines stay small.
  void record(const std::string& track, double time, double value,
              bool integer = false);

  bool empty() const { return tracks_.empty(); }
  const std::map<std::string, Track>& tracks() const { return tracks_; }
  void clear() { tracks_.clear(); }

  /// Total recorded points across all tracks.
  std::uint64_t points() const;

  /// "track:v0,v1,...\n" per *integer* track, sorted by track name, values
  /// only — the seed-invariant comparison unit (timestamps may legitimately
  /// shift under tied resource arbitration; the observed value sequence per
  /// entity does not).
  std::string integer_fingerprint() const;

  /// Deterministic JSON: {"track": {"integer": bool, "points":
  /// [[t, v], ...]}, ...}.  Doubles print via format_double.
  void write_json(std::ostream& os, int indent = 0) const;
  std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, Track> tracks_;
};

}  // namespace paramrio::obs
