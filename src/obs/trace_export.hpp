// Chrome trace-event / Perfetto JSON export of a Collector's spans.
//
// The output is the classic trace-event JSON object format — loadable in
// chrome://tracing and https://ui.perfetto.dev — with one track (tid) per
// simulated rank, "X" duration events for spans (args carry the span's
// cpu/comm/io decomposition and counters) and "C" counter tracks for
// timestamped samples such as collective-buffer high-water marks.
//
// Timestamps are virtual microseconds quantised to 1 ns and formatted with
// fixed precision, so two runs of the same deterministic spec export
// byte-identical JSON (tests enforce this).
#pragma once

#include <ostream>
#include <string>

#include "obs/profiler.hpp"

namespace paramrio::obs {

/// Write the full trace-event JSON document for `c`.
void write_chrome_trace(const Collector& c, std::ostream& os);

/// Same, as a string (convenient for tests and small traces).
std::string chrome_trace_json(const Collector& c);

}  // namespace paramrio::obs
