#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace paramrio::obs {

const PhaseStats* Report::phase(const std::string& name) const {
  for (const PhaseStats& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::uint64_t Report::counter_sum(const std::string& prefix,
                                  const std::string& counter) const {
  std::uint64_t sum = 0;
  for (const PhaseStats& p : phases) {
    if (p.name.compare(0, prefix.size(), prefix) != 0) continue;
    auto it = p.counters.find(counter);
    if (it != p.counters.end()) sum += it->second;
  }
  return sum;
}

double Report::time_sum(const std::string& prefix) const {
  double sum = 0.0;
  for (const PhaseStats& p : phases) {
    if (p.name.compare(0, prefix.size(), prefix) == 0) sum += p.total_time;
  }
  return sum;
}

Report build_report(const Collector& c, int min_depth, int max_depth) {
  Report r;

  std::map<std::string, PhaseStats> phases;
  // Per-phase, per-rank inclusive totals, to compute max_time.
  std::map<std::string, std::map<int, double>> rank_time;
  std::map<int, RankBreakdown> ranks;

  for (const SpanRecord& s : c.spans()) {
    if (s.depth == 0) {
      RankBreakdown& rb = ranks[s.rank];
      rb.rank = s.rank;
      rb.total_time += s.duration();
      rb.cpu_time += s.cpu_dt;
      rb.comm_time += s.comm_dt;
      rb.io_time += s.io_dt;
    }
    if (s.depth < min_depth || s.depth > max_depth) continue;
    PhaseStats& p = phases[s.name];
    if (p.calls == 0) {
      p.name = s.name;
      p.category = s.category;
    }
    p.calls += 1;
    p.total_time += s.duration();
    p.cpu_time += s.cpu_dt;
    p.comm_time += s.comm_dt;
    p.io_time += s.io_dt;
    for (const auto& [name, value] : s.counters) p.counters[name] += value;
    rank_time[s.name][s.rank] += s.duration();
  }

  for (auto& [name, p] : phases) {
    for (const auto& [rank, t] : rank_time[name]) {
      p.max_time = std::max(p.max_time, t);
    }
    r.phases.push_back(std::move(p));
  }
  for (auto& [rank, rb] : ranks) r.ranks.push_back(rb);
  return r;
}

namespace {

std::string fmt_time(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%10.4f", seconds);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

void write_report(const Report& r, std::ostream& os) {
  os << "== per-rank time decomposition (top-level spans) ==\n";
  os << "  rank      total        cpu       comm         io    io-frac\n";
  double tot = 0.0, cpu = 0.0, comm = 0.0, io = 0.0;
  for (const RankBreakdown& rb : r.ranks) {
    char head[16];
    std::snprintf(head, sizeof head, "  %4d", rb.rank);
    os << head << fmt_time(rb.total_time) << " " << fmt_time(rb.cpu_time)
       << " " << fmt_time(rb.comm_time) << " " << fmt_time(rb.io_time)
       << "    " << fmt_pct(rb.io_fraction()) << "\n";
    tot += rb.total_time;
    cpu += rb.cpu_time;
    comm += rb.comm_time;
    io += rb.io_time;
  }
  if (!r.ranks.empty()) {
    os << "   all" << fmt_time(tot) << " " << fmt_time(cpu) << " "
       << fmt_time(comm) << " " << fmt_time(io) << "    "
       << fmt_pct(tot > 0.0 ? io / tot : 0.0) << "\n";
  }

  os << "\n== phase breakdown ==\n";
  os << "  phase                         calls      total        cpu"
     << "       comm         io\n";
  for (const PhaseStats& p : r.phases) {
    char head[48];
    std::snprintf(head, sizeof head, "  %-28s %6llu", p.name.c_str(),
                  static_cast<unsigned long long>(p.calls));
    os << head << " " << fmt_time(p.total_time) << " " << fmt_time(p.cpu_time)
       << " " << fmt_time(p.comm_time) << " " << fmt_time(p.io_time) << "\n";
    for (const auto& [name, value] : p.counters) {
      os << "      " << name << " = " << value << "\n";
    }
  }
}

std::string report_text(const Report& r) {
  std::ostringstream os;
  write_report(r, os);
  return os.str();
}

}  // namespace paramrio::obs
