#include "obs/timeline.hpp"

#include <sstream>

#include "obs/registry.hpp"

namespace paramrio::obs {

void Timeline::record(const std::string& track, double time, double value,
                      bool integer) {
  Track& t = tracks_[track];
  t.integer = t.integer || integer;
  if (!t.points.empty() && t.points.back().value == value) return;
  t.points.push_back(Point{time, value});
}

std::uint64_t Timeline::points() const {
  std::uint64_t n = 0;
  for (const auto& [name, track] : tracks_) n += track.points.size();
  return n;
}

std::string Timeline::integer_fingerprint() const {
  std::ostringstream os;
  for (const auto& [name, track] : tracks_) {
    if (!track.integer) continue;
    os << name << ':';
    bool first = true;
    for (const Point& p : track.points) {
      if (!first) os << ',';
      first = false;
      os << static_cast<std::int64_t>(p.value);
    }
    os << '\n';
  }
  return os.str();
}

void Timeline::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  os << '{' << nl;
  bool first_track = true;
  for (const auto& [name, track] : tracks_) {
    if (!first_track) os << ',' << nl;
    first_track = false;
    os << pad << '"' << json_escape(name) << R"(":{"integer":)"
       << (track.integer ? "true" : "false") << R"(,"points":[)";
    bool first_point = true;
    for (const Point& p : track.points) {
      if (!first_point) os << ',';
      first_point = false;
      os << '[' << format_double(p.time) << ',' << format_double(p.value)
         << ']';
    }
    os << "]}";
  }
  os << nl << '}' << nl;
}

std::string Timeline::to_json(int indent) const {
  std::ostringstream os;
  write_json(os, indent);
  return os.str();
}

}  // namespace paramrio::obs
