// Fixed-bucket latency histograms with exact deterministic percentiles.
//
// Buckets are powers of two in microseconds, computed with std::frexp so
// bucketing is exact bit arithmetic (no log/pow libm wobble across hosts):
// bucket i covers [2^(i-1), 2^i) µs, bucket 0 everything at or below 1 µs.
// Producers record whole virtual-second durations — pfs read/write attempts,
// network message latencies, two-phase collective windows.
//
// Percentiles are exact nearest-rank order statistics over the recorded
// samples (the sample count of an instrumented run is small — thousands, not
// billions — so keeping them is cheap and makes p50/p95/p99 deterministic to
// the bit rather than bucket-interpolated).
//
// Registry export is nonzero-only: a histogram that never recorded exports
// nothing, and only occupied buckets appear — clean-run registries stay
// byte-identical with instrumentation compiled in.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace paramrio::obs {

class MetricsRegistry;

class Histogram {
 public:
  /// Log2 bucket index of a duration in seconds (exact, frexp-based).
  static int bucket_of(double seconds);

  /// Inclusive upper edge of bucket `idx`, in seconds.
  static double bucket_upper_seconds(int idx);

  void record(double seconds);

  std::uint64_t count() const { return static_cast<std::uint64_t>(samples_.size()); }
  double sum() const { return sum_; }
  double max() const { return max_; }
  const std::map<int, std::uint64_t>& buckets() const { return buckets_; }

  /// Exact nearest-rank percentile (p in [0, 100]) over recorded samples;
  /// 0.0 when empty.
  double percentile(double p) const;

  /// Persist under `scope`: per-bucket counts as "bucket_<idx>" (nonzero
  /// buckets only), plus count / sum_seconds / max_seconds / p50 / p95 /
  /// p99.  No-op when the histogram is empty.
  void export_to(MetricsRegistry& reg, const std::string& scope) const;

  void clear();

 private:
  std::map<int, std::uint64_t> buckets_;
  std::vector<double> samples_;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace paramrio::obs
