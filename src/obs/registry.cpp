#include "obs/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

namespace paramrio::obs {

void MetricsRegistry::add(const std::string& scope, const std::string& name,
                          std::uint64_t delta) {
  scopes_[scope].counters[name] += delta;
}

void MetricsRegistry::set(const std::string& scope, const std::string& name,
                          std::uint64_t value) {
  scopes_[scope].counters[name] = value;
}

void MetricsRegistry::observe_max(const std::string& scope,
                                  const std::string& name,
                                  std::uint64_t value) {
  std::uint64_t& slot = scopes_[scope].counters[name];
  if (value > slot) slot = value;
}

void MetricsRegistry::add_value(const std::string& scope,
                                const std::string& name, double delta) {
  scopes_[scope].values[name] += delta;
}

void MetricsRegistry::set_value(const std::string& scope,
                                const std::string& name, double value) {
  scopes_[scope].values[name] = value;
}

std::uint64_t MetricsRegistry::get(const std::string& scope,
                                   const std::string& name) const {
  auto s = scopes_.find(scope);
  if (s == scopes_.end()) return 0;
  auto c = s->second.counters.find(name);
  return c == s->second.counters.end() ? 0 : c->second;
}

double MetricsRegistry::get_value(const std::string& scope,
                                  const std::string& name) const {
  auto s = scopes_.find(scope);
  if (s == scopes_.end()) return 0.0;
  auto v = s->second.values.find(name);
  return v == s->second.values.end() ? 0.0 : v->second;
}

bool MetricsRegistry::has_scope(const std::string& scope) const {
  return scopes_.find(scope) != scopes_.end();
}

std::string MetricsRegistry::format() const {
  std::ostringstream os;
  for (const auto& [scope, sc] : scopes_) {
    os << scope << ":\n";
    for (const auto& [name, v] : sc.counters) {
      os << "  " << name << " = " << v << "\n";
    }
    for (const auto& [name, v] : sc.values) {
      os << "  " << name << " = " << format_double(v) << "\n";
    }
  }
  return os.str();
}

namespace {
void pad(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os.put(' ');
}
}  // namespace

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  const char* nl = indent > 0 ? "\n" : "";
  os << "{" << nl;
  bool first_scope = true;
  for (const auto& [scope, sc] : scopes_) {
    if (!first_scope) os << "," << nl;
    first_scope = false;
    pad(os, indent);
    os << "\"" << json_escape(scope) << "\": {" << nl;
    bool first = true;
    for (const auto& [name, v] : sc.counters) {
      if (!first) os << "," << nl;
      first = false;
      pad(os, indent * 2);
      os << "\"" << json_escape(name) << "\": " << v;
    }
    for (const auto& [name, v] : sc.values) {
      if (!first) os << "," << nl;
      first = false;
      pad(os, indent * 2);
      os << "\"" << json_escape(name) << "\": " << format_double(v);
    }
    os << nl;
    pad(os, indent);
    os << "}";
  }
  os << nl << "}";
}

std::string MetricsRegistry::to_json(int indent) const {
  std::ostringstream os;
  write_json(os, indent);
  return os.str();
}

std::string format_double(double v) {
  // Shortest %.*g that round-trips; falls back to full precision.  All
  // inputs here are finite (virtual times and fractions), but guard anyway
  // since NaN/Inf are not valid JSON.
  if (v != v) return "0";
  if (v == std::numeric_limits<double>::infinity()) return "1e308";
  if (v == -std::numeric_limits<double>::infinity()) return "-1e308";
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  // JSON requires a leading digit ("inf" etc. already excluded above).
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace paramrio::obs
