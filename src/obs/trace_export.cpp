#include "obs/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace paramrio::obs {

namespace {

/// Virtual seconds -> trace-event microseconds, quantised to 1 ns and
/// printed with fixed precision (no %g wobble across values).
std::string ts_us(double seconds) {
  auto ns = static_cast<long long>(std::llround(seconds * 1e9));
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld", ns / 1000,
                ns % 1000 < 0 ? -(ns % 1000) : ns % 1000);
  return buf;
}

void write_event_prefix(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  ";
}

}  // namespace

void write_chrome_trace(const Collector& c, std::ostream& os) {
  // Stable order: by rank, then start time, then outermost-first — the
  // collector's completion order is already deterministic, sorting merely
  // makes the file browsable.
  std::vector<const SpanRecord*> spans;
  spans.reserve(c.spans().size());
  for (const SpanRecord& s : c.spans()) spans.push_back(&s);
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->rank != b->rank) return a->rank < b->rank;
                     if (a->t_start != b->t_start) {
                       return a->t_start < b->t_start;
                     }
                     return a->depth < b->depth;
                   });

  int nranks = c.ranks();
  for (const SpanRecord* s : spans) nranks = std::max(nranks, s->rank + 1);
  for (const CounterSample& s : c.samples()) {
    nranks = std::max(nranks, s.rank + 1);
  }

  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;

  // Async (in-flight) spans overlap their rank's synchronous spans in time,
  // so each rank with any gets a second track at tid = rank + nranks.  Runs
  // without async spans emit no extra metadata — their traces are unchanged.
  std::vector<bool> has_async(static_cast<std::size_t>(nranks), false);
  for (const SpanRecord* s : spans) {
    if (s->async) has_async[static_cast<std::size_t>(s->rank)] = true;
  }

  write_event_prefix(os, first);
  os << R"({"ph":"M","pid":0,"tid":0,"name":"process_name",)"
     << R"("args":{"name":"paramrio"}})";
  for (int r = 0; r < nranks; ++r) {
    write_event_prefix(os, first);
    os << R"({"ph":"M","pid":0,"tid":)" << r
       << R"(,"name":"thread_name","args":{"name":"rank )" << r << R"("}})";
  }
  for (int r = 0; r < nranks; ++r) {
    if (!has_async[static_cast<std::size_t>(r)]) continue;
    write_event_prefix(os, first);
    os << R"({"ph":"M","pid":0,"tid":)" << r + nranks
       << R"(,"name":"thread_name","args":{"name":"rank )" << r
       << R"x( (async io)"}})x";
  }

  for (const SpanRecord* s : spans) {
    write_event_prefix(os, first);
    os << R"({"ph":"X","pid":0,"tid":)"
       << (s->async ? s->rank + nranks : s->rank) << R"(,"name":")"
       << json_escape(s->name) << R"(","cat":")" << to_string(s->category)
       << R"(","ts":)" << ts_us(s->t_start) << R"(,"dur":)"
       << ts_us(s->duration()) << R"(,"args":{)";
    os << R"("cpu_us":)" << ts_us(s->cpu_dt) << R"(,"comm_us":)"
       << ts_us(s->comm_dt) << R"(,"io_us":)" << ts_us(s->io_dt);
    for (const auto& [name, value] : s->counters) {
      os << R"(,")" << json_escape(name) << R"(":)" << value;
    }
    os << "}}";
  }

  // Counter tracks: one per (name, rank), value sampled over virtual time.
  for (const CounterSample& s : c.samples()) {
    write_event_prefix(os, first);
    os << R"({"ph":"C","pid":0,"tid":)" << s.rank << R"(,"name":")"
       << json_escape(s.name) << " (rank " << s.rank << R"x()","ts":)x"
       << ts_us(s.time) << R"(,"args":{"value":)" << format_double(s.value)
       << "}}";
  }

  // Detail-mode entity gauges (I/O-server backlogs, link bytes in flight,
  // cache hit rate) live in their own "entities" process row so they don't
  // crowd the rank tracks.  Runs without a timeline emit nothing — traces
  // stay byte-identical to the pre-detail era.
  if (!c.timeline().empty()) {
    write_event_prefix(os, first);
    os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
       << R"("args":{"name":"entities"}})";
    for (const auto& [name, track] : c.timeline().tracks()) {
      for (const Timeline::Point& p : track.points) {
        write_event_prefix(os, first);
        os << R"({"ph":"C","pid":1,"tid":0,"name":")" << json_escape(name)
           << R"(","ts":)" << ts_us(p.time) << R"(,"args":{"value":)";
        if (track.integer) {
          os << static_cast<std::int64_t>(p.value);
        } else {
          os << format_double(p.value);
        }
        os << "}}";
      }
    }
  }

  os << "\n]\n}\n";
}

std::string chrome_trace_json(const Collector& c) {
  std::ostringstream os;
  write_chrome_trace(c, os);
  return os.str();
}

}  // namespace paramrio::obs
