// Unified run-level metrics registry.
//
// Every layer of the stack keeps its own counters (mpi::io::FileStats,
// sim::ProcStats, trace::DirectionStats, GPFS token transfers, network
// message counts) with its own lifetime — FileStats die with the File,
// ProcStats with the Engine run.  The MetricsRegistry is the one place they
// all outlive their producers: a two-level map of
//
//     scope -> counter name -> value
//
// with integer counters (exact) and double-valued gauges (virtual seconds)
// kept separately.  Scopes are plain strings by convention:
//
//     "proc"              aggregated sim::ProcStats across ranks
//     "rank0", "rank1"..  per-rank ProcStats
//     "file:<path>|<hints>"  FileStats persisted at File::close
//     "fs:<name>"         file-system counters (cache hits, GPFS tokens)
//     "net"               interconnect counters
//     "trace:read/write"  IoTracer direction statistics
//
// Both the text and JSON renderings iterate std::maps, so output is
// deterministic — two identical runs serialise byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace paramrio::obs {

class MetricsRegistry {
 public:
  struct Scope {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> values;
  };

  /// Accumulate `delta` into an integer counter (creates it at 0).
  void add(const std::string& scope, const std::string& name,
           std::uint64_t delta);

  /// Overwrite an integer counter.
  void set(const std::string& scope, const std::string& name,
           std::uint64_t value);

  /// Keep the maximum seen (high-water marks).
  void observe_max(const std::string& scope, const std::string& name,
                   std::uint64_t value);

  /// Accumulate into a double-valued gauge (times, fractions).
  void add_value(const std::string& scope, const std::string& name,
                 double delta);

  /// Overwrite a double-valued gauge.
  void set_value(const std::string& scope, const std::string& name,
                 double value);

  /// Read back an integer counter; 0 when absent.
  std::uint64_t get(const std::string& scope, const std::string& name) const;

  /// Read back a gauge; 0.0 when absent.
  double get_value(const std::string& scope, const std::string& name) const;

  bool has_scope(const std::string& scope) const;
  const std::map<std::string, Scope>& scopes() const { return scopes_; }

  void clear() { scopes_.clear(); }

  /// Human-readable dump, one counter per line, sorted.
  std::string format() const;

  /// Deterministic JSON object: {"scope": {"name": value, ...}, ...}.
  /// `indent` spaces of leading indentation per line; 0 emits compact JSON.
  void write_json(std::ostream& os, int indent = 0) const;
  std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, Scope> scopes_;
};

/// Format a double the way every obs exporter does: shortest round-trip-safe
/// decimal via %.17g trimmed through %.*g probing, which is deterministic
/// for a given libc.  Exposed so bench JSON and trace export agree.
std::string format_double(double v);

/// Escape a string for inclusion in a JSON string literal (adds no quotes).
std::string json_escape(const std::string& s);

}  // namespace paramrio::obs
