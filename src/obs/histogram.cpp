#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"

namespace paramrio::obs {

int Histogram::bucket_of(double seconds) {
  const double us = seconds * 1e6;
  if (!(us > 1.0)) return 0;  // also catches NaN and negatives
  int exp = 0;
  std::frexp(us, &exp);  // us = m * 2^exp with m in [0.5, 1)
  return exp > 0 ? exp : 0;
}

double Histogram::bucket_upper_seconds(int idx) {
  return std::ldexp(1.0, idx) * 1e-6;
}

void Histogram::record(double seconds) {
  buckets_[bucket_of(seconds)] += 1;
  samples_.push_back(seconds);
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: smallest value with at least p% of samples at or below it.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  auto idx = static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

void Histogram::export_to(MetricsRegistry& reg, const std::string& scope) const {
  if (samples_.empty()) return;
  for (const auto& [idx, n] : buckets_) {
    reg.add(scope, "bucket_" + std::to_string(idx), n);
  }
  reg.set(scope, "count", count());
  reg.set_value(scope, "sum_seconds", sum_);
  reg.set_value(scope, "max_seconds", max_);
  reg.set_value(scope, "p50", percentile(50.0));
  reg.set_value(scope, "p95", percentile(95.0));
  reg.set_value(scope, "p99", percentile(99.0));
}

void Histogram::clear() {
  buckets_.clear();
  samples_.clear();
  sum_ = 0.0;
  max_ = 0.0;
}

}  // namespace paramrio::obs
