// Paper-style phase-breakdown reports over collected spans.
//
// Three views, mirroring the figures of the source paper:
//
//   * Per-rank time decomposition (Fig 3): for each rank, the cpu/comm/io
//     split of its top-level spans plus the I/O fraction of total time —
//     the "percentage of time in I/O" bars.
//   * Phase table (Figs 4/5): spans grouped by name, with call counts,
//     inclusive totals, exact cpu/comm/io decomposition and byte counters.
//     For the HDF4 backend this reproduces the gather vs. sequential-write
//     split; for HDF5 it attributes overhead across dataset create/close
//     metadata sync, metadata traffic, hyperslab packing and attributes.
//
// All aggregation is over deterministic virtual-time spans, so a report is
// bit-identical across runs of the same spec.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace paramrio::obs {

/// Aggregate of all spans sharing one name.
struct PhaseStats {
  std::string name;
  TimeCategory category = TimeCategory::kCpu;
  std::uint64_t calls = 0;
  double total_time = 0.0;  ///< inclusive, summed across ranks
  double max_time = 0.0;    ///< max per-rank inclusive total
  double cpu_time = 0.0;
  double comm_time = 0.0;
  double io_time = 0.0;
  std::map<std::string, std::uint64_t> counters;
};

/// Per-rank rollup of top-level (depth 0) spans.
struct RankBreakdown {
  int rank = 0;
  double total_time = 0.0;  ///< sum of top-level span durations
  double cpu_time = 0.0;
  double comm_time = 0.0;
  double io_time = 0.0;

  double io_fraction() const {
    return total_time > 0.0 ? io_time / total_time : 0.0;
  }
};

struct Report {
  std::vector<RankBreakdown> ranks;
  std::vector<PhaseStats> phases;  ///< sorted by name

  /// Phase lookup by exact span name; nullptr when absent.
  const PhaseStats* phase(const std::string& name) const;

  /// Sum of a counter over phases whose name starts with `prefix`.
  std::uint64_t counter_sum(const std::string& prefix,
                            const std::string& counter) const;

  /// Total inclusive time of phases whose name starts with `prefix`
  /// (e.g. "hdf4.gather" vs "hdf4.topgrid" + "hdf4.subgrid").
  double time_sum(const std::string& prefix) const;
};

/// Build a report from every finished span in `c`.  `min_depth`/`max_depth`
/// restrict which nesting levels feed the phase table (rank breakdowns
/// always use depth 0); the default covers phase-level instrumentation
/// without double-counting nested leaf spans.
Report build_report(const Collector& c, int min_depth = 0, int max_depth = 1);

/// Render the rank decomposition + phase table as fixed-width text.
void write_report(const Report& r, std::ostream& os);
std::string report_text(const Report& r);

}  // namespace paramrio::obs
