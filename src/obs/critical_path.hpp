// Critical-path blame analysis over spans + wait-for edges.
//
// The span layer answers "where did the time go" only in the engine's
// coarse cpu/comm/io taxonomy; this module answers the paper's real
// question — *what was the critical rank waiting on?* — by re-attributing
// each rank's end-to-end dump (or restart) wall time:
//
//   1. Take the rank's depth-0 root span ("dump" / "restart_read") and its
//      synchronous depth-1 phase children (the spans the ≥95%-coverage test
//      already enforces).
//   2. Start each phase from its exact cpu/comm/io ProcStats deltas.
//   3. Clip every WaitRecord of the rank against the phase window and move
//      the overlap out of the base category (comm for recv waits, io for
//      server queues / token waits / retry backoff / deferred settles) into
//      its blame category.  Whatever no edge explains stays as plain
//      cpu/comm/io; gaps between phases become "unattributed".
//
// The result is a per-rank and per-phase blame vector plus straggler
// detection (max-over-mean per phase — the imbalance number that says
// "rank 0's sequential write IS the dump" for the HDF4 backend).  All
// inputs are deterministic virtual-time records, so the report — text and
// JSON — is byte-identical across runs, engine backends, and schedule
// perturbation seeds on symmetric workloads (test-enforced).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace paramrio::obs {

/// Where a slice of wall time ultimately went.  The first three are the
/// span layer's own categories (after wait subtraction); the wait
/// categories are re-attributed from WaitRecords; unattributed is root
/// time no phase span covered (plus any phase time the ProcStats deltas
/// did not explain).
enum class BlameCategory : int {
  kCpu = 0,
  kComm = 1,         ///< comm minus recv waits: actual transfer/pack time
  kRecvWait = 2,     ///< idle at a receive until the sender's data arrived
  kIo = 3,           ///< io minus queue/token/backoff/settle: device time
  kServerQueue = 4,
  kTokenWait = 5,
  kRetryBackoff = 6,
  kSettleWait = 7,
  kStageDrain = 8,  ///< blocked on the burst-buffer drain (sync or settle)
  kUnattributed = 9,
};

constexpr int kBlameCategories = 10;

const char* to_string(BlameCategory cat);

using BlameVector = std::array<double, kBlameCategories>;

/// Aggregate blame for one phase (depth-1 span name) across all ranks.
struct PhaseBlame {
  std::string name;
  double time = 0.0;  ///< inclusive durations summed across ranks
  BlameVector blame{};
  int max_rank = -1;          ///< straggler: rank with the largest share
  double max_rank_time = 0.0;
  double mean_rank_time = 0.0;

  /// Max-over-mean straggler factor; 1.0 means perfectly balanced.
  double imbalance() const {
    return mean_rank_time > 0.0 ? max_rank_time / mean_rank_time : 0.0;
  }
};

/// Blame decomposition of one rank's root-span wall time.
struct RankBlame {
  int rank = -1;
  double wall = 0.0;        ///< root span duration
  double attributed = 0.0;  ///< wall covered by depth-1 phase spans
  BlameVector blame{};      ///< sums to wall (unattributed absorbs the rest)
};

struct BlameReport {
  std::string root;
  int nranks = 0;          ///< ranks that executed the root span
  double wall_time = 0.0;  ///< max root duration across ranks
  int critical_rank = -1;  ///< last rank to finish the root span
  double attributed_fraction = 0.0;  ///< phase-covered share of total wall
  BlameVector blame{};               ///< per-rank vectors summed
  std::vector<PhaseBlame> phases;    ///< sorted by phase name
  std::vector<RankBlame> ranks;      ///< sorted by rank
};

/// Build the blame report for the ranks that executed a depth-0 span named
/// `root`.  Returns an empty report (nranks == 0) when no rank did.
BlameReport build_blame(const Collector& c, const std::string& root = "dump");

/// Paper-style fixed-width tables: total blame, per-phase blame with
/// imbalance, per-rank decomposition.
void write_blame(const BlameReport& r, std::ostream& os);
std::string blame_text(const BlameReport& r);

/// Deterministic JSON document (schema validated in CI's obs-blame job).
void write_blame_json(const BlameReport& r, std::ostream& os);
std::string blame_json(const BlameReport& r);

}  // namespace paramrio::obs
