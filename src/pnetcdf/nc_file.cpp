#include "pnetcdf/nc_file.hpp"

#include <algorithm>

#include "base/byte_io.hpp"

namespace paramrio::pnetcdf {

namespace {
constexpr std::uint32_t kMagic = 0x31434E50;  // "PNC1"
constexpr std::uint32_t kVersion = 1;

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return a <= 1 ? v : (v + a - 1) / a * a;
}
}  // namespace

std::uint64_t type_size(NcType t) {
  switch (t) {
    case NcType::kFloat:
    case NcType::kInt:
      return 4;
    case NcType::kDouble:
    case NcType::kInt64:
      return 8;
  }
  throw LogicError("bad NcType");
}

NcFile NcFile::create(mpi::Comm& comm, pfs::FileSystem& fs,
                      const std::string& path, NcConfig config) {
  NcFile f;
  f.comm_ = &comm;
  f.config_ = config;
  f.file_ = std::make_unique<mpi::io::File>(comm, fs, path,
                                            pfs::OpenMode::kCreate,
                                            config.hints);
  f.define_mode_ = true;
  f.open_ = true;
  return f;
}

NcFile NcFile::open(mpi::Comm& comm, pfs::FileSystem& fs,
                    const std::string& path, NcConfig config) {
  NcFile f;
  f.comm_ = &comm;
  f.config_ = config;
  f.file_ = std::make_unique<mpi::io::File>(comm, fs, path,
                                            pfs::OpenMode::kRead,
                                            config.hints);
  // One metadata read for the whole job: rank 0 reads, everyone else gets
  // the header by broadcast (real PnetCDF's open behaviour).
  mpi::Bytes header;
  if (comm.rank() == 0) {
    std::vector<std::byte> fixed(8);
    f.file_->set_view(0);
    f.file_->read_at(0, fixed);
    ByteReader r(fixed);
    if (r.u32() != kMagic) throw FormatError(path + ": not a PNC file");
    std::uint32_t header_bytes = r.u32();
    header.resize(header_bytes);
    f.file_->read_at(8, header);
  }
  comm.bcast(header, 0);
  f.parse_header(header);
  f.define_mode_ = false;
  f.open_ = true;
  return f;
}

void NcFile::require_define(bool expected) const {
  PARAMRIO_REQUIRE(open_, "NcFile: closed");
  if (expected) {
    PARAMRIO_REQUIRE(define_mode_, "NcFile: requires define mode");
  } else {
    PARAMRIO_REQUIRE(!define_mode_, "NcFile: requires data mode (enddef?)");
  }
}

int NcFile::def_dim(const std::string& name, std::uint64_t length) {
  require_define(true);
  PARAMRIO_REQUIRE(length > 0, "def_dim: zero-length dimension");
  dims_.push_back(Dim{name, length});
  return static_cast<int>(dims_.size()) - 1;
}

int NcFile::def_var(const std::string& name, NcType type,
                    const std::vector<int>& dim_ids) {
  require_define(true);
  PARAMRIO_REQUIRE(!dim_ids.empty(), "def_var: need at least one dimension");
  PARAMRIO_REQUIRE(var_index_.find(name) == var_index_.end(),
                   "def_var: duplicate variable " + name);
  for (int d : dim_ids) {
    PARAMRIO_REQUIRE(d >= 0 && static_cast<std::size_t>(d) < dims_.size(),
                     "def_var: bad dimension id");
  }
  Var v;
  v.name = name;
  v.type = type;
  v.dim_ids = dim_ids;
  var_index_[name] = static_cast<int>(vars_.size());
  vars_.push_back(std::move(v));
  return static_cast<int>(vars_.size()) - 1;
}

void NcFile::put_att(const std::string& name,
                     std::span<const std::byte> value) {
  require_define(true);
  atts_[name].assign(value.begin(), value.end());
}

std::vector<std::byte> NcFile::serialize_header() const {
  ByteWriter w;
  w.u64(dims_.size());
  for (const Dim& d : dims_) {
    w.str(d.name);
    w.u64(d.length);
  }
  w.u64(vars_.size());
  for (const Var& v : vars_) {
    w.str(v.name);
    w.u8(static_cast<std::uint8_t>(v.type));
    w.u32(static_cast<std::uint32_t>(v.dim_ids.size()));
    for (int d : v.dim_ids) w.u32(static_cast<std::uint32_t>(d));
    w.u64(v.offset);
    w.u64(v.bytes);
  }
  w.u64(atts_.size());
  for (const auto& [name, value] : atts_) {
    w.str(name);
    w.u64(value.size());
    w.bytes(value);
  }
  return w.take();
}

NcHeader parse_nc_header(std::span<const std::byte> data) {
  NcHeader h;
  ByteReader r(data);
  std::uint64_t nd = r.u64();
  for (std::uint64_t i = 0; i < nd; ++i) {
    Dim d;
    d.name = r.str();
    d.length = r.u64();
    h.dims.push_back(std::move(d));
  }
  std::uint64_t nv = r.u64();
  for (std::uint64_t i = 0; i < nv; ++i) {
    Var v;
    v.name = r.str();
    v.type = static_cast<NcType>(r.u8());
    std::uint32_t ndim = r.u32();
    for (std::uint32_t d = 0; d < ndim; ++d) {
      v.dim_ids.push_back(static_cast<int>(r.u32()));
    }
    v.offset = r.u64();
    v.bytes = r.u64();
    h.var_index[v.name] = static_cast<int>(h.vars.size());
    h.vars.push_back(std::move(v));
  }
  std::uint64_t na = r.u64();
  for (std::uint64_t i = 0; i < na; ++i) {
    std::string name = r.str();
    std::uint64_t n = r.u64();
    auto vspan = r.bytes(n);
    h.atts[name].assign(vspan.begin(), vspan.end());
  }
  return h;
}

NcHeader read_nc_header(pfs::FileSystem& fs, const std::string& path) {
  int fd = fs.open(path, pfs::OpenMode::kRead);
  std::vector<std::byte> fixed(8);
  fs.read_at(fd, 0, fixed);
  ByteReader r(fixed);
  if (r.u32() != kMagic) {
    fs.close(fd);
    throw FormatError(path + ": not a PNC file");
  }
  std::uint32_t header_bytes = r.u32();
  std::vector<std::byte> blob(header_bytes);
  fs.read_at(fd, 8, blob);
  fs.close(fd);
  return parse_nc_header(blob);
}

void NcFile::parse_header(std::span<const std::byte> data) {
  NcHeader h = parse_nc_header(data);
  dims_ = std::move(h.dims);
  vars_ = std::move(h.vars);
  var_index_ = std::move(h.var_index);
  atts_ = std::move(h.atts);
}

void NcFile::enddef() {
  require_define(true);
  // Closed-form layout: header first, then each variable's data 8-byte
  // aligned inside an aligned data region.  Computed identically on every
  // rank; written physically once by rank 0.
  std::uint64_t header_bytes = serialize_header().size();
  std::uint64_t pos = align_up(8 + header_bytes, config_.data_alignment);
  for (Var& v : vars_) {
    v.bytes = v.element_count(dims_) * type_size(v.type);
    v.offset = align_up(pos, 8);
    pos = v.offset + v.bytes;
  }
  if (comm_->rank() == 0) {
    auto header = serialize_header();  // now with final offsets
    ByteWriter w;
    w.u32(kMagic);
    w.u32(static_cast<std::uint32_t>(header.size()));
    w.bytes(header);
    auto blob = w.take();
    file_->set_view(0);
    file_->write_at(0, blob);
  }
  comm_->barrier();  // the ONE synchronisation of the whole define phase
  define_mode_ = false;
}

mpi::Datatype NcFile::subarray_type(const Var& v,
                                    const std::vector<std::uint64_t>& start,
                                    const std::vector<std::uint64_t>& count,
                                    std::uint64_t* bytes_out) const {
  PARAMRIO_REQUIRE(start.size() == v.dim_ids.size() &&
                       count.size() == v.dim_ids.size(),
                   "vara: rank mismatch for " + v.name);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(v.dim_ids.size());
  std::uint64_t n = 1;
  for (std::size_t d = 0; d < v.dim_ids.size(); ++d) {
    sizes.push_back(dims_[static_cast<std::size_t>(v.dim_ids[d])].length);
    n *= count[d];
  }
  *bytes_out = n * type_size(v.type);
  if (n == 0) {
    // Zero-size participation (netCDF allows zero counts): the caller still
    // joins the collective; any placeholder type works since nothing moves.
    return mpi::Datatype::contiguous(1);
  }
  return mpi::Datatype::subarray(sizes, count, start, type_size(v.type));
}

void NcFile::put_vara_all(int varid, const std::vector<std::uint64_t>& start,
                          const std::vector<std::uint64_t>& count,
                          std::span<const std::byte> buf) {
  require_define(false);
  const Var& v = var(varid);
  std::uint64_t bytes = 0;
  auto type = subarray_type(v, start, count, &bytes);
  PARAMRIO_REQUIRE(buf.size() == bytes, "put_vara_all: buffer size mismatch");
  file_->set_view(v.offset, std::move(type));
  file_->write_at_all(0, buf);
}

void NcFile::get_vara_all(int varid, const std::vector<std::uint64_t>& start,
                          const std::vector<std::uint64_t>& count,
                          std::span<std::byte> buf) {
  require_define(false);
  const Var& v = var(varid);
  std::uint64_t bytes = 0;
  auto type = subarray_type(v, start, count, &bytes);
  PARAMRIO_REQUIRE(buf.size() == bytes, "get_vara_all: buffer size mismatch");
  file_->set_view(v.offset, std::move(type));
  file_->read_at_all(0, buf);
}

void NcFile::put_vara(int varid, const std::vector<std::uint64_t>& start,
                      const std::vector<std::uint64_t>& count,
                      std::span<const std::byte> buf) {
  require_define(false);
  const Var& v = var(varid);
  std::uint64_t bytes = 0;
  auto type = subarray_type(v, start, count, &bytes);
  PARAMRIO_REQUIRE(buf.size() == bytes, "put_vara: buffer size mismatch");
  file_->set_view(v.offset, std::move(type));
  file_->write_at(0, buf);
}

mpi::io::Request NcFile::iput_vara(int varid,
                                   const std::vector<std::uint64_t>& start,
                                   const std::vector<std::uint64_t>& count,
                                   std::span<const std::byte> buf) {
  require_define(false);
  const Var& v = var(varid);
  std::uint64_t bytes = 0;
  auto type = subarray_type(v, start, count, &bytes);
  PARAMRIO_REQUIRE(buf.size() == bytes, "iput_vara: buffer size mismatch");
  file_->set_view(v.offset, std::move(type));
  return file_->iwrite_at(0, buf);
}

void NcFile::wait_all(std::span<mpi::io::Request> reqs) {
  file_->wait_all(reqs);
}

void NcFile::get_vara(int varid, const std::vector<std::uint64_t>& start,
                      const std::vector<std::uint64_t>& count,
                      std::span<std::byte> buf) {
  require_define(false);
  const Var& v = var(varid);
  std::uint64_t bytes = 0;
  auto type = subarray_type(v, start, count, &bytes);
  PARAMRIO_REQUIRE(buf.size() == bytes, "get_vara: buffer size mismatch");
  file_->set_view(v.offset, std::move(type));
  file_->read_at(0, buf);
}

void NcFile::put_var_all(int varid, std::span<const std::byte> buf) {
  const Var& v = var(varid);
  std::vector<std::uint64_t> start(v.dim_ids.size(), 0);
  std::vector<std::uint64_t> count;
  for (int d : v.dim_ids) {
    count.push_back(dims_[static_cast<std::size_t>(d)].length);
  }
  put_vara_all(varid, start, count, buf);
}

void NcFile::get_var_all(int varid, std::span<std::byte> buf) {
  const Var& v = var(varid);
  std::vector<std::uint64_t> start(v.dim_ids.size(), 0);
  std::vector<std::uint64_t> count;
  for (int d : v.dim_ids) {
    count.push_back(dims_[static_cast<std::size_t>(d)].length);
  }
  get_vara_all(varid, start, count, buf);
}

std::vector<std::byte> NcFile::get_att(const std::string& name) const {
  auto it = atts_.find(name);
  if (it == atts_.end()) throw IoError("NcFile: no attribute " + name);
  return it->second;
}

bool NcFile::has_att(const std::string& name) const {
  return atts_.find(name) != atts_.end();
}

int NcFile::inq_varid(const std::string& name) const {
  auto it = var_index_.find(name);
  if (it == var_index_.end()) throw IoError("NcFile: no variable " + name);
  return it->second;
}

const Var& NcFile::var(int varid) const {
  PARAMRIO_REQUIRE(varid >= 0 && static_cast<std::size_t>(varid) < vars_.size(),
                   "NcFile: bad variable id");
  return vars_[static_cast<std::size_t>(varid)];
}

const Dim& NcFile::dim(int dimid) const {
  PARAMRIO_REQUIRE(dimid >= 0 && static_cast<std::size_t>(dimid) < dims_.size(),
                   "NcFile: bad dimension id");
  return dims_[static_cast<std::size_t>(dimid)];
}

void NcFile::close() {
  PARAMRIO_REQUIRE(open_, "NcFile: already closed");
  PARAMRIO_REQUIRE(!define_mode_, "NcFile: close before enddef");
  file_->close();
  open_ = false;
}

}  // namespace paramrio::pnetcdf
