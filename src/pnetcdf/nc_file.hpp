// Parallel netCDF-analogue ("PnetCDF") — the paper's lineage, implemented.
//
// The authors' follow-up to this paper was Parallel netCDF (Li, Liao,
// Choudhary, Ross, Thakur, Gropp, Latham et al., SC 2003): a scientific
// file format whose *design* removes exactly the four parallel-HDF5
// overheads measured in Figure 10:
//
//   * one define mode ended by a single collective enddef() — instead of a
//     synchronisation per dataset create/close;
//   * a flat header followed by an aligned, contiguous data region — no
//     metadata interleaved with array data;
//   * variable offsets computed by closed-form arithmetic — no recursive
//     hyperslab machinery (subarray access maps straight onto MPI-IO
//     datatypes);
//   * attributes live in the header, written once at enddef — no rank-0
//     round trip per attribute.
//
// This module implements that design on the same substrates (mini-MPI +
// simulated file systems), giving the repository a fourth I/O backend and
// the bench_ext_pnetcdf extension experiment.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpi/io/file.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::pnetcdf {

enum class NcType : std::uint8_t {
  kFloat = 0,
  kDouble = 1,
  kInt = 2,
  kInt64 = 3,
};

std::uint64_t type_size(NcType t);

struct Dim {
  std::string name;
  std::uint64_t length = 0;
};

struct Var {
  std::string name;
  NcType type = NcType::kFloat;
  std::vector<int> dim_ids;      ///< slowest first (row-major)
  std::uint64_t offset = 0;      ///< absolute file offset of the data
  std::uint64_t bytes = 0;

  std::uint64_t element_count(const std::vector<Dim>& dims) const {
    std::uint64_t n = 1;
    for (int d : dim_ids) n *= dims[static_cast<std::size_t>(d)].length;
    return n;
  }
};

struct NcConfig {
  mpi::io::Hints hints;
  std::uint64_t data_alignment = 4096;  ///< start of the data region
};

/// Parsed header of a PNC file — dims, vars (with absolute data offsets)
/// and attributes.  Obtainable without a communicator via read_nc_header,
/// which is what serial metadata consumers (dump inspection, the query
/// index) use; NcFile::open parses the same blob collectively.
struct NcHeader {
  std::vector<Dim> dims;
  std::vector<Var> vars;
  std::map<std::string, int> var_index;
  std::map<std::string, std::vector<std::byte>> atts;

  const Var* find_var(const std::string& name) const {
    auto it = var_index.find(name);
    return it == var_index.end() ? nullptr : &vars[static_cast<std::size_t>(it->second)];
  }
};

/// Parse a serialized header blob (the bytes after the 8-byte fixed
/// preamble).
NcHeader parse_nc_header(std::span<const std::byte> data);

/// Serial header read of an existing PNC file: one proc, timed through the
/// file system's normal charge model.  Throws FormatError if the file is
/// not a PNC file.
NcHeader read_nc_header(pfs::FileSystem& fs, const std::string& path);

class NcFile {
 public:
  /// Collective create: the file starts in define mode.
  static NcFile create(mpi::Comm& comm, pfs::FileSystem& fs,
                       const std::string& path, NcConfig config = {});

  /// Collective open of an existing file (data mode).  Rank 0 reads the
  /// header and broadcasts it — one metadata read for the whole job.
  static NcFile open(mpi::Comm& comm, pfs::FileSystem& fs,
                     const std::string& path, NcConfig config = {});

  NcFile(NcFile&&) = default;
  NcFile(const NcFile&) = delete;
  NcFile& operator=(const NcFile&) = delete;

  // ---- define mode -----------------------------------------------------

  int def_dim(const std::string& name, std::uint64_t length);
  int def_var(const std::string& name, NcType type,
              const std::vector<int>& dim_ids);
  void put_att(const std::string& name, std::span<const std::byte> value);

  /// Leave define mode: computes the layout, rank 0 writes the whole header
  /// once, one barrier.  Collective.
  void enddef();

  // ---- data mode -------------------------------------------------------

  /// Collective subarray write/read (put_vara_all / get_vara_all):
  /// start/count per dimension, buffer in row-major order.
  void put_vara_all(int varid, const std::vector<std::uint64_t>& start,
                    const std::vector<std::uint64_t>& count,
                    std::span<const std::byte> buf);
  void get_vara_all(int varid, const std::vector<std::uint64_t>& start,
                    const std::vector<std::uint64_t>& count,
                    std::span<std::byte> buf);

  /// Independent variants.
  void put_vara(int varid, const std::vector<std::uint64_t>& start,
                const std::vector<std::uint64_t>& count,
                std::span<const std::byte> buf);

  /// Nonblocking independent write (PnetCDF's ncmpi_iput_vara): with the
  /// file's Hints::overlap set, the I/O runs in flight and the returned
  /// request must be completed with wait_all(); otherwise it completes
  /// synchronously.  The buffer must stay live until then.
  mpi::io::Request iput_vara(int varid,
                             const std::vector<std::uint64_t>& start,
                             const std::vector<std::uint64_t>& count,
                             std::span<const std::byte> buf);

  /// Complete outstanding iput_vara requests (ncmpi_wait_all).
  void wait_all(std::span<mpi::io::Request> reqs);
  void get_vara(int varid, const std::vector<std::uint64_t>& start,
                const std::vector<std::uint64_t>& count,
                std::span<std::byte> buf);

  /// Whole-variable convenience.
  void put_var_all(int varid, std::span<const std::byte> buf);
  void get_var_all(int varid, std::span<std::byte> buf);

  std::vector<std::byte> get_att(const std::string& name) const;
  bool has_att(const std::string& name) const;

  int inq_varid(const std::string& name) const;
  const Var& var(int varid) const;
  const Dim& dim(int dimid) const;
  std::size_t var_count() const { return vars_.size(); }
  bool in_define_mode() const { return define_mode_; }

  void close();  ///< collective

 private:
  NcFile() = default;
  void require_define(bool expected) const;
  mpi::Datatype subarray_type(const Var& v,
                              const std::vector<std::uint64_t>& start,
                              const std::vector<std::uint64_t>& count,
                              std::uint64_t* bytes_out) const;
  std::vector<std::byte> serialize_header() const;
  void parse_header(std::span<const std::byte> data);

  mpi::Comm* comm_ = nullptr;
  std::unique_ptr<mpi::io::File> file_;
  NcConfig config_;
  bool define_mode_ = true;
  bool open_ = false;
  std::vector<Dim> dims_;
  std::vector<Var> vars_;
  std::map<std::string, int> var_index_;
  std::map<std::string, std::vector<std::byte>> atts_;
};

}  // namespace paramrio::pnetcdf
