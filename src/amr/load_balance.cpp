#include "amr/load_balance.hpp"

#include <algorithm>
#include <numeric>

namespace paramrio::amr {

std::vector<int> balance_greedy(const std::vector<std::uint64_t>& weights,
                                int nprocs) {
  PARAMRIO_REQUIRE(nprocs >= 1, "balance_greedy: nprocs must be >= 1");
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;  // deterministic tie-break
  });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(nprocs), 0);
  std::vector<int> owner(weights.size(), 0);
  for (std::size_t i : order) {
    auto it = std::min_element(load.begin(), load.end());
    int rank = static_cast<int>(it - load.begin());
    owner[i] = rank;
    *it += weights[i];
  }
  return owner;
}

std::vector<std::uint64_t> assign_owners(Hierarchy& hierarchy, int nprocs) {
  std::vector<std::uint64_t> ids;
  std::vector<std::uint64_t> weights;
  for (const GridDescriptor& g : hierarchy.grids()) {
    if (g.level == 0) continue;
    ids.push_back(g.id);
    weights.push_back(g.cell_count());
  }
  std::vector<int> owners = balance_greedy(weights, nprocs);
  std::vector<std::uint64_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    hierarchy.grid_mut(ids[i]).owner = owners[i];
    load[static_cast<std::size_t>(owners[i])] += weights[i];
  }
  return load;
}

}  // namespace paramrio::amr
