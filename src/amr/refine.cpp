#include "amr/refine.hpp"

#include <algorithm>

namespace paramrio::amr {

namespace {

/// Shrink `box` to the bounding box of its flagged cells; returns false if
/// no cell is flagged.
bool shrink_to_flags(const Array3<std::uint8_t>& flags, CellBox& box) {
  std::array<std::uint64_t, 3> lo{UINT64_MAX, UINT64_MAX, UINT64_MAX};
  std::array<std::uint64_t, 3> hi{0, 0, 0};
  bool any = false;
  for (std::uint64_t z = box.start[0]; z < box.start[0] + box.count[0]; ++z) {
    for (std::uint64_t y = box.start[1]; y < box.start[1] + box.count[1];
         ++y) {
      for (std::uint64_t x = box.start[2]; x < box.start[2] + box.count[2];
           ++x) {
        if (!flags.at(z, y, x)) continue;
        any = true;
        lo = {std::min(lo[0], z), std::min(lo[1], y), std::min(lo[2], x)};
        hi = {std::max(hi[0], z), std::max(hi[1], y), std::max(hi[2], x)};
      }
    }
  }
  if (!any) return false;
  for (int d = 0; d < 3; ++d) {
    auto ud = static_cast<std::size_t>(d);
    box.start[ud] = lo[ud];
    box.count[ud] = hi[ud] - lo[ud] + 1;
  }
  return true;
}

std::uint64_t count_flags(const Array3<std::uint8_t>& flags,
                          const CellBox& box) {
  std::uint64_t n = 0;
  for (std::uint64_t z = box.start[0]; z < box.start[0] + box.count[0]; ++z) {
    for (std::uint64_t y = box.start[1]; y < box.start[1] + box.count[1];
         ++y) {
      for (std::uint64_t x = box.start[2]; x < box.start[2] + box.count[2];
           ++x) {
        n += flags.at(z, y, x) ? 1 : 0;
      }
    }
  }
  return n;
}

void cluster_recursive(const Array3<std::uint8_t>& flags,
                       const RefineParams& params, CellBox box,
                       std::vector<CellBox>& out) {
  if (!shrink_to_flags(flags, box)) return;
  std::uint64_t flagged = count_flags(flags, box);
  double fill =
      static_cast<double>(flagged) / static_cast<double>(box.cells());
  std::size_t longest = 0;
  for (std::size_t d = 1; d < 3; ++d) {
    if (box.count[d] > box.count[longest]) longest = d;
  }
  if (fill >= params.min_fill || box.count[longest] < 2 * params.min_box) {
    out.push_back(box);
    return;
  }
  // Bisect the longest axis at its midpoint.
  CellBox a = box, b = box;
  std::uint64_t half = box.count[longest] / 2;
  a.count[longest] = half;
  b.start[longest] = box.start[longest] + half;
  b.count[longest] = box.count[longest] - half;
  cluster_recursive(flags, params, a, out);
  cluster_recursive(flags, params, b, out);
}

}  // namespace

Array3<std::uint8_t> flag_overdense(const Array3f& density,
                                    double threshold) {
  Array3<std::uint8_t> flags(density.nz(), density.ny(), density.nx());
  for (std::uint64_t z = 0; z < density.nz(); ++z) {
    for (std::uint64_t y = 0; y < density.ny(); ++y) {
      for (std::uint64_t x = 0; x < density.nx(); ++x) {
        flags.at(z, y, x) =
            density.at(z, y, x) > threshold ? std::uint8_t{1} : std::uint8_t{0};
      }
    }
  }
  return flags;
}

std::vector<CellBox> cluster_flags(const Array3<std::uint8_t>& flags,
                                   const RefineParams& params) {
  std::vector<CellBox> out;
  CellBox whole;
  whole.count = {flags.nz(), flags.ny(), flags.nx()};
  cluster_recursive(flags, params, whole, out);
  std::sort(out.begin(), out.end(), [](const CellBox& a, const CellBox& b) {
    return a.start < b.start;
  });
  return out;
}

GridDescriptor make_child(const GridDescriptor& parent,
                          const std::array<std::uint64_t, 3>& cell_origin,
                          const CellBox& box, int refine_factor) {
  GridDescriptor child;
  child.level = parent.level + 1;
  child.parent = parent.id;
  for (int d = 0; d < 3; ++d) {
    auto ud = static_cast<std::size_t>(d);
    double w = parent.cell_width(d);
    std::uint64_t s = cell_origin[ud] + box.start[ud];
    child.left_edge[ud] =
        parent.left_edge[ud] + static_cast<double>(s) * w;
    child.right_edge[ud] =
        parent.left_edge[ud] + static_cast<double>(s + box.count[ud]) * w;
    child.dims[ud] =
        box.count[ud] * static_cast<std::uint64_t>(refine_factor);
  }
  return child;
}

}  // namespace paramrio::amr
