// Domain decomposition helpers: processor-grid factorisation (an
// MPI_Dims_create analogue) and (Block,Block,Block) partitioning of cell
// ranges — ENZO's root-grid parallelisation scheme.
#pragma once

#include <array>
#include <cstdint>

#include "base/error.hpp"

namespace paramrio::amr {

/// Factor `nprocs` into a 3-D processor grid (pz, py, px), as balanced as
/// possible, deterministically.
std::array<int, 3> make_proc_grid(int nprocs);

/// Block decomposition of `n` cells over `parts`; returns {start, count} of
/// part `index` (earlier parts take the remainder).
std::array<std::uint64_t, 2> block_range(std::uint64_t n, int parts,
                                         int index);

/// A rank's (z, y, x) coordinates in the processor grid.
std::array<int, 3> proc_coords(const std::array<int, 3>& grid, int rank);

/// This rank's (start, count) cell block of a grid with `dims` (z, y, x).
struct BlockExtent {
  std::array<std::uint64_t, 3> start{0, 0, 0};
  std::array<std::uint64_t, 3> count{0, 0, 0};
  std::uint64_t cells() const { return count[0] * count[1] * count[2]; }
};

BlockExtent block_of(const std::array<std::uint64_t, 3>& dims,
                     const std::array<int, 3>& proc_grid, int rank);

}  // namespace paramrio::amr
