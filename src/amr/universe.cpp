#include "amr/universe.hpp"

#include <cmath>

namespace paramrio::amr {

namespace {
double wrap01(double v) { return v - std::floor(v); }

/// Minimum-image distance on the unit torus.
double torus_delta(double a, double b) {
  double d = a - b;
  d -= std::round(d);
  return d;
}
}  // namespace

Universe::Universe(std::uint64_t seed, int n_clumps) {
  PARAMRIO_REQUIRE(n_clumps >= 1, "Universe: need at least one clump");
  Rng rng(seed);
  clumps_.reserve(static_cast<std::size_t>(n_clumps));
  for (int i = 0; i < n_clumps; ++i) {
    Clump c;
    for (int d = 0; d < 3; ++d) {
      c.center[static_cast<std::size_t>(d)] = rng.next_double();
      c.drift[static_cast<std::size_t>(d)] = rng.next_in(-0.05, 0.05);
    }
    c.amplitude = rng.next_in(6.0, 14.0);
    c.growth = rng.next_in(0.2, 0.8);
    c.width = rng.next_in(0.03, 0.08);
    clumps_.push_back(c);
  }
}

void Universe::sample(double z, double y, double x, double t, double& rho,
                      std::array<double, 3>& vel) const {
  rho = 1.0;
  vel = {0.0, 0.0, 0.0};
  for (const Clump& c : clumps_) {
    double cz = wrap01(c.center[0] + c.drift[0] * t);
    double cy = wrap01(c.center[1] + c.drift[1] * t);
    double cx = wrap01(c.center[2] + c.drift[2] * t);
    double dz = torus_delta(z, cz);
    double dy = torus_delta(y, cy);
    double dx = torus_delta(x, cx);
    double r2 = dz * dz + dy * dy + dx * dx;
    double w = c.amplitude * (1.0 + c.growth * t) *
               std::exp(-r2 / (2.0 * c.width * c.width));
    rho += w;
    vel[0] += w * c.drift[0];
    vel[1] += w * c.drift[1];
    vel[2] += w * c.drift[2];
  }
  for (double& v : vel) v /= rho;
}

double Universe::density(double z, double y, double x, double t) const {
  double rho;
  std::array<double, 3> vel;
  sample(z, y, x, t, rho, vel);
  return rho;
}

void Universe::fill_fields(Grid& grid, double t) const {
  if (grid.fields.empty()) grid.allocate_fields();
  const GridDescriptor& g = grid.desc;
  const double wz = g.cell_width(0), wy = g.cell_width(1),
               wx = g.cell_width(2);
  for (std::uint64_t iz = 0; iz < g.dims[0]; ++iz) {
    double z = g.left_edge[0] + (static_cast<double>(iz) + 0.5) * wz;
    for (std::uint64_t iy = 0; iy < g.dims[1]; ++iy) {
      double y = g.left_edge[1] + (static_cast<double>(iy) + 0.5) * wy;
      for (std::uint64_t ix = 0; ix < g.dims[2]; ++ix) {
        double x = g.left_edge[2] + (static_cast<double>(ix) + 0.5) * wx;
        double rho;
        std::array<double, 3> vel;
        sample(z, y, x, t, rho, vel);
        double v2 =
            vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2];
        double internal = 1.0 / rho;  // crude "pressure equilibrium"
        grid.fields[0].at(iz, iy, ix) = static_cast<float>(rho);
        grid.fields[1].at(iz, iy, ix) =
            static_cast<float>(internal + 0.5 * v2);       // total_energy
        grid.fields[2].at(iz, iy, ix) =
            static_cast<float>(internal);                  // internal_energy
        grid.fields[3].at(iz, iy, ix) = static_cast<float>(vel[2]);  // vx
        grid.fields[4].at(iz, iy, ix) = static_cast<float>(vel[1]);  // vy
        grid.fields[5].at(iz, iy, ix) = static_cast<float>(vel[0]);  // vz
        grid.fields[6].at(iz, iy, ix) =
            static_cast<float>(std::pow(rho, 2.0 / 3.0));  // temperature
        grid.fields[7].at(iz, iy, ix) =
            static_cast<float>(5.0 * (rho - 1.0));         // dark_matter
      }
    }
  }
}

ParticleSet Universe::make_particles(std::uint64_t count,
                                     std::int64_t id_base,
                                     const GridDescriptor& region, double t,
                                     Rng rng) const {
  ParticleSet p;
  p.resize(count);
  // Peak density estimate for rejection sampling.
  double peak = 1.0;
  for (const Clump& c : clumps_) {
    peak += c.amplitude * (1.0 + c.growth * t);
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    double z, y, x, rho;
    std::array<double, 3> vel;
    for (;;) {
      z = rng.next_in(region.left_edge[0], region.right_edge[0]);
      y = rng.next_in(region.left_edge[1], region.right_edge[1]);
      x = rng.next_in(region.left_edge[2], region.right_edge[2]);
      sample(z, y, x, t, rho, vel);
      if (rng.next_double() * peak < rho) break;
    }
    p.id[i] = id_base + static_cast<std::int64_t>(i);
    p.pos[0][i] = z;
    p.pos[1][i] = y;
    p.pos[2][i] = x;
    for (int d = 0; d < 3; ++d) {
      p.vel[static_cast<std::size_t>(d)][i] =
          vel[static_cast<std::size_t>(d)] + 0.01 * rng.next_gaussian();
    }
    p.mass[i] = rho;
    p.attr[0][i] = static_cast<float>(t);
    p.attr[1][i] = static_cast<float>(rng.next_double());
  }
  return p;
}

void Universe::drift_particles(ParticleSet& particles, double dt) {
  for (std::size_t i = 0; i < particles.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      auto ud = static_cast<std::size_t>(d);
      particles.pos[ud][i] =
          wrap01(particles.pos[ud][i] + particles.vel[ud][i] * dt);
    }
  }
}

}  // namespace paramrio::amr
