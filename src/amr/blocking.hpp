// Copying (Block,Block,Block) pieces between full arrays and contiguous
// per-rank buffers — the memory-side half of ENZO's root-grid partitioning.
#pragma once

#include <algorithm>

#include "amr/array3.hpp"
#include "amr/decomp.hpp"

namespace paramrio::amr {

/// Copy the block `e` of `full` into the contiguous buffer `dst`
/// (row-major over the block, x fastest).  dst must hold e.cells() elements.
template <typename T>
void copy_block_out(const Array3<T>& full, const BlockExtent& e, T* dst) {
  std::size_t k = 0;
  for (std::uint64_t z = e.start[0]; z < e.start[0] + e.count[0]; ++z) {
    for (std::uint64_t y = e.start[1]; y < e.start[1] + e.count[1]; ++y) {
      const T* row = &full.at(z, y, e.start[2]);
      std::copy_n(row, e.count[2], dst + k);
      k += e.count[2];
    }
  }
}

/// Inverse of copy_block_out.
template <typename T>
void copy_block_in(Array3<T>& full, const BlockExtent& e, const T* src) {
  std::size_t k = 0;
  for (std::uint64_t z = e.start[0]; z < e.start[0] + e.count[0]; ++z) {
    for (std::uint64_t y = e.start[1]; y < e.start[1] + e.count[1]; ++y) {
      T* row = &full.at(z, y, e.start[2]);
      std::copy_n(src + k, e.count[2], row);
      k += e.count[2];
    }
  }
}

}  // namespace paramrio::amr
