// The AMR grid hierarchy: a tree of grid descriptors, replicated on every
// processor (as in ENZO — "the hierarchy data structure is maintained on all
// processors and contains grids metadata; the grids themselves are
// distributed among processors").
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "amr/grid.hpp"
#include "base/byte_io.hpp"

namespace paramrio::amr {

class Hierarchy {
 public:
  Hierarchy() = default;

  /// Install the root grid (id 0, level 0, covering the whole domain).
  void set_root(const std::array<std::uint64_t, 3>& dims);

  /// Add a grid; the parent must already exist and the child must nest
  /// geometrically inside it at level parent.level + 1.
  std::uint64_t add_grid(GridDescriptor desc);

  /// Remove all grids below the root (a fresh refinement pass rebuilds).
  void clear_subgrids();

  const GridDescriptor& root() const { return grid(0); }
  const GridDescriptor& grid(std::uint64_t id) const;
  GridDescriptor& grid_mut(std::uint64_t id);
  bool has(std::uint64_t id) const { return index_.count(id) != 0; }

  const std::vector<std::uint64_t>& children(std::uint64_t id) const;

  /// All grids in id order (root first — ids are assigned monotonically).
  const std::vector<GridDescriptor>& grids() const { return grids_; }
  std::size_t grid_count() const { return grids_.size(); }

  /// Grids at one refinement level, in id order.
  std::vector<std::uint64_t> level_grids(int level) const;
  int max_level() const;

  std::uint64_t total_cells() const;

  /// Check structural invariants: the root exists and covers the domain,
  /// every child nests in its parent at level+1, grids at the same level do
  /// not overlap, and levels are contiguous from 0.  Throws LogicError with
  /// a description of the first violation.
  void validate() const;

  /// Wire format, for replication checks and checkpoint metadata.
  std::vector<std::byte> serialize() const;
  static Hierarchy deserialize(std::span<const std::byte> data);

  friend bool operator==(const Hierarchy& a, const Hierarchy& b) {
    return a.grids_ == b.grids_;
  }

 private:
  std::vector<GridDescriptor> grids_;
  std::map<std::uint64_t, std::size_t> index_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> children_;
  std::uint64_t next_id_ = 0;
};

}  // namespace paramrio::amr
