// Dense 3-D arrays in ENZO's storage order: x varies fastest, z slowest
// (the paper: "the 3-D array is stored in the file such that x-dimension is
// the most quickly varying dimension and z-dimension is the most slowly
// varying dimension").  Indexing is (z, y, x) to match row-major {nz,ny,nx}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/error.hpp"

namespace paramrio::amr {

template <typename T>
class Array3 {
 public:
  Array3() = default;
  Array3(std::uint64_t nz, std::uint64_t ny, std::uint64_t nx, T fill = T{})
      : nz_(nz), ny_(ny), nx_(nx), data_(nz * ny * nx, fill) {}

  std::uint64_t nz() const { return nz_; }
  std::uint64_t ny() const { return ny_; }
  std::uint64_t nx() const { return nx_; }
  std::uint64_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(std::uint64_t z, std::uint64_t y, std::uint64_t x) {
    return data_[(z * ny_ + y) * nx_ + x];
  }
  const T& at(std::uint64_t z, std::uint64_t y, std::uint64_t x) const {
    return data_[(z * ny_ + y) * nx_ + x];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<const std::byte> bytes() const {
    return std::as_bytes(std::span(data_.data(), data_.size()));
  }
  std::span<std::byte> mutable_bytes() {
    return std::as_writable_bytes(std::span(data_.data(), data_.size()));
  }

  friend bool operator==(const Array3&, const Array3&) = default;

 private:
  std::uint64_t nz_ = 0, ny_ = 0, nx_ = 0;
  std::vector<T> data_;
};

using Array3f = Array3<float>;

}  // namespace paramrio::amr
