// AMR grid descriptors, grids, and particle sets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "amr/array3.hpp"

namespace paramrio::amr {

/// The baryon fields every ENZO-style grid carries, in the fixed access
/// order the application uses for all file I/O (the paper exploits this
/// fixed order as optimisation metadata).
inline const std::vector<std::string>& baryon_field_names() {
  static const std::vector<std::string> names = {
      "density",    "total_energy", "internal_energy", "velocity_x",
      "velocity_y", "velocity_z",   "temperature",     "dark_matter",
  };
  return names;
}
inline constexpr int kNumBaryonFields = 8;

/// Geometry + identity of one grid in the hierarchy.  Edges are in domain
/// units [0,1); dims are cell counts in (z, y, x) order.
struct GridDescriptor {
  std::uint64_t id = 0;
  int level = 0;
  std::uint64_t parent = 0;  ///< parent grid id (self for the root)
  std::array<double, 3> left_edge{0, 0, 0};    // (z, y, x)
  std::array<double, 3> right_edge{1, 1, 1};
  std::array<std::uint64_t, 3> dims{0, 0, 0};  // (z, y, x) cells
  int owner = 0;  ///< rank holding the grid's data

  std::uint64_t cell_count() const { return dims[0] * dims[1] * dims[2]; }
  double cell_width(int axis) const {
    return (right_edge[static_cast<std::size_t>(axis)] -
            left_edge[static_cast<std::size_t>(axis)]) /
           static_cast<double>(dims[static_cast<std::size_t>(axis)]);
  }
  bool contains(double z, double y, double x) const {
    return z >= left_edge[0] && z < right_edge[0] && y >= left_edge[1] &&
           y < right_edge[1] && x >= left_edge[2] && x < right_edge[2];
  }
  friend bool operator==(const GridDescriptor&,
                         const GridDescriptor&) = default;
};

/// Structure-of-arrays particle storage, mirroring ENZO's 1-D particle
/// datasets: id, positions, velocities, mass, plus two float attributes
/// (e.g. creation time and metallicity fraction in the real code).
struct ParticleSet {
  std::vector<std::int64_t> id;
  std::array<std::vector<double>, 3> pos;  // (z, y, x)
  std::array<std::vector<double>, 3> vel;
  std::vector<double> mass;
  std::array<std::vector<float>, 2> attr;

  std::size_t size() const { return id.size(); }

  void resize(std::size_t n) {
    id.resize(n);
    for (auto& p : pos) p.resize(n);
    for (auto& v : vel) v.resize(n);
    mass.resize(n);
    for (auto& a : attr) a.resize(n);
  }

  void clear() { resize(0); }

  /// Append particle `i` of `other`.
  void append_from(const ParticleSet& other, std::size_t i) {
    id.push_back(other.id[i]);
    for (int d = 0; d < 3; ++d) {
      pos[static_cast<std::size_t>(d)].push_back(
          other.pos[static_cast<std::size_t>(d)][i]);
      vel[static_cast<std::size_t>(d)].push_back(
          other.vel[static_cast<std::size_t>(d)][i]);
    }
    mass.push_back(other.mass[i]);
    for (int a = 0; a < 2; ++a) {
      attr[static_cast<std::size_t>(a)].push_back(
          other.attr[static_cast<std::size_t>(a)][i]);
    }
  }

  /// Bytes per particle across all arrays (the paper's Table 1 accounting).
  static constexpr std::uint64_t bytes_per_particle() {
    return 8 + 3 * 8 + 3 * 8 + 8 + 2 * 4;  // 72
  }

  friend bool operator==(const ParticleSet&, const ParticleSet&) = default;
};

/// One grid's bulk data: the baryon fields (fixed order) and its particles.
struct Grid {
  GridDescriptor desc;
  std::vector<Array3f> fields;  ///< kNumBaryonFields entries, fixed order
  ParticleSet particles;

  void allocate_fields() {
    fields.assign(static_cast<std::size_t>(kNumBaryonFields),
                  Array3f(desc.dims[0], desc.dims[1], desc.dims[2]));
  }

  std::uint64_t field_bytes() const {
    return static_cast<std::uint64_t>(kNumBaryonFields) * desc.cell_count() *
           sizeof(float);
  }
};

}  // namespace paramrio::amr
