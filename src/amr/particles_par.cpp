#include "amr/particles_par.hpp"

#include <algorithm>
#include <numeric>

#include "base/byte_io.hpp"

namespace paramrio::amr {

namespace {
/// Wire layout: u64 count, then each array in bulk (column-wise) — id,
/// pos z/y/x, vel z/y/x, mass, attr0, attr1.  Bulk memcpy per array keeps
/// host-side packing at memory speed even for millions of particles.
template <typename T>
void append_column(mpi::Bytes& out, const std::vector<T>& src,
                   const std::vector<std::uint32_t>* indices) {
  std::size_t n = indices != nullptr ? indices->size() : src.size();
  if (n == 0) return;  // empty vectors may have null data()
  std::size_t base = out.size();
  out.resize(base + n * sizeof(T));
  T* dst = reinterpret_cast<T*>(out.data() + base);
  if (indices == nullptr) {
    std::memcpy(dst, src.data(), n * sizeof(T));
  } else {
    for (std::size_t k = 0; k < n; ++k) dst[k] = src[(*indices)[k]];
  }
}

mpi::Bytes pack_impl(const ParticleSet& p,
                     const std::vector<std::uint32_t>* indices) {
  std::uint64_t n = indices != nullptr ? indices->size() : p.size();
  mpi::Bytes out;
  out.reserve(8 + n * ParticleSet::bytes_per_particle());
  out.resize(8);
  std::memcpy(out.data(), &n, 8);
  append_column(out, p.id, indices);
  for (int d = 0; d < 3; ++d) {
    append_column(out, p.pos[static_cast<std::size_t>(d)], indices);
  }
  for (int d = 0; d < 3; ++d) {
    append_column(out, p.vel[static_cast<std::size_t>(d)], indices);
  }
  append_column(out, p.mass, indices);
  for (int a = 0; a < 2; ++a) {
    append_column(out, p.attr[static_cast<std::size_t>(a)], indices);
  }
  return out;
}

template <typename T>
const std::byte* read_column(const std::byte* src, std::vector<T>& dst,
                             std::size_t base, std::size_t n) {
  if (n == 0) return src;  // empty vectors may have null data()
  std::memcpy(dst.data() + base, src, n * sizeof(T));
  return src + n * sizeof(T);
}
}  // namespace

mpi::Bytes pack_particles(const ParticleSet& p,
                          const std::vector<std::uint32_t>& indices) {
  return pack_impl(p, &indices);
}

mpi::Bytes pack_particles(const ParticleSet& p) { return pack_impl(p, nullptr); }

void unpack_particles(std::span<const std::byte> data, ParticleSet& out) {
  PARAMRIO_REQUIRE(data.size() >= 8, "unpack_particles: truncated header");
  std::uint64_t n;
  std::memcpy(&n, data.data(), 8);
  PARAMRIO_REQUIRE(data.size() == 8 + n * ParticleSet::bytes_per_particle(),
                   "unpack_particles: size mismatch");
  std::size_t base = out.size();
  out.resize(base + n);
  const std::byte* src = data.data() + 8;
  src = read_column(src, out.id, base, n);
  for (int d = 0; d < 3; ++d) {
    src = read_column(src, out.pos[static_cast<std::size_t>(d)], base, n);
  }
  for (int d = 0; d < 3; ++d) {
    src = read_column(src, out.vel[static_cast<std::size_t>(d)], base, n);
  }
  src = read_column(src, out.mass, base, n);
  for (int a = 0; a < 2; ++a) {
    src = read_column(src, out.attr[static_cast<std::size_t>(a)], base, n);
  }
}

int block_part_of(std::uint64_t n, int parts, std::uint64_t idx) {
  PARAMRIO_REQUIRE(idx < n, "block_part_of: index out of range");
  auto up = static_cast<std::uint64_t>(parts);
  std::uint64_t base = n / up;
  std::uint64_t rem = n % up;
  std::uint64_t fat = rem * (base + 1);  // cells covered by the fat parts
  if (idx < fat) return static_cast<int>(idx / (base + 1));
  return static_cast<int>(rem + (idx - fat) / base);
}

int rank_of_position(const std::array<double, 3>& pos,
                     const std::array<std::uint64_t, 3>& root_dims,
                     const std::array<int, 3>& proc_grid) {
  std::array<int, 3> coord{0, 0, 0};
  for (int d = 0; d < 3; ++d) {
    auto ud = static_cast<std::size_t>(d);
    double v = pos[ud];
    PARAMRIO_REQUIRE(v >= 0.0 && v < 1.0, "rank_of_position: out of domain");
    auto cell = static_cast<std::uint64_t>(v * static_cast<double>(root_dims[ud]));
    if (cell >= root_dims[ud]) cell = root_dims[ud] - 1;  // v just below 1.0
    coord[ud] = block_part_of(root_dims[ud], proc_grid[ud], cell);
  }
  return (coord[0] * proc_grid[1] + coord[1]) * proc_grid[2] + coord[2];
}

ParticleSet redistribute_by_position(
    mpi::Comm& comm, const ParticleSet& mine,
    const std::array<std::uint64_t, 3>& root_dims,
    const std::array<int, 3>& proc_grid) {
  const int p = comm.size();
  std::vector<std::vector<std::uint32_t>> outgoing(
      static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < mine.size(); ++i) {
    int dst = rank_of_position({mine.pos[0][i], mine.pos[1][i], mine.pos[2][i]},
                               root_dims, proc_grid);
    outgoing[static_cast<std::size_t>(dst)].push_back(
        static_cast<std::uint32_t>(i));
  }
  std::vector<mpi::Bytes> out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    out[static_cast<std::size_t>(r)] =
        pack_particles(mine, outgoing[static_cast<std::size_t>(r)]);
  }
  comm.charge_memcpy(ParticleSet::bytes_per_particle() * mine.size());
  std::vector<mpi::Bytes> in = comm.alltoallv(out);
  ParticleSet result;
  for (const mpi::Bytes& b : in) unpack_particles(b, result);
  return result;
}

void local_sort_by_id(ParticleSet& p) {
  std::vector<std::uint32_t> order(p.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return p.id[a] < p.id[b];
  });
  ParticleSet sorted;
  sorted.resize(p.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    std::size_t i = order[k];
    sorted.id[k] = p.id[i];
    for (int d = 0; d < 3; ++d) {
      sorted.pos[static_cast<std::size_t>(d)][k] =
          p.pos[static_cast<std::size_t>(d)][i];
      sorted.vel[static_cast<std::size_t>(d)][k] =
          p.vel[static_cast<std::size_t>(d)][i];
    }
    sorted.mass[k] = p.mass[i];
    for (int a = 0; a < 2; ++a) {
      sorted.attr[static_cast<std::size_t>(a)][k] =
          p.attr[static_cast<std::size_t>(a)][i];
    }
  }
  p = std::move(sorted);
}

ParticleSet parallel_sort_by_id(mpi::Comm& comm, const ParticleSet& mine) {
  const int p = comm.size();
  ParticleSet local = mine;
  comm.charge_sort(local.size());
  local_sort_by_id(local);
  if (p == 1) return local;

  // Regular sampling: p samples per rank from the locally sorted ids.
  std::vector<std::int64_t> samples;
  for (int s = 0; s < p; ++s) {
    if (local.size() == 0) break;
    std::size_t idx = (static_cast<std::size_t>(s) * local.size()) /
                      static_cast<std::size_t>(p);
    samples.push_back(local.id[idx]);
  }
  auto all_samples_raw =
      comm.allgatherv(std::as_bytes(std::span(samples.data(), samples.size())));
  std::vector<std::int64_t> all_samples;
  for (const auto& b : all_samples_raw) {
    std::size_t n = b.size() / sizeof(std::int64_t);
    if (n == 0) continue;  // empty vectors may have null data()
    std::size_t base = all_samples.size();
    all_samples.resize(base + n);
    std::memcpy(all_samples.data() + base, b.data(), b.size());
  }
  std::sort(all_samples.begin(), all_samples.end());

  // p-1 splitters at the sample quantiles.
  std::vector<std::int64_t> splitters;
  for (int s = 1; s < p; ++s) {
    if (all_samples.empty()) break;
    std::size_t idx = (static_cast<std::size_t>(s) * all_samples.size()) /
                      static_cast<std::size_t>(p);
    splitters.push_back(all_samples[std::min(idx, all_samples.size() - 1)]);
  }

  // Partition locally by splitter and exchange.
  std::vector<std::vector<std::uint32_t>> buckets(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < local.size(); ++i) {
    auto it =
        std::upper_bound(splitters.begin(), splitters.end(), local.id[i]);
    auto dst = static_cast<std::size_t>(it - splitters.begin());
    buckets[dst].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<mpi::Bytes> out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    out[static_cast<std::size_t>(r)] =
        pack_particles(local, buckets[static_cast<std::size_t>(r)]);
  }
  std::vector<mpi::Bytes> in = comm.alltoallv(out);
  ParticleSet merged;
  for (const mpi::Bytes& b : in) unpack_particles(b, merged);
  comm.charge_sort(merged.size());
  local_sort_by_id(merged);
  return merged;
}

}  // namespace paramrio::amr
