// The synthetic "universe": a deterministic analytic stand-in for the
// cosmology (PPM hydro + N-body gravity) that real ENZO solves.
//
// The paper uses ENZO purely as an I/O-pattern generator, so the substitute
// only has to produce (a) smooth baryon fields whose high-density regions
// move and grow over time — driving realistic adaptive refinement — and
// (b) particles whose positions drift — driving the irregular 1-D access
// patterns.  A sum of drifting, growing Gaussian clumps over a uniform
// background does both, bit-reproducibly from a seed.
#pragma once

#include <array>
#include <cstdint>

#include "amr/grid.hpp"
#include "base/rng.hpp"

namespace paramrio::amr {

struct Clump {
  std::array<double, 3> center{0, 0, 0};  ///< at t = 0, domain units
  std::array<double, 3> drift{0, 0, 0};   ///< domain units per unit time
  double amplitude = 8.0;                 ///< overdensity at the centre
  double growth = 0.5;                    ///< amplitude growth rate
  double width = 0.05;                    ///< Gaussian sigma, domain units
};

class Universe {
 public:
  Universe(std::uint64_t seed, int n_clumps);

  /// Overdensity (>= 1) at a point, at time t.  Positions wrap periodically.
  double density(double z, double y, double x, double t) const;

  /// Fill all baryon fields of `grid` (whose descriptor fixes the geometry)
  /// with the analytic state at time t.  Field values are deterministic
  /// functions of (position, t), so refined grids resample consistently.
  void fill_fields(Grid& grid, double t) const;

  /// Create `count` particles inside `region`, positions biased toward
  /// dense areas by rejection sampling; ids start at `id_base`.
  ParticleSet make_particles(std::uint64_t count, std::int64_t id_base,
                             const GridDescriptor& region, double t,
                             Rng rng) const;

  /// Advance particle positions by their velocities (periodic wrap).
  static void drift_particles(ParticleSet& particles, double dt);

  const std::vector<Clump>& clumps() const { return clumps_; }

 private:
  /// density plus the clump-weighted mean drift velocity at a point.
  void sample(double z, double y, double x, double t, double& rho,
              std::array<double, 3>& vel) const;

  std::vector<Clump> clumps_;
};

}  // namespace paramrio::amr
