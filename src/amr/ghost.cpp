#include "amr/ghost.hpp"

namespace paramrio::amr {

void GhostBlock::load_interior(const Array3f& src) {
  PARAMRIO_REQUIRE(src.nz() == extent_.count[0] &&
                       src.ny() == extent_.count[1] &&
                       src.nx() == extent_.count[2],
                   "GhostBlock: interior shape mismatch");
  for (std::uint64_t z = 0; z < src.nz(); ++z) {
    for (std::uint64_t y = 0; y < src.ny(); ++y) {
      for (std::uint64_t x = 0; x < src.nx(); ++x) {
        interior(z, y, x) = src.at(z, y, x);
      }
    }
  }
}

void GhostBlock::store_interior(Array3f& dst) const {
  PARAMRIO_REQUIRE(dst.nz() == extent_.count[0] &&
                       dst.ny() == extent_.count[1] &&
                       dst.nx() == extent_.count[2],
                   "GhostBlock: interior shape mismatch");
  for (std::uint64_t z = 0; z < dst.nz(); ++z) {
    for (std::uint64_t y = 0; y < dst.ny(); ++y) {
      for (std::uint64_t x = 0; x < dst.nx(); ++x) {
        dst.at(z, y, x) = interior(z, y, x);
      }
    }
  }
}

int face_neighbor(const std::array<int, 3>& proc_grid, int rank, int axis,
                  int dir) {
  PARAMRIO_REQUIRE(axis >= 0 && axis < 3 && (dir == 1 || dir == -1),
                   "face_neighbor: bad axis/direction");
  std::array<int, 3> c = proc_coords(proc_grid, rank);
  auto ua = static_cast<std::size_t>(axis);
  c[ua] = (c[ua] + dir + proc_grid[ua]) % proc_grid[ua];
  return (c[0] * proc_grid[1] + c[1]) * proc_grid[2] + c[2];
}

namespace {

/// Copy the interior face layer adjacent to boundary `dir` along `axis`
/// into (or out of) a contiguous buffer.  When `into_ghost` is true the
/// buffer is written into the ghost layer instead of read from the
/// interior.
void face_copy(GhostBlock& block, int axis, int dir, float* buf,
               bool into_ghost) {
  const auto& count = block.extent().count;
  Array3f& a = block.padded();
  // Padded-space index of the plane we touch.
  std::uint64_t plane;
  auto ua = static_cast<std::size_t>(axis);
  if (into_ghost) {
    plane = dir < 0 ? 0 : count[ua] + 1;  // ghost layer
  } else {
    plane = dir < 0 ? 1 : count[ua];  // interior boundary layer
  }
  // The two transverse axes.
  std::size_t t1 = (ua + 1) % 3, t2 = (ua + 2) % 3;
  std::size_t k = 0;
  for (std::uint64_t i = 0; i < count[t1]; ++i) {
    for (std::uint64_t j = 0; j < count[t2]; ++j) {
      std::uint64_t idx[3];
      idx[ua] = plane;
      idx[t1] = i + 1;
      idx[t2] = j + 1;
      float& cell = a.at(idx[0], idx[1], idx[2]);
      if (into_ghost) {
        cell = buf[k];
      } else {
        buf[k] = cell;
      }
      ++k;
    }
  }
}

}  // namespace

void exchange_ghost_zones(mpi::Comm& comm, GhostBlock& block,
                          const std::array<int, 3>& proc_grid) {
  const auto& count = block.extent().count;
  for (int axis = 0; axis < 3; ++axis) {
    auto ua = static_cast<std::size_t>(axis);
    std::size_t t1 = (ua + 1) % 3, t2 = (ua + 2) % 3;
    std::uint64_t face_cells = count[t1] * count[t2];
    // Two distinct tags per axis so a 2-wide dimension (where both
    // neighbours are the same rank) cannot cross-match messages.
    int tag_plus = comm.fresh_collective_tag();
    int tag_minus = comm.fresh_collective_tag();

    std::vector<float> send_plus(face_cells), send_minus(face_cells);
    face_copy(block, axis, +1, send_plus.data(), /*into_ghost=*/false);
    face_copy(block, axis, -1, send_minus.data(), /*into_ghost=*/false);

    int up = face_neighbor(proc_grid, comm.rank(), axis, +1);
    int down = face_neighbor(proc_grid, comm.rank(), axis, -1);
    // My +face becomes the -ghost of the +neighbour and vice versa.
    comm.send_values<float>(up, tag_plus, send_plus);
    comm.send_values<float>(down, tag_minus, send_minus);

    auto from_down = comm.recv_values<float>(down, tag_plus);
    auto from_up = comm.recv_values<float>(up, tag_minus);
    PARAMRIO_REQUIRE(from_down.size() == face_cells &&
                         from_up.size() == face_cells,
                     "ghost exchange: face size mismatch");
    face_copy(block, axis, -1, from_down.data(), /*into_ghost=*/true);
    face_copy(block, axis, +1, from_up.data(), /*into_ghost=*/true);
  }
}

}  // namespace paramrio::amr
