#include "amr/hierarchy.hpp"

#include <algorithm>

namespace paramrio::amr {

void Hierarchy::set_root(const std::array<std::uint64_t, 3>& dims) {
  PARAMRIO_REQUIRE(grids_.empty(), "Hierarchy: root already set");
  GridDescriptor root;
  root.id = 0;
  root.level = 0;
  root.parent = 0;
  root.dims = dims;
  grids_.push_back(root);
  index_[0] = 0;
  next_id_ = 1;
}

std::uint64_t Hierarchy::add_grid(GridDescriptor desc) {
  PARAMRIO_REQUIRE(!grids_.empty(), "Hierarchy: set_root first");
  PARAMRIO_REQUIRE(has(desc.parent), "Hierarchy: unknown parent grid");
  const GridDescriptor& parent = grid(desc.parent);
  PARAMRIO_REQUIRE(desc.level == parent.level + 1,
                   "Hierarchy: child level must be parent level + 1");
  for (int d = 0; d < 3; ++d) {
    auto ud = static_cast<std::size_t>(d);
    PARAMRIO_REQUIRE(desc.left_edge[ud] >= parent.left_edge[ud] - 1e-12 &&
                         desc.right_edge[ud] <= parent.right_edge[ud] + 1e-12,
                     "Hierarchy: child does not nest inside parent");
    PARAMRIO_REQUIRE(desc.right_edge[ud] > desc.left_edge[ud],
                     "Hierarchy: degenerate grid");
    PARAMRIO_REQUIRE(desc.dims[ud] > 0, "Hierarchy: zero-cell grid");
  }
  desc.id = next_id_++;
  index_[desc.id] = grids_.size();
  children_[desc.parent].push_back(desc.id);
  grids_.push_back(desc);
  return desc.id;
}

void Hierarchy::clear_subgrids() {
  PARAMRIO_REQUIRE(!grids_.empty(), "Hierarchy: no root");
  GridDescriptor root = grids_[0];
  grids_.assign(1, root);
  index_.clear();
  index_[root.id] = 0;
  children_.clear();
  // Keep assigning fresh ids so stale references are detectable.
}

const GridDescriptor& Hierarchy::grid(std::uint64_t id) const {
  auto it = index_.find(id);
  PARAMRIO_REQUIRE(it != index_.end(),
                   "Hierarchy: no grid " + std::to_string(id));
  return grids_[it->second];
}

GridDescriptor& Hierarchy::grid_mut(std::uint64_t id) {
  auto it = index_.find(id);
  PARAMRIO_REQUIRE(it != index_.end(),
                   "Hierarchy: no grid " + std::to_string(id));
  return grids_[it->second];
}

const std::vector<std::uint64_t>& Hierarchy::children(std::uint64_t id) const {
  static const std::vector<std::uint64_t> kNone;
  auto it = children_.find(id);
  return it == children_.end() ? kNone : it->second;
}

std::vector<std::uint64_t> Hierarchy::level_grids(int level) const {
  std::vector<std::uint64_t> ids;
  for (const auto& g : grids_) {
    if (g.level == level) ids.push_back(g.id);
  }
  return ids;
}

int Hierarchy::max_level() const {
  int m = 0;
  for (const auto& g : grids_) m = std::max(m, g.level);
  return m;
}

std::uint64_t Hierarchy::total_cells() const {
  std::uint64_t n = 0;
  for (const auto& g : grids_) n += g.cell_count();
  return n;
}

void Hierarchy::validate() const {
  PARAMRIO_REQUIRE(!grids_.empty(), "validate: empty hierarchy");
  const GridDescriptor& root = grids_[0];
  PARAMRIO_REQUIRE(root.level == 0, "validate: first grid is not the root");
  for (int d = 0; d < 3; ++d) {
    auto u = static_cast<std::size_t>(d);
    PARAMRIO_REQUIRE(root.left_edge[u] == 0.0 && root.right_edge[u] == 1.0,
                     "validate: root does not cover the unit domain");
  }
  int max_lvl = max_level();
  for (int lvl = 1; lvl <= max_lvl; ++lvl) {
    auto ids = level_grids(lvl);
    PARAMRIO_REQUIRE(!ids.empty(),
                     "validate: empty level " + std::to_string(lvl) +
                         " below max level");
    // Pairwise disjointness within the level (AMR grids never overlap).
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const GridDescriptor& a = grid(ids[i]);
      PARAMRIO_REQUIRE(grid(a.parent).level == lvl - 1,
                       "validate: parent level mismatch for grid " +
                           std::to_string(a.id));
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        const GridDescriptor& b = grid(ids[j]);
        bool overlap = true;
        for (int d = 0; d < 3; ++d) {
          auto u = static_cast<std::size_t>(d);
          if (a.right_edge[u] <= b.left_edge[u] + 1e-12 ||
              b.right_edge[u] <= a.left_edge[u] + 1e-12) {
            overlap = false;
            break;
          }
        }
        PARAMRIO_REQUIRE(!overlap, "validate: grids " + std::to_string(a.id) +
                                       " and " + std::to_string(b.id) +
                                       " overlap at level " +
                                       std::to_string(lvl));
      }
    }
  }
}

std::vector<std::byte> Hierarchy::serialize() const {
  ByteWriter w;
  w.u64(grids_.size());
  w.u64(next_id_);
  for (const auto& g : grids_) {
    w.u64(g.id);
    w.u32(static_cast<std::uint32_t>(g.level));
    w.u64(g.parent);
    for (double e : g.left_edge) w.f64(e);
    for (double e : g.right_edge) w.f64(e);
    for (auto d : g.dims) w.u64(d);
    w.u32(static_cast<std::uint32_t>(g.owner));
  }
  return w.take();
}

Hierarchy Hierarchy::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  Hierarchy h;
  std::uint64_t n = r.u64();
  std::uint64_t next_id = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    GridDescriptor g;
    g.id = r.u64();
    g.level = static_cast<int>(r.u32());
    g.parent = r.u64();
    for (double& e : g.left_edge) e = r.f64();
    for (double& e : g.right_edge) e = r.f64();
    for (auto& d : g.dims) d = r.u64();
    g.owner = static_cast<int>(r.u32());
    if (i == 0) {
      PARAMRIO_REQUIRE(g.level == 0, "Hierarchy: first grid must be root");
      h.set_root(g.dims);
      h.grids_[0] = g;
    } else {
      // Re-add preserving the original id.
      std::uint64_t saved_next = h.next_id_;
      h.next_id_ = g.id;
      h.add_grid(g);
      h.next_id_ = std::max(saved_next, g.id + 1);
    }
  }
  h.next_id_ = std::max(h.next_id_, next_id);
  return h;
}

}  // namespace paramrio::amr
