// Ghost-zone (guard-cell) exchange for the block-partitioned root grid.
//
// Real ENZO exchanges boundary zones between neighbouring sub-domains every
// cycle; while the paper studies file I/O, this traffic is part of the
// application's communication signature, so the reproduction carries it
// too.  Each rank's block is padded with one layer of ghost cells per face;
// exchange_ghost_zones fills them from the six face neighbours under
// periodic boundary conditions.
#pragma once

#include <array>

#include "amr/blocking.hpp"
#include "amr/decomp.hpp"
#include "mpi/comm.hpp"

namespace paramrio::amr {

/// One rank's field block with ghost padding: interior dims `count` plus one
/// cell on each side.  Interior indices are [1, count+1) per axis.
class GhostBlock {
 public:
  GhostBlock() = default;
  explicit GhostBlock(const BlockExtent& extent)
      : extent_(extent),
        data_(extent.count[0] + 2, extent.count[1] + 2, extent.count[2] + 2) {}

  /// Interior accessor (0-based interior coordinates).
  float& interior(std::uint64_t z, std::uint64_t y, std::uint64_t x) {
    return data_.at(z + 1, y + 1, x + 1);
  }
  const float& interior(std::uint64_t z, std::uint64_t y,
                        std::uint64_t x) const {
    return data_.at(z + 1, y + 1, x + 1);
  }

  /// Raw padded array (ghost layers included).
  Array3f& padded() { return data_; }
  const Array3f& padded() const { return data_; }
  const BlockExtent& extent() const { return extent_; }

  /// Copy an unpadded interior field in/out.
  void load_interior(const Array3f& src);
  void store_interior(Array3f& dst) const;

 private:
  BlockExtent extent_;
  Array3f data_;
};

/// Rank of the face neighbour along `axis` in direction `dir` (+1/-1),
/// periodic.
int face_neighbor(const std::array<int, 3>& proc_grid, int rank, int axis,
                  int dir);

/// Fill the six ghost faces of `block` from the neighbouring ranks'
/// interiors (periodic domain).  Collective over the communicator; every
/// rank must pass its own block of the same global decomposition.
/// Corner/edge ghosts are not filled (face-neighbour stencils only).
void exchange_ghost_zones(mpi::Comm& comm, GhostBlock& block,
                          const std::array<int, 3>& proc_grid);

}  // namespace paramrio::amr
