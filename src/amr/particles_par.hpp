// Parallel particle operations: (de)serialisation, position-based
// redistribution (ENZO's irregular partition — "1-D particle arrays are
// partitioned based on which grid sub-domain the particle position falls
// within"), and the parallel sample sort by particle ID that the paper's
// optimised MPI-IO write path uses.
#pragma once

#include <array>
#include <cstdint>

#include "amr/decomp.hpp"
#include "amr/grid.hpp"
#include "mpi/comm.hpp"

namespace paramrio::amr {

/// Serialise the particles at `indices` of `p` into a wire buffer.
mpi::Bytes pack_particles(const ParticleSet& p,
                          const std::vector<std::uint32_t>& indices);

/// Serialise all particles.
mpi::Bytes pack_particles(const ParticleSet& p);

/// Append particles from a wire buffer onto `out`.
void unpack_particles(std::span<const std::byte> data, ParticleSet& out);

/// Which part of a block decomposition of `n` items owns item `idx`
/// (the inverse of block_range).
int block_part_of(std::uint64_t n, int parts, std::uint64_t idx);

/// The rank whose (Block,Block,Block) root-grid block contains `pos`
/// (domain coordinates, (z, y, x)).
int rank_of_position(const std::array<double, 3>& pos,
                     const std::array<std::uint64_t, 3>& root_dims,
                     const std::array<int, 3>& proc_grid);

/// Exchange particles so each rank ends up with exactly those inside its
/// root-grid block.  Charges redistribution communication to the fabric.
ParticleSet redistribute_by_position(
    mpi::Comm& comm, const ParticleSet& mine,
    const std::array<std::uint64_t, 3>& root_dims,
    const std::array<int, 3>& proc_grid);

/// Globally sort by particle ID with a parallel sample sort; afterwards rank
/// r holds a contiguous run of the global ID order, and runs are in rank
/// order (ready for block-wise contiguous file writes).
ParticleSet parallel_sort_by_id(mpi::Comm& comm, const ParticleSet& mine);

/// Comparison-sort the particles of `p` in place by ID (serial; used by the
/// HDF4 path on processor 0 and as the local phase of the sample sort).
void local_sort_by_id(ParticleSet& p);

}  // namespace paramrio::amr
