// Grid-to-processor assignment (the role of the dynamic load balancing of
// Lan, Taylor & Bryan that the ENZO runs in the paper used): greedy
// largest-first placement onto the least-loaded processor.  Deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/hierarchy.hpp"

namespace paramrio::amr {

/// Returns owner rank per input index; `weights[i]` is grid i's work (cells).
std::vector<int> balance_greedy(const std::vector<std::uint64_t>& weights,
                                int nprocs);

/// Assign owners for every non-root grid in the hierarchy (the root is
/// block-partitioned, not owned by one rank) and write them into the
/// descriptors.  Returns per-rank total assigned cells.
std::vector<std::uint64_t> assign_owners(Hierarchy& hierarchy, int nprocs);

}  // namespace paramrio::amr
