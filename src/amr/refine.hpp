// Refinement flagging and clustering (a simplified Berger–Rigoutsos):
// cells whose density exceeds a threshold are flagged, flagged cells are
// clustered into rectangular boxes by recursive bisection until each box is
// efficiently filled, and each box becomes a child grid at twice the
// resolution.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "amr/array3.hpp"
#include "amr/grid.hpp"

namespace paramrio::amr {

struct RefineParams {
  double threshold = 4.0;    ///< overdensity that triggers refinement
  double min_fill = 0.55;    ///< stop splitting when flagged/total >= this
  std::uint64_t min_box = 4; ///< don't split boxes below this many cells/axis
  int refine_factor = 2;     ///< resolution ratio child : parent
  int max_level = 1;         ///< deepest level to create below the root
};

/// A box of parent-grid cells, in local (z, y, x) cell coordinates.
struct CellBox {
  std::array<std::uint64_t, 3> start{0, 0, 0};
  std::array<std::uint64_t, 3> count{0, 0, 0};
  std::uint64_t cells() const { return count[0] * count[1] * count[2]; }
  friend bool operator==(const CellBox&, const CellBox&) = default;
};

/// Flag cells of a density array exceeding the threshold.
Array3<std::uint8_t> flag_overdense(const Array3f& density, double threshold);

/// Cluster flagged cells into boxes with fill ratio >= params.min_fill
/// (recursive bisection along the longest axis).  Returns boxes in
/// deterministic (z, y, x) order; empty if nothing is flagged.
std::vector<CellBox> cluster_flags(const Array3<std::uint8_t>& flags,
                                   const RefineParams& params);

/// Turn a box of cells of `parent` (box in parent-local cell coordinates,
/// offset by `cell_origin` within the parent grid) into a child descriptor
/// at refine_factor times the resolution.  Owner is left at 0.
GridDescriptor make_child(const GridDescriptor& parent,
                          const std::array<std::uint64_t, 3>& cell_origin,
                          const CellBox& box, int refine_factor);

}  // namespace paramrio::amr
