#include "amr/decomp.hpp"

#include <algorithm>

namespace paramrio::amr {

std::array<int, 3> make_proc_grid(int nprocs) {
  PARAMRIO_REQUIRE(nprocs >= 1, "make_proc_grid: nprocs must be >= 1");
  std::array<int, 3> g{1, 1, 1};
  int rest = nprocs;
  // Peel prime factors largest-first onto the currently smallest axis so the
  // grid stays as cubic as possible.
  for (int f = 2; rest > 1;) {
    while (f * f <= rest && rest % f != 0) ++f;
    int factor = (f * f > rest) ? rest : f;
    auto it = std::min_element(g.begin(), g.end());
    *it *= factor;
    rest /= factor;
  }
  // Deterministic order: sort descending so z (slowest dim) gets the most.
  std::sort(g.begin(), g.end(), std::greater<int>());
  return g;
}

std::array<std::uint64_t, 2> block_range(std::uint64_t n, int parts,
                                         int index) {
  PARAMRIO_REQUIRE(parts >= 1 && index >= 0 && index < parts,
                   "block_range: bad partition index");
  auto up = static_cast<std::uint64_t>(parts);
  auto ui = static_cast<std::uint64_t>(index);
  std::uint64_t base = n / up;
  std::uint64_t rem = n % up;
  std::uint64_t start = ui * base + std::min(ui, rem);
  std::uint64_t count = base + (ui < rem ? 1 : 0);
  return {start, count};
}

std::array<int, 3> proc_coords(const std::array<int, 3>& grid, int rank) {
  // Row-major over (z, y, x): x fastest, matching the array layout.
  int px = grid[2], py = grid[1];
  return {rank / (px * py), (rank / px) % py, rank % px};
}

BlockExtent block_of(const std::array<std::uint64_t, 3>& dims,
                     const std::array<int, 3>& proc_grid, int rank) {
  auto coords = proc_coords(proc_grid, rank);
  BlockExtent e;
  for (int d = 0; d < 3; ++d) {
    auto ud = static_cast<std::size_t>(d);
    auto [s, c] = block_range(dims[ud], proc_grid[ud], coords[ud]);
    e.start[ud] = s;
    e.count[ud] = c;
  }
  return e;
}

}  // namespace paramrio::amr
