// Disk and I/O-server cost models.
//
// A Disk is characterised by a positioning (seek + rotational) cost and a
// streaming transfer rate.  An IoServer wraps a Disk with a FIFO request
// queue (virtual-time Timeline), a fixed per-request software overhead, and
// sequentiality tracking: a request that does not start where the previous
// one on this server ended pays the positioning cost.  This is what makes
// many small strided accesses expensive and large contiguous streams cheap —
// the central mechanism behind the paper's Figures 6-9.
#pragma once

#include <cstdint>
#include <string>

#include "base/units.hpp"
#include "sim/engine.hpp"

namespace paramrio::stor {

struct DiskParams {
  double seek_time = ms(8);           ///< positioning cost, random access
  double bandwidth = mb_per_s(30);    ///< streaming rate, bytes/s
  double request_overhead = ms(0.5);  ///< software/controller cost per request

  /// A short forward skip (within near_window bytes of the previous end of
  /// the same object) costs only near_seek_time — the head barely moves and
  /// track buffers/read-ahead absorb most of it.
  double near_seek_time = ms(1);
  std::uint64_t near_window = 4 * MiB;
};

/// One I/O server (an I/O node's disk path, or one spindle of a striped
/// volume).  All methods are virtual-time bookkeeping; bytes live elsewhere.
class IoServer {
 public:
  explicit IoServer(DiskParams params) : params_(params) {}

  /// Cost of a request of `bytes` at (`object`,`offset`) issued at `start`;
  /// returns completion time and updates the queue and head position.
  /// Writes are buffered (write-behind): a non-sequential write pays at most
  /// the near-seek cost, because the server coalesces and destages lazily.
  /// `extra_service` lets the file system add protocol costs (e.g. GPFS
  /// token/lock transfers) into the same FIFO.
  double serve(double start, const std::string& object, std::uint64_t offset,
               std::uint64_t bytes, bool is_write = false,
               double extra_service = 0.0) {
    double service = params_.request_overhead + extra_service +
                     static_cast<double>(bytes) / params_.bandwidth;
    if (object == last_object_ && offset == last_end_) {
      // Sequential continuation: free.
    } else if (is_write) {
      service += params_.near_seek_time;
    } else if (object == last_object_ && offset >= last_end_ &&
               offset - last_end_ <= params_.near_window) {
      service += params_.near_seek_time;
    } else {
      service += params_.seek_time;
    }
    last_object_ = object;
    last_end_ = offset + bytes;
    requests_ += 1;
    bytes_moved_ += bytes;
    return busy_.acquire(start, service);
  }

  double next_free() const { return busy_.next_free(); }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }
  const DiskParams& params() const { return params_; }

  void reset() {
    busy_.reset();
    last_object_.clear();
    last_end_ = 0;
    requests_ = 0;
    bytes_moved_ = 0;
  }

 private:
  DiskParams params_;
  sim::Timeline busy_;
  std::string last_object_;
  std::uint64_t last_end_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace paramrio::stor
