// Disk and I/O-server cost models.
//
// A Disk is characterised by a positioning (seek + rotational) cost and a
// streaming transfer rate.  An IoServer wraps a Disk with a FIFO request
// queue (virtual-time Timeline), a fixed per-request software overhead, and
// sequentiality tracking: a request that does not start where the previous
// one on this server ended pays the positioning cost.  This is what makes
// many small strided accesses expensive and large contiguous streams cheap —
// the central mechanism behind the paper's Figures 6-9.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "base/units.hpp"
#include "sim/engine.hpp"

namespace paramrio::stor {

struct DiskParams {
  double seek_time = ms(8);           ///< positioning cost, random access
  double bandwidth = mb_per_s(30);    ///< streaming rate, bytes/s
  double request_overhead = ms(0.5);  ///< software/controller cost per request

  /// A short forward skip (within near_window bytes of the previous end of
  /// the same object) costs only near_seek_time — the head barely moves and
  /// track buffers/read-ahead absorb most of it.
  double near_seek_time = ms(1);
  std::uint64_t near_window = 4 * MiB;
};

/// One I/O server (an I/O node's disk path, or one spindle of a striped
/// volume).  All methods are virtual-time bookkeeping; bytes live elsewhere.
class IoServer {
 public:
  explicit IoServer(DiskParams params) : params_(params) {}

  /// Per-tenant device-share accounting under fair-share arbitration.
  struct JobShare {
    double busy = 0.0;          ///< this job's service horizon (virtual time)
    double weight = 1.0;        ///< fair-share weight last seen for the job
    double service_time = 0.0;  ///< raw (unstretched) service consumed
    std::uint64_t bytes = 0;
    std::uint64_t requests = 0;
  };

  /// Cost of a request of `bytes` at (`object`,`offset`) issued at `start`;
  /// returns completion time and updates the queue and head position.
  /// Writes are buffered (write-behind): a non-sequential write pays at most
  /// the near-seek cost, because the server coalesces and destages lazily.
  /// `extra_service` lets the file system add protocol costs (e.g. GPFS
  /// token/lock transfers) into the same FIFO.
  ///
  /// Multi-tenant arbitration: when `job` >= 0 the request is arbitrated by
  /// weighted fair queueing across jobs instead of global FIFO — each job
  /// keeps its own service horizon, and a request issued while other jobs
  /// are backlogged is stretched by (sum of active weights)/`weight`, so N
  /// equal-weight tenants each see ~1/N of the device.  With one active job
  /// the stretch factor is exactly 1.0 and the result is bit-identical to
  /// the FIFO timeline, so single-job runs are unaffected.  `job` < 0 keeps
  /// the plain FIFO path.
  /// `queue_wait`, when non-null, receives the time the request spent
  /// queued behind other work (completion - start - service; under
  /// fair-share this includes the stretch charged for competing tenants).
  /// `background` marks housekeeping traffic (the staging tier's drain):
  /// it only affects the server's background counters — priority is already
  /// expressed through `weight` (callers pass sim::Proc::io_weight()), so
  /// timing for non-background requests is untouched.
  double serve(double start, const std::string& object, std::uint64_t offset,
               std::uint64_t bytes, bool is_write = false,
               double extra_service = 0.0, int job = -1, double weight = 1.0,
               double* queue_wait = nullptr, bool background = false) {
    double service = params_.request_overhead + extra_service +
                     static_cast<double>(bytes) / params_.bandwidth;
    if (object == last_object_ && offset == last_end_) {
      // Sequential continuation: free.
    } else if (is_write) {
      service += params_.near_seek_time;
    } else if (object == last_object_ && offset >= last_end_ &&
               offset - last_end_ <= params_.near_window) {
      service += params_.near_seek_time;
    } else {
      service += params_.seek_time;
    }
    last_object_ = object;
    last_end_ = offset + bytes;
    requests_ += 1;
    bytes_moved_ += bytes;
    if (background) {
      background_requests_ += 1;
      background_bytes_ += bytes;
    }
    if (job < 0) {
      const double completion = busy_.acquire(start, service);
      if (queue_wait != nullptr) *queue_wait = completion - start - service;
      return completion;
    }

    JobShare& mine = shares_[job];
    mine.weight = weight;
    mine.service_time += service;
    mine.bytes += bytes;
    mine.requests += 1;
    double active_weight = 0.0;
    for (const auto& [j, share] : shares_) {
      if (j != job && share.busy > start) active_weight += share.weight;
    }
    const double stretch = (active_weight + weight) / weight;
    const double completion =
        std::max(start, mine.busy) + service * stretch;
    mine.busy = completion;
    busy_.raise(completion);  // keep the aggregate envelope truthful
    if (queue_wait != nullptr) *queue_wait = completion - start - service;
    return completion;
  }

  double next_free() const { return busy_.next_free(); }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }
  /// Housekeeping traffic (drain migrations) served so far.
  std::uint64_t background_requests() const { return background_requests_; }
  std::uint64_t background_bytes() const { return background_bytes_; }
  const DiskParams& params() const { return params_; }

  /// Per-job device shares seen so far (empty unless fair-share requests
  /// were served); key is the engine job index.
  const std::map<int, JobShare>& job_shares() const { return shares_; }

  void reset() {
    busy_.reset();
    last_object_.clear();
    last_end_ = 0;
    requests_ = 0;
    bytes_moved_ = 0;
    background_requests_ = 0;
    background_bytes_ = 0;
    shares_.clear();
  }

 private:
  DiskParams params_;
  sim::Timeline busy_;
  std::string last_object_;
  std::uint64_t last_end_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t background_requests_ = 0;
  std::uint64_t background_bytes_ = 0;
  std::map<int, JobShare> shares_;
};

}  // namespace paramrio::stor
