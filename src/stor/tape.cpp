#include "stor/tape.hpp"

#include <algorithm>

namespace paramrio::stor {

bool TapeArchive::holds(const std::string& file) const {
  return std::find(contents_.begin(), contents_.end(), file) !=
         contents_.end();
}

double TapeArchive::migrate(pfs::FileSystem& fs,
                            const std::vector<std::string>& files) {
  for (const std::string& f : files) {
    PARAMRIO_REQUIRE(fs.exists(f), "tape migrate: no such file " + f);
    PARAMRIO_REQUIRE(!holds(f), "tape migrate: already archived " + f);
  }
  double t = transfer(fs, files, /*to_tape=*/true);
  for (const std::string& f : files) {
    contents_.push_back(f);
    archived_bytes_ += fs.store().size(f);
  }
  return t;
}

double TapeArchive::retrieve(pfs::FileSystem& fs,
                             const std::vector<std::string>& files) {
  for (const std::string& f : files) {
    if (!holds(f)) throw IoError("tape retrieve: not archived: " + f);
  }
  return transfer(fs, files, /*to_tape=*/false);
}

double TapeArchive::transfer(pfs::FileSystem& fs,
                             const std::vector<std::string>& files,
                             bool to_tape) {
  sim::Proc& proc = sim::current_proc();
  double t0 = proc.now();
  if (!mounted_) {
    proc.advance(params_.mount_time, sim::TimeCategory::kIo);
    mounted_ = true;
  }
  // Consecutive files in tape order stream without repositioning; any other
  // order pays the locate cost per file.  Migration appends, so it is
  // always sequential; retrieval is sequential only if the requested order
  // matches the archived order contiguously.
  std::size_t tape_pos = static_cast<std::size_t>(-1);
  for (const std::string& f : files) {
    std::size_t idx = contents_.size();  // append position for migration
    if (!to_tape) {
      idx = static_cast<std::size_t>(
          std::find(contents_.begin(), contents_.end(), f) -
          contents_.begin());
    }
    bool sequential = !to_tape && tape_pos != static_cast<std::size_t>(-1) &&
                      idx == tape_pos + 1;
    if (!to_tape && !sequential) {
      proc.advance(params_.position_time, sim::TimeCategory::kIo);
    }
    tape_pos = idx;
    std::uint64_t bytes = fs.store().size(f);
    proc.advance(params_.per_file_overhead +
                     static_cast<double>(bytes) / params_.bandwidth,
                 sim::TimeCategory::kIo);
  }
  return proc.now() - t0;
}

}  // namespace paramrio::stor
