// Hierarchical-storage (tape) model.
//
// The paper's Section 3.3 justifies writing all grids into one shared file
// partly with the tertiary-storage argument: "When data size becomes very
// large and needs to migrate to a tape device, writing grids into a single
// file can result [in] a contiguous storage space in a hierarchical file
// system which will generate an optimal performance for data retrieval."
//
// This model lets that claim be measured (bench_ablation_tape): a tape
// archive charges a mount/position cost per file, a per-file fixed overhead
// (tape marks, catalog), and a streaming rate; many small files pay the
// positioning cost over and over, one big file streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hpp"
#include "pfs/filesystem.hpp"
#include "sim/engine.hpp"

namespace paramrio::stor {

struct TapeParams {
  double mount_time = 30.0;          ///< load + thread the cartridge
  double position_time = 4.0;        ///< locate a file mark (average)
  double per_file_overhead = 0.8;    ///< headers, tape marks, catalog update
  double bandwidth = mb_per_s(12);   ///< streaming rate (2002 DLT/LTO-1 era)
};

/// A virtual tape drive.  migrate() copies files from a simulated file
/// system to the archive; retrieve() brings them back.  All timing is
/// charged to the calling simulated processor.
class TapeArchive {
 public:
  explicit TapeArchive(TapeParams params) : params_(params) {}

  /// Migrate the named files (in order) to tape; returns seconds spent.
  double migrate(pfs::FileSystem& fs, const std::vector<std::string>& files);

  /// Retrieve previously migrated files; returns seconds spent.  Files not
  /// on the archive throw IoError.
  double retrieve(pfs::FileSystem& fs, const std::vector<std::string>& files);

  bool holds(const std::string& file) const;
  std::uint64_t archived_bytes() const { return archived_bytes_; }
  const TapeParams& params() const { return params_; }

 private:
  double transfer(pfs::FileSystem& fs, const std::vector<std::string>& files,
                  bool to_tape);

  TapeParams params_;
  std::vector<std::string> contents_;  ///< in tape order
  std::uint64_t archived_bytes_ = 0;
  bool mounted_ = false;
};

}  // namespace paramrio::stor
