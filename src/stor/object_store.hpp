// In-memory byte storage backing all simulated file systems.
//
// Files hold real bytes so that every layer above (MPI-IO, HDF4, HDF5, the
// application checkpoints) can be verified bit-for-bit in tests.  Timing is
// the business of the file systems; the store itself is free.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace paramrio::stor {

/// A flat namespace of named byte arrays with offset read/write.
class ObjectStore {
 public:
  bool exists(const std::string& name) const {
    return objects_.find(name) != objects_.end();
  }

  /// Create (or truncate) an object.
  void create(const std::string& name) { objects_[name].clear(); }

  void remove(const std::string& name) {
    auto it = objects_.find(name);
    if (it == objects_.end()) throw IoError("remove: no such object " + name);
    objects_.erase(it);
  }

  std::uint64_t size(const std::string& name) const {
    return find(name).size();
  }

  /// Write, extending with zero bytes if offset is past the current end.
  void write_at(const std::string& name, std::uint64_t offset,
                std::span<const std::byte> data) {
    auto& obj = find_mut(name);
    std::uint64_t end = offset + data.size();
    if (end > obj.size()) obj.resize(end);
    std::copy(data.begin(), data.end(),
              obj.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  /// Read exactly out.size() bytes; throws IoError if the range is past EOF.
  void read_at(const std::string& name, std::uint64_t offset,
               std::span<std::byte> out) const {
    const auto& obj = find(name);
    if (offset + out.size() > obj.size()) {
      throw IoError("read past end of " + name + ": offset " +
                    std::to_string(offset) + " + " +
                    std::to_string(out.size()) + " > " +
                    std::to_string(obj.size()));
    }
    std::copy_n(obj.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

  std::vector<std::string> list() const {
    std::vector<std::string> names;
    names.reserve(objects_.size());
    for (const auto& [name, bytes] : objects_) names.push_back(name);
    return names;
  }

  /// Total bytes stored (capacity accounting in tests/benches).
  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& [name, bytes] : objects_) n += bytes.size();
    return n;
  }

 private:
  const std::vector<std::byte>& find(const std::string& name) const {
    auto it = objects_.find(name);
    if (it == objects_.end()) throw IoError("no such object: " + name);
    return it->second;
  }
  std::vector<std::byte>& find_mut(const std::string& name) {
    auto it = objects_.find(name);
    if (it == objects_.end()) throw IoError("no such object: " + name);
    return it->second;
  }

  std::map<std::string, std::vector<std::byte>> objects_;
};

}  // namespace paramrio::stor
