// HDF5-analogue file format with serial and parallel (MPI-IO) drivers.
//
// The layout is structurally analogous to HDF5 1.4 (the release the paper
// measured): a superblock at offset 0, a chain of object-header records, and
// raw dataset data allocated from the same linear address space as the
// metadata.  The four overhead sources the paper identifies in parallel
// HDF5 are implemented, not faked, and each can be toggled for the ablation
// bench (bench_ablation_hdf5_overheads):
//
//   1. *Dataset create/close synchronisation*: collective metadata updates —
//      every rank barriers while rank 0 writes the object header and updates
//      the superblock and the previous record's chain pointer.
//   2. *Metadata interleaved with raw data*: data is allocated immediately
//      after its object header, so large array data starts at odd offsets
//      and straddles stripe/sector boundaries; the `alignment` property
//      (HDF5's H5Pset_alignment) rounds data addresses up and is the paper's
//      suggested mitigation.
//   3. *Recursive hyperslab packing*: selections are enumerated by the
//      per-dimension recursion in Dataspace::for_each_run, and each recursive
//      step costs virtual CPU time.
//   4. *Rank-0-only attributes*: attribute writes serialise through rank 0
//      with a full synchronisation.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hdf5/dataspace.hpp"
#include "mpi/io/file.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::hdf5 {

enum class NumberType : std::uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
  kInt32 = 2,
  kInt64 = 3,
};

std::uint64_t element_size(NumberType t);

struct FileConfig {
  /// Parallel driver when set (H5Pset_fapl_mpio analogue); null = serial.
  mpi::Comm* comm = nullptr;
  mpi::io::Hints io_hints;

  /// Raw-data alignment (H5Pset_alignment); 1 = allocate right after the
  /// object header, reproducing the paper's misalignment overhead.
  std::uint64_t alignment = 1;

  // ---- ablation toggles (all true = the paper's 2002 release behaviour) --
  bool metadata_sync = true;     ///< collective dataset create/close
  bool recursive_pack = true;    ///< charge recursive hyperslab iteration
  bool rank0_attributes = true;  ///< serialise attribute writes via rank 0

  /// Virtual CPU cost per recursive hyperslab iterator step.
  double pack_step_cost = 0.8e-6;
};

struct DatasetInfo {
  std::string name;
  NumberType type = NumberType::kFloat32;
  std::vector<std::uint64_t> dims;
  std::uint64_t data_addr = 0;
  std::uint64_t data_bytes = 0;
};

class Dataset;

class H5File {
 public:
  static H5File create(pfs::FileSystem& fs, const std::string& path,
                       FileConfig config = {});
  static H5File open(pfs::FileSystem& fs, const std::string& path,
                     FileConfig config = {});

  H5File(H5File&& other) noexcept
      : fs_(other.fs_),
        path_(std::move(other.path_)),
        config_(other.config_),
        fd_(other.fd_),
        pio_(std::move(other.pio_)),
        writable_(other.writable_),
        open_(other.open_),
        alloc_end_(other.alloc_end_),
        prev_record_next_field_(other.prev_record_next_field_),
        has_records_(other.has_records_),
        datasets_(std::move(other.datasets_)),
        index_(std::move(other.index_)),
        attributes_(std::move(other.attributes_)) {
    other.open_ = false;  // source no longer owns the descriptor
  }
  H5File(const H5File&) = delete;
  H5File& operator=(const H5File&) = delete;
  ~H5File();

  /// Collective in parallel mode.  The dataspace's *dims* define the dataset
  /// extent (any selection on it is ignored).
  Dataset create_dataset(const std::string& name, NumberType type,
                         const Dataspace& space);
  Dataset open_dataset(const std::string& name);

  bool has_dataset(const std::string& name) const;
  std::vector<std::string> dataset_names() const;

  /// Collective in parallel mode; serialises through rank 0 when
  /// config.rank0_attributes is set.
  void write_attribute(const std::string& name,
                       std::span<const std::byte> value);
  std::vector<std::byte> read_attribute(const std::string& name) const;

  void close();  ///< collective in parallel mode

  const FileConfig& config() const { return config_; }
  bool parallel() const { return config_.comm != nullptr; }

 private:
  friend class Dataset;
  H5File() = default;

  // Raw byte access through whichever driver is active.
  void raw_read(std::uint64_t off, std::span<std::byte> out);
  void raw_write(std::uint64_t off, std::span<const std::byte> data);
  void raw_read_all(const std::vector<mpi::Segment>& segs,
                    std::span<std::byte> out);
  void raw_write_all(const std::vector<mpi::Segment>& segs,
                     std::span<const std::byte> data);

  void write_superblock();
  void scan();
  std::uint64_t append_record(std::uint32_t kind,
                              std::span<const std::byte> header,
                              std::uint64_t data_bytes,
                              std::uint64_t* data_addr_out);
  void metadata_barrier();

  pfs::FileSystem* fs_ = nullptr;
  std::string path_;
  FileConfig config_;
  int fd_ = -1;                                   // serial driver
  std::unique_ptr<mpi::io::File> pio_;            // parallel driver
  bool writable_ = false;
  bool open_ = false;
  std::uint64_t alloc_end_ = 0;
  std::uint64_t prev_record_next_field_ = 0;  ///< file offset of previous
                                              ///< record's next-pointer
  bool has_records_ = false;
  std::deque<DatasetInfo> datasets_;  ///< deque: stable Dataset handles
  std::map<std::string, std::size_t> index_;
  std::map<std::string, std::vector<std::byte>> attributes_;
};

/// Handle to one dataset of an open H5File.
class Dataset {
 public:
  const DatasetInfo& info() const { return *info_; }
  Dataspace space() const { return Dataspace(info_->dims); }

  /// Hyperslab I/O.  `file_space` must have the dataset's dims; its
  /// selection picks the file elements.  `buf` holds the selected elements
  /// contiguously in row-major order.  `collective` selects MPI-IO
  /// collective vs independent transfer in parallel mode.
  void write(const Dataspace& file_space, std::span<const std::byte> buf,
             bool collective = true);
  void read(const Dataspace& file_space, std::span<std::byte> buf,
            bool collective = true);

  /// Whole-dataset convenience (select_all).
  void write_all(std::span<const std::byte> buf, bool collective = true);
  void read_all(std::span<std::byte> buf, bool collective = true);

  /// Collective in parallel mode (synchronises metadata).
  void close();

 private:
  friend class H5File;
  Dataset(H5File* file, const DatasetInfo* info) : file_(file), info_(info) {}

  std::vector<mpi::Segment> selection_segments(const Dataspace& file_space,
                                               bool charge_pack) const;

  H5File* file_;
  const DatasetInfo* info_;
  bool closed_ = false;
};

}  // namespace paramrio::hdf5
