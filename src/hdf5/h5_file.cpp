#include "hdf5/h5_file.hpp"

#include <algorithm>

#include "base/byte_io.hpp"
#include "obs/profiler.hpp"

namespace paramrio::hdf5 {

namespace {
constexpr std::uint32_t kMagic = 0x01354850;  // "PH5\x01"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKindDataset = 1;
constexpr std::uint32_t kKindAttribute = 2;
constexpr std::uint64_t kSuperblockSize = 32;
constexpr std::uint64_t kRecordFixedSize = 16;  // kind u32, hdrlen u32, next u64

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return a <= 1 ? v : (v + a - 1) / a * a;
}
}  // namespace

std::uint64_t element_size(NumberType t) {
  switch (t) {
    case NumberType::kFloat32:
    case NumberType::kInt32:
      return 4;
    case NumberType::kFloat64:
    case NumberType::kInt64:
      return 8;
  }
  throw LogicError("bad NumberType");
}

// ---------------------------------------------------------------------------
// Raw driver plumbing
// ---------------------------------------------------------------------------

void H5File::raw_read(std::uint64_t off, std::span<std::byte> out) {
  if (pio_) {
    pio_->set_view(0);
    pio_->read_at(off, out);
  } else {
    fs_->read_at(fd_, off, out);
  }
}

void H5File::raw_write(std::uint64_t off, std::span<const std::byte> data) {
  if (pio_) {
    pio_->set_view(0);
    pio_->write_at(off, data);
  } else {
    fs_->write_at(fd_, off, data);
  }
}

void H5File::raw_read_all(const std::vector<mpi::Segment>& segs,
                          std::span<std::byte> out) {
  PARAMRIO_REQUIRE(pio_ != nullptr, "collective read on serial H5File");
  if (segs.empty()) {
    // Zero-size participation: still joins the collective exchange.
    pio_->set_view(0);
    pio_->read_at_all(0, out);
    return;
  }
  pio_->set_view(0, mpi::Datatype::indexed(segs));
  pio_->read_at_all(0, out);
  pio_->set_view(0);
}

void H5File::raw_write_all(const std::vector<mpi::Segment>& segs,
                           std::span<const std::byte> data) {
  PARAMRIO_REQUIRE(pio_ != nullptr, "collective write on serial H5File");
  if (segs.empty()) {
    pio_->set_view(0);
    pio_->write_at_all(0, data);
    return;
  }
  pio_->set_view(0, mpi::Datatype::indexed(segs));
  pio_->write_at_all(0, data);
  pio_->set_view(0);
}

void H5File::metadata_barrier() {
  if (config_.comm != nullptr && config_.metadata_sync) {
    OBS_SPAN("hdf5.metadata_sync", sim::TimeCategory::kComm);
    config_.comm->barrier();
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

H5File H5File::create(pfs::FileSystem& fs, const std::string& path,
                      FileConfig config) {
  H5File f;
  f.fs_ = &fs;
  f.path_ = path;
  f.config_ = config;
  f.writable_ = true;
  f.open_ = true;
  if (config.comm != nullptr) {
    f.pio_ = std::make_unique<mpi::io::File>(*config.comm, fs, path,
                                             pfs::OpenMode::kCreate,
                                             config.io_hints);
  } else {
    f.fd_ = fs.open(path, pfs::OpenMode::kCreate);
  }
  f.alloc_end_ = kSuperblockSize;
  if (config.comm == nullptr || config.comm->rank() == 0) {
    f.write_superblock();
  }
  return f;
}

H5File H5File::open(pfs::FileSystem& fs, const std::string& path,
                    FileConfig config) {
  H5File f;
  f.fs_ = &fs;
  f.path_ = path;
  f.config_ = config;
  f.writable_ = false;
  f.open_ = true;
  if (config.comm != nullptr) {
    f.pio_ = std::make_unique<mpi::io::File>(*config.comm, fs, path,
                                             pfs::OpenMode::kRead,
                                             config.io_hints);
  } else {
    f.fd_ = fs.open(path, pfs::OpenMode::kRead);
  }
  f.scan();
  return f;
}

H5File::~H5File() {
  if (!open_) return;
  // Quiet release; parallel close must be explicit to synchronise.
  if (pio_ == nullptr && fs_ != nullptr) fs_->close(fd_);
  open_ = false;
}

void H5File::close() {
  PARAMRIO_REQUIRE(open_, "H5File: already closed");
  metadata_barrier();
  if (pio_) {
    pio_->close();
    pio_.reset();
  } else {
    fs_->close(fd_);
  }
  open_ = false;
}

void H5File::write_superblock() {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(alloc_end_);
  w.u64(has_records_ ? kSuperblockSize : 0);
  w.u64(0);  // reserved
  auto b = w.take();
  raw_write(0, b);
}

void H5File::scan() {
  std::uint64_t fsize = pio_ ? pio_->size() : fs_->size(fd_);
  if (fsize < kSuperblockSize) {
    throw FormatError(path_ + ": too short for a PH5 file");
  }
  std::vector<std::byte> sb(kSuperblockSize);
  raw_read(0, sb);
  ByteReader sr(sb);
  if (sr.u32() != kMagic) throw FormatError(path_ + ": bad PH5 magic");
  if (sr.u32() != kVersion) throw FormatError(path_ + ": bad PH5 version");
  alloc_end_ = sr.u64();
  std::uint64_t pos = sr.u64();  // first record (0 = empty file)
  while (pos != 0) {
    std::vector<std::byte> fixed(kRecordFixedSize);
    raw_read(pos, fixed);
    ByteReader fr(fixed);
    std::uint32_t kind = fr.u32();
    std::uint32_t hdrlen = fr.u32();
    std::uint64_t next = fr.u64();
    std::vector<std::byte> hdr(hdrlen);
    raw_read(pos + kRecordFixedSize, hdr);
    ByteReader r(hdr);
    if (kind == kKindDataset) {
      DatasetInfo info;
      info.name = r.str();
      info.type = static_cast<NumberType>(r.u8());
      std::uint32_t nd = r.u32();
      for (std::uint32_t d = 0; d < nd; ++d) info.dims.push_back(r.u64());
      info.data_addr = r.u64();
      info.data_bytes = r.u64();
      index_[info.name] = datasets_.size();
      datasets_.push_back(std::move(info));
    } else if (kind == kKindAttribute) {
      std::string name = r.str();
      std::uint64_t n = r.u64();
      auto vspan = r.bytes(n);
      attributes_[name].assign(vspan.begin(), vspan.end());
    } else {
      throw FormatError(path_ + ": unknown PH5 record kind " +
                        std::to_string(kind));
    }
    prev_record_next_field_ = pos + 8;
    pos = next;
  }
}

std::uint64_t H5File::append_record(std::uint32_t kind,
                                    std::span<const std::byte> header,
                                    std::uint64_t data_bytes,
                                    std::uint64_t* data_addr_out) {
  const bool physical = config_.comm == nullptr || config_.comm->rank() == 0;
  std::uint64_t rec_off = alloc_end_;
  std::uint64_t hdr_end = rec_off + kRecordFixedSize + header.size();
  std::uint64_t data_addr =
      data_bytes > 0 ? align_up(hdr_end, config_.alignment) : hdr_end;
  alloc_end_ = data_bytes > 0 ? data_addr + data_bytes : hdr_end;
  if (data_addr_out != nullptr) *data_addr_out = data_addr;
  const bool first_record = !has_records_;
  has_records_ = true;

  if (physical) {
    OBS_SPAN("hdf5.metadata_write", sim::TimeCategory::kIo);
    ByteWriter w;
    w.u32(kind);
    w.u32(static_cast<std::uint32_t>(header.size()));
    w.u64(0);  // next pointer; patched when the following record lands
    w.bytes(header);
    auto rec = w.take();
    raw_write(rec_off, rec);
    if (!first_record && prev_record_next_field_ != 0) {
      // Patch the previous record's chain pointer (a tiny metadata write
      // far from the current position — real HDF5 metadata churn).
      ByteWriter pw;
      pw.u64(rec_off);
      auto pb = pw.take();
      raw_write(prev_record_next_field_, pb);
    } else {
      // First record: point the superblock at it.
      write_superblock();
    }
    // Keep the superblock's allocation pointer current.
    ByteWriter aw;
    aw.u64(alloc_end_);
    auto ab = aw.take();
    raw_write(8, ab);
  }
  prev_record_next_field_ = rec_off + 8;
  return rec_off;
}

// ---------------------------------------------------------------------------
// Datasets
// ---------------------------------------------------------------------------

Dataset H5File::create_dataset(const std::string& name, NumberType type,
                               const Dataspace& space) {
  PARAMRIO_REQUIRE(open_ && writable_, "H5File: not open for writing");
  PARAMRIO_REQUIRE(index_.find(name) == index_.end(),
                   "H5File: duplicate dataset " + name);
  OBS_SPAN("hdf5.dataset_create", sim::TimeCategory::kIo);
  metadata_barrier();

  DatasetInfo info;
  info.name = name;
  info.type = type;
  info.dims = space.dims();
  info.data_bytes = space.total_elements() * element_size(type);

  // Serialise the header on every rank (identical inputs -> identical
  // layout), write it physically on rank 0 only.
  ByteWriter hw;
  hw.str(name);
  hw.u8(static_cast<std::uint8_t>(type));
  hw.u32(static_cast<std::uint32_t>(info.dims.size()));
  for (auto d : info.dims) hw.u64(d);
  // data_addr is computed inside append_record; reserve the slot by writing
  // a placeholder then patching locally before the physical write.  To keep
  // one write, compute the address first.
  std::uint64_t rec_off = alloc_end_;
  std::uint64_t hdr_guess = rec_off + kRecordFixedSize + hw.size() + 16;
  std::uint64_t data_addr =
      align_up(hdr_guess, config_.alignment);
  hw.u64(data_addr);
  hw.u64(info.data_bytes);
  auto hdr = hw.take();

  std::uint64_t actual_addr = 0;
  append_record(kKindDataset, hdr, info.data_bytes, &actual_addr);
  PARAMRIO_REQUIRE(actual_addr == data_addr,
                   "H5File: allocation address drift");
  info.data_addr = data_addr;

  metadata_barrier();

  index_[name] = datasets_.size();
  datasets_.push_back(std::move(info));
  return Dataset(this, &datasets_.back());
}

Dataset H5File::open_dataset(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw IoError("H5File: no dataset " + name + " in " + path_);
  }
  return Dataset(this, &datasets_[it->second]);
}

bool H5File::has_dataset(const std::string& name) const {
  return index_.find(name) != index_.end();
}

std::vector<std::string> H5File::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& d : datasets_) names.push_back(d.name);
  return names;
}

// ---------------------------------------------------------------------------
// Attributes
// ---------------------------------------------------------------------------

void H5File::write_attribute(const std::string& name,
                             std::span<const std::byte> value) {
  PARAMRIO_REQUIRE(open_ && writable_, "H5File: not open for writing");
  OBS_SPAN("hdf5.attribute", sim::TimeCategory::kIo);
  if (config_.comm != nullptr && config_.rank0_attributes) {
    // The 2002 release: attributes can only be created/written by rank 0,
    // and everyone synchronises around the metadata update.
    config_.comm->barrier();
  }
  ByteWriter hw;
  hw.str(name);
  hw.u64(value.size());
  hw.bytes(value);
  auto hdr = hw.take();
  append_record(kKindAttribute, hdr, 0, nullptr);
  if (config_.comm != nullptr && config_.rank0_attributes) {
    config_.comm->barrier();
  }
  attributes_[name].assign(value.begin(), value.end());
}

std::vector<std::byte> H5File::read_attribute(const std::string& name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    throw IoError("H5File: no attribute " + name + " in " + path_);
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Dataset I/O
// ---------------------------------------------------------------------------

std::vector<mpi::Segment> Dataset::selection_segments(
    const Dataspace& file_space, bool charge_pack) const {
  PARAMRIO_REQUIRE(file_space.dims() == info_->dims,
                   "Dataset: file space dims mismatch for " + info_->name);
  const std::uint64_t esize = element_size(info_->type);
  std::vector<mpi::Segment> segs;
  std::uint64_t steps = file_space.for_each_run([&](const Dataspace::Run& r) {
    segs.push_back(mpi::Segment{info_->data_addr + r.element_offset * esize,
                                r.element_count * esize});
  });
  if (charge_pack && sim::in_simulation()) {
    OBS_SPAN("hdf5.pack", sim::TimeCategory::kCpu);
    obs::span_counter("pack_steps", steps);
    const FileConfig& cfg = file_->config_;
    double per_step = cfg.recursive_pack ? cfg.pack_step_cost
                                         : cfg.pack_step_cost * 0.05;
    std::uint64_t units = cfg.recursive_pack
                              ? steps
                              : static_cast<std::uint64_t>(segs.size());
    sim::current_proc().advance(static_cast<double>(units) * per_step,
                                sim::TimeCategory::kCpu);
  }
  return segs;
}

void Dataset::write(const Dataspace& file_space,
                    std::span<const std::byte> buf, bool collective) {
  PARAMRIO_REQUIRE(!closed_, "Dataset: closed");
  const std::uint64_t esize = element_size(info_->type);
  PARAMRIO_REQUIRE(buf.size() == file_space.selected_elements() * esize,
                   "Dataset::write: buffer size mismatch");
  auto segs = selection_segments(file_space, /*charge_pack=*/true);
  if (file_->pio_ && collective) {
    file_->raw_write_all(segs, buf);
    return;
  }
  if (file_->pio_) {
    // Independent through MPI-IO (data sieving applies).
    file_->pio_->set_view(0, mpi::Datatype::indexed(segs));
    file_->pio_->write_at(0, buf);
    file_->pio_->set_view(0);
    return;
  }
  std::uint64_t pos = 0;
  for (const auto& s : segs) {
    file_->fs_->write_at(file_->fd_, s.offset, buf.subspan(pos, s.length));
    pos += s.length;
  }
}

void Dataset::read(const Dataspace& file_space, std::span<std::byte> buf,
                   bool collective) {
  PARAMRIO_REQUIRE(!closed_, "Dataset: closed");
  const std::uint64_t esize = element_size(info_->type);
  PARAMRIO_REQUIRE(buf.size() == file_space.selected_elements() * esize,
                   "Dataset::read: buffer size mismatch");
  auto segs = selection_segments(file_space, /*charge_pack=*/true);
  if (file_->pio_ && collective) {
    file_->raw_read_all(segs, buf);
    return;
  }
  if (file_->pio_) {
    file_->pio_->set_view(0, mpi::Datatype::indexed(segs));
    file_->pio_->read_at(0, buf);
    file_->pio_->set_view(0);
    return;
  }
  std::uint64_t pos = 0;
  for (const auto& s : segs) {
    file_->fs_->read_at(file_->fd_, s.offset, buf.subspan(pos, s.length));
    pos += s.length;
  }
}

void Dataset::write_all(std::span<const std::byte> buf, bool collective) {
  Dataspace all(info_->dims);
  write(all, buf, collective);
}

void Dataset::read_all(std::span<std::byte> buf, bool collective) {
  Dataspace all(info_->dims);
  read(all, buf, collective);
}

void Dataset::close() {
  PARAMRIO_REQUIRE(!closed_, "Dataset: double close");
  // Closing a dataset of a writable file flushes metadata collectively (the
  // paper's per-dataset synchronisation).  Read-only closes are local, so
  // round-robin readers can close independently.
  OBS_SPAN("hdf5.dataset_close", sim::TimeCategory::kComm);
  if (file_->writable_) file_->metadata_barrier();
  closed_ = true;
}

}  // namespace paramrio::hdf5
