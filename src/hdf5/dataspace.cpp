#include "hdf5/dataspace.hpp"

#include <optional>

namespace paramrio::hdf5 {

Dataspace::Dataspace(std::vector<std::uint64_t> dims)
    : dims_(std::move(dims)) {
  PARAMRIO_REQUIRE(!dims_.empty(), "Dataspace: need at least one dimension");
  for (auto d : dims_) {
    PARAMRIO_REQUIRE(d > 0, "Dataspace: zero-length dimension");
  }
  stride_elems_.assign(dims_.size(), 1);
  for (std::size_t d = dims_.size() - 1; d > 0; --d) {
    stride_elems_[d - 1] = stride_elems_[d] * dims_[d];
  }
}

void Dataspace::select_hyperslab(const std::vector<HyperslabDim>& slab) {
  PARAMRIO_REQUIRE(slab.size() == dims_.size(),
                   "select_hyperslab: rank mismatch");
  for (std::size_t d = 0; d < slab.size(); ++d) {
    const HyperslabDim& h = slab[d];
    PARAMRIO_REQUIRE(h.count > 0 && h.block > 0,
                     "select_hyperslab: empty selection");
    PARAMRIO_REQUIRE(h.stride >= h.block,
                     "select_hyperslab: blocks overlap (stride < block)");
    std::uint64_t last = h.start + (h.count - 1) * h.stride + h.block;
    PARAMRIO_REQUIRE(last <= dims_[d], "select_hyperslab: out of bounds");
  }
  slab_ = slab;
  none_ = false;
}

void Dataspace::select_block(const std::vector<std::uint64_t>& start,
                             const std::vector<std::uint64_t>& count) {
  PARAMRIO_REQUIRE(start.size() == dims_.size() && count.size() == dims_.size(),
                   "select_block: rank mismatch");
  std::vector<HyperslabDim> slab(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    slab[d] = HyperslabDim{start[d], /*stride=*/1, /*count=*/count[d],
                           /*block=*/1};
  }
  select_hyperslab(slab);
}

void Dataspace::select_all() {
  slab_.reset();
  none_ = false;
}

void Dataspace::select_none() {
  slab_.reset();
  none_ = true;
}

std::uint64_t Dataspace::total_elements() const {
  std::uint64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::uint64_t Dataspace::selected_elements() const {
  if (none_) return 0;
  if (!slab_) return total_elements();
  std::uint64_t n = 1;
  for (const HyperslabDim& h : *slab_) n *= h.count * h.block;
  return n;
}

std::uint64_t Dataspace::for_each_run(
    const std::function<void(const Run&)>& fn) const {
  if (none_) return 0;
  if (!slab_) {
    fn(Run{0, total_elements()});
    return 1;
  }
  Run pending{0, 0};
  std::uint64_t steps = recurse(0, 0, fn, pending);
  if (pending.element_count > 0) fn(pending);
  return steps;
}

std::uint64_t Dataspace::recurse(std::size_t dim, std::uint64_t base,
                                 const std::function<void(const Run&)>& fn,
                                 Run& pending) const {
  const HyperslabDim& h = (*slab_)[dim];
  std::uint64_t steps = 0;
  if (dim + 1 == dims_.size()) {
    // Fastest dimension: each (count) block is one run of `block` elements
    // (or one merged run when stride == block).
    for (std::uint64_t c = 0; c < h.count; ++c) {
      ++steps;
      std::uint64_t off = base + h.start + c * h.stride;
      if (pending.element_count > 0 &&
          pending.element_offset + pending.element_count == off) {
        pending.element_count += h.block;
      } else {
        if (pending.element_count > 0) fn(pending);
        pending = Run{off, h.block};
      }
    }
    return steps;
  }
  for (std::uint64_t c = 0; c < h.count; ++c) {
    for (std::uint64_t b = 0; b < h.block; ++b) {
      ++steps;
      std::uint64_t idx = h.start + c * h.stride + b;
      steps += recurse(dim + 1, base + idx * stride_elems_[dim], fn, pending);
    }
  }
  return steps;
}

std::vector<Dataspace::Run> Dataspace::runs() const {
  std::vector<Run> out;
  for_each_run([&](const Run& r) { out.push_back(r); });
  return out;
}

}  // namespace paramrio::hdf5
