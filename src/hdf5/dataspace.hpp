// HDF5-style dataspaces and hyperslab selections.
//
// A Dataspace is an n-dimensional extent plus an optional hyperslab
// selection (start/stride/count/block per dimension, exactly HDF5's model).
// Selected elements are enumerated as contiguous runs in row-major order
// (dimension 0 slowest).  Enumeration is implemented as a per-dimension
// recursion — the same structure the paper blames for HDF5's slow hyperslab
// packing — and reports how many recursive steps it took so the parallel
// driver can charge virtual CPU time per step.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/error.hpp"

namespace paramrio::hdf5 {

struct HyperslabDim {
  std::uint64_t start = 0;
  std::uint64_t stride = 1;
  std::uint64_t count = 1;
  std::uint64_t block = 1;
};

class Dataspace {
 public:
  /// Simple (non-scalar) dataspace with the given dimensions; the selection
  /// defaults to all elements.
  explicit Dataspace(std::vector<std::uint64_t> dims);

  /// Select a hyperslab; every dimension must be given.  Replaces any
  /// previous selection (HDF5's H5S_SELECT_SET).
  void select_hyperslab(const std::vector<HyperslabDim>& slab);

  /// Convenience: contiguous block selection (stride == block semantics of
  /// start/count only), HDF5's most common call shape.
  void select_block(const std::vector<std::uint64_t>& start,
                    const std::vector<std::uint64_t>& count);

  void select_all();

  /// Select no elements (HDF5's H5Sselect_none): zero-size participation in
  /// collective transfers.
  void select_none();

  const std::vector<std::uint64_t>& dims() const { return dims_; }
  std::uint64_t rank() const { return dims_.size(); }
  std::uint64_t total_elements() const;
  std::uint64_t selected_elements() const;
  bool is_all_selected() const { return !none_ && !slab_.has_value(); }

  /// A contiguous run of selected elements in linearised row-major element
  /// space.
  struct Run {
    std::uint64_t element_offset = 0;
    std::uint64_t element_count = 0;
  };

  /// Enumerate selected runs in row-major order, merging adjacent runs.
  /// Returns the number of recursive iterator steps performed (the cost
  /// driver for hyperslab packing).
  std::uint64_t for_each_run(const std::function<void(const Run&)>& fn) const;

  /// Materialise the run list (convenience over for_each_run).
  std::vector<Run> runs() const;

 private:
  std::uint64_t recurse(std::size_t dim, std::uint64_t base,
                        const std::function<void(const Run&)>& fn,
                        Run& pending) const;

  std::vector<std::uint64_t> dims_;
  std::vector<std::uint64_t> stride_elems_;  // row-major strides in elements
  std::optional<std::vector<HyperslabDim>> slab_;
  bool none_ = false;
};

}  // namespace paramrio::hdf5
