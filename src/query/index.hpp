// query::GenerationIndex — the per-generation extent index behind the query
// service (ROADMAP item 3; the h5db direction).
//
// A committed dump is, to its writers, a stream: every backend knows where
// its own bytes went because it computed the layout on the way in.  A
// *reader* that wants one field of one subgrid, or particles 1000..2000,
// has no such luck — the paper's formats bury offsets in format-specific
// metadata (HDF4 DDs, the HDF5 record chain, the PNC header, the MPI-IO
// closed-form layout).  The index flattens all four into one uniform map,
// built once per generation via the format inspectors:
//
//   * per (grid, field): file path, absolute byte offset, byte length and
//     (z, y, x) dims — enough to plan a sub-volume extract as byte runs;
//   * per particle array: path/offset/element size, plus the ID range and
//     a strided sample ladder over the (sorted) particle_id array so an ID
//     range query binary-searches a small window instead of scanning;
//   * the dump's attributes (the serialized DumpMeta and anything else the
//     writer attached), so metadata lookups never touch the data region.
//
// The index serializes to a compact blob that `mdms::Catalog` persists
// (versioned, tombstone-aware), so a fresh process can serve a series
// without re-inspecting every generation.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "enzo/dump_common.hpp"
#include "enzo/dump_inspect.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::query {

/// Where one field of one grid lives: a contiguous row-major (z, y, x)
/// float32 array at [offset, offset + bytes) of `path`.
struct FieldExtent {
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, 3> dims{};  ///< (z, y, x) cells
};

/// Where one particle array lives (all backends store each array
/// contiguously, sorted by particle ID).
struct ParticleExtent {
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t elem_size = 0;
};

/// One rung of the particle-ID sample ladder: the ID at array index
/// `index`.  Rungs are ascending in both fields (IDs are sorted).
struct IdSample {
  std::uint64_t id = 0;
  std::uint64_t index = 0;
};

/// Stride (in particles) between ID samples; the ID window a range query
/// must actually read is at most two strides.
inline constexpr std::uint64_t kIdSampleStride = 4096;

struct GenerationIndex {
  std::uint64_t gen = 0;
  enzo::DumpFormat format = enzo::DumpFormat::kUnknown;
  enzo::DumpMeta meta;

  /// grid id -> field name -> extent (every grid has all baryon fields).
  std::map<std::uint64_t, std::map<std::string, FieldExtent>> fields;

  /// One per kParticleArrays entry; empty when the dump has no particles.
  std::vector<ParticleExtent> particles;
  std::uint64_t id_min = 0;
  std::uint64_t id_max = 0;
  std::vector<IdSample> id_samples;  ///< first, every kIdSampleStride, last

  std::map<std::string, std::vector<std::byte>> attributes;

  const FieldExtent& field(std::uint64_t grid_id,
                           const std::string& name) const;
  bool has_field(std::uint64_t grid_id, const std::string& name) const;

  std::vector<std::byte> serialize() const;
  static GenerationIndex deserialize(std::span<const std::byte> data);
};

/// Build the index for the dump under `gen_base` (a CheckpointSeries
/// generation base, e.g. "series.g3").  Must run inside a simulation: all
/// metadata and particle-ID reads are timed like any other access.  Throws
/// FormatError/IoError on a missing or malformed dump.
GenerationIndex build_index(pfs::FileSystem& fs, const std::string& gen_base,
                            std::uint64_t gen);

}  // namespace paramrio::query
