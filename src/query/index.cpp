#include "query/index.hpp"

#include <cstdio>
#include <cstring>

#include "base/byte_io.hpp"
#include "enzo/mpiio_layout.hpp"
#include "hdf4/sd_file.hpp"
#include "hdf5/h5_file.hpp"
#include "pnetcdf/nc_file.hpp"

namespace paramrio::query {

namespace {

constexpr std::uint32_t kIndexMagic = 0x58444951;  // "QIDX"
constexpr std::uint32_t kIndexVersion = 1;

std::string grid_file_name(const std::string& base, std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".grid%06llu",
                static_cast<unsigned long long>(id));
  return base + buf;
}

std::string grid_group_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "grid%06llu/",
                static_cast<unsigned long long>(id));
  return buf;
}

std::array<std::uint64_t, 3> dims3(const std::vector<std::uint64_t>& d,
                                   const std::string& what) {
  if (d.size() != 3) {
    throw FormatError("query index: dataset " + what + " is not 3-d");
  }
  return {d[0], d[1], d[2]};
}

void build_hdf4(pfs::FileSystem& fs, const std::string& base,
                GenerationIndex& ix) {
  const std::string top_path = base + ".topgrid";
  hdf4::SdFile top = hdf4::SdFile::open(fs, top_path);
  auto blob = top.read_attribute("metadata");
  ix.meta = enzo::DumpMeta::deserialize(blob);
  ix.attributes["metadata"] = blob;
  const amr::GridDescriptor& root = ix.meta.hierarchy.root();
  auto& root_fields = ix.fields[root.id];
  for (int f = 0; f < amr::kNumBaryonFields; ++f) {
    const std::string& name =
        amr::baryon_field_names()[static_cast<std::size_t>(f)];
    const hdf4::SdsInfo& i = top.info(name);
    root_fields[name] =
        FieldExtent{top_path, i.data_offset, i.data_bytes,
                    dims3(i.dims, top_path + ":" + name)};
  }
  if (ix.meta.n_particles > 0) {
    for (std::size_t a = 0; a < enzo::kNumParticleArrays; ++a) {
      const hdf4::SdsInfo& i = top.info(enzo::kParticleArrays[a].name);
      ix.particles.push_back(ParticleExtent{top_path, i.data_offset,
                                            enzo::kParticleArrays[a].elem_size});
    }
  }
  top.close();
  for (const amr::GridDescriptor& g : ix.meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    const std::string path = grid_file_name(base, g.id);
    hdf4::SdFile sub = hdf4::SdFile::open(fs, path);
    auto& gf = ix.fields[g.id];
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      const std::string& name =
          amr::baryon_field_names()[static_cast<std::size_t>(f)];
      const hdf4::SdsInfo& i = sub.info(name);
      gf[name] = FieldExtent{path, i.data_offset, i.data_bytes,
                             dims3(i.dims, path + ":" + name)};
    }
    sub.close();
  }
}

void build_hdf5(pfs::FileSystem& fs, const std::string& base,
                GenerationIndex& ix) {
  const std::string path = base + ".h5";
  hdf5::H5File h = hdf5::H5File::open(fs, path);
  auto blob = h.read_attribute("metadata");
  ix.meta = enzo::DumpMeta::deserialize(blob);
  ix.attributes["metadata"] = blob;
  for (const amr::GridDescriptor& g : ix.meta.hierarchy.grids()) {
    const std::string group =
        g.level == 0 ? std::string("topgrid/") : grid_group_name(g.id);
    auto& gf = ix.fields[g.id];
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      const std::string& name =
          amr::baryon_field_names()[static_cast<std::size_t>(f)];
      const hdf5::DatasetInfo& i = h.open_dataset(group + name).info();
      gf[name] = FieldExtent{path, i.data_addr, i.data_bytes,
                             dims3(i.dims, path + ":" + group + name)};
    }
  }
  if (ix.meta.n_particles > 0) {
    for (std::size_t a = 0; a < enzo::kNumParticleArrays; ++a) {
      const hdf5::DatasetInfo& i =
          h.open_dataset(std::string("topgrid/") +
                         enzo::kParticleArrays[a].name)
              .info();
      ix.particles.push_back(ParticleExtent{
          path, i.data_addr, enzo::kParticleArrays[a].elem_size});
    }
  }
  h.close();
}

void build_pnetcdf(pfs::FileSystem& fs, const std::string& base,
                   GenerationIndex& ix) {
  const std::string path = base + ".nc";
  pnetcdf::NcHeader h = pnetcdf::read_nc_header(fs, path);
  auto it = h.atts.find("metadata");
  if (it == h.atts.end()) {
    throw FormatError(path + ": missing metadata attribute");
  }
  ix.meta = enzo::DumpMeta::deserialize(it->second);
  ix.attributes = h.atts;
  auto var_dims = [&](const pnetcdf::Var& v) {
    std::vector<std::uint64_t> d;
    for (int id : v.dim_ids) {
      d.push_back(h.dims[static_cast<std::size_t>(id)].length);
    }
    return d;
  };
  for (const amr::GridDescriptor& g : ix.meta.hierarchy.grids()) {
    const std::string group =
        g.level == 0 ? std::string("topgrid/") : grid_group_name(g.id);
    auto& gf = ix.fields[g.id];
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      const std::string& name =
          amr::baryon_field_names()[static_cast<std::size_t>(f)];
      const pnetcdf::Var* v = h.find_var(group + name);
      if (v == nullptr) {
        throw FormatError(path + ": missing variable " + group + name);
      }
      gf[name] = FieldExtent{path, v->offset, v->bytes,
                             dims3(var_dims(*v), path + ":" + group + name)};
    }
  }
  if (ix.meta.n_particles > 0) {
    for (std::size_t a = 0; a < enzo::kNumParticleArrays; ++a) {
      const pnetcdf::Var* v = h.find_var(std::string("topgrid/") +
                                         enzo::kParticleArrays[a].name);
      if (v == nullptr) {
        throw FormatError(path + ": missing particle variable " +
                          enzo::kParticleArrays[a].name);
      }
      ix.particles.push_back(ParticleExtent{
          path, v->offset, enzo::kParticleArrays[a].elem_size});
    }
  }
}

void build_mpiio(pfs::FileSystem& fs, const std::string& base,
                 GenerationIndex& ix) {
  const std::string path = base + ".enzo";
  int fd = fs.open(path, pfs::OpenMode::kRead);
  std::vector<std::byte> fixed(16);
  fs.read_at(fd, 0, fixed);
  ByteReader r(fixed);
  if (r.u64() != enzo::kMpiioDumpMagic) {
    fs.close(fd);
    throw FormatError(path + ": bad dump magic");
  }
  std::uint64_t meta_bytes = r.u64();
  std::vector<std::byte> blob(meta_bytes);
  fs.read_at(fd, 16, blob);
  fs.close(fd);
  ix.meta = enzo::DumpMeta::deserialize(blob);
  ix.attributes["metadata"] = blob;

  const amr::GridDescriptor& root = ix.meta.hierarchy.root();
  enzo::MpiioSharedLayout layout =
      enzo::build_mpiio_layout(ix.meta, root.dims);
  auto& root_fields = ix.fields[root.id];
  for (int f = 0; f < amr::kNumBaryonFields; ++f) {
    const std::string& name =
        amr::baryon_field_names()[static_cast<std::size_t>(f)];
    root_fields[name] =
        FieldExtent{path, layout.field_off(f), layout.field_bytes, root.dims};
  }
  for (const amr::GridDescriptor& g : ix.meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    const std::uint64_t field_bytes = g.cell_count() * sizeof(float);
    auto& gf = ix.fields[g.id];
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      const std::string& name =
          amr::baryon_field_names()[static_cast<std::size_t>(f)];
      gf[name] = FieldExtent{
          path,
          layout.subgrid_off.at(g.id) +
              static_cast<std::uint64_t>(f) * field_bytes,
          field_bytes, g.dims};
    }
  }
  if (ix.meta.n_particles > 0) {
    for (std::size_t a = 0; a < enzo::kNumParticleArrays; ++a) {
      ix.particles.push_back(ParticleExtent{
          path, layout.particle_off[a], enzo::kParticleArrays[a].elem_size});
    }
  }
}

/// Stream the (sorted) particle_id array and record the sample ladder.
/// Timed: this is the one data-region scan an index build pays.
void build_id_ladder(pfs::FileSystem& fs, GenerationIndex& ix) {
  if (ix.meta.n_particles == 0 || ix.particles.empty()) return;
  const ParticleExtent& ids = ix.particles[0];
  const std::uint64_t n = ix.meta.n_particles;
  int fd = fs.open(ids.path, pfs::OpenMode::kRead);
  const std::uint64_t chunk_elems = (1 * MiB) / sizeof(std::uint64_t);
  std::vector<std::byte> buf;
  for (std::uint64_t first = 0; first < n; first += chunk_elems) {
    const std::uint64_t count = std::min(chunk_elems, n - first);
    buf.resize(count * sizeof(std::uint64_t));
    std::uint64_t done = 0;
    while (done < buf.size()) {
      std::uint64_t got = fs.read_at(
          fd, ids.offset + first * sizeof(std::uint64_t) + done,
          std::span<std::byte>(buf).subspan(done));
      if (got == 0) {
        fs.close(fd);
        throw IoError(ids.path + ": short read building particle-ID index");
      }
      done += got;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t id = 0;
      std::memcpy(&id, buf.data() + i * sizeof(std::uint64_t), sizeof id);
      const std::uint64_t global = first + i;
      if (global == 0) ix.id_min = id;
      if (global == n - 1) ix.id_max = id;
      if (global % kIdSampleStride == 0 || global == n - 1) {
        ix.id_samples.push_back(IdSample{id, global});
      }
    }
  }
  fs.close(fd);
}

}  // namespace

const FieldExtent& GenerationIndex::field(std::uint64_t grid_id,
                                          const std::string& name) const {
  auto git = fields.find(grid_id);
  if (git == fields.end()) {
    throw IoError("query: no grid " + std::to_string(grid_id) +
                  " in generation " + std::to_string(gen));
  }
  auto fit = git->second.find(name);
  if (fit == git->second.end()) {
    throw IoError("query: grid " + std::to_string(grid_id) +
                  " has no field '" + name + "'");
  }
  return fit->second;
}

bool GenerationIndex::has_field(std::uint64_t grid_id,
                                const std::string& name) const {
  auto git = fields.find(grid_id);
  return git != fields.end() &&
         git->second.find(name) != git->second.end();
}

std::vector<std::byte> GenerationIndex::serialize() const {
  ByteWriter w;
  w.u32(kIndexMagic);
  w.u32(kIndexVersion);
  w.u64(gen);
  w.u8(static_cast<std::uint8_t>(format));
  auto meta_blob = meta.serialize();
  w.u64(meta_blob.size());
  w.bytes(meta_blob);
  w.u64(fields.size());
  for (const auto& [grid_id, gf] : fields) {
    w.u64(grid_id);
    w.u32(static_cast<std::uint32_t>(gf.size()));
    for (const auto& [name, e] : gf) {
      w.str(name);
      w.str(e.path);
      w.u64(e.offset);
      w.u64(e.bytes);
      for (std::uint64_t d : e.dims) w.u64(d);
    }
  }
  w.u32(static_cast<std::uint32_t>(particles.size()));
  for (const ParticleExtent& p : particles) {
    w.str(p.path);
    w.u64(p.offset);
    w.u64(p.elem_size);
  }
  w.u64(id_min);
  w.u64(id_max);
  w.u64(id_samples.size());
  for (const IdSample& s : id_samples) {
    w.u64(s.id);
    w.u64(s.index);
  }
  w.u64(attributes.size());
  for (const auto& [name, value] : attributes) {
    w.str(name);
    w.u64(value.size());
    w.bytes(value);
  }
  return w.take();
}

GenerationIndex GenerationIndex::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.u32() != kIndexMagic) {
    throw FormatError("query index blob: bad magic");
  }
  std::uint32_t version = r.u32();
  if (version != kIndexVersion) {
    throw FormatError("query index blob: unsupported version " +
                      std::to_string(version));
  }
  GenerationIndex ix;
  ix.gen = r.u64();
  ix.format = static_cast<enzo::DumpFormat>(r.u8());
  std::uint64_t meta_bytes = r.u64();
  ix.meta = enzo::DumpMeta::deserialize(r.bytes(meta_bytes));
  std::uint64_t ngrids = r.u64();
  for (std::uint64_t g = 0; g < ngrids; ++g) {
    std::uint64_t grid_id = r.u64();
    std::uint32_t nf = r.u32();
    auto& gf = ix.fields[grid_id];
    for (std::uint32_t f = 0; f < nf; ++f) {
      std::string name = r.str();
      FieldExtent e;
      e.path = r.str();
      e.offset = r.u64();
      e.bytes = r.u64();
      for (auto& d : e.dims) d = r.u64();
      gf[std::move(name)] = std::move(e);
    }
  }
  std::uint32_t np = r.u32();
  for (std::uint32_t p = 0; p < np; ++p) {
    ParticleExtent e;
    e.path = r.str();
    e.offset = r.u64();
    e.elem_size = r.u64();
    ix.particles.push_back(std::move(e));
  }
  ix.id_min = r.u64();
  ix.id_max = r.u64();
  std::uint64_t ns = r.u64();
  for (std::uint64_t s = 0; s < ns; ++s) {
    IdSample sample;
    sample.id = r.u64();
    sample.index = r.u64();
    ix.id_samples.push_back(sample);
  }
  std::uint64_t na = r.u64();
  for (std::uint64_t a = 0; a < na; ++a) {
    std::string name = r.str();
    std::uint64_t bytes = r.u64();
    auto span = r.bytes(bytes);
    ix.attributes[std::move(name)].assign(span.begin(), span.end());
  }
  return ix;
}

GenerationIndex build_index(pfs::FileSystem& fs, const std::string& gen_base,
                            std::uint64_t gen) {
  GenerationIndex ix;
  ix.gen = gen;
  ix.format = enzo::detect_dump_format(fs, gen_base);
  switch (ix.format) {
    case enzo::DumpFormat::kHdf4:
      build_hdf4(fs, gen_base, ix);
      break;
    case enzo::DumpFormat::kMpiIo:
      build_mpiio(fs, gen_base, ix);
      break;
    case enzo::DumpFormat::kHdf5:
      build_hdf5(fs, gen_base, ix);
      break;
    case enzo::DumpFormat::kPnetcdf:
      build_pnetcdf(fs, gen_base, ix);
      break;
    case enzo::DumpFormat::kUnknown:
      throw IoError("query: no dump found under '" + gen_base + "'");
  }
  build_id_ladder(fs, ix);
  return ix;
}

}  // namespace paramrio::query
