// query::Service — a read-only query layer over committed CheckpointSeries
// generations, serving many concurrent reader procs (ROADMAP item 3).
//
// Three request shapes:
//   * extract()   — a sub-volume of one field of one grid, planned against
//                   the GenerationIndex into coalesced byte runs;
//   * particles() — all particles with IDs in [id_lo, id_hi], located via
//                   the index's ID sample ladder + binary search (arrays
//                   are stored sorted by ID on every backend);
//   * metadata()/attribute() — hierarchy/attribute lookups served entirely
//                   from the index, no data-region I/O.
//
// The perf core (the paper's read-side optimizations, aimed at N readers):
//   * planning: row runs of the requested sub-volume are coalesced; whole
//     rows/planes collapse to single runs ("query.plan", CPU);
//   * data sieving: runs are fetched as whole Hints::ds_buffer_size-aligned
//     blocks — one large read instead of many small ones ("query.io", IO);
//   * shared cache: blocks live in one SharedCache serving every reader
//     proc; a hot region costs ~1 physical fetch instead of N.  A reader
//     that misses while another proc is already fetching the same block
//     *blocks* on it (Proc::block/Engine::signal) rather than duplicating
//     the fetch, so with ample capacity the physical fetch count equals
//     the distinct-block count regardless of schedule — a determinism
//     lever the tests assert on.  Hits pay a memory-bandwidth copy
//     ("query.cache", CPU);
//   * prefetch overlap: with Hints::overlap, the next planned block is
//     fetched under the PR 5 shadow-clock deferral while the current one
//     is consumed; a reader arriving before the prefetch completes settles
//     to its ready time (recorded as a settle wait).
//
// Faults compose: transient I/O errors and short reads on the underlying
// file system (including a StagedFs staging tier) are absorbed within
// Hints::retry, with backoff charged on the virtual clock.  Results are
// byte-identical across backends, schedule seeds, engine backends, and
// cache on/off — the oracle tests' core claim.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "amr/grid.hpp"
#include "mdms/catalog.hpp"
#include "mpi/io/file.hpp"
#include "obs/registry.hpp"
#include "pfs/filesystem.hpp"
#include "query/cache.hpp"
#include "query/index.hpp"

namespace paramrio::query {

/// A sub-volume of one field of one grid; start/count are (z, y, x) cells
/// within the grid's own extent.
struct SubVolumeRequest {
  std::uint64_t grid_id = 0;
  std::string field;
  std::array<std::uint64_t, 3> start{};
  std::array<std::uint64_t, 3> count{};
};

/// What a request cost, for callers that want the plan/cache report.
struct ExtractPlan {
  std::uint64_t runs = 0;           ///< coalesced byte runs
  std::uint64_t payload_bytes = 0;  ///< bytes returned to the caller
  std::uint64_t span_bytes = 0;     ///< file span first..last requested byte
  std::uint64_t blocks = 0;         ///< sieve blocks touched
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;   ///< blocks this request fetched itself
  std::uint64_t shared_waits = 0;   ///< blocks waited on another's fetch
  std::uint64_t prefetches = 0;     ///< blocks fetched ahead under overlap
};

struct ServiceParams {
  /// ds_buffer_size sizes the sieve blocks; retry absorbs transient
  /// faults; overlap enables next-block prefetch.
  mpi::io::Hints hints;
  bool cache_enabled = true;
  std::uint64_t cache_capacity = 256 * MiB;
  /// Copy-out rate for bytes served from the shared cache and assembled
  /// into results (the serving node's memory bandwidth).
  double memory_bandwidth = mb_per_s(300);
};

class Service {
 public:
  using Params = ServiceParams;

  /// Serves the series whose generations live under "<series_base>.g<gen>"
  /// on `fs` (the naming CheckpointSeries uses).  `fs` must outlive the
  /// service.
  Service(pfs::FileSystem& fs, std::string series_base, Params params = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Persist/load generation indexes through `catalog` (not owned): open
  /// tries the catalog first and registers freshly built indexes back.
  void attach_catalog(mdms::Catalog* catalog) { catalog_ = catalog; }

  /// The index for generation `gen`, building it (timed) on first open.
  /// Only one proc builds; concurrent openers block until it is ready.
  /// Throws IoError if the generation is not committed.
  const GenerationIndex& open_generation(std::uint64_t gen);

  /// Sub-volume extract: returns count[0]*count[1]*count[2] floats in
  /// row-major (z, y, x) order.
  std::vector<float> extract(std::uint64_t gen, const SubVolumeRequest& req,
                             ExtractPlan* plan_out = nullptr);

  /// All particles with IDs in [id_lo, id_hi] (inclusive), every array
  /// filled, in ascending ID order.
  amr::ParticleSet particles(std::uint64_t gen, std::uint64_t id_lo,
                             std::uint64_t id_hi,
                             ExtractPlan* plan_out = nullptr);

  const enzo::DumpMeta& metadata(std::uint64_t gen);
  /// Attribute blob by name; throws IoError if absent.
  std::vector<std::byte> attribute(std::uint64_t gen,
                                   const std::string& name);

  const std::string& series_base() const { return series_base_; }
  const Params& params() const { return params_; }
  const SharedCache& cache() const { return cache_; }

  std::uint64_t extracts() const { return extracts_; }
  std::uint64_t particle_queries() const { return particle_queries_; }
  std::uint64_t metadata_queries() const { return metadata_queries_; }
  std::uint64_t planned_runs() const { return planned_runs_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  /// Bytes physically fetched from the file system (timed reads).
  std::uint64_t fetched_bytes() const { return fetched_bytes_; }
  /// Cache-mode block fetches this service performed itself (with ample
  /// capacity this equals the distinct-block count, schedule-invariantly).
  std::uint64_t demand_fetches() const { return demand_fetches_; }
  std::uint64_t io_retries() const { return io_retries_; }
  std::uint64_t prefetches() const { return prefetches_; }
  std::uint64_t shared_fetch_waits() const { return shared_fetch_waits_; }
  std::uint64_t index_builds() const { return index_builds_; }
  std::uint64_t index_loads() const { return index_loads_; }

  /// Counters under scope "query" (requests, bytes, cache, index).
  void export_counters(obs::MetricsRegistry& reg) const;

 private:
  /// One contiguous byte run of a request: file bytes [file_off,
  /// file_off + bytes) land at [out_off, out_off + bytes) of the result.
  struct PlannedRun {
    std::uint64_t file_off = 0;
    std::uint64_t bytes = 0;
    std::uint64_t out_off = 0;
  };

  struct GenState {
    enum class S { kEmpty, kBuilding, kReady };
    S state = S::kEmpty;
    GenerationIndex index;
    std::vector<int> waiters;  ///< global ranks blocked on the build
  };

  struct OpenPath {
    int fd = -1;
    std::uint64_t size = 0;
  };

  const GenerationIndex& gen_index(std::uint64_t gen);
  void require_committed(std::uint64_t gen);
  OpenPath& open_path(const std::string& path);

  /// Plan a (z, y, x) sub-volume of `e` into coalesced runs.
  std::vector<PlannedRun> plan_subvolume(const FieldExtent& e,
                                         const SubVolumeRequest& req,
                                         std::uint64_t* span_out);

  /// Execute runs (ascending file_off) against `path`, assembling into
  /// `out`; sieved into blocks, cached, deduplicated, prefetched per the
  /// service params.  Fills plan counters if given.
  void execute_runs(const std::string& path,
                    const std::vector<PlannedRun>& runs,
                    std::span<std::byte> out, ExtractPlan* plan);

  /// Fetch one whole block [block_off, block_off + len) of `path` (timed,
  /// retrying within hints.retry).
  std::vector<std::byte> fetch_block(const std::string& path,
                                     std::uint64_t block_off,
                                     std::uint64_t len);

  /// Obtain a block through the shared cache: hit, wait-for-inflight, or
  /// fetch-and-publish.  Returns the block's bytes.
  SharedCache::BlockData cached_block(const std::string& path,
                                      std::uint64_t block_off,
                                      std::uint64_t len, ExtractPlan* plan);

  /// Timed read of exactly out.size() bytes, absorbing short reads and
  /// (within hints.retry) transient errors.
  void timed_read(int fd, std::uint64_t offset, std::span<std::byte> out);

  void charge_copy(std::uint64_t bytes);
  void wake(std::vector<int>& waiters);

  pfs::FileSystem& fs_;
  std::string series_base_;
  Params params_;
  mdms::Catalog* catalog_ = nullptr;

  SharedCache cache_;
  std::map<std::uint64_t, GenState> gens_;
  std::map<std::string, OpenPath> paths_;
  /// Blocks with a fetch in flight: key -> global ranks waiting on it.
  std::map<SharedCache::Key, std::vector<int>> inflight_;

  std::uint64_t extracts_ = 0;
  std::uint64_t particle_queries_ = 0;
  std::uint64_t metadata_queries_ = 0;
  std::uint64_t planned_runs_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t fetched_bytes_ = 0;
  std::uint64_t demand_fetches_ = 0;
  std::uint64_t io_retries_ = 0;
  std::uint64_t prefetches_ = 0;
  std::uint64_t shared_fetch_waits_ = 0;
  std::uint64_t index_builds_ = 0;
  std::uint64_t index_loads_ = 0;
};

/// Render a plan + cache report (the visualization example's output).
std::string format_plan(const ExtractPlan& plan);

}  // namespace paramrio::query
