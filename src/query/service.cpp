#include "query/service.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "base/byte_io.hpp"
#include "fault/retry.hpp"
#include "mpi/io/deferred_scope.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"

namespace paramrio::query {

namespace {
// "CKPT-OK!" — CheckpointSeries' commit-marker format (checkpoint.cpp).
constexpr std::uint64_t kMarkerMagic = 0x434b50542d4f4b21ULL;
}  // namespace

Service::Service(pfs::FileSystem& fs, std::string series_base, Params params)
    : fs_(fs),
      series_base_(std::move(series_base)),
      params_(params),
      cache_(params.cache_capacity) {}

// Descriptors deliberately stay open: the service outlives requests, and
// its file systems are torn down with the testbed.
Service::~Service() = default;

void Service::require_committed(std::uint64_t gen) {
  const std::string marker =
      series_base_ + ".g" + std::to_string(gen) + ".ok";
  if (!fs_.exists(marker)) {
    throw IoError("query: generation " + std::to_string(gen) + " of '" +
                  series_base_ + "' is not committed");
  }
  int fd = fs_.open(marker, pfs::OpenMode::kRead);
  const std::uint64_t size = fs_.size(fd);
  if (size < 16) {
    fs_.close(fd);
    throw IoError("query: torn commit marker " + marker);
  }
  std::vector<std::byte> raw(16);
  timed_read(fd, 0, raw);
  fs_.close(fd);
  ByteReader r(raw);
  if (r.u64() != kMarkerMagic || r.u64() != gen) {
    throw IoError("query: invalid commit marker " + marker);
  }
}

const GenerationIndex& Service::open_generation(std::uint64_t gen) {
  sim::Proc& proc = sim::current_proc();
  GenState& st = gens_[gen];
  while (st.state == GenState::S::kBuilding) {
    st.waiters.push_back(proc.global_rank());
    double t0 = proc.now();
    proc.block();
    obs::record_wait(obs::WaitKind::kServerQueue, t0, proc.now());
  }
  if (st.state == GenState::S::kReady) return st.index;
  st.state = GenState::S::kBuilding;
  try {
    require_committed(gen);
    const std::string gbase = series_base_ + ".g" + std::to_string(gen);
    bool loaded = false;
    if (catalog_ != nullptr) {
      if (const std::vector<std::byte>* blob =
              catalog_->series_index(series_base_, gen)) {
        st.index = GenerationIndex::deserialize(*blob);
        ++index_loads_;
        loaded = true;
      }
    }
    if (!loaded) {
      st.index = build_index(fs_, gbase, gen);
      ++index_builds_;
      if (catalog_ != nullptr) {
        catalog_->put_series_index(series_base_, gen, st.index.serialize());
      }
    }
  } catch (...) {
    st.state = GenState::S::kEmpty;
    wake(st.waiters);
    throw;
  }
  st.state = GenState::S::kReady;
  wake(st.waiters);
  return st.index;
}

void Service::wake(std::vector<int>& waiters) {
  if (waiters.empty()) return;
  sim::Engine& eng = sim::current_proc().engine();
  for (int r : waiters) eng.signal(r);
  waiters.clear();
}

Service::OpenPath& Service::open_path(const std::string& path) {
  auto it = paths_.find(path);
  if (it != paths_.end()) return it->second;
  // The open is timed and may yield; another proc can race us here, so
  // re-check before publishing the descriptor.
  OpenPath op;
  op.fd = fs_.open(path, pfs::OpenMode::kRead);
  op.size = fs_.size(op.fd);
  auto [it2, inserted] = paths_.emplace(path, op);
  if (!inserted) fs_.close(op.fd);
  return it2->second;
}

void Service::timed_read(int fd, std::uint64_t offset,
                         std::span<std::byte> out) {
  const fault::RetryPolicy& rp = params_.hints.retry;
  sim::Proc& proc = sim::current_proc();
  std::uint64_t done = 0;
  int attempt = 0;
  while (done < out.size()) {
    try {
      std::uint64_t got = fs_.read_at(fd, offset + done, out.subspan(done));
      if (got == 0) {
        throw IoError("query: unexpected EOF at offset " +
                      std::to_string(offset + done));
      }
      done += got;
      attempt = 0;
    } catch (const TransientIoError&) {
      if (attempt >= rp.max_retries) throw;
      fault::charge_backoff(rp, attempt, proc);
      ++attempt;
      ++io_retries_;
    }
  }
}

std::vector<std::byte> Service::fetch_block(const std::string& path,
                                            std::uint64_t block_off,
                                            std::uint64_t len) {
  OpenPath& op = open_path(path);
  sim::Proc& proc = sim::current_proc();
  std::vector<std::byte> buf(len);
  double t0 = proc.now();
  {
    OBS_SPAN("query.io", sim::TimeCategory::kIo);
    timed_read(op.fd, block_off, buf);
  }
  obs::latency_sample("query.io.fetch", proc.now() - t0);
  fetched_bytes_ += len;
  return buf;
}

SharedCache::BlockData Service::cached_block(const std::string& path,
                                             std::uint64_t block_off,
                                             std::uint64_t len,
                                             ExtractPlan* plan) {
  sim::Proc& proc = sim::current_proc();
  SharedCache::Key key{path, block_off};
  for (;;) {
    if (auto found = cache_.lookup(key)) {
      if (plan != nullptr) ++plan->cache_hits;
      if (found->ready_time > proc.now()) {
        // A prefetch published this block before its shadow-clock fetch
        // completed; pay only the un-hidden remainder.
        double t0 = proc.now();
        proc.clock_at_least(found->ready_time, sim::TimeCategory::kIo);
        obs::record_wait(obs::WaitKind::kSettleWait, t0, found->ready_time);
      }
      return found->data;
    }
    auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      // Another reader is already fetching this block: wait for its
      // result instead of duplicating the physical read.
      in->second.push_back(proc.global_rank());
      ++shared_fetch_waits_;
      if (plan != nullptr) ++plan->shared_waits;
      double t0 = proc.now();
      proc.block();
      obs::record_wait(obs::WaitKind::kServerQueue, t0, proc.now());
      continue;  // re-check: hit, or fetch failed and we take over
    }
    inflight_.emplace(key, std::vector<int>{});
    SharedCache::BlockData data;
    try {
      data = std::make_shared<const std::vector<std::byte>>(
          fetch_block(path, block_off, len));
    } catch (...) {
      auto node = inflight_.extract(key);
      wake(node.mapped());
      throw;
    }
    ++demand_fetches_;
    if (plan != nullptr) ++plan->cache_misses;
    cache_.insert(key, data, proc.now());
    auto node = inflight_.extract(key);
    wake(node.mapped());
    return data;
  }
}

void Service::execute_runs(const std::string& path,
                           const std::vector<PlannedRun>& runs,
                           std::span<std::byte> out, ExtractPlan* plan) {
  if (runs.empty()) return;
  if (plan != nullptr) plan->runs += runs.size();
  planned_runs_ += runs.size();

  // Sieving off: exact per-run reads, no cache (there is no sieve buffer
  // to share).
  if (!params_.hints.data_sieving_reads) {
    for (const PlannedRun& r : runs) {
      OBS_SPAN("query.io", sim::TimeCategory::kIo);
      timed_read(open_path(path).fd, r.file_off,
                 out.subspan(r.out_off, r.bytes));
      fetched_bytes_ += r.bytes;
    }
    return;
  }

  const std::uint64_t bs =
      std::max<std::uint64_t>(params_.hints.ds_buffer_size, 1);
  OpenPath& op = open_path(path);

  // Ordered distinct sieve blocks touched by the (ascending) runs.
  std::vector<std::uint64_t> blocks;
  for (const PlannedRun& r : runs) {
    const std::uint64_t b0 = r.file_off / bs;
    const std::uint64_t b1 = (r.file_off + r.bytes - 1) / bs;
    for (std::uint64_t b = b0; b <= b1; ++b) {
      if (blocks.empty() || blocks.back() != b) blocks.push_back(b);
    }
  }
  if (plan != nullptr) plan->blocks += blocks.size();

  std::size_t run_i = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::uint64_t boff = blocks[i] * bs;
    const std::uint64_t blen = std::min(bs, op.size - boff);
    SharedCache::BlockData data;
    std::vector<std::byte> scratch;
    const std::byte* src = nullptr;
    if (params_.cache_enabled) {
      data = cached_block(path, boff, blen, plan);
      src = data->data();
      if (params_.hints.overlap && i + 1 < blocks.size()) {
        // Prefetch the next planned block on the shadow clock while this
        // one is consumed.  Deferred code never yields, so the
        // probe-fetch-insert sequence is atomic wrt other readers.
        const std::uint64_t noff = blocks[i + 1] * bs;
        SharedCache::Key nkey{path, noff};
        if (!cache_.contains(nkey) &&
            inflight_.find(nkey) == inflight_.end()) {
          sim::Proc& proc = sim::current_proc();
          mpi::io::DeferredScope ds(proc);
          auto bytes = fetch_block(path, noff, std::min(bs, op.size - noff));
          double t_done = ds.end();
          cache_.insert(
              nkey,
              std::make_shared<const std::vector<std::byte>>(
                  std::move(bytes)),
              t_done);
          ++prefetches_;
          if (plan != nullptr) ++plan->prefetches;
        }
      }
    } else {
      scratch = fetch_block(path, boff, blen);
      src = scratch.data();
    }
    // Copy every run piece intersecting this block into the result.
    OBS_SPAN("query.cache", sim::TimeCategory::kCpu);
    for (std::size_t r = run_i; r < runs.size(); ++r) {
      const PlannedRun& run = runs[r];
      if (run.file_off >= boff + blen) break;
      const std::uint64_t lo = std::max(run.file_off, boff);
      const std::uint64_t hi = std::min(run.file_off + run.bytes, boff + blen);
      if (hi <= lo) continue;
      std::memcpy(out.data() + run.out_off + (lo - run.file_off),
                  src + (lo - boff), hi - lo);
      charge_copy(hi - lo);
      if (r == run_i && run.file_off + run.bytes <= boff + blen) ++run_i;
    }
  }
}

void Service::charge_copy(std::uint64_t bytes) {
  if (bytes == 0) return;
  sim::current_proc().advance(
      static_cast<double>(bytes) / params_.memory_bandwidth,
      sim::TimeCategory::kCpu);
}

std::vector<Service::PlannedRun> Service::plan_subvolume(
    const FieldExtent& e, const SubVolumeRequest& req,
    std::uint64_t* span_out) {
  for (std::size_t a = 0; a < 3; ++a) {
    if (req.count[a] == 0 || req.start[a] + req.count[a] > e.dims[a]) {
      throw IoError("query: sub-volume out of bounds for field '" +
                    req.field + "' of grid " + std::to_string(req.grid_id));
    }
  }
  const std::uint64_t dy = e.dims[1];
  const std::uint64_t dx = e.dims[2];
  std::vector<PlannedRun> runs;
  std::uint64_t out_off = 0;
  for (std::uint64_t z = 0; z < req.count[0]; ++z) {
    for (std::uint64_t y = 0; y < req.count[1]; ++y) {
      const std::uint64_t elem =
          ((req.start[0] + z) * dy + (req.start[1] + y)) * dx + req.start[2];
      const std::uint64_t foff = e.offset + elem * sizeof(float);
      const std::uint64_t bytes = req.count[2] * sizeof(float);
      if (!runs.empty() &&
          runs.back().file_off + runs.back().bytes == foff) {
        runs.back().bytes += bytes;
      } else {
        runs.push_back(PlannedRun{foff, bytes, out_off});
      }
      out_off += bytes;
    }
  }
  if (span_out != nullptr) {
    *span_out = runs.back().file_off + runs.back().bytes -
                runs.front().file_off;
  }
  return runs;
}

std::vector<float> Service::extract(std::uint64_t gen,
                                    const SubVolumeRequest& req,
                                    ExtractPlan* plan_out) {
  sim::Proc& proc = sim::current_proc();
  const double t0 = proc.now();
  const GenerationIndex& ix = open_generation(gen);
  const FieldExtent& e = ix.field(req.grid_id, req.field);
  ExtractPlan plan;
  std::vector<PlannedRun> runs;
  {
    OBS_SPAN("query.plan", sim::TimeCategory::kCpu);
    runs = plan_subvolume(e, req, &plan.span_bytes);
    // Planning is index arithmetic: a fixed overhead plus a few ns/run.
    proc.advance(us(1) + 1.0e-8 * static_cast<double>(runs.size()),
                 sim::TimeCategory::kCpu);
  }
  std::vector<float> result(req.count[0] * req.count[1] * req.count[2]);
  auto out = std::as_writable_bytes(std::span(result));
  plan.payload_bytes = out.size();
  execute_runs(e.path, runs, out, &plan);
  payload_bytes_ += out.size();
  ++extracts_;
  obs::latency_sample("query.extract", proc.now() - t0);
  if (plan_out != nullptr) *plan_out = plan;
  return result;
}

amr::ParticleSet Service::particles(std::uint64_t gen, std::uint64_t id_lo,
                                    std::uint64_t id_hi,
                                    ExtractPlan* plan_out) {
  sim::Proc& proc = sim::current_proc();
  const double t0 = proc.now();
  const GenerationIndex& ix = open_generation(gen);
  ExtractPlan plan;
  amr::ParticleSet set;
  const std::uint64_t n = ix.meta.n_particles;
  auto finish = [&] {
    ++particle_queries_;
    obs::latency_sample("query.particles", proc.now() - t0);
    if (plan_out != nullptr) *plan_out = plan;
  };
  if (n == 0 || id_lo > id_hi || id_hi < ix.id_min || id_lo > ix.id_max) {
    finish();
    return set;
  }

  // The sample ladder bounds the ID window we must actually read.
  std::uint64_t win_lo = 0;
  std::uint64_t win_hi = n;
  {
    OBS_SPAN("query.plan", sim::TimeCategory::kCpu);
    auto lo_it = std::upper_bound(
        ix.id_samples.begin(), ix.id_samples.end(), id_lo,
        [](std::uint64_t v, const IdSample& s) { return v < s.id; });
    if (lo_it != ix.id_samples.begin()) win_lo = std::prev(lo_it)->index;
    auto hi_it = std::lower_bound(
        ix.id_samples.begin(), ix.id_samples.end(), id_hi,
        [](const IdSample& s, std::uint64_t v) { return s.id < v; });
    if (hi_it != ix.id_samples.end()) {
      win_hi = std::min<std::uint64_t>(n, hi_it->index + 1);
    }
    proc.advance(us(1), sim::TimeCategory::kCpu);
  }

  // Read the ID window (through the sieve/cache machinery) and binary
  // search the exact [first, last) index range.
  const ParticleExtent& ids = ix.particles[0];
  const std::uint64_t win = win_hi - win_lo;
  std::vector<std::byte> idbuf(win * sizeof(std::uint64_t));
  execute_runs(ids.path,
               {PlannedRun{ids.offset + win_lo * sizeof(std::uint64_t),
                           idbuf.size(), 0}},
               idbuf, &plan);
  std::vector<std::uint64_t> win_ids(win);
  std::memcpy(win_ids.data(), idbuf.data(), idbuf.size());
  const std::uint64_t first =
      win_lo + static_cast<std::uint64_t>(
                   std::lower_bound(win_ids.begin(), win_ids.end(), id_lo) -
                   win_ids.begin());
  const std::uint64_t last =
      win_lo + static_cast<std::uint64_t>(
                   std::upper_bound(win_ids.begin(), win_ids.end(), id_hi) -
                   win_ids.begin());
  const std::uint64_t count = last - first;
  set.resize(count);
  if (count > 0) {
    for (std::size_t a = 0; a < ix.particles.size(); ++a) {
      const ParticleExtent& pe = ix.particles[a];
      std::vector<std::byte> buf(count * pe.elem_size);
      execute_runs(pe.path,
                   {PlannedRun{pe.offset + first * pe.elem_size, buf.size(),
                               0}},
                   buf, &plan);
      enzo::particle_array_from_bytes(set, a, count, buf.data());
    }
  }
  plan.payload_bytes = enzo::particle_payload_bytes(count);
  payload_bytes_ += plan.payload_bytes;
  finish();
  return set;
}

const enzo::DumpMeta& Service::metadata(std::uint64_t gen) {
  sim::Proc& proc = sim::current_proc();
  const double t0 = proc.now();
  const GenerationIndex& ix = open_generation(gen);
  proc.advance(us(1), sim::TimeCategory::kCpu);
  ++metadata_queries_;
  obs::latency_sample("query.metadata", proc.now() - t0);
  return ix.meta;
}

std::vector<std::byte> Service::attribute(std::uint64_t gen,
                                          const std::string& name) {
  sim::Proc& proc = sim::current_proc();
  const double t0 = proc.now();
  const GenerationIndex& ix = open_generation(gen);
  auto it = ix.attributes.find(name);
  if (it == ix.attributes.end()) {
    throw IoError("query: generation " + std::to_string(gen) +
                  " has no attribute '" + name + "'");
  }
  charge_copy(it->second.size());
  ++metadata_queries_;
  obs::latency_sample("query.metadata", proc.now() - t0);
  return it->second;
}

void Service::export_counters(obs::MetricsRegistry& reg) const {
  const std::string scope = "query";
  reg.add(scope, "extracts", extracts_);
  reg.add(scope, "particle_queries", particle_queries_);
  reg.add(scope, "metadata_queries", metadata_queries_);
  reg.add(scope, "planned_runs", planned_runs_);
  reg.add(scope, "payload_bytes", payload_bytes_);
  reg.add(scope, "fetched_bytes", fetched_bytes_);
  reg.add(scope, "demand_fetches", demand_fetches_);
  reg.add(scope, "index_builds", index_builds_);
  if (index_loads_ > 0) reg.add(scope, "index_loads", index_loads_);
  if (io_retries_ > 0) reg.add(scope, "io_retries", io_retries_);
  if (prefetches_ > 0) reg.add(scope, "prefetches", prefetches_);
  if (shared_fetch_waits_ > 0) {
    reg.add(scope, "shared_fetch_waits", shared_fetch_waits_);
  }
  if (params_.cache_enabled) {
    reg.add(scope, "cache_hits", cache_.hits());
    reg.add(scope, "cache_misses", cache_.misses());
    reg.add(scope, "cache_hit_bytes", cache_.hit_bytes());
    reg.add(scope, "cache_inserted_bytes", cache_.inserted_bytes());
    if (cache_.evictions() > 0) {
      reg.add(scope, "cache_evictions", cache_.evictions());
    }
  }
}

std::string format_plan(const ExtractPlan& plan) {
  std::ostringstream os;
  os << "plan: " << plan.runs << " run(s), " << plan.blocks
     << " sieve block(s), payload "
     << static_cast<double>(plan.payload_bytes) / 1.0e6 << " MB, span "
     << static_cast<double>(plan.span_bytes) / 1.0e6 << " MB\n";
  os << "cache: " << plan.cache_hits << " hit(s), " << plan.cache_misses
     << " fetch(es), " << plan.shared_waits << " shared wait(s), "
     << plan.prefetches << " prefetch(es)\n";
  return os.str();
}

}  // namespace paramrio::query
