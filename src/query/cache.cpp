#include "query/cache.hpp"

namespace paramrio::query {

std::optional<SharedCache::Found> SharedCache::lookup(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  hit_bytes_ += it->second.data->size();
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return Found{it->second.data, it->second.ready_time};
}

void SharedCache::insert(const Key& key, BlockData data, double ready_time) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    current_bytes_ -= it->second.data->size();
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  evict_for(data->size());
  inserted_bytes_ += data->size();
  current_bytes_ += data->size();
  lru_.push_front(key);
  Entry e;
  e.data = std::move(data);
  e.ready_time = ready_time;
  e.lru_it = lru_.begin();
  entries_.emplace(key, std::move(e));
}

void SharedCache::evict_for(std::uint64_t incoming_bytes) {
  while (!entries_.empty() && current_bytes_ + incoming_bytes > capacity_) {
    const Key& victim = lru_.back();
    auto it = entries_.find(victim);
    current_bytes_ -= it->second.data->size();
    ++evictions_;
    entries_.erase(it);
    lru_.pop_back();
  }
}

void SharedCache::invalidate_path(const std::string& path) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.path == path) {
      current_bytes_ -= it->second.data->size();
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SharedCache::clear() {
  entries_.clear();
  lru_.clear();
  current_bytes_ = 0;
}

}  // namespace paramrio::query
