// query::SharedCache — the shared read cache behind the query service.
//
// One cache serves every concurrent reader proc of a Service: entries are
// whole data-sieving blocks (Hints::ds_buffer_size bytes, aligned within
// the file) keyed by (path, block offset) — the path already carries the
// generation (CheckpointSeries generation bases are distinct), so the key
// is effectively (generation, file, segment).  N readers of a hot region
// cost ~1 physical fetch instead of N.
//
// The cache itself is a plain deterministic LRU byte store: all simulated
// timing (fetch cost, hit copy cost, waiter blocking, prefetch settling)
// lives in query::Service.  Entries carry the *virtual completion time* of
// the fetch that produced them so a reader hitting a still-in-flight
// prefetched block can settle to it (Proc::clock_at_least) before copying.
//
// Blocks are handed out as shared_ptr so an entry evicted mid-copy stays
// alive for the reader holding it.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/units.hpp"

namespace paramrio::query {

class SharedCache {
 public:
  using BlockData = std::shared_ptr<const std::vector<std::byte>>;

  struct Key {
    std::string path;
    std::uint64_t offset = 0;  ///< block-aligned start within the file

    bool operator<(const Key& o) const {
      if (path != o.path) return path < o.path;
      return offset < o.offset;
    }
  };

  struct Found {
    BlockData data;
    double ready_time = 0.0;  ///< virtual completion time of the fetch
  };

  explicit SharedCache(std::uint64_t capacity_bytes = 256 * MiB)
      : capacity_(capacity_bytes) {}

  /// Look a block up, counting a hit or a miss and refreshing LRU recency.
  std::optional<Found> lookup(const Key& key);

  /// Probe without touching counters or recency (prefetch planning).
  bool contains(const Key& key) const { return entries_.count(key) != 0; }

  /// Insert (or replace) a block, evicting least-recently-used entries
  /// until the new total fits the capacity.  An oversized single block is
  /// still cached alone.
  void insert(const Key& key, BlockData data, double ready_time);

  /// Drop every block of `path` (namespace events; not used on the normal
  /// read path — committed generations are immutable).
  void invalidate_path(const std::string& path);

  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t hit_bytes() const { return hit_bytes_; }
  std::uint64_t inserted_bytes() const { return inserted_bytes_; }
  std::uint64_t current_bytes() const { return current_bytes_; }
  std::uint64_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    BlockData data;
    double ready_time = 0.0;
    std::list<Key>::iterator lru_it;
  };

  void evict_for(std::uint64_t incoming_bytes);

  std::uint64_t capacity_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< front = most recently used

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t hit_bytes_ = 0;
  std::uint64_t inserted_bytes_ = 0;
  std::uint64_t current_bytes_ = 0;
};

}  // namespace paramrio::query
