// MDMS — a Meta-Data Management System for AMR I/O.
//
// The paper's stated future work: "using Meta-Data Management System (MDMS)
// on AMR applications to develop a powerful I/O system with the help of the
// collected metadata" (referencing Liao, Shen & Choudhary, HiPC 2000).
// This module implements that direction: a persistent catalog of per-dataset
// metadata — rank, dimensions, element size, observed access pattern and
// request statistics — plus an advisor that turns the catalog plus the
// target platform's traits into concrete I/O strategy decisions (collective
// vs independent, collective-buffer size, aggregator count, stripe-size
// recommendation).
//
// The metadata kinds are exactly those the paper identifies as useful:
// "the rank of arrays, the access pattern (regular and irregular), the
// access order of arrays".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/byte_io.hpp"
#include "mpi/io/file.hpp"
#include "pfs/filesystem.hpp"
#include "trace/io_tracer.hpp"

namespace paramrio::mdms {

/// The paper's access-pattern taxonomy.
enum class AccessPattern : std::uint8_t {
  kUnknown = 0,
  kRegularBlock = 1,  ///< (Block,...,Block) partitioned n-D array
  kIrregular = 2,     ///< data-dependent (e.g. particles by position)
  kWholeObject = 3,   ///< one rank accesses the entire dataset
  kSequentialAppend = 4,
};

std::string to_string(AccessPattern p);

/// One dataset's catalog entry.
struct DatasetRecord {
  std::string name;
  std::uint32_t array_rank = 0;
  std::vector<std::uint64_t> dims;
  std::uint64_t element_size = 0;
  AccessPattern pattern = AccessPattern::kUnknown;
  std::uint32_t access_order = 0;  ///< position in the fixed access sequence

  // Observed statistics (updated by record_access / learn_from_trace).
  std::uint64_t accesses = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t typical_request = 0;  ///< running mean request size
  std::uint32_t writer_count = 0;     ///< distinct ranks seen writing

  std::uint64_t total_elements() const {
    std::uint64_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
};

/// Traits of the target platform the advisor needs (derivable from a
/// platform::Machine, but kept independent of that module).
struct PlatformTraits {
  bool shared_file_write_locks = false;  ///< GPFS-style tokens
  bool network_bound = false;            ///< compute<->I/O path is scarce
  std::uint64_t stripe_size = 64 * KiB;
  int io_parallelism = 8;  ///< disks / I/O nodes
};

/// The advisor's output: how to access this dataset on this platform.
struct Advice {
  bool use_collective = false;
  bool use_data_sieving = true;
  mpi::io::Hints hints;
  std::uint64_t recommended_stripe = 0;  ///< 0 = keep the FS default
  std::string rationale;
};

class Catalog {
 public:
  /// Register (or replace) a dataset's static metadata.
  void register_dataset(DatasetRecord record);

  bool has(const std::string& name) const;
  const DatasetRecord& lookup(const std::string& name) const;
  std::vector<std::string> names() const;  ///< in access order

  /// Fold one observed request into the record's statistics.
  void record_access(const std::string& name, std::uint64_t bytes,
                     bool is_write, int rank);

  /// Mine a whole I/O trace: every traced file becomes/updates a record and
  /// its pattern is classified from the request stream.
  void learn_from_trace(const trace::IoTracer& tracer);

  // ---- series indexes (the query tier's per-generation extent maps) ----

  /// Register (or replace) the serialized query index for one generation
  /// of a checkpoint series.  Clears any tombstone for that generation.
  void put_series_index(const std::string& series, std::uint64_t gen,
                        std::vector<std::byte> blob);

  /// The stored index blob, or nullptr when the generation is unknown or
  /// tombstoned (callers then rebuild from the dump).
  const std::vector<std::byte>* series_index(const std::string& series,
                                             std::uint64_t gen) const;

  /// Tombstone a generation's index (e.g. the dump was pruned).  The
  /// tombstone persists through save/load so a stale blob from an older
  /// catalog file can never resurrect it.
  void drop_series_index(const std::string& series, std::uint64_t gen);

  /// Generations with a live (non-tombstoned) index, ascending.
  std::vector<std::uint64_t> series_generations(
      const std::string& series) const;

  /// Persist the catalog into a file on `fs` / load it back.  Saves use
  /// the versioned "MDM2" header (records + series indexes + tombstones);
  /// load also accepts the original version-less "MDMS" records-only
  /// format.
  void save(pfs::FileSystem& fs, const std::string& path) const;
  static Catalog load(pfs::FileSystem& fs, const std::string& path);

  std::size_t size() const { return records_.size(); }

 private:
  struct SeriesEntry {
    std::vector<std::byte> blob;
    bool tombstone = false;
  };

  std::map<std::string, DatasetRecord> records_;
  std::map<std::string, std::vector<int>> writers_seen_;
  std::map<std::string, std::map<std::uint64_t, SeriesEntry>> series_;
  std::uint32_t next_order_ = 0;
};

/// Turn a record plus platform traits into an access strategy — the paper's
/// "with the help of these metadata, the proper optimal I/O strategies can
/// be determined".
Advice advise(const DatasetRecord& record, const PlatformTraits& traits);

}  // namespace paramrio::mdms
