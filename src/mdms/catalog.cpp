#include "mdms/catalog.hpp"

#include <algorithm>
#include <set>

namespace paramrio::mdms {

std::string to_string(AccessPattern p) {
  switch (p) {
    case AccessPattern::kUnknown:
      return "unknown";
    case AccessPattern::kRegularBlock:
      return "regular-block";
    case AccessPattern::kIrregular:
      return "irregular";
    case AccessPattern::kWholeObject:
      return "whole-object";
    case AccessPattern::kSequentialAppend:
      return "sequential-append";
  }
  throw LogicError("bad AccessPattern");
}

void Catalog::register_dataset(DatasetRecord record) {
  PARAMRIO_REQUIRE(!record.name.empty(), "Catalog: empty dataset name");
  auto it = records_.find(record.name);
  if (it == records_.end()) {
    record.access_order = next_order_++;
    records_[record.name] = std::move(record);
  } else {
    record.access_order = it->second.access_order;
    // Preserve accumulated statistics on re-registration.
    record.accesses = it->second.accesses;
    record.total_bytes = it->second.total_bytes;
    record.typical_request = it->second.typical_request;
    record.writer_count = it->second.writer_count;
    it->second = std::move(record);
  }
}

bool Catalog::has(const std::string& name) const {
  return records_.find(name) != records_.end();
}

const DatasetRecord& Catalog::lookup(const std::string& name) const {
  auto it = records_.find(name);
  if (it == records_.end()) {
    throw IoError("MDMS catalog: no record for " + name);
  }
  return it->second;
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& [name, rec] : records_) out.push_back(name);
  std::sort(out.begin(), out.end(), [&](const auto& a, const auto& b) {
    return records_.at(a).access_order < records_.at(b).access_order;
  });
  return out;
}

void Catalog::record_access(const std::string& name, std::uint64_t bytes,
                            bool is_write, int rank) {
  auto it = records_.find(name);
  if (it == records_.end()) {
    DatasetRecord r;
    r.name = name;
    register_dataset(std::move(r));
    it = records_.find(name);
  }
  DatasetRecord& r = it->second;
  r.accesses += 1;
  r.total_bytes += bytes;
  r.typical_request = r.total_bytes / r.accesses;
  if (is_write) {
    auto& seen = writers_seen_[name];
    if (std::find(seen.begin(), seen.end(), rank) == seen.end()) {
      seen.push_back(rank);
      r.writer_count = static_cast<std::uint32_t>(seen.size());
    }
  }
}

void Catalog::learn_from_trace(const trace::IoTracer& tracer) {
  // Group events per file and classify.
  struct PerFile {
    std::vector<const trace::IoEvent*> events;
  };
  std::map<std::string, PerFile> by_file;
  for (const trace::IoEvent& e : tracer.events()) {
    if (!e.is_data()) continue;  // opens/closes carry no access pattern
    by_file[e.path].events.push_back(&e);
  }
  for (auto& [path, pf] : by_file) {
    std::set<int> ranks;
    std::set<int> writers;
    bool all_sequential = true;
    std::map<int, std::uint64_t> prev_end;
    for (const trace::IoEvent* e : pf.events) {
      ranks.insert(e->rank);
      if (e->is_write) writers.insert(e->rank);
      auto it = prev_end.find(e->rank);
      if (it != prev_end.end() && it->second != e->offset) {
        all_sequential = false;
      }
      prev_end[e->rank] = e->offset + e->bytes;
      record_access(path, e->bytes, e->is_write, e->rank);
    }
    DatasetRecord& r = records_[path];
    if (r.name.empty()) r.name = path;
    if (ranks.size() <= 1) {
      r.pattern = all_sequential ? AccessPattern::kSequentialAppend
                                 : AccessPattern::kWholeObject;
    } else if (all_sequential) {
      // Many ranks, each strictly sequential in its own region: block-wise.
      r.pattern = AccessPattern::kRegularBlock;
    } else {
      r.pattern = AccessPattern::kIrregular;
    }
  }
}

void Catalog::put_series_index(const std::string& series, std::uint64_t gen,
                               std::vector<std::byte> blob) {
  SeriesEntry& e = series_[series][gen];
  e.blob = std::move(blob);
  e.tombstone = false;
}

const std::vector<std::byte>* Catalog::series_index(const std::string& series,
                                                    std::uint64_t gen) const {
  auto sit = series_.find(series);
  if (sit == series_.end()) return nullptr;
  auto git = sit->second.find(gen);
  if (git == sit->second.end() || git->second.tombstone) return nullptr;
  return &git->second.blob;
}

void Catalog::drop_series_index(const std::string& series,
                                std::uint64_t gen) {
  SeriesEntry& e = series_[series][gen];
  e.blob.clear();
  e.tombstone = true;
}

std::vector<std::uint64_t> Catalog::series_generations(
    const std::string& series) const {
  std::vector<std::uint64_t> out;
  auto sit = series_.find(series);
  if (sit == series_.end()) return out;
  for (const auto& [gen, e] : sit->second) {
    if (!e.tombstone) out.push_back(gen);
  }
  return out;
}

namespace {
constexpr std::uint32_t kMagicV1 = 0x534D444D;  // "MDMS" (records only)
constexpr std::uint32_t kMagicV2 = 0x324D444D;  // "MDM2" (versioned)
constexpr std::uint32_t kVersion = 2;
}  // namespace

void Catalog::save(pfs::FileSystem& fs, const std::string& path) const {
  ByteWriter w;
  w.u32(kMagicV2);
  w.u32(kVersion);
  w.u64(records_.size());
  for (const std::string& name : names()) {
    const DatasetRecord& r = records_.at(name);
    w.str(r.name);
    w.u32(r.array_rank);
    w.u32(static_cast<std::uint32_t>(r.dims.size()));
    for (auto d : r.dims) w.u64(d);
    w.u64(r.element_size);
    w.u8(static_cast<std::uint8_t>(r.pattern));
    w.u32(r.access_order);
    w.u64(r.accesses);
    w.u64(r.total_bytes);
    w.u64(r.typical_request);
    w.u32(r.writer_count);
  }
  w.u64(series_.size());
  for (const auto& [series, gens] : series_) {
    w.str(series);
    w.u64(gens.size());
    for (const auto& [gen, e] : gens) {
      w.u64(gen);
      w.u8(e.tombstone ? 1 : 0);
      w.u64(e.blob.size());
      w.bytes(e.blob);
    }
  }
  auto bytes = w.take();
  int fd = fs.open(path, pfs::OpenMode::kCreate);
  fs.write_at(fd, 0, bytes);
  fs.close(fd);
}

Catalog Catalog::load(pfs::FileSystem& fs, const std::string& path) {
  int fd = fs.open(path, pfs::OpenMode::kRead);
  std::vector<std::byte> bytes(fs.size(fd));
  fs.read_at(fd, 0, bytes);
  fs.close(fd);

  ByteReader r(bytes);
  std::uint32_t magic = r.u32();
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw FormatError(path + ": not an MDMS catalog");
  }
  if (magic == kMagicV2) {
    std::uint32_t version = r.u32();
    if (version != kVersion) {
      throw FormatError(path + ": unsupported MDMS catalog version " +
                        std::to_string(version));
    }
  }
  Catalog c;
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    DatasetRecord rec;
    rec.name = r.str();
    rec.array_rank = r.u32();
    std::uint32_t nd = r.u32();
    for (std::uint32_t d = 0; d < nd; ++d) rec.dims.push_back(r.u64());
    rec.element_size = r.u64();
    rec.pattern = static_cast<AccessPattern>(r.u8());
    rec.access_order = r.u32();
    rec.accesses = r.u64();
    rec.total_bytes = r.u64();
    rec.typical_request = r.u64();
    rec.writer_count = r.u32();
    c.next_order_ = std::max(c.next_order_, rec.access_order + 1);
    c.records_[rec.name] = std::move(rec);
  }
  if (magic == kMagicV2) {
    std::uint64_t ns = r.u64();
    for (std::uint64_t s = 0; s < ns; ++s) {
      std::string series = r.str();
      std::uint64_t ng = r.u64();
      auto& gens = c.series_[series];
      for (std::uint64_t g = 0; g < ng; ++g) {
        std::uint64_t gen = r.u64();
        SeriesEntry e;
        e.tombstone = r.u8() != 0;
        std::uint64_t blob_bytes = r.u64();
        auto span = r.bytes(blob_bytes);
        e.blob.assign(span.begin(), span.end());
        gens[gen] = std::move(e);
      }
    }
  }
  return c;
}

Advice advise(const DatasetRecord& record, const PlatformTraits& traits) {
  Advice a;
  switch (record.pattern) {
    case AccessPattern::kRegularBlock: {
      // (Block,...,Block) arrays: collective two-phase unless the platform
      // punishes shared-file concurrent writes harder than the gather costs.
      a.use_collective = !traits.shared_file_write_locks;
      a.rationale = a.use_collective
                        ? "regular block partition: two-phase collective I/O"
                        : "regular block partition, but shared-file write "
                          "locks favour fewer writers: independent I/O with "
                          "sieving";
      // Size the collective buffer to a multiple of the stripe so windows
      // align with servers, and on a striped platform let the MPI-IO layer
      // query the layout and align file domains to stripe boundaries.
      a.hints.cb_buffer_size =
          std::max<std::uint64_t>(4 * traits.stripe_size, 4 * MiB);
      if (traits.stripe_size > 0) {
        a.hints.cb_align = mpi::io::Hints::kCbAlignAuto;
      }
      if (traits.shared_file_write_locks) {
        a.hints.cb_nodes = std::max(1, traits.io_parallelism / 2);
      }
      break;
    }
    case AccessPattern::kIrregular: {
      // Data-dependent placement: sort/redistribute first, then block-wise
      // contiguous independent access (the paper's particle strategy).
      a.use_collective = false;
      a.use_data_sieving = true;
      a.rationale =
          "irregular placement: redistribute to block-wise order, then "
          "contiguous independent I/O";
      break;
    }
    case AccessPattern::kWholeObject:
    case AccessPattern::kSequentialAppend: {
      a.use_collective = false;
      a.use_data_sieving = false;
      a.rationale = "single-owner sequential access: plain streaming";
      break;
    }
    case AccessPattern::kUnknown: {
      a.use_collective = false;
      a.rationale = "no metadata: conservative independent access";
      break;
    }
  }
  // Stripe recommendation: the paper's closing design point — match the
  // stripe to the typical request so one request lands on one server.
  if (record.typical_request > 0) {
    std::uint64_t s = 16 * KiB;
    while (s < record.typical_request && s < 4 * MiB) s <<= 1;
    a.recommended_stripe = s;
  }
  return a;
}

}  // namespace paramrio::mdms
