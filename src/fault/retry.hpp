// Retry/backoff policy shared by every layer that survives transient I/O
// faults: the pfs-level retry loop (protecting serial libraries like the
// HDF4 writer that talk to the file system directly) and mpi::io::File
// (protecting the ROMIO-style independent and two-phase collective paths).
//
// Delays are *virtual-clock* seconds: a retrying rank charges the backoff to
// its simulated processor via sim::Proc::advance, so retries cost virtual
// time exactly like a real blocked I/O call would, and runs stay
// bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace paramrio::sim {
class Proc;
}

namespace paramrio::fault {

struct RetryPolicy {
  /// Re-attempts after the first failure; 0 disables retrying (transient
  /// errors propagate to the caller unchanged).
  int max_retries = 0;
  /// Delay before the first re-attempt, in virtual seconds.
  double backoff_base = 500e-6;
  /// Multiplier applied per further attempt (exponential backoff).
  double backoff_factor = 2.0;
  /// Ceiling on a single delay, in virtual seconds.
  double backoff_max = 0.1;
  /// Read back the landed prefix of a retryable short write and compare it
  /// against the source buffer before resuming (mpi::io::File only).
  bool verify_short_writes = true;
  /// Record every backoff delay in RetryStats::delay_log (tests).
  bool log_delays = false;

  bool enabled() const { return max_retries > 0; }
};

/// Backoff delay before re-attempt `attempt` (0-based), capped at
/// backoff_max.  Pure: monotone non-decreasing in `attempt` for any policy
/// with backoff_factor >= 1 — the property the retry tests pin down.
double backoff_delay(const RetryPolicy& policy, int attempt);

/// Charge the backoff before re-attempt `attempt` (0-based) to `proc`'s
/// virtual clock as I/O time and record it as a retry-backoff wait for the
/// blame engine.  Shared by every retry loop (pfs-level, mpi::io::File, the
/// staging drain) so backoff accounting stays uniform.  Returns the delay
/// charged.
double charge_backoff(const RetryPolicy& policy, int attempt, sim::Proc& proc);

/// One logged backoff: which retried operation (per-File serial) and how
/// long it slept on the virtual clock.
struct RetryDelay {
  std::uint64_t op = 0;
  double seconds = 0.0;
};

/// Counters a retrying layer accumulates (embedded in mpi::io::FileStats).
struct RetryStats {
  std::uint64_t retries = 0;              ///< re-attempts performed
  std::uint64_t transient_errors = 0;     ///< TransientIoError observed
  std::uint64_t short_writes = 0;         ///< writes that landed short
  std::uint64_t short_reads = 0;          ///< reads that returned short
  std::uint64_t write_verifications = 0;  ///< short-write read-back checks
  double backoff_seconds = 0.0;           ///< total virtual backoff slept
  std::vector<RetryDelay> delay_log;      ///< filled when log_delays is set
};

/// Compact rendering for the hints key ("r4,b0.0005,f2,m0.1"); "r0" when
/// retrying is disabled.
std::string retry_key(const RetryPolicy& policy);

}  // namespace paramrio::fault
