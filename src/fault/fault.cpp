#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"

namespace paramrio::fault {

namespace {

bool is_io_kind(FaultKind k) {
  return k != FaultKind::kMsgDrop && k != FaultKind::kMsgDup;
}

/// FNV-1a over the identifying fields of an operation, so a spec can tell
/// "the same op retried" from "the next op" when bounding consecutive hits.
std::uint64_t site_hash(int rank, bool is_write, const std::string& path,
                        std::uint64_t offset, std::uint64_t bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(rank));
  mix(is_write ? 1 : 0);
  for (char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  mix(offset);
  mix(bytes);
  return h;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kShortRead:
      return "short_read";
    case FaultKind::kTransientError:
      return "transient_error";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kServerDown:
      return "server_down";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kMsgDrop:
      return "msg_drop";
    case FaultKind::kMsgDup:
      return "msg_dup";
  }
  return "unknown";
}

Injector::Injector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      state_(plan_.specs.size()) {}

bool Injector::io_spec_fires(std::size_t i, const FaultSpec& spec, int rank,
                             double now, bool is_write,
                             const std::string& path, std::uint64_t offset,
                             std::uint64_t bytes, int server) {
  if (!is_io_kind(spec.kind)) return false;
  // A short transfer must move at least one byte and fewer than requested;
  // sub-2-byte ops cannot be shorted.
  if ((spec.kind == FaultKind::kShortWrite ||
       spec.kind == FaultKind::kShortRead) &&
      bytes < 2) {
    return false;
  }
  const bool dir_ok =
      spec.kind == FaultKind::kShortWrite   ? is_write
      : spec.kind == FaultKind::kShortRead ? !is_write
      : (is_write ? spec.match_writes : spec.match_reads);
  if (!dir_ok) return false;
  if (spec.rank >= 0 && spec.rank != rank) return false;
  if (spec.server >= 0 && spec.server != server) return false;
  if (!spec.path_substr.empty() &&
      path.find(spec.path_substr) == std::string::npos) {
    return false;
  }
  if (offset < spec.offset_lo || offset >= spec.offset_hi) return false;
  const std::uint64_t serial = counters_.io_ops;
  if (serial < spec.first_op || serial >= spec.last_op) return false;
  if (now < spec.after_time || now >= spec.until_time) return false;

  SpecState& st = state_[i];
  if (st.fired >= spec.max_faults) return false;
  if (spec.probability < 1.0 && rng_.next_double() >= spec.probability) {
    return false;
  }
  const std::uint64_t site = site_hash(rank, is_write, path, offset, bytes);
  if (st.site == site && st.consecutive >= spec.max_consecutive) {
    // This exact op has been faulted max_consecutive times in a row: let it
    // through once so every transient-failure run stays bounded.
    st.consecutive = 0;
    return false;
  }
  if (st.site == site) {
    st.consecutive += 1;
  } else {
    st.site = site;
    st.consecutive = 1;
  }
  st.fired += 1;
  return true;
}

IoFaultAction Injector::on_io(int rank, double now, bool is_write,
                              const std::string& path, std::uint64_t offset,
                              std::uint64_t bytes, int server) {
  IoFaultAction action;
  if (!enabled_) return action;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (!io_spec_fires(i, spec, rank, now, is_write, path, offset, bytes,
                       server)) {
      continue;
    }
    counters_.injected[static_cast<std::size_t>(spec.kind)] += 1;
    switch (spec.kind) {
      case FaultKind::kShortWrite:
      case FaultKind::kShortRead: {
        action.kind = IoFaultAction::Kind::kShort;
        auto cut = static_cast<std::uint64_t>(
            std::floor(static_cast<double>(bytes) * spec.short_fraction));
        action.transfer = std::clamp<std::uint64_t>(cut, 1, bytes - 1);
        break;
      }
      case FaultKind::kTransientError:
      case FaultKind::kServerDown:
        action.kind = IoFaultAction::Kind::kTransientError;
        break;
      case FaultKind::kStall:
        action.kind = IoFaultAction::Kind::kStall;
        action.stall_seconds = spec.stall_seconds;
        break;
      case FaultKind::kCrash:
        action.kind = IoFaultAction::Kind::kCrash;
        break;
      case FaultKind::kMsgDrop:
      case FaultKind::kMsgDup:
        break;  // unreachable: filtered by io_spec_fires
    }
    break;  // first firing spec wins
  }
  counters_.io_ops += 1;
  return action;
}

bool Injector::degraded(double now) const {
  if (!enabled_) return false;
  for (const FaultSpec& spec : plan_.specs) {
    if (spec.kind == FaultKind::kServerDown && now >= spec.after_time &&
        now < spec.until_time) {
      return true;
    }
  }
  return false;
}

NetFaultAction Injector::on_message(int src_rank, int dst_rank,
                                    std::uint64_t bytes, double now) {
  NetFaultAction action;
  if (!enabled_) {
    return action;
  }
  const std::uint64_t serial = counters_.messages;
  counters_.messages += 1;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.kind != FaultKind::kMsgDrop && spec.kind != FaultKind::kMsgDup) {
      continue;
    }
    if (spec.rank >= 0 && spec.rank != src_rank) continue;
    if (serial < spec.first_op || serial >= spec.last_op) continue;
    if (now < spec.after_time || now >= spec.until_time) continue;
    SpecState& st = state_[i];
    if (st.fired >= spec.max_faults) continue;
    if (spec.probability < 1.0 && rng_.next_double() >= spec.probability) {
      continue;
    }
    const std::uint64_t site =
        site_hash(src_rank, false, std::string(), // messages have no path
                  static_cast<std::uint64_t>(dst_rank), bytes);
    if (st.site == site && st.consecutive >= spec.max_consecutive) {
      st.consecutive = 0;
      continue;
    }
    if (st.site == site) {
      st.consecutive += 1;
    } else {
      st.site = site;
      st.consecutive = 1;
    }
    st.fired += 1;
    counters_.injected[static_cast<std::size_t>(spec.kind)] += 1;
    action.kind = spec.kind == FaultKind::kMsgDrop
                      ? NetFaultAction::Kind::kDrop
                      : NetFaultAction::Kind::kDuplicate;
    return action;
  }
  return action;
}

void Injector::export_counters(obs::MetricsRegistry& reg,
                               const std::string& scope) const {
  reg.add(scope, "io_ops_seen", counters_.io_ops);
  reg.add(scope, "messages_seen", counters_.messages);
  reg.add(scope, "injected_total", counters_.injected_total());
  for (std::size_t k = 0; k < 8; ++k) {
    if (counters_.injected[k] == 0) continue;
    reg.add(scope,
            std::string("injected_") + to_string(static_cast<FaultKind>(k)),
            counters_.injected[k]);
  }
}

}  // namespace paramrio::fault
