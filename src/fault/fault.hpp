// Deterministic, seed-driven fault injection for the simulated I/O stack.
//
// A FaultPlan is a declarative list of FaultSpecs.  Each spec matches a
// subset of operations (by rank, I/O server, path substring, byte-offset
// range, direction) and a schedule (op-count window, virtual-time window,
// per-op probability, total and consecutive budgets), and names the fault to
// inject when it fires:
//
//   * kShortWrite / kShortRead — the operation transfers only a prefix
//   * kTransientError          — TransientIoError; retryable, no bytes move
//   * kStall                   — the op completes after an extra virtual-time
//                                delay (a loaded I/O server)
//   * kServerDown              — every matching op fails with
//                                TransientIoError while the spec's virtual-
//                                time window is open; degraded() reports the
//                                outage so collectives can fall back
//   * kCrash                   — CrashError; unwinds the rank and aborts the
//                                Engine run (a mid-dump node crash)
//   * kMsgDrop / kMsgDup       — a network message is lost (sender pays the
//                                wasted transfer plus a retransmit timeout)
//                                or duplicated (extra wire traffic); payload
//                                delivery stays exactly-once, so these are
//                                timing/counter faults only
//
// The Injector draws from a SplitMix64 generator seeded by the plan, so a
// (plan, op stream) pair always yields the same faults: runs are replayable
// bit-for-bit, which is what makes the backend-differential tests possible.
//
// The hook interfaces live here (not in pfs/net) so this library depends
// only on base; pfs, net and mpi depend on fault, never the reverse.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/rng.hpp"

namespace paramrio::obs {
class MetricsRegistry;
}

namespace paramrio::fault {

enum class FaultKind : std::uint8_t {
  kShortWrite,
  kShortRead,
  kTransientError,
  kStall,
  kServerDown,
  kCrash,
  kMsgDrop,
  kMsgDup,
};

const char* to_string(FaultKind kind);

/// One fault rule: what to inject, which operations it matches, when it is
/// armed, and how often it fires.  Default-constructed matchers match
/// everything; default scheduling fires on every matching op.
struct FaultSpec {
  FaultKind kind = FaultKind::kTransientError;

  // ---- matchers (I/O ops; kMsgDrop/kMsgDup use rank = sender) ----------
  int rank = -1;            ///< calling rank; -1 = any
  int server = -1;          ///< I/O server of the op's first byte; -1 = any
  std::string path_substr;  ///< substring of the file path; empty = any
  bool match_reads = true;
  bool match_writes = true;
  std::uint64_t offset_lo = 0;  ///< [offset_lo, offset_hi) of the op's start
  std::uint64_t offset_hi = std::numeric_limits<std::uint64_t>::max();

  // ---- scheduling ------------------------------------------------------
  /// Op-count window [first_op, last_op) over the injector's global op
  /// serial (I/O ops and messages count separately).
  std::uint64_t first_op = 0;
  std::uint64_t last_op = std::numeric_limits<std::uint64_t>::max();
  /// Virtual-time window [after_time, until_time); kServerDown outages are
  /// exactly this window.
  double after_time = 0.0;
  double until_time = std::numeric_limits<double>::infinity();
  /// Chance a matching op is faulted (deterministic seeded draw).
  double probability = 1.0;
  /// Total times this spec may fire.
  std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();
  /// Bound on *consecutive* hits of the same operation (same rank, path,
  /// offset, size, direction): after this many, the op is let through once.
  /// Keeps every transient-failure run finite so a bounded retry budget
  /// always converges — the premise of the retry property tests.
  std::uint64_t max_consecutive =
      std::numeric_limits<std::uint64_t>::max();

  // ---- fault parameters ------------------------------------------------
  double short_fraction = 0.5;  ///< fraction of the request that lands
  double stall_seconds = 0.0;   ///< extra delay for kStall
};

/// A reproducible fault schedule: seed + rules.  Two injectors built from
/// equal plans behave identically on equal op streams.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;
};

/// What the file system should do to the current I/O operation.
struct IoFaultAction {
  enum class Kind : std::uint8_t {
    kPass,
    kShort,           ///< transfer only `transfer` bytes
    kTransientError,  ///< throw TransientIoError, no bytes move
    kStall,           ///< advance `stall_seconds`, then proceed
    kCrash,           ///< throw CrashError
  };
  Kind kind = Kind::kPass;
  std::uint64_t transfer = 0;
  double stall_seconds = 0.0;
};

/// Consulted by pfs::FileSystem for every in-simulation data operation.
class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;
  /// `server` is the I/O server holding the op's first byte (-1 when the
  /// file system is unstriped).
  virtual IoFaultAction on_io(int rank, double now, bool is_write,
                              const std::string& path, std::uint64_t offset,
                              std::uint64_t bytes, int server) = 0;
  /// True while any I/O server is down at virtual time `now`; two-phase
  /// collectives consult this (collectively) to fall back to independent
  /// access instead of funnelling data through an aggregator whose server
  /// cannot serve it.
  virtual bool degraded(double now) const {
    (void)now;
    return false;
  }
};

/// What the network should do to the message being sent.
struct NetFaultAction {
  enum class Kind : std::uint8_t { kPass, kDrop, kDuplicate };
  Kind kind = Kind::kPass;
};

/// Consulted by net::Network for every point-to-point send.
class NetFaultHook {
 public:
  virtual ~NetFaultHook() = default;
  virtual NetFaultAction on_message(int src_rank, int dst_rank,
                                    std::uint64_t bytes, double now) = 0;
};

/// Per-kind injection counters plus the op serials the schedules run on.
struct InjectorCounters {
  std::uint64_t io_ops = 0;    ///< I/O operations observed
  std::uint64_t messages = 0;  ///< network sends observed
  std::uint64_t injected[8] = {0, 0, 0, 0, 0, 0, 0, 0};  ///< by FaultKind

  std::uint64_t injected_total() const {
    std::uint64_t n = 0;
    for (std::uint64_t k : injected) n += k;
    return n;
  }
  std::uint64_t count(FaultKind kind) const {
    return injected[static_cast<std::size_t>(kind)];
  }
};

/// The standard FaultPlan interpreter: implements both hooks, draws from a
/// seeded SplitMix64, and keeps deterministic counters.  Specs are evaluated
/// in plan order; the first one that fires wins.  set_enabled(false) lets a
/// test disarm injection between run phases (e.g. fault the dump, then
/// restore cleanly) without detaching the hook.
class Injector : public IoFaultHook, public NetFaultHook {
 public:
  explicit Injector(FaultPlan plan);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  IoFaultAction on_io(int rank, double now, bool is_write,
                      const std::string& path, std::uint64_t offset,
                      std::uint64_t bytes, int server) override;
  bool degraded(double now) const override;
  NetFaultAction on_message(int src_rank, int dst_rank, std::uint64_t bytes,
                            double now) override;

  const FaultPlan& plan() const { return plan_; }
  const InjectorCounters& counters() const { return counters_; }

  /// Publish counters into `reg` under `scope` ("fault" by default):
  /// io_ops_seen, messages_seen, injected_total and one injected_<kind>
  /// counter per fault kind that fired.
  void export_counters(obs::MetricsRegistry& reg,
                       const std::string& scope = "fault") const;

 private:
  struct SpecState {
    std::uint64_t fired = 0;        ///< total fires
    std::uint64_t consecutive = 0;  ///< current same-site run length
    std::uint64_t site = 0;         ///< hash of the last faulted site
  };

  /// Whether `spec` fires for this op; updates per-spec budgets.
  bool io_spec_fires(std::size_t i, const FaultSpec& spec, int rank,
                     double now, bool is_write, const std::string& path,
                     std::uint64_t offset, std::uint64_t bytes, int server);

  FaultPlan plan_;
  Rng rng_;
  bool enabled_ = true;
  std::vector<SpecState> state_;
  InjectorCounters counters_;
};

}  // namespace paramrio::fault
