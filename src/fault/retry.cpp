#include "fault/retry.hpp"

#include <algorithm>
#include <sstream>

#include "obs/profiler.hpp"
#include "sim/engine.hpp"

namespace paramrio::fault {

double backoff_delay(const RetryPolicy& policy, int attempt) {
  double d = policy.backoff_base;
  for (int i = 0; i < attempt; ++i) {
    d *= policy.backoff_factor;
    if (d >= policy.backoff_max) break;
  }
  return std::clamp(d, 0.0, policy.backoff_max);
}

double charge_backoff(const RetryPolicy& policy, int attempt, sim::Proc& proc) {
  const double delay = backoff_delay(policy, attempt);
  obs::record_wait(obs::WaitKind::kRetryBackoff, proc.now(),
                   proc.now() + delay);
  proc.advance(delay, sim::TimeCategory::kIo);
  return delay;
}

std::string retry_key(const RetryPolicy& policy) {
  if (!policy.enabled()) return "r0";
  std::ostringstream os;
  os << "r" << policy.max_retries << ",b" << policy.backoff_base << ",f"
     << policy.backoff_factor << ",m" << policy.backoff_max << ",v"
     << (policy.verify_short_writes ? 1 : 0);
  return os.str();
}

}  // namespace paramrio::fault
