#include "fault/retry.hpp"

#include <algorithm>
#include <sstream>

namespace paramrio::fault {

double backoff_delay(const RetryPolicy& policy, int attempt) {
  double d = policy.backoff_base;
  for (int i = 0; i < attempt; ++i) {
    d *= policy.backoff_factor;
    if (d >= policy.backoff_max) break;
  }
  return std::clamp(d, 0.0, policy.backoff_max);
}

std::string retry_key(const RetryPolicy& policy) {
  if (!policy.enabled()) return "r0";
  std::ostringstream os;
  os << "r" << policy.max_retries << ",b" << policy.backoff_base << ",f"
     << policy.backoff_factor << ",m" << policy.backoff_max << ",v"
     << (policy.verify_short_writes ? 1 : 0);
  return os.str();
}

}  // namespace paramrio::fault
