// MPI semantics and timing-invariant verifier.
//
// src/check audits *what bytes land in the file*; this layer audits the
// *protocol* that put them there.  A Verifier, attached process-wide, hooks
// mpi::Comm (collectives, blocked receives), mpi::io::File (open arguments,
// file views, collective sequences, nonblocking requests, deferred
// settlement, close-time leaks) and the sim engine (clean-finish and
// deadlock callbacks, via sim::RunObserver), and checks three rule families:
//
//   (a) collective matching — every rank of a communicator issues the same
//       collective sequence with compatible operation signatures and roots;
//       every rank of a file issues the same data-access collective
//       sequence with compatible hints and view kinds.  Because the engine
//       serialises ranks, a mismatch is detected the moment the divergent
//       rank arrives, and a stuck collective becomes a diagnosed deadlock
//       report (blocked op per rank, wait-for edges, cycle) instead of a
//       bare "deadlock" error.
//
//   (b) lifecycle rules — nonblocking requests are waited before close,
//       split-collective begin/end pairs match, DeferredScopes are settled
//       before the rank finishes, prefetches are consumed or invalidated
//       (a leak at close is advisory: an unprofitable hint, not a bug),
//       and no I/O is issued on a closed file.
//
//   (c) virtual-time invariants — per-rank clocks never regress, a settle
//       never rewinds the real clock, per-operation overlap credit never
//       exceeds the operation's in-flight duration, and a file's total
//       overlap_saved_time never exceeds its total deferred device time.
//
// Violations are first-class Report objects: rank-attributed, capped per
// rule (counts stay exact), renderable as text and exportable into the obs
// MetricsRegistry (nonzero-only, so a clean run's metric export is
// byte-identical with the verifier attached or not).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "sim/engine.hpp"

namespace paramrio::verify {

enum class Severity : std::uint8_t { kError, kWarning, kLint };

enum class Rule : std::uint8_t {
  kCollectiveMismatch,  ///< different op at the same collective sequence slot
  kRootDivergence,      ///< rooted collective with disagreeing roots
  kHintDivergence,      ///< collective open with divergent mode/hints
  kViewDivergence,      ///< data ranks of one collective with unlike views
  kMissingWait,         ///< nonblocking request never waited before close
  kUnpairedSplit,       ///< split collective begun but not ended at close
  kUnsettledDeferred,   ///< rank finished inside a deferred scope
  kPostCloseIo,         ///< I/O call on a closed File
  kPrefetchLeak,        ///< prefetched range still pending at close (lint)
  kClockRegression,     ///< a rank's virtual clock moved backwards
  kOverlapAccounting,   ///< overlap credit exceeds deferred device time
  kDeadlock,            ///< no runnable proc with unfinished procs left
};

const char* to_string(Severity severity);
const char* to_string(Rule rule);

/// Registry/JSON-friendly slug ("collective_mismatch").
const char* slug(Rule rule);

/// Built-in severity of each rule (prefetch leaks are lints, everything
/// else errors).
Severity severity_of(Rule rule);

struct Violation {
  Severity severity = Severity::kError;
  Rule rule = Rule::kCollectiveMismatch;
  std::string object;      ///< "comm#0", "file:path#g0", "rank 3"
  std::vector<int> ranks;  ///< rank(s) involved, ascending
  long seq = -1;           ///< collective sequence slot (-1: n/a)
  std::string message;     ///< one-line actionable explanation

  std::string format() const;
};

struct Report {
  std::vector<Violation> violations;     ///< capped per rule, in order
  std::map<Rule, std::uint64_t> counts;  ///< exact count per rule

  std::uint64_t count(Rule rule) const;
  std::uint64_t errors() const;
  std::uint64_t warnings() const;
  std::uint64_t lints() const;
  /// No errors and no warnings (lints are advisory).
  bool clean() const { return errors() == 0 && warnings() == 0; }

  /// Human-readable audit, one violation per line.
  std::string format() const;

  /// Export nonzero rule counts into `registry` under `scope` (counter per
  /// rule slug plus "violations" total).  A clean, lint-free report exports
  /// nothing, keeping clean-run registries byte-identical.
  void export_to(obs::MetricsRegistry& registry,
                 const std::string& scope = "verify") const;
};

struct VerifierOptions {
  /// At most this many violations of each rule are materialised (counts in
  /// Report::counts stay exact).
  std::uint64_t max_violations_per_rule = 16;
  /// Slack for floating-point time comparisons (overlap accounting).
  double epsilon = 1e-9;
};

/// The verifier.  Construct, attach() it, run the program under test, then
/// inspect report().  Hooks are invoked by the mpi layer only while a
/// verifier is attached; all hooks arrive baton-serialised.
class Verifier final : public sim::RunObserver {
 public:
  explicit Verifier(VerifierOptions options = {});
  ~Verifier() override;

  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  const Report& report() const { return report_; }
  /// Drop accumulated violations and per-run tracking state.
  void reset();

  // ---- mpi::Comm hooks --------------------------------------------------

  /// A rank entered a collective.  `op` carries the full signature
  /// ("barrier", "allreduce:u64:sum", "gatherv[allreduce:u64:sum]"),
  /// `seq` is the communicator's per-rank collective sequence number and
  /// `root` is -1 for unrooted collectives.
  void on_collective_begin(const void* comm, int rank, int nranks, int seq,
                           const std::string& op, int root);
  void on_collective_end(const void* comm, int rank);

  /// A rank is about to block in recv(src, tag) / resumed from it.  The
  /// wait-for edge feeds the deadlock diagnosis.
  void on_recv_blocked(int rank, int src, int tag);
  void on_recv_done(int rank);

  // ---- mpi::io::File hooks ----------------------------------------------

  /// Collective open.  `open_sig` is the mode plus the deterministic hints
  /// key; ranks of one open generation must agree on it.
  void on_file_open(const std::string& path, int rank, int nranks,
                    const std::string& open_sig);

  /// This rank installed a view (sig 0: identity view).
  void on_file_view(const std::string& path, int rank, std::uint64_t disp,
                    std::uint64_t sig);

  /// A rank entered a file collective ("write_at_all", "read_at_all_begin",
  /// ..., "close").  `data_bytes` is the rank's payload (0: a zero-length
  /// participant, exempt from view matching) and `view_sig` its installed
  /// view signature at the call.
  void on_file_collective(const std::string& path, int rank,
                          const std::string& op, std::uint64_t data_bytes,
                          std::uint64_t view_sig);

  /// A deferred (in-flight) operation was issued: nonblocking request,
  /// prefetch, or pipelined collective window.
  void on_file_deferred_issue(const std::string& path, int rank,
                              double issued, double completion);

  /// A deferred operation was settled.  `credited` is the overlap credit
  /// taken, `now_before`/`now_after` the rank's real clock around the
  /// settle.
  void on_file_settle(const std::string& path, int rank, double issued,
                      double completion, double credited, double now_before,
                      double now_after);

  /// Close-time audit: counts of requests never waited and prefetched
  /// ranges still pending, whether a split collective was still open, and
  /// the file's final overlap_saved_time.
  void on_file_close(const std::string& path, int rank,
                     std::uint64_t leaked_requests,
                     std::uint64_t leaked_prefetches, bool split_active,
                     double overlap_saved_time);

  /// An I/O call arrived on an already-closed File.
  void on_post_close_io(const std::string& path, int rank,
                        const std::string& op);

  // ---- sim::RunObserver --------------------------------------------------

  void on_proc_finished(int rank, bool deferred, double clock) override;
  std::string diagnose_deadlock() override;

 private:
  struct CollRecord {
    bool defined = false;
    std::string op;
    int root = -1;
    int first_rank = -1;
    std::vector<bool> arrived;
    int arrivals = 0;
  };
  struct CommState {
    int index = 0;  ///< stable "comm#N" label
    int nranks = 0;
    std::vector<CollRecord> records;  ///< indexed by collective seq
  };
  struct FileCollRecord {
    bool defined = false;
    std::string op;
    int first_rank = -1;
    /// First data-carrying rank's view kind (0: none yet; 1: identity
    /// view; 2: typed view) — data ranks of one collective must agree.
    int view_kind = 0;
    int view_rank = -1;
  };
  struct FileGen {
    int gen = 0;
    int nranks = 0;
    std::string open_sig;
    int open_sig_rank = -1;
    std::vector<bool> opened;
    std::vector<bool> closed;
    int closes = 0;
    std::vector<int> next_coll;         ///< per-rank file-collective index
    std::vector<FileCollRecord> colls;  ///< matched like comm collectives
    std::vector<double> device_time;    ///< per-rank deferred op duration sum
    std::vector<double> credited;       ///< per-rank overlap credit sum
  };
  struct RecvWait {
    bool active = false;
    int src = -1;
    int tag = 0;
  };
  struct RankState {
    double last_clock = 0.0;
    bool clock_seen = false;
    bool finished = false;
    std::vector<std::string> coll_stack;  ///< e.g. "comm#0 barrier#3"
    RecvWait recv;
  };

  void record(Rule rule, std::string object, std::vector<int> ranks, long seq,
              std::string message);
  /// Detect an engine change (a new run) and reset per-run tracking.
  void begin_run_if_needed();
  /// Clock-monotonicity probe; call on every hook that runs on a proc.
  void note_clock();
  CommState& comm_state(const void* comm, int nranks);
  FileGen& open_gen(const std::string& path, int rank, int nranks);
  FileGen* current_gen(const std::string& path);
  RankState& rank_state(int rank);
  std::string file_label(const std::string& path, const FileGen& g) const;

  VerifierOptions options_;
  Report report_;

  const void* engine_tag_ = nullptr;  ///< engine of the run being tracked
  std::map<const void*, CommState> comms_;
  std::map<std::string, std::vector<FileGen>> files_;
  std::map<int, RankState> ranks_;
};

/// Install `v` as the process-wide verifier (and as the engine's run
/// observer).  Call outside Engine::run; nullptr detaches.
void attach(Verifier* v);
void detach();

/// The attached verifier, or nullptr.  The mpi layer guards every hook call
/// with this.
Verifier* verifier();

/// RAII attach/detach, for tests and the bench harness.
class Attach {
 public:
  explicit Attach(Verifier& v) { attach(&v); }
  ~Attach() { detach(); }
  Attach(const Attach&) = delete;
  Attach& operator=(const Attach&) = delete;
};

}  // namespace paramrio::verify
