#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>

#include "base/error.hpp"

namespace paramrio::verify {

namespace {

Verifier* g_verifier = nullptr;

std::string join_ranks(const std::vector<int>& ranks) {
  std::string out;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ranks[i]);
  }
  return out;
}

const char* view_kind_name(int kind) {
  return kind == 2 ? "typed view" : "identity view";
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kLint:
      return "lint";
  }
  return "?";
}

const char* to_string(Rule rule) {
  switch (rule) {
    case Rule::kCollectiveMismatch:
      return "collective-mismatch";
    case Rule::kRootDivergence:
      return "root-divergence";
    case Rule::kHintDivergence:
      return "hint-divergence";
    case Rule::kViewDivergence:
      return "view-divergence";
    case Rule::kMissingWait:
      return "missing-wait";
    case Rule::kUnpairedSplit:
      return "unpaired-split";
    case Rule::kUnsettledDeferred:
      return "unsettled-deferred";
    case Rule::kPostCloseIo:
      return "post-close-io";
    case Rule::kPrefetchLeak:
      return "prefetch-leak";
    case Rule::kClockRegression:
      return "clock-regression";
    case Rule::kOverlapAccounting:
      return "overlap-accounting";
    case Rule::kDeadlock:
      return "deadlock";
  }
  return "?";
}

const char* slug(Rule rule) {
  switch (rule) {
    case Rule::kCollectiveMismatch:
      return "collective_mismatch";
    case Rule::kRootDivergence:
      return "root_divergence";
    case Rule::kHintDivergence:
      return "hint_divergence";
    case Rule::kViewDivergence:
      return "view_divergence";
    case Rule::kMissingWait:
      return "missing_wait";
    case Rule::kUnpairedSplit:
      return "unpaired_split";
    case Rule::kUnsettledDeferred:
      return "unsettled_deferred";
    case Rule::kPostCloseIo:
      return "post_close_io";
    case Rule::kPrefetchLeak:
      return "prefetch_leak";
    case Rule::kClockRegression:
      return "clock_regression";
    case Rule::kOverlapAccounting:
      return "overlap_accounting";
    case Rule::kDeadlock:
      return "deadlock";
  }
  return "unknown";
}

Severity severity_of(Rule rule) {
  return rule == Rule::kPrefetchLeak ? Severity::kLint : Severity::kError;
}

std::string Violation::format() const {
  std::string out = "[";
  out += to_string(severity);
  out += "] ";
  out += to_string(rule);
  out += " ";
  out += object;
  if (seq >= 0) out += " slot#" + std::to_string(seq);
  if (!ranks.empty()) out += " rank(s) " + join_ranks(ranks);
  out += ": ";
  out += message;
  return out;
}

std::uint64_t Report::count(Rule rule) const {
  auto it = counts.find(rule);
  return it == counts.end() ? 0 : it->second;
}

std::uint64_t Report::errors() const {
  std::uint64_t n = 0;
  for (const auto& [rule, c] : counts) {
    if (severity_of(rule) == Severity::kError) n += c;
  }
  return n;
}

std::uint64_t Report::warnings() const {
  std::uint64_t n = 0;
  for (const auto& [rule, c] : counts) {
    if (severity_of(rule) == Severity::kWarning) n += c;
  }
  return n;
}

std::uint64_t Report::lints() const {
  std::uint64_t n = 0;
  for (const auto& [rule, c] : counts) {
    if (severity_of(rule) == Severity::kLint) n += c;
  }
  return n;
}

std::string Report::format() const {
  std::uint64_t total = 0;
  for (const auto& [rule, c] : counts) total += c;
  std::ostringstream os;
  if (total == 0) {
    os << "verify audit: clean\n";
    return os.str();
  }
  os << "verify audit: " << total << " violation(s) — " << errors()
     << " error(s), " << warnings() << " warning(s), " << lints()
     << " lint(s)\n";
  for (const Violation& v : violations) os << "  " << v.format() << "\n";
  if (violations.size() < total) {
    os << "  ... " << (total - violations.size())
       << " more (per-rule cap reached; counts are exact)\n";
  }
  return os.str();
}

void Report::export_to(obs::MetricsRegistry& registry,
                       const std::string& scope) const {
  std::uint64_t total = 0;
  for (const auto& [rule, c] : counts) {
    if (c == 0) continue;
    registry.add(scope, slug(rule), c);
    total += c;
  }
  if (total > 0) registry.add(scope, "violations", total);
}

Verifier::Verifier(VerifierOptions options) : options_(options) {}

Verifier::~Verifier() {
  if (g_verifier == this) detach();
}

void Verifier::reset() {
  report_ = Report{};
  engine_tag_ = nullptr;
  comms_.clear();
  files_.clear();
  ranks_.clear();
}

void Verifier::record(Rule rule, std::string object, std::vector<int> ranks,
                      long seq, std::string message) {
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  std::uint64_t& n = report_.counts[rule];
  ++n;
  if (n > options_.max_violations_per_rule) return;
  Violation v;
  v.severity = severity_of(rule);
  v.rule = rule;
  v.object = std::move(object);
  v.ranks = std::move(ranks);
  v.seq = seq;
  v.message = std::move(message);
  report_.violations.push_back(std::move(v));
}

void Verifier::begin_run_if_needed() {
  if (!sim::in_simulation()) return;
  const void* tag = &sim::current_proc().engine();
  if (tag == engine_tag_) return;
  engine_tag_ = tag;
  comms_.clear();
  files_.clear();
  ranks_.clear();
}

void Verifier::note_clock() {
  if (!sim::in_simulation()) return;
  sim::Proc& p = sim::current_proc();
  if (p.deferred()) return;  // the shadow clock is allowed to run ahead
  const double now = p.now();
  RankState& rs = rank_state(p.rank());
  if (rs.clock_seen && now < rs.last_clock) {
    record(Rule::kClockRegression, "rank " + std::to_string(p.rank()),
           {p.rank()}, -1,
           "virtual clock moved backwards: " +
               obs::format_double(rs.last_clock) + " -> " +
               obs::format_double(now));
  }
  rs.last_clock = now;
  rs.clock_seen = true;
}

Verifier::CommState& Verifier::comm_state(const void* comm, int nranks) {
  auto it = comms_.find(comm);
  if (it == comms_.end()) {
    CommState state;
    state.index = static_cast<int>(comms_.size());
    state.nranks = nranks;
    it = comms_.emplace(comm, std::move(state)).first;
  }
  return it->second;
}

Verifier::RankState& Verifier::rank_state(int rank) { return ranks_[rank]; }

Verifier::FileGen& Verifier::open_gen(const std::string& path, int rank,
                                      int nranks) {
  std::vector<FileGen>& gens = files_[path];
  const std::size_t r = static_cast<std::size_t>(rank);
  bool fresh = gens.empty();
  if (!fresh) {
    FileGen& last = gens.back();
    // A rank reappearing, any close, or a different world size means the
    // previous generation is over: this open starts a new one.
    if (last.nranks != nranks || last.closes > 0 ||
        (r < last.opened.size() && last.opened[r])) {
      fresh = true;
    }
  }
  if (fresh) {
    FileGen g;
    g.gen = static_cast<int>(gens.size());
    g.nranks = nranks;
    g.opened.assign(static_cast<std::size_t>(nranks), false);
    g.closed.assign(static_cast<std::size_t>(nranks), false);
    g.next_coll.assign(static_cast<std::size_t>(nranks), 0);
    g.device_time.assign(static_cast<std::size_t>(nranks), 0.0);
    g.credited.assign(static_cast<std::size_t>(nranks), 0.0);
    gens.push_back(std::move(g));
  }
  FileGen& g = gens.back();
  if (r < g.opened.size()) g.opened[r] = true;
  return g;
}

Verifier::FileGen* Verifier::current_gen(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

std::string Verifier::file_label(const std::string& path,
                                 const FileGen& g) const {
  return "file:" + path + "#g" + std::to_string(g.gen);
}

// ---- mpi::Comm hooks ------------------------------------------------------

void Verifier::on_collective_begin(const void* comm, int rank, int nranks,
                                   int seq, const std::string& op, int root) {
  begin_run_if_needed();
  note_clock();
  CommState& cs = comm_state(comm, nranks);
  const std::string label = "comm#" + std::to_string(cs.index);
  if (seq >= 0) {
    const std::size_t slot = static_cast<std::size_t>(seq);
    if (cs.records.size() <= slot) cs.records.resize(slot + 1);
    CollRecord& rec = cs.records[slot];
    if (!rec.defined) {
      rec.defined = true;
      rec.op = op;
      rec.root = root;
      rec.first_rank = rank;
      rec.arrived.assign(static_cast<std::size_t>(nranks), false);
    } else if (rec.op != op) {
      record(Rule::kCollectiveMismatch, label, {rec.first_rank, rank}, seq,
             "rank " + std::to_string(rank) + " entered " + op +
                 " where rank " + std::to_string(rec.first_rank) +
                 " entered " + rec.op);
    } else if (rec.root != root) {
      record(Rule::kRootDivergence, label, {rec.first_rank, rank}, seq,
             op + " with root " + std::to_string(root) + " on rank " +
                 std::to_string(rank) + " but root " +
                 std::to_string(rec.root) + " on rank " +
                 std::to_string(rec.first_rank));
    }
    const std::size_t r = static_cast<std::size_t>(rank);
    if (r < rec.arrived.size() && !rec.arrived[r]) {
      rec.arrived[r] = true;
      ++rec.arrivals;
    }
  }
  rank_state(rank).coll_stack.push_back(label + " " + op + "#" +
                                        std::to_string(seq));
}

void Verifier::on_collective_end(const void* /*comm*/, int rank) {
  note_clock();
  RankState& rs = rank_state(rank);
  if (!rs.coll_stack.empty()) rs.coll_stack.pop_back();
}

void Verifier::on_recv_blocked(int rank, int src, int tag) {
  begin_run_if_needed();
  note_clock();
  RankState& rs = rank_state(rank);
  rs.recv.active = true;
  rs.recv.src = src;
  rs.recv.tag = tag;
}

void Verifier::on_recv_done(int rank) {
  note_clock();
  rank_state(rank).recv.active = false;
}

// ---- mpi::io::File hooks --------------------------------------------------

void Verifier::on_file_open(const std::string& path, int rank, int nranks,
                            const std::string& open_sig) {
  begin_run_if_needed();
  note_clock();
  FileGen& g = open_gen(path, rank, nranks);
  if (g.open_sig_rank < 0) {
    g.open_sig = open_sig;
    g.open_sig_rank = rank;
  } else if (g.open_sig != open_sig) {
    record(Rule::kHintDivergence, file_label(path, g), {g.open_sig_rank, rank},
           -1,
           "collective open with divergent arguments: rank " +
               std::to_string(rank) + " passed \"" + open_sig +
               "\" but rank " + std::to_string(g.open_sig_rank) +
               " passed \"" + g.open_sig + "\"");
  }
}

void Verifier::on_file_view(const std::string& /*path*/, int /*rank*/,
                            std::uint64_t /*disp*/, std::uint64_t /*sig*/) {
  begin_run_if_needed();
  note_clock();
}

void Verifier::on_file_collective(const std::string& path, int rank,
                                  const std::string& op,
                                  std::uint64_t data_bytes,
                                  std::uint64_t view_sig) {
  begin_run_if_needed();
  note_clock();
  FileGen* g = current_gen(path);
  if (g == nullptr) return;
  const std::size_t r = static_cast<std::size_t>(rank);
  if (r >= g->next_coll.size()) return;
  const int idx = g->next_coll[r]++;
  const std::size_t slot = static_cast<std::size_t>(idx);
  if (g->colls.size() <= slot) g->colls.resize(slot + 1);
  FileCollRecord& rec = g->colls[slot];
  if (!rec.defined) {
    rec.defined = true;
    rec.op = op;
    rec.first_rank = rank;
  } else if (rec.op != op) {
    record(Rule::kCollectiveMismatch, file_label(path, *g),
           {rec.first_rank, rank}, idx,
           "rank " + std::to_string(rank) + " entered " + op +
               " where rank " + std::to_string(rec.first_rank) + " entered " +
               rec.op);
  }
  // Data-carrying ranks of one collective must address the file the same
  // way: either all through typed views or all through the identity view.
  // Zero-length participants are exempt (a rank may join with an empty
  // buffer under whatever view it last used).
  if (data_bytes > 0 && op != "close") {
    const int kind = view_sig == 0 ? 1 : 2;
    if (rec.view_kind == 0) {
      rec.view_kind = kind;
      rec.view_rank = rank;
    } else if (rec.view_kind != kind) {
      record(Rule::kViewDivergence, file_label(path, *g),
             {rec.view_rank, rank}, idx,
             op + ": rank " + std::to_string(rank) + " participates through " +
                 view_kind_name(kind) + " while rank " +
                 std::to_string(rec.view_rank) + " uses " +
                 view_kind_name(rec.view_kind));
    }
  }
}

void Verifier::on_file_deferred_issue(const std::string& path, int rank,
                                      double issued, double completion) {
  begin_run_if_needed();
  note_clock();
  FileGen* g = current_gen(path);
  if (g == nullptr) return;
  const std::size_t r = static_cast<std::size_t>(rank);
  if (r >= g->device_time.size()) return;
  if (completion > issued) g->device_time[r] += completion - issued;
}

void Verifier::on_file_settle(const std::string& path, int rank, double issued,
                              double completion, double credited,
                              double now_before, double now_after) {
  begin_run_if_needed();
  note_clock();
  FileGen* g = current_gen(path);
  const std::size_t r = static_cast<std::size_t>(rank);
  if (g != nullptr && r < g->credited.size()) g->credited[r] += credited;
  const double duration = completion > issued ? completion - issued : 0.0;
  const std::string object =
      g != nullptr ? file_label(path, *g) : "file:" + path;
  if (credited > duration + options_.epsilon) {
    record(Rule::kOverlapAccounting, object, {rank}, -1,
           "settle credited " + obs::format_double(credited) +
               "s of overlap for an operation in flight only " +
               obs::format_double(duration) + "s");
  }
  if (now_after + options_.epsilon < now_before) {
    record(Rule::kClockRegression, object, {rank}, -1,
           "settle rewound the real clock: " + obs::format_double(now_before) +
               " -> " + obs::format_double(now_after));
  }
}

void Verifier::on_file_close(const std::string& path, int rank,
                             std::uint64_t leaked_requests,
                             std::uint64_t leaked_prefetches,
                             bool split_active, double overlap_saved_time) {
  begin_run_if_needed();
  note_clock();
  FileGen* g = current_gen(path);
  const std::string object =
      g != nullptr ? file_label(path, *g) : "file:" + path;
  if (leaked_requests > 0) {
    record(Rule::kMissingWait, object, {rank}, -1,
           std::to_string(leaked_requests) +
               " nonblocking request(s) never waited before close (the file "
               "settled them; wait() every iread_at/iwrite_at request)");
  }
  if (split_active) {
    record(Rule::kUnpairedSplit, object, {rank}, -1,
           "split collective begun but not ended at close (missing "
           "read_at_all_end/write_at_all_end)");
  }
  if (leaked_prefetches > 0) {
    record(Rule::kPrefetchLeak, object, {rank}, -1,
           std::to_string(leaked_prefetches) +
               " prefetched range(s) still pending at close (the hint did "
               "not pay off; narrow or drop the prefetch)");
  }
  if (g != nullptr) {
    const std::size_t r = static_cast<std::size_t>(rank);
    if (r < g->device_time.size() &&
        overlap_saved_time > g->device_time[r] + options_.epsilon) {
      record(Rule::kOverlapAccounting, object, {rank}, -1,
             "overlap_saved_time " + obs::format_double(overlap_saved_time) +
                 "s exceeds total deferred device time " +
                 obs::format_double(g->device_time[r]) + "s");
    }
    if (r < g->closed.size() && !g->closed[r]) {
      g->closed[r] = true;
      ++g->closes;
    }
  }
}

void Verifier::on_post_close_io(const std::string& path, int rank,
                                const std::string& op) {
  begin_run_if_needed();
  note_clock();
  FileGen* g = current_gen(path);
  const std::string object =
      g != nullptr ? file_label(path, *g) : "file:" + path;
  record(Rule::kPostCloseIo, object, {rank}, -1,
         op + " on a closed file");
}

// ---- sim::RunObserver -----------------------------------------------------

void Verifier::on_proc_finished(int rank, bool deferred, double clock) {
  begin_run_if_needed();
  RankState& rs = rank_state(rank);
  rs.finished = true;
  if (deferred) {
    record(Rule::kUnsettledDeferred, "rank " + std::to_string(rank), {rank},
           -1,
           "proc finished inside an unsettled deferred scope (shadow clock " +
               obs::format_double(clock) +
               "); every DeferredScope must be settled before the rank "
               "returns");
  }
}

std::string Verifier::diagnose_deadlock() {
  std::ostringstream os;
  os << "verify: deadlock diagnosis";
  std::vector<int> blocked;
  for (const auto& [rank, rs] : ranks_) {
    os << "\n  rank " << rank << ": ";
    if (rs.finished) {
      os << "finished";
    } else if (rs.recv.active) {
      os << "blocked in recv(src=" << rs.recv.src << ", tag=" << rs.recv.tag
         << ")";
      if (!rs.coll_stack.empty()) os << " inside " << rs.coll_stack.back();
      blocked.push_back(rank);
    } else if (!rs.coll_stack.empty()) {
      os << "in " << rs.coll_stack.back();
    } else {
      os << "running (no pending communication seen)";
    }
  }
  // Wait-for edges: a blocked rank waits for the source of its pending recv.
  // Walk the edges from each blocked rank to surface a cycle.
  std::vector<int> cycle;
  for (int start : blocked) {
    std::vector<int> path;
    std::map<int, int> pos;
    int cur = start;
    while (true) {
      auto it = ranks_.find(cur);
      if (it == ranks_.end() || !it->second.recv.active) break;
      if (pos.count(cur) != 0) {
        cycle.assign(path.begin() + pos[cur], path.end());
        cycle.push_back(cur);
        break;
      }
      pos[cur] = static_cast<int>(path.size());
      path.push_back(cur);
      cur = it->second.recv.src;
    }
    if (!cycle.empty()) break;
  }
  if (!cycle.empty()) {
    os << "\n  wait-for cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) os << " -> ";
      os << cycle[i];
    }
  }
  std::string summary;
  if (!blocked.empty()) {
    summary = std::to_string(blocked.size()) +
              " rank(s) blocked in recv with no runnable proc";
    if (!cycle.empty()) summary += " (wait-for cycle among ranks)";
  } else {
    summary = "no runnable proc with unfinished procs remaining";
  }
  record(Rule::kDeadlock, "engine", blocked, -1, summary);
  return os.str();
}

// ---- global attachment ----------------------------------------------------

void attach(Verifier* v) {
  g_verifier = v;
  sim::set_run_observer(v);
}

void detach() {
  g_verifier = nullptr;
  sim::set_run_observer(nullptr);
}

Verifier* verifier() { return g_verifier; }

}  // namespace paramrio::verify
