// Striping arithmetic shared by the striped file-system models.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "base/error.hpp"

namespace paramrio::pfs {

/// One stripe-aligned piece of a byte-range request.
struct StripeChunk {
  int server = 0;                ///< which disk / I/O node
  std::uint64_t global_offset = 0;  ///< offset within the logical file
  std::uint64_t server_offset = 0;  ///< offset within the server's local space
  std::uint64_t length = 0;
};

/// Decompose [offset, offset+length) into per-server chunks under round-robin
/// striping of `stripe_size` across `n_servers`, invoking `fn` per chunk in
/// ascending file order.  server_offset preserves per-server sequentiality:
/// consecutive stripes that land on the same server are adjacent in its
/// local space, so a full-file scan streams on every server.
/// `first_server` rotates the stripe placement (real parallel file systems
/// scatter each file's first stripe so small files don't all pile onto
/// server 0).
inline void for_each_stripe_chunk(
    std::uint64_t offset, std::uint64_t length, std::uint64_t stripe_size,
    int n_servers, const std::function<void(const StripeChunk&)>& fn,
    int first_server = 0) {
  PARAMRIO_REQUIRE(stripe_size > 0, "stripe size must be positive");
  PARAMRIO_REQUIRE(n_servers > 0, "need at least one server");
  std::uint64_t pos = offset;
  std::uint64_t end = offset + length;
  while (pos < end) {
    std::uint64_t stripe = pos / stripe_size;
    std::uint64_t within = pos % stripe_size;
    std::uint64_t take = std::min(stripe_size - within, end - pos);
    StripeChunk c;
    c.server = static_cast<int>(
        (stripe + static_cast<std::uint64_t>(first_server)) %
        static_cast<std::uint64_t>(n_servers));
    c.global_offset = pos;
    c.server_offset =
        (stripe / static_cast<std::uint64_t>(n_servers)) * stripe_size + within;
    c.length = take;
    fn(c);
    pos += take;
  }
}

/// Deterministic starting server for an object (FNV-1a over the name).
inline int object_first_server(const std::string& name, int n_servers) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(n_servers));
}

}  // namespace paramrio::pfs
