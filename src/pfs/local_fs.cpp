#include "pfs/local_fs.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace paramrio::pfs {

LocalFs::LocalFs(LocalFsParams params) : params_(params) {
  PARAMRIO_REQUIRE(params_.n_disks >= 1, "LocalFs needs >= 1 disk");
  enable_cache(params_.cache_bandwidth);
  disks_.reserve(static_cast<std::size_t>(params_.n_disks));
  for (int i = 0; i < params_.n_disks; ++i) disks_.emplace_back(params_.disk);
}

void LocalFs::charge(sim::Proc& proc, const std::string& path,
                     std::uint64_t offset, std::uint64_t bytes,
                     bool is_write) {
  proc.advance(params_.client_overhead +
                   static_cast<double>(bytes) / params_.per_client_bandwidth,
               sim::TimeCategory::kIo);
  const bool detail = obs::detail();
  const double issue = proc.now();
  double done = issue;
  double crit_queue_wait = 0.0;
  for_each_stripe_chunk(
      offset, bytes, params_.stripe_size, params_.n_disks,
      [&](const StripeChunk& c) {
        auto& d = disks_[static_cast<std::size_t>(c.server)];
        if (detail) {
          obs::gauge("ioserver:" + name() + "/" + std::to_string(c.server) +
                         "/backlog",
                     std::max(0.0, d.next_free() - issue));
        }
        double qw = 0.0;
        const double completion =
            d.serve(issue, path, c.server_offset, c.length, is_write, 0.0,
                    -1, 1.0, detail ? &qw : nullptr);
        if (detail) {
          obs::gauge_int("ioserver:" + name() + "/" +
                             std::to_string(c.server) + "/requests",
                         d.requests());
        }
        if (completion > done) {
          done = completion;
          crit_queue_wait = qw;
        }
      },
      object_first_server(path, params_.n_disks));
  if (crit_queue_wait > 0.0) {
    obs::record_wait(obs::WaitKind::kServerQueue, issue,
                     issue + crit_queue_wait);
  }
  proc.clock_at_least(done, sim::TimeCategory::kIo);
}

}  // namespace paramrio::pfs
