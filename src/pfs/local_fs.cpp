#include "pfs/local_fs.hpp"

#include <algorithm>

namespace paramrio::pfs {

LocalFs::LocalFs(LocalFsParams params) : params_(params) {
  PARAMRIO_REQUIRE(params_.n_disks >= 1, "LocalFs needs >= 1 disk");
  enable_cache(params_.cache_bandwidth);
  disks_.reserve(static_cast<std::size_t>(params_.n_disks));
  for (int i = 0; i < params_.n_disks; ++i) disks_.emplace_back(params_.disk);
}

void LocalFs::charge(sim::Proc& proc, const std::string& path,
                     std::uint64_t offset, std::uint64_t bytes,
                     bool is_write) {
  proc.advance(params_.client_overhead +
                   static_cast<double>(bytes) / params_.per_client_bandwidth,
               sim::TimeCategory::kIo);
  double done = proc.now();
  for_each_stripe_chunk(
      offset, bytes, params_.stripe_size, params_.n_disks,
      [&](const StripeChunk& c) {
        auto& d = disks_[static_cast<std::size_t>(c.server)];
        done = std::max(done, d.serve(proc.now(), path, c.server_offset,
                                      c.length, is_write));
      },
      object_first_server(path, params_.n_disks));
  proc.clock_at_least(done, sim::TimeCategory::kIo);
}

}  // namespace paramrio::pfs
