// LocalDiskFs — model of the paper's fourth configuration: the PVFS I/O
// *interface* backed by each compute node's own local disk.
//
// Every rank's requests are served by its own private spindle; no network is
// crossed on the data path, so aggregate bandwidth scales linearly with the
// number of processors.  As in the paper, the price is that the "file" is
// physically scattered: each node only really holds the ranges it wrote.
// For verifiability the model keeps one coherent logical byte image (the
// paper notes that integrating the distributed pieces takes extra work; we
// do not charge for that work).  Reads of ranges a rank did not itself write
// would be remote in reality; the model charges them to the local disk and
// `remote_reads()` counts them so tests/benches can assert the access
// pattern stayed node-local.
#pragma once

#include <map>
#include <vector>

#include "pfs/filesystem.hpp"
#include "stor/disk.hpp"

namespace paramrio::pfs {

struct LocalDiskFsParams {
  stor::DiskParams disk{/*seek*/ ms(9), /*bw*/ mb_per_s(22),
                        /*req overhead*/ ms(0.4)};
  double client_overhead = us(150);
  double metadata = ms(0.5);
  double cache_bandwidth = mb_per_s(160);  ///< page-cache re-read rate
};

class LocalDiskFs final : public FileSystem {
 public:
  LocalDiskFs(LocalDiskFsParams params, int nprocs);

  std::string name() const override { return "local-disk"; }
  double metadata_cost() const override { return params_.metadata; }

  std::uint64_t remote_reads() const { return remote_reads_; }

  /// One private disk per rank, but file offsets carry no locality (bytes
  /// live wherever the writing rank sits), so stripe_size stays 0: clients
  /// learn the server count without a bogus offset->server mapping.
  Layout layout(const std::string& path) const override {
    (void)path;
    return {0, static_cast<int>(disks_.size()), 0};
  }

  void drop_caches() override {
    FileSystem::drop_caches();
    for (auto& per_rank : page_cache_) per_rank.clear();
  }
  const stor::IoServer& disk_of(int rank) const {
    return disks_.at(static_cast<std::size_t>(rank));
  }

 protected:
  void charge(sim::Proc& proc, const std::string& path, std::uint64_t offset,
              std::uint64_t bytes, bool is_write) override;

  /// remove()/kCreate truncation must drop this model's *own* per-path state
  /// — write ownership and per-rank page caches — not just the base buffer
  /// cache, or a file re-created at the same path inherits the previous
  /// generation's owners (suppressing remote_reads) and sees stale page-cache
  /// hits for bytes the new file never wrote.
  void on_remove(const std::string& path) override { forget_path(path); }
  void on_truncate(const std::string& path) override { forget_path(path); }

 private:
  using Ranges = std::map<std::uint64_t, std::uint64_t>;  // off -> end
  static bool covered(const Ranges& iv, std::uint64_t off, std::uint64_t len);
  static void insert_range(Ranges& iv, std::uint64_t off, std::uint64_t len);

  /// Interval map per file recording which rank wrote each byte range.
  struct Ownership {
    std::map<std::uint64_t, std::pair<std::uint64_t, int>> ranges;  // off -> (end, rank)
  };
  bool wholly_owned_by(const Ownership& own, std::uint64_t offset,
                       std::uint64_t bytes, int rank) const;
  void record_write(Ownership& own, std::uint64_t offset, std::uint64_t bytes,
                    int rank);
  void forget_path(const std::string& path);

  LocalDiskFsParams params_;
  std::vector<stor::IoServer> disks_;
  std::map<std::string, Ownership> owners_;
  std::vector<std::map<std::string, Ranges>> page_cache_;  ///< per rank
  std::uint64_t remote_reads_ = 0;
};

}  // namespace paramrio::pfs
