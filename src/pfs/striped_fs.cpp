#include "pfs/striped_fs.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace paramrio::pfs {

StripedFs::StripedFs(StripedFsParams params, net::Network& network)
    : params_(params), network_(network) {
  PARAMRIO_REQUIRE(params_.n_io_nodes >= 1, "StripedFs needs >= 1 I/O node");
  if (params_.client_cache_bandwidth > 0.0) {
    enable_cache(params_.client_cache_bandwidth);
  }
  servers_.reserve(static_cast<std::size_t>(params_.n_io_nodes));
  for (int i = 0; i < params_.n_io_nodes; ++i) {
    servers_.emplace_back(params_.server_disk);
  }
  smp_channels_.resize(static_cast<std::size_t>(network_.compute_nodes()));
}

std::uint64_t StripedFs::total_server_requests() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s.requests();
  return n;
}

void StripedFs::export_counters(obs::MetricsRegistry& reg) const {
  FileSystem::export_counters(reg);
  const std::string scope = "fs:" + name();
  reg.add(scope, "server_requests", total_server_requests());
  reg.add(scope, "write_token_transfers", token_transfers_);
  // Drain/housekeeping traffic; nonzero-only so exports from runs without a
  // staging tier stay byte-identical to previous releases.
  std::uint64_t bg_bytes = 0;
  std::uint64_t bg_requests = 0;
  for (const auto& s : servers_) {
    bg_bytes += s.background_bytes();
    bg_requests += s.background_requests();
  }
  if (bg_requests > 0) {
    reg.add(scope, "background_requests", bg_requests);
    reg.add(scope, "background_bytes", bg_bytes);
  }
  // Per-tenant device shares aggregated over all I/O nodes; emitted only for
  // genuinely multi-job runs so single-job exports stay byte-identical.
  std::map<int, std::uint64_t> job_requests;
  std::map<int, std::uint64_t> job_bytes;
  for (const auto& s : servers_) {
    for (const auto& [job, share] : s.job_shares()) {
      job_requests[job] += share.requests;
      job_bytes[job] += share.bytes;
    }
  }
  if (job_requests.size() > 1) {
    for (const auto& [job, reqs] : job_requests) {
      const std::string jscope = scope + "|job:#" + std::to_string(job);
      reg.add(jscope, "server_requests", reqs);
      reg.add(jscope, "server_bytes", job_bytes[job]);
    }
  }
}

bool StripedFs::runs_conflict(const TokenRuns& runs, std::uint64_t lo,
                              std::uint64_t hi, int owner) {
  auto it = runs.upper_bound(lo);
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    if (prev->second.first > lo && prev->second.second != owner) return true;
  }
  for (; it != runs.end() && it->first < hi; ++it) {
    if (it->second.second != owner) return true;
  }
  return false;
}

void StripedFs::runs_assign(TokenRuns& runs, std::uint64_t lo,
                            std::uint64_t hi, int owner) {
  if (lo >= hi) return;
  // Split any run overlapping the left edge.
  auto it = runs.upper_bound(lo);
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    if (prev->second.first > lo) {
      const std::uint64_t prev_end = prev->second.first;
      const int prev_owner = prev->second.second;
      if (prev->first < lo) {
        prev->second.first = lo;
      } else {
        runs.erase(prev);
      }
      if (prev_end > hi) runs[hi] = {prev_end, prev_owner};
    }
  }
  // Drop runs starting inside [lo, hi), keeping any tail past hi.
  it = runs.lower_bound(lo);
  while (it != runs.end() && it->first < hi) {
    if (it->second.first > hi) {
      const auto tail = it->second;
      it = runs.erase(it);
      runs[hi] = tail;
      break;
    }
    it = runs.erase(it);
  }
  // Insert the new run, coalescing with same-owner neighbours.
  std::uint64_t nlo = lo, nhi = hi;
  auto right = runs.find(hi);
  if (right != runs.end() && right->second.second == owner) {
    nhi = right->second.first;
    runs.erase(right);
  }
  auto ins = runs.emplace(nlo, std::make_pair(nhi, owner)).first;
  if (ins != runs.begin()) {
    auto left = std::prev(ins);
    if (left->second.first == nlo && left->second.second == owner) {
      left->second.first = nhi;
      runs.erase(ins);
    }
  }
}

void StripedFs::charge(sim::Proc& proc, const std::string& path,
                       std::uint64_t offset, std::uint64_t bytes,
                       bool is_write) {
  proc.advance(params_.client_overhead, sim::TimeCategory::kIo);
  // Clients are identified by global rank: a shared fs serving several jobs
  // must not alias job-local rank 0s onto one node or one token owner.
  const int client = proc.global_rank();
  const int client_node = network_.node_of(client);
  const int io_base = network_.compute_nodes();

  // Byte-range write tokens at stripe granularity (GPFS rounds byte-range
  // tokens out to block boundaries): a write pays one transfer — serialised
  // through the (single) token manager — whenever any stripe it touches is
  // held by a different client.  Unowned stripes are claimed for free, so a
  // single writer streams; interleaved writers sharing boundary stripes
  // ping-pong the token — GPFS's shared-file concurrent-writer penalty and
  // the false sharing behind the paper's Figure 7.
  double req_start = proc.now();
  if (is_write && params_.write_lock_cost > 0.0 && bytes > 0) {
    TokenRuns& owners = token_owner_[path];
    const std::uint64_t ss = params_.stripe_size;
    const std::uint64_t s_lo = offset / ss;
    const std::uint64_t s_hi = (offset + bytes + ss - 1) / ss;
    const double token_wait_start = proc.now();
    if (runs_conflict(owners, s_lo, s_hi, client)) {
      req_start = token_manager_.acquire(req_start, params_.write_lock_cost);
      ++token_transfers_;
      obs::record_wait(obs::WaitKind::kTokenWait, token_wait_start,
                       req_start);
    }
    runs_assign(owners, s_lo, s_hi, client);
  }

  const bool detail = obs::detail();
  double done = req_start;
  double crit_queue_wait = 0.0;  // queue wait of the completion-critical chunk
  for_each_stripe_chunk(
      offset, bytes, params_.stripe_size, params_.n_io_nodes,
      [&](const StripeChunk& c) {
        double t = req_start;
        double chunk_wait = 0.0;
        if (params_.smp_io_channel) {
          auto& ch = smp_channels_[static_cast<std::size_t>(client_node)];
          if (detail) chunk_wait += std::max(0.0, ch.next_free() - t);
          t = ch.acquire(t, params_.smp_channel_overhead +
                                static_cast<double>(c.length) /
                                    params_.smp_channel_bandwidth);
        }
        t = network_.wire_transfer(t, client_node, io_base + c.server,
                                   c.length);
        auto& srv = servers_[static_cast<std::size_t>(c.server)];
        double srv_wait = 0.0;
        if (detail) {
          obs::gauge("ioserver:" + name() + "/" + std::to_string(c.server) +
                         "/backlog",
                     std::max(0.0, srv.next_free() - t));
        }
        const double completion =
            srv.serve(t, path, c.server_offset, c.length, is_write, 0.0,
                      proc.job(), proc.io_weight(),
                      detail ? &srv_wait : nullptr, proc.background_io());
        if (detail) {
          const std::string server_track =
              "ioserver:" + name() + "/" + std::to_string(c.server);
          obs::gauge_int(server_track + "/requests", srv.requests());
          // Per-job backlog/request tracks exist only on genuinely
          // multi-tenant runs (lone-tenant timelines stay identical to
          // single-job runs).  Gate on the run's static job count, not the
          // server's seen-tenant count: the latter flips mid-run at a
          // seed-dependent point, which would perturb the track contents.
          if (proc.njobs() > 1) {
            const auto& share = srv.job_shares().at(proc.job());
            const std::string job_track =
                server_track + "/job:" + std::to_string(proc.job());
            obs::gauge_int(job_track + "/requests", share.requests);
            obs::gauge(job_track + "/backlog",
                       std::max(0.0, share.busy - t));
          }
        }
        if (completion > done) {
          done = completion;
          crit_queue_wait = chunk_wait + srv_wait;
        }
      },
      object_first_server(path, params_.n_io_nodes));
  if (crit_queue_wait > 0.0) {
    // The charge advances the clock to `done`; attribute the critical
    // chunk's queueing share of that window as a server-queue wait.
    obs::record_wait(obs::WaitKind::kServerQueue, req_start,
                     req_start + crit_queue_wait);
  }
  proc.clock_at_least(done, sim::TimeCategory::kIo);
}

}  // namespace paramrio::pfs
