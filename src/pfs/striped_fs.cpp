#include "pfs/striped_fs.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace paramrio::pfs {

StripedFs::StripedFs(StripedFsParams params, net::Network& network)
    : params_(params), network_(network) {
  PARAMRIO_REQUIRE(params_.n_io_nodes >= 1, "StripedFs needs >= 1 I/O node");
  if (params_.client_cache_bandwidth > 0.0) {
    enable_cache(params_.client_cache_bandwidth);
  }
  servers_.reserve(static_cast<std::size_t>(params_.n_io_nodes));
  for (int i = 0; i < params_.n_io_nodes; ++i) {
    servers_.emplace_back(params_.server_disk);
  }
  smp_channels_.resize(static_cast<std::size_t>(network_.compute_nodes()));
}

std::uint64_t StripedFs::total_server_requests() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s.requests();
  return n;
}

void StripedFs::export_counters(obs::MetricsRegistry& reg) const {
  FileSystem::export_counters(reg);
  const std::string scope = "fs:" + name();
  reg.add(scope, "server_requests", total_server_requests());
  reg.add(scope, "write_token_transfers", token_transfers_);
}

void StripedFs::charge(sim::Proc& proc, const std::string& path,
                       std::uint64_t offset, std::uint64_t bytes,
                       bool is_write) {
  proc.advance(params_.client_overhead, sim::TimeCategory::kIo);
  const int client_node = network_.node_of(proc.rank());
  const int io_base = network_.compute_nodes();

  // Byte-range write tokens at stripe granularity (GPFS rounds byte-range
  // tokens out to block boundaries): a write pays one transfer — serialised
  // through the (single) token manager — whenever any stripe it touches is
  // held by a different client.  Unowned stripes are claimed for free, so a
  // single writer streams; interleaved writers sharing boundary stripes
  // ping-pong the token — GPFS's shared-file concurrent-writer penalty and
  // the false sharing behind the paper's Figure 7.
  double req_start = proc.now();
  if (is_write && params_.write_lock_cost > 0.0 && bytes > 0) {
    auto& owners = token_owner_[path];
    const std::uint64_t ss = params_.stripe_size;
    const std::uint64_t s_lo = offset / ss;
    const std::uint64_t s_hi = (offset + bytes + ss - 1) / ss;
    bool conflict = false;
    for (std::uint64_t s = s_lo; s < s_hi; ++s) {
      auto it = owners.find(s);
      if (it != owners.end() && it->second != proc.rank()) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      req_start = token_manager_.acquire(req_start, params_.write_lock_cost);
      ++token_transfers_;
    }
    for (std::uint64_t s = s_lo; s < s_hi; ++s) owners[s] = proc.rank();
  }

  double done = req_start;
  for_each_stripe_chunk(
      offset, bytes, params_.stripe_size, params_.n_io_nodes,
      [&](const StripeChunk& c) {
        double t = req_start;
        if (params_.smp_io_channel) {
          auto& ch = smp_channels_[static_cast<std::size_t>(client_node)];
          t = ch.acquire(t, params_.smp_channel_overhead +
                                static_cast<double>(c.length) /
                                    params_.smp_channel_bandwidth);
        }
        t = network_.wire_transfer(t, client_node, io_base + c.server,
                                   c.length);
        auto& srv = servers_[static_cast<std::size_t>(c.server)];
        done = std::max(done, srv.serve(t, path, c.server_offset, c.length,
                                        is_write, 0.0));
      },
      object_first_server(path, params_.n_io_nodes));
  proc.clock_at_least(done, sim::TimeCategory::kIo);
}

}  // namespace paramrio::pfs
