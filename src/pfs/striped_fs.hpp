// StripedFs — model of a client/server parallel file system with a fixed
// stripe layout across dedicated I/O nodes (GPFS on the IBM SP-2, PVFS on
// the Chiba City Linux cluster).
//
// Every request is decomposed into stripe-aligned chunks; each chunk pays
//   (1) optionally, the compute node's SMP I/O channel (GPFS: the 4 CPUs of
//       a node share one path to the switch, so concurrent requests queue —
//       the paper's "long I/O request queue" on SMP nodes),
//   (2) the fabric between the compute node and the owning I/O node
//       (net::Network — with NIC and backplane contention when configured,
//       which is what strangles PVFS over fast Ethernet),
//   (3) the I/O node itself: per-request server overhead, positioning cost
//       when the access is not sequential on that server, streaming rate.
//
// Chunks of one request proceed concurrently across distinct servers (the
// client waits for the last completion), so large well-aligned requests reach
// aggregate bandwidth while small strided chunks drown in per-request costs —
// the stripe/access-pattern mismatch at the heart of the paper's Figure 7.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "pfs/filesystem.hpp"
#include "pfs/striping.hpp"
#include "stor/disk.hpp"

namespace paramrio::pfs {

struct StripedFsParams {
  std::string fs_name = "pvfs";
  std::uint64_t stripe_size = 64 * KiB;
  int n_io_nodes = 8;
  stor::DiskParams server_disk{/*seek*/ ms(8), /*bw*/ mb_per_s(30),
                               /*req overhead*/ ms(1)};
  double client_overhead = us(200);  ///< client library cost per call
  bool smp_io_channel = false;       ///< serialise requests per compute node
  double smp_channel_bandwidth = mb_per_s(120);
  double smp_channel_overhead = ms(0.3);
  double metadata = ms(2);

  /// Client-side cache bandwidth; 0 disables (2002 PVFS had no client
  /// cache, GPFS did).
  double client_cache_bandwidth = 0.0;

  /// Distributed write-lock (GPFS token) transfer cost: charged — serialised
  /// through the token manager — whenever a write request arrives from a
  /// different client than the object's last writer.  Zero for lock-free
  /// systems (PVFS).  The shared-file concurrent-writer penalty behind the
  /// paper's Figure 7.
  double write_lock_cost = 0.0;
};

class StripedFs final : public FileSystem {
 public:
  /// The I/O nodes occupy fabric node ids [network.compute_nodes(),
  /// network.compute_nodes() + n_io_nodes); construct the Network with
  /// extra_nodes >= n_io_nodes.
  StripedFs(StripedFsParams params, net::Network& network);

  std::string name() const override { return params_.fs_name; }
  double metadata_cost() const override { return params_.metadata; }

  const StripedFsParams& params() const { return params_; }
  const stor::IoServer& io_node(int i) const {
    return servers_.at(static_cast<std::size_t>(i));
  }

  /// Total requests observed by all I/O nodes (tests assert request-count
  /// reductions from collective I/O).
  std::uint64_t total_server_requests() const;

  /// Write-token transfers paid so far: the number of times a write request
  /// touched a stripe whose token was held by a different client (tests and
  /// the cb_align ablation assert reductions from stripe-aligned domains).
  std::uint64_t write_token_transfers() const { return token_transfers_; }

  /// Base cache counters plus token transfers and server request totals.
  void export_counters(obs::MetricsRegistry& reg) const override;

  /// Striping geometry for layout-aware clients: stripe unit, server count,
  /// and the (per-object) server that owns stripe 0.
  Layout layout(const std::string& path) const override {
    return {params_.stripe_size, params_.n_io_nodes,
            object_first_server(path, params_.n_io_nodes)};
  }

 protected:
  void charge(sim::Proc& proc, const std::string& path, std::uint64_t offset,
              std::uint64_t bytes, bool is_write) override;

 private:
  /// Merged same-owner runs of stripe indices: start stripe -> (end stripe
  /// exclusive, owner).  The per-stripe map this replaces cost O(stripes
  /// touched) per write and grew one node per stripe ever written — the
  /// quadratic wall at AMR256 scale; runs make a streaming writer O(log n)
  /// per request with one node per contiguous region.
  using TokenRuns = std::map<std::uint64_t, std::pair<std::uint64_t, int>>;
  static bool runs_conflict(const TokenRuns& runs, std::uint64_t lo,
                            std::uint64_t hi, int owner);
  static void runs_assign(TokenRuns& runs, std::uint64_t lo, std::uint64_t hi,
                          int owner);

  StripedFsParams params_;
  net::Network& network_;
  std::vector<stor::IoServer> servers_;
  std::vector<sim::Timeline> smp_channels_;  ///< one per compute node
  /// Write-token ownership at stripe granularity (GPFS hands out byte-range
  /// tokens rounded to block boundaries): path -> merged owner runs.
  std::map<std::string, TokenRuns> token_owner_;
  std::uint64_t token_transfers_ = 0;
  sim::Timeline token_manager_;  ///< serialises all token transfers
};

}  // namespace paramrio::pfs
