// LocalFs — model of a fast locally-attached file system (XFS on the SGI
// Origin2000's striped scratch volume).
//
// The volume is a round-robin stripe over n_disks spindles reachable at
// memory-system latency (no network on the data path).  A single sequential
// stream is bounded by one spindle's rate (the model has no readahead), so
// concurrent accesses from different processors to disjoint regions scale up
// to n_disks — exactly the property that lets collective MPI-IO beat
// processor-0 serial I/O in the paper's Figure 6.
#pragma once

#include <memory>
#include <vector>

#include "pfs/filesystem.hpp"
#include "pfs/striping.hpp"
#include "stor/disk.hpp"

namespace paramrio::pfs {

struct LocalFsParams {
  int n_disks = 8;
  std::uint64_t stripe_size = MiB;
  stor::DiskParams disk{/*seek*/ ms(4), /*bw*/ mb_per_s(55),
                        /*req overhead*/ ms(0.2)};
  double client_overhead = us(50);  ///< syscall / buffer-cache cost per call

  /// Single-stream ceiling: one client's request data passes through its
  /// own syscall/copy path at this rate, regardless of how many spindles
  /// the stripe spans.  Concurrent clients each have their own path, so
  /// aggregate bandwidth still scales to n_disks — the property that lets
  /// parallel MPI-IO beat processor-0 serial I/O on the Origin2000.
  double per_client_bandwidth = mb_per_s(130);
  double metadata = ms(0.5);        ///< open/create/close
  double cache_bandwidth = mb_per_s(300);  ///< page-cache re-read rate
};

class LocalFs final : public FileSystem {
 public:
  explicit LocalFs(LocalFsParams params);

  std::string name() const override { return "xfs"; }
  double metadata_cost() const override { return params_.metadata; }

  const LocalFsParams& params() const { return params_; }
  const stor::IoServer& disk(int i) const {
    return disks_.at(static_cast<std::size_t>(i));
  }

 protected:
  void charge(sim::Proc& proc, const std::string& path, std::uint64_t offset,
              std::uint64_t bytes, bool is_write) override;

 private:
  LocalFsParams params_;
  std::vector<stor::IoServer> disks_;
};

}  // namespace paramrio::pfs
