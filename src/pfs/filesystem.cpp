#include "pfs/filesystem.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace paramrio::pfs {

int FileSystem::open(const std::string& path, OpenMode mode) {
  if (mode == OpenMode::kCreate) {
    const bool truncating = store_.exists(path);
    store_.create(path);
    // Truncation invalidates any cached pages of a previous file generation
    // at this path (same stale-cache hazard as remove()).
    cache_.erase(path);
    ++cache_gen_;
    if (truncating) on_truncate(path);
  } else if (!store_.exists(path)) {
    throw IoError("open(" + path + "): no such file on " + name());
  }
  int fd = next_fd_++;
  open_files_[fd] = OpenFile{path, mode != OpenMode::kRead};
  if (sim::in_simulation()) {
    sim::Proc& proc = sim::current_proc();
    if (observer_ != nullptr) {
      observer_->on_open(proc.now(), proc.global_rank(), path, mode, fd);
    }
    double cost = metadata_cost();
    if (cost > 0.0) proc.advance(cost, sim::TimeCategory::kIo);
  }
  return fd;
}

void FileSystem::close(int fd) {
  const std::string path = descriptor(fd, "close").path;
  open_files_.erase(fd);
  if (sim::in_simulation()) {
    sim::Proc& proc = sim::current_proc();
    if (observer_ != nullptr) {
      observer_->on_close(proc.now(), proc.global_rank(), path, fd);
    }
    double cost = metadata_cost();
    if (cost > 0.0) proc.advance(cost, sim::TimeCategory::kIo);
  }
}

std::uint64_t FileSystem::size(int fd) const {
  return store_.size(descriptor(fd, "size").path);
}

std::uint64_t FileSystem::read_at(int fd, std::uint64_t offset,
                                  std::span<std::byte> out) {
  OpenFile& f = descriptor_mut(fd, "read_at");
  std::uint64_t file_size = store_.size(f.path);
  if (offset + out.size() > file_size) {
    throw IoError("read_at(" + f.path + ", fd " + std::to_string(fd) +
                  "): range [" + std::to_string(offset) + ", " +
                  std::to_string(offset + out.size()) + ") past EOF " +
                  std::to_string(file_size) + " on " + name());
  }
  if (!sim::in_simulation()) {  // untimed setup access
    store_.read_at(f.path, offset, out);
    return out.size();
  }
  std::uint64_t done = 0;
  int attempt = 0;
  for (;;) {
    try {
      done += read_attempt(f, fd, offset + done, out.subspan(done));
    } catch (const TransientIoError&) {
      if (attempt >= retry_.max_retries) throw;
      fault::charge_backoff(retry_, attempt, sim::current_proc());
      ++attempt;
      fs_retries_ += 1;
      continue;
    }
    if (done >= out.size()) return done;
    // Short transfer: without fs-level retry the caller sees the prefix
    // length; with it the remainder is resumed (progress was made, so no
    // retry budget is consumed).
    if (!retry_.enabled()) return done;
  }
}

std::uint64_t FileSystem::read_attempt(OpenFile& f, int fd,
                                       std::uint64_t offset,
                                       std::span<std::byte> out) {
  OBS_SPAN("pfs.read", sim::TimeCategory::kIo);
  sim::Proc& proc = sim::current_proc();
  const double op_start = proc.now();
  std::uint64_t transfer = out.size();
  if (fault_hook_ != nullptr) {
    const fault::IoFaultAction a =
        fault_hook_->on_io(proc.global_rank(), proc.now(), /*is_write=*/false,
                           f.path, offset, out.size(),
                           server_of(f.path, offset));
    switch (a.kind) {
      case fault::IoFaultAction::Kind::kPass:
        break;
      case fault::IoFaultAction::Kind::kShort:
        transfer = std::min<std::uint64_t>(a.transfer, out.size());
        break;
      case fault::IoFaultAction::Kind::kStall:
        proc.advance(a.stall_seconds, sim::TimeCategory::kIo);
        break;
      case fault::IoFaultAction::Kind::kTransientError:
        throw TransientIoError("injected EIO: read_at(" + f.path + ", " +
                               std::to_string(offset) + ") on " + name());
      case fault::IoFaultAction::Kind::kCrash:
        throw CrashError("injected crash: read_at(" + f.path + ") on " +
                         name());
    }
  }
  obs::span_counter("bytes", transfer);
  store_.read_at(f.path, offset, out.first(transfer));
  proc.stats().io_bytes_read += transfer;
  proc.stats().io_requests += 1;
  account_job(proc, /*is_write=*/false, transfer);
  if (observer_ != nullptr) {
    observer_->on_io(proc.now(), proc.global_rank(), /*is_write=*/false,
                     f.path, offset, transfer, fd);
  }
  if (cache_enabled_ && transfer > 0) {
    Intervals& iv = cache_of(f);
    cache_lookups_ += 1;
    const bool hit = cache_covers(iv, offset, transfer);
    if (hit) cache_hit_lookups_ += 1;
    if (obs::detail()) {
      obs::gauge("fs:" + name() + "/cache_hit_rate",
                 static_cast<double>(cache_hit_lookups_) /
                     static_cast<double>(cache_lookups_));
      obs::gauge_int("fs:" + name() + "/cache_hit_bytes",
                     cache_hits_ + (hit ? transfer : 0));
    }
    if (hit) {
      cache_hits_ += transfer;
      proc.advance(static_cast<double>(transfer) / cache_bandwidth_,
                   sim::TimeCategory::kIo);
      obs::latency_sample("pfs.read", proc.now() - op_start);
      return transfer;
    }
    cache_insert(iv, offset, transfer);
  }
  charge(proc, f.path, offset, transfer, /*is_write=*/false);
  obs::latency_sample("pfs.read", proc.now() - op_start);
  return transfer;
}

std::uint64_t FileSystem::write_at(int fd, std::uint64_t offset,
                                   std::span<const std::byte> data) {
  OpenFile& f = descriptor_mut(fd, "write_at");
  if (!f.writable) throw IoError("write to read-only descriptor: " + f.path);
  if (!sim::in_simulation()) {  // untimed setup access
    store_.write_at(f.path, offset, data);
    on_untimed_write(f.path, offset, data);
    return data.size();
  }
  std::uint64_t done = 0;
  int attempt = 0;
  for (;;) {
    try {
      done += write_attempt(f, fd, offset + done, data.subspan(done));
    } catch (const TransientIoError&) {
      if (attempt >= retry_.max_retries) throw;
      fault::charge_backoff(retry_, attempt, sim::current_proc());
      ++attempt;
      fs_retries_ += 1;
      continue;
    }
    if (done >= data.size()) return done;
    if (!retry_.enabled()) return done;
  }
}

std::uint64_t FileSystem::write_attempt(OpenFile& f, int fd,
                                        std::uint64_t offset,
                                        std::span<const std::byte> data) {
  OBS_SPAN("pfs.write", sim::TimeCategory::kIo);
  sim::Proc& proc = sim::current_proc();
  const double op_start = proc.now();
  std::uint64_t transfer = data.size();
  if (fault_hook_ != nullptr) {
    const fault::IoFaultAction a =
        fault_hook_->on_io(proc.global_rank(), proc.now(), /*is_write=*/true,
                           f.path, offset, data.size(),
                           server_of(f.path, offset));
    switch (a.kind) {
      case fault::IoFaultAction::Kind::kPass:
        break;
      case fault::IoFaultAction::Kind::kShort:
        transfer = std::min<std::uint64_t>(a.transfer, data.size());
        break;
      case fault::IoFaultAction::Kind::kStall:
        proc.advance(a.stall_seconds, sim::TimeCategory::kIo);
        break;
      case fault::IoFaultAction::Kind::kTransientError:
        throw TransientIoError("injected EIO: write_at(" + f.path + ", " +
                               std::to_string(offset) + ") on " + name());
      case fault::IoFaultAction::Kind::kCrash:
        throw CrashError("injected crash: write_at(" + f.path + ") on " +
                         name());
    }
  }
  obs::span_counter("bytes", transfer);
  store_.write_at(f.path, offset, data.first(transfer));
  proc.stats().io_bytes_written += transfer;
  proc.stats().io_requests += 1;
  account_job(proc, /*is_write=*/true, transfer);
  if (observer_ != nullptr) {
    observer_->on_io(proc.now(), proc.global_rank(), /*is_write=*/true,
                     f.path, offset, transfer, fd);
  }
  if (cache_enabled_ && transfer > 0) {
    cache_insert(cache_of(f), offset, transfer);
  }
  charge(proc, f.path, offset, transfer, /*is_write=*/true);
  obs::latency_sample("pfs.write", proc.now() - op_start);
  return transfer;
}

int FileSystem::server_of(const std::string& path,
                          std::uint64_t offset) const {
  const Layout l = layout(path);
  if (l.stripe_size == 0 || l.n_servers < 1) return -1;
  return static_cast<int>(
      (offset / l.stripe_size + static_cast<std::uint64_t>(l.first_server)) %
      static_cast<std::uint64_t>(l.n_servers));
}

bool FileSystem::cache_covers(const Intervals& iv, std::uint64_t off,
                              std::uint64_t len) const {
  auto it = iv.upper_bound(off);
  if (it == iv.begin()) return false;
  --it;
  return it->second >= off + len;
}

void FileSystem::cache_insert(Intervals& iv, std::uint64_t off,
                              std::uint64_t len) {
  std::uint64_t lo = off, hi = off + len;
  // Merge with any overlapping/adjacent intervals.
  auto it = iv.upper_bound(lo);
  if (it != iv.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = iv.erase(prev);
    }
  }
  while (it != iv.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = iv.erase(it);
  }
  iv[lo] = hi;
}

void FileSystem::account_job(const sim::Proc& proc, bool is_write,
                             std::uint64_t bytes) {
  JobIo& io = job_io_[proc.job()];
  if (io.requests == 0) io.name = proc.job_name();
  if (is_write) {
    io.bytes_written += bytes;
  } else {
    io.bytes_read += bytes;
  }
  io.requests += 1;
}

void FileSystem::export_counters(obs::MetricsRegistry& reg) const {
  reg.add("fs:" + name(), "cache_hit_bytes", cache_hits_);
  if (fs_retries_ > 0) reg.add("fs:" + name(), "retries", fs_retries_);
  // Per-tenant traffic breakdown, only in genuinely multi-job runs so every
  // single-job registry export stays byte-identical to previous releases.
  if (job_io_.size() > 1) {
    for (const auto& [job, io] : job_io_) {
      const std::string label =
          io.name.empty() ? "#" + std::to_string(job) : io.name;
      const std::string scope = "fs:" + name() + "|job:" + label;
      reg.add(scope, "bytes_read", io.bytes_read);
      reg.add(scope, "bytes_written", io.bytes_written);
      reg.add(scope, "requests", io.requests);
    }
  }
}

const FileSystem::OpenFile& FileSystem::descriptor(int fd,
                                                   const char* op) const {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    throw IoError(std::string(op) + ": bad file descriptor " +
                  std::to_string(fd) + " on " + name());
  }
  return it->second;
}

FileSystem::OpenFile& FileSystem::descriptor_mut(int fd, const char* op) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    throw IoError(std::string(op) + ": bad file descriptor " +
                  std::to_string(fd) + " on " + name());
  }
  return it->second;
}

FileSystem::Intervals& FileSystem::cache_of(OpenFile& f) {
  if (f.cache_iv == nullptr || f.cache_gen != cache_gen_) {
    f.cache_iv = &cache_[f.path];
    f.cache_gen = cache_gen_;
  }
  return *f.cache_iv;
}

}  // namespace paramrio::pfs
