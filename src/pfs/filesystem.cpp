#include "pfs/filesystem.hpp"

#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace paramrio::pfs {

int FileSystem::open(const std::string& path, OpenMode mode) {
  if (mode == OpenMode::kCreate) {
    store_.create(path);
    // Truncation invalidates any cached pages of a previous file generation
    // at this path (same stale-cache hazard as remove()).
    cache_.erase(path);
  } else if (!store_.exists(path)) {
    throw IoError("open(" + path + "): no such file on " + name());
  }
  int fd = next_fd_++;
  open_files_[fd] = OpenFile{path, mode != OpenMode::kRead};
  if (sim::in_simulation()) {
    sim::Proc& proc = sim::current_proc();
    if (observer_ != nullptr) {
      observer_->on_open(proc.now(), proc.rank(), path, mode, fd);
    }
    double cost = metadata_cost();
    if (cost > 0.0) proc.advance(cost, sim::TimeCategory::kIo);
  }
  return fd;
}

void FileSystem::close(int fd) {
  const std::string path = descriptor(fd, "close").path;
  open_files_.erase(fd);
  if (sim::in_simulation()) {
    sim::Proc& proc = sim::current_proc();
    if (observer_ != nullptr) {
      observer_->on_close(proc.now(), proc.rank(), path, fd);
    }
    double cost = metadata_cost();
    if (cost > 0.0) proc.advance(cost, sim::TimeCategory::kIo);
  }
}

std::uint64_t FileSystem::size(int fd) const {
  return store_.size(descriptor(fd, "size").path);
}

void FileSystem::read_at(int fd, std::uint64_t offset,
                         std::span<std::byte> out) {
  const OpenFile& f = descriptor(fd, "read_at");
  std::uint64_t file_size = store_.size(f.path);
  if (offset + out.size() > file_size) {
    throw IoError("read_at(" + f.path + ", fd " + std::to_string(fd) +
                  "): range [" + std::to_string(offset) + ", " +
                  std::to_string(offset + out.size()) + ") past EOF " +
                  std::to_string(file_size) + " on " + name());
  }
  store_.read_at(f.path, offset, out);
  if (!sim::in_simulation()) return;  // untimed setup access
  OBS_SPAN("pfs.read", sim::TimeCategory::kIo);
  obs::span_counter("bytes", out.size());
  sim::Proc& proc = sim::current_proc();
  proc.stats().io_bytes_read += out.size();
  proc.stats().io_requests += 1;
  if (observer_ != nullptr) {
    observer_->on_io(proc.now(), proc.rank(), /*is_write=*/false, f.path,
                     offset, out.size(), fd);
  }
  if (cache_enabled_ && !out.empty()) {
    Intervals& iv = cache_[f.path];
    if (cache_covers(iv, offset, out.size())) {
      cache_hits_ += out.size();
      proc.advance(static_cast<double>(out.size()) / cache_bandwidth_,
                   sim::TimeCategory::kIo);
      return;
    }
    cache_insert(iv, offset, out.size());
  }
  charge(proc, f.path, offset, out.size(), /*is_write=*/false);
}

void FileSystem::write_at(int fd, std::uint64_t offset,
                          std::span<const std::byte> data) {
  const OpenFile& f = descriptor(fd, "write_at");
  if (!f.writable) throw IoError("write to read-only descriptor: " + f.path);
  store_.write_at(f.path, offset, data);
  if (!sim::in_simulation()) return;  // untimed setup access
  OBS_SPAN("pfs.write", sim::TimeCategory::kIo);
  obs::span_counter("bytes", data.size());
  sim::Proc& proc = sim::current_proc();
  proc.stats().io_bytes_written += data.size();
  proc.stats().io_requests += 1;
  if (observer_ != nullptr) {
    observer_->on_io(proc.now(), proc.rank(), /*is_write=*/true, f.path,
                     offset, data.size(), fd);
  }
  if (cache_enabled_ && !data.empty()) {
    cache_insert(cache_[f.path], offset, data.size());
  }
  charge(proc, f.path, offset, data.size(), /*is_write=*/true);
}

bool FileSystem::cache_covers(const Intervals& iv, std::uint64_t off,
                              std::uint64_t len) const {
  auto it = iv.upper_bound(off);
  if (it == iv.begin()) return false;
  --it;
  return it->second >= off + len;
}

void FileSystem::cache_insert(Intervals& iv, std::uint64_t off,
                              std::uint64_t len) {
  std::uint64_t lo = off, hi = off + len;
  // Merge with any overlapping/adjacent intervals.
  auto it = iv.upper_bound(lo);
  if (it != iv.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = iv.erase(prev);
    }
  }
  while (it != iv.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = iv.erase(it);
  }
  iv[lo] = hi;
}

void FileSystem::export_counters(obs::MetricsRegistry& reg) const {
  reg.add("fs:" + name(), "cache_hit_bytes", cache_hits_);
}

const FileSystem::OpenFile& FileSystem::descriptor(int fd,
                                                   const char* op) const {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    throw IoError(std::string(op) + ": bad file descriptor " +
                  std::to_string(fd) + " on " + name());
  }
  return it->second;
}

}  // namespace paramrio::pfs
