#include "pfs/local_disk_fs.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace paramrio::pfs {

LocalDiskFs::LocalDiskFs(LocalDiskFsParams params, int nprocs)
    : params_(params) {
  PARAMRIO_REQUIRE(nprocs >= 1, "LocalDiskFs needs >= 1 proc");
  page_cache_.resize(static_cast<std::size_t>(nprocs));
  disks_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) disks_.emplace_back(params_.disk);
}

void LocalDiskFs::charge(sim::Proc& proc, const std::string& path,
                         std::uint64_t offset, std::uint64_t bytes,
                         bool is_write) {
  // Disks, page caches and ownership are per *global* rank: under multi-job
  // tenancy each simulated node (and its spindle) belongs to exactly one
  // rank of one job; job-local rank ids would alias the rank 0s together.
  const int client = proc.global_rank();
  Ownership& own = owners_[path];
  auto& my_cache = page_cache_[static_cast<std::size_t>(client)][path];
  if (is_write) {
    record_write(own, offset, bytes, client);
  } else if (!wholly_owned_by(own, offset, bytes, client)) {
    remote_reads_ += 1;
  } else if (covered(my_cache, offset, bytes)) {
    // This node already has the pages: served from its own page cache.
    proc.advance(static_cast<double>(bytes) / params_.cache_bandwidth,
                 sim::TimeCategory::kIo);
    return;
  }
  insert_range(my_cache, offset, bytes);
  proc.advance(params_.client_overhead, sim::TimeCategory::kIo);
  auto& d = disks_[static_cast<std::size_t>(client)];
  const bool detail = obs::detail();
  const double issue = proc.now();
  double qw = 0.0;
  double done = d.serve(issue, path, offset, bytes, is_write, 0.0, -1, 1.0,
                        detail ? &qw : nullptr, proc.background_io());
  if (detail) {
    obs::gauge_int("ioserver:" + name() + "/" + std::to_string(client) +
                       "/requests",
                   d.requests());
    if (qw > 0.0) {
      obs::record_wait(obs::WaitKind::kServerQueue, issue, issue + qw);
    }
  }
  proc.clock_at_least(done, sim::TimeCategory::kIo);
}

void LocalDiskFs::forget_path(const std::string& path) {
  owners_.erase(path);
  for (auto& per_rank : page_cache_) per_rank.erase(path);
}

bool LocalDiskFs::covered(const Ranges& iv, std::uint64_t off,
                          std::uint64_t len) {
  auto it = iv.upper_bound(off);
  if (it == iv.begin()) return false;
  --it;
  return it->second >= off + len;
}

void LocalDiskFs::insert_range(Ranges& iv, std::uint64_t off,
                               std::uint64_t len) {
  std::uint64_t lo = off, hi = off + len;
  auto it = iv.upper_bound(lo);
  if (it != iv.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = iv.erase(prev);
    }
  }
  while (it != iv.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = iv.erase(it);
  }
  iv[lo] = hi;
}

bool LocalDiskFs::wholly_owned_by(const Ownership& own, std::uint64_t offset,
                                  std::uint64_t bytes, int rank) const {
  std::uint64_t pos = offset;
  std::uint64_t end = offset + bytes;
  while (pos < end) {
    // Find the range containing pos: last range with start <= pos.
    auto it = own.ranges.upper_bound(pos);
    if (it == own.ranges.begin()) return false;
    --it;
    auto [range_end, owner] = it->second;
    if (pos >= range_end || owner != rank) return false;
    pos = range_end;
  }
  return true;
}

void LocalDiskFs::record_write(Ownership& own, std::uint64_t offset,
                               std::uint64_t bytes, int rank) {
  if (bytes == 0) return;
  std::uint64_t end = offset + bytes;
  // Trim or split any ranges overlapping [offset, end).
  auto it = own.ranges.upper_bound(offset);
  if (it != own.ranges.begin()) {
    auto prev = std::prev(it);
    auto [prev_end, prev_owner] = prev->second;
    if (prev_end > offset) {
      // prev overlaps: keep its head, and if it extends past `end`, its tail.
      prev->second.first = offset;
      if (prev_end > end) {
        own.ranges[end] = {prev_end, prev_owner};
      }
    }
  }
  it = own.ranges.lower_bound(offset);
  while (it != own.ranges.end() && it->first < end) {
    auto [range_end, owner] = it->second;
    if (range_end > end) {
      own.ranges[end] = {range_end, owner};
    }
    it = own.ranges.erase(it);
  }
  // Insert, coalescing with same-owner neighbours: without this a
  // sequential writer leaves one node per request and wholly_owned_by
  // degrades to a per-fragment walk — the other quadratic the ROADMAP
  // raw-speed note flags.
  auto ins = own.ranges.insert_or_assign(offset, std::make_pair(end, rank))
                 .first;
  auto next = std::next(ins);
  if (next != own.ranges.end() && next->first == ins->second.first &&
      next->second.second == rank) {
    ins->second.first = next->second.first;
    own.ranges.erase(next);
  }
  if (ins != own.ranges.begin()) {
    auto prev = std::prev(ins);
    if (prev->second.first == ins->first && prev->second.second == rank) {
      prev->second.first = ins->second.first;
      own.ranges.erase(ins);
    }
  }
}

}  // namespace paramrio::pfs
