// Abstract file system exposed to the I/O libraries.
//
// All file systems store real bytes in a stor::ObjectStore (so contents are
// verifiable) and differ only in their *timing* models, implemented in the
// charge() hook: where the bytes physically live, how they are striped, what
// networks and queues a request crosses.  Every data call charges the
// calling simulated processor's virtual clock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "fault/retry.hpp"
#include "sim/engine.hpp"
#include "stor/object_store.hpp"

namespace paramrio::obs {
class MetricsRegistry;
}

namespace paramrio::fault {
class IoFaultHook;
}

namespace paramrio::pfs {

enum class OpenMode {
  kRead,       ///< existing file, read-only
  kCreate,     ///< create or truncate, read-write
  kReadWrite,  ///< existing file, read-write
};

/// Physical data layout of a file, as reported by the file system to
/// layout-aware clients (ROMIO-style collective buffering queries this to
/// align file domains to stripe boundaries).  An unstriped file system
/// reports stripe_size == 0: offsets carry no locality information.
struct Layout {
  std::uint64_t stripe_size = 0;  ///< bytes per stripe unit; 0 = unstriped
  int n_servers = 1;              ///< I/O servers the file is spread over
  int first_server = 0;           ///< server owning stripe 0 (round-robin)

  bool striped() const { return stripe_size > 0 && n_servers > 1; }
};

/// Observer hook for I/O tracing: receives every data request a FileSystem
/// serves plus descriptor-lifecycle events (see trace::IoTracer for the
/// standard implementation and check::IoChecker for the correctness
/// analyzer).  Like all timing, observation only happens inside the
/// simulation; untimed setup accesses are invisible.
class IoObserver {
 public:
  virtual ~IoObserver() = default;
  virtual void on_io(double time, int rank, bool is_write,
                     const std::string& path, std::uint64_t offset,
                     std::uint64_t bytes, int fd) = 0;
  /// Descriptor lifecycle; default no-op so throughput-only observers need
  /// not care.
  virtual void on_open(double time, int rank, const std::string& path,
                       OpenMode mode, int fd) {
    (void)time, (void)rank, (void)path, (void)mode, (void)fd;
  }
  virtual void on_close(double time, int rank, const std::string& path,
                        int fd) {
    (void)time, (void)rank, (void)path, (void)fd;
  }
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Open a file; returns a descriptor valid across all ranks (execution is
  /// serialised, so the descriptor table needs no locking).
  int open(const std::string& path, OpenMode mode);
  void close(int fd);

  bool exists(const std::string& path) const { return store_.exists(path); }

  /// Remove a file, dropping any of its cached pages so a later file created
  /// at the same path cannot see stale cache hits.
  void remove(const std::string& path) {
    cache_.erase(path);
    ++cache_gen_;  // open descriptors re-resolve their interval-map pointer
    on_remove(path);
    store_.remove(path);
  }

  std::uint64_t size(int fd) const;

  /// Timed positional read; returns the bytes actually transferred.  The
  /// whole range [offset, offset+out.size()) must exist (past-EOF reads
  /// throw), and without fault injection the transfer is always complete; an
  /// injected short read returns a prefix length, which the caller (or the
  /// fs-level retry, when enabled) must resume.
  std::uint64_t read_at(int fd, std::uint64_t offset,
                        std::span<std::byte> out);

  /// Timed positional write (extends the file as needed); returns the bytes
  /// actually transferred — a short count only ever results from an injected
  /// fault, and byte accounting (ProcStats, observers, charge) always
  /// reflects what actually landed, not what was requested.
  std::uint64_t write_at(int fd, std::uint64_t offset,
                         std::span<const std::byte> data);

  /// Human-readable model name ("xfs", "gpfs", "pvfs", "local-disk").
  virtual std::string name() const = 0;

  /// Physical layout of `path` (striping geometry).  The identity default —
  /// stripe_size 0, one server — means "no useful locality information";
  /// striped file systems override it so collective buffering can align
  /// file domains to stripe and server boundaries.
  virtual Layout layout(const std::string& path) const {
    (void)path;
    return {};
  }

  /// Direct access to stored bytes, for tests and format validators.
  stor::ObjectStore& store() { return store_; }
  const stor::ObjectStore& store() const { return store_; }

  /// Metadata operation cost (open/close/create), charged per call.
  virtual double metadata_cost() const { return 0.0; }

  /// Bytes served from the cache so far (tests/benches).
  std::uint64_t cache_hits() const { return cache_hits_; }

  /// Invalidate all cached pages (simulate a cold restart between phases).
  virtual void drop_caches() {
    cache_.clear();
    ++cache_gen_;
  }

  /// Attach (or detach with nullptr) an I/O observer; every subsequent data
  /// request inside the simulation is reported to it.
  void attach_observer(IoObserver* observer) { observer_ = observer; }

  /// Attach (or detach with nullptr) a fault-injection hook, consulted for
  /// every in-simulation data request *before* any bytes move.  The data
  /// operations are non-virtual, so injection is a hook inside the base
  /// class rather than a decorator.
  void attach_fault_hook(fault::IoFaultHook* hook) { fault_hook_ = hook; }
  fault::IoFaultHook* fault_hook() const { return fault_hook_; }

  /// Enable file-system-level retry: read_at/write_at absorb injected
  /// transient errors (with exponential virtual-clock backoff) and resume
  /// short transfers internally, so libraries that talk to the fs directly
  /// — the serial HDF4 writer, the hierarchy file, HDF5 metadata — survive
  /// faults without their own retry loops.  Default-off: a zero-valued
  /// policy propagates transient errors and reports short transfers.
  void set_retry(const fault::RetryPolicy& policy) { retry_ = policy; }
  const fault::RetryPolicy& retry() const { return retry_; }

  /// Re-attempts the fs-level retry loop performed (tests/obs export).
  std::uint64_t fs_retries() const { return fs_retries_; }

  /// I/O server holding byte `offset` of `path` under this fs's layout, or
  /// -1 when unstriped (fault specs match on this).
  int server_of(const std::string& path, std::uint64_t offset) const;

  /// Publish model-level counters into `reg` under scope "fs:<name>".
  /// The base exports cache hits; subclasses add their own (GPFS write-token
  /// transfers, PVFS server request counts) by overriding and chaining up.
  virtual void export_counters(obs::MetricsRegistry& reg) const;

 protected:
  FileSystem() = default;

  /// Enable the buffer-cache model: a read whose whole range was read or
  /// written before is served at `bandwidth` from memory instead of going
  /// through charge().  Partial overlaps count as misses.  Local file
  /// systems and GPFS clients cache; 2002 PVFS did not.
  void enable_cache(double bandwidth) {
    cache_enabled_ = true;
    cache_bandwidth_ = bandwidth;
  }

  /// Charge `proc` for moving `bytes` at `offset` of `path`; advance its
  /// clock to the operation's completion.
  virtual void charge(sim::Proc& proc, const std::string& path,
                      std::uint64_t offset, std::uint64_t bytes,
                      bool is_write) = 0;

  /// Notification hooks for namespace events the non-virtual fast path
  /// handles in the base class.  Subclasses that keep *per-path* model state
  /// outside the base buffer cache (LocalDiskFs ownership + page caches, the
  /// staging tier's extent map) override these to drop it, so a file
  /// re-created at the same path cannot observe state from its previous
  /// generation.  on_remove fires from remove(); on_truncate from
  /// open(kCreate) over an existing path; on_untimed_write from the untimed
  /// (outside-simulation) write_at path after the bytes land in the store.
  virtual void on_remove(const std::string& path) { (void)path; }
  virtual void on_truncate(const std::string& path) { (void)path; }
  virtual void on_untimed_write(const std::string& path, std::uint64_t offset,
                                std::span<const std::byte> data) {
    (void)path, (void)offset, (void)data;
  }

 private:
  /// Merged resident intervals per file (offset -> end).
  using Intervals = std::map<std::uint64_t, std::uint64_t>;

  struct OpenFile {
    std::string path;
    bool writable = false;
    /// Buffer-cache interval map resolved once per descriptor instead of a
    /// string-keyed map lookup on every attempt (the per-op hot path at
    /// AMR256 scale).  Re-resolved lazily whenever `cache_gen` falls behind
    /// the file system's generation counter — remove(), kCreate truncation
    /// and drop_caches() all bump it, which also covers the pointer's
    /// stability (std::map nodes only move on erase).
    Intervals* cache_iv = nullptr;
    std::uint64_t cache_gen = 0;
  };
  const OpenFile& descriptor(int fd, const char* op) const;
  OpenFile& descriptor_mut(int fd, const char* op);
  Intervals& cache_of(OpenFile& f);

  /// One timed attempt at (part of) a data operation: consults the fault
  /// hook, moves up to the requested bytes, and accounts exactly the bytes
  /// moved.  Returns the transfer length; throws TransientIoError /
  /// CrashError when the hook says so.
  std::uint64_t read_attempt(OpenFile& f, int fd, std::uint64_t offset,
                             std::span<std::byte> out);
  std::uint64_t write_attempt(OpenFile& f, int fd, std::uint64_t offset,
                              std::span<const std::byte> data);

  bool cache_covers(const Intervals& iv, std::uint64_t off,
                    std::uint64_t len) const;
  void cache_insert(Intervals& iv, std::uint64_t off, std::uint64_t len);

  /// Per-tenant traffic, keyed by engine job index; recorded only to feed
  /// multi-job exports (single-job registries must stay byte-identical, so
  /// export_counters only emits these scopes when >1 job was seen).
  struct JobIo {
    std::string name;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t requests = 0;
  };
  void account_job(const sim::Proc& proc, bool is_write, std::uint64_t bytes);

  stor::ObjectStore store_;
  std::map<int, OpenFile> open_files_;
  int next_fd_ = 3;  // tradition
  IoObserver* observer_ = nullptr;
  fault::IoFaultHook* fault_hook_ = nullptr;
  fault::RetryPolicy retry_;
  std::uint64_t fs_retries_ = 0;
  bool cache_enabled_ = false;
  double cache_bandwidth_ = 0.0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_lookups_ = 0;      ///< read-side cache consults
  std::uint64_t cache_hit_lookups_ = 0;  ///< consults fully served from cache
  std::map<std::string, Intervals> cache_;
  std::uint64_t cache_gen_ = 1;  ///< bumped on remove/truncate/drop_caches
  std::map<int, JobIo> job_io_;
};

}  // namespace paramrio::pfs
