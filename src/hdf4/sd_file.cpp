#include "hdf4/sd_file.hpp"

namespace paramrio::hdf4 {

namespace {
constexpr std::uint32_t kMagic = 0x31464453;  // "SDF1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKindDataset = 1;
constexpr std::uint32_t kKindAttribute = 2;

std::vector<std::byte> read_exact(pfs::FileSystem& fs, int fd,
                                  std::uint64_t off, std::uint64_t n) {
  std::vector<std::byte> buf(n);
  fs.read_at(fd, off, buf);
  return buf;
}
}  // namespace

std::uint64_t element_size(NumberType t) {
  switch (t) {
    case NumberType::kFloat32:
    case NumberType::kInt32:
      return 4;
    case NumberType::kFloat64:
    case NumberType::kInt64:
      return 8;
  }
  throw LogicError("bad NumberType");
}

SdFile SdFile::create(pfs::FileSystem& fs, const std::string& path) {
  SdFile f;
  f.fs_ = &fs;
  f.path_ = path;
  f.fd_ = fs.open(path, pfs::OpenMode::kCreate);
  f.writable_ = true;
  f.open_ = true;
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  auto hdr = w.take();
  fs.write_at(f.fd_, 0, hdr);
  f.append_pos_ = hdr.size();
  return f;
}

SdFile SdFile::open(pfs::FileSystem& fs, const std::string& path) {
  SdFile f;
  f.fs_ = &fs;
  f.path_ = path;
  f.fd_ = fs.open(path, pfs::OpenMode::kRead);
  f.writable_ = false;
  f.open_ = true;
  f.scan();
  return f;
}

SdFile::~SdFile() {
  if (open_) fs_->close(fd_);
}

void SdFile::close() {
  PARAMRIO_REQUIRE(open_, "SdFile: already closed");
  fs_->close(fd_);
  open_ = false;
}

void SdFile::scan() {
  std::uint64_t size = fs_->size(fd_);
  if (size < 8) throw FormatError(path_ + ": too short for an SDF file");
  {
    auto hdr = read_exact(*fs_, fd_, 0, 8);
    ByteReader r(hdr);
    if (r.u32() != kMagic) throw FormatError(path_ + ": bad SDF magic");
    if (r.u32() != kVersion) throw FormatError(path_ + ": bad SDF version");
  }
  std::uint64_t pos = 8;
  while (pos < size) {
    if (pos + 8 > size) throw FormatError(path_ + ": truncated record");
    auto fixed = read_exact(*fs_, fd_, pos, 8);
    ByteReader fr(fixed);
    std::uint32_t kind = fr.u32();
    std::uint32_t hdrlen = fr.u32();
    if (pos + 8 + hdrlen > size) {
      throw FormatError(path_ + ": truncated record header");
    }
    auto hdr = read_exact(*fs_, fd_, pos + 8, hdrlen);
    ByteReader r(hdr);
    if (kind == kKindDataset) {
      SdsInfo info;
      info.name = r.str();
      info.type = static_cast<NumberType>(r.u8());
      std::uint32_t ndims = r.u32();
      info.dims.reserve(ndims);
      for (std::uint32_t d = 0; d < ndims; ++d) info.dims.push_back(r.u64());
      info.data_bytes = r.u64();
      info.data_offset = pos + 8 + hdrlen;
      index_[info.name] = datasets_.size();
      datasets_.push_back(info);
      pos = info.data_offset + info.data_bytes;
    } else if (kind == kKindAttribute) {
      std::string name = r.str();
      std::uint64_t nbytes = r.u64();
      auto value = read_exact(*fs_, fd_, pos + 8 + hdrlen, nbytes);
      attributes_[name] = std::move(value);
      pos += 8 + hdrlen + nbytes;
    } else {
      throw FormatError(path_ + ": unknown record kind " +
                        std::to_string(kind));
    }
  }
  append_pos_ = size;
}

void SdFile::write_dataset(const std::string& name, NumberType type,
                           const std::vector<std::uint64_t>& dims,
                           std::span<const std::byte> data) {
  PARAMRIO_REQUIRE(open_ && writable_, "SdFile: not open for writing");
  PARAMRIO_REQUIRE(index_.find(name) == index_.end(),
                   "SdFile: duplicate dataset " + name);
  SdsInfo info;
  info.name = name;
  info.type = type;
  info.dims = dims;
  info.data_bytes = data.size();
  PARAMRIO_REQUIRE(info.element_count() * element_size(type) == data.size(),
                   "SdFile: data size does not match dims for " + name);

  ByteWriter hw;
  hw.str(name);
  hw.u8(static_cast<std::uint8_t>(type));
  hw.u32(static_cast<std::uint32_t>(dims.size()));
  for (auto d : dims) hw.u64(d);
  hw.u64(data.size());
  auto hdr = hw.take();

  ByteWriter fw;
  fw.u32(kKindDataset);
  fw.u32(static_cast<std::uint32_t>(hdr.size()));
  fw.bytes(hdr);
  auto rec = fw.take();

  fs_->write_at(fd_, append_pos_, rec);
  info.data_offset = append_pos_ + rec.size();
  fs_->write_at(fd_, info.data_offset, data);
  append_pos_ = info.data_offset + data.size();
  index_[name] = datasets_.size();
  datasets_.push_back(std::move(info));
}

void SdFile::read_dataset(const std::string& name,
                          std::span<std::byte> out) const {
  const SdsInfo& i = info(name);
  PARAMRIO_REQUIRE(out.size() == i.data_bytes,
                   "SdFile: buffer size mismatch for " + name);
  fs_->read_at(fd_, i.data_offset, out);
}

void SdFile::write_attribute(const std::string& name,
                             std::span<const std::byte> value) {
  PARAMRIO_REQUIRE(open_ && writable_, "SdFile: not open for writing");
  ByteWriter hw;
  hw.str(name);
  hw.u64(value.size());
  auto hdr = hw.take();
  ByteWriter fw;
  fw.u32(kKindAttribute);
  fw.u32(static_cast<std::uint32_t>(hdr.size()));
  fw.bytes(hdr);
  fw.bytes(value);
  auto rec = fw.take();
  fs_->write_at(fd_, append_pos_, rec);
  append_pos_ += rec.size();
  attributes_[name].assign(value.begin(), value.end());
}

std::vector<std::byte> SdFile::read_attribute(const std::string& name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    throw IoError("SdFile: no attribute " + name + " in " + path_);
  }
  return it->second;
}

bool SdFile::has_dataset(const std::string& name) const {
  return index_.find(name) != index_.end();
}

const SdsInfo& SdFile::info(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw IoError("SdFile: no dataset " + name + " in " + path_);
  }
  return datasets_[it->second];
}

std::vector<std::string> SdFile::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& d : datasets_) names.push_back(d.name);
  return names;
}

}  // namespace paramrio::hdf4
