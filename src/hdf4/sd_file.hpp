// HDF4-style serial scientific-dataset file format ("SDF").
//
// Models the role HDF version 4 plays in the original ENZO: a strictly
// serial library — one process reads or writes a file at a time — storing
// named n-dimensional arrays (SDS) plus small named attributes.  The on-disk
// layout is a linear sequence of self-describing records; opening a file
// scans the record headers (several small reads, as a 2002 SD-interface
// open would) to build the in-memory directory.
//
// This library has no parallel facilities by design; the application-level
// consequence (processor 0 gathers and writes everything) is implemented in
// enzo::Hdf4SerialBackend.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/byte_io.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::hdf4 {

enum class NumberType : std::uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
  kInt32 = 2,
  kInt64 = 3,
};

std::uint64_t element_size(NumberType t);

struct SdsInfo {
  std::string name;
  NumberType type = NumberType::kFloat32;
  std::vector<std::uint64_t> dims;
  std::uint64_t data_offset = 0;  ///< absolute file offset of the raw data
  std::uint64_t data_bytes = 0;

  std::uint64_t element_count() const {
    std::uint64_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
};

class SdFile {
 public:
  /// Create/truncate a file for writing.
  static SdFile create(pfs::FileSystem& fs, const std::string& path);

  /// Open an existing file; scans the directory.
  static SdFile open(pfs::FileSystem& fs, const std::string& path);

  SdFile(SdFile&& other) noexcept { *this = std::move(other); }
  SdFile& operator=(SdFile&& other) noexcept {
    if (this != &other) {
      if (open_) fs_->close(fd_);
      fs_ = other.fs_;
      path_ = std::move(other.path_);
      fd_ = other.fd_;
      writable_ = other.writable_;
      open_ = other.open_;
      append_pos_ = other.append_pos_;
      datasets_ = std::move(other.datasets_);
      index_ = std::move(other.index_);
      attributes_ = std::move(other.attributes_);
      other.open_ = false;  // source no longer owns the descriptor
    }
    return *this;
  }
  SdFile(const SdFile&) = delete;
  SdFile& operator=(const SdFile&) = delete;
  ~SdFile();

  /// Append a dataset; `data` must be element_count * element_size bytes.
  void write_dataset(const std::string& name, NumberType type,
                     const std::vector<std::uint64_t>& dims,
                     std::span<const std::byte> data);

  /// Read a full dataset into `out` (must be exactly data_bytes long).
  void read_dataset(const std::string& name, std::span<std::byte> out) const;

  /// Small named metadata blob.
  void write_attribute(const std::string& name,
                       std::span<const std::byte> value);
  std::vector<std::byte> read_attribute(const std::string& name) const;

  bool has_dataset(const std::string& name) const;
  const SdsInfo& info(const std::string& name) const;
  std::vector<std::string> dataset_names() const;  ///< in creation order

  void close();

 private:
  SdFile() = default;
  void scan();

  pfs::FileSystem* fs_ = nullptr;
  std::string path_;
  int fd_ = -1;
  bool writable_ = false;
  bool open_ = false;
  std::uint64_t append_pos_ = 0;
  std::vector<SdsInfo> datasets_;                    // creation order
  std::map<std::string, std::size_t> index_;         // name -> datasets_ idx
  std::map<std::string, std::vector<std::byte>> attributes_;
};

}  // namespace paramrio::hdf4
