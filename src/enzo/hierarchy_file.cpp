#include "enzo/hierarchy_file.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "base/byte_io.hpp"

namespace paramrio::enzo {

std::string render_hierarchy_text(const amr::Hierarchy& hierarchy,
                                  double time, std::uint64_t cycle) {
  std::ostringstream os;
  os.precision(17);
  os << "# paramrio hierarchy file\n";
  os << "Time = " << time << "\n";
  os << "Cycle = " << cycle << "\n";
  os << "NumberOfGrids = " << hierarchy.grid_count() << "\n\n";
  for (const amr::GridDescriptor& g : hierarchy.grids()) {
    os << "Grid = " << g.id << "\n";
    os << "  Level = " << g.level << "\n";
    os << "  ParentGrid = " << g.parent << "\n";
    os << "  Task = " << g.owner << "\n";
    os << "  GridDimension = " << g.dims[0] << " " << g.dims[1] << " "
       << g.dims[2] << "\n";
    os << "  GridLeftEdge = " << g.left_edge[0] << " " << g.left_edge[1]
       << " " << g.left_edge[2] << "\n";
    os << "  GridRightEdge = " << g.right_edge[0] << " " << g.right_edge[1]
       << " " << g.right_edge[2] << "\n";
    os << "\n";
  }
  return os.str();
}

namespace {

/// Read "Key = values..." lines; returns false at end of input.
bool next_assignment(std::istringstream& in, std::string& key,
                     std::string& values) {
  std::string line;
  while (std::getline(in, line)) {
    // Trim and skip comments/blank lines.
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw FormatError("hierarchy file: malformed line: " + line);
    }
    key = line.substr(first, eq - first);
    std::size_t kend = key.find_last_not_of(" \t");
    key = key.substr(0, kend + 1);
    values = line.substr(eq + 1);
    return true;
  }
  return false;
}

}  // namespace

amr::Hierarchy parse_hierarchy_text(const std::string& text, double* time,
                                    std::uint64_t* cycle) {
  std::istringstream in(text);
  std::string key, values;
  std::uint64_t expected_grids = 0;

  // Collected grids; first must be the root.
  std::vector<amr::GridDescriptor> grids;
  amr::GridDescriptor current;
  bool have_current = false;

  auto flush = [&] {
    if (have_current) grids.push_back(current);
    have_current = false;
  };

  while (next_assignment(in, key, values)) {
    std::istringstream vs(values);
    if (key == "Time") {
      double t;
      vs >> t;
      if (time != nullptr) *time = t;
    } else if (key == "Cycle") {
      std::uint64_t c;
      vs >> c;
      if (cycle != nullptr) *cycle = c;
    } else if (key == "NumberOfGrids") {
      vs >> expected_grids;
    } else if (key == "Grid") {
      flush();
      current = amr::GridDescriptor{};
      vs >> current.id;
      have_current = true;
    } else if (key == "Level") {
      vs >> current.level;
    } else if (key == "ParentGrid") {
      vs >> current.parent;
    } else if (key == "Task") {
      vs >> current.owner;
    } else if (key == "GridDimension") {
      vs >> current.dims[0] >> current.dims[1] >> current.dims[2];
    } else if (key == "GridLeftEdge") {
      vs >> current.left_edge[0] >> current.left_edge[1] >>
          current.left_edge[2];
    } else if (key == "GridRightEdge") {
      vs >> current.right_edge[0] >> current.right_edge[1] >>
          current.right_edge[2];
    } else {
      throw FormatError("hierarchy file: unknown key '" + key + "'");
    }
    if (vs.fail()) {
      throw FormatError("hierarchy file: bad value for '" + key + "'");
    }
  }
  flush();
  if (grids.empty() || grids.front().level != 0) {
    throw FormatError("hierarchy file: missing root grid");
  }
  if (expected_grids != 0 && grids.size() != expected_grids) {
    throw FormatError("hierarchy file: NumberOfGrids mismatch");
  }

  // Rebuild through the Hierarchy API, preserving ids (the same trick the
  // binary deserialiser uses: Hierarchy assigns ids monotonically, so we
  // replay them via an id-preserving add).
  ByteWriter w;  // reuse the binary round-trip to preserve exact ids
  w.u64(grids.size());
  w.u64(grids.back().id + 1);
  for (const auto& g : grids) {
    w.u64(g.id);
    w.u32(static_cast<std::uint32_t>(g.level));
    w.u64(g.parent);
    for (double e : g.left_edge) w.f64(e);
    for (double e : g.right_edge) w.f64(e);
    for (auto d : g.dims) w.u64(d);
    w.u32(static_cast<std::uint32_t>(g.owner));
  }
  auto blob = w.take();
  return amr::Hierarchy::deserialize(blob);
}

void write_hierarchy_file(pfs::FileSystem& fs, const std::string& path,
                          const amr::Hierarchy& hierarchy, double time,
                          std::uint64_t cycle) {
  std::string text = render_hierarchy_text(hierarchy, time, cycle);
  int fd = fs.open(path, pfs::OpenMode::kCreate);
  fs.write_at(fd, 0, std::as_bytes(std::span(text.data(), text.size())));
  fs.close(fd);
}

amr::Hierarchy read_hierarchy_file(pfs::FileSystem& fs,
                                   const std::string& path, double* time,
                                   std::uint64_t* cycle) {
  int fd = fs.open(path, pfs::OpenMode::kRead);
  std::string text(fs.size(fd), '\0');
  fs.read_at(fd, 0,
             std::as_writable_bytes(std::span(text.data(), text.size())));
  fs.close(fd);
  return parse_hierarchy_text(text, time, cycle);
}

}  // namespace paramrio::enzo
