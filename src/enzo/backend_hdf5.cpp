// Parallel HDF5 port of the optimised I/O design: identical access patterns
// to MpiIoBackend, but expressed as HDF5 dataset/hyperslab operations —
// thereby paying the library's metadata-synchronisation, allocation-
// alignment, hyperslab-packing and attribute-serialisation overheads that
// the paper measures in Figure 10.
#include <cstdio>
#include <optional>

#include "amr/particles_par.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "obs/profiler.hpp"

namespace paramrio::enzo {

namespace {

std::string subgrid_ds_name(std::uint64_t id, const std::string& field) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "grid%06llu/",
                static_cast<unsigned long long>(id));
  return buf + field;
}

hdf5::NumberType particle_number_type(std::size_t array_idx) {
  if (array_idx == 0) return hdf5::NumberType::kInt64;
  if (kParticleArrays[array_idx].elem_size == 4) {
    return hdf5::NumberType::kFloat32;
  }
  return hdf5::NumberType::kFloat64;
}

hdf5::Dataspace block_selection(const std::array<std::uint64_t, 3>& dims,
                                const amr::BlockExtent& e) {
  hdf5::Dataspace s({dims[0], dims[1], dims[2]});
  s.select_block({e.start[0], e.start[1], e.start[2]},
                 {e.count[0], e.count[1], e.count[2]});
  return s;
}

}  // namespace

void Hdf5ParallelBackend::write_dump(mpi::Comm& comm,
                                     const SimulationState& state,
                                     const std::string& base) {
  DumpMeta meta;
  meta.time = state.time;
  meta.cycle = state.cycle;
  {
    OBS_SPAN("hdf5_dump.meta", sim::TimeCategory::kComm);
    meta.n_particles = comm.allreduce_sum(state.my_particles.size());
  }
  meta.hierarchy = state.hierarchy;

  hdf5::FileConfig cfg = config_;
  cfg.comm = &comm;
  std::optional<hdf5::H5File> h;
  {
    OBS_SPAN("hdf5_dump.open", sim::TimeCategory::kIo);
    h.emplace(hdf5::H5File::create(fs_, base + ".h5", cfg));
    h->write_attribute("metadata", meta.serialize());
  }

  // ---- top-grid fields: collective creates + collective hyperslab writes
  {
    OBS_SPAN("hdf5_dump.field_write", sim::TimeCategory::kIo);
    const auto& dims = state.config.root_dims;
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      auto u = static_cast<std::size_t>(fi);
      hdf5::Dataset d =
          h->create_dataset("topgrid/" + amr::baryon_field_names()[u],
                            hdf5::NumberType::kFloat32,
                            hdf5::Dataspace({dims[0], dims[1], dims[2]}));
      d.write(block_selection(dims, state.my_block),
              state.my_fields[u].bytes(), /*collective=*/true);
      d.close();
    }
  }

  // ---- particles: parallel sort, then block-wise non-collective writes ---
  if (meta.n_particles > 0) {
    amr::ParticleSet sorted;
    std::uint64_t first = 0;
    {
      OBS_SPAN("hdf5_dump.particle_sort", sim::TimeCategory::kComm);
      sorted = amr::parallel_sort_by_id(comm, state.my_particles);
      std::uint64_t my_count = sorted.size();
      auto counts_raw =
          comm.allgatherv(std::as_bytes(std::span(&my_count, 1)));
      for (int r = 0; r < comm.rank(); ++r) {
        std::uint64_t c;
        std::memcpy(&c, counts_raw[static_cast<std::size_t>(r)].data(), 8);
        first += c;
      }
    }
    OBS_SPAN("hdf5_dump.particle_write", sim::TimeCategory::kIo);
    const std::uint64_t my_count = sorted.size();
    for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
      hdf5::Dataset d = h->create_dataset(
          std::string("topgrid/") + kParticleArrays[a].name,
          particle_number_type(a), hdf5::Dataspace({meta.n_particles}));
      if (my_count > 0) {
        std::vector<std::byte> buf(my_count * kParticleArrays[a].elem_size);
        particle_array_to_bytes(sorted, a, 0, my_count, buf.data());
        hdf5::Dataspace sel({meta.n_particles});
        sel.select_block({first}, {my_count});
        d.write(sel, buf, /*collective=*/false);
      }
      d.close();
    }
  }

  // ---- subgrids: collective creates (the HDF5 pain point — a
  //      synchronisation per dataset), independent owner writes ------------
  {
    OBS_SPAN("hdf5_dump.subgrid_write", sim::TimeCategory::kIo);
    for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
      if (g.level == 0) continue;
      const amr::Grid* mine = nullptr;
      for (const amr::Grid& sg : state.my_subgrids) {
        if (sg.desc.id == g.id) mine = &sg;
      }
      for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
        auto u = static_cast<std::size_t>(fi);
        hdf5::Dataset d = h->create_dataset(
            subgrid_ds_name(g.id, amr::baryon_field_names()[u]),
            hdf5::NumberType::kFloat32,
            hdf5::Dataspace({g.dims[0], g.dims[1], g.dims[2]}));
        if (mine != nullptr) {
          d.write_all(mine->fields[u].bytes(), /*collective=*/false);
        }
        d.close();
      }
    }
  }
  OBS_SPAN("hdf5_dump.close", sim::TimeCategory::kIo);
  h->close();
}

void Hdf5ParallelBackend::read_initial(mpi::Comm& comm,
                                       SimulationState& state,
                                       const std::string& base) {
  hdf5::FileConfig cfg = config_;
  cfg.comm = &comm;
  hdf5::H5File h = hdf5::H5File::open(fs_, base + ".h5", cfg);
  DumpMeta meta = DumpMeta::deserialize(h.read_attribute("metadata"));

  {
    OBS_SPAN("hdf5_dump.field_read", sim::TimeCategory::kIo);
    // Top-grid fields: collective hyperslab reads of my block.
    const auto& dims = state.config.root_dims;
    std::vector<amr::Array3f> fields;
    const amr::BlockExtent& e = state.my_block;
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      auto u = static_cast<std::size_t>(fi);
      hdf5::Dataset d =
          h.open_dataset("topgrid/" + amr::baryon_field_names()[u]);
      amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
      d.read(block_selection(dims, e), blk.mutable_bytes(),
             /*collective=*/true);
      d.close();
      fields.push_back(std::move(blk));
    }

    // Particles: block-wise slice reads, then redistribution by position.
    amr::ParticleSet particles;
    if (meta.n_particles > 0) {
      auto [first, count] =
          amr::block_range(meta.n_particles, comm.size(), comm.rank());
      amr::ParticleSet slice;
      slice.resize(count);
      for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
        hdf5::Dataset d =
            h.open_dataset(std::string("topgrid/") + kParticleArrays[a].name);
        if (count > 0) {
          std::vector<std::byte> buf(count * kParticleArrays[a].elem_size);
          hdf5::Dataspace sel({meta.n_particles});
          sel.select_block({first}, {count});
          d.read(sel, buf, /*collective=*/false);
          particle_array_from_bytes(slice, a, count, buf.data());
        }
        d.close();
      }
      particles = amr::redistribute_by_position(
          comm, slice, state.config.root_dims, state.proc_grid);
    }
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Initial subgrids: every grid partitioned with collective reads.
  OBS_SPAN("hdf5_dump.subgrid_read", sim::TimeCategory::kIo);
  std::vector<amr::Grid> my_pieces;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    // Small subgrids split over fewer ranks; the rest join the collective
    // transfer with an empty selection (H5Sselect_none).
    std::array<int, 3> pg = bounded_proc_grid(g, comm.size());
    const bool participate = comm.rank() < piece_count(pg);
    amr::Grid piece;
    if (participate) piece.desc = piece_descriptor(g, pg, comm.rank());
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      auto u = static_cast<std::size_t>(fi);
      hdf5::Dataset d =
          h.open_dataset(subgrid_ds_name(g.id, amr::baryon_field_names()[u]));
      if (participate) {
        amr::BlockExtent pe = amr::block_of(g.dims, pg, comm.rank());
        amr::Array3f blk(pe.count[0], pe.count[1], pe.count[2]);
        d.read(block_selection(g.dims, pe), blk.mutable_bytes(),
               /*collective=*/true);
        piece.fields.push_back(std::move(blk));
      } else {
        hdf5::Dataspace none({g.dims[0], g.dims[1], g.dims[2]});
        none.select_none();
        d.read(none, {}, /*collective=*/true);
      }
      d.close();
    }
    if (participate) my_pieces.push_back(std::move(piece));
  }
  h.close();
  install_partitioned_hierarchy(comm, state, meta, std::move(my_pieces));
}

void Hdf5ParallelBackend::read_restart(mpi::Comm& comm,
                                       SimulationState& state,
                                       const std::string& base) {
  hdf5::FileConfig cfg = config_;
  cfg.comm = &comm;
  hdf5::H5File h = hdf5::H5File::open(fs_, base + ".h5", cfg);
  DumpMeta meta = DumpMeta::deserialize(h.read_attribute("metadata"));

  {
    OBS_SPAN("hdf5_dump.field_read", sim::TimeCategory::kIo);
    const auto& dims = state.config.root_dims;
    std::vector<amr::Array3f> fields;
    const amr::BlockExtent& e = state.my_block;
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      auto u = static_cast<std::size_t>(fi);
      hdf5::Dataset d =
          h.open_dataset("topgrid/" + amr::baryon_field_names()[u]);
      amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
      d.read(block_selection(dims, e), blk.mutable_bytes(),
             /*collective=*/true);
      d.close();
      fields.push_back(std::move(blk));
    }

    amr::ParticleSet particles;
    if (meta.n_particles > 0) {
      auto [first, count] =
          amr::block_range(meta.n_particles, comm.size(), comm.rank());
      amr::ParticleSet slice;
      slice.resize(count);
      for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
        hdf5::Dataset d =
            h.open_dataset(std::string("topgrid/") + kParticleArrays[a].name);
        if (count > 0) {
          std::vector<std::byte> buf(count * kParticleArrays[a].elem_size);
          hdf5::Dataspace sel({meta.n_particles});
          sel.select_block({first}, {count});
          d.read(sel, buf, /*collective=*/false);
          particle_array_from_bytes(slice, a, count, buf.data());
        }
        d.close();
      }
      particles = amr::redistribute_by_position(
          comm, slice, state.config.root_dims, state.proc_grid);
    }
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Subgrids round-robin, whole-grid independent reads by their owner.
  OBS_SPAN("hdf5_dump.subgrid_read", sim::TimeCategory::kIo);
  state.hierarchy = meta.hierarchy;
  state.my_subgrids.clear();
  int i = 0;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    int owner = i % comm.size();
    state.hierarchy.grid_mut(g.id).owner = owner;
    if (owner == comm.rank()) {
      amr::Grid grid;
      grid.desc = g;
      grid.desc.owner = owner;
      grid.allocate_fields();
      for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
        auto u = static_cast<std::size_t>(fi);
        hdf5::Dataset d = h.open_dataset(
            subgrid_ds_name(g.id, amr::baryon_field_names()[u]));
        d.read_all(grid.fields[u].mutable_bytes(), /*collective=*/false);
        d.close();
      }
      state.my_subgrids.push_back(std::move(grid));
    }
    ++i;
  }
  h.close();
}

}  // namespace paramrio::enzo
