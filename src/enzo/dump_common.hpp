// Pieces shared by all three I/O backends: dump metadata, the particle
// dataset schema (ENZO's fixed series of 1-D arrays), and the grid-
// partitioning bookkeeping used by new-simulation reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amr/grid.hpp"
#include "amr/hierarchy.hpp"
#include "enzo/state.hpp"
#include "mpi/comm.hpp"

namespace paramrio::enzo {

/// Everything a dump stores besides bulk data.
struct DumpMeta {
  double time = 0.0;
  std::uint64_t cycle = 0;
  std::uint64_t n_particles = 0;
  amr::Hierarchy hierarchy;

  std::vector<std::byte> serialize() const;
  static DumpMeta deserialize(std::span<const std::byte> data);
};

/// The fixed order of particle datasets (the paper: "particle ID, particle
/// positions, particle velocities, particle mass, and other particle
/// attributes").
struct ParticleArraySpec {
  const char* name;
  std::uint64_t elem_size;
};
inline constexpr ParticleArraySpec kParticleArrays[] = {
    {"particle_id", 8},         {"particle_position_x", 8},
    {"particle_position_y", 8}, {"particle_position_z", 8},
    {"particle_velocity_x", 8}, {"particle_velocity_y", 8},
    {"particle_velocity_z", 8}, {"particle_mass", 8},
    {"particle_attr_0", 4},     {"particle_attr_1", 4},
};
inline constexpr std::size_t kNumParticleArrays = 10;

/// Copy particle array `idx` (elements [first, first+count)) into `dst`.
void particle_array_to_bytes(const amr::ParticleSet& p, std::size_t idx,
                             std::size_t first, std::size_t count,
                             std::byte* dst);

/// Fill particle array `idx` of `p` (which must already have size >= count)
/// from raw bytes.
void particle_array_from_bytes(amr::ParticleSet& p, std::size_t idx,
                               std::size_t count, const std::byte* src);

/// Bytes of all particle arrays for `n` particles.
std::uint64_t particle_payload_bytes(std::uint64_t n);

/// Processor grid used to partition grid `g` among up to `nprocs` ranks:
/// the global processor grid with each axis capped at the grid's cell count
/// (small subgrids are split over fewer ranks; the rest receive nothing).
std::array<int, 3> bounded_proc_grid(const amr::GridDescriptor& g,
                                     int nprocs);

inline int piece_count(const std::array<int, 3>& pg) {
  return pg[0] * pg[1] * pg[2];
}

/// Descriptor of rank `rank`'s (Block,Block,Block) piece of grid `g`
/// (ENZO's new-simulation partitioning of every initial grid); `proc_grid`
/// must come from bounded_proc_grid and rank < piece_count(proc_grid).
amr::GridDescriptor piece_descriptor(const amr::GridDescriptor& g,
                                     const std::array<int, 3>& proc_grid,
                                     int rank);

/// Rebuild `state`'s hierarchy after a new-simulation read: the root plus
/// one piece per (stored subgrid, rank); this rank's pieces carry the data
/// in `my_pieces` (same order as the stored subgrid ids).
void install_partitioned_hierarchy(mpi::Comm& comm, SimulationState& state,
                                   const DumpMeta& meta,
                                   std::vector<amr::Grid> my_pieces);

/// Reconstruct top-grid state after the per-rank block fields and the
/// position-partitioned particles are in hand.
void install_topgrid(SimulationState& state, const DumpMeta& meta,
                     std::vector<amr::Array3f> fields,
                     amr::ParticleSet particles);

}  // namespace paramrio::enzo
