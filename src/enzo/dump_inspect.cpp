#include "enzo/dump_inspect.hpp"

#include <sstream>

#include "hdf4/sd_file.hpp"
#include "hdf5/h5_file.hpp"
#include "pnetcdf/nc_file.hpp"

namespace paramrio::enzo {

std::string to_string(DumpFormat f) {
  switch (f) {
    case DumpFormat::kUnknown:
      return "unknown";
    case DumpFormat::kHdf4:
      return "hdf4 (one file per grid)";
    case DumpFormat::kMpiIo:
      return "mpi-io (single shared file)";
    case DumpFormat::kHdf5:
      return "hdf5 (single shared file)";
    case DumpFormat::kPnetcdf:
      return "pnetcdf (single shared file)";
  }
  throw LogicError("bad DumpFormat");
}

DumpFormat detect_dump_format(pfs::FileSystem& fs, const std::string& base) {
  if (fs.exists(base + ".enzo")) return DumpFormat::kMpiIo;
  if (fs.exists(base + ".h5")) return DumpFormat::kHdf5;
  if (fs.exists(base + ".nc")) return DumpFormat::kPnetcdf;
  if (fs.exists(base + ".topgrid")) return DumpFormat::kHdf4;
  return DumpFormat::kUnknown;
}

namespace {

std::string grid_file_name(const std::string& base, std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".grid%06llu",
                static_cast<unsigned long long>(id));
  return base + buf;
}

DumpSummary inspect_hdf4(pfs::FileSystem& fs, const std::string& base) {
  DumpSummary s;
  s.format = DumpFormat::kHdf4;
  hdf4::SdFile top = hdf4::SdFile::open(fs, base + ".topgrid");
  auto blob = top.read_attribute("metadata");
  s.meta = DumpMeta::deserialize(blob);
  s.datasets = top.dataset_names().size();
  s.files = 1;
  s.total_bytes = fs.store().size(base + ".topgrid");
  top.close();
  for (const auto& g : s.meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    std::string name = grid_file_name(base, g.id);
    if (!fs.exists(name)) {
      throw FormatError("dump " + base + ": missing subgrid file " + name);
    }
    hdf4::SdFile sub = hdf4::SdFile::open(fs, name);
    s.datasets += sub.dataset_names().size();
    s.files += 1;
    s.total_bytes += fs.store().size(name);
    sub.close();
  }
  return s;
}

DumpSummary inspect_mpiio(pfs::FileSystem& fs, const std::string& base) {
  DumpSummary s;
  s.format = DumpFormat::kMpiIo;
  const std::string path = base + ".enzo";
  int fd = fs.open(path, pfs::OpenMode::kRead);
  std::vector<std::byte> fixed(16);
  fs.read_at(fd, 0, fixed);
  ByteReader r(fixed);
  if (r.u64() != 0x4F5A4E45504D5244ULL) {
    fs.close(fd);
    throw FormatError(path + ": bad dump magic");
  }
  std::uint64_t meta_bytes = r.u64();
  std::vector<std::byte> blob(meta_bytes);
  fs.read_at(fd, 16, blob);
  fs.close(fd);
  s.meta = DumpMeta::deserialize(blob);
  s.files = 1;
  s.total_bytes = fs.store().size(path);
  // Dataset count: fields + particle arrays + per-subgrid fields.
  s.datasets = amr::kNumBaryonFields + kNumParticleArrays;
  for (const auto& g : s.meta.hierarchy.grids()) {
    if (g.level != 0) s.datasets += amr::kNumBaryonFields;
  }
  return s;
}

DumpSummary inspect_hdf5(pfs::FileSystem& fs, const std::string& base) {
  DumpSummary s;
  s.format = DumpFormat::kHdf5;
  hdf5::H5File h = hdf5::H5File::open(fs, base + ".h5");
  s.meta = DumpMeta::deserialize(h.read_attribute("metadata"));
  s.datasets = h.dataset_names().size();
  s.files = 1;
  s.total_bytes = fs.store().size(base + ".h5");
  h.close();
  return s;
}

DumpSummary inspect_pnetcdf(pfs::FileSystem& fs, const std::string& base) {
  DumpSummary s;
  s.format = DumpFormat::kPnetcdf;
  const std::string path = base + ".nc";
  pnetcdf::NcHeader h = pnetcdf::read_nc_header(fs, path);
  auto it = h.atts.find("metadata");
  if (it == h.atts.end()) {
    throw FormatError(path + ": missing metadata attribute");
  }
  s.meta = DumpMeta::deserialize(it->second);
  s.datasets = h.vars.size();
  s.files = 1;
  s.total_bytes = fs.store().size(path);
  return s;
}

}  // namespace

DumpSummary inspect_dump(pfs::FileSystem& fs, const std::string& base) {
  DumpFormat f = detect_dump_format(fs, base);
  DumpSummary s;
  switch (f) {
    case DumpFormat::kHdf4:
      s = inspect_hdf4(fs, base);
      break;
    case DumpFormat::kMpiIo:
      s = inspect_mpiio(fs, base);
      break;
    case DumpFormat::kHdf5:
      s = inspect_hdf5(fs, base);
      break;
    case DumpFormat::kPnetcdf:
      s = inspect_pnetcdf(fs, base);
      break;
    case DumpFormat::kUnknown:
      throw IoError("no dump found under base name '" + base + "'");
  }
  s.max_level = s.meta.hierarchy.max_level();
  s.refined_cells =
      s.meta.hierarchy.total_cells() - s.meta.hierarchy.root().cell_count();
  return s;
}

std::string format_summary(const DumpSummary& s, const std::string& base) {
  std::ostringstream os;
  const auto& root = s.meta.hierarchy.root();
  os << "dump '" << base << "': " << to_string(s.format) << "\n";
  os << "  cycle " << s.meta.cycle << ", t = " << s.meta.time << "\n";
  os << "  root grid " << root.dims[0] << "x" << root.dims[1] << "x"
     << root.dims[2] << ", " << s.meta.hierarchy.grid_count() << " grids, "
     << s.max_level + 1 << " levels, " << s.refined_cells
     << " refined cells\n";
  os << "  " << s.meta.n_particles << " particles\n";
  os << "  " << s.datasets << " datasets in " << s.files << " file(s), "
     << static_cast<double>(s.total_bytes) / 1.0e6 << " MB\n";
  return os.str();
}

}  // namespace paramrio::enzo
