// The ENZO-style cosmology simulation driver: initialise from the synthetic
// universe, evolve the grid hierarchy cycle by cycle (fields update,
// particles drift and redistribute, refinement regions track the moving
// clumps, subgrids are load-balanced), and hand the state to an I/O backend
// for checkpoint dumps and restarts.
#pragma once

#include "amr/universe.hpp"
#include "enzo/state.hpp"
#include "mpi/comm.hpp"

namespace paramrio::enzo {

class EnzoSimulation {
 public:
  EnzoSimulation(mpi::Comm& comm, SimulationConfig config);

  /// Build the t=0 state directly from the universe model: block-partitioned
  /// root fields, particles sampled per block, initial refinement, load
  /// balance.  (Used by the initial-conditions generator and by tests; a
  /// production run starts via IoBackend::read_initial instead.)
  void initialize_from_universe();

  /// One evolution cycle: advance time, recompute fields, drift and
  /// redistribute particles, rebuild refinement, rebalance subgrids.
  void evolve_cycle();

  SimulationState& state() { return state_; }
  const SimulationState& state() const { return state_; }
  mpi::Comm& comm() { return comm_; }
  const amr::Universe& universe() const { return universe_; }

  /// Recompute the refinement hierarchy from the current fields (exposed
  /// for tests).  Deterministic and identical on every rank.
  void rebuild_refinement();

 private:
  void fill_block_fields();
  void fill_owned_subgrids();
  void form_stars();
  void charge_compute(std::uint64_t cells);

  mpi::Comm& comm_;
  SimulationState state_;
  amr::Universe universe_;
};

}  // namespace paramrio::enzo
