// Per-rank simulation state: the rank's (Block,Block,Block) piece of the
// root grid, the particles whose positions fall inside it, the replicated
// hierarchy metadata, and the refined subgrids this rank owns.
#pragma once

#include <vector>

#include "amr/blocking.hpp"
#include "amr/grid.hpp"
#include "amr/hierarchy.hpp"
#include "enzo/config.hpp"

namespace paramrio::enzo {

struct SimulationState {
  SimulationConfig config;
  double time = 0.0;
  std::uint64_t cycle = 0;

  std::array<int, 3> proc_grid{1, 1, 1};
  amr::BlockExtent my_block;  ///< this rank's root-grid cells

  /// Root-grid baryon fields, local block only, fixed field order.
  std::vector<amr::Array3f> my_fields;

  /// Particles inside my_block (ENZO's irregular partition).
  amr::ParticleSet my_particles;

  /// Replicated metadata for every grid; owners in the descriptors.
  amr::Hierarchy hierarchy;

  /// Full data of the subgrids this rank owns (desc.owner == my rank).
  std::vector<amr::Grid> my_subgrids;

  void allocate_block_fields() {
    my_fields.assign(
        static_cast<std::size_t>(amr::kNumBaryonFields),
        amr::Array3f(my_block.count[0], my_block.count[1], my_block.count[2]));
  }

  /// Bytes of one full root-grid field dataset.
  std::uint64_t topgrid_field_bytes() const {
    return config.root_cells() * sizeof(float);
  }
};

}  // namespace paramrio::enzo
