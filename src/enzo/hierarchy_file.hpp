// ENZO-style human-readable hierarchy files.
//
// The real ENZO writes, next to every data dump, a plain-text ".hierarchy"
// file describing each grid (task, level, edges, dimensions) that tools and
// humans read without touching the bulk data.  The HDF4 backend writes one
// alongside its dumps for the same reason; this module renders and parses
// that format and is also handy for debugging any backend's hierarchy.
#pragma once

#include <string>

#include "amr/hierarchy.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::enzo {

/// Render the hierarchy in the text format (deterministic, id order).
std::string render_hierarchy_text(const amr::Hierarchy& hierarchy,
                                  double time, std::uint64_t cycle);

/// Parse a rendered hierarchy back.  Throws FormatError on malformed input.
/// `time`/`cycle` outputs are optional.
amr::Hierarchy parse_hierarchy_text(const std::string& text,
                                    double* time = nullptr,
                                    std::uint64_t* cycle = nullptr);

/// Write/read the text file on a simulated file system.
void write_hierarchy_file(pfs::FileSystem& fs, const std::string& path,
                          const amr::Hierarchy& hierarchy, double time,
                          std::uint64_t cycle);
amr::Hierarchy read_hierarchy_file(pfs::FileSystem& fs,
                                   const std::string& path,
                                   double* time = nullptr,
                                   std::uint64_t* cycle = nullptr);

}  // namespace paramrio::enzo
