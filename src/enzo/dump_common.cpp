#include "enzo/dump_common.hpp"

#include <algorithm>
#include <cstring>

#include "base/byte_io.hpp"

namespace paramrio::enzo {

std::vector<std::byte> DumpMeta::serialize() const {
  ByteWriter w;
  w.f64(time);
  w.u64(cycle);
  w.u64(n_particles);
  auto h = hierarchy.serialize();
  w.u64(h.size());
  w.bytes(h);
  return w.take();
}

DumpMeta DumpMeta::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  DumpMeta m;
  m.time = r.f64();
  m.cycle = r.u64();
  m.n_particles = r.u64();
  std::uint64_t hn = r.u64();
  m.hierarchy = amr::Hierarchy::deserialize(r.bytes(hn));
  return m;
}

void particle_array_to_bytes(const amr::ParticleSet& p, std::size_t idx,
                             std::size_t first, std::size_t count,
                             std::byte* dst) {
  PARAMRIO_REQUIRE(first + count <= p.size(),
                   "particle_array_to_bytes: range out of bounds");
  switch (idx) {
    case 0:
      std::memcpy(dst, p.id.data() + first, count * 8);
      return;
    case 1:
    case 2:
    case 3: {
      // position_x -> pos[2], position_y -> pos[1], position_z -> pos[0]
      std::size_t axis = 3 - idx;
      std::memcpy(dst, p.pos[axis].data() + first, count * 8);
      return;
    }
    case 4:
    case 5:
    case 6: {
      std::size_t axis = 6 - idx;
      std::memcpy(dst, p.vel[axis].data() + first, count * 8);
      return;
    }
    case 7:
      std::memcpy(dst, p.mass.data() + first, count * 8);
      return;
    case 8:
    case 9:
      std::memcpy(dst, p.attr[idx - 8].data() + first, count * 4);
      return;
    default:
      throw LogicError("bad particle array index");
  }
}

void particle_array_from_bytes(amr::ParticleSet& p, std::size_t idx,
                               std::size_t count, const std::byte* src) {
  PARAMRIO_REQUIRE(count <= p.size(),
                   "particle_array_from_bytes: set too small");
  switch (idx) {
    case 0:
      std::memcpy(p.id.data(), src, count * 8);
      return;
    case 1:
    case 2:
    case 3:
      std::memcpy(p.pos[3 - idx].data(), src, count * 8);
      return;
    case 4:
    case 5:
    case 6:
      std::memcpy(p.vel[6 - idx].data(), src, count * 8);
      return;
    case 7:
      std::memcpy(p.mass.data(), src, count * 8);
      return;
    case 8:
    case 9:
      std::memcpy(p.attr[idx - 8].data(), src, count * 4);
      return;
    default:
      throw LogicError("bad particle array index");
  }
}

std::uint64_t particle_payload_bytes(std::uint64_t n) {
  std::uint64_t total = 0;
  for (const auto& spec : kParticleArrays) total += spec.elem_size * n;
  return total;
}

std::array<int, 3> bounded_proc_grid(const amr::GridDescriptor& g,
                                     int nprocs) {
  std::array<int, 3> pg = amr::make_proc_grid(nprocs);
  for (int d = 0; d < 3; ++d) {
    auto u = static_cast<std::size_t>(d);
    pg[u] = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(pg[u]),
                                g.dims[u]));
  }
  return pg;
}

amr::GridDescriptor piece_descriptor(const amr::GridDescriptor& g,
                                     const std::array<int, 3>& proc_grid,
                                     int rank) {
  amr::BlockExtent e = amr::block_of(g.dims, proc_grid, rank);
  amr::GridDescriptor piece;
  piece.level = g.level;
  piece.parent = g.parent;
  piece.owner = rank;
  for (int d = 0; d < 3; ++d) {
    auto u = static_cast<std::size_t>(d);
    double w = g.cell_width(d);
    piece.left_edge[u] =
        g.left_edge[u] + static_cast<double>(e.start[u]) * w;
    piece.right_edge[u] =
        g.left_edge[u] + static_cast<double>(e.start[u] + e.count[u]) * w;
    piece.dims[u] = e.count[u];
  }
  return piece;
}

void install_partitioned_hierarchy(mpi::Comm& comm, SimulationState& state,
                                   const DumpMeta& meta,
                                   std::vector<amr::Grid> my_pieces) {
  state.hierarchy = amr::Hierarchy();
  state.hierarchy.set_root(state.config.root_dims);
  state.my_subgrids.clear();
  std::size_t piece_idx = 0;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    std::array<int, 3> pg = bounded_proc_grid(g, comm.size());
    for (int r = 0; r < piece_count(pg); ++r) {
      amr::GridDescriptor piece = piece_descriptor(g, pg, r);
      // Pieces of deep grids keep their level but hang off the root: the
      // partitioner flattens the tree exactly like ENZO's grid splitting.
      piece.level = 1;
      piece.parent = 0;
      std::uint64_t id = state.hierarchy.add_grid(piece);
      if (r == comm.rank()) {
        PARAMRIO_REQUIRE(piece_idx < my_pieces.size(),
                         "install_partitioned_hierarchy: missing piece data");
        my_pieces[piece_idx].desc = state.hierarchy.grid(id);
        state.my_subgrids.push_back(std::move(my_pieces[piece_idx]));
        ++piece_idx;
      }
    }
  }
  PARAMRIO_REQUIRE(piece_idx == my_pieces.size(),
                   "install_partitioned_hierarchy: extra piece data");
}

void install_topgrid(SimulationState& state, const DumpMeta& meta,
                     std::vector<amr::Array3f> fields,
                     amr::ParticleSet particles) {
  state.time = meta.time;
  state.cycle = meta.cycle;
  state.my_fields = std::move(fields);
  state.my_particles = std::move(particles);
}

}  // namespace paramrio::enzo
