#include "enzo/checkpoint.hpp"

#include <vector>

#include "base/byte_io.hpp"
#include "base/error.hpp"
#include "mpi/comm.hpp"

namespace paramrio::enzo {

namespace {

// "CKPT-OK!" — eight bytes naming the marker format.
constexpr std::uint64_t kMarkerMagic = 0x434b50542d4f4b21ULL;

}  // namespace

void CheckpointSeries::dump(mpi::Comm& comm, const SimulationState& state,
                            std::uint64_t gen) {
  // At most one async drain in flight: settle the previous generation's
  // before this dump's writes land on the staging tier.
  if (staged_ != nullptr && drain_policy_ == stage::DrainPolicy::kAsync) {
    staged_->drain_settle();
    comm.barrier();
  }
  backend_.write_dump(comm, state, gen_base(gen));
  // Every rank's data must be in the store before the marker can claim the
  // generation is complete.
  comm.barrier();
  if (staged_ != nullptr && drain_policy_ == stage::DrainPolicy::kSync) {
    // Sync: the marker additionally certifies destination durability, so
    // every rank drains its staged bytes before rank 0 publishes.
    staged_->drain_mine(stage::DrainPolicy::kSync);
    comm.barrier();
  }
  if (comm.rank() == 0) {
    ByteWriter w;
    w.u64(kMarkerMagic);
    w.u64(gen);
    auto bytes = w.take();
    int fd = fs_.open(marker_path(gen), pfs::OpenMode::kCreate);
    std::uint64_t done = 0;
    while (done < bytes.size()) {
      done += fs_.write_at(
          fd, done, std::span<const std::byte>(bytes).subspan(done));
    }
    fs_.close(fd);
  }
  // No rank may report the dump done before the marker is published.
  comm.barrier();
  if (staged_ != nullptr && drain_policy_ == stage::DrainPolicy::kAsync) {
    // Async: kick the drain off on the shadow clock after the generation is
    // committed; the work overlaps whatever compute follows.
    staged_->drain_mine(stage::DrainPolicy::kAsync);
  }
}

bool CheckpointSeries::committed(std::uint64_t gen) const {
  const auto& store = fs_.store();
  const std::string marker = marker_path(gen);
  if (!store.exists(marker)) return false;
  std::vector<std::byte> raw(store.size(marker));
  if (raw.size() != 16) return false;
  store.read_at(marker, 0, raw);
  ByteReader r(raw);
  return r.u64() == kMarkerMagic && r.u64() == gen;
}

bool CheckpointSeries::torn(std::uint64_t gen) const {
  if (committed(gen)) return false;
  const std::string marker = marker_path(gen);
  const std::string prefix = gen_base(gen) + ".";
  for (const auto& name : fs_.store().list()) {
    if (name == marker) continue;
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

std::optional<std::uint64_t> CheckpointSeries::latest_committed(
    std::uint64_t max_gen) const {
  for (std::uint64_t gen = max_gen;; --gen) {
    if (committed(gen)) return gen;
    if (gen == 0) return std::nullopt;
  }
}

std::uint64_t CheckpointSeries::restore_latest(mpi::Comm& comm,
                                               SimulationState& state,
                                               std::uint64_t max_gen) {
  auto gen = latest_committed(max_gen);
  if (!gen) {
    throw IoError("CheckpointSeries: no committed generation <= " +
                  std::to_string(max_gen) + " under " + base_);
  }
  backend_.read_restart(comm, state, gen_base(*gen));
  return *gen;
}

}  // namespace paramrio::enzo
