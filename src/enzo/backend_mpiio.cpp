// The paper's optimised I/O port: all grids in one shared file, collective
// two-phase subarray I/O for the regularly partitioned baryon fields,
// parallel sample sort + block-wise non-collective I/O for the irregularly
// partitioned particle arrays.
#include <map>
#include <optional>
#include <type_traits>

#include "amr/particles_par.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "enzo/mpiio_layout.hpp"
#include "obs/profiler.hpp"

namespace paramrio::enzo {

namespace {

constexpr std::uint64_t kDumpMagic = kMpiioDumpMagic;

using SharedLayout = MpiioSharedLayout;

SharedLayout build_layout(const DumpMeta& meta,
                          const std::array<std::uint64_t, 3>& root_dims) {
  return build_mpiio_layout(meta, root_dims);
}

mpi::Datatype block_subarray(const std::array<std::uint64_t, 3>& dims,
                             const amr::BlockExtent& e) {
  return mpi::Datatype::subarray(
      {dims[0], dims[1], dims[2]}, {e.count[0], e.count[1], e.count[2]},
      {e.start[0], e.start[1], e.start[2]}, sizeof(float));
}

DumpMeta read_header(mpi::io::File& f) {
  std::vector<std::byte> fixed(16);
  f.set_view(0);
  f.read_at(0, fixed);
  ByteReader r(fixed);
  if (r.u64() != kDumpMagic) {
    throw FormatError("not a paramrio MPI-IO dump: " + f.path());
  }
  std::uint64_t meta_bytes = r.u64();
  std::vector<std::byte> blob(meta_bytes);
  f.read_at(16, blob);
  return DumpMeta::deserialize(blob);
}

/// Collective read of this rank's (Block,Block,Block) pieces of the
/// top-grid fields.
std::vector<amr::Array3f> read_topgrid_collective(mpi::io::File& f,
                                                  const SimulationState& state,
                                                  const SharedLayout& layout) {
  std::vector<amr::Array3f> fields;
  const amr::BlockExtent& e = state.my_block;
  for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
    amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
    f.set_view(layout.field_off(fi),
               block_subarray(state.config.root_dims, e));
    f.read_at_all(0, blk.mutable_bytes());
    fields.push_back(std::move(blk));
  }
  return fields;
}

/// Issue prefetches for this rank's block-wise slice of every particle
/// array (restores the identity view afterwards).  No-op unless the file's
/// hints enable overlap.
void prefetch_particle_slices(mpi::io::File& f, mpi::Comm& comm,
                              const DumpMeta& meta,
                              const SharedLayout& layout) {
  auto [first, count] =
      amr::block_range(meta.n_particles, comm.size(), comm.rank());
  for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
    f.set_view(layout.particle_off[a]);
    f.prefetch(first * kParticleArrays[a].elem_size,
               count * kParticleArrays[a].elem_size);
  }
  f.set_view(0);
}

/// Block-wise particle read: rank r reads slice r of every array, then the
/// particles are redistributed to their position owners.  `pre_redistribute`
/// (optional) runs after the slices are read but before the redistribution
/// exchange — the read-prefetch hook, so the next reader's I/O can run in
/// flight under the redistribution comm.
template <typename PreRedistribute = std::nullptr_t>
amr::ParticleSet read_particles_blockwise(
    mpi::io::File& f, mpi::Comm& comm, const SimulationState& state,
    const DumpMeta& meta, const SharedLayout& layout,
    PreRedistribute pre_redistribute = nullptr) {
  auto [first, count] =
      amr::block_range(meta.n_particles, comm.size(), comm.rank());
  amr::ParticleSet slice;
  slice.resize(count);
  for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
    std::vector<std::byte> buf(count * kParticleArrays[a].elem_size);
    f.set_view(layout.particle_off[a]);
    f.read_at(first * kParticleArrays[a].elem_size, buf);
    particle_array_from_bytes(slice, a, count, buf.data());
  }
  if constexpr (!std::is_same_v<PreRedistribute, std::nullptr_t>) {
    pre_redistribute();
  }
  return amr::redistribute_by_position(comm, slice, state.config.root_dims,
                                       state.proc_grid);
}

}  // namespace

void MpiIoBackend::write_dump(mpi::Comm& comm, const SimulationState& state,
                              const std::string& base) {
  DumpMeta meta;
  meta.time = state.time;
  meta.cycle = state.cycle;
  {
    OBS_SPAN("mpiio_dump.meta", sim::TimeCategory::kComm);
    meta.n_particles = comm.allreduce_sum(state.my_particles.size());
  }
  meta.hierarchy = state.hierarchy;
  SharedLayout layout = build_layout(meta, state.config.root_dims);

  std::optional<mpi::io::File> f;
  {
    OBS_SPAN("mpiio_dump.open", sim::TimeCategory::kIo);
    f.emplace(comm, fs_, base + ".enzo", pfs::OpenMode::kCreate, hints_);
  }

  if (comm.rank() == 0) {
    OBS_SPAN("mpiio_dump.header", sim::TimeCategory::kIo);
    ByteWriter w;
    w.u64(kDumpMagic);
    auto blob = meta.serialize();
    w.u64(blob.size());
    w.bytes(blob);
    auto hdr = w.take();
    f->set_view(0);
    f->write_at(0, hdr);
  }

  // ---- top-grid baryon fields: collective two-phase subarray writes ------
  // With overlap on, the last field goes through the split-collective
  // interface: its begin leaves the final window's write in flight and the
  // particle sort (pure comm) runs before the end call collects it.
  const bool overlap = hints_.overlap;
  {
    OBS_SPAN("mpiio_dump.field_write", sim::TimeCategory::kIo);
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      f->set_view(layout.field_off(fi),
                  block_subarray(state.config.root_dims, state.my_block));
      const auto buf = state.my_fields[static_cast<std::size_t>(fi)].bytes();
      if (overlap && fi + 1 == amr::kNumBaryonFields) {
        f->write_at_all_begin(0, buf);
      } else {
        f->write_at_all(0, buf);
      }
    }
  }

  // ---- particles: parallel sort by ID, then block-wise contiguous
  //      independent writes ("non-collective because the block-wise pattern
  //      always results in contiguous access in each processor") -----------
  amr::ParticleSet sorted;
  std::uint64_t first = 0;
  {
    OBS_SPAN("mpiio_dump.particle_sort", sim::TimeCategory::kComm);
    sorted = amr::parallel_sort_by_id(comm, state.my_particles);
    std::uint64_t my_count = sorted.size();
    auto counts_raw =
        comm.allgatherv(std::as_bytes(std::span(&my_count, 1)));
    for (int r = 0; r < comm.rank(); ++r) {
      std::uint64_t c;
      std::memcpy(&c, counts_raw[static_cast<std::size_t>(r)].data(), 8);
      first += c;
    }
  }
  if (overlap) f->write_at_all_end();
  {
    OBS_SPAN("mpiio_dump.particle_write", sim::TimeCategory::kIo);
    const std::uint64_t my_count = sorted.size();
    // Nonblocking per-array writes: packing array a+1 runs while array a's
    // write is in flight.  The buffers must outlive their requests.
    std::vector<std::vector<std::byte>> bufs(kNumParticleArrays);
    std::vector<mpi::io::Request> reqs;
    reqs.reserve(kNumParticleArrays);
    for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
      bufs[a].resize(my_count * kParticleArrays[a].elem_size);
      particle_array_to_bytes(sorted, a, 0, my_count, bufs[a].data());
      f->set_view(layout.particle_off[a]);
      reqs.push_back(f->iwrite_at(first * kParticleArrays[a].elem_size,
                                  bufs[a]));
    }
    f->wait_all(reqs);
  }

  // ---- subgrids: every owner writes its grids into the shared file -------
  {
    OBS_SPAN("mpiio_dump.subgrid_write", sim::TimeCategory::kIo);
    f->set_view(0);
    // Nonblocking per-field writes, waited per grid: field fi+1's issue
    // (gather/pack side) overlaps field fi's flush — level L+1 packs while
    // level L is in flight.
    std::vector<mpi::io::Request> reqs;
    for (const amr::Grid& g : state.my_subgrids) {
      std::uint64_t off = layout.subgrid_off.at(g.desc.id);
      std::uint64_t per_field = g.desc.cell_count() * sizeof(float);
      reqs.clear();
      for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
        reqs.push_back(
            f->iwrite_at(off + static_cast<std::uint64_t>(fi) * per_field,
                         g.fields[static_cast<std::size_t>(fi)].bytes()));
      }
      f->wait_all(reqs);
    }
  }
  OBS_SPAN("mpiio_dump.close", sim::TimeCategory::kIo);
  f->close();
}

void MpiIoBackend::read_initial(mpi::Comm& comm, SimulationState& state,
                                const std::string& base) {
  mpi::io::File f(comm, fs_, base + ".enzo", pfs::OpenMode::kRead, hints_);
  DumpMeta meta = read_header(f);
  SharedLayout layout = build_layout(meta, state.config.root_dims);

  {
    OBS_SPAN("mpiio_dump.field_read", sim::TimeCategory::kIo);
    auto fields = read_topgrid_collective(f, state, layout);
    auto particles = read_particles_blockwise(f, comm, state, meta, layout);
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Initial subgrids are read "in the same way as the top-grid": every grid
  // partitioned across all ranks with collective subarray reads.
  OBS_SPAN("mpiio_dump.subgrid_read", sim::TimeCategory::kIo);
  std::vector<amr::Grid> my_pieces;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    std::uint64_t off = layout.subgrid_off.at(g.id);
    std::uint64_t per_field = g.cell_count() * sizeof(float);
    // Small subgrids split across fewer ranks; the rest still join the
    // collective with a zero-size request.
    std::array<int, 3> pg = bounded_proc_grid(g, comm.size());
    const bool participate = comm.rank() < piece_count(pg);
    amr::Grid piece;
    if (participate) piece.desc = piece_descriptor(g, pg, comm.rank());
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      if (participate) {
        amr::BlockExtent e = amr::block_of(g.dims, pg, comm.rank());
        amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
        f.set_view(off + static_cast<std::uint64_t>(fi) * per_field,
                   block_subarray(g.dims, e));
        f.read_at_all(0, blk.mutable_bytes());
        piece.fields.push_back(std::move(blk));
      } else {
        f.set_view(off + static_cast<std::uint64_t>(fi) * per_field);
        f.read_at_all(0, {});
      }
    }
    if (participate) my_pieces.push_back(std::move(piece));
  }
  f.close();
  install_partitioned_hierarchy(comm, state, meta, std::move(my_pieces));
}

void MpiIoBackend::read_restart(mpi::Comm& comm, SimulationState& state,
                                const std::string& base) {
  mpi::io::File f(comm, fs_, base + ".enzo", pfs::OpenMode::kRead, hints_);
  DumpMeta meta = read_header(f);
  SharedLayout layout = build_layout(meta, state.config.root_dims);

  // The round-robin subgrid assignment is computable from the metadata
  // alone; knowing my grids up front lets the prefetcher run ahead.
  std::vector<const amr::GridDescriptor*> my_grids;
  {
    int i = 0;
    for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
      if (g.level == 0) continue;
      if (i % comm.size() == comm.rank()) my_grids.push_back(&g);
      ++i;
    }
  }
  auto prefetch_subgrid = [&](std::size_t idx) {
    if (idx >= my_grids.size()) return;
    const amr::GridDescriptor& g = *my_grids[idx];
    std::uint64_t off = layout.subgrid_off.at(g.id);
    std::uint64_t per_field = g.cell_count() * sizeof(float);
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      f.prefetch(off + static_cast<std::uint64_t>(fi) * per_field,
                 per_field);
    }
  };

  {
    OBS_SPAN("mpiio_dump.field_read", sim::TimeCategory::kIo);
    // Read-ahead of this rank's particle slices: the prefetch I/O runs in
    // flight under the collective field reads' exchange phases.
    if (hints_.overlap) prefetch_particle_slices(f, comm, meta, layout);
    auto fields = read_topgrid_collective(f, state, layout);
    // The first owned subgrid's fields prefetch ahead of the particle
    // redistribution, so that exchange hides their read.
    auto particles = read_particles_blockwise(
        f, comm, state, meta, layout, [&] {
          if (hints_.overlap) {
            f.set_view(0);
            prefetch_subgrid(0);
          }
        });
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Subgrids round-robin, whole-grid contiguous independent reads, each
  // grid's slice prefetched while the previous one is consumed.
  OBS_SPAN("mpiio_dump.subgrid_read", sim::TimeCategory::kIo);
  state.hierarchy = meta.hierarchy;
  state.my_subgrids.clear();
  f.set_view(0);
  {
    int i = 0;
    for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
      if (g.level == 0) continue;
      state.hierarchy.grid_mut(g.id).owner = i % comm.size();
      ++i;
    }
  }
  for (std::size_t gi = 0; gi < my_grids.size(); ++gi) {
    const amr::GridDescriptor& g = *my_grids[gi];
    if (hints_.overlap) prefetch_subgrid(gi + 1);
    amr::Grid grid;
    grid.desc = g;
    grid.desc.owner = comm.rank();
    grid.allocate_fields();
    std::uint64_t off = layout.subgrid_off.at(g.id);
    std::uint64_t per_field = g.cell_count() * sizeof(float);
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      f.read_at(off + static_cast<std::uint64_t>(fi) * per_field,
                grid.fields[static_cast<std::size_t>(fi)].mutable_bytes());
    }
    state.my_subgrids.push_back(std::move(grid));
  }
  f.close();
}

}  // namespace paramrio::enzo
