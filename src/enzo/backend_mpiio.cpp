// The paper's optimised I/O port: all grids in one shared file, collective
// two-phase subarray I/O for the regularly partitioned baryon fields,
// parallel sample sort + block-wise non-collective I/O for the irregularly
// partitioned particle arrays.
#include <map>
#include <optional>

#include "amr/particles_par.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "obs/profiler.hpp"

namespace paramrio::enzo {

namespace {

constexpr std::uint64_t kDumpMagic = 0x4F5A4E45504D5244ULL;  // "DRMPENZO"

/// Byte layout of the shared dump file, computable identically on every
/// rank from the metadata alone.
struct SharedLayout {
  std::uint64_t meta_bytes = 0;
  std::uint64_t topgrid_fields = 0;  ///< start of the 8 field datasets
  std::uint64_t field_bytes = 0;     ///< bytes per top-grid field
  std::array<std::uint64_t, kNumParticleArrays> particle_off{};
  std::map<std::uint64_t, std::uint64_t> subgrid_off;  ///< grid id -> start
  std::uint64_t total = 0;

  std::uint64_t field_off(int f) const {
    return topgrid_fields + static_cast<std::uint64_t>(f) * field_bytes;
  }
};

SharedLayout build_layout(const DumpMeta& meta,
                          const std::array<std::uint64_t, 3>& root_dims) {
  SharedLayout l;
  l.meta_bytes = meta.serialize().size();
  l.topgrid_fields = 16 + l.meta_bytes;
  l.field_bytes = root_dims[0] * root_dims[1] * root_dims[2] * sizeof(float);
  std::uint64_t pos =
      l.topgrid_fields +
      static_cast<std::uint64_t>(amr::kNumBaryonFields) * l.field_bytes;
  for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
    l.particle_off[a] = pos;
    pos += kParticleArrays[a].elem_size * meta.n_particles;
  }
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    l.subgrid_off[g.id] = pos;
    pos += static_cast<std::uint64_t>(amr::kNumBaryonFields) *
           g.cell_count() * sizeof(float);
  }
  l.total = pos;
  return l;
}

mpi::Datatype block_subarray(const std::array<std::uint64_t, 3>& dims,
                             const amr::BlockExtent& e) {
  return mpi::Datatype::subarray(
      {dims[0], dims[1], dims[2]}, {e.count[0], e.count[1], e.count[2]},
      {e.start[0], e.start[1], e.start[2]}, sizeof(float));
}

DumpMeta read_header(mpi::io::File& f) {
  std::vector<std::byte> fixed(16);
  f.set_view(0);
  f.read_at(0, fixed);
  ByteReader r(fixed);
  if (r.u64() != kDumpMagic) {
    throw FormatError("not a paramrio MPI-IO dump: " + f.path());
  }
  std::uint64_t meta_bytes = r.u64();
  std::vector<std::byte> blob(meta_bytes);
  f.read_at(16, blob);
  return DumpMeta::deserialize(blob);
}

/// Collective read of this rank's (Block,Block,Block) pieces of the
/// top-grid fields.
std::vector<amr::Array3f> read_topgrid_collective(mpi::io::File& f,
                                                  const SimulationState& state,
                                                  const SharedLayout& layout) {
  std::vector<amr::Array3f> fields;
  const amr::BlockExtent& e = state.my_block;
  for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
    amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
    f.set_view(layout.field_off(fi),
               block_subarray(state.config.root_dims, e));
    f.read_at_all(0, blk.mutable_bytes());
    fields.push_back(std::move(blk));
  }
  return fields;
}

/// Block-wise particle read: rank r reads slice r of every array, then the
/// particles are redistributed to their position owners.
amr::ParticleSet read_particles_blockwise(mpi::io::File& f, mpi::Comm& comm,
                                          const SimulationState& state,
                                          const DumpMeta& meta,
                                          const SharedLayout& layout) {
  auto [first, count] =
      amr::block_range(meta.n_particles, comm.size(), comm.rank());
  amr::ParticleSet slice;
  slice.resize(count);
  for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
    std::vector<std::byte> buf(count * kParticleArrays[a].elem_size);
    f.set_view(layout.particle_off[a]);
    f.read_at(first * kParticleArrays[a].elem_size, buf);
    particle_array_from_bytes(slice, a, count, buf.data());
  }
  return amr::redistribute_by_position(comm, slice, state.config.root_dims,
                                       state.proc_grid);
}

}  // namespace

void MpiIoBackend::write_dump(mpi::Comm& comm, const SimulationState& state,
                              const std::string& base) {
  DumpMeta meta;
  meta.time = state.time;
  meta.cycle = state.cycle;
  {
    OBS_SPAN("mpiio_dump.meta", sim::TimeCategory::kComm);
    meta.n_particles = comm.allreduce_sum(state.my_particles.size());
  }
  meta.hierarchy = state.hierarchy;
  SharedLayout layout = build_layout(meta, state.config.root_dims);

  std::optional<mpi::io::File> f;
  {
    OBS_SPAN("mpiio_dump.open", sim::TimeCategory::kIo);
    f.emplace(comm, fs_, base + ".enzo", pfs::OpenMode::kCreate, hints_);
  }

  if (comm.rank() == 0) {
    OBS_SPAN("mpiio_dump.header", sim::TimeCategory::kIo);
    ByteWriter w;
    w.u64(kDumpMagic);
    auto blob = meta.serialize();
    w.u64(blob.size());
    w.bytes(blob);
    auto hdr = w.take();
    f->set_view(0);
    f->write_at(0, hdr);
  }

  // ---- top-grid baryon fields: collective two-phase subarray writes ------
  {
    OBS_SPAN("mpiio_dump.field_write", sim::TimeCategory::kIo);
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      f->set_view(layout.field_off(fi),
                  block_subarray(state.config.root_dims, state.my_block));
      f->write_at_all(0,
                      state.my_fields[static_cast<std::size_t>(fi)].bytes());
    }
  }

  // ---- particles: parallel sort by ID, then block-wise contiguous
  //      independent writes ("non-collective because the block-wise pattern
  //      always results in contiguous access in each processor") -----------
  amr::ParticleSet sorted;
  std::uint64_t first = 0;
  {
    OBS_SPAN("mpiio_dump.particle_sort", sim::TimeCategory::kComm);
    sorted = amr::parallel_sort_by_id(comm, state.my_particles);
    std::uint64_t my_count = sorted.size();
    auto counts_raw =
        comm.allgatherv(std::as_bytes(std::span(&my_count, 1)));
    for (int r = 0; r < comm.rank(); ++r) {
      std::uint64_t c;
      std::memcpy(&c, counts_raw[static_cast<std::size_t>(r)].data(), 8);
      first += c;
    }
  }
  {
    OBS_SPAN("mpiio_dump.particle_write", sim::TimeCategory::kIo);
    const std::uint64_t my_count = sorted.size();
    for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
      std::vector<std::byte> buf(my_count * kParticleArrays[a].elem_size);
      particle_array_to_bytes(sorted, a, 0, my_count, buf.data());
      f->set_view(layout.particle_off[a]);
      f->write_at(first * kParticleArrays[a].elem_size, buf);
    }
  }

  // ---- subgrids: every owner writes its grids into the shared file -------
  {
    OBS_SPAN("mpiio_dump.subgrid_write", sim::TimeCategory::kIo);
    f->set_view(0);
    for (const amr::Grid& g : state.my_subgrids) {
      std::uint64_t off = layout.subgrid_off.at(g.desc.id);
      std::uint64_t per_field = g.desc.cell_count() * sizeof(float);
      for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
        f->write_at(off + static_cast<std::uint64_t>(fi) * per_field,
                    g.fields[static_cast<std::size_t>(fi)].bytes());
      }
    }
  }
  OBS_SPAN("mpiio_dump.close", sim::TimeCategory::kIo);
  f->close();
}

void MpiIoBackend::read_initial(mpi::Comm& comm, SimulationState& state,
                                const std::string& base) {
  mpi::io::File f(comm, fs_, base + ".enzo", pfs::OpenMode::kRead, hints_);
  DumpMeta meta = read_header(f);
  SharedLayout layout = build_layout(meta, state.config.root_dims);

  {
    OBS_SPAN("mpiio_dump.field_read", sim::TimeCategory::kIo);
    auto fields = read_topgrid_collective(f, state, layout);
    auto particles = read_particles_blockwise(f, comm, state, meta, layout);
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Initial subgrids are read "in the same way as the top-grid": every grid
  // partitioned across all ranks with collective subarray reads.
  OBS_SPAN("mpiio_dump.subgrid_read", sim::TimeCategory::kIo);
  std::vector<amr::Grid> my_pieces;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    std::uint64_t off = layout.subgrid_off.at(g.id);
    std::uint64_t per_field = g.cell_count() * sizeof(float);
    // Small subgrids split across fewer ranks; the rest still join the
    // collective with a zero-size request.
    std::array<int, 3> pg = bounded_proc_grid(g, comm.size());
    const bool participate = comm.rank() < piece_count(pg);
    amr::Grid piece;
    if (participate) piece.desc = piece_descriptor(g, pg, comm.rank());
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      if (participate) {
        amr::BlockExtent e = amr::block_of(g.dims, pg, comm.rank());
        amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
        f.set_view(off + static_cast<std::uint64_t>(fi) * per_field,
                   block_subarray(g.dims, e));
        f.read_at_all(0, blk.mutable_bytes());
        piece.fields.push_back(std::move(blk));
      } else {
        f.set_view(off + static_cast<std::uint64_t>(fi) * per_field);
        f.read_at_all(0, {});
      }
    }
    if (participate) my_pieces.push_back(std::move(piece));
  }
  f.close();
  install_partitioned_hierarchy(comm, state, meta, std::move(my_pieces));
}

void MpiIoBackend::read_restart(mpi::Comm& comm, SimulationState& state,
                                const std::string& base) {
  mpi::io::File f(comm, fs_, base + ".enzo", pfs::OpenMode::kRead, hints_);
  DumpMeta meta = read_header(f);
  SharedLayout layout = build_layout(meta, state.config.root_dims);

  {
    OBS_SPAN("mpiio_dump.field_read", sim::TimeCategory::kIo);
    auto fields = read_topgrid_collective(f, state, layout);
    auto particles = read_particles_blockwise(f, comm, state, meta, layout);
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Subgrids round-robin, whole-grid contiguous independent reads.
  OBS_SPAN("mpiio_dump.subgrid_read", sim::TimeCategory::kIo);
  state.hierarchy = meta.hierarchy;
  state.my_subgrids.clear();
  f.set_view(0);
  int i = 0;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    int owner = i % comm.size();
    state.hierarchy.grid_mut(g.id).owner = owner;
    if (owner == comm.rank()) {
      amr::Grid grid;
      grid.desc = g;
      grid.desc.owner = owner;
      grid.allocate_fields();
      std::uint64_t off = layout.subgrid_off.at(g.id);
      std::uint64_t per_field = g.cell_count() * sizeof(float);
      for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
        f.read_at(off + static_cast<std::uint64_t>(fi) * per_field,
                  grid.fields[static_cast<std::size_t>(fi)].mutable_bytes());
      }
      state.my_subgrids.push_back(std::move(grid));
    }
    ++i;
  }
  f.close();
}

}  // namespace paramrio::enzo
