// Crash-consistent checkpoint series on top of any IoBackend.
//
// A dump that dies halfway — a crashed I/O node, a killed job — must never
// masquerade as a restartable checkpoint.  ENZO's own defence was the dump
// *series*: you restart from the last dump that finished.  CheckpointSeries
// makes that contract explicit and checkable:
//
//   * generation `g` writes its files under "<base>.g<g>" (every backend
//     already namespaces its files under the dump base), so a torn dump can
//     never overwrite the previous good one;
//   * after the backend's collective write_dump returns *and* all ranks have
//     synchronised, rank 0 writes a tiny commit marker "<base>.g<g>.ok"
//     naming the generation and backend — the atomic publication point;
//   * a dump with data files but no valid marker is *torn*: restore_latest
//     skips it and falls back to the newest committed generation.
//
// The marker is written through the (timed, fault-injected, observed) file
// system, so a crash while committing simply leaves the dump uncommitted —
// there is no window in which a half-written dump looks valid.  Torn dumps
// are additionally detectable by the check analyzer (their write trace shows
// holes / missing files) and by dump_inspect's format validation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "enzo/io_backend.hpp"
#include "pfs/filesystem.hpp"
#include "stage/staged_fs.hpp"

namespace paramrio::enzo {

class CheckpointSeries {
 public:
  /// Dumps are written through `backend` onto `fs`; generation files live
  /// under "<base>.g<gen>".
  CheckpointSeries(IoBackend& backend, pfs::FileSystem& fs, std::string base)
      : backend_(backend), fs_(fs), base_(std::move(base)) {}

  std::string gen_base(std::uint64_t gen) const {
    return base_ + ".g" + std::to_string(gen);
  }
  std::string marker_path(std::uint64_t gen) const {
    return gen_base(gen) + ".ok";
  }

  /// Route dumps through a burst-buffer staging tier (`staged` must be the
  /// same object the series writes through).  The drain-policy hint shapes
  /// when staged bytes reach the destination relative to the commit marker:
  ///   kSync  — drain before the marker; the marker certifies the data files
  ///            are destination-durable (the marker itself stays staged and
  ///            is recovered by log replay).
  ///   kAsync — drain after the final barrier on the shadow clock; the next
  ///            dump settles the previous drain before writing.
  ///   kLazy  — never drained by the series; recovery replays the staging
  ///            tier.  Either way a committed generation is always
  ///            recoverable: the staging log plus drained bytes reconstruct
  ///            every committed file.
  void set_staging(stage::StagedFs& staged, stage::DrainPolicy policy) {
    staged_ = &staged;
    drain_policy_ = policy;
  }

  /// Collective: write generation `gen` and, once every rank's data is
  /// durably in the store, publish the commit marker.
  void dump(mpi::Comm& comm, const SimulationState& state,
            std::uint64_t gen);

  /// True when generation `gen` carries a valid commit marker.  Untimed
  /// metadata probe (usable outside the simulation, e.g. from tests).
  bool committed(std::uint64_t gen) const;

  /// True when generation `gen` left data files behind but no valid marker
  /// — the signature of a dump interrupted mid-write.
  bool torn(std::uint64_t gen) const;

  /// Newest committed generation <= `max_gen`, if any.
  std::optional<std::uint64_t> latest_committed(std::uint64_t max_gen) const;

  /// Collective: restore the newest committed generation <= `max_gen` into
  /// `state` and return it.  Torn generations are skipped — an interrupted
  /// dump can cost progress, never correctness.  Throws IoError when no
  /// committed generation exists.
  std::uint64_t restore_latest(mpi::Comm& comm, SimulationState& state,
                               std::uint64_t max_gen);

 private:
  IoBackend& backend_;
  pfs::FileSystem& fs_;
  std::string base_;
  stage::StagedFs* staged_ = nullptr;
  stage::DrainPolicy drain_policy_ = stage::DrainPolicy::kLazy;
};

}  // namespace paramrio::enzo
