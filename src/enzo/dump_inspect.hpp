// Checkpoint-dump inspection: open a dump written by any of the three
// backends, validate its structure, and summarise its contents (the job a
// standalone `h5dump`/`hdp`-style tool does for the real formats).
#pragma once

#include <string>

#include "enzo/dump_common.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::enzo {

enum class DumpFormat { kUnknown, kHdf4, kMpiIo, kHdf5, kPnetcdf };

std::string to_string(DumpFormat f);

struct DumpSummary {
  DumpFormat format = DumpFormat::kUnknown;
  DumpMeta meta;
  std::uint64_t files = 0;        ///< physical files making up the dump
  std::uint64_t total_bytes = 0;  ///< bytes across those files
  std::uint64_t datasets = 0;     ///< named datasets (grid fields, particles)
  int max_level = 0;
  std::uint64_t refined_cells = 0;
};

/// Detect the format of the dump stored under `base` on `fs`.
DumpFormat detect_dump_format(pfs::FileSystem& fs, const std::string& base);

/// Open and summarise a dump (must be called inside a simulation so the
/// metadata reads are timed like any other access).  Throws FormatError /
/// IoError if the dump is missing or malformed.
DumpSummary inspect_dump(pfs::FileSystem& fs, const std::string& base);

/// Human-readable rendering of a summary.
std::string format_summary(const DumpSummary& s, const std::string& base);

}  // namespace paramrio::enzo
