// Original ENZO I/O: serial HDF4-style access through processor 0 for the
// top-grid (gather + sort + sequential write; read + scatter), with each
// processor writing/reading subgrid files itself.
#include <cstdio>

#include "amr/particles_par.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "enzo/hierarchy_file.hpp"
#include "hdf4/sd_file.hpp"
#include "mpi/io/deferred_scope.hpp"
#include "obs/profiler.hpp"

namespace paramrio::enzo {

namespace {

std::string grid_file_name(const std::string& base, std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".grid%06llu",
                static_cast<unsigned long long>(id));
  return base + buf;
}

hdf4::NumberType particle_number_type(std::size_t array_idx) {
  if (array_idx == 0) return hdf4::NumberType::kInt64;
  if (kParticleArrays[array_idx].elem_size == 4) {
    return hdf4::NumberType::kFloat32;
  }
  return hdf4::NumberType::kFloat64;
}

/// Rank 0 gathers each field of the block-partitioned top-grid and
/// reassembles the full arrays.
std::vector<amr::Array3f> gather_topgrid_fields(mpi::Comm& comm,
                                                const SimulationState& state) {
  std::vector<amr::Array3f> full;
  for (int f = 0; f < amr::kNumBaryonFields; ++f) {
    auto uf = static_cast<std::size_t>(f);
    auto parts = comm.gatherv(state.my_fields[uf].bytes(), 0);
    if (comm.rank() == 0) {
      amr::Array3f whole(state.config.root_dims[0], state.config.root_dims[1],
                         state.config.root_dims[2]);
      for (int r = 0; r < comm.size(); ++r) {
        amr::BlockExtent e =
            amr::block_of(state.config.root_dims, state.proc_grid, r);
        amr::copy_block_in(
            whole, e,
            reinterpret_cast<const float*>(
                parts[static_cast<std::size_t>(r)].data()));
        comm.charge_memcpy(parts[static_cast<std::size_t>(r)].size());
      }
      full.push_back(std::move(whole));
    }
  }
  return full;
}

/// Rank 0 scatters full top-grid fields as (Block,Block,Block) pieces.
std::vector<amr::Array3f> scatter_topgrid_fields(
    mpi::Comm& comm, const SimulationState& state,
    const std::vector<amr::Array3f>& full) {
  std::vector<amr::Array3f> mine;
  for (int f = 0; f < amr::kNumBaryonFields; ++f) {
    std::vector<mpi::Bytes> chunks;
    if (comm.rank() == 0) {
      for (int r = 0; r < comm.size(); ++r) {
        amr::BlockExtent e =
            amr::block_of(state.config.root_dims, state.proc_grid, r);
        mpi::Bytes piece(e.cells() * sizeof(float));
        amr::copy_block_out(full[static_cast<std::size_t>(f)], e,
                            reinterpret_cast<float*>(piece.data()));
        comm.charge_memcpy(piece.size());
        chunks.push_back(std::move(piece));
      }
    }
    mpi::Bytes got = comm.scatterv(chunks, 0);
    const amr::BlockExtent& e = state.my_block;
    amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
    std::memcpy(blk.data(), got.data(), got.size());
    mine.push_back(std::move(blk));
  }
  return mine;
}

/// Rank 0 reads all particle arrays from a dump and routes each particle to
/// the rank owning its position.
amr::ParticleSet scatter_particles(mpi::Comm& comm,
                                   const SimulationState& state,
                                   const hdf4::SdFile* top,
                                   std::uint64_t n_total) {
  std::vector<mpi::Bytes> chunks;
  if (comm.rank() == 0) {
    amr::ParticleSet all;
    all.resize(n_total);
    for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
      std::vector<std::byte> buf(n_total * kParticleArrays[a].elem_size);
      top->read_dataset(kParticleArrays[a].name, buf);
      particle_array_from_bytes(all, a, n_total, buf.data());
    }
    std::vector<std::vector<std::uint32_t>> buckets(
        static_cast<std::size_t>(comm.size()));
    for (std::size_t i = 0; i < all.size(); ++i) {
      int dst = amr::rank_of_position({all.pos[0][i], all.pos[1][i],
                                       all.pos[2][i]},
                                      state.config.root_dims,
                                      state.proc_grid);
      buckets[static_cast<std::size_t>(dst)].push_back(
          static_cast<std::uint32_t>(i));
    }
    for (int r = 0; r < comm.size(); ++r) {
      chunks.push_back(
          amr::pack_particles(all, buckets[static_cast<std::size_t>(r)]));
    }
    comm.charge_memcpy(particle_payload_bytes(n_total));
  }
  mpi::Bytes mine = comm.scatterv(chunks, 0);
  amr::ParticleSet p;
  amr::unpack_particles(mine, p);
  return p;
}

DumpMeta read_meta(mpi::Comm& comm, const hdf4::SdFile* top) {
  mpi::Bytes blob;
  if (comm.rank() == 0) {
    auto v = top->read_attribute("metadata");
    blob.assign(v.begin(), v.end());
  }
  comm.bcast(blob, 0);
  return DumpMeta::deserialize(blob);
}

void write_subgrid_files(const SimulationState& state, pfs::FileSystem& fs,
                         const std::string& base) {
  for (const amr::Grid& g : state.my_subgrids) {
    hdf4::SdFile f = hdf4::SdFile::create(fs, grid_file_name(base, g.desc.id));
    for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
      auto u = static_cast<std::size_t>(fi);
      f.write_dataset(amr::baryon_field_names()[u], hdf4::NumberType::kFloat32,
                      {g.desc.dims[0], g.desc.dims[1], g.desc.dims[2]},
                      g.fields[u].bytes());
    }
    f.close();
  }
}

amr::Grid read_whole_subgrid(pfs::FileSystem& fs, const std::string& base,
                             const amr::GridDescriptor& desc) {
  amr::Grid g;
  g.desc = desc;
  g.allocate_fields();
  hdf4::SdFile f = hdf4::SdFile::open(fs, grid_file_name(base, desc.id));
  for (int fi = 0; fi < amr::kNumBaryonFields; ++fi) {
    auto u = static_cast<std::size_t>(fi);
    f.read_dataset(amr::baryon_field_names()[u], g.fields[u].mutable_bytes());
  }
  f.close();
  return g;
}

}  // namespace

void Hdf4SerialBackend::write_dump(mpi::Comm& comm,
                                   const SimulationState& state,
                                   const std::string& base) {
  // ---- top-grid: gather to rank 0, sort particles, write serially --------
  std::vector<amr::Array3f> full;
  std::vector<mpi::Bytes> parts;
  {
    OBS_SPAN("hdf4.gather", sim::TimeCategory::kComm);
    full = gather_topgrid_fields(comm, state);
    auto packed = amr::pack_particles(state.my_particles);
    parts = comm.gatherv(packed, 0);
  }

  // Virtual completion time of rank 0's deferred top-grid write (< 0: none).
  double top_completion = -1.0;
  if (comm.rank() == 0) {
    amr::ParticleSet all;
    {
      OBS_SPAN("hdf4.sort", sim::TimeCategory::kCpu);
      for (const auto& b : parts) amr::unpack_particles(b, all);
      // "the particles and their associated data arrays are sorted in the
      // original order in which the particles were initially read"
      comm.charge_sort(all.size());
      amr::local_sort_by_id(all);
    }

    DumpMeta meta;
    meta.time = state.time;
    meta.cycle = state.cycle;
    meta.n_particles = all.size();
    meta.hierarchy = state.hierarchy;

    auto write_top = [&] {
      hdf4::SdFile top = hdf4::SdFile::create(fs_, base + ".topgrid");
      top.write_attribute("metadata", meta.serialize());
      const auto& dims = state.config.root_dims;
      for (int f = 0; f < amr::kNumBaryonFields; ++f) {
        auto u = static_cast<std::size_t>(f);
        top.write_dataset(amr::baryon_field_names()[u],
                          hdf4::NumberType::kFloat32,
                          {dims[0], dims[1], dims[2]}, full[u].bytes());
      }
      for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
        std::vector<std::byte> buf(all.size() * kParticleArrays[a].elem_size);
        particle_array_to_bytes(all, a, 0, all.size(), buf.data());
        top.write_dataset(kParticleArrays[a].name, particle_number_type(a),
                          {all.size()}, buf);
      }
      top.close();
      // The human-readable hierarchy file real ENZO writes beside each dump.
      write_hierarchy_file(fs_, base + ".hierarchy", state.hierarchy,
                           state.time, state.cycle);
    };
    if (overlap_ && sim::in_simulation()) {
      // Defer the serial top-grid flush: rank 0 joins the barrier at its
      // pre-I/O clock, so the other P-1 ranks start their subgrid files
      // while the top-grid file is still flushing; rank 0 settles below.
      sim::Proc& proc = sim::current_proc();
      mpi::io::DeferredScope defer(proc);
      OBS_SPAN("hdf4.topgrid_write", sim::TimeCategory::kIo);
      write_top();
      top_completion = defer.end();
    } else {
      OBS_SPAN("hdf4.topgrid_write", sim::TimeCategory::kIo);
      write_top();
    }
  }
  {
    OBS_SPAN("hdf4.barrier", sim::TimeCategory::kComm);
    comm.barrier();
  }
  if (top_completion >= 0.0 && sim::in_simulation()) {
    // Rank 0's in-flight top-grid write completes here; the barrier wait
    // hid part (often all) of it.
    obs::record_wait(obs::WaitKind::kSettleWait,
                     sim::current_proc().now(), top_completion);
    sim::current_proc().clock_at_least(top_completion,
                                       sim::TimeCategory::kIo);
  }

  // ---- subgrids: each processor writes its own files, no communication ---
  {
    OBS_SPAN("hdf4.subgrid_write", sim::TimeCategory::kIo);
    write_subgrid_files(state, fs_, base);
  }
  OBS_SPAN("hdf4.barrier", sim::TimeCategory::kComm);
  comm.barrier();
}

void Hdf4SerialBackend::read_initial(mpi::Comm& comm, SimulationState& state,
                                     const std::string& base) {
  std::optional<hdf4::SdFile> top;
  if (comm.rank() == 0) top = hdf4::SdFile::open(fs_, base + ".topgrid");
  DumpMeta meta = read_meta(comm, top ? &*top : nullptr);

  // Top-grid fields: rank 0 reads, partitions, scatters each one.
  std::vector<amr::Array3f> full;
  {
    OBS_SPAN("hdf4.topgrid_read", sim::TimeCategory::kIo);
    if (comm.rank() == 0) {
      const auto& dims = state.config.root_dims;
      for (int f = 0; f < amr::kNumBaryonFields; ++f) {
        auto u = static_cast<std::size_t>(f);
        amr::Array3f whole(dims[0], dims[1], dims[2]);
        top->read_dataset(amr::baryon_field_names()[u], whole.mutable_bytes());
        full.push_back(std::move(whole));
      }
    }
  }
  {
    OBS_SPAN("hdf4.scatter", sim::TimeCategory::kComm);
    auto fields = scatter_topgrid_fields(comm, state, full);
    auto particles = scatter_particles(comm, state, top ? &*top : nullptr,
                                       meta.n_particles);
    if (comm.rank() == 0) top->close();
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Subgrids: rank 0 reads each file and scatters (Block,Block,Block)
  // pieces of every field to all ranks.
  OBS_SPAN("hdf4.subgrid_read", sim::TimeCategory::kIo);
  std::vector<amr::Grid> my_pieces;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    // Small subgrids split across fewer ranks than P (each axis capped at
    // the grid's cell count); the remaining ranks receive nothing.
    std::array<int, 3> pg = bounded_proc_grid(g, comm.size());
    const int pieces = piece_count(pg);
    const bool participate = comm.rank() < pieces;
    amr::Grid whole;
    if (comm.rank() == 0) {
      whole = read_whole_subgrid(fs_, base, g);
    }
    amr::Grid piece;
    if (participate) piece.desc = piece_descriptor(g, pg, comm.rank());
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      auto u = static_cast<std::size_t>(f);
      std::vector<mpi::Bytes> chunks;
      if (comm.rank() == 0) {
        chunks.resize(static_cast<std::size_t>(comm.size()));
        for (int r = 0; r < pieces; ++r) {
          amr::BlockExtent e = amr::block_of(g.dims, pg, r);
          mpi::Bytes buf(e.cells() * sizeof(float));
          amr::copy_block_out(whole.fields[u], e,
                              reinterpret_cast<float*>(buf.data()));
          comm.charge_memcpy(buf.size());
          chunks[static_cast<std::size_t>(r)] = std::move(buf);
        }
      }
      mpi::Bytes got = comm.scatterv(chunks, 0);
      if (participate) {
        amr::Array3f blk(piece.desc.dims[0], piece.desc.dims[1],
                         piece.desc.dims[2]);
        std::memcpy(blk.data(), got.data(), got.size());
        piece.fields.push_back(std::move(blk));
      }
    }
    if (participate) my_pieces.push_back(std::move(piece));
  }
  install_partitioned_hierarchy(comm, state, meta, std::move(my_pieces));
}

void Hdf4SerialBackend::read_restart(mpi::Comm& comm, SimulationState& state,
                                     const std::string& base) {
  std::optional<hdf4::SdFile> top;
  if (comm.rank() == 0) top = hdf4::SdFile::open(fs_, base + ".topgrid");
  DumpMeta meta = read_meta(comm, top ? &*top : nullptr);

  std::vector<amr::Array3f> full;
  {
    OBS_SPAN("hdf4.topgrid_read", sim::TimeCategory::kIo);
    if (comm.rank() == 0) {
      const auto& dims = state.config.root_dims;
      for (int f = 0; f < amr::kNumBaryonFields; ++f) {
        auto u = static_cast<std::size_t>(f);
        amr::Array3f whole(dims[0], dims[1], dims[2]);
        top->read_dataset(amr::baryon_field_names()[u], whole.mutable_bytes());
        full.push_back(std::move(whole));
      }
    }
  }
  {
    OBS_SPAN("hdf4.scatter", sim::TimeCategory::kComm);
    auto fields = scatter_topgrid_fields(comm, state, full);
    auto particles = scatter_particles(comm, state, top ? &*top : nullptr,
                                       meta.n_particles);
    if (comm.rank() == 0) top->close();
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Subgrids round-robin: grid i is read whole by rank i % P.
  OBS_SPAN("hdf4.subgrid_read", sim::TimeCategory::kIo);
  state.hierarchy = meta.hierarchy;
  state.my_subgrids.clear();
  int i = 0;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    int owner = i % comm.size();
    state.hierarchy.grid_mut(g.id).owner = owner;
    if (owner == comm.rank()) {
      state.my_subgrids.push_back(read_whole_subgrid(fs_, base, g));
      state.my_subgrids.back().desc.owner = owner;
    }
    ++i;
  }
  comm.barrier();
}

}  // namespace paramrio::enzo
