// The three concrete I/O strategies the paper compares.  See io_backend.hpp
// for the role of each.
#pragma once

#include "enzo/io_backend.hpp"
#include "hdf5/h5_file.hpp"
#include "mpi/io/file.hpp"
#include "pfs/filesystem.hpp"

namespace paramrio::enzo {

/// Original ENZO: serial HDF4-style I/O through processor 0 for the
/// top-grid; one file per subgrid written by its owner.
class Hdf4SerialBackend final : public IoBackend {
 public:
  /// `overlap` defers rank 0's top-grid dataset writes on the shadow clock:
  /// the post-gather barrier then releases the other ranks into their
  /// subgrid-file writes while the top-grid file is still flushing.  Off by
  /// default (byte- and time-identical to the serial original).
  explicit Hdf4SerialBackend(pfs::FileSystem& fs, bool overlap = false)
      : fs_(fs), overlap_(overlap) {}
  std::string name() const override { return "hdf4"; }
  void write_dump(mpi::Comm& comm, const SimulationState& state,
                  const std::string& base) override;
  void read_initial(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;
  void read_restart(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;

 private:
  pfs::FileSystem& fs_;
  bool overlap_ = false;
};

/// The paper's optimised MPI-IO port: one shared file, collective two-phase
/// subarray I/O for baryon fields, parallel sort + block-wise non-collective
/// I/O for particles.
class MpiIoBackend final : public IoBackend {
 public:
  MpiIoBackend(pfs::FileSystem& fs, mpi::io::Hints hints = {})
      : fs_(fs), hints_(hints) {}
  std::string name() const override { return "mpi-io"; }
  void write_dump(mpi::Comm& comm, const SimulationState& state,
                  const std::string& base) override;
  void read_initial(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;
  void read_restart(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;

 private:
  pfs::FileSystem& fs_;
  mpi::io::Hints hints_;
};

/// Parallel HDF5 port: the same access patterns expressed as hyperslab
/// selections, paying the library's metadata and packing overheads.
class Hdf5ParallelBackend final : public IoBackend {
 public:
  /// `config` carries the overhead toggles; its comm pointer is ignored
  /// (set per call).
  Hdf5ParallelBackend(pfs::FileSystem& fs, hdf5::FileConfig config = {})
      : fs_(fs), config_(config) {}
  std::string name() const override { return "hdf5"; }
  void write_dump(mpi::Comm& comm, const SimulationState& state,
                  const std::string& base) override;
  void read_initial(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;
  void read_restart(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;

 private:
  pfs::FileSystem& fs_;
  hdf5::FileConfig config_;
};

/// PnetCDF-analogue port — the authors' follow-up design (SC 2003): one
/// define phase, flat aligned layout, attributes in the header.  Same
/// access patterns as MpiIoBackend/Hdf5ParallelBackend, none of the HDF5
/// overheads.  Implemented as the repository's "future work" extension.
class PnetcdfBackend final : public IoBackend {
 public:
  PnetcdfBackend(pfs::FileSystem& fs, mpi::io::Hints hints = {})
      : fs_(fs), hints_(hints) {}
  std::string name() const override { return "pnetcdf"; }
  void write_dump(mpi::Comm& comm, const SimulationState& state,
                  const std::string& base) override;
  void read_initial(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;
  void read_restart(mpi::Comm& comm, SimulationState& state,
                    const std::string& base) override;

 private:
  pfs::FileSystem& fs_;
  mpi::io::Hints hints_;
};

}  // namespace paramrio::enzo
