#include "enzo/config.hpp"

#include "base/error.hpp"

namespace paramrio::enzo {

std::string to_string(ProblemSize s) {
  switch (s) {
    case ProblemSize::kAmr64:
      return "AMR64";
    case ProblemSize::kAmr128:
      return "AMR128";
    case ProblemSize::kAmr256:
      return "AMR256";
  }
  throw LogicError("bad ProblemSize");
}

SimulationConfig SimulationConfig::for_size(ProblemSize s) {
  SimulationConfig c;
  switch (s) {
    case ProblemSize::kAmr64:
      c.root_dims = {64, 64, 64};
      break;
    case ProblemSize::kAmr128:
      c.root_dims = {128, 128, 128};
      break;
    case ProblemSize::kAmr256:
      c.root_dims = {256, 256, 256};
      break;
  }
  return c;
}

}  // namespace paramrio::enzo
