// The application's I/O strategy interface and the three implementations the
// paper compares:
//
//   * Hdf4SerialBackend  — the original ENZO design: processor 0 gathers the
//     top-grid (fields and globally re-sorted particles) and writes it
//     serially with the HDF4-style library; each processor writes its own
//     subgrids to individual files.
//   * MpiIoBackend       — the paper's optimised design: one shared file,
//     collective two-phase I/O with subarray views for the (Block,Block,
//     Block) baryon fields, parallel sample sort + block-wise non-collective
//     I/O for the irregular particle arrays.
//   * Hdf5ParallelBackend — the same access patterns expressed through the
//     parallel HDF5-analogue (hyperslab selections over MPI-IO), incurring
//     its metadata-synchronisation / alignment / packing / attribute
//     overheads.
//
// All three implement the paper's three I/O categories: reading initial
// grids in a new simulation (every grid partitioned among all processors),
// checkpoint dumps, and restart reads (top-grid partitioned, subgrids read
// round-robin).
#pragma once

#include <string>

#include "enzo/state.hpp"
#include "mpi/comm.hpp"

namespace paramrio::enzo {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual std::string name() const = 0;

  /// Checkpoint the state under `base` (collective).
  virtual void write_dump(mpi::Comm& comm, const SimulationState& state,
                          const std::string& base) = 0;

  /// New-simulation read: load the dump at `base`, partitioning every grid
  /// (top-grid and pre-refined subgrids) among all processors.  Fills
  /// `state` (whose config must match the dump's geometry).
  virtual void read_initial(mpi::Comm& comm, SimulationState& state,
                            const std::string& base) = 0;

  /// Restart read: top-grid partitioned as in read_initial; subgrids are
  /// read whole, round-robin across processors.
  virtual void read_restart(mpi::Comm& comm, SimulationState& state,
                            const std::string& base) = 0;
};

}  // namespace paramrio::enzo
