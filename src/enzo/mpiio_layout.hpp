// Byte layout of the shared MPI-IO dump file (`<base>.enzo`), computable
// identically on every rank from the dump metadata alone.  Shared between
// the MPI-IO backend (which writes/reads with it collectively) and the
// query index (which turns it into per-field extents for random access).
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "amr/grid.hpp"
#include "enzo/dump_common.hpp"

namespace paramrio::enzo {

constexpr std::uint64_t kMpiioDumpMagic = 0x4F5A4E45504D5244ULL;  // "DRMPENZO"

struct MpiioSharedLayout {
  std::uint64_t meta_bytes = 0;
  std::uint64_t topgrid_fields = 0;  ///< start of the 8 field datasets
  std::uint64_t field_bytes = 0;     ///< bytes per top-grid field
  std::array<std::uint64_t, kNumParticleArrays> particle_off{};
  std::map<std::uint64_t, std::uint64_t> subgrid_off;  ///< grid id -> start
  std::uint64_t total = 0;

  std::uint64_t field_off(int f) const {
    return topgrid_fields + static_cast<std::uint64_t>(f) * field_bytes;
  }
};

inline MpiioSharedLayout build_mpiio_layout(
    const DumpMeta& meta, const std::array<std::uint64_t, 3>& root_dims) {
  MpiioSharedLayout l;
  l.meta_bytes = meta.serialize().size();
  l.topgrid_fields = 16 + l.meta_bytes;
  l.field_bytes = root_dims[0] * root_dims[1] * root_dims[2] * sizeof(float);
  std::uint64_t pos =
      l.topgrid_fields +
      static_cast<std::uint64_t>(amr::kNumBaryonFields) * l.field_bytes;
  for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
    l.particle_off[a] = pos;
    pos += kParticleArrays[a].elem_size * meta.n_particles;
  }
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    l.subgrid_off[g.id] = pos;
    pos += static_cast<std::uint64_t>(amr::kNumBaryonFields) *
           g.cell_count() * sizeof(float);
  }
  l.total = pos;
  return l;
}

}  // namespace paramrio::enzo
