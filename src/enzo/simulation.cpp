#include "enzo/simulation.hpp"

#include <algorithm>

#include "amr/ghost.hpp"
#include "amr/load_balance.hpp"
#include "amr/particles_par.hpp"
#include "base/byte_io.hpp"

namespace paramrio::enzo {

namespace {

amr::GridDescriptor block_descriptor(
    const std::array<std::uint64_t, 3>& root_dims,
    const amr::BlockExtent& block) {
  amr::GridDescriptor d;
  for (int i = 0; i < 3; ++i) {
    auto u = static_cast<std::size_t>(i);
    d.left_edge[u] = static_cast<double>(block.start[u]) /
                     static_cast<double>(root_dims[u]);
    d.right_edge[u] = static_cast<double>(block.start[u] + block.count[u]) /
                      static_cast<double>(root_dims[u]);
    d.dims[u] = block.count[u];
  }
  return d;
}

mpi::Bytes serialize_descs(const std::vector<amr::GridDescriptor>& descs) {
  ByteWriter w;
  w.u64(descs.size());
  for (const auto& g : descs) {
    w.u64(g.parent);
    w.u32(static_cast<std::uint32_t>(g.level));
    for (double e : g.left_edge) w.f64(e);
    for (double e : g.right_edge) w.f64(e);
    for (auto d : g.dims) w.u64(d);
  }
  return w.take();
}

std::vector<amr::GridDescriptor> deserialize_descs(
    std::span<const std::byte> data) {
  ByteReader r(data);
  std::vector<amr::GridDescriptor> descs(r.u64());
  for (auto& g : descs) {
    g.parent = r.u64();
    g.level = static_cast<int>(r.u32());
    for (double& e : g.left_edge) e = r.f64();
    for (double& e : g.right_edge) e = r.f64();
    for (auto& d : g.dims) d = r.u64();
  }
  return descs;
}

}  // namespace

EnzoSimulation::EnzoSimulation(mpi::Comm& comm, SimulationConfig config)
    : comm_(comm), universe_(config.seed, config.n_clumps) {
  state_.config = config;
  state_.proc_grid = amr::make_proc_grid(comm.size());
  state_.my_block =
      amr::block_of(config.root_dims, state_.proc_grid, comm.rank());
  state_.hierarchy.set_root(config.root_dims);
}

void EnzoSimulation::charge_compute(std::uint64_t cells) {
  double t = static_cast<double>(cells) * state_.config.compute_per_cell;
  if (t > 0.0) comm_.proc().advance(t, sim::TimeCategory::kCpu);
}

void EnzoSimulation::fill_block_fields() {
  amr::Grid block_grid;
  block_grid.desc = block_descriptor(state_.config.root_dims, state_.my_block);
  universe_.fill_fields(block_grid, state_.time);
  state_.my_fields = std::move(block_grid.fields);
  charge_compute(state_.my_block.cells());
}

void EnzoSimulation::fill_owned_subgrids() {
  state_.my_subgrids.clear();
  for (const amr::GridDescriptor& g : state_.hierarchy.grids()) {
    if (g.level == 0 || g.owner != comm_.rank()) continue;
    amr::Grid grid;
    grid.desc = g;
    universe_.fill_fields(grid, state_.time);
    charge_compute(g.cell_count());
    state_.my_subgrids.push_back(std::move(grid));
  }
}

void EnzoSimulation::rebuild_refinement() {
  state_.hierarchy.clear_subgrids();
  state_.my_subgrids.clear();
  const amr::RefineParams& rp = state_.config.refine;

  // Level-by-level: everyone proposes children for the grids (or root-grid
  // block) they hold, proposals are allgathered so the replicated hierarchy
  // stays identical, then the new level is balanced and its owners fill
  // their field data (needed to flag the next level).
  for (int level = 0; level < rp.max_level; ++level) {
    std::vector<amr::GridDescriptor> proposals;
    if (level == 0) {
      const amr::Array3f& density = state_.my_fields[0];
      auto flags = amr::flag_overdense(density, rp.threshold);
      for (const amr::CellBox& box : amr::cluster_flags(flags, rp)) {
        amr::GridDescriptor child = amr::make_child(
            state_.hierarchy.root(), state_.my_block.start, box,
            rp.refine_factor);
        proposals.push_back(child);
      }
    } else {
      // Deeper refinement demands ever-higher overdensity.
      double threshold = rp.threshold * (1 << (2 * level));
      for (const amr::Grid& g : state_.my_subgrids) {
        if (g.desc.level != level) continue;
        auto flags = amr::flag_overdense(g.fields[0], threshold);
        for (const amr::CellBox& box : amr::cluster_flags(flags, rp)) {
          proposals.push_back(amr::make_child(g.desc, {0, 0, 0}, box,
                                              rp.refine_factor));
        }
      }
    }
    charge_compute(level == 0 ? state_.my_block.cells() / 8 : 0);

    auto all = comm_.allgatherv(serialize_descs(proposals));
    std::vector<std::uint64_t> new_ids;
    for (const mpi::Bytes& b : all) {
      for (amr::GridDescriptor d : deserialize_descs(b)) {
        new_ids.push_back(state_.hierarchy.add_grid(d));
      }
    }
    if (new_ids.empty()) break;

    // Balance the new level and fill the owners' data.
    std::vector<std::uint64_t> weights;
    weights.reserve(new_ids.size());
    for (auto id : new_ids) {
      weights.push_back(state_.hierarchy.grid(id).cell_count());
    }
    std::vector<int> owners = amr::balance_greedy(weights, comm_.size());
    for (std::size_t i = 0; i < new_ids.size(); ++i) {
      state_.hierarchy.grid_mut(new_ids[i]).owner = owners[i];
    }
    for (std::size_t i = 0; i < new_ids.size(); ++i) {
      if (owners[i] != comm_.rank()) continue;
      amr::Grid grid;
      grid.desc = state_.hierarchy.grid(new_ids[i]);
      universe_.fill_fields(grid, state_.time);
      charge_compute(grid.desc.cell_count());
      state_.my_subgrids.push_back(std::move(grid));
    }
  }
}

void EnzoSimulation::initialize_from_universe() {
  fill_block_fields();

  // Particles: each rank samples its block's share, ids block-partitioned so
  // "the original order in which the particles were initially read" is the
  // id order.
  std::uint64_t total = state_.config.total_particles();
  auto [id_base, count] =
      amr::block_range(total, comm_.size(), comm_.rank());
  amr::GridDescriptor region =
      block_descriptor(state_.config.root_dims, state_.my_block);
  Rng rng(state_.config.seed * 1000003ULL +
          static_cast<std::uint64_t>(comm_.rank()));
  state_.my_particles = universe_.make_particles(
      count, static_cast<std::int64_t>(id_base), region, state_.time, rng);
  charge_compute(count / 4);

  state_.my_subgrids.clear();
  rebuild_refinement();
}

void EnzoSimulation::evolve_cycle() {
  state_.cycle += 1;
  state_.time += state_.config.dt;

  // "Hydro" update: refresh the analytic fields at the new time, then
  // synchronise boundary (ghost) zones with the face neighbours — ENZO's
  // per-cycle guard-cell traffic.
  fill_block_fields();
  {
    amr::GhostBlock gb(state_.my_block);
    gb.load_interior(state_.my_fields[0]);
    amr::exchange_ghost_zones(comm_, gb, state_.proc_grid);
  }

  // Particle push + the irregular repartition by position.
  amr::Universe::drift_particles(state_.my_particles, state_.config.dt);
  charge_compute(state_.my_particles.size() / 8);
  state_.my_particles = amr::redistribute_by_position(
      comm_, state_.my_particles, state_.config.root_dims, state_.proc_grid);

  // Star formation: spawn new particles in this rank's overdense cells.
  if (state_.config.star_formation_rate > 0.0) {
    form_stars();
  }

  // Refinement tracks the moved clumps; subgrids rebuilt and rebalanced.
  state_.my_subgrids.clear();
  rebuild_refinement();
}

void EnzoSimulation::form_stars() {
  // Global budget this cycle, split by rank share of the population; new
  // ids continue after the current global maximum so the "original order"
  // sort stays meaningful.
  std::uint64_t my_count = state_.my_particles.size();
  std::uint64_t total = comm_.allreduce_sum(my_count);
  std::uint64_t budget = static_cast<std::uint64_t>(
      state_.config.star_formation_rate * static_cast<double>(total));
  if (budget == 0) return;
  std::uint64_t max_id = comm_.allreduce_max(
      my_count > 0 ? static_cast<std::uint64_t>(
                         *std::max_element(state_.my_particles.id.begin(),
                                           state_.my_particles.id.end()))
                   : 0);
  // Deterministic per-rank share and id range (prefix by rank).
  auto [offset, mine] = amr::block_range(budget, comm_.size(), comm_.rank());
  if (mine == 0) return;
  amr::GridDescriptor region =
      block_descriptor(state_.config.root_dims, state_.my_block);
  Rng rng(state_.config.seed * 7919ULL + state_.cycle * 104729ULL +
          static_cast<std::uint64_t>(comm_.rank()));
  amr::ParticleSet stars = universe_.make_particles(
      mine, static_cast<std::int64_t>(max_id + 1 + offset), region,
      state_.time, rng);
  charge_compute(mine / 2);
  for (std::size_t i = 0; i < stars.size(); ++i) {
    state_.my_particles.append_from(stars, i);
  }
}

}  // namespace paramrio::enzo
