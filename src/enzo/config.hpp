// Simulation configuration: the paper's three problem sizes plus the knobs
// of the synthetic universe and the refinement machinery.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "amr/refine.hpp"

namespace paramrio::enzo {

/// The paper's problem sizes: AMR64 (64^3 root grid), AMR128, AMR256.
enum class ProblemSize { kAmr64, kAmr128, kAmr256 };

std::string to_string(ProblemSize s);

struct SimulationConfig {
  std::array<std::uint64_t, 3> root_dims{64, 64, 64};  // (z, y, x)

  /// Particle count = particles_per_cell * root cells.  The real runs used
  /// roughly one per cell; we default to 1/2 to keep AMR256 inside RAM
  /// (see DESIGN.md); Table 1 reports whatever this produces.
  double particles_per_cell = 0.5;

  int n_clumps = 12;
  amr::RefineParams refine{/*threshold=*/3.2, /*min_fill=*/0.55,
                           /*min_box=*/4, /*refine_factor=*/2,
                           /*max_level=*/1};
  double dt = 0.4;  ///< evolution time step per cycle

  /// Star formation: new particles created per cycle as a fraction of the
  /// current population, seeded in overdense cells (ENZO forms star
  /// particles where gas collapses).  0 disables (the default keeps the
  /// particle count fixed, matching the paper's runs).
  double star_formation_rate = 0.0;

  /// Virtual CPU cost per cell per cycle (stand-in for the hydro solve).
  double compute_per_cell = 1.0e-6;

  std::uint64_t seed = 20020901;  ///< CLUSTER 2002 ;-)

  static SimulationConfig for_size(ProblemSize s);

  std::uint64_t root_cells() const {
    return root_dims[0] * root_dims[1] * root_dims[2];
  }
  std::uint64_t total_particles() const {
    return static_cast<std::uint64_t>(particles_per_cell *
                                      static_cast<double>(root_cells()));
  }
};

}  // namespace paramrio::enzo
