// PnetCDF-analogue backend — the "future work" strategy: same access
// patterns as the MPI-IO and HDF5 backends, expressed through the netCDF-
// style define/data-mode API, whose single enddef synchronisation and flat
// aligned layout avoid the HDF5 overheads of Figure 10.
#include <cstdio>
#include <optional>

#include "amr/particles_par.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "obs/profiler.hpp"
#include "pnetcdf/nc_file.hpp"

namespace paramrio::enzo {

namespace {

std::string subgrid_var_name(std::uint64_t id, const std::string& field) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "grid%06llu/",
                static_cast<unsigned long long>(id));
  return buf + field;
}

pnetcdf::NcType particle_nc_type(std::size_t array_idx) {
  if (array_idx == 0) return pnetcdf::NcType::kInt64;
  if (kParticleArrays[array_idx].elem_size == 4) {
    return pnetcdf::NcType::kFloat;
  }
  return pnetcdf::NcType::kDouble;
}

/// Define the whole dump schema (every grid's variables) in one define
/// phase.  Returns the varids in a deterministic layout.
struct DumpSchema {
  std::vector<int> topgrid_fields;             // kNumBaryonFields
  std::vector<int> particles;                  // kNumParticleArrays (or empty)
  std::map<std::uint64_t, std::vector<int>> subgrid_fields;
};

DumpSchema define_schema(pnetcdf::NcFile& nc, const DumpMeta& meta,
                         const std::array<std::uint64_t, 3>& root_dims) {
  DumpSchema s;
  int dz = nc.def_dim("z", root_dims[0]);
  int dy = nc.def_dim("y", root_dims[1]);
  int dx = nc.def_dim("x", root_dims[2]);
  for (int f = 0; f < amr::kNumBaryonFields; ++f) {
    auto u = static_cast<std::size_t>(f);
    s.topgrid_fields.push_back(
        nc.def_var("topgrid/" + amr::baryon_field_names()[u],
                   pnetcdf::NcType::kFloat, {dz, dy, dx}));
  }
  if (meta.n_particles > 0) {
    int dn = nc.def_dim("n_particles", meta.n_particles);
    for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
      s.particles.push_back(
          nc.def_var(std::string("topgrid/") + kParticleArrays[a].name,
                     particle_nc_type(a), {dn}));
    }
  }
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    char buf[32];
    std::snprintf(buf, sizeof buf, "g%06llu_",
                  static_cast<unsigned long long>(g.id));
    int gz = nc.def_dim(std::string(buf) + "z", g.dims[0]);
    int gy = nc.def_dim(std::string(buf) + "y", g.dims[1]);
    int gx = nc.def_dim(std::string(buf) + "x", g.dims[2]);
    auto& vars = s.subgrid_fields[g.id];
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      auto u = static_cast<std::size_t>(f);
      vars.push_back(nc.def_var(
          subgrid_var_name(g.id, amr::baryon_field_names()[u]),
          pnetcdf::NcType::kFloat, {gz, gy, gx}));
    }
  }
  return s;
}

std::vector<std::uint64_t> vec3(const std::array<std::uint64_t, 3>& a) {
  return {a[0], a[1], a[2]};
}

}  // namespace

void PnetcdfBackend::write_dump(mpi::Comm& comm, const SimulationState& state,
                                const std::string& base) {
  DumpMeta meta;
  meta.time = state.time;
  meta.cycle = state.cycle;
  {
    OBS_SPAN("pnetcdf_dump.meta", sim::TimeCategory::kComm);
    meta.n_particles = comm.allreduce_sum(state.my_particles.size());
  }
  meta.hierarchy = state.hierarchy;

  pnetcdf::NcConfig cfg;
  cfg.hints = hints_;
  std::optional<pnetcdf::NcFile> nc;
  {
    OBS_SPAN("pnetcdf_dump.open", sim::TimeCategory::kIo);
    nc.emplace(pnetcdf::NcFile::create(comm, fs_, base + ".nc", cfg));
  }

  // ---- ONE define phase for the whole dump ------------------------------
  DumpSchema schema;
  {
    OBS_SPAN("pnetcdf_dump.define", sim::TimeCategory::kIo);
    nc->put_att("metadata", meta.serialize());
    schema = define_schema(*nc, meta, state.config.root_dims);
    nc->enddef();
  }

  // ---- top-grid fields: collective subarray writes ----------------------
  {
    OBS_SPAN("pnetcdf_dump.field_write", sim::TimeCategory::kIo);
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      auto u = static_cast<std::size_t>(f);
      nc->put_vara_all(schema.topgrid_fields[u], vec3(state.my_block.start),
                       vec3(state.my_block.count), state.my_fields[u].bytes());
    }
  }

  // ---- particles: parallel sort, block-wise independent writes ----------
  if (meta.n_particles > 0) {
    amr::ParticleSet sorted;
    std::uint64_t first = 0;
    {
      OBS_SPAN("pnetcdf_dump.particle_sort", sim::TimeCategory::kComm);
      sorted = amr::parallel_sort_by_id(comm, state.my_particles);
      std::uint64_t my_count = sorted.size();
      auto counts_raw =
          comm.allgatherv(std::as_bytes(std::span(&my_count, 1)));
      for (int r = 0; r < comm.rank(); ++r) {
        std::uint64_t c;
        std::memcpy(&c, counts_raw[static_cast<std::size_t>(r)].data(), 8);
        first += c;
      }
    }
    OBS_SPAN("pnetcdf_dump.particle_write", sim::TimeCategory::kIo);
    std::uint64_t my_count = sorted.size();
    for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
      if (my_count == 0) continue;
      std::vector<std::byte> buf(my_count * kParticleArrays[a].elem_size);
      particle_array_to_bytes(sorted, a, 0, my_count, buf.data());
      nc->put_vara(schema.particles[a], {first}, {my_count}, buf);
    }
  }

  // ---- subgrids: independent whole-variable writes by their owners,
  //      nonblocking (iput_vara + one wait_all per grid) so grid g+1's
  //      issue overlaps grid g's in-flight flush when overlap is on -------
  {
    OBS_SPAN("pnetcdf_dump.subgrid_write", sim::TimeCategory::kIo);
    std::vector<mpi::io::Request> reqs;
    for (const amr::Grid& g : state.my_subgrids) {
      const auto& vars = schema.subgrid_fields.at(g.desc.id);
      reqs.clear();
      for (int f = 0; f < amr::kNumBaryonFields; ++f) {
        auto u = static_cast<std::size_t>(f);
        reqs.push_back(nc->iput_vara(vars[u], {0, 0, 0}, vec3(g.desc.dims),
                                     g.fields[u].bytes()));
      }
      nc->wait_all(reqs);
    }
  }
  OBS_SPAN("pnetcdf_dump.close", sim::TimeCategory::kIo);
  nc->close();
}

void PnetcdfBackend::read_initial(mpi::Comm& comm, SimulationState& state,
                                  const std::string& base) {
  pnetcdf::NcConfig cfg;
  cfg.hints = hints_;
  pnetcdf::NcFile nc = pnetcdf::NcFile::open(comm, fs_, base + ".nc", cfg);
  DumpMeta meta = DumpMeta::deserialize(nc.get_att("metadata"));

  {
    OBS_SPAN("pnetcdf_dump.field_read", sim::TimeCategory::kIo);
    // Top-grid fields: collective subarray reads of my block.
    std::vector<amr::Array3f> fields;
    const amr::BlockExtent& e = state.my_block;
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      auto u = static_cast<std::size_t>(f);
      int v = nc.inq_varid("topgrid/" + amr::baryon_field_names()[u]);
      amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
      nc.get_vara_all(v, vec3(e.start), vec3(e.count), blk.mutable_bytes());
      fields.push_back(std::move(blk));
    }

    // Particles: block-wise slices then redistribution by position.
    amr::ParticleSet particles;
    if (meta.n_particles > 0) {
      auto [first, count] =
          amr::block_range(meta.n_particles, comm.size(), comm.rank());
      amr::ParticleSet slice;
      slice.resize(count);
      for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
        if (count == 0) break;
        int v =
            nc.inq_varid(std::string("topgrid/") + kParticleArrays[a].name);
        std::vector<std::byte> buf(count * kParticleArrays[a].elem_size);
        nc.get_vara(v, {first}, {count}, buf);
        particle_array_from_bytes(slice, a, count, buf.data());
      }
      particles = amr::redistribute_by_position(
          comm, slice, state.config.root_dims, state.proc_grid);
    }
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  // Initial subgrids: every grid partitioned, collective reads.
  OBS_SPAN("pnetcdf_dump.subgrid_read", sim::TimeCategory::kIo);
  std::vector<amr::Grid> my_pieces;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    std::array<int, 3> pg = bounded_proc_grid(g, comm.size());
    const bool participate = comm.rank() < piece_count(pg);
    amr::Grid piece;
    if (participate) piece.desc = piece_descriptor(g, pg, comm.rank());
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      auto u = static_cast<std::size_t>(f);
      int v = nc.inq_varid(
          subgrid_var_name(g.id, amr::baryon_field_names()[u]));
      if (participate) {
        amr::BlockExtent pe = amr::block_of(g.dims, pg, comm.rank());
        amr::Array3f blk(pe.count[0], pe.count[1], pe.count[2]);
        nc.get_vara_all(v, vec3(pe.start), vec3(pe.count),
                        blk.mutable_bytes());
        piece.fields.push_back(std::move(blk));
      } else {
        // Zero-size participation (netCDF-style zero counts): joins the
        // collective, transfers nothing.
        nc.get_vara_all(v, {0, 0, 0}, {0, 0, 0}, {});
      }
    }
    if (participate) my_pieces.push_back(std::move(piece));
  }
  nc.close();
  install_partitioned_hierarchy(comm, state, meta, std::move(my_pieces));
}

void PnetcdfBackend::read_restart(mpi::Comm& comm, SimulationState& state,
                                  const std::string& base) {
  pnetcdf::NcConfig cfg;
  cfg.hints = hints_;
  pnetcdf::NcFile nc = pnetcdf::NcFile::open(comm, fs_, base + ".nc", cfg);
  DumpMeta meta = DumpMeta::deserialize(nc.get_att("metadata"));

  {
    OBS_SPAN("pnetcdf_dump.field_read", sim::TimeCategory::kIo);
    std::vector<amr::Array3f> fields;
    const amr::BlockExtent& e = state.my_block;
    for (int f = 0; f < amr::kNumBaryonFields; ++f) {
      auto u = static_cast<std::size_t>(f);
      int v = nc.inq_varid("topgrid/" + amr::baryon_field_names()[u]);
      amr::Array3f blk(e.count[0], e.count[1], e.count[2]);
      nc.get_vara_all(v, vec3(e.start), vec3(e.count), blk.mutable_bytes());
      fields.push_back(std::move(blk));
    }

    amr::ParticleSet particles;
    if (meta.n_particles > 0) {
      auto [first, count] =
          amr::block_range(meta.n_particles, comm.size(), comm.rank());
      amr::ParticleSet slice;
      slice.resize(count);
      for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
        if (count == 0) break;
        int v =
            nc.inq_varid(std::string("topgrid/") + kParticleArrays[a].name);
        std::vector<std::byte> buf(count * kParticleArrays[a].elem_size);
        nc.get_vara(v, {first}, {count}, buf);
        particle_array_from_bytes(slice, a, count, buf.data());
      }
      particles = amr::redistribute_by_position(
          comm, slice, state.config.root_dims, state.proc_grid);
    }
    install_topgrid(state, meta, std::move(fields), std::move(particles));
  }

  OBS_SPAN("pnetcdf_dump.subgrid_read", sim::TimeCategory::kIo);
  state.hierarchy = meta.hierarchy;
  state.my_subgrids.clear();
  int i = 0;
  for (const amr::GridDescriptor& g : meta.hierarchy.grids()) {
    if (g.level == 0) continue;
    int owner = i % comm.size();
    state.hierarchy.grid_mut(g.id).owner = owner;
    if (owner == comm.rank()) {
      amr::Grid grid;
      grid.desc = g;
      grid.desc.owner = owner;
      grid.allocate_fields();
      for (int f = 0; f < amr::kNumBaryonFields; ++f) {
        auto u = static_cast<std::size_t>(f);
        int v = nc.inq_varid(
            subgrid_var_name(g.id, amr::baryon_field_names()[u]));
        nc.get_vara(v, {0, 0, 0}, vec3(g.dims),
                    grid.fields[u].mutable_bytes());
      }
      state.my_subgrids.push_back(std::move(grid));
    }
    ++i;
  }
  nc.close();
}

}  // namespace paramrio::enzo
