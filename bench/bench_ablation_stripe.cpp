// Ablation B — the paper's closing design question for parallel file
// systems: "flexible, application-specific disk file striping and
// distribution patterns".  Sweep the stripe size of the PVFS-like system
// under the ENZO checkpoint workload and report where the fixed-stripe
// design helps or hurts.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main() {
  std::printf(
      "\n== Ablation B — stripe-size sweep (Chiba/PVFS, AMR64, 8 procs) "
      "==\n");
  std::printf("%-12s %12s %12s\n", "stripe", "write[s]", "read[s]");
  for (std::uint64_t stripe :
       {16 * KiB, 64 * KiB, 256 * KiB, MiB, 4 * MiB}) {
    bench::RunSpec spec;
    spec.machine = platform::chiba_pvfs_ethernet();
    spec.machine.striped_fs.stripe_size = stripe;
    spec.config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
    spec.nprocs = 8;
    spec.backend = bench::Backend::kMpiIo;
    bench::IoResult r = bench::run_enzo_io(spec);
    std::printf("%-12llu %12.3f %12.3f\n",
                static_cast<unsigned long long>(stripe / KiB), r.write_time,
                r.read_time);
  }
  std::printf("(stripe column in KiB)\n");
  return 0;
}
