// Ablation A — the value of the paper's I/O strategies, isolated from the
// application: a (Block,Block,Block)-partitioned 3-D array written and read
// through (a) collective two-phase I/O, (b) independent I/O with data
// sieving, and (c) naive independent I/O (one request per noncontiguous
// segment), on the GPFS-like and XFS-like platforms.
//
// This is the design choice DESIGN.md calls out: two-phase turns thousands
// of small strided requests into a few large contiguous ones; data sieving
// trades wasted bytes for fewer requests; naive access drowns in seeks.
#include <cstdio>

#include "amr/blocking.hpp"
#include "harness.hpp"

using namespace paramrio;

namespace {

struct Mode {
  const char* name;
  bool collective;
  bool sieving;
};

double run_mode(const platform::Machine& machine, int nprocs,
                std::uint64_t n, const Mode& mode, bool do_write) {
  platform::Testbed tb(machine, nprocs);
  double elapsed = 0.0;
  tb.runtime().run([&](mpi::Comm& c) {
    mpi::io::Hints hints;
    hints.data_sieving_reads = mode.sieving;
    hints.data_sieving_writes = mode.sieving;
    mpi::io::File f(c, tb.fs(), "array", pfs::OpenMode::kCreate, hints);

    // Partition the middle dimension so every rank's rows interleave in the
    // file (the worst case the paper's optimisations target).
    auto [ys, yc] = amr::block_range(n, c.size(), c.rank());
    f.set_view(0, mpi::Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0},
                                          sizeof(float)));
    std::vector<std::byte> buf(n * yc * n * sizeof(float), std::byte{3});

    c.barrier();
    double t0 = c.proc().now();
    if (do_write) {
      if (mode.collective) {
        f.write_at_all(0, buf);
      } else {
        f.write_at(0, buf);
      }
    } else {
      // Populate first (untimed would need another file; just overwrite the
      // time base instead).
      if (mode.collective) {
        f.write_at_all(0, buf);
      } else {
        f.write_at(0, buf);
      }
      c.barrier();
      tb.fs().drop_caches();
      c.barrier();
      t0 = c.proc().now();
      if (mode.collective) {
        f.read_at_all(0, buf);
      } else {
        f.read_at(0, buf);
      }
    }
    c.barrier();
    if (c.rank() == 0) elapsed = c.proc().now() - t0;
    f.close();
  });
  return elapsed;
}

}  // namespace

int main() {
  const Mode kModes[] = {
      {"two-phase collective", true, true},
      {"independent + sieving", false, true},
      {"independent naive", false, false},
  };
  std::printf(
      "\n== Ablation A — access-strategy comparison, interleaved 3-D "
      "blocks ==\n");
  std::printf("%-22s %-6s %-24s %12s %12s\n", "platform", "N^3", "strategy",
              "write[s]", "read[s]");
  for (auto machine : {platform::origin2000_xfs(), platform::sp2_gpfs()}) {
    for (std::uint64_t n : {64u, 128u}) {
      for (const Mode& m : kModes) {
        double w = run_mode(machine, 16, n, m, /*do_write=*/true);
        double r = run_mode(machine, 16, n, m, /*do_write=*/false);
        std::printf("%-22s %-6llu %-24s %12.3f %12.3f\n",
                    machine.name.c_str(),
                    static_cast<unsigned long long>(n), m.name, w, r);
      }
    }
  }
  std::printf(
      "\nexpected: two-phase <= sieving << naive on both platforms\n");
  return 0;
}
