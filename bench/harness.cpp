#include "harness.hpp"

#include <cstdio>
#include <memory>

#include "enzo/dump_common.hpp"

namespace paramrio::bench {

std::string to_string(Backend b) {
  switch (b) {
    case Backend::kHdf4:
      return "HDF4";
    case Backend::kMpiIo:
      return "MPI-IO";
    case Backend::kHdf5:
      return "HDF5";
    case Backend::kPnetcdf:
      return "PnetCDF";
  }
  throw LogicError("bad Backend");
}

namespace {
std::unique_ptr<enzo::IoBackend> make_backend(const RunSpec& spec,
                                              pfs::FileSystem& fs) {
  switch (spec.backend) {
    case Backend::kHdf4:
      return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case Backend::kMpiIo:
      return std::make_unique<enzo::MpiIoBackend>(fs, spec.hints);
    case Backend::kHdf5: {
      // The MPI-IO hints apply underneath HDF5 too (parallel HDF5 sits on
      // MPI-IO); spec.hints is the single knob for all MPI-IO-based backends.
      hdf5::FileConfig cfg = spec.hdf5_config;
      cfg.io_hints = spec.hints;
      return std::make_unique<enzo::Hdf5ParallelBackend>(fs, cfg);
    }
    case Backend::kPnetcdf:
      return std::make_unique<enzo::PnetcdfBackend>(fs, spec.hints);
  }
  throw LogicError("bad Backend");
}

std::uint64_t dump_payload_bytes(const enzo::SimulationState& s,
                                 std::uint64_t n_particles) {
  std::uint64_t bytes = static_cast<std::uint64_t>(amr::kNumBaryonFields) *
                        s.config.root_cells() * sizeof(float);
  bytes += enzo::particle_payload_bytes(n_particles);
  for (const auto& g : s.hierarchy.grids()) {
    if (g.level == 0) continue;
    bytes += static_cast<std::uint64_t>(amr::kNumBaryonFields) *
             g.cell_count() * sizeof(float);
  }
  return bytes;
}
}  // namespace

IoResult run_enzo_io(const RunSpec& spec) {
  platform::Testbed tb(spec.machine, spec.nprocs);
  IoResult result;

  tb.runtime().run([&](mpi::Comm& c) {
    auto backend = make_backend(spec, tb.fs());
    enzo::EnzoSimulation sim(c, spec.config);
    sim.initialize_from_universe();
    for (int i = 0; i < spec.evolve_cycles; ++i) sim.evolve_cycle();

    std::uint64_t n_particles =
        c.allreduce_sum(sim.state().my_particles.size());

    // ---- timed checkpoint write ----------------------------------------
    c.barrier();
    double t0 = c.proc().now();
    std::uint64_t w0 = c.proc().stats().io_bytes_written;
    backend->write_dump(c, sim.state(), "dump");
    c.barrier();
    double t1 = c.proc().now();
    std::uint64_t dw = c.proc().stats().io_bytes_written - w0;

    // ---- timed restart read ---------------------------------------------
    // (The paper's dominant read path: top-grid partitioned like a new-
    // simulation read, subgrids read whole, round-robin.)  Caches are
    // dropped first: a restart is a new job reading cold data.
    if (c.rank() == 0) tb.fs().drop_caches();
    enzo::EnzoSimulation fresh(c, spec.config);
    c.barrier();
    double t2 = c.proc().now();
    std::uint64_t r0 = c.proc().stats().io_bytes_read;
    backend->read_restart(c, fresh.state(), "dump");
    c.barrier();
    double t3 = c.proc().now();
    std::uint64_t dr = c.proc().stats().io_bytes_read - r0;

    std::uint64_t sum_w = c.allreduce_sum(dw);
    std::uint64_t sum_r = c.allreduce_sum(dr);
    if (c.rank() == 0) {
      result.write_time = t1 - t0;
      result.read_time = t3 - t2;
      result.fs_bytes_written = sum_w;
      result.fs_bytes_read = sum_r;
      result.payload_bytes = dump_payload_bytes(sim.state(), n_particles);
      result.grids = sim.state().hierarchy.grid_count();
    }
  });
  return result;
}

void print_header(const std::string& title, const std::string& note) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("%-22s %-8s %5s %-7s %10s %10s %12s %12s\n", "platform", "size",
              "procs", "io", "read[s]", "write[s]", "read[MB]", "write[MB]");
}

void print_row(const std::string& platform, const std::string& size, int p,
               Backend b, const IoResult& r) {
  std::printf("%-22s %-8s %5d %-7s %10.3f %10.3f %12.2f %12.2f\n",
              platform.c_str(), size.c_str(), p, to_string(b).c_str(),
              r.read_time, r.write_time,
              static_cast<double>(r.fs_bytes_read) / 1.0e6,
              static_cast<double>(r.fs_bytes_written) / 1.0e6);
}

}  // namespace paramrio::bench
