#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "enzo/dump_common.hpp"
#include "obs/registry.hpp"

namespace paramrio::bench {

std::string to_string(Backend b) {
  switch (b) {
    case Backend::kHdf4:
      return "HDF4";
    case Backend::kMpiIo:
      return "MPI-IO";
    case Backend::kHdf5:
      return "HDF5";
    case Backend::kPnetcdf:
      return "PnetCDF";
  }
  throw LogicError("bad Backend");
}

namespace {
std::unique_ptr<enzo::IoBackend> make_backend(const RunSpec& spec,
                                              pfs::FileSystem& fs) {
  switch (spec.backend) {
    case Backend::kHdf4:
      return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case Backend::kMpiIo:
      return std::make_unique<enzo::MpiIoBackend>(fs, spec.hints);
    case Backend::kHdf5: {
      // The MPI-IO hints apply underneath HDF5 too (parallel HDF5 sits on
      // MPI-IO); spec.hints is the single knob for all MPI-IO-based backends.
      hdf5::FileConfig cfg = spec.hdf5_config;
      cfg.io_hints = spec.hints;
      return std::make_unique<enzo::Hdf5ParallelBackend>(fs, cfg);
    }
    case Backend::kPnetcdf:
      return std::make_unique<enzo::PnetcdfBackend>(fs, spec.hints);
  }
  throw LogicError("bad Backend");
}

std::uint64_t dump_payload_bytes(const enzo::SimulationState& s,
                                 std::uint64_t n_particles) {
  std::uint64_t bytes = static_cast<std::uint64_t>(amr::kNumBaryonFields) *
                        s.config.root_cells() * sizeof(float);
  bytes += enzo::particle_payload_bytes(n_particles);
  for (const auto& g : s.hierarchy.grids()) {
    if (g.level == 0) continue;
    bytes += static_cast<std::uint64_t>(amr::kNumBaryonFields) *
             g.cell_count() * sizeof(float);
  }
  return bytes;
}

/// Fold a finished run's engine, file-system, network and trace statistics
/// into the collector's registry ("rankN", "proc", "fs:*", "net", "trace:*").
void absorb_run_stats(obs::Collector& col, const sim::Engine::Result& res,
                      platform::Testbed& tb, const trace::IoTracer* tracer,
                      const fault::Injector* injector) {
  obs::MetricsRegistry& reg = col.registry();
  for (std::size_t r = 0; r < res.stats.size(); ++r) {
    const sim::ProcStats& s = res.stats[r];
    const std::string scope = "rank" + std::to_string(r);
    reg.set_value(scope, "cpu_time", s.cpu_time);
    reg.set_value(scope, "comm_time", s.comm_time);
    reg.set_value(scope, "io_time", s.io_time);
    reg.set_value(scope, "total_time", s.total());
    reg.set(scope, "bytes_sent", s.bytes_sent);
    reg.set(scope, "bytes_received", s.bytes_received);
    reg.set(scope, "messages_sent", s.messages_sent);
    reg.set(scope, "io_bytes_read", s.io_bytes_read);
    reg.set(scope, "io_bytes_written", s.io_bytes_written);
    reg.set(scope, "io_requests", s.io_requests);

    reg.add_value("proc", "cpu_time", s.cpu_time);
    reg.add_value("proc", "comm_time", s.comm_time);
    reg.add_value("proc", "io_time", s.io_time);
    reg.add("proc", "bytes_sent", s.bytes_sent);
    reg.add("proc", "io_bytes_read", s.io_bytes_read);
    reg.add("proc", "io_bytes_written", s.io_bytes_written);
    reg.add("proc", "io_requests", s.io_requests);
  }
  reg.set_value("proc", "makespan", res.makespan);
  tb.fs().export_counters(reg);
  tb.runtime().network().export_counters(reg);
  if (tracer) tracer->export_counters(reg);
  if (injector) injector->export_counters(reg);
  // Detail-mode histograms/timelines fold in as "hist:*" / "timeline:*"
  // scopes; without detail nothing was recorded and nothing is added, so
  // default registries stay byte-identical to pre-detail releases.
  if (col.detail()) col.export_detail();
}
}  // namespace

IoResult run_enzo_io(const RunSpec& spec) {
  platform::Testbed tb(spec.machine, spec.nprocs, spec.sched_seed,
                       spec.engine_backend);
  IoResult result;

  if (spec.tracer) tb.fs().attach_observer(spec.tracer);
  if (spec.injector) {
    tb.fs().attach_fault_hook(spec.injector);
    tb.runtime().network().attach_fault_hook(spec.injector);
  }
  tb.fs().set_retry(spec.fs_retry);
  if (spec.collector) obs::attach(spec.collector);
  if (spec.verifier) verify::attach(spec.verifier);

  sim::Engine::Result engine_result = tb.runtime().run([&](mpi::Comm& c) {
    auto backend = make_backend(spec, tb.fs());
    enzo::EnzoSimulation sim(c, spec.config);
    sim.initialize_from_universe();
    for (int i = 0; i < spec.evolve_cycles; ++i) sim.evolve_cycle();

    std::uint64_t n_particles =
        c.allreduce_sum(sim.state().my_particles.size());

    // ---- timed checkpoint write ----------------------------------------
    c.barrier();
    double t0 = c.proc().now();
    std::uint64_t w0 = c.proc().stats().io_bytes_written;
    {
      OBS_SPAN("dump", sim::TimeCategory::kIo);
      backend->write_dump(c, sim.state(), "dump");
      OBS_SPAN("dump.sync", sim::TimeCategory::kComm);
      c.barrier();
    }
    double t1 = c.proc().now();
    std::uint64_t dw = c.proc().stats().io_bytes_written - w0;

    // ---- timed restart read ---------------------------------------------
    // (The paper's dominant read path: top-grid partitioned like a new-
    // simulation read, subgrids read whole, round-robin.)  Caches are
    // dropped first: a restart is a new job reading cold data.
    if (c.rank() == 0) tb.fs().drop_caches();
    enzo::EnzoSimulation fresh(c, spec.config);
    c.barrier();
    double t2 = c.proc().now();
    std::uint64_t r0 = c.proc().stats().io_bytes_read;
    {
      OBS_SPAN("restart_read", sim::TimeCategory::kIo);
      backend->read_restart(c, fresh.state(), "dump");
      OBS_SPAN("restart_read.sync", sim::TimeCategory::kComm);
      c.barrier();
    }
    double t3 = c.proc().now();
    std::uint64_t dr = c.proc().stats().io_bytes_read - r0;

    std::uint64_t sum_w = c.allreduce_sum(dw);
    std::uint64_t sum_r = c.allreduce_sum(dr);
    if (c.rank() == 0) {
      result.write_time = t1 - t0;
      result.read_time = t3 - t2;
      result.fs_bytes_written = sum_w;
      result.fs_bytes_read = sum_r;
      result.payload_bytes = dump_payload_bytes(sim.state(), n_particles);
      result.grids = sim.state().hierarchy.grid_count();
    }
  });

  if (spec.verifier) {
    if (spec.collector) {
      spec.verifier->report().export_to(spec.collector->registry());
    }
    verify::detach();
  }
  if (spec.collector) {
    absorb_run_stats(*spec.collector, engine_result, tb, spec.tracer,
                     spec.injector);
    obs::detach();
  }
  if (spec.tracer) tb.fs().attach_observer(nullptr);
  if (spec.injector) {
    tb.fs().attach_fault_hook(nullptr);
    tb.runtime().network().attach_fault_hook(nullptr);
  }
  return result;
}

void print_header(const std::string& title, const std::string& note) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("%-22s %-8s %5s %-7s %10s %10s %12s %12s\n", "platform", "size",
              "procs", "io", "read[s]", "write[s]", "read[MB]", "write[MB]");
}

void print_row(const std::string& platform, const std::string& size, int p,
               Backend b, const IoResult& r) {
  std::printf("%-22s %-8s %5d %-7s %10.3f %10.3f %12.2f %12.2f\n",
              platform.c_str(), size.c_str(), p, to_string(b).c_str(),
              r.read_time, r.write_time,
              static_cast<double>(r.fs_bytes_read) / 1.0e6,
              static_cast<double>(r.fs_bytes_written) / 1.0e6);
}

JsonReporter::JsonReporter(std::string bench_name, int argc, char** argv)
    : name_(std::move(bench_name)) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      path_ = argv[i + 1];
      return;
    }
  }
  if (const char* dir = std::getenv("PARAMRIO_BENCH_JSON")) {
    if (*dir != '\0') {
      path_ = std::string(dir) + "/BENCH_" + name_ + ".json";
    }
  }
}

JsonReporter::~JsonReporter() {
  if (enabled() && !written_) write();
}

void JsonReporter::add_row(const std::string& platform,
                           const std::string& size, int nprocs,
                           Backend backend, const IoResult& r) {
  if (!enabled()) return;
  std::ostringstream os;
  os << "    {\n"
     << "      \"platform\": \"" << obs::json_escape(platform) << "\",\n"
     << "      \"size\": \"" << obs::json_escape(size) << "\",\n"
     << "      \"nprocs\": " << nprocs << ",\n"
     << "      \"backend\": \"" << to_string(backend) << "\",\n"
     << "      \"write_time\": " << obs::format_double(r.write_time) << ",\n"
     << "      \"read_time\": " << obs::format_double(r.read_time) << ",\n"
     << "      \"fs_bytes_written\": " << r.fs_bytes_written << ",\n"
     << "      \"fs_bytes_read\": " << r.fs_bytes_read << ",\n"
     << "      \"payload_bytes\": " << r.payload_bytes << ",\n"
     << "      \"grids\": " << r.grids << "\n"
     << "    }";
  rows_.push_back(os.str());
}

void JsonReporter::attach_registry(const obs::MetricsRegistry& reg) {
  if (!enabled() || rows_.empty()) return;
  std::string& row = rows_.back();
  // Replace the closing "\n    }" with a "metrics" member.
  row.erase(row.rfind("\n    }"));
  row += ",\n      \"metrics\": " + reg.to_json(6) + "\n    }";
}

void JsonReporter::write() {
  if (!enabled()) return;
  std::ofstream os(path_);
  PARAMRIO_REQUIRE(os.good(), "cannot open bench JSON output: " + path_);
  os << "{\n  \"bench\": \"" << obs::json_escape(name_) << "\",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  PARAMRIO_REQUIRE(os.good(), "failed writing bench JSON: " + path_);
  written_ = true;
}

}  // namespace paramrio::bench
