// Figure 6 — I/O performance of the ENZO application on SGI Origin2000
// with XFS: original HDF4 (serial, processor-0) I/O vs the optimised
// MPI-IO port, for AMR64 and AMR128 across processor counts.
//
// Paper's qualitative result: MPI-IO is faster than HDF4 for both reads and
// writes, and the advantage grows with the number of processors (the serial
// gather/scatter through processor 0 dominates HDF4's time, while the
// collective I/O path scales).
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main() {
  bench::print_header(
      "Figure 6 — ENZO I/O on SGI Origin2000 / XFS",
      "paper: MPI-IO beats HDF4; gap grows with processor count");

  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128}) {
    for (int p : {4, 8, 16, 32}) {
      bench::IoResult res[2];
      int i = 0;
      for (auto b : {bench::Backend::kHdf4, bench::Backend::kMpiIo}) {
        bench::RunSpec spec;
        spec.machine = platform::origin2000_xfs();
        spec.config = enzo::SimulationConfig::for_size(size);
        spec.nprocs = p;
        spec.backend = b;
        res[i] = bench::run_enzo_io(spec);
        bench::print_row(spec.machine.name, enzo::to_string(size), p, b,
                         res[i]);
        ++i;
      }
      std::printf("    -> MPI-IO speedup over HDF4: read %.2fx, write %.2fx\n",
                  res[0].read_time / res[1].read_time,
                  res[0].write_time / res[1].write_time);
    }
  }
  return 0;
}
