// Figure 6 — I/O performance of the ENZO application on SGI Origin2000
// with XFS: original HDF4 (serial, processor-0) I/O vs the optimised
// MPI-IO port, for AMR64 and AMR128 across processor counts.
//
// Paper's qualitative result: MPI-IO is faster than HDF4 for both reads and
// writes, and the advantage grows with the number of processors (the serial
// gather/scatter through processor 0 dominates HDF4's time, while the
// collective I/O path scales).
//
// Flags: --tiny       one small configuration (CI smoke run)
//        --trace <f>  profile each run, print the phase breakdown, and
//                     write a Chrome/Perfetto trace of the last run to <f>
//        --json <f>   machine-readable results (see bench::JsonReporter)
#include <cstdio>
#include <fstream>
#include <string>

#include "harness.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bool tiny = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--tiny") tiny = true;
    if (a == "--trace" && i + 1 < argc) trace_path = argv[++i];
  }
  bench::JsonReporter json("fig6_origin_xfs", argc, argv);
  obs::Collector col;
  const bool profiling = !trace_path.empty();

  bench::print_header(
      "Figure 6 — ENZO I/O on SGI Origin2000 / XFS",
      "paper: MPI-IO beats HDF4; gap grows with processor count");

  std::vector<enzo::ProblemSize> sizes{enzo::ProblemSize::kAmr64};
  std::vector<int> procs{4};
  if (!tiny) {
    sizes.push_back(enzo::ProblemSize::kAmr128);
    procs = {4, 8, 16, 32};
  }

  for (auto size : sizes) {
    for (int p : procs) {
      bench::IoResult res[2];
      int i = 0;
      for (auto b : {bench::Backend::kHdf4, bench::Backend::kMpiIo}) {
        bench::RunSpec spec;
        spec.machine = platform::origin2000_xfs();
        spec.config = enzo::SimulationConfig::for_size(size);
        spec.nprocs = p;
        spec.backend = b;
        if (profiling) {
          col.clear_events();
          col.registry().clear();
          spec.collector = &col;
        }
        res[i] = bench::run_enzo_io(spec);
        bench::print_row(spec.machine.name, enzo::to_string(size), p, b,
                         res[i]);
        json.add_row(spec.machine.name, enzo::to_string(size), p, b, res[i]);
        if (profiling) {
          json.attach_registry(col.registry());
          std::printf("%s", obs::report_text(obs::build_report(col)).c_str());
        }
        ++i;
      }
      std::printf("    -> MPI-IO speedup over HDF4: read %.2fx, write %.2fx\n",
                  res[0].read_time / res[1].read_time,
                  res[0].write_time / res[1].write_time);
    }
  }

  if (profiling) {
    std::ofstream os(trace_path);
    obs::write_chrome_trace(col, os);
    std::printf("wrote trace of last run to %s\n", trace_path.c_str());
  }
  return 0;
}
