// Ablation — overlapped I/O (Hints::overlap): split-collective baryon-field
// writes, pipelined double-buffered two-phase windows, nonblocking particle
// and subgrid writes, and the restart read prefetcher.
//
// The same ENZO checkpoint dump + restart read runs twice per platform —
// overlap off (the synchronous 2002 baseline) and overlap on — through the
// MPI-IO backend.  Overlap must strictly reduce the dump write time on every
// platform, the dump image must be byte-identical (overlap reorders *time*,
// never *content*), the check::IoChecker audit must stay clean, and the
// overlap-on profile must actually contain concurrent comm and async-io
// spans on aggregator ranks — the mechanism, not just the effect.
//
//   $ ./bench/bench_ablation_overlap            # AMR64, 16 procs
//   $ ./bench/bench_ablation_overlap --tiny     # 16^3, 8 procs (CI smoke)
//   $ ./bench/bench_ablation_overlap --trace f  # Perfetto trace of the last
//                                               # overlap-on run
//   $ ./bench/bench_ablation_overlap --json f   # machine-readable rows
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/io_checker.hpp"
#include "harness.hpp"
#include "obs/registry.hpp"
#include "obs/trace_export.hpp"
#include "pfs/striped_fs.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

namespace {

struct Outcome {
  bench::IoResult io;
  std::uint64_t checksum = 0;
  std::uint64_t checker_errors = 0;
  std::uint64_t checker_warnings = 0;
  std::string report;
  std::uint64_t overlap_windows = 0;
  std::uint64_t prefetch_hits = 0;
  double overlap_saved = 0.0;
  /// Ranks on which an async io span ran concurrently with a sync comm span.
  int concurrent_ranks = 0;
};

/// FNV-1a over every stored object (names and contents; the store iterates
/// in sorted name order, so equal dumps hash equal).
std::uint64_t store_checksum(const stor::ObjectStore& store) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ULL;
    }
  };
  for (const std::string& name : store.list()) {
    mix(name.data(), name.size());
    std::vector<std::byte> bytes(store.size(name));
    store.read_at(name, 0, bytes);
    mix(bytes.data(), bytes.size());
  }
  return h;
}

/// Count ranks whose profile shows an async (in-flight) io span overlapping
/// a synchronous comm span in virtual time — the signature of pipelined
/// two-phase windows on aggregator ranks.
int concurrent_comm_io_ranks(const obs::Collector& col) {
  int n = 0, max_rank = -1;
  for (const obs::SpanRecord& s : col.spans()) max_rank = std::max(max_rank, s.rank);
  for (int r = 0; r <= max_rank; ++r) {
    bool found = false;
    for (const obs::SpanRecord& a : col.spans()) {
      if (a.rank != r || !a.async || a.category != sim::TimeCategory::kIo)
        continue;
      for (const obs::SpanRecord& b : col.spans()) {
        if (b.rank != r || b.async ||
            b.category != sim::TimeCategory::kComm) {
          continue;
        }
        if (a.t_start < b.t_end && b.t_start < a.t_end) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (found) ++n;
  }
  return n;
}

Outcome run_dump(const platform::Machine& machine, bool tiny, bool overlap,
                 obs::Collector* col) {
  const int nprocs = tiny ? 8 : 16;
  platform::Testbed tb(machine, nprocs);

  check::CheckOptions copts;
  copts.label = std::string(machine.name) + (overlap ? " overlap" : " sync");
  if (machine.fs_kind == platform::FsKind::kStriped) {
    copts.stripe_size = machine.striped_fs.stripe_size;
  }
  copts.padding_alignment = 4096;
  check::IoChecker checker(copts);
  tb.fs().attach_observer(&checker);

  mpi::io::Hints hints;
  hints.overlap = overlap;
  // Several windows per collective so the pipeline has something to hide.
  hints.cb_buffer_size = tiny ? 8 * KiB : 256 * KiB;

  enzo::SimulationConfig config;
  if (tiny) {
    config.root_dims = {16, 16, 16};
    config.particles_per_cell = 0.25;
    config.compute_per_cell = 0.0;
  } else {
    config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
  }

  Outcome out;
  if (col) obs::attach(col);
  tb.runtime().run([&](mpi::Comm& comm) {
    enzo::MpiIoBackend backend(tb.fs(), hints);
    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();

    if (comm.rank() == 0) checker.begin_phase("dump");
    comm.barrier();
    double t0 = comm.proc().now();
    std::uint64_t w0 = comm.proc().stats().io_bytes_written;
    backend.write_dump(comm, sim.state(), "dump");
    comm.barrier();
    double t1 = comm.proc().now();
    std::uint64_t dw = comm.allreduce_sum(
        comm.proc().stats().io_bytes_written - w0);

    if (comm.rank() == 0) {
      checker.begin_phase("restart");
      tb.fs().drop_caches();
    }
    enzo::EnzoSimulation fresh(comm, config);
    comm.barrier();
    double t2 = comm.proc().now();
    std::uint64_t r0 = comm.proc().stats().io_bytes_read;
    backend.read_restart(comm, fresh.state(), "dump");
    comm.barrier();
    double t3 = comm.proc().now();
    std::uint64_t dr =
        comm.allreduce_sum(comm.proc().stats().io_bytes_read - r0);
    if (comm.rank() == 0) {
      out.io.write_time = t1 - t0;
      out.io.read_time = t3 - t2;
      out.io.fs_bytes_written = dw;
      out.io.fs_bytes_read = dr;
      out.io.grids = sim.state().hierarchy.grid_count();
    }
  });
  if (col) {
    // Per-File overlap counters land in the registry at close.
    const obs::MetricsRegistry& reg = col->registry();
    for (const auto& [scope, _] : reg.scopes()) {
      if (scope.rfind("file:", 0) != 0) continue;
      out.overlap_windows += reg.get(scope, "overlap_windows");
      out.prefetch_hits += reg.get(scope, "prefetch_hits");
    }
    out.concurrent_ranks = concurrent_comm_io_ranks(*col);
    obs::detach();
  }
  out.checksum = store_checksum(tb.fs().store());
  check::CheckReport report = checker.analyze(&tb.fs().store());
  out.checker_errors = report.errors();
  out.checker_warnings = report.warnings();
  out.report = report.format();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--tiny") tiny = true;
    if (a == "--trace" && i + 1 < argc) trace_path = argv[++i];
  }
  bench::JsonReporter json("ablation_overlap", argc, argv);
  const int nprocs = tiny ? 8 : 16;
  const char* size = tiny ? "16^3 tiny" : "AMR64";

  std::printf("\n== Ablation — overlapped I/O (%s, %d procs) ==\n", size,
              nprocs);
  std::printf("%-22s %-10s %10s %10s %14s %10s %10s\n", "platform", "overlap",
              "write[s]", "read[s]", "ov windows", "pf hits", "conc rks");

  bool ok = true;
  for (const platform::Machine& machine :
       {platform::origin2000_xfs(), platform::sp2_gpfs()}) {
    obs::Collector col;
    Outcome off = run_dump(machine, tiny, /*overlap=*/false, nullptr);
    Outcome on = run_dump(machine, tiny, /*overlap=*/true, &col);

    std::printf("%-22s %-10s %10.3f %10.3f %14s %10s %10s\n",
                machine.name.c_str(), "off", off.io.write_time,
                off.io.read_time, "-", "-", "-");
    std::printf("%-22s %-10s %10.3f %10.3f %14llu %10llu %10d\n",
                machine.name.c_str(), "on", on.io.write_time,
                on.io.read_time,
                static_cast<unsigned long long>(on.overlap_windows),
                static_cast<unsigned long long>(on.prefetch_hits),
                on.concurrent_ranks);
    json.add_row(machine.name, std::string(size) + " off", nprocs,
                 bench::Backend::kMpiIo, off.io);
    json.add_row(machine.name, std::string(size) + " overlap", nprocs,
                 bench::Backend::kMpiIo, on.io);
    json.attach_registry(col.registry());

    if (!(on.io.write_time < off.io.write_time)) {
      std::printf("FAIL: %s: overlap did not reduce dump write time\n",
                  machine.name.c_str());
      ok = false;
    }
    if (on.checksum != off.checksum) {
      std::printf("FAIL: %s: overlap-on dump differs from overlap-off dump\n",
                  machine.name.c_str());
      ok = false;
    }
    if (on.overlap_windows == 0) {
      std::printf("FAIL: %s: no pipelined two-phase windows recorded\n",
                  machine.name.c_str());
      ok = false;
    }
    if (on.prefetch_hits == 0) {
      std::printf("FAIL: %s: restart prefetcher recorded no hits\n",
                  machine.name.c_str());
      ok = false;
    }
    if (on.concurrent_ranks == 0) {
      std::printf(
          "FAIL: %s: no rank shows concurrent comm and async io spans\n",
          machine.name.c_str());
      ok = false;
    }
    for (const Outcome* o : {&off, &on}) {
      if (o->checker_errors != 0 || o->checker_warnings != 0) {
        std::printf("FAIL: %s: checker diagnostics\n%s\n",
                    machine.name.c_str(), o->report.c_str());
        ok = false;
      }
    }
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      obs::write_chrome_trace(col, os);
      std::printf("wrote trace of %s overlap-on run to %s\n",
                  machine.name.c_str(), trace_path.c_str());
    }
  }
  if (ok) {
    std::printf(
        "OK: overlap strictly reduces dump write time at an identical dump "
        "image, with concurrent comm/io spans on aggregator ranks\n");
  }
  return ok ? 0 : 1;
}
