// Stage — the burst-buffer staging tier (docs/STAGING.md; the
// generalization of the paper's Fig 9 node-local configuration).
//
// Two sections:
//
//  1. Dump latency vs destination stripe width, staged on/off: 4 ranks each
//     stream private 512 KiB chunks.  The direct rows move with the stripe
//     count (fewer servers = more contention); the staged rows must be
//     *flat* — the dump path touches only the writer's node-local spindle,
//     so the destination's geometry cannot appear in the write time.  The
//     staged rows carry the sync-drain time in the read_time column: that
//     is where the stripe-width dependence reappears, off the critical dump
//     path.
//
//  2. N-job burst absorption: N identical 4-rank writer jobs share one
//     destination StripedFs.  Direct jobs contend at the shared servers, so
//     the worst dump time grows ~N; staged jobs land on per-node local
//     disks and the dump time stays flat while the (fair-share-deweighted)
//     drains soak up the backlog afterwards.
//
// `--tiny` shrinks both axes for CI; `--json <path>` / PARAMRIO_BENCH_JSON
// emit the rows as BENCH_stage.json (the staging facade's counter registry
// is attached to the final row).  The CI stage-smoke job asserts the
// staged "io=*" rows' write_time spread is zero.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "obs/registry.hpp"
#include "pfs/local_disk_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "stage/staged_fs.hpp"

using namespace paramrio;

namespace {

constexpr std::uint64_t kChunk = 512 * KiB;
constexpr int kRanksPerJob = 4;

pfs::StripedFsParams striped_params(int n_io_nodes) {
  pfs::StripedFsParams sp;
  sp.stripe_size = 64 * KiB;
  sp.n_io_nodes = n_io_nodes;
  return sp;
}

/// One destination-class StripedFs plus a node-local staging tier and the
/// facade over both, sized for `total_ranks` writers.
struct Tiers {
  net::Network net;
  pfs::StripedFs dest;
  pfs::LocalDiskFs staging;
  stage::StagedFs staged;
  Tiers(int total_ranks, int n_io_nodes)
      : net(net::NetworkParams{}, total_ranks, n_io_nodes),
        dest(striped_params(n_io_nodes), net),
        staging(pfs::LocalDiskFsParams{}, total_ranks),
        staged(stage::StagedFsParams{}, staging, dest) {}
};

/// Every rank streams `chunks` private 512 KiB blocks into its own file.
void stream(mpi::Comm& c, pfs::FileSystem& fs, const std::string& file,
            int chunks) {
  std::vector<std::byte> buf(kChunk, std::byte{0x5A});
  const std::string path = file + "." + std::to_string(c.rank());
  int fd = fs.open(path, pfs::OpenMode::kCreate);
  for (int i = 0; i < chunks; ++i) {
    fs.write_at(fd, static_cast<std::uint64_t>(i) * kChunk, buf);
  }
  fs.close(fd);
}

struct DumpTiming {
  double write = 0.0;  ///< barrier-to-barrier write phase
  double drain = 0.0;  ///< barrier-to-barrier sync drain (staged only)
};

/// Single 4-rank job: write phase, then (staged only) a sync drain, each
/// phase barrier-fenced so every rank reads the same clock.
DumpTiming time_dump(int n_io_nodes, bool staged_on, int chunks) {
  Tiers t(kRanksPerJob, n_io_nodes);
  pfs::FileSystem& fs =
      staged_on ? static_cast<pfs::FileSystem&>(t.staged) : t.dest;
  DumpTiming timing;
  mpi::RuntimeParams rp;
  rp.nprocs = kRanksPerJob;
  rp.extra_fabric_nodes = n_io_nodes;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    c.barrier();
    const double t0 = c.proc().now();
    stream(c, fs, "dump", chunks);
    c.barrier();
    const double t1 = c.proc().now();
    if (staged_on) {
      t.staged.drain_mine(stage::DrainPolicy::kSync);
      c.barrier();
    }
    const double t2 = c.proc().now();
    if (c.rank() == 0) {
      timing.write = t1 - t0;
      timing.drain = t2 - t1;
    }
  });
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  bench::JsonReporter json("stage", argc, argv);

  const int chunks = tiny ? 4 : 16;
  const std::uint64_t job_bytes =
      static_cast<std::uint64_t>(kRanksPerJob) * chunks * kChunk;

  // ---- 1: dump latency vs destination stripe width -----------------------
  bench::print_header(
      "Stage — dump latency vs destination stripe width, staged on/off",
      "write col = dump phase; read col = sync drain; staged write rows "
      "must be flat");
  const std::vector<int> widths =
      tiny ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 16};
  for (int w : widths) {
    const std::string size = "io=" + std::to_string(w);
    for (bool staged_on : {false, true}) {
      DumpTiming d = time_dump(w, staged_on, chunks);
      bench::IoResult row;
      row.write_time = d.write;
      row.read_time = d.drain;
      row.fs_bytes_written = job_bytes;
      const std::string machine = staged_on ? "chiba-staged" : "chiba-direct";
      bench::print_row(machine, size, kRanksPerJob, bench::Backend::kMpiIo,
                       row);
      json.add_row(machine, size, kRanksPerJob, bench::Backend::kMpiIo, row);
    }
  }

  // ---- 2: N-job burst absorption -----------------------------------------
  bench::print_header(
      "Stage — N-job checkpoint burst on one shared destination",
      "worst per-job dump time; staged stays flat, direct grows ~N");
  const std::vector<int> job_counts =
      tiny ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  obs::MetricsRegistry last_registry;
  for (int n : job_counts) {
    const std::string size = "jobs=" + std::to_string(n);
    for (bool staged_on : {false, true}) {
      Tiers t(n * kRanksPerJob, /*n_io_nodes=*/4);
      pfs::FileSystem& fs =
          staged_on ? static_cast<pfs::FileSystem&>(t.staged) : t.dest;
      std::vector<double> dump_times(static_cast<std::size_t>(n), 0.0);
      std::vector<mpi::MultiRuntime::Job> jobs;
      for (int j = 0; j < n; ++j) {
        mpi::MultiRuntime::Job job;
        job.name = "w" + std::to_string(j);
        job.params.nprocs = kRanksPerJob;
        job.body = [&fs, &t, &dump_times, j, chunks,
                    staged_on](mpi::Comm& c) {
          c.barrier();
          const double t0 = c.proc().now();
          stream(c, fs, "w" + std::to_string(j), chunks);
          c.barrier();
          if (c.rank() == 0) dump_times[static_cast<std::size_t>(j)] =
              c.proc().now() - t0;
          if (staged_on) {
            t.staged.drain_mine(stage::DrainPolicy::kSync);
            c.barrier();
          }
        };
        jobs.push_back(std::move(job));
      }
      auto res = mpi::MultiRuntime::run(std::move(jobs));
      double worst_dump = 0.0, worst_makespan = 0.0;
      for (double d : dump_times) worst_dump = std::max(worst_dump, d);
      for (const auto& jr : res) {
        worst_makespan = std::max(worst_makespan, jr.result.makespan);
      }
      bench::IoResult row;
      row.write_time = worst_dump;
      row.read_time = worst_makespan;  // dump + drain for the staged rows
      row.fs_bytes_written = static_cast<std::uint64_t>(n) * job_bytes;
      const std::string machine = staged_on ? "burst-staged" : "burst-direct";
      std::printf(
          "%-22s %-8s %2d jobs    worst dump %8.3fs  makespan %8.3fs\n",
          machine.c_str(), size.c_str(), n, worst_dump, worst_makespan);
      json.add_row(machine, size, n * kRanksPerJob, bench::Backend::kMpiIo,
                   row);
      if (staged_on) {
        last_registry.clear();
        t.staged.export_counters(last_registry);
      }
    }
  }
  // Attach the facade's counters (fs:staged scope: staged/drained bytes,
  // segment lifecycle, retry totals) to the final staged row.
  json.attach_registry(last_registry);
  return 0;
}
