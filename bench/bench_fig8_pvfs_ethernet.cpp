// Figure 8 — I/O performance of the ENZO application on the Chiba City
// Linux cluster with PVFS (8 compute nodes, 8 I/O nodes, fast Ethernet).
//
// Paper's qualitative result: the oversubscribed 100 Mbps Ethernet between
// compute and I/O nodes dominates; MPI-IO's extra communication phases
// (two-phase redistribution, particle sort) make its *write* slower than
// HDF4's, while its *read* comes out a little ahead thanks to data sieving
// and caching.  Results improve with the larger problem size (fewer
// repeated small-chunk accesses per byte).
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bench::JsonReporter json("fig8_pvfs_ethernet", argc, argv);
  bench::print_header(
      "Figure 8 — ENZO I/O on Chiba City / PVFS over fast Ethernet",
      "paper: MPI-IO write worse (comm overhead), MPI-IO read a little "
      "better; larger problem relatively better");

  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128}) {
    bench::IoResult res[2];
    int i = 0;
    for (auto b : {bench::Backend::kHdf4, bench::Backend::kMpiIo}) {
      bench::RunSpec spec;
      spec.machine = platform::chiba_pvfs_ethernet();
      spec.config = enzo::SimulationConfig::for_size(size);
      spec.nprocs = 8;
      spec.backend = b;
      res[i] = bench::run_enzo_io(spec);
      bench::print_row(spec.machine.name, enzo::to_string(size), 8, b,
                       res[i]);
      json.add_row(spec.machine.name, enzo::to_string(size), 8, b, res[i]);
      ++i;
    }
    std::printf(
        "    -> MPI-IO vs HDF4: write %.2fx slower, read %.2fx faster\n",
        res[1].write_time / res[0].write_time,
        res[0].read_time / res[1].read_time);
  }
  return 0;
}
