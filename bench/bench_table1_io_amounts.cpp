// Table 1 — "Amount of data read/written by ENZO application with three
// problem sizes" (AMR64 / AMR128 / AMR256).
//
// The table in the available copy of the paper is garbled (cell values lost
// in extraction), so we report the amounts our reproduction generates for
// one new-simulation read and one checkpoint dump, split into application
// payload and actual file-system traffic.  The paper-checkable property is
// the scaling: each size step multiplies the root grid by 8x, so read and
// write amounts must grow by roughly 8x per step.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bench::JsonReporter json("table1_io_amounts", argc, argv);
  bench::print_header(
      "Table 1 — ENZO I/O amounts per problem size",
      "paper: amounts grow ~8x per size step (grid dims double per axis)");

  double prev_read = 0.0;
  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128,
                    enzo::ProblemSize::kAmr256}) {
    bench::RunSpec spec;
    spec.machine = platform::origin2000_xfs();
    spec.config = enzo::SimulationConfig::for_size(size);
    spec.nprocs = 8;
    spec.backend = bench::Backend::kMpiIo;
    spec.evolve_cycles = 0;  // amounts only; no need to move the clumps
    bench::IoResult r = bench::run_enzo_io(spec);
    bench::print_row(spec.machine.name, enzo::to_string(size), spec.nprocs,
                     spec.backend, r);
    json.add_row(spec.machine.name, enzo::to_string(size), spec.nprocs,
                 spec.backend, r);
    std::printf("    payload per dump: %.2f MB over %llu grids",
                static_cast<double>(r.payload_bytes) / 1.0e6,
                static_cast<unsigned long long>(r.grids));
    if (prev_read > 0.0) {
      std::printf("  (read growth x%.2f)",
                  static_cast<double>(r.fs_bytes_read) / prev_read);
    }
    std::printf("\n");
    prev_read = static_cast<double>(r.fs_bytes_read);
  }
  std::printf(
      "\nNote: the paper's printed Table 1 values are not legible in the\n"
      "available text; EXPERIMENTS.md records the scaling check instead.\n");
  return 0;
}
