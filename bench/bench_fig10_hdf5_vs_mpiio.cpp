// Figure 10 — Comparison of I/O write performance for parallel HDF5 vs raw
// MPI-IO on the SGI Origin2000.
//
// Paper's qualitative result: although parallel HDF5 sits on top of MPI-IO
// and uses the same access patterns, its writes are much slower because of
// (1) internal synchronisation in every parallel dataset create/close,
// (2) metadata interleaved with array data (ill alignment),
// (3) recursive hyperslab packing, and
// (4) attributes only writable by processor 0.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bench::JsonReporter json("fig10_hdf5_vs_mpiio", argc, argv);
  bench::print_header(
      "Figure 10 — HDF5 vs MPI-IO write performance (Origin2000 / XFS)",
      "paper: parallel HDF5 writes much slower than raw MPI-IO");

  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128}) {
    for (int p : {4, 8, 16, 32}) {
      bench::IoResult res[2];
      int i = 0;
      for (auto b : {bench::Backend::kMpiIo, bench::Backend::kHdf5}) {
        bench::RunSpec spec;
        spec.machine = platform::origin2000_xfs();
        spec.config = enzo::SimulationConfig::for_size(size);
        spec.nprocs = p;
        spec.backend = b;
        res[i] = bench::run_enzo_io(spec);
        bench::print_row(spec.machine.name, enzo::to_string(size), p, b,
                         res[i]);
        json.add_row(spec.machine.name, enzo::to_string(size), p, b, res[i]);
        ++i;
      }
      std::printf("    -> HDF5 write slowdown vs MPI-IO: %.2fx\n",
                  res[1].write_time / res[0].write_time);
    }
  }
  return 0;
}
