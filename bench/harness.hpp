// Shared measurement harness for the per-figure benches: run the ENZO-style
// application on a simulated platform, time the checkpoint write and the
// new-simulation read for a chosen I/O backend, and report byte counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "fault/fault.hpp"
#include "hdf5/h5_file.hpp"
#include "obs/profiler.hpp"
#include "platform/machine.hpp"
#include "trace/io_tracer.hpp"
#include "verify/verify.hpp"

namespace paramrio::bench {

enum class Backend { kHdf4, kMpiIo, kHdf5, kPnetcdf };

std::string to_string(Backend b);

struct IoResult {
  double write_time = 0.0;  ///< virtual seconds, barrier-to-barrier
  double read_time = 0.0;
  std::uint64_t fs_bytes_written = 0;  ///< bytes the file system moved
  std::uint64_t fs_bytes_read = 0;
  std::uint64_t payload_bytes = 0;     ///< application data per dump
  std::uint64_t grids = 0;             ///< grids in the dumped hierarchy
};

struct RunSpec {
  platform::Machine machine;
  enzo::SimulationConfig config;
  int nprocs = 8;
  Backend backend = Backend::kMpiIo;
  hdf5::FileConfig hdf5_config;  ///< overhead toggles for the HDF5 backend
  mpi::io::Hints hints;          ///< MPI-IO hints (collective buffer etc.)
  int evolve_cycles = 1;         ///< cycles before the dump (moves clumps)

  /// Optional cross-layer profiler: attached for the duration of the run;
  /// the dump sits in a depth-0 "dump" span (the restart read in
  /// "restart_read") and the run's engine / file-system / network / trace
  /// statistics are folded into its registry afterwards.
  obs::Collector* collector = nullptr;
  /// Optional per-request tracer, attached to the testbed file system.
  trace::IoTracer* tracer = nullptr;

  /// Optional fault injector: attached to the testbed's file system and
  /// network for the duration of the run; when a collector is present its
  /// counters are folded into the registry under scope "fault".  Pair with
  /// hints.retry (MPI-IO-based backends) and/or fs_retry (direct-fs paths:
  /// the HDF4 backend, hierarchy files) to measure fault survival.
  fault::Injector* injector = nullptr;
  /// File-system-level retry policy installed on the testbed fs.
  fault::RetryPolicy fs_retry;

  /// Optional MPI-semantics verifier: attached (as both the mpi hook target
  /// and the engine run observer) for the duration of the run.  Inspect
  /// verifier->report() afterwards; when a collector is present the report
  /// is also exported into its registry under scope "verify" (nonzero
  /// counts only, so clean runs stay byte-identical).
  verify::Verifier* verifier = nullptr;
  /// Scheduler tie-shuffle seed (sim::Engine::Options::perturb_seed): 0
  /// keeps the classic lowest-rank order; any nonzero value executes the
  /// run under a different — equally legal — interleaving, for the
  /// schedule-perturbation differential harness.
  std::uint64_t sched_seed = 0;
  /// Engine scheduler backend (fibers vs threads); kAuto resolves via
  /// sim::Engine::Options::effective_backend().  The two backends produce
  /// byte-identical runs — tests/test_scale.cpp holds them to it.
  sim::SchedBackend engine_backend = sim::SchedBackend::kAuto;
};

/// Execute: initialise from the universe, evolve, timed checkpoint write,
/// then a timed new-simulation read of that dump into a fresh state.
IoResult run_enzo_io(const RunSpec& spec);

/// Pretty row printer used by the figure benches.
void print_header(const std::string& title, const std::string& note);
void print_row(const std::string& platform, const std::string& size, int p,
               Backend b, const IoResult& r);

/// Machine-readable bench output (one JSON document per bench binary).
///
/// Activated either by `--json <path>` on the bench command line (exact
/// output file) or by the PARAMRIO_BENCH_JSON environment variable naming a
/// directory, in which case the file is `<dir>/BENCH_<name>.json`.  When
/// neither is present the reporter is inert.  The document is written by
/// `write()` or, failing that, the destructor.
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, int argc, char** argv);
  ~JsonReporter();

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Record one measurement row (mirrors print_row).
  void add_row(const std::string& platform, const std::string& size,
               int nprocs, Backend backend, const IoResult& r);
  /// Attach a metrics-registry snapshot to the most recent row.
  void attach_registry(const obs::MetricsRegistry& reg);

  void write();

 private:
  std::string name_;
  std::string path_;
  std::vector<std::string> rows_;  ///< pre-serialised JSON objects
  bool written_ = false;
};

}  // namespace paramrio::bench
