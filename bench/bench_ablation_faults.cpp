// Ablation — fault survival: the retrying I/O stack vs the bare one under
// ~1% transient I/O errors.
//
// Three ENZO checkpoint dumps on the Origin2000/XFS configuration, MPI-IO
// backend:
//
//   clean          — no faults injected (baseline image and write time)
//   faulted+retry  — 1% of data operations throw a retryable EIO; the
//                    File-level and fs-level retry loops (exponential
//                    virtual-clock backoff) absorb every one
//   faulted        — same seed, same faults, retrying disabled
//
// Success means the retrying run converges to the *byte-identical* dump the
// clean run produced (FNV-1a over the whole object store) while the bare run
// dies on the first injected error — retrying is load-bearing, not
// decorative.  The bench exits non-zero when any of that fails, and emits a
// JSON artifact (--json <path> or PARAMRIO_BENCH_JSON) carrying the metrics
// registry of each run: injected-fault counters, per-File retry counters,
// and backoff time.
//
//   $ ./bench/bench_ablation_faults          # AMR64, 8 procs
//   $ ./bench/bench_ablation_faults --tiny   # 16^3, 4 procs (CI smoke)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "fault/fault.hpp"
#include "harness.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

namespace {

struct Outcome {
  bool survived = true;
  std::string error;
  double write_time = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t injected = 0;      ///< faults the injector fired
  std::uint64_t file_retries = 0;  ///< mpi::io::File re-attempts
  std::uint64_t fs_retries = 0;    ///< pfs-level re-attempts
};

/// FNV-1a over every stored object (names and contents; the store iterates
/// in sorted name order, so equal dumps hash equal).
std::uint64_t store_checksum(const stor::ObjectStore& store) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ULL;
    }
  };
  for (const std::string& name : store.list()) {
    mix(name.data(), name.size());
    std::vector<std::byte> bytes(store.size(name));
    store.read_at(name, 0, bytes);
    mix(bytes.data(), bytes.size());
  }
  return h;
}

/// First registry scope with the given prefix, or "" when absent.
std::string scope_with_prefix(const obs::MetricsRegistry& reg,
                              const std::string& prefix) {
  for (const auto& [scope, _] : reg.scopes()) {
    if (scope.rfind(prefix, 0) == 0) return scope;
  }
  return {};
}

Outcome run_dump(bool tiny, const std::string& mode, bool inject, bool retry,
                 bench::JsonReporter& json) {
  platform::Machine machine = platform::origin2000_xfs();
  const int nprocs = tiny ? 4 : 8;
  platform::Testbed tb(machine, nprocs);

  fault::FaultPlan plan;
  // Seed chosen so the ~145-op tiny stream still draws a few faults; the
  // full AMR64 stream fires plenty for any seed.
  plan.seed = 5;
  fault::FaultSpec eio;
  eio.kind = fault::FaultKind::kTransientError;
  eio.probability = 0.01;
  eio.max_consecutive = 4;
  plan.specs.push_back(eio);
  fault::Injector inj(plan);
  if (inject) tb.fs().attach_fault_hook(&inj);

  mpi::io::Hints hints;
  fault::RetryPolicy fs_retry;
  if (retry) {
    hints.retry.max_retries = 10;
    fs_retry.max_retries = 10;  // hierarchy files talk to the fs directly
  }
  tb.fs().set_retry(fs_retry);

  obs::Collector col;
  obs::attach(&col);

  Outcome out;
  try {
    tb.runtime().run([&](mpi::Comm& comm) {
      enzo::MpiIoBackend backend(tb.fs(), hints);
      enzo::SimulationConfig config;
      if (tiny) {
        config.root_dims = {16, 16, 16};
        config.particles_per_cell = 0.25;
        config.compute_per_cell = 0.0;
      } else {
        config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
      }
      enzo::EnzoSimulation sim(comm, config);
      sim.initialize_from_universe();
      sim.evolve_cycle();

      comm.barrier();
      double t0 = comm.proc().now();
      backend.write_dump(comm, sim.state(), "dump");
      comm.barrier();
      if (comm.rank() == 0) out.write_time = comm.proc().now() - t0;
    });
  } catch (const TransientIoError& e) {
    out.survived = false;
    out.error = e.what();
  }
  obs::detach();

  obs::MetricsRegistry& reg = col.registry();
  tb.fs().export_counters(reg);
  inj.export_counters(reg);
  out.injected = inj.counters().injected_total();
  std::string file_scope = scope_with_prefix(reg, "file:dump.enzo|");
  if (!file_scope.empty()) out.file_retries = reg.get(file_scope, "io_retries");
  std::string fs_scope = scope_with_prefix(reg, "fs:");
  if (!fs_scope.empty()) out.fs_retries = reg.get(fs_scope, "retries");
  out.checksum = store_checksum(tb.fs().store());

  bench::IoResult row;
  row.write_time = out.write_time;
  json.add_row(machine.name, mode, nprocs, bench::Backend::kMpiIo, row);
  json.attach_registry(reg);
  return out;
}

void print_outcome(const char* mode, const Outcome& o) {
  if (o.survived) {
    std::printf("%-16s %10.3f %10llu %8llu %8llu  %018llx\n", mode,
                o.write_time, static_cast<unsigned long long>(o.injected),
                static_cast<unsigned long long>(o.file_retries),
                static_cast<unsigned long long>(o.fs_retries),
                static_cast<unsigned long long>(o.checksum));
  } else {
    std::printf("%-16s %10s %10llu %8s %8s  died: %s\n", mode, "-",
                static_cast<unsigned long long>(o.injected), "-", "-",
                o.error.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  bench::JsonReporter json("ablation_faults", argc, argv);

  std::printf("\n== Ablation — retrying I/O under 1%% transient EIO (%s, %d "
              "procs, MPI-IO) ==\n",
              tiny ? "16^3 tiny" : "AMR64", tiny ? 4 : 8);
  Outcome clean = run_dump(tiny, "clean", false, true, json);
  Outcome with_retry = run_dump(tiny, "faulted+retry", true, true, json);
  Outcome bare = run_dump(tiny, "faulted", true, false, json);

  std::printf("%-16s %10s %10s %8s %8s  %s\n", "mode", "write[s]", "injected",
              "retries", "fs-rtry", "dump checksum");
  print_outcome("clean", clean);
  print_outcome("faulted+retry", with_retry);
  print_outcome("faulted", bare);

  bool ok = true;
  if (!clean.survived || !with_retry.survived) {
    std::printf("FAIL: a run that should survive did not\n");
    ok = false;
  }
  if (with_retry.injected == 0) {
    std::printf("FAIL: the faulted runs injected nothing\n");
    ok = false;
  }
  if (with_retry.file_retries + with_retry.fs_retries == 0) {
    std::printf("FAIL: the retrying run performed no retries\n");
    ok = false;
  }
  if (with_retry.checksum != clean.checksum) {
    std::printf("FAIL: retried dump differs from the clean dump\n");
    ok = false;
  }
  if (bare.survived) {
    std::printf("FAIL: the non-retrying run survived injected faults\n");
    ok = false;
  }
  if (ok) {
    std::printf("OK: retries absorbed %llu injected faults into a "
                "byte-identical dump; without them the dump dies\n",
                static_cast<unsigned long long>(with_retry.injected));
  }
  json.write();
  return ok ? 0 : 1;
}
