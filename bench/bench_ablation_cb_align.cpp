// Ablation — the Figure-7 repair: stripe-aligned collective-buffering file
// domains on the GPFS-like SP-2 configuration.
//
// The paper's Figure 7 shows MPI-IO checkpoint writes *losing* to serial
// HDF4 on SP-2/GPFS: classic two-phase file domains are equal byte shares of
// the aggregate hull, so aggregator windows straddle the 256 KiB stripes,
// every straddled stripe is hit by two servers' worth of requests, and the
// shared stripes ping-pong GPFS's byte-range write token between
// aggregators.  The repair (ROMIO's later layout-aware file domains) asks
// the file system for its Layout and hands each I/O server's stripes to a
// single aggregator.
//
// This bench runs the same ENZO checkpoint dump twice — cb_align = 1
// (unaligned 2002 baseline) vs cb_align = auto (layout-aware) — and
// compares StripedFs::total_server_requests(), write-token transfers, and
// the dump checksum, with a check::IoChecker attached.  It exits non-zero
// when the aligned run fails to reduce both counters, when the checksums
// diverge, or when the checker reports any error or warning.
//
//   $ ./bench/bench_ablation_cb_align          # AMR64, 16 procs
//   $ ./bench/bench_ablation_cb_align --tiny   # 16^3, 8 procs (CI smoke)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "pfs/striped_fs.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

namespace {

struct Outcome {
  double write_time = 0;
  std::uint64_t server_requests = 0;
  std::uint64_t token_transfers = 0;
  std::uint64_t checksum = 0;
  std::uint64_t checker_errors = 0;
  std::uint64_t checker_warnings = 0;
  std::string report;
};

/// FNV-1a over every stored object (names and contents; the store iterates
/// in sorted name order, so equal dumps hash equal).
std::uint64_t store_checksum(const stor::ObjectStore& store) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ULL;
    }
  };
  for (const std::string& name : store.list()) {
    mix(name.data(), name.size());
    std::vector<std::byte> bytes(store.size(name));
    store.read_at(name, 0, bytes);
    mix(bytes.data(), bytes.size());
  }
  return h;
}

Outcome run_dump(bool tiny, std::uint64_t cb_align) {
  platform::Machine machine = platform::sp2_gpfs();
  const int nprocs = tiny ? 8 : 16;
  platform::Testbed tb(machine, nprocs);
  auto* gpfs = dynamic_cast<pfs::StripedFs*>(&tb.fs());
  PARAMRIO_REQUIRE(gpfs != nullptr, "sp2_gpfs must build a StripedFs");

  check::CheckOptions copts;
  copts.label = std::string("mpi-io dump, cb_align=") +
                (cb_align == mpi::io::Hints::kCbAlignAuto
                     ? "auto"
                     : std::to_string(cb_align));
  copts.stripe_size = machine.striped_fs.stripe_size;
  copts.padding_alignment = 4096;
  check::IoChecker checker(copts);
  tb.fs().attach_observer(&checker);

  mpi::io::Hints hints;
  hints.cb_align = cb_align;

  Outcome out;
  tb.runtime().run([&](mpi::Comm& comm) {
    enzo::MpiIoBackend backend(tb.fs(), hints);
    enzo::SimulationConfig config;
    if (tiny) {
      config.root_dims = {16, 16, 16};
      config.particles_per_cell = 0.25;
      config.compute_per_cell = 0.0;
    } else {
      config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
    }
    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();

    if (comm.rank() == 0) checker.begin_phase("dump");
    comm.barrier();
    double t0 = comm.proc().now();
    backend.write_dump(comm, sim.state(), "dump");
    comm.barrier();
    if (comm.rank() == 0) out.write_time = comm.proc().now() - t0;
  });

  out.server_requests = gpfs->total_server_requests();
  out.token_transfers = gpfs->write_token_transfers();
  out.checksum = store_checksum(tb.fs().store());
  check::CheckReport report = checker.analyze(&tb.fs().store());
  out.checker_errors = report.errors();
  out.checker_warnings = report.warnings();
  out.report = report.format();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  std::printf("\n== Ablation — cb_align on %s (%s, %d procs) ==\n",
              "IBM-SP/GPFS", tiny ? "16^3 tiny" : "AMR64",
              tiny ? 8 : 16);
  Outcome baseline = run_dump(tiny, 1);
  Outcome aligned = run_dump(tiny, mpi::io::Hints::kCbAlignAuto);

  std::printf("%-16s %10s %14s %14s %18s\n", "cb_align", "write[s]",
              "server reqs", "token xfers", "dump checksum");
  std::printf("%-16s %10.3f %14llu %14llu %018llx\n", "1 (unaligned)",
              baseline.write_time,
              static_cast<unsigned long long>(baseline.server_requests),
              static_cast<unsigned long long>(baseline.token_transfers),
              static_cast<unsigned long long>(baseline.checksum));
  std::printf("%-16s %10.3f %14llu %14llu %018llx\n", "auto (layout)",
              aligned.write_time,
              static_cast<unsigned long long>(aligned.server_requests),
              static_cast<unsigned long long>(aligned.token_transfers),
              static_cast<unsigned long long>(aligned.checksum));

  bool ok = true;
  if (aligned.checksum != baseline.checksum) {
    std::printf("FAIL: aligned dump differs from baseline dump\n");
    ok = false;
  }
  if (aligned.server_requests >= baseline.server_requests) {
    std::printf("FAIL: aligned domains did not reduce server requests\n");
    ok = false;
  }
  if (aligned.token_transfers >= baseline.token_transfers) {
    std::printf("FAIL: aligned domains did not reduce token transfers\n");
    ok = false;
  }
  for (const Outcome* o : {&baseline, &aligned}) {
    if (o->checker_errors != 0 || o->checker_warnings != 0) {
      std::printf("FAIL: checker diagnostics\n%s\n", o->report.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf(
        "OK: stripe-aligned file domains cut server requests and write-token "
        "transfers at an identical dump image\n");
  }
  return ok ? 0 : 1;
}
