// Microbenchmarks (google-benchmark) for the hot substrate primitives:
// datatype flattening, view-stream mapping, hyperslab run enumeration,
// particle (de)serialisation and sorting, refinement clustering, and the
// synthetic universe's field evaluation.  These are host-time benchmarks —
// they measure the reproduction's own code, not virtual platform time.
#include <benchmark/benchmark.h>

#include "amr/particles_par.hpp"
#include "amr/refine.hpp"
#include "amr/universe.hpp"
#include "hdf5/dataspace.hpp"
#include "mpi/datatype.hpp"
#include "net/network.hpp"
#include "pfs/local_disk_fs.hpp"
#include "pfs/striped_fs.hpp"

namespace {

using namespace paramrio;

void BM_SubarrayFlatten(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto t = mpi::Datatype::subarray({n, n, n}, {n / 2, n / 2, n / 2},
                                     {n / 4, n / 4, n / 4}, 4);
    benchmark::DoNotOptimize(t.segments().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n / 4));
}
BENCHMARK(BM_SubarrayFlatten)->Arg(32)->Arg(64)->Arg(128);

void BM_MapStream(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  auto t = mpi::Datatype::subarray({n, n, n}, {n / 2, n / 2, n / 2},
                                   {n / 4, n / 4, n / 4}, 4);
  std::vector<mpi::Segment> out;
  for (auto _ : state) {
    out.clear();
    t.map_stream(0, t.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MapStream)->Arg(32)->Arg(64)->Arg(128);

void BM_HyperslabRuns(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  hdf5::Dataspace s({n, n, n});
  s.select_block({1, 1, 1}, {n - 2, n - 2, n - 2});
  for (auto _ : state) {
    std::uint64_t steps = s.for_each_run([](const hdf5::Dataspace::Run&) {});
    benchmark::DoNotOptimize(steps);
  }
}
BENCHMARK(BM_HyperslabRuns)->Arg(32)->Arg(64)->Arg(128);

void BM_ParticlePackUnpack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  amr::ParticleSet p;
  p.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.id[i] = static_cast<std::int64_t>(i * 31 % n);
    p.pos[0][i] = 0.5;
  }
  for (auto _ : state) {
    auto bytes = amr::pack_particles(p);
    amr::ParticleSet q;
    amr::unpack_particles(bytes, q);
    benchmark::DoNotOptimize(q.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * amr::ParticleSet::bytes_per_particle()));
}
BENCHMARK(BM_ParticlePackUnpack)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_LocalSortById(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  amr::ParticleSet base;
  base.resize(n);
  Rng rng(9);
  for (std::size_t i = 0; i < n; ++i) {
    base.id[i] = static_cast<std::int64_t>(rng.next_u64() % (4 * n));
  }
  for (auto _ : state) {
    amr::ParticleSet p = base;
    amr::local_sort_by_id(p);
    benchmark::DoNotOptimize(p.id.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalSortById)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_UniverseFillFields(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  amr::Universe u(7, 12);
  amr::Grid g;
  g.desc.dims = {n, n, n};
  for (auto _ : state) {
    u.fill_fields(g, 0.5);
    benchmark::DoNotOptimize(g.fields[0].data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_UniverseFillFields)->Arg(16)->Arg(32)->Arg(64);

void BM_ClusterFlags(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  amr::Universe u(7, 12);
  amr::Grid g;
  g.desc.dims = {n, n, n};
  u.fill_fields(g, 0.5);
  auto flags = amr::flag_overdense(g.fields[0], 3.2);
  amr::RefineParams rp;
  for (auto _ : state) {
    auto boxes = amr::cluster_flags(flags, rp);
    benchmark::DoNotOptimize(boxes.data());
  }
}
BENCHMARK(BM_ClusterFlags)->Arg(32)->Arg(64);

// ---- pfs interval bookkeeping ---------------------------------------------
// Host-time cost of the file systems' per-request range bookkeeping (write
// tokens, ownership maps, buffer-cache intervals) under an AMR256-scale
// stream of small strided writes.  Before the merged-run/coalescing fixes
// these structures grew one node per stripe or per request, so the walk in
// every subsequent request made the whole sweep quadratic; now they stay at
// one node per contiguous region and the curves below are ~linear.

void BM_StripedFsTokenStream(benchmark::State& state) {
  const auto requests = static_cast<int>(state.range(0));
  constexpr std::uint64_t kChunk = 64 * KiB;
  pfs::StripedFsParams fp;
  fp.write_lock_cost = ms(1);  // exercise the token-owner map
  net::NetworkParams np;
  for (auto _ : state) {
    net::Network net(np, 1, fp.n_io_nodes);
    pfs::StripedFs fs(fp, net);
    sim::Engine::Options o;
    o.nprocs = 1;
    sim::Engine::run(o, [&](sim::Proc&) {
      std::vector<std::byte> buf(kChunk);
      int fd = fs.open("stream", pfs::OpenMode::kCreate);
      for (int i = 0; i < requests; ++i) {
        fs.write_at(fd, static_cast<std::uint64_t>(i) * kChunk, buf);
      }
      fs.close(fd);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          requests);
}
BENCHMARK(BM_StripedFsTokenStream)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_LocalDiskOwnershipStream(benchmark::State& state) {
  const auto requests = static_cast<int>(state.range(0));
  constexpr std::uint64_t kChunk = 64 * KiB;
  for (auto _ : state) {
    pfs::LocalDiskFs fs(pfs::LocalDiskFsParams{}, /*nprocs=*/1);
    sim::Engine::Options o;
    o.nprocs = 1;
    sim::Engine::run(o, [&](sim::Proc&) {
      std::vector<std::byte> buf(kChunk);
      int fd = fs.open("stream", pfs::OpenMode::kCreate);
      for (int i = 0; i < requests; ++i) {
        const auto off = static_cast<std::uint64_t>(i) * kChunk;
        fs.write_at(fd, off, buf);
        fs.read_at(fd, off, buf);  // ownership walk + page-cache intervals
      }
      fs.close(fd);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          requests);
}
BENCHMARK(BM_LocalDiskOwnershipStream)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
