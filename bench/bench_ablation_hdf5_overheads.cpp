// Ablation C — decomposition of the four HDF5 overhead sources the paper
// identifies (Section 4.5).  Each toggle removes one source; the row delta
// attributes the Figure-10 slowdown to its causes.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

namespace {
double hdf5_write_time(const hdf5::FileConfig& cfg) {
  bench::RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
  spec.nprocs = 16;
  spec.backend = bench::Backend::kHdf5;
  spec.hdf5_config = cfg;
  return bench::run_enzo_io(spec).write_time;
}
}  // namespace

int main() {
  std::printf(
      "\n== Ablation C — HDF5 overhead decomposition (Origin2000, AMR64, "
      "16 procs, write) ==\n");
  std::printf("%-44s %12s\n", "configuration", "write[s]");

  hdf5::FileConfig base;  // all overheads on: the 2002 release behaviour
  double t_base = hdf5_write_time(base);
  std::printf("%-44s %12.3f\n", "all overheads (2002 release)", t_base);

  {
    hdf5::FileConfig c = base;
    c.metadata_sync = false;
    std::printf("%-44s %12.3f\n", "- dataset create/close synchronisation",
                hdf5_write_time(c));
  }
  {
    hdf5::FileConfig c = base;
    c.alignment = 256 * KiB;  // H5Pset_alignment: data on stripe boundaries
    std::printf("%-44s %12.3f\n", "- misalignment (256 KiB alignment)",
                hdf5_write_time(c));
  }
  {
    hdf5::FileConfig c = base;
    c.recursive_pack = false;
    std::printf("%-44s %12.3f\n", "- recursive hyperslab packing",
                hdf5_write_time(c));
  }
  {
    hdf5::FileConfig c = base;
    c.rank0_attributes = false;
    std::printf("%-44s %12.3f\n", "- rank-0-only attributes",
                hdf5_write_time(c));
  }
  {
    hdf5::FileConfig c = base;
    c.metadata_sync = false;
    c.alignment = 256 * KiB;
    c.recursive_pack = false;
    c.rank0_attributes = false;
    double t = hdf5_write_time(c);
    std::printf("%-44s %12.3f\n", "all four removed", t);
    std::printf("\nremaining gap to raw MPI-IO is the container format's "
                "metadata traffic itself\n");
  }
  return 0;
}
