// Scale — the rank-scalability wall and multi-job tenancy (docs/SCALING.md).
//
// Three sections:
//
//  1. Rank weak-scaling: one job, 64 root cells per rank, ranks growing
//     64 -> 4096 (the fiber engine's whole point: the one-OS-thread-per-rank
//     engine could not represent 4096 ranks in one process at all).  HDF4
//     serial I/O — the gatherv is O(P) messages, so the curve isolates the
//     simulator's own scaling from the model's quadratic alltoallv costs.
//
//  2. Job weak-scaling: N identical 4-rank jobs (N = 1, 2, 4) sharing one
//     striped file system on one storage fabric.  Equal fair-share weights:
//     each job's makespan should grow roughly with N while no job starves.
//
//  3. N-writers-vs-M-readers matrix: writer jobs stream checkpoints out
//     while reader jobs stream pre-seeded dumps back in, all on the shared
//     file system — the cross-job interference surface a tenant actually
//     cares about ("how much slower is my restart while N others dump?").
//
// `--tiny` shrinks every axis for CI; `--json <path>` / PARAMRIO_BENCH_JSON
// emit the rows as BENCH_scale_tenancy.json (sections 2-3, plus the shared
// fs's per-job counter scopes attached to the final matrix row) and
// BENCH_scale_ranks.json (section 1, env-dir activation only).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "obs/registry.hpp"
#include "obs/trace_export.hpp"
#include "pfs/striped_fs.hpp"

using namespace paramrio;

namespace {

constexpr std::uint64_t kChunk = 512 * KiB;  // spans all 8 default stripes

struct Tenancy {
  net::Network net;
  pfs::StripedFs fs;
  explicit Tenancy(int total_ranks)
      : net(net::NetworkParams{}, total_ranks,
            pfs::StripedFsParams{}.n_io_nodes),
        fs(pfs::StripedFsParams{}, net) {}
};

/// Every rank streams `chunks` private 512 KiB blocks out (or back in).
void stream(mpi::Comm& c, pfs::FileSystem& fs, const std::string& file,
            int chunks, bool write) {
  std::vector<std::byte> buf(kChunk, std::byte{0x5A});
  const std::string path = file + "." + std::to_string(c.rank());
  int fd = fs.open(path, write ? pfs::OpenMode::kCreate : pfs::OpenMode::kRead);
  for (int i = 0; i < chunks; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * kChunk;
    if (write) {
      fs.write_at(fd, off, buf);
    } else {
      fs.read_at(fd, off, buf);
    }
  }
  fs.close(fd);
  c.barrier();
}

/// Seed the files a reader job will stream in, untimed (the dump it restarts
/// from was written by an earlier run).
void seed_dump(stor::ObjectStore& store, const std::string& file, int ranks,
               int chunks) {
  std::vector<std::byte> buf(kChunk, std::byte{0x5A});
  for (int r = 0; r < ranks; ++r) {
    const std::string path = file + "." + std::to_string(r);
    store.create(path);
    for (int i = 0; i < chunks; ++i) {
      store.write_at(path, static_cast<std::uint64_t>(i) * kChunk, buf);
    }
  }
}

mpi::MultiRuntime::Job make_job(const std::string& name, int ranks,
                                pfs::FileSystem& fs, int chunks, bool write) {
  mpi::MultiRuntime::Job job;
  job.name = name;
  job.params.nprocs = ranks;
  job.body = [&fs, name, chunks, write](mpi::Comm& c) {
    stream(c, fs, name, chunks, write);
  };
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
    }
  }
  // --json names one file; it goes to the tenancy document (the contention
  // bench proper).  The ranks curve activates via PARAMRIO_BENCH_JSON only.
  bench::JsonReporter json_ranks("scale_ranks", 0, nullptr);
  bench::JsonReporter json_tenancy("scale_tenancy", argc, argv);

  // ---- 1: rank weak-scaling, 64 root cells per rank ----------------------
  bench::print_header(
      "Scale — rank weak-scaling (fiber engine, HDF4 dump+restart)",
      "64 root cells per rank; the thread-per-rank engine topped out near "
      "1k ranks");
  const std::vector<std::pair<int, int>> rank_points =
      tiny ? std::vector<std::pair<int, int>>{{8, 8}, {64, 16}}
           : std::vector<std::pair<int, int>>{{64, 16}, {512, 32}, {4096, 64}};
  for (auto [p, side] : rank_points) {
    bench::RunSpec spec;
    spec.machine = platform::chiba_pvfs_ethernet();
    spec.config.root_dims = {static_cast<std::uint64_t>(side),
                             static_cast<std::uint64_t>(side),
                             static_cast<std::uint64_t>(side)};
    spec.config.particles_per_cell = 0.0;
    spec.config.n_clumps = 4;
    spec.config.refine.min_box = 2;
    spec.config.compute_per_cell = 0.0;
    spec.nprocs = p;
    spec.backend = bench::Backend::kHdf4;
    spec.evolve_cycles = 0;
    bench::IoResult res = bench::run_enzo_io(spec);
    const std::string size = "P=" + std::to_string(p);
    bench::print_row(spec.machine.name, size, p, spec.backend, res);
    json_ranks.add_row(spec.machine.name, size, p, spec.backend, res);
  }

  // ---- 2: job weak-scaling on one shared striped fs ----------------------
  bench::print_header(
      "Scale — N equal jobs sharing one striped file system",
      "4 ranks/job, equal fair-share weights; makespan should grow ~N, "
      "no job starved");
  const int ranks_per_job = 4;
  const int chunks = tiny ? 4 : 16;
  const std::vector<int> job_counts = tiny ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4};
  for (int n : job_counts) {
    Tenancy t(n * ranks_per_job);
    std::vector<mpi::MultiRuntime::Job> jobs;
    for (int j = 0; j < n; ++j) {
      jobs.push_back(make_job("w" + std::to_string(j), ranks_per_job, t.fs,
                              chunks, /*write=*/true));
    }
    auto res = mpi::MultiRuntime::run(std::move(jobs));
    double worst = 0.0, best = 0.0;
    for (const auto& jr : res) {
      worst = std::max(worst, jr.result.makespan);
      best = best == 0.0 ? jr.result.makespan
                         : std::min(best, jr.result.makespan);
    }
    bench::IoResult row;
    row.write_time = worst;
    row.fs_bytes_written = static_cast<std::uint64_t>(n) * ranks_per_job *
                           chunks * kChunk;
    const std::string size = "jobs=" + std::to_string(n);
    std::printf("%-22s %-8s %5d writers    worst %8.3fs  best %8.3fs\n",
                "shared-pvfs", size.c_str(), n, worst, best);
    json_tenancy.add_row("shared-pvfs", size, n * ranks_per_job,
                         bench::Backend::kHdf4, row);
  }

  // ---- 3: N writers vs M readers -----------------------------------------
  bench::print_header(
      "Scale — N checkpoint writers vs M restart readers, shared fs",
      "per-cell: writer / reader makespan (virtual s)");
  const std::vector<int> ns = tiny ? std::vector<int>{1, 2}
                                   : std::vector<int>{1, 2, 4};
  obs::MetricsRegistry last_registry;
  for (int n : ns) {
    for (int m : ns) {
      Tenancy t((n + m) * ranks_per_job);
      for (int j = 0; j < m; ++j) {
        seed_dump(t.fs.store(), "r" + std::to_string(j), ranks_per_job,
                  chunks);
      }
      std::vector<mpi::MultiRuntime::Job> jobs;
      for (int j = 0; j < n; ++j) {
        jobs.push_back(make_job("w" + std::to_string(j), ranks_per_job, t.fs,
                                chunks, /*write=*/true));
      }
      for (int j = 0; j < m; ++j) {
        jobs.push_back(make_job("r" + std::to_string(j), ranks_per_job, t.fs,
                                chunks, /*write=*/false));
      }
      auto res = mpi::MultiRuntime::run(std::move(jobs));
      double write_makespan = 0.0, read_makespan = 0.0;
      for (int j = 0; j < n; ++j) {
        write_makespan = std::max(write_makespan, res[j].result.makespan);
      }
      for (int j = 0; j < m; ++j) {
        read_makespan =
            std::max(read_makespan, res[n + j].result.makespan);
      }
      bench::IoResult row;
      row.write_time = write_makespan;
      row.read_time = read_makespan;
      row.fs_bytes_written =
          static_cast<std::uint64_t>(n) * ranks_per_job * chunks * kChunk;
      row.fs_bytes_read =
          static_cast<std::uint64_t>(m) * ranks_per_job * chunks * kChunk;
      const std::string size =
          "w" + std::to_string(n) + "r" + std::to_string(m);
      std::printf("%-22s %-8s %2d writers %2d readers   %8.3f / %8.3f\n",
                  "shared-pvfs", size.c_str(), n, m, write_makespan,
                  read_makespan);
      json_tenancy.add_row("shared-pvfs", size, (n + m) * ranks_per_job,
                           bench::Backend::kHdf4, row);
      last_registry.clear();
      t.fs.export_counters(last_registry);
    }
  }
  // Attach the shared fs's counters (including the per-job "|job:" scopes —
  // only present on genuinely multi-tenant runs) to the final matrix row.
  json_tenancy.attach_registry(last_registry);

  // ---- 4 (--trace): Perfetto export + seed-invariance of integer tracks --
  // A detail-mode 1-writer-vs-1-reader run per sched seed {0, 1, 2}: tied
  // arbitration may shift *when* a gauge is sampled, but never what each
  // entity observes in program order, so the integer counter tracks' value
  // sequences must match exactly.  The seed-0 run's trace (rank spans +
  // "entities" gauge tracks) is written to the given path.
  if (!trace_path.empty()) {
    bench::print_header(
        "Scale — detail trace + integer-track seed invariance",
        "1 writer vs 1 reader job, gauges on; seeds {0,1,2} must agree");
    std::string ref_fingerprint;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      obs::Collector col;
      col.set_detail(true);
      Tenancy t(2 * ranks_per_job);
      seed_dump(t.fs.store(), "tr", ranks_per_job, chunks);
      std::vector<mpi::MultiRuntime::Job> jobs;
      jobs.push_back(
          make_job("tw", ranks_per_job, t.fs, chunks, /*write=*/true));
      jobs.push_back(
          make_job("tr", ranks_per_job, t.fs, chunks, /*write=*/false));
      jobs[0].params.perturb_seed = seed;
      obs::attach(&col);
      mpi::MultiRuntime::run(std::move(jobs));
      obs::detach();
      const std::string fp = col.timeline().integer_fingerprint();
      PARAMRIO_REQUIRE(!fp.empty(),
                       "bench_scale --trace: no integer gauge tracks");
      if (seed == 0) {
        ref_fingerprint = fp;
        std::ofstream os(trace_path);
        obs::write_chrome_trace(col, os);
        PARAMRIO_REQUIRE(os.good(), "bench_scale --trace: cannot write " +
                                        trace_path);
        std::printf("%-22s seed 0: %llu gauge points -> %s\n", "shared-pvfs",
                    static_cast<unsigned long long>(col.timeline().points()),
                    trace_path.c_str());
      } else {
        PARAMRIO_REQUIRE(fp == ref_fingerprint,
                         "integer counter tracks diverge under sched seed " +
                             std::to_string(seed));
        std::printf("%-22s seed %llu: integer tracks byte-identical\n",
                    "shared-pvfs", static_cast<unsigned long long>(seed));
      }
    }
  }
  return 0;
}
