// Ablation E — two-stage write-behind buffering for independent writes
// (Liao, Ching, Coloma, Choudhary & Kandemir's follow-up method, applied to
// this paper's workload): the ENZO subgrid dumps issue many small
// independent writes; buffering coalesces them into few large requests.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main() {
  std::printf(
      "\n== Ablation E — write-behind buffering for independent writes ==\n");
  std::printf("(ENZO checkpoint, MPI-IO backend; wb buffer applied to the "
              "shared dump file)\n\n");
  std::printf("%-22s %-8s %12s %14s\n", "platform", "size", "wb buffer",
              "write[s]");
  for (auto machine : {platform::sp2_gpfs(), platform::chiba_pvfs_ethernet()}) {
    for (std::uint64_t wb : {std::uint64_t{0}, 4 * MiB}) {
      bench::RunSpec spec;
      spec.machine = machine;
      spec.config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
      spec.nprocs = machine.net.procs_per_node > 1 ? 32 : 8;
      spec.backend = bench::Backend::kMpiIo;
      spec.hints.wb_buffer_size = wb;
      bench::IoResult r = bench::run_enzo_io(spec);
      std::printf("%-22s %-8s %9llu KiB %14.3f\n", machine.name.c_str(),
                  "AMR64", static_cast<unsigned long long>(wb / KiB),
                  r.write_time);
    }
  }
  std::printf("\nexpected: buffering cuts the small-request tail of the "
              "subgrid writes\n");
  return 0;
}
