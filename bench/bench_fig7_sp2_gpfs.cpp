// Figure 7 — I/O performance of the ENZO application on an IBM SP-2 with
// GPFS (SMP nodes, 4 tasks per node).
//
// Paper's qualitative result: the optimised parallel MPI-IO performs WORSE
// than the original HDF4 serial I/O here — the many small per-processor
// chunks mismatch GPFS's large fixed stripes, chunks from one processor
// span several I/O nodes while several processors pile onto one I/O node,
// and concurrent requests from the CPUs of one SMP node queue on the node's
// shared I/O path.  The penalty shrinks for the larger problem at higher
// processor counts (AMR128 @ 64), where requests are big enough to amortise
// the per-request costs.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bench::JsonReporter json("fig7_sp2_gpfs", argc, argv);
  bench::print_header(
      "Figure 7 — ENZO I/O on IBM SP-2 / GPFS",
      "paper: MPI-IO loses to HDF4 (stripe mismatch + SMP I/O queues); "
      "penalty shrinks for larger problem");

  double ratio_small = 0.0, ratio_large = 0.0;
  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128}) {
    for (int p : {32, 64}) {
      bench::IoResult res[2];
      int i = 0;
      for (auto b : {bench::Backend::kHdf4, bench::Backend::kMpiIo}) {
        bench::RunSpec spec;
        spec.machine = platform::sp2_gpfs();
        spec.config = enzo::SimulationConfig::for_size(size);
        spec.nprocs = p;
        spec.backend = b;
        res[i] = bench::run_enzo_io(spec);
        bench::print_row(spec.machine.name, enzo::to_string(size), p, b,
                         res[i]);
        json.add_row(spec.machine.name, enzo::to_string(size), p, b, res[i]);
        ++i;
      }
      double slowdown = res[1].write_time / res[0].write_time;
      std::printf("    -> MPI-IO write slowdown vs HDF4: %.2fx\n", slowdown);
      if (size == enzo::ProblemSize::kAmr64 && p == 64) {
        ratio_small = slowdown;
      }
      if (size == enzo::ProblemSize::kAmr128 && p == 64) {
        ratio_large = slowdown;
      }
    }
  }
  std::printf(
      "\nmeliorated for larger problem: slowdown %.2fx (AMR64@64) -> %.2fx "
      "(AMR128@64)\n",
      ratio_small, ratio_large);
  return 0;
}
