// Query — aggregate read throughput of the query/extract service
// (docs/QUERY.md; the read-path counterpart of the paper's write-side
// optimizations, serving "the output files ... used either for restarting a
// resumed simulation or for visualization").
//
// Two sections:
//
//  1. Aggregate throughput vs concurrent readers, shared cache on/off, on
//     both Chiba City fabrics.  Every reader pulls the same hot region
//     (full root density + centre z-slice) plus a private sub-volume and a
//     particle ID range.  With the cache, the hot region costs one physical
//     fetch set no matter how many readers pile on — aggregate throughput
//     keeps scaling; uncached, every reader pays its own PVFS round trips
//     and the servers saturate.  The cache/no-cache ratio at the top reader
//     count is printed per platform (the CI gate asserts cache >= no-cache
//     aggregate throughput on the tiny matrix).
//
//  2. Backend matrix at a fixed reader count: the same query set answered
//     from dumps written by all four backends — read-path cost is a
//     property of the *layout*, and the index flattens all four.
//
// `--tiny` shrinks both axes for CI; `--json <path>` / PARAMRIO_BENCH_JSON
// emit BENCH_query.json.  The final row carries the service's counter
// registry plus the query latency histograms (hist:query.extract et al.,
// detail-mode export) — the obs-blame schema gate reads them.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "enzo/checkpoint.hpp"
#include "harness.hpp"
#include "mdms/catalog.hpp"
#include "obs/registry.hpp"
#include "query/service.hpp"

using namespace paramrio;

namespace {

std::unique_ptr<enzo::IoBackend> make_backend(bench::Backend b,
                                              pfs::FileSystem& fs) {
  switch (b) {
    case bench::Backend::kHdf4:
      return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case bench::Backend::kMpiIo:
      return std::make_unique<enzo::MpiIoBackend>(fs, mpi::io::Hints{});
    case bench::Backend::kHdf5:
      return std::make_unique<enzo::Hdf5ParallelBackend>(fs,
                                                         hdf5::FileConfig{});
    case bench::Backend::kPnetcdf:
      return std::make_unique<enzo::PnetcdfBackend>(fs, mpi::io::Hints{});
  }
  throw LogicError("bad backend");
}

struct SessionResult {
  double dump_time = 0.0;  ///< collective dump, barrier-to-barrier
  double read_time = 0.0;  ///< query phase makespan, barrier-to-barrier
  std::uint64_t payload = 0;  ///< bytes returned to the readers
  std::uint64_t fetched = 0;  ///< bytes physically read by the service
  std::uint64_t grids = 0;

  double throughput_mbs() const {
    return read_time > 0.0
               ? static_cast<double>(payload) / 1.0e6 / read_time
               : 0.0;
  }
};

/// One session: N ranks dump one generation collectively, caches drop, then
/// every rank turns reader and issues the query mix concurrently.  When
/// `registry` is given, the service counters and the detail-mode latency
/// histograms (hist:query.*) are exported into it.
SessionResult run_session(const platform::Machine& machine, int readers,
                          bench::Backend backend, bool cache_on,
                          std::uint64_t root_n,
                          obs::MetricsRegistry* registry) {
  platform::Testbed tb(machine, readers);

  enzo::SimulationConfig config;
  config.root_dims = {root_n, root_n, root_n};
  config.particles_per_cell = 0.25;
  config.n_clumps = 4;
  config.compute_per_cell = 0.0;

  query::Service::Params qp;
  qp.hints.ds_buffer_size = 64 * KiB;  // one PVFS stripe per sieve block
  qp.cache_enabled = cache_on;
  query::Service svc(tb.fs(), "qbench", qp);

  obs::Collector collector;
  collector.set_detail(true);  // latency histograms for the schema gate
  obs::attach(&collector);

  SessionResult res;
  tb.runtime().run([&](mpi::Comm& c) {
    auto be = make_backend(backend, tb.fs());
    enzo::EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    enzo::CheckpointSeries series(*be, tb.fs(), "qbench");
    c.barrier();
    const double t0 = c.proc().now();
    series.dump(c, sim.state(), 0);
    c.barrier();
    const double t1 = c.proc().now();
    if (c.rank() == 0) {
      tb.fs().drop_caches();  // readers start cold
      res.dump_time = t1 - t0;
    }
    c.barrier();

    const query::GenerationIndex& ix = svc.open_generation(0);
    c.barrier();
    const double t2 = c.proc().now();
    const std::uint64_t n = root_n;
    const std::uint64_t r = static_cast<std::uint64_t>(c.rank());

    // The hot region every reader wants: full density + centre z-slice.
    svc.extract(0, {0, "density", {0, 0, 0}, {n, n, n}});
    svc.extract(0, {0, "density", {n / 2, 0, 0}, {1, n, n}});
    // A private sub-volume (distinct per reader modulo 4 slabs).
    svc.extract(0, {0, "total_energy",
                    {(r % 4) * (n / 4), 0, 0},
                    {n / 4, n, n}});
    // A particle window and the dump metadata.
    const std::uint64_t stride =
        (ix.id_max - ix.id_min) / static_cast<std::uint64_t>(readers) + 1;
    svc.particles(0, ix.id_min + r * stride,
                  ix.id_min + r * stride + stride - 1);
    svc.metadata(0);
    c.barrier();
    if (c.rank() == 0) {
      res.read_time = c.proc().now() - t2;
      res.grids = ix.meta.hierarchy.grid_count();
    }
  });
  obs::detach();

  res.payload = svc.payload_bytes();
  res.fetched = svc.fetched_bytes();
  if (registry != nullptr) {
    collector.export_detail();
    *registry = collector.registry();
    svc.export_counters(*registry);
  }
  return res;
}

void print_query_row(const std::string& machine, int readers, bool cache_on,
                     const SessionResult& r) {
  std::printf("%-24s %-9s readers=%-4d dump %8.3fs  read %8.3fs  "
              "%8.1f MB/s agg  (%.1f MB served, %.1f MB fetched)\n",
              machine.c_str(), cache_on ? "cache" : "no-cache", readers,
              r.dump_time, r.read_time, r.throughput_mbs(),
              static_cast<double>(r.payload) / 1.0e6,
              static_cast<double>(r.fetched) / 1.0e6);
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  bench::JsonReporter json("query", argc, argv);

  const std::uint64_t root_n = tiny ? 16 : 32;
  const std::vector<int> reader_counts =
      tiny ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16, 64};

  // ---- 1: aggregate throughput vs readers, cache on/off ------------------
  bench::print_header(
      "Query — aggregate read throughput vs concurrent readers",
      "hot region shared by all readers; cache collapses N fetches to 1");
  const platform::Machine platforms[] = {platform::chiba_pvfs_ethernet(),
                                         platform::chiba_pvfs_myrinet()};
  for (const platform::Machine& m : platforms) {
    double top_cached = 0.0, top_uncached = 0.0;
    for (int readers : reader_counts) {
      for (bool cache_on : {false, true}) {
        SessionResult r = run_session(m, readers, bench::Backend::kHdf5,
                                      cache_on, root_n, nullptr);
        print_query_row(m.name, readers, cache_on, r);
        bench::IoResult row;
        row.write_time = r.dump_time;
        row.read_time = r.read_time;
        row.fs_bytes_read = r.fetched;
        row.payload_bytes = r.payload;
        row.grids = r.grids;
        json.add_row(m.name + (cache_on ? "+cache" : "+nocache"),
                     "readers=" + std::to_string(readers), readers,
                     bench::Backend::kHdf5, row);
        if (readers == reader_counts.back()) {
          (cache_on ? top_cached : top_uncached) = r.throughput_mbs();
        }
      }
    }
    std::printf("  -> %s: cache/no-cache aggregate ratio at %d readers: "
                "%.2fx\n",
                m.name.c_str(), reader_counts.back(),
                top_uncached > 0.0 ? top_cached / top_uncached : 0.0);
  }

  // ---- 2: backend matrix at a fixed reader count -------------------------
  bench::print_header(
      "Query — backend matrix (same query set, four dump layouts)",
      "read-path cost is a property of the layout; the index flattens all");
  const int matrix_readers = tiny ? 4 : 16;
  const platform::Machine eth = platform::chiba_pvfs_ethernet();
  obs::MetricsRegistry last_registry;
  const bench::Backend kinds[] = {bench::Backend::kHdf4,
                                  bench::Backend::kMpiIo,
                                  bench::Backend::kHdf5,
                                  bench::Backend::kPnetcdf};
  for (std::size_t i = 0; i < 4; ++i) {
    const bool last = i == 3;
    SessionResult r = run_session(eth, matrix_readers, kinds[i], true,
                                  root_n, last ? &last_registry : nullptr);
    bench::IoResult row;
    row.write_time = r.dump_time;
    row.read_time = r.read_time;
    row.fs_bytes_read = r.fetched;
    row.payload_bytes = r.payload;
    row.grids = r.grids;
    bench::print_row(eth.name, "readers=" + std::to_string(matrix_readers),
                     matrix_readers, kinds[i], row);
    json.add_row(eth.name, "readers=" + std::to_string(matrix_readers),
                 matrix_readers, kinds[i], row);
  }
  // The final row carries the service counters ("query" scope) and the
  // latency histograms ("hist:query.extract" et al.) for the schema gate.
  json.attach_registry(last_registry);
  return 0;
}
