// Figure 9 — I/O performance on Chiba City with each compute node accessing
// its local disk through the PVFS interface.
//
// Paper's qualitative result: with the slow Ethernet removed from the data
// path, MPI-IO has much better overall performance than HDF4 serial I/O and
// scales well with the number of processors (every rank streams to its own
// spindle; HDF4 still funnels everything through processor 0's one disk).
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bench::JsonReporter json("fig9_pvfs_localdisk", argc, argv);
  bench::print_header(
      "Figure 9 — ENZO I/O on Chiba City / PVFS interface to local disks",
      "paper: MPI-IO much faster than HDF4 and scales with processors");

  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128}) {
    double first_mpiio_write = 0.0;
    for (int p : {2, 4, 8}) {
      bench::IoResult res[2];
      int i = 0;
      for (auto b : {bench::Backend::kHdf4, bench::Backend::kMpiIo}) {
        bench::RunSpec spec;
        spec.machine = platform::chiba_local_disk();
        spec.config = enzo::SimulationConfig::for_size(size);
        spec.nprocs = p;
        spec.backend = b;
        res[i] = bench::run_enzo_io(spec);
        bench::print_row(spec.machine.name, enzo::to_string(size), p, b,
                         res[i]);
        json.add_row(spec.machine.name, enzo::to_string(size), p, b, res[i]);
        ++i;
      }
      std::printf("    -> MPI-IO speedup over HDF4: write %.2fx, read %.2fx\n",
                  res[0].write_time / res[1].write_time,
                  res[0].read_time / res[1].read_time);
      if (p == 2) first_mpiio_write = res[1].write_time;
      if (p == 8 && first_mpiio_write > 0.0) {
        std::printf("    -> MPI-IO write scaling 2->8 procs: %.2fx\n",
                    first_mpiio_write / res[1].write_time);
      }
    }
  }
  return 0;
}
