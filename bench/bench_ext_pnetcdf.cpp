// Extension experiment — the paper's lineage, closed.
//
// The conclusions call for an I/O system built on the collected metadata and
// better-matched file formats; the authors' actual next step was Parallel
// netCDF (SC 2003), whose design removes the four HDF5 overheads this paper
// measures.  This bench runs the same checkpoint workload through raw
// MPI-IO, parallel HDF5, and the PnetCDF-analogue on the Origin2000 model:
// the expected result (and the SC 2003 paper's headline) is that PnetCDF
// tracks raw MPI-IO while HDF5 trails far behind.
#include <cstdio>

#include "harness.hpp"

using namespace paramrio;

int main() {
  bench::print_header(
      "Extension — PnetCDF-analogue vs HDF5 vs raw MPI-IO (Origin2000)",
      "expected: PnetCDF ~ MPI-IO; HDF5 several times slower (its four "
      "overheads removed by design)");

  for (auto size : {enzo::ProblemSize::kAmr64, enzo::ProblemSize::kAmr128}) {
    for (int p : {8, 16}) {
      double mpiio_write = 0;
      for (auto b : {bench::Backend::kMpiIo, bench::Backend::kPnetcdf,
                     bench::Backend::kHdf5}) {
        bench::RunSpec spec;
        spec.machine = platform::origin2000_xfs();
        spec.config = enzo::SimulationConfig::for_size(size);
        spec.nprocs = p;
        spec.backend = b;
        bench::IoResult r = bench::run_enzo_io(spec);
        bench::print_row(spec.machine.name, enzo::to_string(size), p, b, r);
        if (b == bench::Backend::kMpiIo) mpiio_write = r.write_time;
        if (b == bench::Backend::kPnetcdf) {
          std::printf("    -> PnetCDF write overhead vs raw MPI-IO: %+.0f%%\n",
                      (r.write_time / mpiio_write - 1.0) * 100.0);
        }
        if (b == bench::Backend::kHdf5) {
          std::printf("    -> HDF5 write slowdown vs raw MPI-IO: %.2fx\n",
                      r.write_time / mpiio_write);
        }
      }
    }
  }
  return 0;
}
