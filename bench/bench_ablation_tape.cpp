// Ablation D — the paper's tertiary-storage argument for single-file dumps
// (Section 3.3): migrating a checkpoint to tape and retrieving it, single
// shared file (MPI-IO layout) vs one file per grid (original HDF4 layout).
#include <cstdio>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "harness.hpp"
#include "stor/tape.hpp"

using namespace paramrio;

int main() {
  std::printf(
      "\n== Ablation D — tape migration/retrieval: one shared file vs one "
      "file per grid ==\n");
  std::printf("(paper 3.3: a single file gives contiguous tertiary storage "
              "and optimal retrieval)\n\n");

  platform::Machine machine = platform::origin2000_xfs();
  platform::Testbed tb(machine, 8);
  enzo::SimulationConfig config =
      enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);

  double shared_mig = 0, shared_ret = 0, multi_mig = 0, multi_ret = 0;
  std::size_t multi_files = 0;

  tb.runtime().run([&](mpi::Comm& c) {
    enzo::EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    enzo::MpiIoBackend(tb.fs()).write_dump(c, sim.state(), "shared");
    enzo::Hdf4SerialBackend(tb.fs()).write_dump(c, sim.state(), "multi");
    if (c.rank() != 0) return;

    // The shared-file dump is one object; the HDF4 dump is topgrid + one
    // file per subgrid.
    std::vector<std::string> shared_set = {"shared.enzo"};
    std::vector<std::string> multi_set;
    for (const std::string& name : tb.fs().store().list()) {
      if (name.rfind("multi.", 0) == 0) multi_set.push_back(name);
    }
    multi_files = multi_set.size();

    stor::TapeArchive tape_a{stor::TapeParams{}};
    shared_mig = tape_a.migrate(tb.fs(), shared_set);
    shared_ret = tape_a.retrieve(tb.fs(), shared_set);

    stor::TapeArchive tape_b{stor::TapeParams{}};
    multi_mig = tape_b.migrate(tb.fs(), multi_set);
    multi_ret = tape_b.retrieve(tb.fs(), multi_set);
  });

  std::printf("%-28s %10s %12s\n", "layout", "migrate[s]", "retrieve[s]");
  std::printf("%-28s %10.1f %12.1f\n", "single shared file", shared_mig,
              shared_ret);
  std::printf("one file per grid (%3zu files) %7.1f %12.1f\n", multi_files,
              multi_mig, multi_ret);
  std::printf("\nretrieval advantage of the single file: %.1fx\n",
              multi_ret / shared_ret);
  return 0;
}
