// Deeper application tests: multi-level refinement hierarchies, partitioning
// of subgrids smaller than the processor grid, and cross-backend byte
// accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <numeric>

#include "amr/particles_par.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "enzo/dump_inspect.hpp"
#include "enzo/hierarchy_file.hpp"
#include "enzo/simulation.hpp"
#include "pfs/local_fs.hpp"

namespace paramrio::enzo {
namespace {

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

TEST(DeepHierarchy, TwoRefinementLevelsFormAndRoundTrip) {
  SimulationConfig config;
  config.root_dims = {32, 32, 32};
  config.particles_per_cell = 0.125;
  config.refine.max_level = 2;
  config.refine.threshold = 2.5;
  config.refine.min_box = 2;
  config.compute_per_cell = 0.0;

  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(4));
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    const auto& h = sim.state().hierarchy;
    EXPECT_GE(h.max_level(), 2) << "clumps must trigger level-2 refinement";
    // Level-2 grids nest inside level-1 parents.
    for (auto id : h.level_grids(2)) {
      const auto& g = h.grid(id);
      const auto& parent = h.grid(g.parent);
      EXPECT_EQ(parent.level, 1);
      for (int d = 0; d < 3; ++d) {
        auto u = static_cast<std::size_t>(d);
        EXPECT_GE(g.left_edge[u], parent.left_edge[u] - 1e-12);
        EXPECT_LE(g.right_edge[u], parent.right_edge[u] + 1e-12);
      }
      // Twice the parent's resolution.
      EXPECT_NEAR(g.cell_width(0), parent.cell_width(0) / 2.0, 1e-12);
    }

    // Deep hierarchies must survive a dump/restart round-trip too.
    MpiIoBackend backend(fs);
    backend.write_dump(c, sim.state(), "deep");
    EnzoSimulation fresh(c, config);
    backend.read_restart(c, fresh.state(), "deep");
    EXPECT_EQ(fresh.state().hierarchy.grid_count(), h.grid_count());
    EXPECT_EQ(fresh.state().hierarchy.max_level(), h.max_level());
    EXPECT_EQ(fresh.state().my_fields, sim.state().my_fields);
  });
}

TEST(BoundedPieces, SubgridsSmallerThanProcGridPartitionConservatively) {
  // P = 16 on a 16^3 root: proc grid (4,2,2); refinement boxes can be only
  // 2 cells thick in z, so they split over fewer than 16 ranks.
  SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.particles_per_cell = 0.25;
  config.refine.threshold = 3.0;
  config.refine.min_box = 2;
  config.compute_per_cell = 0.0;

  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(16));
  std::vector<std::uint64_t> piece_cells(16, 0);
  std::uint64_t stored_subgrid_cells = 0;
  rt.run([&](mpi::Comm& c) {
    MpiIoBackend backend(fs);
    EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    backend.write_dump(c, sim.state(), "bounded");
    if (c.rank() == 0) {
      stored_subgrid_cells = sim.state().hierarchy.total_cells() -
                             config.root_cells();
    }

    EnzoSimulation fresh(c, config);
    backend.read_initial(c, fresh.state(), "bounded");
    std::uint64_t mine = 0;
    for (const auto& g : fresh.state().my_subgrids) {
      mine += g.desc.cell_count();
      // Piece data matches the analytic truth.
      amr::Grid expect;
      expect.desc = g.desc;
      sim.universe().fill_fields(expect, fresh.state().time);
      EXPECT_EQ(g.fields[0], expect.fields[0]);
    }
    piece_cells[static_cast<std::size_t>(c.rank())] = mine;

    // Verify at least one grid actually required a bounded split.
    bool any_bounded = false;
    for (const auto& g : sim.state().hierarchy.grids()) {
      if (g.level == 0) continue;
      if (piece_count(bounded_proc_grid(g, 16)) < 16) any_bounded = true;
    }
    EXPECT_TRUE(any_bounded)
        << "test premise: some subgrid must be smaller than the proc grid";
  });
  // Conservation: the pieces tile the stored subgrids exactly.
  std::uint64_t total =
      std::accumulate(piece_cells.begin(), piece_cells.end(), 0ull);
  EXPECT_EQ(total, stored_subgrid_cells);
}

TEST(ByteAccounting, BackendsWriteTheSamePayloadWithinOverheads) {
  SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.particles_per_cell = 0.25;
  config.compute_per_cell = 0.0;

  auto bytes_written = [&](int which) {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(4));
    std::uint64_t total = 0;
    rt.run([&](mpi::Comm& c) {
      std::unique_ptr<IoBackend> b;
      if (which == 0) b = std::make_unique<Hdf4SerialBackend>(fs);
      if (which == 1) b = std::make_unique<MpiIoBackend>(fs);
      if (which == 2) b = std::make_unique<Hdf5ParallelBackend>(fs);
      EnzoSimulation sim(c, config);
      sim.initialize_from_universe();
      b->write_dump(c, sim.state(), "acct");
      std::uint64_t sum =
          c.allreduce_sum(c.proc().stats().io_bytes_written);
      if (c.rank() == 0) total = sum;
    });
    return total;
  };

  std::uint64_t h4 = bytes_written(0);
  std::uint64_t mio = bytes_written(1);
  std::uint64_t h5 = bytes_written(2);
  // Identical payload; formats differ only in metadata overhead (< 8%).
  EXPECT_NEAR(static_cast<double>(h4), static_cast<double>(mio),
              0.08 * static_cast<double>(mio));
  EXPECT_NEAR(static_cast<double>(h5), static_cast<double>(mio),
              0.08 * static_cast<double>(mio));
}

TEST(ByteAccounting, DumpPayloadScalesWithRootGrid) {
  auto payload = [&](std::uint64_t n) {
    SimulationConfig config;
    config.root_dims = {n, n, n};
    config.particles_per_cell = 0.25;
    config.compute_per_cell = 0.0;
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(2));
    std::uint64_t total = 0;
    rt.run([&](mpi::Comm& c) {
      MpiIoBackend b(fs);
      EnzoSimulation sim(c, config);
      sim.initialize_from_universe();
      b.write_dump(c, sim.state(), "scale");
      std::uint64_t sum = c.allreduce_sum(c.proc().stats().io_bytes_written);
      if (c.rank() == 0) total = sum;
    });
    return static_cast<double>(total);
  };
  double p16 = payload(16);
  double p32 = payload(32);
  // Doubling each axis multiplies the payload by ~8 (the Table 1 check).
  EXPECT_GT(p32 / p16, 5.0);
  EXPECT_LT(p32 / p16, 12.0);
}


TEST(DumpInspector, SummarisesAllThreeFormats) {
  SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.particles_per_cell = 0.25;
  config.compute_per_cell = 0.0;

  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(4));
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    Hdf4SerialBackend(fs).write_dump(c, sim.state(), "da");
    MpiIoBackend(fs).write_dump(c, sim.state(), "db");
    Hdf5ParallelBackend(fs).write_dump(c, sim.state(), "dc");
    if (c.rank() != 0) return;

    auto a = inspect_dump(fs, "da");
    auto b = inspect_dump(fs, "db");
    auto d = inspect_dump(fs, "dc");
    EXPECT_EQ(a.format, DumpFormat::kHdf4);
    EXPECT_EQ(b.format, DumpFormat::kMpiIo);
    EXPECT_EQ(d.format, DumpFormat::kHdf5);
    // Same simulation state: identical logical contents.
    EXPECT_EQ(a.meta.n_particles, b.meta.n_particles);
    EXPECT_EQ(b.meta.n_particles, d.meta.n_particles);
    EXPECT_EQ(a.meta.hierarchy.grid_count(), b.meta.hierarchy.grid_count());
    EXPECT_EQ(a.datasets, b.datasets);  // same dataset schema
    EXPECT_EQ(b.datasets, d.datasets);
    // HDF4 splits into one file per subgrid; the others are single files.
    EXPECT_EQ(a.files, a.meta.hierarchy.grid_count());  // topgrid + subgrids
    EXPECT_EQ(b.files, 1u);
    EXPECT_EQ(d.files, 1u);
    // Byte totals agree within format overhead.
    EXPECT_NEAR(static_cast<double>(a.total_bytes),
                static_cast<double>(b.total_bytes),
                0.08 * static_cast<double>(b.total_bytes));
    // The report mentions the essentials.
    std::string report = format_summary(b, "db");
    EXPECT_NE(report.find("16x16x16"), std::string::npos);
    EXPECT_NE(report.find("particles"), std::string::npos);
  });
}

TEST(DumpInspector, MissingDumpAndMissingSubgridFileAreErrors) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(2));
  rt.run([&](mpi::Comm& c) {
    if (c.rank() != 0) return;
    EXPECT_THROW(inspect_dump(fs, "nothing_here"), IoError);
    EXPECT_EQ(detect_dump_format(fs, "nothing_here"), DumpFormat::kUnknown);
  });
  SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.compute_per_cell = 0.0;
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    Hdf4SerialBackend(fs).write_dump(c, sim.state(), "broken");
    c.barrier();
    if (c.rank() != 0) return;
    // Remove one subgrid file: the inspector must notice.
    for (const auto& g : sim.state().hierarchy.grids()) {
      if (g.level == 0) continue;
      char buf[32];
      std::snprintf(buf, sizeof buf, ".grid%06llu",
                    static_cast<unsigned long long>(g.id));
      fs.remove(std::string("broken") + buf);
      break;
    }
    EXPECT_THROW(inspect_dump(fs, "broken"), FormatError);
  });
}


TEST(HierarchyFile, RenderParseRoundTrip) {
  amr::Hierarchy h;
  h.set_root({32, 32, 32});
  for (int i = 0; i < 4; ++i) {
    amr::GridDescriptor c;
    c.level = 1;
    c.parent = 0;
    c.left_edge = {0.25 * i, 0.5, 0.0};
    c.right_edge = {0.25 * i + 0.125, 0.75, 0.25};
    c.dims = {8, 16, 16};
    c.owner = i;
    h.add_grid(c);
  }
  double t = 0;
  std::uint64_t cyc = 0;
  std::string text = render_hierarchy_text(h, 3.75, 12);
  amr::Hierarchy back = parse_hierarchy_text(text, &t, &cyc);
  EXPECT_EQ(back, h);
  EXPECT_DOUBLE_EQ(t, 3.75);
  EXPECT_EQ(cyc, 12u);
  // Human-readable essentials present.
  EXPECT_NE(text.find("NumberOfGrids = 5"), std::string::npos);
  EXPECT_NE(text.find("GridLeftEdge"), std::string::npos);
}

TEST(HierarchyFile, MalformedInputsRejected) {
  EXPECT_THROW(parse_hierarchy_text("garbage line without equals"),
               FormatError);
  EXPECT_THROW(parse_hierarchy_text("Unknown = 3"), FormatError);
  EXPECT_THROW(parse_hierarchy_text("Time = not_a_number"), FormatError);
  EXPECT_THROW(parse_hierarchy_text(""), FormatError);  // no root
  // NumberOfGrids mismatch.
  amr::Hierarchy h;
  h.set_root({8, 8, 8});
  std::string text = render_hierarchy_text(h, 0, 0);
  text.replace(text.find("NumberOfGrids = 1"), 17, "NumberOfGrids = 9");
  EXPECT_THROW(parse_hierarchy_text(text), FormatError);
}

TEST(HierarchyFile, Hdf4DumpWritesReadableHierarchy) {
  SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.compute_per_cell = 0.0;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(4));
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    Hdf4SerialBackend(fs).write_dump(c, sim.state(), "hdump");
    if (c.rank() != 0) return;
    double t = 0;
    std::uint64_t cyc = 0;
    amr::Hierarchy h = read_hierarchy_file(fs, "hdump.hierarchy", &t, &cyc);
    EXPECT_EQ(h, sim.state().hierarchy);
    EXPECT_DOUBLE_EQ(t, sim.state().time);
    EXPECT_EQ(cyc, sim.state().cycle);
  });
}

TEST(HierarchyValidate, SimulationHierarchiesAreValid) {
  SimulationConfig config;
  config.root_dims = {32, 32, 32};
  config.refine.max_level = 2;
  config.refine.threshold = 2.5;
  config.refine.min_box = 2;
  config.compute_per_cell = 0.0;
  mpi::Runtime rt(rparams(4));
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    EXPECT_NO_THROW(sim.state().hierarchy.validate());
    sim.evolve_cycle();
    EXPECT_NO_THROW(sim.state().hierarchy.validate());
  });
}

TEST(HierarchyValidate, DetectsOverlap) {
  amr::Hierarchy h;
  h.set_root({8, 8, 8});
  amr::GridDescriptor a;
  a.level = 1;
  a.parent = 0;
  a.left_edge = {0.0, 0.0, 0.0};
  a.right_edge = {0.5, 0.5, 0.5};
  a.dims = {8, 8, 8};
  h.add_grid(a);
  amr::GridDescriptor b = a;
  b.left_edge = {0.25, 0.25, 0.25};  // overlaps a
  b.right_edge = {0.75, 0.75, 0.75};
  h.add_grid(b);
  EXPECT_THROW(h.validate(), LogicError);
}
}  // namespace
}  // namespace paramrio::enzo
