// Property-based tests: randomised sweeps over the invariants that hold by
// construction — byte-exact I/O round-trips for arbitrary access patterns,
// hyperslab enumeration vs naive selection, and physics/restart consistency
// (a restarted simulation continues exactly like an uninterrupted one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "amr/particles_par.hpp"
#include "base/rng.hpp"
#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "hdf4/sd_file.hpp"
#include "hdf5/dataspace.hpp"
#include "pnetcdf/nc_file.hpp"
#include "mpi/io/file.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"

namespace paramrio {
namespace {

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

// ---------------------------------------------------------------------------
// Random noncontiguous collective writes land every byte exactly once.
// ---------------------------------------------------------------------------

class RandomPatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomPatternSweep, CollectiveWriteOfRandomDisjointSegments) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int p = 4;
  const std::uint64_t file_bytes = 64 * KiB;

  // Build a random partition of [0, file_bytes) into labelled pieces, then
  // deal the pieces round-robin to ranks as their indexed filetypes.
  Rng rng(seed);
  std::vector<std::uint64_t> cuts = {0, file_bytes};
  for (int i = 0; i < 40; ++i) {
    cuts.push_back(rng.next_below(file_bytes));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<std::vector<mpi::Segment>> per_rank(p);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    per_rank[i % static_cast<std::size_t>(p)].push_back(
        mpi::Segment{cuts[i], cuts[i + 1] - cuts[i]});
  }
  for (auto& segs : per_rank) {
    ASSERT_FALSE(segs.empty());
  }

  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    mpi::io::File f(c, fs, "rand", pfs::OpenMode::kCreate);
    const auto& segs = per_rank[static_cast<std::size_t>(c.rank())];
    f.set_view(0, mpi::Datatype::indexed(segs));
    std::uint64_t total = 0;
    for (const auto& s : segs) total += s.length;
    // Every byte carries its absolute file offset (mod 251) as payload.
    std::vector<std::byte> buf(total);
    std::uint64_t pos = 0;
    for (const auto& s : segs) {
      for (std::uint64_t b = 0; b < s.length; ++b) {
        buf[pos + b] = static_cast<std::byte>((s.offset + b) % 251);
      }
      pos += s.length;
    }
    f.write_at_all(0, buf);
    // Read back collectively through the same pattern.
    std::vector<std::byte> back(total);
    f.read_at_all(0, back);
    EXPECT_EQ(back, buf);
    f.close();
  });

  // Serial byte-exact validation of the whole file.
  std::vector<std::byte> all(file_bytes);
  fs.store().read_at("rand", 0, all);
  for (std::uint64_t i = 0; i < file_bytes; ++i) {
    ASSERT_EQ(all[i], static_cast<std::byte>(i % 251)) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternSweep,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Collective I/O equals independent I/O byte-for-byte across randomised
// interleaved views, file systems, and hint configurations — including
// hole-y views and hulls that cross EOF — and every configuration passes
// the I/O-correctness audit clean.
// ---------------------------------------------------------------------------

class CollectiveEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveEquivalenceSweep, CollectiveMatchesIndependentAndAuditsClean) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 9176 + 11);
  const int p = 2 << (seed % 3);  // 2, 4, 8 ranks
  const std::uint64_t file_bytes = 32 * KiB + seed * KiB + 37;  // odd size

  // Hint matrix: alignment mode, aggregator restriction, small collective
  // buffer so multi-window exchanges are exercised.
  mpi::io::Hints hints;
  hints.cb_buffer_size = 8 * KiB;
  const std::uint64_t aligns[] = {1, mpi::io::Hints::kCbAlignAuto, 8 * KiB};
  hints.cb_align = aligns[seed % 3];
  hints.cb_nodes = (seed % 2 == 0) ? 0 : 2;

  // Alternate between a plain local fs and a striped fs (varying stripes).
  const bool striped = (seed % 2 == 1);
  net::NetworkParams np;
  pfs::StripedFsParams sp;
  sp.stripe_size = (16 * KiB) << (seed % 3);
  sp.n_io_nodes = 4;
  std::unique_ptr<net::Network> nw;
  std::unique_ptr<pfs::FileSystem> fs;
  if (striped) {
    nw = std::make_unique<net::Network>(np, p, sp.n_io_nodes);
    fs = std::make_unique<pfs::StripedFs>(sp, *nw);
  } else {
    fs = std::make_unique<pfs::LocalFs>(pfs::LocalFsParams{});
  }
  check::CheckOptions copts;
  copts.label = "collective-equivalence sweep seed " + std::to_string(seed);
  if (striped) copts.stripe_size = sp.stripe_size;
  check::IoChecker checker(copts);
  fs->attach_observer(&checker);

  // Random partition of [0, file_bytes) dealt round-robin (with a
  // seed-dependent shift) to ranks: every rank's view is hole-y and all
  // views interleave.
  std::vector<std::uint64_t> cuts = {0, file_bytes};
  for (int i = 0; i < 36; ++i) cuts.push_back(rng.next_below(file_bytes));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<std::vector<mpi::Segment>> per_rank(p);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    per_rank[(i + seed) % static_cast<std::size_t>(p)].push_back(
        mpi::Segment{cuts[i], cuts[i + 1] - cuts[i]});
  }
  for (auto& segs : per_rank) ASSERT_FALSE(segs.empty());

  mpi::RuntimeParams rp = rparams(p);
  if (striped) rp.extra_fabric_nodes = sp.n_io_nodes;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    const auto& segs = per_rank[static_cast<std::size_t>(c.rank())];
    std::uint64_t total = 0;
    for (const auto& s : segs) total += s.length;
    std::vector<std::byte> buf(total);
    std::uint64_t pos = 0;
    for (const auto& s : segs) {
      for (std::uint64_t b = 0; b < s.length; ++b) {
        buf[pos + b] = static_cast<std::byte>((s.offset + b) % 251);
      }
      pos += s.length;
    }

    {  // Collective write + collective read-back.
      mpi::io::File f(c, *fs, "coll", pfs::OpenMode::kCreate, hints);
      f.set_view(0, mpi::Datatype::indexed(segs));
      f.write_at_all(0, buf);
      std::vector<std::byte> back(total);
      f.read_at_all(0, back);
      EXPECT_EQ(back, buf);
      f.close();
    }
    {  // Independent write + read of the same pattern.  Sieving writes are
       // off here: their read-modify-write legitimately reads unwritten
       // interior bytes, which the audit would (correctly) flag.
      mpi::io::Hints ih = hints;
      ih.data_sieving_writes = false;
      mpi::io::File f(c, *fs, "ind", pfs::OpenMode::kCreate, ih);
      f.set_view(0, mpi::Datatype::indexed(segs));
      f.write_at(0, buf);
      c.barrier();
      std::vector<std::byte> back(total);
      f.read_at(0, back);
      EXPECT_EQ(back, buf);
      f.close();
    }
    {  // EOF-adjacent hull: extend each rank's view past the end of the
       // file; the collective read must zero-fill the tail, not throw.
      auto ext = segs;
      ext.push_back(mpi::Segment{
          file_bytes + static_cast<std::uint64_t>(c.rank()) * 512, 512});
      mpi::io::File f(c, *fs, "coll", pfs::OpenMode::kRead, hints);
      f.set_view(0, mpi::Datatype::indexed(ext));
      std::vector<std::byte> back(total + 512);
      f.read_at_all(0, back);
      for (std::uint64_t i = 0; i < total; ++i) EXPECT_EQ(back[i], buf[i]);
      for (std::uint64_t i = total; i < total + 512; ++i)
        EXPECT_EQ(back[i], std::byte{0});
      f.close();
    }
  });

  // Byte-exact serial validation: both files identical and fully correct.
  ASSERT_EQ(fs->store().size("coll"), file_bytes);
  ASSERT_EQ(fs->store().size("ind"), file_bytes);
  std::vector<std::byte> a(file_bytes), b(file_bytes);
  fs->store().read_at("coll", 0, a);
  fs->store().read_at("ind", 0, b);
  EXPECT_EQ(a, b);
  for (std::uint64_t i = 0; i < file_bytes; ++i) {
    ASSERT_EQ(a[i], static_cast<std::byte>(i % 251)) << "byte " << i;
  }
  check::CheckReport r = checker.analyze(&fs->store());
  EXPECT_TRUE(r.clean()) << r.format();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveEquivalenceSweep,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Hyperslab enumeration equals naive per-element selection.
// ---------------------------------------------------------------------------

class HyperslabFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HyperslabFuzz, RunsMatchNaiveEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 3);
  std::vector<std::uint64_t> dims(1 + rng.next_below(3));
  for (auto& d : dims) d = 2 + rng.next_below(9);
  hdf5::Dataspace space(dims);

  std::vector<hdf5::HyperslabDim> slab(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    auto& h = slab[d];
    h.block = 1 + rng.next_below(std::max<std::uint64_t>(1, dims[d] / 2));
    h.stride = h.block + rng.next_below(3);
    std::uint64_t max_count = (dims[d] - h.block) / h.stride + 1;
    h.count = 1 + rng.next_below(max_count);
    std::uint64_t span = (h.count - 1) * h.stride + h.block;
    h.start = rng.next_below(dims[d] - span + 1);
  }
  space.select_hyperslab(slab);

  // Naive: mark every selected linear index.
  std::uint64_t total = space.total_elements();
  std::vector<bool> selected(total, false);
  std::vector<std::uint64_t> strides(dims.size(), 1);
  for (std::size_t d = dims.size() - 1; d > 0; --d) {
    strides[d - 1] = strides[d] * dims[d];
  }
  std::vector<std::uint64_t> idx(dims.size(), 0);
  std::function<void(std::size_t, std::uint64_t)> mark =
      [&](std::size_t d, std::uint64_t base) {
        const auto& h = slab[d];
        for (std::uint64_t cnt = 0; cnt < h.count; ++cnt) {
          for (std::uint64_t b = 0; b < h.block; ++b) {
            std::uint64_t i = h.start + cnt * h.stride + b;
            if (d + 1 == dims.size()) {
              selected[base + i] = true;
            } else {
              mark(d + 1, base + i * strides[d]);
            }
          }
        }
      };
  mark(0, 0);

  std::vector<bool> from_runs(total, false);
  space.for_each_run([&](const hdf5::Dataspace::Run& r) {
    for (std::uint64_t i = 0; i < r.element_count; ++i) {
      ASSERT_FALSE(from_runs[r.element_offset + i]) << "duplicate element";
      from_runs[r.element_offset + i] = true;
    }
  });
  EXPECT_EQ(from_runs, selected);
  std::uint64_t count = 0;
  for (bool b : selected) count += b ? 1 : 0;
  EXPECT_EQ(space.selected_elements(), count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperslabFuzz, ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Restart continuation: dump at cycle k, restart, evolve one more cycle —
// identical to the uninterrupted run.
// ---------------------------------------------------------------------------

enum class Kind { kHdf4, kMpiIo, kHdf5, kPnetcdf };

class RestartContinuation
    : public ::testing::TestWithParam<std::tuple<Kind, int>> {};

TEST_P(RestartContinuation, ContinuedRunMatchesUninterrupted) {
  auto [kind, p] = GetParam();
  enzo::SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.particles_per_cell = 0.25;
  config.compute_per_cell = 0.0;

  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    std::unique_ptr<enzo::IoBackend> backend;
    switch (kind) {
      case Kind::kHdf4:
        backend = std::make_unique<enzo::Hdf4SerialBackend>(fs);
        break;
      case Kind::kMpiIo:
        backend = std::make_unique<enzo::MpiIoBackend>(fs);
        break;
      case Kind::kHdf5:
        backend = std::make_unique<enzo::Hdf5ParallelBackend>(fs);
        break;
      case Kind::kPnetcdf:
        backend = std::make_unique<enzo::PnetcdfBackend>(fs);
        break;
    }

    // Uninterrupted: 3 cycles.
    enzo::EnzoSimulation gold(c, config);
    gold.initialize_from_universe();
    gold.evolve_cycle();
    gold.evolve_cycle();
    gold.evolve_cycle();

    // Interrupted: 2 cycles, dump, restart, 1 more cycle.
    enzo::EnzoSimulation first(c, config);
    first.initialize_from_universe();
    first.evolve_cycle();
    first.evolve_cycle();
    backend->write_dump(c, first.state(), "ckpt");

    enzo::EnzoSimulation resumed(c, config);
    backend->read_restart(c, resumed.state(), "ckpt");
    resumed.evolve_cycle();

    EXPECT_EQ(resumed.state().cycle, gold.state().cycle);
    EXPECT_DOUBLE_EQ(resumed.state().time, gold.state().time);
    EXPECT_EQ(resumed.state().my_fields, gold.state().my_fields);
    amr::ParticleSet a = resumed.state().my_particles;
    amr::ParticleSet b = gold.state().my_particles;
    amr::local_sort_by_id(a);
    amr::local_sort_by_id(b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(resumed.state().hierarchy.grid_count(),
              gold.state().hierarchy.grid_count());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RestartContinuation,
    ::testing::Combine(::testing::Values(Kind::kHdf4, Kind::kMpiIo,
                                         Kind::kHdf5, Kind::kPnetcdf),
                       ::testing::Values(2, 4)));

// ---------------------------------------------------------------------------
// Independent and collective writes of the same pattern produce identical
// file bytes.
// ---------------------------------------------------------------------------

class WriteEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(WriteEquivalence, CollectiveAndIndependentAgree) {
  const std::uint64_t n = 12;
  const int p = 4;
  const auto seed = static_cast<unsigned>(GetParam());

  auto run_mode = [&](bool collective, const std::string& path,
                      pfs::LocalFs& fs) {
    mpi::Runtime rt(rparams(p));
    rt.run([&](mpi::Comm& c) {
      mpi::io::File f(c, fs, path, pfs::OpenMode::kCreate);
      auto [ys, yc] = amr::block_range(n, p, c.rank());
      f.set_view(0, mpi::Datatype::subarray({n, n, n}, {n, yc, n},
                                            {0, ys, 0}, 4));
      std::vector<std::byte> buf(n * yc * n * 4);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(
            (i * 13 + static_cast<std::size_t>(c.rank()) * 101 + seed) & 0xff);
      }
      if (collective) {
        f.write_at_all(0, buf);
      } else {
        f.write_at(0, buf);
        c.barrier();
      }
      f.close();
    });
  };

  pfs::LocalFs fs(pfs::LocalFsParams{});
  run_mode(true, "coll", fs);
  run_mode(false, "ind", fs);
  std::vector<std::byte> a(fs.store().size("coll"));
  std::vector<std::byte> b(fs.store().size("ind"));
  ASSERT_EQ(a.size(), b.size());
  fs.store().read_at("coll", 0, a);
  fs.store().read_at("ind", 0, b);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteEquivalence, ::testing::Range(0, 6));


// ---------------------------------------------------------------------------
// Format-scanner robustness: random truncation / corruption of valid files
// must raise FormatError or IoError, never crash or loop.
// ---------------------------------------------------------------------------

class FormatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FormatFuzz, TruncatedAndCorruptedFilesFailCleanly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(1));
  rt.run([&](mpi::Comm& c) {
    // Build one valid file of each format.
    {
      hdf4::SdFile f = hdf4::SdFile::create(fs, "sd");
      f.write_dataset("d", hdf4::NumberType::kFloat32, {16},
                      std::vector<std::byte>(64));
      double a = 1.0;
      f.write_attribute("t", std::as_bytes(std::span(&a, 1)));
      f.close();
    }
    {
      hdf5::H5File f = hdf5::H5File::create(fs, "h5");
      auto d = f.create_dataset("d", hdf5::NumberType::kFloat32,
                                hdf5::Dataspace({16}));
      d.write_all(std::vector<std::byte>(64));
      f.close();
    }
    {
      pnetcdf::NcFile f = pnetcdf::NcFile::create(c, fs, "nc");
      int dim = f.def_dim("n", 16);
      int v = f.def_var("d", pnetcdf::NcType::kFloat, {dim});
      f.enddef();
      f.put_var_all(v, std::vector<std::byte>(64));
      f.close();
    }

    for (const char* name : {"sd", "h5", "nc"}) {
      std::uint64_t size = fs.store().size(name);
      // Truncate to a random prefix.
      std::uint64_t cut = rng.next_below(size);
      std::vector<std::byte> prefix(cut);
      if (cut > 0) fs.store().read_at(name, 0, prefix);
      std::string tname = std::string(name) + "_trunc";
      fs.store().create(tname);
      fs.store().write_at(tname, 0, prefix);
      // Corrupt one random byte of a full copy.
      std::vector<std::byte> copy(size);
      fs.store().read_at(name, 0, copy);
      copy[rng.next_below(size)] ^= std::byte{0xFF};
      std::string cname = std::string(name) + "_corrupt";
      fs.store().create(cname);
      fs.store().write_at(cname, 0, copy);
    }

    auto expect_clean_failure_or_valid = [&](auto&& open_fn) {
      try {
        open_fn();
      } catch (const Error&) {
        // FormatError / IoError / LogicError: all acceptable clean failures.
      }
    };
    for (const char* suffix : {"_trunc", "_corrupt"}) {
      expect_clean_failure_or_valid([&] {
        hdf4::SdFile f = hdf4::SdFile::open(fs, std::string("sd") + suffix);
        std::vector<std::byte> out(f.info("d").data_bytes);
        f.read_dataset("d", out);
      });
      expect_clean_failure_or_valid([&] {
        hdf5::H5File f =
            hdf5::H5File::open(fs, std::string("h5") + suffix);
        auto d = f.open_dataset("d");
        std::vector<std::byte> out(d.info().data_bytes);
        d.read_all(out);
      });
      expect_clean_failure_or_valid([&] {
        pnetcdf::NcFile f =
            pnetcdf::NcFile::open(c, fs, std::string("nc") + suffix);
        int v = f.inq_varid("d");
        std::vector<std::byte> out(f.var(v).bytes);
        f.get_var_all(v, out);
      });
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzz, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Star formation: particle population grows, ids stay unique, dumps carry
// the new particles through a restart.
// ---------------------------------------------------------------------------

TEST(StarFormation, PopulationGrowsAndRoundTrips) {
  enzo::SimulationConfig config;
  config.root_dims = {16, 16, 16};
  config.particles_per_cell = 0.25;
  config.star_formation_rate = 0.1;  // +10% per cycle
  config.compute_per_cell = 0.0;

  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(4));
  std::vector<std::uint64_t> counts(4, 0);
  rt.run([&](mpi::Comm& c) {
    enzo::EnzoSimulation sim(c, config);
    sim.initialize_from_universe();
    std::uint64_t before =
        c.allreduce_sum(sim.state().my_particles.size());
    sim.evolve_cycle();
    sim.evolve_cycle();
    std::uint64_t after = c.allreduce_sum(sim.state().my_particles.size());
    EXPECT_GT(after, before + before / 10);  // ~+21% over two cycles

    // Ids unique across ranks.
    auto all_ids = c.allgatherv(std::as_bytes(
        std::span(sim.state().my_particles.id.data(),
                  sim.state().my_particles.id.size())));
    std::set<std::int64_t> uniq;
    std::uint64_t total = 0;
    for (const auto& b : all_ids) {
      std::size_t n = b.size() / 8;
      total += n;
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t id;
        std::memcpy(&id, b.data() + i * 8, 8);
        uniq.insert(id);
      }
    }
    EXPECT_EQ(uniq.size(), total);

    // The grown population survives a dump/restart exactly.
    enzo::MpiIoBackend backend(fs);
    backend.write_dump(c, sim.state(), "stars");
    enzo::EnzoSimulation fresh(c, config);
    backend.read_restart(c, fresh.state(), "stars");
    amr::ParticleSet a = sim.state().my_particles;
    amr::ParticleSet b2 = fresh.state().my_particles;
    amr::local_sort_by_id(a);
    amr::local_sort_by_id(b2);
    EXPECT_EQ(a, b2);
  });
}
}  // namespace
}  // namespace paramrio
