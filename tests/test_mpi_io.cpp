// Integration tests for the MPI-IO layer: file views, data sieving,
// two-phase collective I/O — verified by reading every byte back.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mpi/io/file.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"

namespace paramrio::mpi::io {
namespace {

RuntimeParams rparams(int n) {
  RuntimeParams p;
  p.nprocs = n;
  return p;
}

std::vector<std::byte> iota_bytes(std::size_t n, unsigned seed = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 7 + seed) & 0xff);
  return v;
}

/// Block decomposition of [0, n) into `parts`; returns (start, count) of
/// part `i` (first n%parts parts get one extra).
std::pair<std::uint64_t, std::uint64_t> block(std::uint64_t n, int parts,
                                              int i) {
  std::uint64_t base = n / static_cast<std::uint64_t>(parts);
  std::uint64_t rem = n % static_cast<std::uint64_t>(parts);
  auto ui = static_cast<std::uint64_t>(i);
  std::uint64_t start = ui * base + std::min(ui, rem);
  std::uint64_t count = base + (ui < rem ? 1 : 0);
  return {start, count};
}

TEST(MpiIoFile, IndependentContiguousRoundTrip) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "data", pfs::OpenMode::kCreate);
    auto data = iota_bytes(4096);
    f.write_at(100, data);
    std::vector<std::byte> out(4096);
    f.read_at(100, out);
    EXPECT_EQ(out, data);
    EXPECT_EQ(f.size(), 4196u);
    f.close();
  });
}

TEST(MpiIoFile, ViewDisplacementOffsetsAccesses) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "data", pfs::OpenMode::kCreate);
    f.set_view(1000);
    auto data = iota_bytes(64);
    f.write_at(0, data);
    EXPECT_EQ(f.size(), 1064u);
    f.set_view(0);
    std::vector<std::byte> out(64);
    f.read_at(1000, out);
    EXPECT_EQ(out, data);
    f.close();
  });
}

TEST(MpiIoFile, StridedViewIndependentWriteAndReadBack) {
  // A vector filetype: every other 8-byte block visible.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "data", pfs::OpenMode::kCreate);
    // Pre-fill 256 bytes so holes have known content.
    auto bg = std::vector<std::byte>(256, std::byte{0xEE});
    f.write_at(0, bg);
    f.set_view(0, Datatype::vector(16, 8, 16));
    auto data = iota_bytes(128, 5);
    f.write_at(0, data);
    std::vector<std::byte> out(128);
    f.read_at(0, out);
    EXPECT_EQ(out, data);
    // Holes untouched.
    f.set_view(0);
    std::vector<std::byte> hole(8);
    f.read_at(8, hole);
    for (auto b : hole) EXPECT_EQ(b, std::byte{0xEE});
    f.close();
  });
}

TEST(MpiIoFile, FlattenCacheSurvivesInterleavedViews) {
  // Regression: the view-flatten memo used to hold a single entry, so a rank
  // alternating between two installed views (ENZO's field/boundary pattern)
  // evicted it on every call and re-flattened — zero hits.  The keyed LRU
  // keeps both flattenings live across the alternation.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "data", pfs::OpenMode::kCreate);
    f.write_at(0, iota_bytes(4096));
    std::vector<std::byte> buf(32);
    const int rounds = 8;
    for (int i = 0; i < rounds; ++i) {
      f.set_view(0, Datatype::indexed({{0, 16}, {32, 16}}));
      f.read_at(0, buf);
      f.set_view(0, Datatype::indexed({{16, 16}, {48, 16}}));
      f.read_at(0, buf);
    }
    // Only the first flattening of each view misses.
    EXPECT_EQ(f.stats().view_flatten_cache_hits,
              static_cast<std::uint64_t>(2 * rounds - 2));
    f.close();
  });
}

TEST(MpiIoFile, FlattenCacheEvictsBeyondCapacityAndStaysCorrect) {
  // Cycle more distinct views than the LRU holds: every access misses (the
  // working set exceeds capacity), but reads stay byte-correct.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "data", pfs::OpenMode::kCreate);
    auto data = iota_bytes(4096, 3);
    f.write_at(0, data);
    const int nviews = 12;  // > kFlattenCacheCapacity
    for (int round = 0; round < 2; ++round) {
      for (int v = 0; v < nviews; ++v) {
        f.set_view(0, Datatype::indexed(
                          {{static_cast<std::uint64_t>(v) * 64, 16}}));
        std::vector<std::byte> out(16);
        f.read_at(0, out);
        for (std::size_t i = 0; i < out.size(); ++i) {
          EXPECT_EQ(out[i],
                    data[static_cast<std::size_t>(v) * 64 + i]);
        }
      }
    }
    EXPECT_EQ(f.stats().view_flatten_cache_hits, 0u);
    f.close();
  });
}

TEST(MpiIoFile, SievingOffMatchesSievingOn) {
  auto run_once = [](bool sieve) {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    Runtime rt(rparams(1));
    std::vector<std::byte> result(512);
    rt.run([&](Comm& c) {
      Hints h;
      h.data_sieving_reads = sieve;
      h.data_sieving_writes = sieve;
      File f(c, fs, "data", pfs::OpenMode::kCreate, h);
      f.set_view(0, Datatype::vector(64, 8, 24));
      f.write_at(0, iota_bytes(512, 9));
      f.read_at(0, result);
      f.close();
    });
    return result;
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(MpiIoFile, SievingReducesFsRequests) {
  auto requests = [](bool sieve) {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    Runtime rt(rparams(1));
    std::uint64_t reqs = 0;
    auto res = rt.run([&](Comm& c) {
      Hints h;
      h.data_sieving_reads = sieve;
      File f(c, fs, "data", pfs::OpenMode::kCreate, h);
      f.write_at(0, iota_bytes(64 * KiB));
      f.set_view(0, Datatype::vector(512, 16, 128));
      std::vector<std::byte> out(512 * 16);
      f.read_at(0, out);
      f.close();
    });
    reqs = res.stats[0].io_requests;
    return reqs;
  };
  EXPECT_LT(requests(true), requests(false) / 10);
}

TEST(MpiIoFile, SieveWindowSmallerThanHull) {
  // Force multiple sieve windows: hull 64 KiB, buffer 4 KiB.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.ds_buffer_size = 4 * KiB;
    File f(c, fs, "data", pfs::OpenMode::kCreate, h);
    f.write_at(0, iota_bytes(64 * KiB, 3));
    f.set_view(0, Datatype::vector(256, 16, 256));
    std::vector<std::byte> out(256 * 16);
    f.read_at(0, out);
    // Verify against direct extraction.
    for (std::size_t i = 0; i < 256; ++i) {
      for (std::size_t j = 0; j < 16; ++j) {
        EXPECT_EQ(out[i * 16 + j],
                  static_cast<std::byte>(((i * 256 + j) * 7 + 3) & 0xff));
      }
    }
    EXPECT_GT(f.stats().sieve_windows, 8u);
    f.close();
  });
}

class TwoPhaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwoPhaseSweep, CollectiveWriteOf3DBlocksReadsBackExactly) {
  // The paper's core pattern: a (Block,Block,Block)-partitioned 3-D array
  // written collectively through subarray views, then read back serially.
  const int p = GetParam();
  const std::uint64_t n = 16;  // 16^3 doubles
  const std::uint64_t elem = 8;

  // Partition processors into a 3-D grid (like MPI_Dims_create, crude).
  int px = 1, py = 1, pz = 1;
  {
    int rest = p;
    while (rest % 2 == 0) {
      if (px <= py && px <= pz) {
        px *= 2;
      } else if (py <= pz) {
        py *= 2;
      } else {
        pz *= 2;
      }
      rest /= 2;
    }
    pz *= rest;
  }
  ASSERT_EQ(px * py * pz, p);

  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(p));
  rt.run([&](Comm& c) {
    int r = c.rank();
    int iz = r / (px * py);
    int iy = (r / px) % py;
    int ix = r % px;
    auto [zs, zc] = block(n, pz, iz);
    auto [ys, yc] = block(n, py, iy);
    auto [xs, xc] = block(n, px, ix);

    File f(c, fs, "array", pfs::OpenMode::kCreate);
    f.set_view(0, Datatype::subarray({n, n, n}, {zc, yc, xc}, {zs, ys, xs},
                                     elem));
    // Fill the block with globally-determined values: f(z,y,x).
    std::vector<std::byte> buf(zc * yc * xc * elem);
    std::size_t k = 0;
    for (std::uint64_t z = zs; z < zs + zc; ++z) {
      for (std::uint64_t y = ys; y < ys + yc; ++y) {
        for (std::uint64_t x = xs; x < xs + xc; ++x) {
          double v = static_cast<double>((z * n + y) * n + x);
          std::memcpy(buf.data() + k, &v, elem);
          k += elem;
        }
      }
    }
    f.write_at_all(0, buf);

    // Collective read back into the same blocks.
    std::vector<std::byte> back(buf.size());
    f.read_at_all(0, back);
    EXPECT_EQ(back, buf);
    f.close();
  });

  // Serial byte-level validation of the file contents.
  std::vector<std::byte> all(n * n * n * elem);
  fs.store().read_at("array", 0, all);
  for (std::uint64_t i = 0; i < n * n * n; ++i) {
    double v;
    std::memcpy(&v, all.data() + i * elem, elem);
    EXPECT_DOUBLE_EQ(v, static_cast<double>(i)) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, TwoPhaseSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 12));

TEST(TwoPhase, SmallCollectiveBufferForcesManyWindows) {
  const int p = 4;
  const std::uint64_t n = 16, elem = 8;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(p));
  std::uint64_t windows = 0;
  rt.run([&](Comm& c) {
    Hints h;
    h.cb_buffer_size = 2 * KiB;  // hull is 32 KiB -> many windows
    File f(c, fs, "array", pfs::OpenMode::kCreate, h);
    // Partition the MIDDLE dimension so the ranks' accesses interleave
    // (a z-slab split would take the independent fast path).
    auto [ys, yc] = block(n, p, c.rank());
    f.set_view(0,
               Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
    std::vector<std::byte> buf(n * yc * n * elem, std::byte{7});
    f.write_at_all(0, buf);
    std::vector<std::byte> back(buf.size());
    f.read_at_all(0, back);
    EXPECT_EQ(back, buf);
    if (c.rank() == 0) windows = f.stats().two_phase_windows;
    f.close();
  });
  EXPECT_GE(windows, 2u);
}

TEST(TwoPhase, NonInterleavedFallsBackToIndependent) {
  // Slab partition along the slowest dim = contiguous non-interleaved
  // ranges: the collective should take the independent fast path (no
  // two-phase windows recorded).
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(p));
  rt.run([&](Comm& c) {
    File f(c, fs, "flat", pfs::OpenMode::kCreate);
    f.set_view(static_cast<std::uint64_t>(c.rank()) * 1024);
    auto data = iota_bytes(1024, static_cast<unsigned>(c.rank()));
    f.write_at_all(0, data);
    std::vector<std::byte> back(1024);
    f.read_at_all(0, back);
    EXPECT_EQ(back, data);
    EXPECT_EQ(f.stats().two_phase_windows, 0u);
    f.close();
  });
}

TEST(TwoPhase, InterleavedCollectiveBeatsIndependentOnStridedPattern) {
  // Cost check: for a finely interleaved pattern on a seek-heavy FS, the
  // two-phase collective must be faster than independent strided access.
  const int p = 8;
  const std::uint64_t n = 32, elem = 8;

  auto run_mode = [&](bool collective) {
    pfs::LocalFsParams fp;
    fp.disk.seek_time = ms(8);
    pfs::LocalFs fs(fp);
    Runtime rt(rparams(p));
    auto res = rt.run([&](Comm& c) {
      File f(c, fs, "a", pfs::OpenMode::kCreate);
      auto [ys, yc] = block(n, p, c.rank());
      // Partition the MIDDLE dimension: every rank's rows interleave.
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
      std::vector<std::byte> buf(n * yc * n * elem, std::byte{1});
      if (collective) {
        f.write_at_all(0, buf);
      } else {
        f.write_at(0, buf);
        c.barrier();
      }
      f.close();
    });
    return res.makespan;
  };
  double t_coll = run_mode(true);
  double t_ind = run_mode(false);
  EXPECT_LT(t_coll, t_ind);
}

TEST(TwoPhase, WriteThenCollectiveReadWithDifferentDecomposition) {
  // Write with a z-slab decomposition on 4 ranks, read back with an x-slab
  // decomposition: every byte crosses ranks.
  const std::uint64_t n = 12, elem = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(4));
  rt.run([&](Comm& c) {
    auto [zs, zc] = block(n, 4, c.rank());
    {
      File f(c, fs, "a", pfs::OpenMode::kCreate);
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {zc, n, n}, {zs, 0, 0}, elem));
      std::vector<std::byte> buf(zc * n * n * elem);
      std::size_t k = 0;
      for (std::uint64_t z = zs; z < zs + zc; ++z) {
        for (std::uint64_t yx = 0; yx < n * n; ++yx) {
          std::uint32_t v = static_cast<std::uint32_t>(z * n * n + yx);
          std::memcpy(buf.data() + k, &v, elem);
          k += elem;
        }
      }
      f.write_at_all(0, buf);
      f.close();
    }
    {
      auto [xs, xc] = block(n, 4, c.rank());
      File f(c, fs, "a", pfs::OpenMode::kRead);
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {n, n, xc}, {0, 0, xs}, elem));
      std::vector<std::byte> buf(n * n * xc * elem);
      f.read_at_all(0, buf);
      std::size_t k = 0;
      for (std::uint64_t z = 0; z < n; ++z) {
        for (std::uint64_t y = 0; y < n; ++y) {
          for (std::uint64_t x = xs; x < xs + xc; ++x) {
            std::uint32_t v;
            std::memcpy(&v, buf.data() + k, elem);
            EXPECT_EQ(v, static_cast<std::uint32_t>((z * n + y) * n + x));
            k += elem;
          }
        }
      }
      f.close();
    }
  });
}

TEST(TwoPhase, RestrictedAggregatorCount) {
  const std::uint64_t n = 16, elem = 8;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(8));
  rt.run([&](Comm& c) {
    Hints h;
    h.cb_nodes = 2;  // only ranks 0 and 1 aggregate
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    auto [ys, yc] = block(n, 8, c.rank());
    f.set_view(0, Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
    std::vector<std::byte> buf(n * yc * n * elem,
                               static_cast<std::byte>(c.rank() + 1));
    f.write_at_all(0, buf);
    std::vector<std::byte> back(buf.size());
    f.read_at_all(0, back);
    EXPECT_EQ(back, buf);
    if (c.rank() >= 2) EXPECT_EQ(f.stats().two_phase_windows, 0u);
    f.close();
  });
}

TEST(TwoPhase, CollectiveReadPastEofZeroFills) {
  // Regression: interleaved views whose convex hull extends past EOF.  The
  // aggregator used to issue a single read_at spanning its whole window,
  // which threw once the union hull crossed the file size; it must clamp at
  // EOF and zero-fill the tail instead (MPI semantics: reading a hole or
  // past EOF yields undefined-but-harmless bytes, not an error — we define
  // them as zero).
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    File f(c, fs, "short", pfs::OpenMode::kCreate);
    if (c.rank() == 0) f.write_at(0, iota_bytes(60, 1));
    c.barrier();
    // rank 0 sees [0,16)+[32,48), rank 1 sees [16,32)+[48,64): the hulls
    // interleave (two-phase engages, hull [0,64)) and aggregator 1's window
    // [32,64) extends past EOF at 60.
    if (c.rank() == 0) {
      f.set_view(0, Datatype::indexed({{0, 16}, {32, 16}}));
    } else {
      f.set_view(0, Datatype::indexed({{16, 16}, {48, 16}}));
    }
    std::vector<std::byte> out(32);
    f.read_at_all(0, out);
    auto file_byte = [](std::uint64_t off) {
      return static_cast<std::byte>((off * 7 + 1) & 0xff);
    };
    if (c.rank() == 0) {
      EXPECT_GE(f.stats().two_phase_windows, 1u);
      for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], file_byte(i));
      for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(out[16 + i], file_byte(32 + i));
    } else {
      for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], file_byte(16 + i));
      for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(out[16 + i], file_byte(48 + i));
      // The four bytes past EOF come back as zeros.
      for (std::size_t i = 12; i < 16; ++i)
        EXPECT_EQ(out[16 + i], std::byte{0});
    }
    f.close();
  });
}

TEST(TwoPhase, FastPathAndEmptyCollectivesAreCounted) {
  // Empty collective calls and the non-interleaved fallback used to bypass
  // the stats block entirely; both now count as collective_fastpath.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    File f(c, fs, "fp", pfs::OpenMode::kCreate);
    f.write_at_all(0, {});  // all ranks empty: early return
    EXPECT_EQ(f.stats().collective_fastpath, 1u);
    // Disjoint ascending ranges: non-interleaved, independent fallback.
    f.set_view(static_cast<std::uint64_t>(c.rank()) * 1024);
    f.write_at_all(0, iota_bytes(1024, static_cast<unsigned>(c.rank())));
    EXPECT_EQ(f.stats().collective_fastpath, 2u);
    std::vector<std::byte> back(1024);
    f.read_at_all(0, back);
    EXPECT_EQ(f.stats().collective_fastpath, 3u);
    EXPECT_EQ(f.stats().two_phase_windows, 0u);
    f.close();
  });
}

TEST(TwoPhase, WindowBufferSizedToHullNotHint) {
  // The aggregator's exchange window must be sized to the actual domain
  // extent, not blindly to cb_buffer_size (default 4 MiB) — a 1 KiB
  // collective must not allocate megabytes per aggregator.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    File f(c, fs, "small", pfs::OpenMode::kCreate);
    if (c.rank() == 0) {
      f.set_view(0, Datatype::indexed({{0, 256}, {512, 256}}));
    } else {
      f.set_view(0, Datatype::indexed({{256, 256}, {768, 256}}));
    }
    f.write_at_all(0, iota_bytes(512, static_cast<unsigned>(c.rank())));
    EXPECT_GE(f.stats().two_phase_windows, 1u);
    EXPECT_GT(f.stats().cb_peak_window_bytes, 0u);
    EXPECT_LE(f.stats().cb_peak_window_bytes, 512u);  // hull share, not 4 MiB
    f.close();
  });
  // Both ranks' pieces landed.
  std::vector<std::byte> all(1024);
  fs.store().read_at("small", 0, all);
  auto a = iota_bytes(512, 0), b = iota_bytes(512, 1);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(all[i], a[i]);
    EXPECT_EQ(all[256 + i], b[i]);
    EXPECT_EQ(all[512 + i], a[256 + i]);
    EXPECT_EQ(all[768 + i], b[256 + i]);
  }
}

TEST(TwoPhase, StripeAlignedDomainsCutServerRequestsAndTokens) {
  // The tentpole: on a striped fs, cb_align=auto queries the Layout and
  // hands each I/O server's stripes to a single aggregator.  Versus the
  // classic equal-share domains (cb_align=1), the same interleaved write
  // must hit the servers with fewer requests AND ping-pong fewer write
  // tokens, at identical file contents.
  const int p = 8;
  const std::uint64_t n = 32, elem = 8;  // 256 KiB over 64 KiB stripes
  struct Outcome {
    std::uint64_t requests = 0, tokens = 0;
    std::uint64_t aligned = 0, straddle = 0, saves = 0;
    std::vector<std::byte> bytes;
  };
  auto run_with = [&](std::uint64_t cb_align) {
    net::NetworkParams np;
    pfs::StripedFsParams sp;
    sp.stripe_size = 64 * KiB;
    sp.n_io_nodes = 4;
    sp.write_lock_cost = ms(5);
    net::Network nw(np, p, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    RuntimeParams rp = rparams(p);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    Runtime rt(rp);
    std::vector<FileStats> stats(p);
    rt.run([&](Comm& c) {
      Hints h;
      h.cb_align = cb_align;
      File f(c, fs, "a", pfs::OpenMode::kCreate, h);
      auto [ys, yc] = block(n, p, c.rank());
      // Middle-dim partition: every rank's rows interleave.
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
      std::vector<std::byte> buf(n * yc * n * elem,
                                 static_cast<std::byte>(c.rank() + 1));
      f.write_at_all(0, buf);
      stats[static_cast<std::size_t>(c.rank())] = f.stats();
      f.close();
    });
    Outcome o;
    o.requests = fs.total_server_requests();
    o.tokens = fs.write_token_transfers();
    for (const FileStats& s : stats) {
      o.aligned += s.cb_aligned_windows;
      o.straddle += s.cb_straddle_windows;
      o.saves += s.cb_token_saves;
    }
    o.bytes.resize(n * n * n * elem);
    fs.store().read_at("a", 0, o.bytes);
    return o;
  };
  Outcome baseline = run_with(1);
  Outcome aligned = run_with(Hints::kCbAlignAuto);
  // Equal-share domains cut the 64 KiB stripes at 32 KiB boundaries...
  EXPECT_GT(baseline.straddle, 0u);
  EXPECT_EQ(baseline.saves, 0u);
  // ...while layout-aware domains land every window on the stripe grid.
  EXPECT_GT(aligned.aligned, 0u);
  EXPECT_EQ(aligned.straddle, 0u);
  EXPECT_GT(aligned.saves, 0u);
  // The point of the exercise: fewer server requests, fewer token transfers,
  // same bytes.
  EXPECT_LT(aligned.requests, baseline.requests);
  EXPECT_LT(aligned.tokens, baseline.tokens);
  EXPECT_EQ(aligned.bytes, baseline.bytes);
}

TEST(MpiIoFile, CollectiveOpenCreateTruncatesOnce) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(4));
  rt.run([&](Comm& c) {
    {
      File f(c, fs, "x", pfs::OpenMode::kCreate);
      f.write_at(static_cast<std::uint64_t>(c.rank()) * 16,
                 iota_bytes(16, static_cast<unsigned>(c.rank())));
      f.close();
    }
    {
      File f(c, fs, "x", pfs::OpenMode::kRead);
      EXPECT_EQ(f.size(), 64u);  // all four writes survived the single create
      f.close();
    }
  });
}


TEST(MpiIoFile, ErrorPaths) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    // Opening a missing file for read fails.
    EXPECT_THROW(File(c, fs, "missing", pfs::OpenMode::kRead), IoError);

    File f(c, fs, "e", pfs::OpenMode::kCreate);
    f.write_at(0, iota_bytes(64));
    // Reading past EOF fails loudly, not silently.
    std::vector<std::byte> big(128);
    EXPECT_THROW(f.read_at(0, big), IoError);
    // Double close is a logic error.
    f.close();
    EXPECT_THROW(f.close(), LogicError);

    // Writing through a read-only open fails.
    File r(c, fs, "e", pfs::OpenMode::kRead);
    EXPECT_THROW(r.write_at(0, iota_bytes(8)), IoError);
    r.close();
  });
}

TEST(MpiIoFile, ZeroByteOpsAreNoops) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    File f(c, fs, "z", pfs::OpenMode::kCreate);
    f.write_at(0, {});
    std::vector<std::byte> none;
    f.read_at(0, none);
    // Zero-size collective participation still synchronises.
    f.write_at_all(0, {});
    f.read_at_all(0, {});
    EXPECT_EQ(f.size(), 0u);
    f.close();
  });
}

TEST(MpiIoFile, ViewPersistsAcrossCalls) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "v", pfs::OpenMode::kCreate);
    f.set_view(100, Datatype::vector(4, 8, 16));
    f.write_at(0, iota_bytes(16, 1));   // first two blocks
    f.write_at(16, iota_bytes(16, 2));  // next two, same view
    std::vector<std::byte> all(32);
    f.read_at(0, all);
    auto lo = iota_bytes(16, 1), hi = iota_bytes(16, 2);
    EXPECT_TRUE(std::equal(all.begin(), all.begin() + 16, lo.begin()));
    EXPECT_TRUE(std::equal(all.begin() + 16, all.end(), hi.begin()));
    f.close();
  });
}


TEST(WriteBehind, AppendPatternCoalescesIntoFewRequests) {
  auto run_with = [](std::uint64_t wb) {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    Runtime rt(rparams(1));
    std::uint64_t fs_reqs = 0, absorbed = 0, flushes = 0;
    auto res = rt.run([&](Comm& c) {
      Hints h;
      h.wb_buffer_size = wb;
      File f(c, fs, "wb", pfs::OpenMode::kCreate, h);
      // 256 appends of 1 KiB each.
      for (int i = 0; i < 256; ++i) {
        f.write_at(static_cast<std::uint64_t>(i) * KiB, iota_bytes(KiB,
                   static_cast<unsigned>(i)));
      }
      f.close();
      absorbed = f.stats().wb_absorbed;
      flushes = f.stats().wb_flushes;
    });
    fs_reqs = res.stats[0].io_requests;
    // Contents must be correct either way.
    std::vector<std::byte> all(256 * KiB);
    fs.store().read_at("wb", 0, all);
    for (int i = 0; i < 256; ++i) {
      auto expect = iota_bytes(KiB, static_cast<unsigned>(i));
      for (std::size_t b = 0; b < KiB; ++b) {
        EXPECT_EQ(all[static_cast<std::size_t>(i) * KiB + b], expect[b]);
      }
    }
    return std::make_tuple(fs_reqs, absorbed, flushes);
  };
  auto [reqs_off, abs_off, fl_off] = run_with(0);
  auto [reqs_on, abs_on, fl_on] = run_with(64 * KiB);
  EXPECT_EQ(abs_off, 0u);
  EXPECT_EQ(abs_on, 256u);
  EXPECT_EQ(fl_on, 4u);  // 256 KiB through a 64 KiB buffer
  EXPECT_LT(reqs_on, reqs_off / 10);
}

TEST(WriteBehind, ReadsObserveBufferedWrites) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.wb_buffer_size = MiB;
    File f(c, fs, "wb2", pfs::OpenMode::kCreate, h);
    f.write_at(0, iota_bytes(4096, 9));
    EXPECT_EQ(f.stats().wb_absorbed, 1u);
    std::vector<std::byte> back(4096);
    f.read_at(0, back);  // must flush first
    EXPECT_EQ(back, iota_bytes(4096, 9));
    EXPECT_EQ(f.stats().wb_flushes, 1u);
    f.close();
  });
}

TEST(WriteBehind, OverlappingRewriteStaysCorrect) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.wb_buffer_size = MiB;
    File f(c, fs, "wb3", pfs::OpenMode::kCreate, h);
    f.write_at(0, iota_bytes(1000, 1));
    f.write_at(500, iota_bytes(1000, 2));  // overlaps the pending run
    f.write_at(200, iota_bytes(100, 3));   // overlaps again
    f.close();
    std::vector<std::byte> all(1500);
    fs.store().read_at("wb3", 0, all);
    auto a = iota_bytes(1000, 1);
    auto b = iota_bytes(1000, 2);
    auto d = iota_bytes(100, 3);
    for (std::size_t i = 0; i < 200; ++i) ASSERT_EQ(all[i], a[i]);
    for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(all[200 + i], d[i]);
    for (std::size_t i = 300; i < 500; ++i) ASSERT_EQ(all[i], a[i]);
    for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(all[500 + i], b[i]);
  });
}

TEST(WriteBehind, CollectiveWriteFlushesFirst) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    Hints h;
    h.wb_buffer_size = MiB;
    File f(c, fs, "wb4", pfs::OpenMode::kCreate, h);
    if (c.rank() == 0) f.write_at(0, iota_bytes(100, 7));
    // A collective write elsewhere must not reorder past the buffer.
    f.set_view(1000 + static_cast<std::uint64_t>(c.rank()) * 100);
    f.write_at_all(0, iota_bytes(100, static_cast<unsigned>(c.rank())));
    f.close();
  });
  std::vector<std::byte> head(100);
  fs.store().read_at("wb4", 0, head);
  auto expect = iota_bytes(100, 7);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), expect.begin()));
}

}  // namespace
}  // namespace paramrio::mpi::io
