// Unit tests for the network cost model and the storage primitives.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stor/disk.hpp"
#include "stor/object_store.hpp"

namespace paramrio {
namespace {

using net::Network;
using net::NetworkParams;
using sim::Engine;
using sim::Proc;

Engine::Options opts(int n) {
  Engine::Options o;
  o.nprocs = n;
  return o;
}

NetworkParams simple_net() {
  NetworkParams p;
  p.latency = 1.0e-3;
  p.bandwidth = 1.0e6;  // 1 MB/s: easy arithmetic
  p.send_overhead = 0.0;
  p.recv_byte_cost = 0.0;
  return p;
}

TEST(Network, PointToPointTiming) {
  NetworkParams p = simple_net();
  Engine::run(opts(2), [&](Proc& proc) {
    Network nw(p, 2);
    if (proc.rank() == 0) {
      double arrival = nw.send(proc, 1, 1'000'000);  // 1 MB at 1 MB/s
      EXPECT_DOUBLE_EQ(proc.now(), 1.0);             // sender occupied 1 s
      EXPECT_DOUBLE_EQ(arrival, 1.0 + 1.0e-3);       // + latency
    }
  });
}

TEST(Network, IntraNodeIsCheaper) {
  NetworkParams p = simple_net();
  p.procs_per_node = 2;
  p.intra_node_bandwidth = 1.0e8;
  p.intra_node_latency = 1.0e-6;
  Engine::run(opts(2), [&](Proc& proc) {
    Network nw(p, 2);
    if (proc.rank() == 0) {
      double arrival = nw.send(proc, 1, 1'000'000);
      EXPECT_LT(arrival, 0.1);  // far below the 1 s inter-node time
    }
  });
}

TEST(Network, ReceiverCopyCostAccrues) {
  NetworkParams p = simple_net();
  p.recv_byte_cost = 1.0e-6;  // 1 MB/s copy
  Engine::run(opts(1), [&](Proc& proc) {
    Network nw(p, 1);
    nw.receive(proc, /*arrival=*/0.5, /*bytes=*/1'000'000);
    EXPECT_DOUBLE_EQ(proc.now(), 1.5);  // wait to 0.5, then 1 s of copying
  });
}

TEST(Network, NicContentionSerializesSendersToOneNode) {
  // Two senders to the same destination node: with NIC contention the
  // destination NIC serialises the transfers.
  NetworkParams p = simple_net();
  p.nic_contention = true;
  Network nw(p, 3);
  // Pin the classic rank tie order: the assertion below names rank 1 as
  // the *second* sender into node 2's NIC queue.
  Engine::Options o = opts(3);
  o.env_perturb = false;
  Engine::run(o, [&](Proc& proc) {
    if (proc.rank() != 2) {
      nw.send(proc, 2, 1'000'000);
    }
    if (proc.rank() == 1) {
      // both transfers queued on node 2's NIC: second ends at 2 s
      EXPECT_GE(proc.now(), 2.0);
    }
  });
}

TEST(Network, BackplaneCapsAggregateBandwidth) {
  NetworkParams p = simple_net();
  p.backplane_bandwidth = 1.0e6;  // shared medium equal to one link
  Network nw(p, 4);
  auto r = Engine::run(opts(4), [&](Proc& proc) {
    // ranks 0,1 send to 2,3 — disjoint pairs, but shared backplane
    if (proc.rank() < 2) nw.send(proc, proc.rank() + 2, 1'000'000);
  });
  // Aggregate 2 MB over a 1 MB/s backplane: last completion ~2 s.
  EXPECT_GE(r.makespan, 2.0);
}

TEST(Network, WithoutContentionParallelSendsOverlap) {
  NetworkParams p = simple_net();
  Network nw(p, 4);
  auto r = Engine::run(opts(4), [&](Proc& proc) {
    if (proc.rank() < 2) nw.send(proc, proc.rank() + 2, 1'000'000);
  });
  EXPECT_LT(r.makespan, 1.5);  // both finish ≈ 1 s
}

TEST(Network, NodeMapping) {
  NetworkParams p;
  p.procs_per_node = 4;
  Engine::run(opts(1), [&](Proc&) {
    Network nw(p, 9, 2);
    EXPECT_EQ(nw.node_of(0), 0);
    EXPECT_EQ(nw.node_of(3), 0);
    EXPECT_EQ(nw.node_of(4), 1);
    EXPECT_EQ(nw.node_of(8), 2);
    EXPECT_EQ(nw.compute_nodes(), 3);
    EXPECT_TRUE(nw.same_node(0, 3));
    EXPECT_FALSE(nw.same_node(3, 4));
  });
}

TEST(ObjectStore, CreateWriteReadRoundTrip) {
  stor::ObjectStore os;
  os.create("a");
  std::vector<std::byte> data(100);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  os.write_at("a", 50, data);
  EXPECT_EQ(os.size("a"), 150u);  // zero-extended head
  std::vector<std::byte> out(100);
  os.read_at("a", 50, out);
  EXPECT_EQ(out, data);
  std::vector<std::byte> head(50);
  os.read_at("a", 0, head);
  for (auto b : head) EXPECT_EQ(b, std::byte{0});
}

TEST(ObjectStore, ReadPastEndThrows) {
  stor::ObjectStore os;
  os.create("a");
  std::vector<std::byte> out(1);
  EXPECT_THROW(os.read_at("a", 0, out), IoError);
}

TEST(ObjectStore, MissingObjectThrows) {
  stor::ObjectStore os;
  std::vector<std::byte> out(1);
  EXPECT_THROW(os.read_at("nope", 0, out), IoError);
  EXPECT_THROW(os.remove("nope"), IoError);
  EXPECT_THROW(os.size("nope"), IoError);
}

TEST(ObjectStore, ListAndTotals) {
  stor::ObjectStore os;
  os.create("x");
  os.create("y");
  std::vector<std::byte> data(10);
  os.write_at("x", 0, data);
  os.write_at("y", 0, data);
  EXPECT_EQ(os.list().size(), 2u);
  EXPECT_EQ(os.total_bytes(), 20u);
  os.remove("x");
  EXPECT_EQ(os.total_bytes(), 10u);
}

TEST(IoServer, SequentialAccessSkipsSeek) {
  stor::DiskParams p;
  p.seek_time = 1.0;
  p.bandwidth = 1.0e6;
  p.request_overhead = 0.0;
  stor::IoServer s(p);
  // First request: seek (cold head).
  double t1 = s.serve(0.0, "f", 0, 1'000'000);
  EXPECT_DOUBLE_EQ(t1, 2.0);  // 1 s seek + 1 s transfer
  // Sequential continuation: no seek.
  double t2 = s.serve(t1, "f", 1'000'000, 1'000'000);
  EXPECT_DOUBLE_EQ(t2, 3.0);
  // Jump: seek again.
  double t3 = s.serve(t2, "f", 0, 1'000'000);
  EXPECT_DOUBLE_EQ(t3, 5.0);
  // Different object at the "right" offset: still a seek.
  double t4 = s.serve(t3, "g", 1'000'000, 0);
  EXPECT_DOUBLE_EQ(t4, 6.0);
  EXPECT_EQ(s.requests(), 4u);
  EXPECT_EQ(s.bytes_moved(), 3'000'000u);
}

TEST(IoServer, QueueingDelaysLateArrivals) {
  stor::DiskParams p;
  p.seek_time = 0.0;
  p.bandwidth = 1.0e6;
  p.request_overhead = 0.0;
  stor::IoServer s(p);
  EXPECT_DOUBLE_EQ(s.serve(0.0, "f", 0, 1'000'000), 1.0);
  // Issued at 0.5 but the disk is busy until 1.0.
  EXPECT_DOUBLE_EQ(s.serve(0.5, "f", 1'000'000, 1'000'000), 2.0);
}

TEST(IoServer, ResetClearsState) {
  stor::DiskParams p;
  p.seek_time = 1.0;
  p.bandwidth = 1.0e6;
  p.request_overhead = 0.0;
  stor::IoServer s(p);
  s.serve(0.0, "f", 0, 1000);
  s.reset();
  EXPECT_DOUBLE_EQ(s.next_free(), 0.0);
  EXPECT_EQ(s.requests(), 0u);
}

}  // namespace
}  // namespace paramrio
