// Tests for the calibrated platform models and the Testbed bundle.
#include <gtest/gtest.h>

#include "platform/machine.hpp"

namespace paramrio::platform {
namespace {

TEST(Machines, FourPlatformsConstructWithExpectedTraits) {
  Machine origin = origin2000_xfs();
  EXPECT_EQ(origin.fs_kind, FsKind::kLocalXfs);
  EXPECT_FALSE(origin.net.nic_contention);
  EXPECT_EQ(origin.extra_fabric_nodes(), 0);

  Machine sp2 = sp2_gpfs();
  EXPECT_EQ(sp2.fs_kind, FsKind::kStriped);
  EXPECT_TRUE(sp2.net.nic_contention);
  EXPECT_TRUE(sp2.striped_fs.smp_io_channel);
  EXPECT_GT(sp2.striped_fs.write_lock_cost, 0.0);  // GPFS tokens
  EXPECT_GT(sp2.net.procs_per_node, 1);            // SMP nodes
  EXPECT_EQ(sp2.extra_fabric_nodes(), sp2.striped_fs.n_io_nodes);

  Machine pvfs = chiba_pvfs_ethernet();
  EXPECT_EQ(pvfs.fs_kind, FsKind::kStriped);
  EXPECT_DOUBLE_EQ(pvfs.striped_fs.write_lock_cost, 0.0);  // no locks
  EXPECT_DOUBLE_EQ(pvfs.striped_fs.client_cache_bandwidth, 0.0);  // no cache
  EXPECT_GT(pvfs.net.backplane_bandwidth, 0.0);  // oversubscribed Ethernet
  EXPECT_EQ(pvfs.striped_fs.n_io_nodes, 8);

  Machine local = chiba_local_disk();
  EXPECT_EQ(local.fs_kind, FsKind::kLocalDisk);
  EXPECT_EQ(local.extra_fabric_nodes(), 0);
}

TEST(Machines, EthernetIsMuchSlowerThanTheOthers) {
  EXPECT_LT(chiba_pvfs_ethernet().net.bandwidth,
            sp2_gpfs().net.bandwidth / 5.0);
  EXPECT_LT(sp2_gpfs().net.bandwidth, origin2000_xfs().net.bandwidth);
}

class TestbedSweep : public ::testing::TestWithParam<int> {};

TEST_P(TestbedSweep, EveryPlatformRunsASmokeWorkload) {
  int machine_idx = GetParam();
  Machine m;
  switch (machine_idx) {
    case 0:
      m = origin2000_xfs();
      break;
    case 1:
      m = sp2_gpfs();
      break;
    case 2:
      m = chiba_pvfs_ethernet();
      break;
    default:
      m = chiba_local_disk();
      break;
  }
  Testbed tb(m, 4);
  auto r = tb.runtime().run([&](mpi::Comm& c) {
    // A small exchange plus a file round-trip on each platform.
    std::uint64_t sum = c.allreduce_sum(static_cast<std::uint64_t>(c.rank()));
    EXPECT_EQ(sum, 6u);
    if (c.rank() == 0) {
      int fd = tb.fs().open("smoke", pfs::OpenMode::kCreate);
      std::vector<std::byte> data(128 * KiB, std::byte{0x42});
      tb.fs().write_at(fd, 0, data);
      std::vector<std::byte> back(data.size());
      tb.fs().read_at(fd, 0, back);
      EXPECT_EQ(back, data);
      tb.fs().close(fd);
    }
    c.barrier();
  });
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_LT(r.makespan, 60.0);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, TestbedSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(Testbed, VirtualTimeOrderingAcrossPlatforms) {
  // The same byte volume must be far slower over fast Ethernet PVFS than on
  // the Origin's local XFS.
  auto time_write = [](Machine m) {
    Testbed tb(m, 2);
    auto r = tb.runtime().run([&](mpi::Comm& c) {
      if (c.rank() == 0) {
        int fd = tb.fs().open("f", pfs::OpenMode::kCreate);
        std::vector<std::byte> data(8 * MiB);
        tb.fs().write_at(fd, 0, data);
        tb.fs().close(fd);
      }
    });
    return r.finish_times[0];
  };
  EXPECT_GT(time_write(chiba_pvfs_ethernet()),
            3.0 * time_write(origin2000_xfs()));
}

}  // namespace
}  // namespace paramrio::platform
