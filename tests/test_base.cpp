// Unit tests for base utilities: errors, RNG determinism, byte encode/decode.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/byte_io.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "base/units.hpp"

namespace paramrio {
namespace {

TEST(Error, RequireThrowsLogicErrorWithContext) {
  try {
    PARAMRIO_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(PARAMRIO_REQUIRE(true, "never"));
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw FormatError("x"), Error);
  EXPECT_THROW(throw DeadlockError("x"), Error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextInRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_in(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, GaussianHasRoughlyZeroMeanUnitVariance) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.next_gaussian();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Units, Conversions) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(mb_per_s(100.0), 1.0e8);
  EXPECT_DOUBLE_EQ(ms(5.0), 0.005);
  EXPECT_DOUBLE_EQ(us(3.0), 3.0e-6);
}

TEST(ByteIo, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5e-7);
  w.str("hello world");
  auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5e-7);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  auto buf = w.take();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned>(buf[0]), 0x04u);
  EXPECT_EQ(static_cast<unsigned>(buf[3]), 0x01u);
}

TEST(ByteIo, ReaderOverrunThrowsFormatError) {
  ByteWriter w;
  w.u32(7);
  auto buf = w.take();
  ByteReader r(buf);
  r.u32();
  EXPECT_THROW(r.u8(), FormatError);
}

TEST(ByteIo, StringOverrunThrows) {
  ByteWriter w;
  w.u32(1000);  // claims a 1000-byte string with no payload
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.str(), FormatError);
}

TEST(ByteIo, SkipAndPos) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(static_cast<std::uint8_t>(i));
  auto buf = w.take();
  ByteReader r(buf);
  r.skip(10);
  EXPECT_EQ(r.pos(), 10u);
  EXPECT_EQ(r.u8(), 10u);
  EXPECT_THROW(r.skip(100), FormatError);
}

TEST(ByteIo, BytesView) {
  ByteWriter w;
  std::vector<std::byte> payload(32);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i * 3);
  w.bytes(payload);
  auto buf = w.take();
  ByteReader r(buf);
  auto got = r.bytes(32);
  for (std::size_t i = 0; i < payload.size(); ++i)
    EXPECT_EQ(got[i], payload[i]);
}

}  // namespace
}  // namespace paramrio
