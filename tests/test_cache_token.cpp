// Tests for the buffer-cache model, write-behind, and the GPFS-style
// write-token (distributed lock) model — the mechanisms behind the paper's
// platform-specific results.
#include <gtest/gtest.h>

#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "stor/tape.hpp"
#include "sim/engine.hpp"

namespace paramrio {
namespace {

using sim::Engine;
using sim::Proc;

Engine::Options opts(int n) {
  Engine::Options o;
  o.nprocs = n;
  return o;
}

TEST(Cache, RereadIsServedFromCache) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  double first = 0, second = 0;
  Engine::run(opts(1), [&](Proc& p) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    std::vector<std::byte> data(4 * MiB);
    fs.write_at(fd, 0, data);
    fs.drop_caches();
    double t0 = p.now();
    fs.read_at(fd, 0, data);
    first = p.now() - t0;
    t0 = p.now();
    fs.read_at(fd, 0, data);
    second = p.now() - t0;
    fs.close(fd);
  });
  EXPECT_LT(second, first / 2.0);
  EXPECT_EQ(fs.cache_hits(), 4 * MiB);
}

TEST(Cache, WritePopulatesCache) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  double cold = 0, warm = 0;
  Engine::run(opts(1), [&](Proc& p) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    std::vector<std::byte> data(MiB);
    fs.write_at(fd, 0, data);
    // Read right after writing: still resident.
    double t0 = p.now();
    fs.read_at(fd, 0, data);
    warm = p.now() - t0;
    fs.drop_caches();
    t0 = p.now();
    fs.read_at(fd, 0, data);
    cold = p.now() - t0;
    fs.close(fd);
  });
  EXPECT_LT(warm, cold / 2.0);
}

TEST(Cache, PartialOverlapIsAMiss) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    std::vector<std::byte> data(2 * MiB);
    fs.write_at(fd, 0, data);
    fs.drop_caches();
    std::vector<std::byte> half(MiB);
    fs.read_at(fd, 0, half);  // caches [0, 1M)
    std::uint64_t hits_before = fs.cache_hits();
    std::vector<std::byte> spanning(2 * MiB);
    fs.read_at(fd, 0, spanning);  // [0, 2M): only half resident -> miss
    EXPECT_EQ(fs.cache_hits(), hits_before);
    fs.close(fd);
  });
}

TEST(Cache, DropCachesRestoresColdCost) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  double warm = 0, dropped = 0;
  Engine::run(opts(1), [&](Proc& p) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    std::vector<std::byte> data(MiB);
    fs.write_at(fd, 0, data);
    fs.read_at(fd, 0, data);
    double t0 = p.now();
    fs.read_at(fd, 0, data);
    warm = p.now() - t0;
    fs.drop_caches();
    t0 = p.now();
    fs.read_at(fd, 0, data);
    dropped = p.now() - t0;
    fs.close(fd);
  });
  EXPECT_GT(dropped, 2.0 * warm);
}

TEST(WriteBehind, NonSequentialWritesCheaperThanReads) {
  // Scattered writes are buffered (near-seek at most); scattered cold reads
  // pay the full positioning cost.
  pfs::LocalFsParams params;
  params.disk.seek_time = ms(20);
  params.disk.near_seek_time = ms(1);
  pfs::LocalFs fs(params);
  double wtime = 0, rtime = 0;
  Engine::run(opts(1), [&](Proc& p) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    std::vector<std::byte> chunk(4 * KiB);
    double t0 = p.now();
    for (int i = 0; i < 32; ++i) {
      // Descending offsets: never sequential, never "near" for reads.
      fs.write_at(fd, static_cast<std::uint64_t>(31 - i) * 8 * MiB, chunk);
    }
    wtime = p.now() - t0;
    fs.drop_caches();
    t0 = p.now();
    for (int i = 0; i < 32; ++i) {
      fs.read_at(fd, static_cast<std::uint64_t>(31 - i) * 8 * MiB, chunk);
    }
    rtime = p.now() - t0;
    fs.close(fd);
  });
  EXPECT_LT(wtime, rtime / 3.0);
}

TEST(WriteToken, AlternatingWritersPayLockTransfers) {
  struct Outcome {
    double makespan = 0;
    std::uint64_t transfers = 0;
  };
  auto run_with = [](bool alternate, double lock_cost) {
    net::NetworkParams np;
    pfs::StripedFsParams sp;
    sp.n_io_nodes = 4;
    sp.write_lock_cost = lock_cost;
    net::Network nw(np, 2, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    int fd = fs.open("shared", pfs::OpenMode::kCreate);
    auto r = Engine::run(opts(2), [&](Proc& p) {
      std::vector<std::byte> chunk(16 * KiB);
      for (int i = 0; i < 16; ++i) {
        bool my_turn = alternate ? (i % 2 == p.rank()) : (p.rank() == 0);
        if (my_turn) {
          fs.write_at(fd, static_cast<std::uint64_t>(i) * 16 * KiB, chunk);
        }
        p.advance(0.001);  // interleave in virtual time
      }
    });
    return Outcome{r.makespan, fs.write_token_transfers()};
  };
  // Tokens are stripe-granular: a lone writer claims every stripe unopposed
  // and pays no transfer at all, while alternating writers false-share each
  // 64 KiB stripe with their 16 KiB chunks and ping-pong its token.
  Outcome single = run_with(false, ms(20));
  Outcome alternating = run_with(true, ms(20));
  EXPECT_EQ(single.transfers, 0u);
  EXPECT_GE(alternating.transfers, 4u);
  EXPECT_GT(alternating.makespan,
            single.makespan +
                static_cast<double>(alternating.transfers) * ms(20) / 2.0);
  Outcome alternating_free = run_with(true, 0.0);
  EXPECT_EQ(alternating_free.transfers, 0u);
  EXPECT_LT(alternating_free.makespan, alternating.makespan / 2.0);
}

TEST(WriteToken, SameWriterKeepsToken) {
  net::NetworkParams np;
  pfs::StripedFsParams sp;
  sp.n_io_nodes = 2;
  sp.write_lock_cost = ms(50);
  net::Network nw(np, 1, sp.n_io_nodes);
  pfs::StripedFs fs(sp, nw);
  int fd = fs.open("shared", pfs::OpenMode::kCreate);
  auto r = Engine::run(opts(1), [&](Proc&) {
    std::vector<std::byte> chunk(KiB);
    for (int i = 0; i < 20; ++i) {
      fs.write_at(fd, static_cast<std::uint64_t>(i) * KiB, chunk);
    }
  });
  // One token acquisition only: far below 20 * 50 ms.
  EXPECT_LT(r.makespan, 0.2);
}


TEST(Tape, SingleFileStreamsManyFilesReposition) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  // One 40 MB file vs 40 files of 1 MB.
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("big", pfs::OpenMode::kCreate);
    std::vector<std::byte> mb(MiB);
    for (int i = 0; i < 40; ++i) {
      fs.write_at(fd, static_cast<std::uint64_t>(i) * MiB, mb);
    }
    fs.close(fd);
    for (int i = 0; i < 40; ++i) {
      int sfd = fs.open("small" + std::to_string(i), pfs::OpenMode::kCreate);
      fs.write_at(sfd, 0, mb);
      fs.close(sfd);
    }
  });

  double big_ret = 0, small_ret = 0;
  Engine::run(opts(1), [&](Proc&) {
    stor::TapeArchive a{stor::TapeParams{}};
    a.migrate(fs, {"big"});
    big_ret = a.retrieve(fs, {"big"});
    EXPECT_EQ(a.archived_bytes(), 40 * MiB);

    stor::TapeArchive b{stor::TapeParams{}};
    std::vector<std::string> names;
    for (int i = 0; i < 40; ++i) names.push_back("small" + std::to_string(i));
    b.migrate(fs, names);
    // Retrieve in REVERSE order: every file repositions.
    std::vector<std::string> reversed(names.rbegin(), names.rend());
    small_ret = b.retrieve(fs, reversed);
  });
  // 39 extra positioning ops at 4 s each dominate.
  EXPECT_GT(small_ret, big_ret + 30.0 * 4.0);
}

TEST(Tape, SequentialRetrievalAvoidsRepositioning) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    std::vector<std::byte> mb(MiB);
    std::vector<std::string> names;
    for (int i = 0; i < 10; ++i) {
      std::string n = "f" + std::to_string(i);
      int fd = fs.open(n, pfs::OpenMode::kCreate);
      fs.write_at(fd, 0, mb);
      fs.close(fd);
      names.push_back(n);
    }
    stor::TapeArchive t{stor::TapeParams{}};
    t.migrate(fs, names);
    double in_order = t.retrieve(fs, names);
    std::vector<std::string> reversed(names.rbegin(), names.rend());
    double reverse = t.retrieve(fs, reversed);
    // In order: one locate; reversed: one per file.
    EXPECT_GT(reverse, in_order + 8 * stor::TapeParams{}.position_time - 1.0);
  });
}

TEST(Tape, Errors) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    stor::TapeArchive t{stor::TapeParams{}};
    EXPECT_THROW(t.migrate(fs, {"absent"}), LogicError);
    EXPECT_THROW(t.retrieve(fs, {"absent"}), IoError);
    EXPECT_FALSE(t.holds("absent"));
  });
}

}  // namespace
}  // namespace paramrio
