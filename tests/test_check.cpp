// Tests for the I/O correctness analyzer (check::IoChecker): every
// diagnostic kind on synthetic traces, clean audits of all four ENZO dump
// backends, and negative tests proving injected corruption is caught.
#include <gtest/gtest.h>

#include <memory>

#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "mpi/io/file.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "sim/engine.hpp"

namespace paramrio {
namespace {

using check::CheckOptions;
using check::CheckReport;
using check::IoChecker;
using check::Kind;
using pfs::OpenMode;

sim::Engine::Options opts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

std::vector<std::byte> bytes(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0xab});
}

// ---------------------------------------------------------------------------
// Diagnostic kinds on live file systems
// ---------------------------------------------------------------------------

TEST(IoChecker, CleanSingleWriterRoundTripHasNoDiagnostics) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, bytes(1000));
    fs.write_at(fd, 1000, bytes(1000));
    std::vector<std::byte> out(2000);
    fs.read_at(fd, 0, out);
    fs.close(fd);
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_TRUE(r.clean()) << r.format();
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_EQ(r.warnings(), 0u);
  EXPECT_EQ(r.data_requests, 3u);
}

TEST(IoChecker, DetectsCrossRankWriteConflict) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  int fd = fs.open("f", OpenMode::kCreate);  // untimed setup
  sim::Engine::run(opts(2), [&](sim::Proc& p) {
    // Both ranks write [500, 1500) — overlap [500, 1500).
    fs.write_at(fd, static_cast<std::uint64_t>(p.rank()) * 500, bytes(1000));
  });
  fs.close(fd);
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kWriteConflict), 1u) << r.format();
  ASSERT_FALSE(r.diagnostics.empty());
  const check::Diagnostic& d = r.diagnostics.front();
  EXPECT_EQ(d.kind, Kind::kWriteConflict);
  EXPECT_EQ(d.offset, 500u);
  EXPECT_EQ(d.length, 500u);
  EXPECT_EQ(d.ranks, (std::vector<int>{0, 1}));
}

TEST(IoChecker, SameRankOverwriteIsNotAConflict) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, bytes(100));
    fs.write_at(fd, 0, bytes(100));  // header rewrite: fine
    fs.close(fd);
  });
  EXPECT_EQ(checker.analyze(&fs.store()).count(Kind::kWriteConflict), 0u);
}

TEST(IoChecker, PhaseBoundaryResetsConflictScope) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  int fd = fs.open("f", OpenMode::kCreate);  // untimed setup
  checker.begin_phase("dump1");
  sim::Engine::run(opts(2), [&](sim::Proc& p) {
    if (p.rank() == 0) fs.write_at(fd, 0, bytes(100));
  });
  checker.begin_phase("dump2");
  sim::Engine::run(opts(2), [&](sim::Proc& p) {
    // Rank 1 overwrites rank 0's range, but in a new phase: no conflict.
    if (p.rank() == 1) fs.write_at(fd, 0, bytes(100));
  });
  fs.close(fd);
  EXPECT_EQ(checker.analyze(&fs.store()).count(Kind::kWriteConflict), 0u);
}

TEST(IoChecker, DetectsHoleInsideDumpFile) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, bytes(4096));
    fs.write_at(fd, 8192, bytes(4096));  // skips [4096, 8192)
    fs.close(fd);
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kHole), 1u) << r.format();
  EXPECT_EQ(r.diagnostics.front().offset, 4096u);
  EXPECT_EQ(r.diagnostics.front().length, 4096u);
}

TEST(IoChecker, DetectsReadBeforeWrite) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 1000, bytes(1000));  // zero-fills [0, 1000)
    std::vector<std::byte> out(500);
    fs.read_at(fd, 250, out);  // reads bytes never written
    fs.close(fd);
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kReadBeforeWrite), 1u) << r.format();
  // The hole [0, 1000) is also flagged.
  EXPECT_EQ(r.count(Kind::kHole), 1u);
}

TEST(IoChecker, SievingWriteDoesNotMaterialiseHoles) {
  // Regression: the data-sieving write path used to zero-fill its
  // read-modify-write buffer past EOF and write back the entire hull,
  // silently materialising the unwritten gap (and the file tail) as zeros —
  // the checker then saw a fully-written file where the application had
  // left a hole.  Post-fix only the covered runs are written, so the
  // genuine gap shows up as the hole it is.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  mpi::RuntimeParams rp;
  rp.nprocs = 1;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    mpi::io::File f(c, fs, "g", OpenMode::kCreate);
    // Two segments, 200 of the 250-byte hull covered: dense enough that
    // sieving batches them into one read-modify-write window.
    f.set_view(0, mpi::Datatype::indexed({{0, 100}, {150, 100}}));
    std::vector<std::byte> data(200, std::byte{0x5a});
    f.write_at(0, data);
    EXPECT_GE(f.stats().sieve_windows, 1u);
    f.close();
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kHole), 1u) << r.format();
  // The covered runs themselves are intact.
  ASSERT_EQ(fs.store().size("g"), 250u);
  std::vector<std::byte> head(100), tail(100);
  fs.store().read_at("g", 0, head);
  fs.store().read_at("g", 150, tail);
  for (auto b : head) EXPECT_EQ(b, std::byte{0x5a});
  for (auto b : tail) EXPECT_EQ(b, std::byte{0x5a});
}

TEST(IoChecker, PreexistingFilesAreNotFlagged) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  // File written before the checker attaches (untimed setup): its contents
  // are unknown, so reads of it must not be read-before-write.
  int fd = fs.open("pre", OpenMode::kCreate);
  fs.write_at(fd, 0, bytes(100));
  fs.close(fd);
  IoChecker checker;
  fs.attach_observer(&checker);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int rd = fs.open("pre", OpenMode::kRead);
    std::vector<std::byte> out(100);
    fs.read_at(rd, 0, out);
    fs.close(rd);
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kReadBeforeWrite), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kHole), 0u);
}

TEST(IoChecker, DetectsFdLeak) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, bytes(10));
    // never closed
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kFdLeak), 1u) << r.format();
  EXPECT_EQ(r.warnings(), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(IoChecker, DetectsDoubleCloseAndUseAfterCloseFromSyntheticTrace) {
  // The live FileSystem throws on these before the observer fires, so feed
  // the analyzer a hand-built trace (e.g. from an external tool).
  trace::IoTracer t;
  t.record_open(0.0, 0, "f", OpenMode::kCreate, 3);
  t.record(0.1, 0, true, "f", 0, 100, 3);
  t.record_close(0.2, 0, "f", 3);
  t.record_close(0.3, 0, "f", 3);          // double close
  t.record(0.4, 0, false, "f", 0, 50, 3);  // use after close
  // fd 99 has no open event: it predates the trace, so using it is fine and
  // it must not count as a leak either.
  t.record(0.5, 0, true, "g", 0, 10, 99);
  CheckReport r = check::analyze_trace(t.events(), CheckOptions{});
  EXPECT_EQ(r.count(Kind::kDoubleClose), 1u) << r.format();
  EXPECT_EQ(r.count(Kind::kUnknownFd), 1u);
  EXPECT_EQ(r.count(Kind::kFdLeak), 0u);
}

TEST(IoChecker, DetectsWriteThroughReadOnlyDescriptor) {
  trace::IoTracer t;
  t.record_open(0.0, 0, "f", OpenMode::kCreate, 3);
  t.record(0.1, 0, true, "f", 0, 100, 3);
  t.record_close(0.2, 0, "f", 3);
  t.record_open(0.3, 1, "f", OpenMode::kRead, 4);
  t.record(0.4, 1, true, "f", 0, 100, 4);  // write through read-only fd
  t.record_close(0.5, 1, "f", 4);
  CheckReport r = check::analyze_trace(t.events(), CheckOptions{});
  EXPECT_EQ(r.count(Kind::kWriteReadOnly), 1u) << r.format();
}

TEST(IoChecker, AlignmentLintsCountStripeViolations) {
  CheckOptions o;
  o.stripe_size = 4096;
  trace::IoTracer t;
  t.record_open(0.0, 0, "f", OpenMode::kCreate, 3);
  t.record(0.1, 0, true, "f", 0, 8192, 3);     // aligned, large: clean
  t.record(0.2, 0, true, "f", 8192, 512, 3);   // small request
  t.record(0.3, 0, true, "f", 8704, 4096, 3);  // unaligned straddle
  t.record_close(0.4, 0, "f", 3);
  CheckReport r = check::analyze_trace(t.events(), o);
  EXPECT_EQ(r.count(Kind::kSmallRequest), 1u) << r.format();
  EXPECT_EQ(r.count(Kind::kUnalignedRequest), 1u);
  EXPECT_EQ(r.lints(), 2u);
  EXPECT_TRUE(r.clean());  // lints are advisory
}

TEST(IoChecker, DiagnosticCapKeepsCountsExact) {
  CheckOptions o;
  o.max_diagnostics_per_kind = 4;
  o.stripe_size = 4096;
  trace::IoTracer t;
  for (int i = 0; i < 32; ++i) {
    t.record(0.1 * i, 0, true, "f", static_cast<std::uint64_t>(i) * 8192, 16);
  }
  CheckReport r = check::analyze_trace(t.events(), o);
  EXPECT_EQ(r.count(Kind::kSmallRequest), 32u);
  EXPECT_EQ(r.diagnostics.size(), 4u);
}

TEST(IoChecker, FormatMentionsVerdictAndKinds) {
  trace::IoTracer t;
  t.record_open(0.0, 0, "f", OpenMode::kCreate, 3);
  t.record(0.1, 0, true, "f", 0, 100, 3);
  t.record_close(0.2, 0, "f", 3);
  CheckOptions o;
  o.label = "unit";
  std::string s = check::analyze_trace(t.events(), o, nullptr).format();
  EXPECT_NE(s.find("unit"), std::string::npos);
  EXPECT_NE(s.find("CLEAN"), std::string::npos);
  EXPECT_NE(s.find("write-conflict"), std::string::npos);
  EXPECT_NE(s.find("hole"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Backend audits: every ENZO dump backend must produce a clean report
// ---------------------------------------------------------------------------

enum class Kind4 { kHdf4, kMpiIo, kHdf5, kPnetcdf };

std::unique_ptr<enzo::IoBackend> make_backend(Kind4 k, pfs::FileSystem& fs) {
  switch (k) {
    case Kind4::kHdf4: return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case Kind4::kMpiIo: return std::make_unique<enzo::MpiIoBackend>(fs);
    case Kind4::kHdf5: return std::make_unique<enzo::Hdf5ParallelBackend>(fs);
    case Kind4::kPnetcdf: return std::make_unique<enzo::PnetcdfBackend>(fs);
  }
  throw LogicError("bad backend kind");
}

enzo::SimulationConfig audit_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.n_clumps = 4;
  c.refine.threshold = 3.0;
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;
  return c;
}

class BackendAudit : public ::testing::TestWithParam<Kind4> {};

TEST_P(BackendAudit, DumpAndRestartAreCleanUnderChecker) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  CheckOptions o;
  // pnetcdf aligns its data region (NcFileConfig::data_alignment); the
  // header/data padding gap is deliberate, not a torn checkpoint.
  o.padding_alignment = 4096;
  IoChecker checker(o);
  fs.attach_observer(&checker);
  mpi::RuntimeParams rp;
  rp.nprocs = p;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(GetParam(), fs);
    enzo::EnzoSimulation sim(c, audit_config());
    sim.initialize_from_universe();
    sim.evolve_cycle();
    if (c.rank() == 0) checker.begin_phase("dump");
    c.barrier();
    backend->write_dump(c, sim.state(), "audit");
    c.barrier();
    if (c.rank() == 0) checker.begin_phase("restart");
    c.barrier();
    enzo::EnzoSimulation sim2(c, audit_config());
    backend->read_restart(c, sim2.state(), "audit");
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_EQ(r.count(Kind::kWriteConflict), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kHole), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kReadBeforeWrite), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kFdLeak), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kDoubleClose), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kWriteReadOnly), 0u) << r.format();
  EXPECT_EQ(r.count(Kind::kUnknownFd), 0u) << r.format();
  EXPECT_TRUE(r.clean()) << r.format();
  EXPECT_GT(r.data_requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendAudit,
                         ::testing::Values(Kind4::kHdf4, Kind4::kMpiIo,
                                           Kind4::kHdf5, Kind4::kPnetcdf));

// ---------------------------------------------------------------------------
// Negative tests: injected corruption must be caught
// ---------------------------------------------------------------------------

TEST(BackendAuditNegative, InjectedOverlappingWriteIsDetected) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  mpi::RuntimeParams rp;
  rp.nprocs = p;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    enzo::MpiIoBackend backend(fs);
    enzo::EnzoSimulation sim(c, audit_config());
    sim.initialize_from_universe();
    if (c.rank() == 0) checker.begin_phase("dump");
    c.barrier();
    backend.write_dump(c, sim.state(), "bad");
    c.barrier();
    // Fault injection: ranks 0 and 1 both rewrite the same range of a dump
    // file inside the dump phase — a lost-update race on a real system.
    if (c.rank() < 2) {
      int fd = fs.open("bad.enzo", pfs::OpenMode::kReadWrite);
      fs.write_at(fd, 128, bytes(256));
      fs.close(fd);
    }
  });
  CheckReport r = checker.analyze(&fs.store());
  EXPECT_GE(r.count(Kind::kWriteConflict), 1u) << r.format();
  EXPECT_FALSE(r.clean());
}

TEST(BackendAuditNegative, TruncatedDumpIsDetected) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  IoChecker checker;
  fs.attach_observer(&checker);
  mpi::RuntimeParams rp;
  rp.nprocs = p;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    enzo::MpiIoBackend backend(fs);
    enzo::EnzoSimulation sim(c, audit_config());
    sim.initialize_from_universe();
    if (c.rank() == 0) checker.begin_phase("dump");
    c.barrier();
    backend.write_dump(c, sim.state(), "trunc");
  });
  // The full trace is clean...
  ASSERT_TRUE(checker.analyze(&fs.store()).clean());

  // ...but a dump whose trailing writes never happened (a rank died mid
  // checkpoint) leaves the file short of its extent.  Model it by dropping
  // the last write to the largest dump file from the trace and re-analyzing
  // against the same store contents.
  std::string victim;
  std::uint64_t best = 0;
  for (const std::string& name : fs.store().list()) {
    if (fs.store().size(name) > best) {
      best = fs.store().size(name);
      victim = name;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::vector<trace::IoEvent> events = checker.events();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->op == trace::IoOp::kWrite && it->path == victim) {
      events.erase(std::next(it).base());
      break;
    }
  }
  CheckReport r = check::analyze_trace(events, checker.options(), &fs.store(),
                                       checker.phases());
  EXPECT_GE(r.count(Kind::kHole), 1u) << r.format();
  EXPECT_FALSE(r.clean());
}

TEST(BackendAuditAlignment, StripedFsAuditCountsSmallRequestsPerBackend) {
  // The Figure-7 pathology: on a striped file system, backends that issue
  // many sub-stripe requests light up the alignment lints.  The audit stays
  // free of errors either way.
  const int p = 2;
  std::map<std::string, std::uint64_t> small_counts;
  for (Kind4 k : {Kind4::kHdf4, Kind4::kMpiIo}) {
    net::NetworkParams np;
    pfs::StripedFsParams sp;
    sp.stripe_size = 256 * KiB;
    sp.n_io_nodes = 4;
    net::Network nw(np, p, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    CheckOptions o;
    o.stripe_size = sp.stripe_size;
    IoChecker checker(o);
    fs.attach_observer(&checker);
    mpi::RuntimeParams rp;
    rp.nprocs = p;
    mpi::Runtime rt(rp);
    rt.run([&](mpi::Comm& c) {
      auto backend = make_backend(k, fs);
      enzo::EnzoSimulation sim(c, audit_config());
      sim.initialize_from_universe();
      if (c.rank() == 0) checker.begin_phase("dump");
      c.barrier();
      backend->write_dump(c, sim.state(), "stripe");
    });
    CheckReport r = checker.analyze(&fs.store());
    EXPECT_EQ(r.errors(), 0u) << r.format();
    small_counts[k == Kind4::kHdf4 ? "hdf4" : "mpiio"] =
        r.count(Kind::kSmallRequest);
  }
  // Both backends issue some sub-stripe metadata writes; the audit records
  // per-backend counts a bench can compare.
  EXPECT_GT(small_counts.at("hdf4"), 0u);
}

}  // namespace
}  // namespace paramrio
